// Fault tolerance end to end: an epoch where a tenth of the network
// crashes mid-protocol. Cluster heads die and their members fail over
// or recover with a fresh share round; reporters whose tree parent
// went silent reroute to a backup; the base station closes the epoch
// with whatever survived — and, crucially, never mistakes the churn
// for tampering (zero value-tamper rejections).
#include <cstdio>

#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"

int main() {
  using namespace icpda;

  constexpr std::size_t kNodes = 400;
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(0xFA117)};

  core::FaultPlan faults;
  faults.crash_probability = 0.10;       // each sensor dies with p = 0.1 ...
  faults.crash_window_s = 5.0;           // ... somewhere in the epoch's hot window
  faults.crash_at_s[217] = 1.2;          // plus one hand-picked mid-Phase-II death
  faults.outages[42] = {{0.3, 2.8}};     // and one reboot (down at 0.3 s, up at 2.8 s)

  net::NetworkConfig net_cfg;
  net_cfg.node_count = kNodes;
  net_cfg.seed = 41;
  net::Network network(net_cfg);

  core::IcpdaConfig cfg;
  // Healing costs time: an exhausted MAC retry ladder (~0.8 s) is how a
  // reporter learns its parent died, then reroute backoff and watchdog
  // rehands follow. Budget extra close slack so healed reports land.
  cfg.timing.close_slack_s = 2.5;

  std::printf("== epoch with 10%% random crashes (N = %zu) ==\n", kNodes);
  const auto out = core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0),
                                         keys, {}, faults);

  std::printf("nodes crashed:        %u (base station exempt)\n", out.nodes_crashed);
  std::printf("epoch %s (%u significant alarms)\n",
              out.accepted() ? "ACCEPTED" : "REJECTED — crash mistaken for attack!",
              out.significant_alarms);
  if (out.result) {
    std::printf("aggregate:            count %.0f, mean %.3f (true mean 1.000)\n",
                out.result->count, out.result->sum / out.result->count);
  }
  std::printf("coverage:             %.1f%% of surviving sensors\n", out.coverage * 100.0);
  std::printf("values lost:          %u\n", out.values_lost);
  std::printf("parent reroutes:      %u\n", out.reroutes);

  const auto& m = network.metrics();
  std::printf("\n-- degradation machinery --\n");
  std::printf("head failovers:       %llu (silent head -> member became lone head)\n",
              static_cast<unsigned long long>(m.counter("icpda.head_failover")));
  std::printf("phase II recoveries:  %llu rounds, %llu clusters re-solved\n",
              static_cast<unsigned long long>(m.counter("icpda.phase2_recovery")),
              static_cast<unsigned long long>(m.counter("icpda.cluster_recovered")));
  std::printf("backup reports:       %llu (witness reported for a dead head)\n",
              static_cast<unsigned long long>(m.counter("icpda.backup_report")));
  std::printf("digests missed:       %llu members unclustered by a dead head\n",
              static_cast<unsigned long long>(m.counter("icpda.digest_missed")));
  std::printf("doomed frames purged: %llu (queued to a dead neighbour)\n",
              static_cast<unsigned long long>(m.counter("mac.purged")));
  return 0;
}
