// Attack detection end to end: a compromised aggregator inflates the
// total; the cluster witnesses catch it; the base station rejects the
// epoch; group testing then isolates the compromised node so it can be
// excluded (the paper's O(log N) DoS countermeasure).
#include <cstdio>

#include "core/icpda.h"
#include "core/localization.h"
#include "crypto/keyring.h"
#include "net/network.h"

int main() {
  using namespace icpda;

  constexpr std::size_t kNodes = 400;
  constexpr net::NodeId kCompromised = 217;
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(0xBADBEEF)};

  core::AttackPlan attack;
  attack.polluters.insert(kCompromised);
  attack.delta = 300.0;  // inflate the reported total

  std::printf("== epoch with a compromised aggregator (node %u) ==\n", kCompromised);
  std::uint64_t seed = 9001;
  {
    net::NetworkConfig cfg;
    cfg.node_count = kNodes;
    cfg.seed = seed;
    net::Network network(cfg);
    core::IcpdaConfig proto_cfg;
    const auto out =
        core::run_icpda_epoch(network, proto_cfg, proto::constant_reading(1.0), keys, attack);
    std::printf("pollution events: %u\n", out.pollution_events);
    std::printf("epoch %s (%u significant alarms, %zu total)\n",
                out.accepted() ? "ACCEPTED — attack missed!" : "REJECTED",
                out.significant_alarms, out.alarms.size());
    for (const auto& alarm : out.alarms) {
      if (alarm.kind != proto::AlarmMsg::kValueTamper) continue;
      std::printf("  witness %u accuses %u: expected %.1f, observed %.1f\n",
                  alarm.witness, alarm.accused, alarm.expected_sum, alarm.observed_sum);
    }
  }

  std::printf("\n== isolating the polluter by participation bisection ==\n");
  std::uint64_t epoch_no = 0;
  const core::EpochRunner oracle = [&](const net::Bytes& mask) {
    net::NetworkConfig cfg;
    cfg.node_count = kNodes;
    cfg.seed = seed + (++epoch_no);
    net::Network network(cfg);
    core::IcpdaConfig proto_cfg;
    proto_cfg.allowed_mask = mask;
    const auto out =
        core::run_icpda_epoch(network, proto_cfg, proto::constant_reading(1.0), keys, attack);
    std::printf("  round %llu: %s\n", static_cast<unsigned long long>(epoch_no),
                out.accepted() ? "clean" : "rejected");
    return out.accepted();
  };
  const auto result = core::localize_polluter(kNodes, oracle, 120);
  if (result.isolated) {
    std::printf("isolated node %u after %u rounds (%s)\n", *result.isolated,
                result.rounds,
                *result.isolated == kCompromised ? "correct" : "WRONG");
  } else {
    std::printf("no polluter isolated after %u rounds\n", result.rounds);
  }
  return 0;
}
