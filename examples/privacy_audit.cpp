// Privacy audit: how much can attackers of increasing strength infer?
//
// Uses the exact linear-algebra auditor (not formulas): an attacker's
// view is a set of linear equations over secrets and blinding values;
// a reading is disclosed exactly when that system pins it down. The
// audit sweeps eavesdropping strength and collusion, for iCPDA
// clusters and the SMART slicing baseline.
#include <cstdio>

#include "analysis/models.h"
#include "attacks/eavesdropper.h"
#include "sim/rng.h"

int main() {
  using namespace icpda;
  sim::Rng rng(0xA0D17);

  std::printf("== eavesdropping: P[reading disclosed] by cluster size ==\n");
  std::printf("px\tm=2\tm=3\tm=4\tSMART(l=2)\n");
  for (const double px : {0.1, 0.2, 0.3, 0.5}) {
    attacks::SmartView smart;
    smart.l = 2;
    smart.incoming = 1;
    smart.px = px;
    std::printf("%.1f\t%.4f\t%.4f\t%.4f\t%.4f\n", px,
                attacks::estimate_disclosure_probability(2, px, 2000, rng),
                attacks::estimate_disclosure_probability(3, px, 2000, rng),
                attacks::estimate_disclosure_probability(4, px, 1000, rng),
                smart.estimate(2000, rng));
  }

  std::printf("\n== collusion: honest member exposed in a cluster of 5 ==\n");
  std::printf("colluders\texposed\n");
  for (std::size_t k = 0; k <= 4; ++k) {
    std::printf("%zu\t\t%.0f%%\n", k,
                100.0 * attacks::estimate_collusion_disclosure(5, k, 200, rng));
  }

  std::printf("\n== a concrete worked scenario ==\n");
  // Cluster {A, B, C}; the attacker broke both of A's outgoing share
  // links and both links into A; the digest (F values) is public.
  auto view = attacks::ClusterView::clean(3);
  view.broken[0][1] = view.broken[0][2] = true;
  view.broken[1][0] = view.broken[2][0] = true;
  const auto disclosed = view.disclosed();
  std::printf("links broken: A->B, A->C, B->A, C->A; F values public\n");
  std::printf("disclosed: A=%s B=%s C=%s\n", disclosed[0] ? "YES" : "no",
              disclosed[1] ? "YES" : "no", disclosed[2] ? "YES" : "no");

  // Same knowledge without the public digest: nothing leaks.
  view.f_public = false;
  const auto without_digest = view.disclosed();
  std::printf("same links, digest withheld: A=%s (the F values matter)\n",
              without_digest[0] ? "YES" : "no");
  return 0;
}
