// Quickstart: run one iCPDA epoch on the paper's reference deployment
// and print what the base station learned.
//
//   $ ./quickstart [nodes] [seed]
//
// Walks through the whole public API surface: build a Network, pick a
// key scheme, define the readings, run an epoch, inspect the outcome.
#include <cstdio>
#include <cstdlib>

#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"

int main(int argc, char** argv) {
  using namespace icpda;

  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // 1. A deployment: N sensors uniform on 400 m x 400 m, 50 m radios,
  //    base station (node 0) at the field center.
  net::NetworkConfig net_cfg;
  net_cfg.node_count = nodes;
  net_cfg.seed = seed;
  net::Network network(net_cfg);
  std::printf("deployment: %zu nodes, average degree %.1f, %s\n", network.size(),
              network.topology().average_degree(),
              network.topology().connected() ? "connected" : "NOT connected");

  // 2. Link-level keys: ideal pairwise keys derived from a master
  //    secret (swap in crypto::EgPredistribution to study key reuse).
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(0xC0FFEE)};

  // 3. Sensor readings: a synthetic temperature field (value depends
  //    on position so the SUM is informative).
  const auto readings = [&network](std::uint32_t id) {
    const auto& p = network.topology().position(id);
    return 20.0 + 5.0 * (p.x / 400.0) + 2.0 * (p.y / 400.0);
  };

  // 4. One aggregation epoch with default protocol parameters.
  core::IcpdaConfig cfg;
  const auto outcome = core::run_icpda_epoch(network, cfg, readings, keys);

  // 5. What the base station learned.
  if (!outcome.result) {
    std::printf("no result reached the base station\n");
    return 1;
  }
  std::printf("epoch %s at t=%.2fs\n", outcome.accepted() ? "ACCEPTED" : "REJECTED",
              outcome.closed_at.seconds());
  std::printf("  contributing sensors : %.0f of %zu\n", outcome.result->count, nodes - 1);
  std::printf("  SUM of readings      : %.2f\n", outcome.result->sum);
  std::printf("  mean reading         : %.3f\n", outcome.result->mean());
  std::printf("  reading stddev       : %.3f\n", outcome.result->stddev());
  std::printf("clustering: %u heads, %u members, %u unclustered, %u failed clusters\n",
              outcome.heads, outcome.members, outcome.unclustered,
              outcome.clusters_failed);
  std::printf("privacy: %u nodes reported with degraded privacy (clusters < %u)\n",
              outcome.degraded_privacy, cfg.min_cluster_size);
  return 0;
}
