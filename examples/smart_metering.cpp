// Smart metering: the paper's motivating application.
//
// An advanced-metering neighbourhood reports power usage every epoch.
// The utility needs the total (billing/planning) but individual
// profiles reveal occupancy — the privacy concern the paper opens
// with. This example runs several metering rounds, compares the
// aggregate against ground truth, and shows what an eavesdropping
// neighbour could and could not learn.
#include <cstdio>
#include <vector>

#include "analysis/models.h"
#include "attacks/eavesdropper.h"
#include "attacks/wiretap.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"

int main() {
  using namespace icpda;

  // A dense urban feeder: 350 meters in a 400 m x 400 m area, plus the
  // data concentrator (base station).
  net::NetworkConfig net_cfg;
  net_cfg.node_count = 350;
  net_cfg.seed = 2026;
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(0x4D455445)};

  std::printf("== advanced metering: 6 fifteen-minute rounds ==\n");
  std::printf("round\ttruth_kW\tcollected_kW\terror%%\taccepted\n");
  for (std::uint32_t round = 1; round <= 6; ++round) {
    net::NetworkConfig cfg_round = net_cfg;
    cfg_round.seed = net_cfg.seed + round;  // fresh channel randomness
    net::Network network(cfg_round);

    // Morning-peak load profile: base load + round-dependent bump,
    // deterministic per (meter, round) so ground truth is computable.
    const auto load_kw = [round](std::uint32_t id) {
      const double base = 0.3 + 0.01 * (id % 17);
      const double peak = 1.5 * (round >= 3 && round <= 5 ? 1.0 : 0.25);
      return base + peak * ((id * 7 + round) % 5) / 5.0;
    };
    double truth = 0.0;
    for (std::uint32_t id = 1; id < cfg_round.node_count; ++id) truth += load_kw(id);

    core::IcpdaConfig proto_cfg;
    proto_cfg.query_id = round;
    const auto out = core::run_icpda_epoch(network, proto_cfg, load_kw, keys);
    const double got = out.result ? out.result->sum : 0.0;
    std::printf("%u\t%.1f\t%.1f\t%.2f\t%s\n", round, truth, got,
                100.0 * (truth - got) / truth, out.accepted() ? "yes" : "NO");
  }

  // What does a curious neighbour (an eavesdropper that captured a few
  // meters) learn about an individual household?
  std::printf("\n== eavesdropper analysis ==\n");
  net::Network network(net_cfg);
  attacks::Wiretap tap(keys, /*captured=*/{77, 142});
  tap.attach(network.channel());
  core::IcpdaConfig proto_cfg;
  core::run_icpda_epoch(network, proto_cfg, proto::constant_reading(1.0), keys);
  std::printf("frames overheard: %llu (%llu encrypted shares, %llu opened)\n",
              static_cast<unsigned long long>(tap.stats().frames_seen),
              static_cast<unsigned long long>(tap.stats().share_frames),
              static_cast<unsigned long long>(tap.stats().shares_opened));
  const double px = tap.effective_px(network.topology());
  std::printf("effective link-compromise probability px = %.4f\n", px);
  std::printf("P[a given household's reading leaks], cluster size 3: %.2e\n",
              analysis::cpda_disclosure_probability(3, px));
  std::printf("(vs %.2e if meters sent readings to a parent in the clear)\n", 1.0);
  return 0;
}
