#!/usr/bin/env python3
"""Advisory memory-footprint gate for the N=1M scaling work.

Runs (or is fed the JSON of) the footprint_probe binary — one iCPDA
epoch at constant paper density with per-subsystem heap accounting —
and compares bytes-per-node against the checked-in baseline
(tools/footprint_baseline.json). A regression beyond the tolerance
prints a loud warning and exits 1; use --update to re-baseline after
an intentional change.

Usage:
    tools/mem_footprint.py --probe build/src/analysis/footprint_probe \
        [--nodes 20000] [--shards 8] [--tolerance 1.25] [--update]
    tools/mem_footprint.py --json probe_output.json   # pre-captured
"""

import argparse
import json
import pathlib
import subprocess
import sys

BASELINE = pathlib.Path(__file__).resolve().parent / "footprint_baseline.json"

SUBSYSTEMS = [
    "topology_bytes",
    "scheduler_bytes",
    "channel_bytes",
    "mac_bytes",
    "metrics_bytes",
    "plan_bytes",
    "object_bytes",
]


def run_probe(probe, nodes, shards, seed):
    cmd = [probe, f"--nodes={nodes}", f"--shards={shards}", f"--seed={seed}"]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True).stdout
    return json.loads(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--probe", help="path to the footprint_probe binary")
    ap.add_argument("--json", help="pre-captured probe JSON instead of running")
    ap.add_argument("--nodes", type=int, default=20000)
    ap.add_argument("--shards", type=int, default=8)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--tolerance", type=float, default=1.25,
                    help="fail above baseline bytes/node * tolerance")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run")
    ap.add_argument("--baseline", default=str(BASELINE))
    args = ap.parse_args()

    if args.json:
        report = json.loads(pathlib.Path(args.json).read_text())
    elif args.probe:
        report = run_probe(args.probe, args.nodes, args.shards, args.seed)
    else:
        ap.error("need --probe or --json")

    bpn = report["bytes_per_node"]
    print(f"footprint: n={report['nodes']} shards={report['shards']} "
          f"total={report['total_bytes'] / 1e6:.1f} MB "
          f"({bpn:.0f} B/node), rss={report['rss_kb'] / 1024:.0f} MB")
    for key in SUBSYSTEMS:
        print(f"  {key:<16} {report[key] / 1e6:10.2f} MB "
              f"({report[key] / report['nodes']:8.1f} B/node)")

    baseline_path = pathlib.Path(args.baseline)
    if args.update or not baseline_path.exists():
        baseline_path.write_text(json.dumps(report, indent=1) + "\n")
        print(f"baseline written: {baseline_path}")
        return 0

    base = json.loads(baseline_path.read_text())
    if base.get("nodes") != report["nodes"] or base.get("shards") != report["shards"]:
        print(f"note: baseline is n={base.get('nodes')} shards={base.get('shards')}; "
              "comparing bytes/node anyway")
    limit = base["bytes_per_node"] * args.tolerance
    verdict = "OK" if bpn <= limit else "REGRESSION"
    print(f"bytes/node: {bpn:.0f} vs baseline {base['bytes_per_node']:.0f} "
          f"(limit {limit:.0f}) -> {verdict}")
    if bpn > limit:
        print("memory footprint regressed; rerun with --update if intentional",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
