#!/usr/bin/env python3
"""Perf-regression smoke over the bench_micro hot-kernel baselines.

Runs bench_micro (google-benchmark JSON output), extracts the DES
substrate + protocol hot-path kernels, and compares them against the
checked-in baselines (BENCH_PR8.json for the single-engine kernels,
BENCH_PR10.json for the sharded-engine kernels under the
micro-instant gate + tile plan; BENCH_PR4/PR7/PR9 are kept as
history — PR9 carried the same sharded kernels pre-§5k, and a kernel
may live in only one active baseline), printing a per-kernel
wall-clock delta. The step is advisory by default (exit 0 regardless
of deltas): CI runners have noisy clocks, so timing regressions are
flagged for a human, not gated. Pass --max-regress PCT to turn it
into a gate locally.

Improvements beyond 10x are also flagged as suspicious: a kernel that
suddenly runs in a tenth of its baseline usually means the compiler
eliminated the measured work (a DoNotOptimize went missing) or the
kernel's workload silently shrank, not a real win.

--baseline may be repeated; all files are merged for the comparison.
Regenerate one baseline on a quiet machine after an intentional perf
change (--update requires exactly one --baseline and writes only the
kernels the filter matched):

    python3 tools/perf_smoke.py --bench build/bench/bench_micro \
        --baseline BENCH_PR8.json --big-n --update

--big-n sets ICPDA_BIG_N=1 so the expensive T3 scaling points
(BM_IcpdaEpoch/3000..5000, single-iteration) are registered too.
"""
import argparse
import json
import os
import subprocess
import sys

# The kernels that form the perf contract (see bench/bench_micro.cc:
# names and Arg lists are kept stable for this comparison).
DEFAULT_FILTER = (
    "BM_SchedulerChurn|BM_SchedulerPushPop|BM_SchedulerCancel|"
    "BM_ChannelBroadcastFanout|BM_IcpdaEpoch|BM_IcpdaEpochSharded|"
    "BM_TopologyBuild|"
    "BM_ServicePipeline|BM_MakeShares|BM_SolveClusterSum|BM_SealOpen|"
    "BM_Prf64|BM_LinkKeyBatch"
)

DEFAULT_BASELINES = ["BENCH_PR8.json", "BENCH_PR10.json"]

# cur < base / SUSPICIOUS_SPEEDUP is treated as "too good to be true".
SUSPICIOUS_SPEEDUP = 10.0


def run_bench(bench, bench_filter, big_n):
    env = dict(os.environ)
    if big_n:
        env["ICPDA_BIG_N"] = "1"
    out = subprocess.run(
        [bench, f"--benchmark_filter={bench_filter}",
         "--benchmark_format=json"],
        check=True, capture_output=True, text=True, env=env)
    results = {}
    for b in json.loads(out.stdout)["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "real_time": b["real_time"],
            "time_unit": b["time_unit"],
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "events_per_epoch" in b:
            entry["events_per_epoch"] = b["events_per_epoch"]
        if "parallel_fraction" in b:
            entry["parallel_fraction"] = b["parallel_fraction"]
        results[b["name"]] = entry
    return results


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", default="build/bench/bench_micro",
                    help="path to the bench_micro binary")
    ap.add_argument("--baseline", action="append", default=None,
                    help="checked-in baseline JSON (repeatable; default "
                         f"{' + '.join(DEFAULT_BASELINES)})")
    ap.add_argument("--filter", default=DEFAULT_FILTER,
                    help="google-benchmark regex of kernels to run")
    ap.add_argument("--big-n", action="store_true",
                    help="register the expensive T3 points (ICPDA_BIG_N=1)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run")
    ap.add_argument("--max-regress", type=float, default=None, metavar="PCT",
                    help="fail if any kernel slows by more than PCT percent")
    args = ap.parse_args()
    baselines = args.baseline or DEFAULT_BASELINES

    current = run_bench(args.bench, args.filter, args.big_n)
    if not current:
        sys.exit("perf_smoke: benchmark filter matched nothing")

    if args.update:
        if len(baselines) != 1:
            sys.exit("perf_smoke: --update takes exactly one --baseline")
        doc = {
            "schema": "icpda-perf-baseline-v1",
            "note": ("Hot-kernel baseline; regenerate with "
                     "tools/perf_smoke.py --update on a quiet machine "
                     "and review the diff"),
            "benchmarks": current,
        }
        with open(baselines[0], "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"perf_smoke: wrote {len(current)} kernels to {baselines[0]}")
        return

    baseline = {}
    source = {}  # kernel name -> baseline file it was loaded from
    for path in baselines:
        with open(path, encoding="utf-8") as fh:
            for name, entry in json.load(fh)["benchmarks"].items():
                if name in baseline:
                    sys.exit(f"perf_smoke: kernel {name} appears in both "
                             f"{source[name]} and {path}")
                baseline[name] = entry
                source[name] = path

    worst = 0.0
    suspicious = []
    width = max(len(n) for n in baseline)
    print(f"{'kernel':<{width}}  {'baseline':>12}  {'now':>12}  delta")
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"{name:<{width}}  {'—':>12}  {'—':>12}  "
                  f"(in {source[name]} but not run)")
            continue
        if cur["time_unit"] != base["time_unit"]:
            sys.exit(f"perf_smoke: {name}: unit changed "
                     f"{base['time_unit']} (from {source[name]}) -> "
                     f"{cur['time_unit']}")
        delta = 100.0 * (cur["real_time"] - base["real_time"]) / base["real_time"]
        worst = max(worst, delta)
        unit = base["time_unit"]
        flag = ""
        if cur["real_time"] < base["real_time"] / SUSPICIOUS_SPEEDUP:
            suspicious.append(name)
            flag = "  SUSPICIOUS"
        print(f"{name:<{width}}  {base['real_time']:>10.1f}{unit}  "
              f"{cur['real_time']:>10.1f}{unit}  {delta:+.1f}%{flag}")
    for name in suspicious:
        print(f"perf_smoke: WARNING: {name} improved more than "
              f"{SUSPICIOUS_SPEEDUP:.0f}x over its baseline — verify the "
              f"kernel still measures real work (DoNotOptimize intact, "
              f"workload unchanged) before celebrating or re-baselining")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  (new kernel — not in baseline)")

    if args.max_regress is not None and worst > args.max_regress:
        sys.exit(f"perf_smoke: worst regression {worst:+.1f}% exceeds "
                 f"--max-regress {args.max_regress}%")


if __name__ == "__main__":
    main()
