// Property tests for the CPDA share algebra: thousands of randomized
// cases of the reconstruction laws the protocol's integrity argument
// rests on. Where the existing cpda_algebra_test pins down specific
// behaviours, this suite hammers the *properties*:
//
//   1. exact reconstruction — for random values, cluster sizes and
//      seeds, assemble-and-solve recovers the true sum (within the
//      documented float tolerance; bit-exactly on the integer path),
//   2. permutation invariance — the recovered sum does not depend on
//      the order members are assembled or seeds are listed,
//   3. singular-system rejection — duplicate or zero seeds are refused
//      (nullopt / empty weights), never silently mis-solved.
//
// Labelled `slow` in CTest: 10k cases are cheap (<~1 s) but this suite
// is excluded from the tier-1 `-LE slow` lane by policy so its budget
// can grow freely.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/cpda_algebra.h"
#include "sim/rng.h"

namespace icpda::core {
namespace {

using proto::Aggregate;

/// Distinct non-zero random seeds (the x-coordinates members evaluate
/// their polynomials at). Drawn integral in [1, 64] then shuffled, so
/// distinctness is by construction and conditioning stays sane.
std::vector<double> random_seeds(std::size_t m, sim::Rng& rng) {
  std::vector<double> pool(64);
  std::iota(pool.begin(), pool.end(), 1.0);
  for (std::size_t i = pool.size() - 1; i > 0; --i) {
    std::swap(pool[i], pool[rng.below(i + 1)]);
  }
  pool.resize(m);
  return pool;
}

/// Assemble F_j = sum_i shares[i][j] for the given member order.
std::vector<Aggregate> assemble(const std::vector<std::vector<Aggregate>>& shares,
                                const std::vector<std::size_t>& order) {
  const std::size_t m = shares.size();
  std::vector<Aggregate> out(m);
  for (std::size_t j = 0; j < m; ++j) {
    for (const std::size_t i : order) out[j].merge(shares[i][j]);
  }
  return out;
}

/// Tolerance model from cpda_algebra_test: Lagrange weights grow ~4^m,
/// shares are O(coeff_scale).
double solve_tol(std::size_t m) {
  return std::max(1e-9, 2e-13 * 1000.0 * std::pow(4.0, static_cast<double>(m)));
}

// ---------------------------------------------------------------------
// Property 1: reconstruction. ~10k randomized (value, m, seed) cases.

TEST(CpdaPropertyTest, ReconstructionHoldsOverRandomCases) {
  sim::Rng rng(0xC9DA);
  constexpr int kCases = 2500;  // x4 assertions/case ≈ 10k checks
  for (int c = 0; c < kCases; ++c) {
    const std::size_t m = 1 + rng.below(8);
    const auto seeds = random_seeds(m, rng);

    std::vector<std::vector<Aggregate>> shares(m);
    Aggregate truth;
    for (std::size_t i = 0; i < m; ++i) {
      const Aggregate v = Aggregate::of(rng.uniform(-1000.0, 1000.0));
      truth.merge(v);
      shares[i] = make_shares(v, seeds, rng);
      ASSERT_EQ(shares[i].size(), m);
    }
    std::vector<std::size_t> order(m);
    std::iota(order.begin(), order.end(), std::size_t{0});
    const auto solved = solve_cluster_sum(seeds, assemble(shares, order));
    ASSERT_TRUE(solved.has_value()) << "case " << c << " m=" << m;

    const double tol = solve_tol(m);
    ASSERT_NEAR(solved->count, truth.count, tol * static_cast<double>(m))
        << "case " << c;
    ASSERT_NEAR(solved->sum, truth.sum, tol * std::max(1.0, std::abs(truth.sum)))
        << "case " << c;
    ASSERT_NEAR(solved->sum_sq, truth.sum_sq,
                10 * tol * std::max(1.0, truth.sum_sq))
        << "case " << c;
  }
}

// ---------------------------------------------------------------------
// Property 2: permutation invariance. Assembly order is float-exact
// invariant only up to rounding, so compare against a tolerance far
// below the protocol's tamper threshold; seed-order permutation must
// agree on the recovered value the same way.

TEST(CpdaPropertyTest, RecoveredSumIsPermutationInvariant) {
  sim::Rng rng(0xBEEF);
  constexpr int kCases = 1000;
  for (int c = 0; c < kCases; ++c) {
    const std::size_t m = 2 + rng.below(6);
    const auto seeds = random_seeds(m, rng);
    std::vector<std::vector<Aggregate>> shares(m);
    for (std::size_t i = 0; i < m; ++i) {
      shares[i] = make_shares(Aggregate::of(rng.uniform(-100.0, 100.0)), seeds, rng);
    }

    std::vector<std::size_t> order(m);
    std::iota(order.begin(), order.end(), std::size_t{0});
    const auto base = solve_cluster_sum(seeds, assemble(shares, order));
    ASSERT_TRUE(base.has_value());

    // Random member permutation: F_j sums commute.
    for (std::size_t i = m - 1; i > 0; --i) std::swap(order[i], order[rng.below(i + 1)]);
    const auto permuted = solve_cluster_sum(seeds, assemble(shares, order));
    ASSERT_TRUE(permuted.has_value());
    const double tol = solve_tol(m);
    ASSERT_NEAR(permuted->sum, base->sum, tol * std::max(1.0, std::abs(base->sum)))
        << "case " << c << " m=" << m;
    ASSERT_NEAR(permuted->count, base->count, tol * static_cast<double>(m));

    // Seed permutation: shuffle (seed, F) pairs together — the system
    // is the same set of equations, the solution must agree.
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<std::size_t> perm = order;
    for (std::size_t i = m - 1; i > 0; --i) std::swap(perm[i], perm[rng.below(i + 1)]);
    const auto assembled = assemble(shares, order);
    std::vector<double> seeds_p(m);
    std::vector<Aggregate> assembled_p(m);
    for (std::size_t j = 0; j < m; ++j) {
      seeds_p[j] = seeds[perm[j]];
      assembled_p[j] = assembled[perm[j]];
    }
    const auto reseeded = solve_cluster_sum(seeds_p, assembled_p);
    ASSERT_TRUE(reseeded.has_value());
    ASSERT_NEAR(reseeded->sum, base->sum, tol * std::max(1.0, std::abs(base->sum)))
        << "case " << c << " m=" << m;
  }
}

// ---------------------------------------------------------------------
// Property 3: singular systems are rejected, never mis-solved.

TEST(CpdaPropertyTest, SingularSeedSystemsAreRejected) {
  sim::Rng rng(0x5EED);
  constexpr int kCases = 2000;
  for (int c = 0; c < kCases; ++c) {
    const std::size_t m = 2 + rng.below(6);
    auto seeds = random_seeds(m, rng);
    std::vector<Aggregate> assembled(m, Aggregate::of(1.0));

    // Corruption A: duplicate one seed onto another position.
    auto dup = seeds;
    const std::size_t a = rng.below(m);
    std::size_t b = rng.below(m);
    if (b == a) b = (b + 1) % m;
    dup[a] = dup[b];
    ASSERT_FALSE(solve_cluster_sum(dup, assembled).has_value()) << "case " << c;
    ASSERT_TRUE(lagrange_weights_at_zero(dup).empty()) << "case " << c;

    // Corruption B: zero out one seed (evaluating at x=0 leaks V and
    // breaks the weights' derivation; refused outright).
    auto zeroed = seeds;
    zeroed[rng.below(m)] = 0.0;
    ASSERT_FALSE(solve_cluster_sum(zeroed, assembled).has_value()) << "case " << c;
    ASSERT_TRUE(lagrange_weights_at_zero(zeroed).empty()) << "case " << c;

    // Corruption C: size mismatch between seeds and assembled shares.
    std::vector<Aggregate> short_assembled(m - 1, Aggregate::of(1.0));
    ASSERT_FALSE(solve_cluster_sum(seeds, short_assembled).has_value());

    // The uncorrupted system still solves.
    ASSERT_TRUE(solve_cluster_sum(seeds, assembled).has_value()) << "case " << c;
  }
}

// ---------------------------------------------------------------------
// The exact integer path obeys the same laws, bit-exactly.

TEST(CpdaPropertyTest, ExactPathReconstructsBitExactly) {
  sim::Rng rng(0x1237);
  constexpr int kCases = 1500;
  for (int c = 0; c < kCases; ++c) {
    const std::size_t m = 1 + rng.below(8);
    // Distinct small integer seeds 1..16, shuffled.
    std::vector<std::int64_t> pool(16);
    std::iota(pool.begin(), pool.end(), std::int64_t{1});
    for (std::size_t i = pool.size() - 1; i > 0; --i) {
      std::swap(pool[i], pool[rng.below(i + 1)]);
    }
    std::vector<std::int64_t> seeds(pool.begin(),
                                    pool.begin() + static_cast<std::ptrdiff_t>(m));

    std::int64_t truth = 0;
    std::vector<std::int64_t> assembled(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto v = static_cast<std::int64_t>(rng.below(2'000'001)) - 1'000'000;
      truth += v;
      const auto share_set = make_shares_exact(v, seeds, rng);
      ASSERT_EQ(share_set.shares.size(), m);
      for (std::size_t j = 0; j < m; ++j) assembled[j] += share_set.shares[j];
    }
    const auto solved = solve_cluster_sum_exact(seeds, assembled);
    ASSERT_TRUE(solved.has_value()) << "case " << c << " m=" << m;
    ASSERT_EQ(*solved, truth) << "case " << c << " m=" << m;

    // Singular rejection on the integer path too.
    if (m >= 2) {
      auto dup = seeds;
      dup[0] = dup[1];
      ASSERT_FALSE(solve_cluster_sum_exact(dup, assembled).has_value());
      auto zeroed = seeds;
      zeroed[0] = 0;
      ASSERT_FALSE(solve_cluster_sum_exact(zeroed, assembled).has_value());
    }
  }
}

}  // namespace
}  // namespace icpda::core
