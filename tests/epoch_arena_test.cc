// Epoch-arena reuse invariants for the SoA ClusterContext and the
// protocol on top of it.
//
// set_roster() resets per-epoch arenas in place (capacity preserved)
// instead of handing out a fresh heap object per epoch/recovery round.
// These tests pin the contract that reuse is invisible: a warm context
// must be observably identical to a freshly constructed one after any
// roster install, including the recovery-narrowing path, and a network
// driven through consecutive epochs (with a mid-epoch member outage
// forcing a Phase II recovery reset) must produce results, counters and
// a balanced trace-span stream identical to an independent fresh run.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/trace_report.h"
#include "core/cluster.h"
#include "core/faults.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace icpda::core {
namespace {

proto::Aggregate triple(double c, double s, double q) {
  proto::Aggregate a;
  a.count = c;
  a.sum = s;
  a.sum_sq = q;
  return a;
}

/// Every observable the protocol reads off a ClusterContext.
void expect_same_observables(const ClusterContext& a, const ClusterContext& b) {
  ASSERT_EQ(a.has_roster(), b.has_roster());
  EXPECT_EQ(a.head(), b.head());
  ASSERT_EQ(a.members(), b.members());
  EXPECT_EQ(a.seed_ints(), b.seed_ints());
  EXPECT_EQ(a.seed_values(), b.seed_values());
  EXPECT_EQ(a.my_index(), b.my_index());
  EXPECT_EQ(a.shares_received(), b.shares_received());
  EXPECT_EQ(a.announces_received(), b.announces_received());
  EXPECT_EQ(a.complete(), b.complete());
  EXPECT_EQ(a.consistent(), b.consistent());
  EXPECT_EQ(a.contributor_set(), b.contributor_set());
  EXPECT_EQ(a.announced_f_values(), b.announced_f_values());

  std::vector<std::uint32_t> contribs_a;
  std::vector<std::uint32_t> contribs_b;
  const auto f_a = a.assemble(contribs_a);
  const auto f_b = b.assemble(contribs_b);
  EXPECT_EQ(contribs_a, contribs_b);
  EXPECT_EQ(f_a, f_b);

  const auto v_a = a.solve();
  const auto v_b = b.solve();
  ASSERT_EQ(v_a.has_value(), v_b.has_value());
  if (v_a) {
    EXPECT_EQ(*v_a, *v_b);
  }

  for (const std::uint32_t member : a.members()) {
    EXPECT_EQ(a.in_roster(member), b.in_roster(member));
    EXPECT_EQ(a.seed_of(member), b.seed_of(member));
    EXPECT_EQ(a.announced(member), b.announced(member));
    EXPECT_EQ(a.included_by(member), b.included_by(member));
  }
}

/// One randomized epoch's worth of context traffic, derived entirely
/// from `rng` so the identical script can be replayed into a warm and
/// a fresh context.
void run_random_epoch(ClusterContext& ctx, sim::Rng rng) {
  const std::size_t m = 3 + rng() % 5;
  std::vector<std::uint32_t> members(m);
  std::vector<std::uint32_t> seeds(m);
  for (std::size_t i = 0; i < m; ++i) {
    members[i] = 10 + static_cast<std::uint32_t>(i) * 7;
    seeds[i] = static_cast<std::uint32_t>(i) + 1;
  }
  const std::uint32_t self = members[rng() % m];
  ASSERT_TRUE(ctx.set_roster(members[0], members, seeds, self));

  if (rng() % 4 != 0) {
    ctx.set_kept_share(triple(1.0, rng.uniform(-9.0, 9.0), rng.uniform(0.0, 9.0)));
  }
  const std::size_t share_events = rng() % (2 * m);
  for (std::size_t i = 0; i < share_events; ++i) {
    // Mostly roster members (repeats overwrite), occasionally an
    // out-of-roster sender that must be ignored.
    const std::uint32_t sender = rng() % 8 == 0 ? 999 : members[rng() % m];
    ctx.record_share(sender, triple(1.0, rng.uniform(-5.0, 5.0), 1.0));
  }
  const std::size_t announce_events = rng() % (m + 2);
  for (std::size_t i = 0; i < announce_events; ++i) {
    const std::uint32_t who = rng() % 8 == 0 ? 999 : members[rng() % m];
    std::vector<std::uint32_t> contribs;
    for (const std::uint32_t member : members) {
      if (rng() % 3 != 0) contribs.push_back(member);
    }
    ctx.record_announce(who, triple(1.0, rng.uniform(-5.0, 5.0), 1.0), contribs);
  }
}

// ---------------------------------------------------------------------
// A context reused across many randomized epochs must stay observably
// identical to a context constructed fresh for the same script.

TEST(EpochArenaTest, ReusedContextMatchesFreshAcrossRandomEpochs) {
  sim::Rng seeder(0xA12E7A);
  ClusterContext warm;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const std::uint64_t script_seed = seeder();
    run_random_epoch(warm, sim::Rng(script_seed));
    ClusterContext fresh;
    run_random_epoch(fresh, sim::Rng(script_seed));
    expect_same_observables(warm, fresh);
  }
}

// ---------------------------------------------------------------------
// The recovery path installs a *narrower* roster into the same context
// (smaller arenas than the round-0 ones it overwrites) — nothing from
// round 0 may survive: no share/announce counts, no kept share, no
// evicted member's state.

TEST(EpochArenaTest, RecoveryNarrowingLeavesNoRoundZeroState) {
  ClusterContext ctx;
  const std::vector<std::uint32_t> members{10, 20, 30, 40, 50, 60};
  const std::vector<std::uint32_t> seeds{1, 2, 3, 4, 5, 6};
  ASSERT_TRUE(ctx.set_roster(10, members, seeds, 20));
  ctx.set_kept_share(triple(1, 2, 3));
  for (const std::uint32_t sender : members) ctx.record_share(sender, triple(1, 1, 1));
  for (const std::uint32_t who : members) {
    ctx.record_announce(who, triple(1, 1, 1), members);
  }
  ASSERT_TRUE(ctx.complete());

  // Survivors {10, 20, 30} keep their original seeds (recovery rule).
  ASSERT_TRUE(ctx.set_roster(10, {10, 20, 30}, {1, 2, 3}, 20));
  EXPECT_EQ(ctx.shares_received(), 0u);
  EXPECT_EQ(ctx.announces_received(), 0u);
  EXPECT_FALSE(ctx.complete());
  EXPECT_FALSE(ctx.consistent());
  EXPECT_TRUE(ctx.contributor_set().empty());
  for (const std::uint32_t member : {10u, 20u, 30u}) {
    EXPECT_FALSE(ctx.announced(member));
    EXPECT_EQ(ctx.included_by(member), 0u);
  }
  std::vector<std::uint32_t> contribs;
  const auto f = ctx.assemble(contribs);  // kept share must not survive either
  EXPECT_TRUE(contribs.empty());
  EXPECT_EQ(f, proto::Aggregate{});
  // Evicted members' traffic is now out-of-roster and ignored.
  ctx.record_share(40, triple(9, 9, 9));
  ctx.record_announce(50, triple(9, 9, 9), {10, 20, 30});
  EXPECT_EQ(ctx.shares_received(), 0u);
  EXPECT_EQ(ctx.announces_received(), 0u);

  // And the narrowed warm context matches a fresh one fed identically.
  ClusterContext fresh;
  ASSERT_TRUE(fresh.set_roster(10, {10, 20, 30}, {1, 2, 3}, 20));
  expect_same_observables(ctx, fresh);

  // A failed roster install must leave the installed state untouched.
  ASSERT_FALSE(ctx.set_roster(10, {10, 20, 30}, {1, 2, 2}, 20));  // dup seeds
  ASSERT_FALSE(ctx.set_roster(10, {10, 30}, {1, 3}, 20));         // self missing
  expect_same_observables(ctx, fresh);
}

// ---------------------------------------------------------------------
// Protocol level: three consecutive epochs on one network — the middle
// one with a member outage long enough to force the head's Phase II
// recovery reset (the in-place re-roster) — must be byte-identical to
// an independent fresh network driven through the same sequence, and
// the trace span stream must stay balanced throughout.

TEST(EpochArenaTest, ThreeEpochsWithRecoveryMatchFreshRunExactly) {
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(0x7357)};
  // Star around head 1: members 2..4 in range of the head (node 3 out
  // of the base station's range), pinned by pc = 0 + force_head.
  const net::Topology topo{{{0, 0}, {30, 0}, {30, 30}, {60, 0}, {30, -30}}, 50.0};
  AttackPlan pin_head;
  pin_head.polluters.insert(1);
  pin_head.delta = 1e-4;
  pin_head.force_head = true;

  struct EpochResult {
    IcpdaOutcome outcome;
    std::map<std::string, std::uint64_t, std::less<>> counters;
  };
  const auto drive = [&](net::Network& network) {
    std::vector<EpochResult> out;
    for (int epoch = 0; epoch < 3; ++epoch) {
      IcpdaConfig cfg;
      cfg.pc = 0.0;
      FaultPlan faults;
      if (epoch == 1) {
        // Node 4 goes dark after the roster but before its F unicast
        // and stays down past the recovery round, then comes back.
        faults.outages[4].push_back({1.0, 8.0});
      }
      EpochResult r;
      r.outcome = run_icpda_epoch(network, cfg, proto::constant_reading(1.0),
                                  keys, pin_head, faults);
      r.counters = network.metrics().counters();
      out.push_back(std::move(r));
    }
    return out;
  };

  net::NetworkConfig net_cfg;
  net_cfg.node_count = 5;
  net_cfg.seed = 33;
  // Transmit-side spans only, as in TraceConservationTest: they wrap
  // every epoch boundary and cannot overflow the ring.
  sim::Tracer::Config trace_cfg;
  trace_cfg.rx_events = false;
  trace_cfg.mac_events = false;

  net::Network warm_net(topo, net_cfg);
  warm_net.enable_trace(trace_cfg);
  const auto warm = drive(warm_net);

  net::Network fresh_net(topo, net_cfg);
  fresh_net.enable_trace(trace_cfg);
  const auto fresh = drive(fresh_net);

  // The outage epoch actually exercised the recovery reset.
  EXPECT_GE(warm_net.metrics().counter("icpda.phase2_recovery"), 1u);
  EXPECT_GE(warm_net.metrics().counter("icpda.recovery_roster"), 1u);

  ASSERT_EQ(warm.size(), fresh.size());
  for (std::size_t e = 0; e < warm.size(); ++e) {
    const auto& a = warm[e].outcome;
    const auto& b = fresh[e].outcome;
    ASSERT_EQ(a.result.has_value(), b.result.has_value()) << "epoch " << e;
    if (a.result) {
      EXPECT_EQ(*a.result, *b.result) << "epoch " << e;
    }
    EXPECT_EQ(a.significant_alarms, b.significant_alarms) << "epoch " << e;
    EXPECT_EQ(a.clusters_failed, b.clusters_failed) << "epoch " << e;
    EXPECT_EQ(a.reporters, b.reporters) << "epoch " << e;
    // Cumulative counter maps (every name, every value) must agree.
    EXPECT_EQ(warm[e].counters, fresh[e].counters) << "epoch " << e;
    // Benign churn never converts into a rejection.
    EXPECT_TRUE(a.accepted()) << "epoch " << e;
  }

  // Span stream balanced and identical between the two runs.
  for (net::Network* network : {&warm_net, &fresh_net}) {
    ASSERT_EQ(network->tracer().dropped(), 0u);
    std::uint64_t begins = 0;
    std::uint64_t ends = 0;
    for (const sim::TraceEvent& ev : network->tracer().merged()) {
      if (ev.kind == sim::TraceEvent::Kind::kBegin) ++begins;
      if (ev.kind == sim::TraceEvent::Kind::kEnd) ++ends;
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);
    EXPECT_EQ(analysis::fold_trace(network->tracer().merged()).unmatched_ends, 0u);
  }
}

}  // namespace
}  // namespace icpda::core
