// End-to-end privacy: take the ACTUAL clusters a live epoch formed and
// audit disclosure with the rank test, under eavesdropping strengths
// derived from the ACTUAL key scheme + captured nodes (wiretap). This
// closes the loop between the protocol implementation and the
// analytical privacy claims.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attacks/eavesdropper.h"
#include "attacks/wiretap.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"

namespace icpda {
namespace {

struct EpochRig {
  EpochRig(net::Network& network, const core::IcpdaConfig& cfg,
           const crypto::KeyScheme& keys) {
    network.attach_apps([&, this](net::Node&) {
      auto app = std::make_unique<core::IcpdaApp>(
          cfg, proto::constant_reading(1.0), &keys, &attack, &outcome);
      apps.push_back(app.get());
      return app;
    });
    network.run(sim::seconds(cfg.timing.start_delay_s + cfg.phase2_budget_s) +
                cfg.timing.close_delay() + sim::seconds(3.0));
  }
  core::AttackPlan attack;
  core::IcpdaOutcome outcome;
  std::vector<core::IcpdaApp*> apps;
};

/// Build a ClusterView for the live cluster headed by `head_app`,
/// marking share links readable per the wiretap.
attacks::ClusterView view_of(const core::IcpdaApp& head_app,
                             const attacks::Wiretap& tap) {
  const auto& ctx = head_app.cluster();
  const auto& members = ctx.members();
  auto view = attacks::ClusterView::clean(members.size());
  view.seeds = ctx.seed_values();
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = 0; j < members.size(); ++j) {
      if (i == j) continue;
      // A share i->j is observable iff the attacker can read BOTH legs
      // of the star relay (i->head and head->j) — or the direct link
      // when one endpoint is the head. The payload is sealed end to
      // end under k_{ij}, so what actually matters is that one key:
      // the wiretap reads it iff it holds k_{ij}'s link.
      view.broken[i][j] = tap.link_readable(members[i], members[j]);
    }
  }
  return view;
}

TEST(PrivacyEndToEndTest, PairwiseKeysLeakNothingWithoutCaptures) {
  net::NetworkConfig ncfg;
  ncfg.node_count = 350;
  ncfg.seed = 91;
  net::Network network(ncfg);
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(1)};
  const attacks::Wiretap tap(keys, {});
  core::IcpdaConfig cfg;
  EpochRig rig(network, cfg, keys);

  int clusters_checked = 0;
  for (auto* app : rig.apps) {
    if (app->role() != core::ClusterRole::kHead || app->cluster().size() < 3) continue;
    const auto disclosed = view_of(*app, tap).disclosed();
    for (const bool d : disclosed) EXPECT_FALSE(d);
    ++clusters_checked;
  }
  EXPECT_GT(clusters_checked, 20);
}

TEST(PrivacyEndToEndTest, CapturedMembersExposeExactlyTheAlgebraicVictims) {
  net::NetworkConfig ncfg;
  ncfg.node_count = 350;
  ncfg.seed = 92;
  net::Network network(ncfg);
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(2)};
  core::IcpdaConfig cfg;
  EpochRig rig(network, cfg, keys);

  // For each live cluster of size >= 3, capture all members but one:
  // the remaining member's reading must be disclosed (m-1 collusion);
  // capture all but two: nothing is.
  int exposed_checks = 0;
  int safe_checks = 0;
  for (auto* app : rig.apps) {
    if (app->role() != core::ClusterRole::kHead) continue;
    const auto& members = app->cluster().members();
    if (members.size() < 3 || exposed_checks >= 8) continue;

    auto view = attacks::ClusterView::clean(members.size());
    view.seeds = app->cluster().seed_values();
    for (std::size_t c = 1; c < members.size(); ++c) view.colluders[c] = true;
    EXPECT_TRUE(view.disclosed()[0]) << "cluster head " << members[0];
    ++exposed_checks;

    view.colluders[1] = false;  // now only m-2 colluders
    const auto d = view.disclosed();
    EXPECT_FALSE(d[0]);
    EXPECT_FALSE(d[1]);
    ++safe_checks;
  }
  EXPECT_GT(exposed_checks, 3);
  EXPECT_EQ(exposed_checks, safe_checks);
}

TEST(PrivacyEndToEndTest, EgKeyReuseCreatesMeasurableExposure) {
  net::NetworkConfig ncfg;
  ncfg.node_count = 300;
  ncfg.seed = 93;
  net::Network network(ncfg);
  sim::Rng rng(7);
  // Heavy key reuse: small pool.
  const crypto::EgPredistribution keys(300, 400, 50, rng);
  attacks::Wiretap tap(keys, {10, 60, 110, 160, 210, 260});
  core::IcpdaConfig cfg;
  EpochRig rig(network, cfg, keys);

  std::size_t victims = 0;
  std::size_t members_total = 0;
  for (auto* app : rig.apps) {
    if (app->role() != core::ClusterRole::kHead || app->cluster().size() < 2) continue;
    const auto disclosed = view_of(*app, tap).disclosed();
    for (const bool d : disclosed) victims += d ? 1 : 0;
    members_total += disclosed.size();
  }
  ASSERT_GT(members_total, 50u);
  // Reuse this heavy must expose someone, but far from everyone.
  EXPECT_GT(victims, 0u);
  EXPECT_LT(victims, members_total / 2);
}

}  // namespace
}  // namespace icpda
