// Network substrate: geometry, topology, wire format.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/geometry.h"
#include "net/topology.h"
#include "net/wire.h"
#include "sim/rng.h"

namespace icpda::net {
namespace {

// ---- geometry -------------------------------------------------------

TEST(GeometryTest, DistanceBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1, 1}, {1, 1}), 0.0);
}

TEST(FieldTest, SamplingStaysInside) {
  const Field field(400, 400);
  sim::Rng rng(1);
  for (const auto& p : field.sample_n(rng, 1000)) {
    EXPECT_TRUE(field.contains(p));
  }
  EXPECT_EQ(field.center().x, 200);
  EXPECT_THROW(Field(0, 10), std::invalid_argument);
}

TEST(FieldTest, ExpectedDegreeFormula) {
  const Field field(400, 400);
  // (n-1) * pi * 50^2 / 160000
  EXPECT_NEAR(field.expected_degree(400, 50.0), 399 * 3.14159265 * 2500 / 160000, 0.01);
  EXPECT_DOUBLE_EQ(field.expected_degree(0, 50.0), 0.0);
}

// ---- topology -------------------------------------------------------

TEST(TopologyTest, MatchesBruteForceAdjacency) {
  sim::Rng rng(5);
  const Field field(400, 400);
  const auto pts = field.sample_n(rng, 150);
  const double r = 50.0;
  const Topology topo(pts, r);
  for (NodeId a = 0; a < pts.size(); ++a) {
    for (NodeId b = 0; b < pts.size(); ++b) {
      if (a == b) continue;
      const bool expected = distance(pts[a], pts[b]) <= r;
      EXPECT_EQ(topo.adjacent(a, b), expected) << a << "," << b;
    }
  }
}

TEST(TopologyTest, DegreeAndEdgeAccounting) {
  // Three collinear points, spacing 10, range 10: 0-1 and 1-2 adjacent.
  const Topology topo({{0, 0}, {10, 0}, {20, 0}}, 10.0);
  EXPECT_EQ(topo.degree(0), 1u);
  EXPECT_EQ(topo.degree(1), 2u);
  EXPECT_EQ(topo.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(topo.average_degree(), 4.0 / 3.0);
  EXPECT_EQ(topo.min_degree(), 1u);
}

TEST(TopologyTest, ConnectivityAndHops) {
  const Topology line({{0, 0}, {10, 0}, {20, 0}, {100, 0}}, 10.0);
  EXPECT_FALSE(line.connected());
  const auto hops = line.hop_distances(0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 2u);
  EXPECT_EQ(hops[3], Topology::kUnreachable);
  EXPECT_EQ(line.reachable_from(0).size(), 3u);
}

TEST(TopologyTest, RandomTopologyPlacesBaseStationAtCenter) {
  sim::Rng rng(9);
  const Field field(400, 400);
  const auto topo = make_random_topology(field, 100, 50.0, rng, true);
  EXPECT_EQ(topo.position(0).x, 200.0);
  EXPECT_EQ(topo.position(0).y, 200.0);
}

TEST(TopologyTest, PaperDensityTable) {
  // Table I of the paper family: N -> average degree on 400x400, r=50.
  // Our border-corrected uniform-deployment model tracks the published
  // values to within ~10% (the paper's own table rises slightly faster
  // than any uniform-deployment model; see EXPERIMENTS.md), and the
  // simulated deployments must track OUR model tightly.
  const Field field(400, 400);
  const struct {
    std::size_t n;
    double paper_degree;
  } rows[] = {{200, 8.8}, {300, 13.7}, {400, 18.6}, {500, 23.5}, {600, 28.4}};
  sim::Rng rng(123);
  for (const auto& row : rows) {
    double sum = 0.0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      sum += make_random_topology(field, row.n, 50.0, rng, false).average_degree();
    }
    const double measured = sum / trials;
    EXPECT_NEAR(measured, row.paper_degree, 0.10 * row.paper_degree) << "N=" << row.n;
    // Border-corrected expectation: constant correction factor ~0.903
    // of the unclipped-disc degree on this field/range combination.
    const double model = field.expected_degree(row.n, 50.0) * 0.903;
    EXPECT_NEAR(measured, model, 0.5) << "N=" << row.n;
  }
}

// ---- wire -----------------------------------------------------------

TEST(WireTest, RoundTripScalars) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  const Bytes buf = std::move(w).take();

  WireReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(WireTest, RoundTripContainers) {
  WireWriter w;
  w.blob({1, 2, 3});
  w.f64_vec({1.5, -2.5});
  w.u32_vec({7, 8, 9});
  const Bytes buf = std::move(w).take();

  WireReader r(buf);
  EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(r.u32_vec(), (std::vector<std::uint32_t>{7, 8, 9}));
}

TEST(WireTest, EmptyContainers) {
  WireWriter w;
  w.blob({});
  w.u32_vec({});
  const Bytes buf = std::move(w).take();
  WireReader r(buf);
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.u32_vec().empty());
  EXPECT_TRUE(r.done());
}

TEST(WireTest, TruncationThrows) {
  WireWriter w;
  w.u64(1);
  Bytes buf = std::move(w).take();
  buf.pop_back();
  WireReader r(buf);
  EXPECT_THROW(r.u64(), WireError);
}

TEST(WireTest, OversizedLengthPrefixThrows) {
  WireWriter w;
  w.u32(1000000);  // claims a million bytes follow
  const Bytes buf = std::move(w).take();
  WireReader r(buf);
  EXPECT_THROW(r.blob(), WireError);
}

TEST(WireTest, SpecialFloats) {
  WireWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  const Bytes buf = std::move(w).take();
  WireReader r(buf);
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_EQ(r.f64(), 0.0);
}

}  // namespace
}  // namespace icpda::net
