// Tracer unit behaviour and the trace_report toolchain: span stacks,
// ring overflow, epoch finalization, folding, digesting, JSONL and
// Chrome export — plus the determinism contract (tracing is purely
// observational; identical runs yield identical digests).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/trace_report.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"
#include "runner/jsonl.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace icpda::sim {
namespace {

using analysis::fold_trace;
using analysis::trace_digest;

SimTime at(double s) { return seconds(s); }

// ---------------------------------------------------------------------
// Disabled tracer: every recorder is a no-op.

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tr;
  EXPECT_FALSE(tr.enabled());
  tr.begin_span(0, TracePhase::kReport, at(1.0));
  tr.counter(0, TraceCounter::kTxBytes, 42, at(1.0));
  tr.end_span(0, TracePhase::kReport, at(2.0));
  tr.finalize_epoch(at(2.0));
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
  EXPECT_EQ(tr.epoch(), 0u);
  EXPECT_TRUE(tr.merged().empty());
  EXPECT_EQ(tr.current_phase(0), TracePhase::kNone);
}

// ---------------------------------------------------------------------
// Span stack semantics.

TEST(TraceTest, SpanStackTracksInnermostPhase) {
  Tracer tr;
  tr.enable(2);
  EXPECT_EQ(tr.current_phase(0), TracePhase::kNone);
  tr.begin_span(0, TracePhase::kClusterFormation, at(0.1));
  EXPECT_EQ(tr.current_phase(0), TracePhase::kClusterFormation);
  tr.begin_span(0, TracePhase::kShareExchange, at(0.2));
  EXPECT_EQ(tr.current_phase(0), TracePhase::kShareExchange);
  // The other node's stack is independent.
  EXPECT_EQ(tr.current_phase(1), TracePhase::kNone);
  tr.end_span(0, TracePhase::kShareExchange, at(0.3));
  EXPECT_EQ(tr.current_phase(0), TracePhase::kClusterFormation);
  tr.end_span(0, TracePhase::kClusterFormation, at(0.4));
  EXPECT_EQ(tr.current_phase(0), TracePhase::kNone);
}

TEST(TraceTest, EndSpanUnwindsNestedSpans) {
  Tracer tr;
  tr.enable(1);
  tr.begin_span(0, TracePhase::kClusterFormation, at(0.1));
  tr.begin_span(0, TracePhase::kShareExchange, at(0.2));
  // Ending the outer phase implies the inner one is over too.
  tr.end_span(0, TracePhase::kClusterFormation, at(0.3));
  EXPECT_EQ(tr.current_phase(0), TracePhase::kNone);
  // 2 begins + 2 ends (the nested span was closed on the way out).
  EXPECT_EQ(tr.recorded(), 4u);
}

TEST(TraceTest, StrayEndIsDropped) {
  Tracer tr;
  tr.enable(1);
  tr.end_span(0, TracePhase::kReport, at(1.0));
  EXPECT_EQ(tr.recorded(), 0u);
  tr.begin_span(0, TracePhase::kReport, at(1.0));
  tr.end_span(0, TracePhase::kShareExchange, at(2.0));  // no such begin
  EXPECT_EQ(tr.current_phase(0), TracePhase::kReport);
  EXPECT_EQ(tr.recorded(), 1u);  // just the begin
}

TEST(TraceTest, SwitchPhaseIsNoOpOnSamePhase) {
  Tracer tr;
  tr.enable(1);
  tr.switch_phase(0, TracePhase::kReport, at(1.0));
  const auto before = tr.recorded();
  tr.switch_phase(0, TracePhase::kReport, at(2.0));
  EXPECT_EQ(tr.recorded(), before);
  tr.switch_phase(0, TracePhase::kRecovery, at(3.0));
  EXPECT_EQ(tr.current_phase(0), TracePhase::kRecovery);
}

TEST(TraceTest, DepthClampKeepsBeginsAndEndsBalanced) {
  Tracer tr;
  tr.enable(1);
  // Push far past the fixed stack depth, then close everything.
  for (int i = 0; i < 20; ++i) {
    tr.begin_span(0, TracePhase::kShareExchange, at(0.1 * (i + 1)));
  }
  tr.finalize_epoch(at(10.0));
  std::uint64_t begins = 0, ends = 0;
  for (const TraceEvent& ev : tr.merged()) {
    if (ev.kind == TraceEvent::Kind::kBegin) ++begins;
    if (ev.kind == TraceEvent::Kind::kEnd) ++ends;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(fold_trace(tr.merged()).unmatched_ends, 0u);
}

// ---------------------------------------------------------------------
// Ring overflow is counted, never silent.

TEST(TraceTest, RingOverflowCountsDropped) {
  Tracer::Config cfg;
  cfg.node_capacity = 4;
  Tracer tr;
  tr.enable(1, cfg);
  for (int i = 0; i < 10; ++i) {
    tr.counter(0, TraceCounter::kTxBytes, static_cast<std::uint64_t>(i), at(i));
  }
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  const auto events = tr.node_events(0);
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, oldest first.
  EXPECT_EQ(events.front().value, 6u);
  EXPECT_EQ(events.back().value, 9u);
}

// ---------------------------------------------------------------------
// Crash and epoch-end paths stamp their reasons.

TEST(TraceTest, InterruptClosesSpansWithInterruptedReason) {
  Tracer tr;
  tr.enable(1);
  tr.begin_span(0, TracePhase::kShareExchange, at(1.0));
  tr.interrupt(0, at(2.0));
  EXPECT_EQ(tr.current_phase(0), TracePhase::kNone);
  const auto events = tr.merged();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(events[1].value, kSpanEndInterrupted);
}

TEST(TraceTest, FinalizeEpochWritesMarkerAndAdvancesEpoch) {
  Tracer tr;
  tr.enable(2);
  tr.begin_span(1, TracePhase::kReport, at(1.0));
  tr.finalize_epoch(at(5.0));
  EXPECT_EQ(tr.epoch(), 1u);

  const auto events = tr.merged();
  ASSERT_EQ(events.size(), 3u);  // begin, finalized end, marker
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(events[1].value, kSpanEndFinalized);
  EXPECT_EQ(events[2].kind, TraceEvent::Kind::kMarker);
  EXPECT_EQ(events[2].node, kTraceGlobalNode);
  EXPECT_EQ(events[2].value, 0u);  // the epoch that just closed

  // Subsequent events carry the new epoch index.
  tr.counter(0, TraceCounter::kTxBytes, 1, at(6.0));
  EXPECT_EQ(tr.merged().back().epoch, 1u);
}

TEST(TraceTest, MergedIsSortedBySeqAcrossNodes) {
  Tracer tr;
  tr.enable(3);
  tr.counter(2, TraceCounter::kTxBytes, 1, at(0.1));
  tr.counter(0, TraceCounter::kTxBytes, 2, at(0.2));
  tr.counter(1, TraceCounter::kTxBytes, 3, at(0.3));
  tr.counter(0, TraceCounter::kRxBytes, 4, at(0.4));
  const auto events = tr.merged();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i) << "merged() must be seq-ordered";
  }
}

// ---------------------------------------------------------------------
// Scheduler dispatch spans (opt-in; high volume).

TEST(TraceTest, SchedulerRecordsDispatchSpansWhenEnabled) {
  Scheduler sched;
  Tracer tr;
  Tracer::Config cfg;
  cfg.scheduler_spans = true;
  tr.enable(0, cfg);
  sched.set_tracer(&tr);
  int fired = 0;
  sched.at(at(1.0), [&] { ++fired; });
  sched.at(at(2.0), [&] { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 2);
  const auto events = tr.node_events(kTraceGlobalNode);
  ASSERT_EQ(events.size(), 4u);  // B,E per event
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kBegin);
  EXPECT_EQ(static_cast<TracePhase>(events[0].tag), TracePhase::kDispatch);
  EXPECT_DOUBLE_EQ(events[0].t, 1.0);
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kEnd);
}

TEST(TraceTest, SchedulerSpansOffByDefault) {
  Scheduler sched;
  Tracer tr;
  tr.enable(0);
  sched.set_tracer(&tr);
  sched.at(at(1.0), [] {});
  sched.run();
  EXPECT_EQ(tr.recorded(), 0u);
}

// ---------------------------------------------------------------------
// fold_trace: attribution, busy time, unmatched ends.

TEST(TraceTest, FoldAttributesCountersToInnermostOpenSpan) {
  Tracer tr;
  tr.enable(2);
  tr.counter(0, TraceCounter::kTxBytes, 10, at(0.1));  // outside any span
  tr.begin_span(0, TracePhase::kShareExchange, at(1.0));
  tr.counter(0, TraceCounter::kTxBytes, 100, at(1.5));
  tr.counter(1, TraceCounter::kTxBytes, 7, at(1.6));  // node 1: no span
  tr.begin_span(0, TracePhase::kReport, at(2.0));
  tr.counter(0, TraceCounter::kTxBytes, 1000, at(2.5));
  tr.end_span(0, TracePhase::kReport, at(3.0));
  tr.end_span(0, TracePhase::kShareExchange, at(4.0));

  const auto report = fold_trace(tr.merged());
  const auto& ep0 = report.per_epoch.at(0);
  const auto idx = [](TracePhase p) { return static_cast<std::size_t>(p); };
  EXPECT_EQ(ep0[idx(TracePhase::kNone)].tx_bytes, 17u);
  EXPECT_EQ(ep0[idx(TracePhase::kShareExchange)].tx_bytes, 100u);
  EXPECT_EQ(ep0[idx(TracePhase::kReport)].tx_bytes, 1000u);
  EXPECT_EQ(report.epoch_tx_bytes(0), 1117u);
  EXPECT_EQ(report.unmatched_ends, 0u);

  // Busy time: report span 2.0..3.0, share span 1.0..4.0.
  EXPECT_DOUBLE_EQ(ep0[idx(TracePhase::kReport)].busy_s, 1.0);
  EXPECT_DOUBLE_EQ(ep0[idx(TracePhase::kShareExchange)].busy_s, 3.0);
  EXPECT_EQ(ep0[idx(TracePhase::kReport)].spans, 1u);

  // Per-node split.
  EXPECT_EQ(report.per_node.at(0)[idx(TracePhase::kNone)].tx_bytes, 10u);
  EXPECT_EQ(report.per_node.at(1)[idx(TracePhase::kNone)].tx_bytes, 7u);
}

// ---------------------------------------------------------------------
// Digest + divergence diagnostics.

TEST(TraceTest, DigestIsStableAndSensitive) {
  Tracer tr;
  tr.enable(1);
  tr.begin_span(0, TracePhase::kReport, at(1.0));
  tr.counter(0, TraceCounter::kTxBytes, 42, at(1.5));
  tr.end_span(0, TracePhase::kReport, at(2.0));
  const auto a = tr.merged();
  EXPECT_EQ(trace_digest(a), trace_digest(a));

  auto b = a;
  b[1].value = 43;
  EXPECT_NE(trace_digest(a), trace_digest(b));
  const auto div = analysis::first_divergence(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(*div, 1u);
  EXPECT_FALSE(analysis::first_divergence(a, a).has_value());

  auto shorter = a;
  shorter.pop_back();
  const auto div2 = analysis::first_divergence(a, shorter);
  ASSERT_TRUE(div2.has_value());
  EXPECT_EQ(*div2, 2u);
}

// ---------------------------------------------------------------------
// JSONL round trip is bit-exact; Chrome export is sane.

TEST(TraceTest, JsonlRoundTripIsBitExact) {
  Tracer tr;
  tr.enable(2);
  // A timestamp with no short decimal representation.
  tr.begin_span(0, TracePhase::kShareExchange, SimTime{1.0 / 3.0});
  tr.counter(0, TraceCounter::kTxBytes, 0xDEADBEEFULL, SimTime{2.0 / 7.0});
  tr.end_span(0, TracePhase::kShareExchange, SimTime{0.1 + 0.2});
  tr.finalize_epoch(at(1.0));
  tr.counter(1, TraceCounter::kDropBytes, 9, at(1.5));
  const auto events = tr.merged();

  std::string buf;
  {
    auto sink = runner::JsonlSink::to_buffer(&buf);
    analysis::write_trace_jsonl(events, sink);
  }
  const auto back = analysis::read_trace_jsonl(buf);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i], events[i]) << "row " << i << ": "
                                  << analysis::format_trace_event(events[i]);
  }
  EXPECT_EQ(trace_digest(back), trace_digest(events));
}

TEST(TraceTest, ReadJsonlRejectsMalformedRows) {
  EXPECT_THROW(analysis::read_trace_jsonl("{\"seq\": 0}\n"), std::runtime_error);
  EXPECT_THROW(
      analysis::read_trace_jsonl(
          "{\"seq\": 0, \"t\": 0.0, \"t_bits\": 0, \"kind\": \"bogus\", "
          "\"node\": 0, \"tag\": 0, \"value\": 0, \"epoch\": 0}\n"),
      std::runtime_error);
  // Comments and blank lines are not rows.
  EXPECT_TRUE(analysis::read_trace_jsonl("# header\n\n").empty());
}

TEST(TraceTest, ChromeTraceJsonMentionsEveryEventKind) {
  Tracer tr;
  tr.enable(1);
  tr.begin_span(0, TracePhase::kReport, at(1.0));
  tr.counter(0, TraceCounter::kTxBytes, 5, at(1.5));
  tr.end_span(0, TracePhase::kReport, at(2.0));
  tr.finalize_epoch(at(3.0));
  const std::string json = analysis::chrome_trace_json(tr.merged());
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

// ---------------------------------------------------------------------
// The determinism contract, end to end on a real protocol run.

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x7357)};
}

net::NetworkConfig tiny_network(std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = 3;
  cfg.seed = seed;
  return cfg;
}

net::Topology triangle() {
  return net::Topology{{{0, 0}, {40, 0}, {30, 30}}, 50.0};
}

TEST(TraceTest, TracingIsPurelyObservational) {
  const auto keys = master_keys();
  const core::IcpdaConfig cfg;

  net::Network plain(triangle(), tiny_network(42));
  core::run_icpda_epoch(plain, cfg, proto::constant_reading(1.0), keys);

  net::Network traced(triangle(), tiny_network(42));
  traced.enable_trace();
  core::run_icpda_epoch(traced, cfg, proto::constant_reading(1.0), keys);

  // Same seed, same world: every metric identical whether traced or not.
  EXPECT_EQ(plain.metrics().counter("channel.tx_bytes"),
            traced.metrics().counter("channel.tx_bytes"));
  EXPECT_EQ(plain.metrics().counter("channel.tx_frames"),
            traced.metrics().counter("channel.tx_frames"));
  EXPECT_EQ(plain.scheduler().executed(), traced.scheduler().executed());
  EXPECT_GT(traced.tracer().recorded(), 0u);
}

TEST(TraceTest, IdenticalRunsYieldIdenticalDigests) {
  const auto keys = master_keys();
  const core::IcpdaConfig cfg;
  std::uint64_t digests[2];
  for (int i = 0; i < 2; ++i) {
    net::Network network(triangle(), tiny_network(42));
    network.enable_trace();
    core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
    EXPECT_EQ(network.tracer().dropped(), 0u);
    digests[i] = trace_digest(network.tracer().merged());
  }
  EXPECT_EQ(digests[0], digests[1]);

  // A different seed must move the digest.
  net::Network network(triangle(), tiny_network(43));
  network.enable_trace();
  core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
  EXPECT_NE(trace_digest(network.tracer().merged()), digests[0]);
}

}  // namespace
}  // namespace icpda::sim
