// End-to-end iCPDA epochs: honest runs, pollution runs, accuracy.
#include <gtest/gtest.h>

#include <memory>

#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"

namespace icpda {
namespace {

net::NetworkConfig paper_network(std::size_t n, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = n;
  cfg.seed = seed;
  return cfg;
}

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0xFEEDFACE)};
}

TEST(IcpdaIntegrationTest, HonestCountEpochIsAccurateAndAccepted) {
  net::Network network(paper_network(400, 42));
  ASSERT_TRUE(network.topology().connected());
  core::IcpdaConfig cfg;
  const auto keys = master_keys();
  const auto outcome =
      core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
  ASSERT_TRUE(outcome.result.has_value());
  EXPECT_TRUE(outcome.accepted());
  // The paper: iCPDA is accurate in reasonably dense networks.
  EXPECT_GT(outcome.result->count, 0.85 * 399) << "count=" << outcome.result->count;
  EXPECT_LE(outcome.result->count, 399.5);
  EXPECT_GT(outcome.heads, 0u);
  EXPECT_GT(outcome.members, 0u);
}

TEST(IcpdaIntegrationTest, SumQueryTracksReadings) {
  net::Network network(paper_network(400, 7));
  core::IcpdaConfig cfg;
  const auto keys = master_keys();
  // Distinct per-node readings so mis-assembly would show up.
  const auto readings = [](std::uint32_t id) { return 10.0 + 0.25 * id; };
  const auto outcome = core::run_icpda_epoch(network, cfg, readings, keys);
  ASSERT_TRUE(outcome.result.has_value());
  ASSERT_GT(outcome.result->count, 300.0);
  // The collected mean must match the true mean of contributing nodes
  // closely; exact set of contributors varies with losses.
  const double mean = outcome.result->sum / outcome.result->count;
  EXPECT_GT(mean, 10.0);
  EXPECT_LT(mean, 10.0 + 0.25 * 400);
  // Per-cluster sums are exact, so sum/count must be a plausible mean
  // of a subset of readings around the middle.
  EXPECT_NEAR(mean, 10.0 + 0.25 * 200, 0.25 * 60);
}

TEST(IcpdaIntegrationTest, PollutingHeadIsDetected) {
  // Try several seeds; detection requires the polluter to have
  // witnesses, which depends on the random cluster draw.
  int detected = 0;
  int attempts = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    net::Network network(paper_network(400, seed));
    core::IcpdaConfig cfg;
    const auto keys = master_keys();
    core::AttackPlan attack;
    // Pollute from a mid-id node; delta large enough to matter.
    attack.polluters.insert(200);
    attack.delta = 500.0;
    const auto outcome =
        core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys, attack);
    ++attempts;
    if (!outcome.accepted()) ++detected;
  }
  // The vast majority of pollution attempts must be caught.
  EXPECT_GE(detected, 4) << "detected " << detected << "/" << attempts;
}

TEST(IcpdaIntegrationTest, HonestRunRaisesNoSignificantAlarms) {
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    net::Network network(paper_network(350, seed));
    core::IcpdaConfig cfg;
    const auto keys = master_keys();
    const auto outcome =
        core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
    EXPECT_TRUE(outcome.accepted()) << "seed " << seed << " alarms "
                                    << outcome.alarms.size();
  }
}

TEST(IcpdaIntegrationTest, ClusterSizesAverageNearOneOverPc) {
  net::Network network(paper_network(500, 3));
  core::IcpdaConfig cfg;
  cfg.pc = 0.25;
  const auto keys = master_keys();
  const auto outcome =
      core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
  double total = 0.0;
  double clusters = 0.0;
  for (const auto& [size, n] : outcome.cluster_sizes) {
    total += static_cast<double>(size) * n;
    clusters += n;
  }
  ASSERT_GT(clusters, 0.0);
  const double mean = total / clusters;
  EXPECT_GT(mean, 1.6);
  EXPECT_LT(mean, 8.0);
}

}  // namespace
}  // namespace icpda
