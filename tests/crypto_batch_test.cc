// Pin-before-swap harness for the batched protocol hot path.
//
// The batched crypto entry points (KeyDeriver, KeyScheme::link_keys,
// seal_into/open_into, make_shares_into, ShareBody::patch_share) must
// be *byte-for-byte* equal to the per-share paths they replace — the
// golden trace digests treat wire bytes and RNG draw order as part of
// the determinism contract. Two layers of pinning:
//
//  1. Golden known-answer vectors captured from the pre-batching
//     implementation (commit 770b2b2). If these fail, the primitive
//     itself changed — not just the batching — and every sealed frame
//     in every golden trace is invalid.
//  2. Differential checks of each batched path against its per-item
//     reference over randomized inputs and cluster sizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cpda_algebra.h"
#include "crypto/cipher.h"
#include "crypto/keyring.h"
#include "crypto/prf.h"
#include "sim/rng.h"

namespace icpda::crypto {
namespace {

// ---------------------------------------------------------------------
// Golden known-answer vectors (pre-batching implementation).

struct DeriveVector {
  std::uint64_t seed, a, b, w0, w1;
};

TEST(CryptoBatchTest, DeriveKeyGoldenVectors) {
  // clang-format off
  const DeriveVector vecs[] = {
      {0x1,        0, 1,                       0x27fe7dc551acd2a5ULL, 0x918bd2f479c5c7c0ULL},
      {0x1,        3, 17,                      0xf7dc20e77375073bULL, 0x13b64b90d4e95e82ULL},
      {0x1,        0xFFFFFFFF, 0x100000000ULL, 0x94cb2991355e7997ULL, 0x8c339229154bbd0eULL},
      {0xDEADBEEF, 0, 1,                       0xc9cf1efddab3aed4ULL, 0x71d203c81448cc09ULL},
      {0xDEADBEEF, 3, 17,                      0x2e2eba721a3bb194ULL, 0x24a6f0ffcbd09a26ULL},
      {0xDEADBEEF, 0xFFFFFFFF, 0x100000000ULL, 0x717676eb9d37d3ccULL, 0xed301881a95096c5ULL},
      {0x1CDA2009, 0, 1,                       0xb1470d682ff7002bULL, 0xf2042dc65aaa9c69ULL},
      {0x1CDA2009, 3, 17,                      0xce8c8212638b27bfULL, 0xb9a0570252b7c405ULL},
      {0x1CDA2009, 0xFFFFFFFF, 0x100000000ULL, 0x5d7088c91bfba329ULL, 0x42847d6d07fd6fafULL},
  };
  // clang-format on
  for (const auto& v : vecs) {
    const Key master = Key::from_seed(v.seed);
    const Key k = derive_key(master, v.a, v.b);
    EXPECT_EQ(k.words[0], v.w0) << "seed " << v.seed;
    EXPECT_EQ(k.words[1], v.w1) << "seed " << v.seed;
    // The cached-state deriver must reproduce the vectors too.
    const KeyDeriver deriver(master);
    EXPECT_EQ(deriver.derive(v.a, v.b), k) << "seed " << v.seed;
  }
}

TEST(CryptoBatchTest, Prf64GoldenVectors) {
  // Lengths straddle every word boundary the word-wise absorb handles
  // specially: empty, sub-word, exact words, words + tail.
  const std::pair<std::size_t, std::uint64_t> vecs[] = {
      {0, 0x7f9df9e1d92af910ULL},  {1, 0x89eb9e2451c58d17ULL},
      {7, 0xb6522aa52d2bf476ULL},  {8, 0x5627ae074a050b71ULL},
      {9, 0xa5e4d192c10fa8a5ULL},  {15, 0x7430fb233d759df2ULL},
      {16, 0x977ecc273338ced6ULL}, {17, 0xc9ee943443a1c7cfULL},
      {63, 0x9a02dceebc0bbc17ULL}, {64, 0xe20f564e486de6a4ULL},
  };
  const Key key = Key::from_seed(9);
  for (const auto& [len, want] : vecs) {
    Bytes msg(len);
    for (std::size_t i = 0; i < len; ++i) msg[i] = static_cast<std::uint8_t>(i * 7 + 1);
    EXPECT_EQ(prf64(key, msg), want) << "len " << len;
  }
}

TEST(CryptoBatchTest, SealGoldenVectors) {
  const std::pair<std::size_t, const char*> vecs[] = {
      {0, "efcdab89674523015d4de235c4f0c08c"},
      {1, "f0cdab89674523019227a18a25bc018d22"},
      {7, "f6cdab8967452301901a62bcc6284547124bc07ab8754d"},
      {8, "f7cdab896745230181ae7752501b95d8f6548cd17657714f"},
      {9, "f8cdab89674523015893dbf31eeb6ace793919d07367aba606"},
      {32,
       "0fceab896745230110d10d741e5ee5d16fddc4f54f23d7d341025d8d551e637f28e9c8"
       "f1b08b9596da63ca131ede00c6"},
      {33,
       "10ceab89674523017d4beec83eb3458f6053d3a8ada810e1a36b01fd5c872275bce44e"
       "69644633a89922ecb54d8658add7"},
  };
  const Key key = Key::from_seed(0x5EA1);
  for (const auto& [len, want_hex] : vecs) {
    Bytes p(len);
    for (std::size_t i = 0; i < len; ++i) p[i] = static_cast<std::uint8_t>(0xA0 + i);
    const Bytes sealed = seal(key, 0x0123456789ABCDEFULL + len, p);
    std::string got;
    for (const std::uint8_t byte : sealed) {
      constexpr char kHex[] = "0123456789abcdef";
      got += kHex[byte >> 4];
      got += kHex[byte & 0xF];
    }
    EXPECT_EQ(got, want_hex) << "len " << len;
    // Round trip under both open paths.
    const auto back = open(key, sealed);
    ASSERT_TRUE(back.has_value()) << "len " << len;
    EXPECT_EQ(*back, p);
  }
}

// ---------------------------------------------------------------------
// Differential: KeyDeriver vs derive_key over random labels.

TEST(CryptoBatchTest, KeyDeriverMatchesDeriveKey) {
  sim::Rng rng(0xBA7C4ED0);
  for (int master_i = 0; master_i < 8; ++master_i) {
    const Key master = Key::from_seed(rng());
    const KeyDeriver deriver(master);
    for (int i = 0; i < 256; ++i) {
      const std::uint64_t a = rng();
      const std::uint64_t b = rng();
      EXPECT_EQ(deriver.derive(a, b), derive_key(master, a, b));
    }
  }
}

// ---------------------------------------------------------------------
// Differential: link_keys (batched) vs link_key (per pair) for both
// concrete schemes, over randomized member sets including self and
// duplicate ids.

std::vector<net::NodeId> random_members(sim::Rng& rng, std::size_t node_count) {
  const std::size_t m = 2 + rng() % 12;
  std::vector<net::NodeId> members(m);
  for (auto& id : members) id = static_cast<net::NodeId>(rng() % node_count);
  return members;
}

void expect_batch_matches(const KeyScheme& scheme, sim::Rng& rng,
                          std::size_t node_count) {
  std::vector<std::optional<Key>> batch;
  for (int round = 0; round < 64; ++round) {
    const auto members = random_members(rng, node_count);
    const auto self = static_cast<net::NodeId>(rng() % node_count);
    scheme.link_keys(self, members, batch);  // reused across rounds
    ASSERT_EQ(batch.size(), members.size());
    for (std::size_t j = 0; j < members.size(); ++j) {
      EXPECT_EQ(batch[j], scheme.link_key(self, members[j]))
          << "self " << self << " peer " << members[j];
    }
  }
}

TEST(CryptoBatchTest, MasterPairwiseLinkKeysMatchesPerPair) {
  sim::Rng rng(0x11ABE1);
  const MasterPairwiseScheme scheme(Key::from_seed(0x7357));
  expect_batch_matches(scheme, rng, 64);
}

TEST(CryptoBatchTest, EgPredistributionLinkKeysMatchesPerPair) {
  sim::Rng rng(0x22ABE2);
  // Small pool so keyless pairs (nullopt entries) actually occur.
  const EgPredistribution scheme(32, 40, 4, sim::Rng(0xE6));
  expect_batch_matches(scheme, rng, 32);
}

// ---------------------------------------------------------------------
// Differential: seal_into/open_into vs seal/open over random lengths,
// with the out-buffers deliberately reused (warm-arena behaviour).

TEST(CryptoBatchTest, SealIntoOpenIntoMatchSealOpen) {
  sim::Rng rng(0x5EA1B0);
  Bytes sealed_arena;
  Bytes plain_arena;
  for (int i = 0; i < 512; ++i) {
    const Key key = Key::from_seed(rng());
    const std::uint64_t nonce = rng();
    Bytes plaintext(rng() % 300);
    for (auto& byte : plaintext) byte = static_cast<std::uint8_t>(rng());

    seal_into(key, nonce, plaintext, sealed_arena);
    EXPECT_EQ(sealed_arena, seal(key, nonce, plaintext)) << "case " << i;

    ASSERT_TRUE(open_into(key, sealed_arena, plain_arena)) << "case " << i;
    EXPECT_EQ(plain_arena, plaintext) << "case " << i;

    // Tampered ciphertext: both open paths must agree on rejection.
    Bytes corrupt = sealed_arena;
    corrupt[rng() % corrupt.size()] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    EXPECT_EQ(open_into(key, corrupt, plain_arena),
              open(key, corrupt).has_value())
        << "case " << i;
    // Wrong key never opens.
    EXPECT_FALSE(open_into(Key::from_seed(rng()), sealed_arena, plain_arena));
    // Truncated below the overhead is malformed, not a crash.
    const Bytes stub(kSealOverheadBytes - 1, 0);
    EXPECT_FALSE(open_into(key, stub, plain_arena));
  }
}

// ---------------------------------------------------------------------
// Differential: make_shares_into vs make_shares — identical Rng seed
// must yield bitwise-identical shares (same draw order, same float
// ops), with the share vector reused across cluster sizes.

TEST(CryptoBatchTest, MakeSharesIntoMatchesMakeShares) {
  sim::Rng seeder(0x5AA7E5);
  std::vector<proto::Aggregate> arena;
  for (int i = 0; i < 200; ++i) {
    const std::size_t m = 1 + seeder() % 40;  // crosses the stack cap (31 coeffs)
    const auto seeds = core::default_seeds(m);
    proto::Aggregate value;
    value.count = 1.0;
    value.sum = seeder.uniform(-1e6, 1e6);
    value.sum_sq = value.sum * value.sum;
    const std::uint64_t rng_seed = seeder();

    sim::Rng rng_a(rng_seed);
    const auto reference = core::make_shares(value, seeds, rng_a);
    sim::Rng rng_b(rng_seed);
    core::make_shares_into(value, seeds, rng_b, arena);

    ASSERT_EQ(arena.size(), reference.size()) << "m " << m;
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(arena[j].count, reference[j].count) << "m " << m << " j " << j;
      EXPECT_EQ(arena[j].sum, reference[j].sum) << "m " << m << " j " << j;
      EXPECT_EQ(arena[j].sum_sq, reference[j].sum_sq) << "m " << m << " j " << j;
    }
    // The two generators must also be left in the same state.
    EXPECT_EQ(rng_a(), rng_b()) << "m " << m;
  }
}

// ---------------------------------------------------------------------
// Differential: the sender-side body template + patch_share must equal
// a fresh per-peer serialization, with and without an epoch tag.

TEST(CryptoBatchTest, PatchShareMatchesFreshSerialization) {
  sim::Rng rng(0x7A6B0D1);
  for (const std::uint32_t tag : {0u, 0xC0FFEEu}) {
    core::ShareBody body;
    body.query_id = 77;
    body.round = 1;
    body.epoch_tag = tag;
    net::Bytes tmpl = body.to_bytes();
    for (int i = 0; i < 100; ++i) {
      proto::Aggregate share;
      share.count = rng.uniform(-1e3, 1e3);
      share.sum = rng.uniform(-1e6, 1e6);
      share.sum_sq = rng.uniform(0.0, 1e9);
      core::ShareBody::patch_share(tmpl, share);
      core::ShareBody fresh = body;
      fresh.share = share;
      EXPECT_EQ(tmpl, fresh.to_bytes()) << "tag " << tag << " case " << i;
    }
  }
}

}  // namespace
}  // namespace icpda::crypto
