// Trace-driven conservation invariants: the tracer's per-phase byte
// accounting must reconcile *exactly* with the MetricRegistry, and the
// span stream must stay balanced — including across epochs and on
// fault-injection crash paths.
//
// kTxBytes events are recorded at the same call site, with the same
// value, as the channel.tx_bytes metric, so the per-epoch sums equal
// the registry total by construction; this test is the tripwire that
// keeps future instrumentation honest.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/trace_report.h"
#include "core/faults.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"
#include "sim/trace.h"

namespace icpda::core {
namespace {

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x7357)};
}

/// A connected mid-size deployment: default field shrunk so 60 nodes
/// at 50 m range form one component.
net::NetworkConfig dense_network(std::size_t n, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = n;
  cfg.field_width_m = 150.0;
  cfg.field_height_m = 150.0;
  cfg.seed = seed;
  return cfg;
}

/// Sender-side accounting only: every kTxBytes event must survive ring
/// wrap for exact reconciliation (receiver-side events dominate volume
/// and would evict them).
sim::Tracer::Config tx_only_trace() {
  sim::Tracer::Config cfg;
  cfg.rx_events = false;
  cfg.mac_events = false;
  return cfg;
}

struct SpanBalance {
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  std::uint64_t interrupted = 0;
  std::uint64_t finalized = 0;
};

SpanBalance balance_of(const std::vector<sim::TraceEvent>& events) {
  SpanBalance b;
  for (const sim::TraceEvent& ev : events) {
    if (ev.kind == sim::TraceEvent::Kind::kBegin) ++b.begins;
    if (ev.kind == sim::TraceEvent::Kind::kEnd) {
      ++b.ends;
      if (ev.value == sim::kSpanEndInterrupted) ++b.interrupted;
      if (ev.value == sim::kSpanEndFinalized) ++b.finalized;
    }
  }
  return b;
}

// ---------------------------------------------------------------------
// Clean run, two epochs on one network: per-epoch traced tx bytes must
// sum to the registry's cumulative channel.tx_bytes, exactly.

TEST(TraceConservationTest, TwoEpochTxBytesMatchRegistryExactly) {
  net::Network network(dense_network(60, 42));
  ASSERT_TRUE(network.topology().connected());
  network.enable_trace(tx_only_trace());
  const auto keys = master_keys();
  const IcpdaConfig cfg;

  run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
  const std::uint64_t after_epoch0 = network.metrics().counter("channel.tx_bytes");
  run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
  const std::uint64_t total = network.metrics().counter("channel.tx_bytes");
  ASSERT_GT(after_epoch0, 0u);
  ASSERT_GT(total, after_epoch0);

  ASSERT_EQ(network.tracer().dropped(), 0u)
      << "ring overflow would make the reconciliation meaningless";
  ASSERT_EQ(network.tracer().epoch(), 2u);

  const auto report = analysis::fold_trace(network.tracer().merged());
  EXPECT_EQ(report.epoch_tx_bytes(0), after_epoch0);
  EXPECT_EQ(report.epoch_tx_bytes(1), total - after_epoch0);
  EXPECT_EQ(report.epoch_tx_bytes(0) + report.epoch_tx_bytes(1), total);
  EXPECT_EQ(report.unmatched_ends, 0u);
}

TEST(TraceConservationTest, SpansBalanceOnCleanRun) {
  net::Network network(dense_network(60, 43));
  ASSERT_TRUE(network.topology().connected());
  network.enable_trace(tx_only_trace());
  const auto keys = master_keys();
  run_icpda_epoch(network, IcpdaConfig{}, proto::constant_reading(1.0), keys);

  ASSERT_EQ(network.tracer().dropped(), 0u);
  const auto events = network.tracer().merged();
  const SpanBalance b = balance_of(events);
  EXPECT_GT(b.begins, 0u);
  EXPECT_EQ(b.begins, b.ends);
  EXPECT_EQ(analysis::fold_trace(events).unmatched_ends, 0u);
}

// ---------------------------------------------------------------------
// Fault injection: crashes mid-phase must not break either invariant.
// The crash path closes the victim's spans with kSpanEndInterrupted
// (Network::set_node_down -> Tracer::interrupt), and a down node's
// purged MAC traffic was already on-air-accounted or never counted —
// the registry and the trace move in lockstep either way.

TEST(TraceConservationTest, SpansBalanceAndBytesConserveUnderCrashes) {
  net::Network network(dense_network(60, 44));
  ASSERT_TRUE(network.topology().connected());
  network.enable_trace(tx_only_trace());
  const auto keys = master_keys();
  const IcpdaConfig cfg;

  // Crash a swath of nodes at staggered times: some die during cluster
  // formation, some mid share exchange, some during the report phase.
  FaultPlan faults;
  faults.crash_at_s = {{3, 0.5}, {7, 1.5}, {11, 2.5}, {13, 4.0},
                       {17, 6.0}, {19, 8.0}, {23, 10.0}};
  run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys, {}, faults);

  ASSERT_EQ(network.tracer().dropped(), 0u);
  const auto events = network.tracer().merged();
  const SpanBalance b = balance_of(events);
  EXPECT_EQ(b.begins, b.ends) << "crash paths must close every open span";
  EXPECT_GT(b.interrupted + b.finalized, 0u);

  const auto report = analysis::fold_trace(events);
  EXPECT_EQ(report.unmatched_ends, 0u);
  EXPECT_EQ(report.epoch_tx_bytes(0),
            network.metrics().counter("channel.tx_bytes"));
}

TEST(TraceConservationTest, RandomCrashSweepKeepsInvariants) {
  const auto keys = master_keys();
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    net::Network network(dense_network(50, seed));
    if (!network.topology().connected()) continue;
    network.enable_trace(tx_only_trace());
    FaultPlan faults;
    faults.crash_probability = 0.15;  // Bernoulli per node, random times
    run_icpda_epoch(network, IcpdaConfig{}, proto::constant_reading(1.0), keys,
                    {}, faults);

    ASSERT_EQ(network.tracer().dropped(), 0u) << "seed " << seed;
    const auto events = network.tracer().merged();
    const SpanBalance b = balance_of(events);
    EXPECT_EQ(b.begins, b.ends) << "seed " << seed;
    const auto report = analysis::fold_trace(events);
    EXPECT_EQ(report.unmatched_ends, 0u) << "seed " << seed;
    EXPECT_EQ(report.epoch_tx_bytes(0),
              network.metrics().counter("channel.tx_bytes"))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace icpda::core
