// Closed-form models cross-validated against simulation/Monte-Carlo.
#include <gtest/gtest.h>

#include <numbers>

#include "analysis/models.h"
#include "net/topology.h"
#include "sim/rng.h"

namespace icpda::analysis {
namespace {

TEST(DeploymentModelTest, BorderCorrectionBelowUnclipped) {
  const net::Field field(400, 400);
  const double unclipped = expected_degree(field, 400, 50.0);
  const double corrected = expected_degree_border_corrected(field, 400, 50.0);
  EXPECT_LT(corrected, unclipped);
  EXPECT_GT(corrected, 0.85 * unclipped);
}

TEST(DeploymentModelTest, BorderCorrectedMatchesSimulation) {
  const net::Field field(400, 400);
  sim::Rng rng(21);
  for (const std::size_t n : {200, 400, 600}) {
    double sum = 0.0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
      sum += net::make_random_topology(field, n, 50.0, rng, false).average_degree();
    }
    EXPECT_NEAR(sum / trials, expected_degree_border_corrected(field, n, 50.0), 0.5)
        << "N=" << n;
  }
}

TEST(DeploymentModelTest, LargeRangeSaturates) {
  // Range covering the whole field: everyone is everyone's neighbour.
  const net::Field field(100, 100);
  const double d = expected_degree_border_corrected(field, 50, 150.0);
  EXPECT_NEAR(d, 49.0, 0.5);
}

TEST(ClusterModelTest, ExpectedSizeIsReciprocalPc) {
  EXPECT_DOUBLE_EQ(expected_cluster_size(0.25), 4.0);
  EXPECT_DOUBLE_EQ(expected_cluster_size(1.0), 1.0);
  EXPECT_THROW((void)expected_cluster_size(0.0), std::invalid_argument);
}

TEST(ClusterModelTest, LoneHeadProbabilityBehaviour) {
  // More neighbours -> less likely alone; higher pc -> more heads
  // competing -> more likely alone.
  EXPECT_GT(lone_head_probability(0.3, 5.0), lone_head_probability(0.3, 20.0));
  EXPECT_LT(lone_head_probability(0.1, 10.0), lone_head_probability(0.6, 10.0));
  EXPECT_GT(lone_head_probability(0.3, 10.0), 0.0);
  EXPECT_LT(lone_head_probability(0.3, 10.0), 1.0);
}

TEST(PrivacyModelTest, DisclosureFormulaShape) {
  // Decreasing in m, increasing in px.
  EXPECT_GT(cpda_disclosure_probability(2, 0.1), cpda_disclosure_probability(3, 0.1));
  EXPECT_LT(cpda_disclosure_probability(3, 0.05), cpda_disclosure_probability(3, 0.2));
  EXPECT_DOUBLE_EQ(cpda_disclosure_probability(1, 0.1), 1.0);
  EXPECT_NEAR(cpda_disclosure_probability(3, 0.1), 1e-4, 1e-12);
}

TEST(PrivacyModelTest, PaperExampleRegularGraph) {
  // The iPDA companion computes P ~ 1e-3 for l = 3, d = 10, px = 0.1
  // with the slicing scheme; our SMART model with incoming ~ l-1
  // should land in the same decade.
  const double p = smart_disclosure_probability(3, 2, 0.1);
  EXPECT_NEAR(p, 1e-4, 9e-4);
}

TEST(OverheadModelTest, OrderingAcrossProtocols) {
  EXPECT_DOUBLE_EQ(tag_messages_per_node(), 2.0);
  EXPECT_DOUBLE_EQ(smart_messages_per_node(2), 3.0);
  // iCPDA costs more than SMART(l=2) and far more than TAG.
  const double icpda = icpda_messages_per_node(0.3, 2);
  EXPECT_GT(icpda, smart_messages_per_node(2));
  EXPECT_LT(icpda, 12.0);
  // Smaller pc -> bigger clusters -> more share traffic.
  EXPECT_GT(icpda_messages_per_node(0.15, 2), icpda_messages_per_node(0.5, 2));
}

TEST(IntegrityModelTest, WitnessHearingProbability) {
  // Closed form for two uniform points in a disc within one radius.
  const double q = witness_hears_child_probability();
  EXPECT_NEAR(q, 0.5865, 0.001);
  // Monte-Carlo check.
  sim::Rng rng(33);
  int hits = 0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    // Rejection-sample two points in the unit disc.
    const auto sample = [&rng] {
      while (true) {
        const double x = rng.uniform(-1.0, 1.0);
        const double y = rng.uniform(-1.0, 1.0);
        if (x * x + y * y <= 1.0) return net::Point{x, y};
      }
    };
    if (net::distance(sample(), sample()) <= 1.0) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, q, 0.005);
}

TEST(IntegrityModelTest, DetectionProbabilityShape) {
  // More witnesses help; more children hurt.
  EXPECT_GT(detection_probability(5, 2), detection_probability(1, 2));
  EXPECT_GT(detection_probability(3, 1), detection_probability(3, 4));
  EXPECT_DOUBLE_EQ(detection_probability(0, 1), 0.0);
  EXPECT_NEAR(detection_probability(3, 0), 1.0, 1e-12);  // no children: V check always possible
}

}  // namespace
}  // namespace icpda::analysis
