// Continuous-query service: pipelined-epoch determinism, admission
// control, deadline accounting and mux routing.
//
// The load-bearing case is PipelinedMatchesSerialExactly: the same
// query set run overlapped (max_in_flight=4) and fully serialized
// (max_in_flight=1) must produce byte-identical per-query result
// triples. The test network uses pc=1.0 (every sensor a lone cluster
// head reporting its reading in the clear) with integer readings, so
// every per-query answer is an exact integer sum — merge order,
// clustering and MAC interleaving provably cannot move it, and any
// cross-query state leak in the mux shows up as a changed triple or a
// lost reading.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "crypto/keyring.h"
#include "net/network.h"
#include "proto/messages.h"
#include "service/dispatcher.h"
#include "sim/trace.h"

namespace icpda {
namespace {

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0xFEEDFACE)};
}

/// Small, dense, fully-connected deployment: 16 nodes in a 120 m
/// square with 80 m range — everyone hears everyone, coverage is 1.0
/// in benign runs.
net::NetworkConfig dense_network(std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = 16;
  cfg.field_width_m = 120.0;
  cfg.field_height_m = 120.0;
  cfg.range_m = 80.0;
  cfg.seed = seed;
  return cfg;
}

double integer_reading(std::uint32_t id) { return static_cast<double>(id); }

/// Service config whose per-query epochs are exact: every node a lone
/// head (pc = 1), readings integers, so result triples are integer
/// sums no interleaving can perturb.
service::ServiceConfig exact_service(std::uint32_t max_in_flight) {
  service::ServiceConfig cfg;
  cfg.protocol.pc = 1.0;
  cfg.offered_load_qps = 0.5;  // nominal epoch ~6.6 s: heavy overlap
  cfg.query_count = 4;
  cfg.max_in_flight = max_in_flight;
  cfg.deadline_s = 500.0;  // serial run queues instead of dropping
  cfg.seed = 0x5EA50E7;
  return cfg;
}

TEST(ServiceTest, PipelinedMatchesSerialExactly) {
  const auto keys = master_keys();

  net::Network pipelined_net(dense_network(11));
  ASSERT_TRUE(pipelined_net.topology().connected());
  service::Dispatcher pipelined(pipelined_net, exact_service(4), &keys,
                                integer_reading);
  pipelined.run();

  net::Network serial_net(dense_network(11));
  service::Dispatcher serial(serial_net, exact_service(1), &keys,
                             integer_reading);
  serial.run();

  const auto& pr = pipelined.records();
  const auto& sr = serial.records();
  ASSERT_EQ(pr.size(), 4u);
  ASSERT_EQ(sr.size(), 4u);

  // Exact ground truth over sensors 1..15: count 15, sum 120, sum_sq 1240.
  const double n = 15.0, sum = 120.0, sum_sq = 1240.0;
  for (std::size_t i = 0; i < pr.size(); ++i) {
    SCOPED_TRACE(pr[i].id);
    ASSERT_EQ(pr[i].status, service::QueryStatus::kCompleted);
    ASSERT_EQ(sr[i].status, service::QueryStatus::kCompleted);
    ASSERT_TRUE(pr[i].outcome.result.has_value());
    ASSERT_TRUE(sr[i].outcome.result.has_value());
    // Identical per-query results, pipelined vs serial — bitwise.
    EXPECT_EQ(pr[i].outcome.result->count, sr[i].outcome.result->count);
    EXPECT_EQ(pr[i].outcome.result->sum, sr[i].outcome.result->sum);
    EXPECT_EQ(pr[i].outcome.result->sum_sq, sr[i].outcome.result->sum_sq);
    EXPECT_EQ(pr[i].value, sr[i].value);
    EXPECT_TRUE(pr[i].accepted);
    EXPECT_TRUE(sr[i].accepted);
    // And both equal the exact answer (full coverage).
    EXPECT_EQ(pr[i].outcome.result->count, n);
    EXPECT_EQ(pr[i].outcome.result->sum, sum);
    EXPECT_EQ(pr[i].outcome.result->sum_sq, sum_sq);
    EXPECT_EQ(pr[i].coverage, 1.0);
    EXPECT_EQ(pr[i].abs_error, 0.0);
  }

  // The pipelined run must actually pipeline: some query launches while
  // an earlier one is still open.
  bool overlapped = false;
  for (std::size_t i = 1; i < pr.size(); ++i) {
    if (pr[i].launched < pr[i - 1].closed) overlapped = true;
  }
  EXPECT_TRUE(overlapped);

  // The serial run never overlaps epochs.
  for (std::size_t i = 1; i < sr.size(); ++i) {
    EXPECT_GE(sr[i].launched.seconds(), sr[i - 1].closed.seconds());
  }

  // Queueing shows up as latency: the serialized tail waits longer.
  EXPECT_GT(service::latency_percentile(sr, 99.0),
            service::latency_percentile(pr, 99.0));
}

TEST(ServiceTest, PipelinedAlgebraRemainsAccurateUnderOverlap) {
  // Full CPDA share algebra (default pc) with two heavily overlapping
  // queries: the interpolation error stays numerical-noise-sized and
  // both epochs are accepted — no cross-query interference in Phase II.
  const auto keys = master_keys();
  net::Network network(dense_network(23));
  ASSERT_TRUE(network.topology().connected());

  service::ServiceConfig cfg;
  cfg.offered_load_qps = 0.5;
  cfg.query_count = 2;
  cfg.max_in_flight = 2;
  cfg.deadline_s = 100.0;
  cfg.seed = 0xACC;
  cfg.kind_cycle = {service::AggregateKind::kSum};
  service::Dispatcher dispatcher(network, cfg, &keys, integer_reading);
  dispatcher.run();

  ASSERT_EQ(dispatcher.completed(), 2u);
  for (const auto& r : dispatcher.records()) {
    SCOPED_TRACE(r.id);
    EXPECT_TRUE(r.accepted);
    // The count rides through the share algebra too, so full coverage
    // is exact only up to interpolation noise.
    EXPECT_NEAR(r.coverage, 1.0, 1e-9);
    EXPECT_NEAR(r.value, 120.0, 1e-6);  // sum of 1..15, algebra tolerance
  }
}

TEST(ServiceTest, DeadlineDropsAndQueueRejectionsAreAccounted) {
  const auto keys = master_keys();
  net::Network network(dense_network(5));

  // Offered load ~13x the service rate with one slot and a 2-deep
  // queue: the backlog grows, queue waits blow the deadline, and late
  // arrivals find the queue full.
  service::ServiceConfig cfg;
  cfg.protocol.pc = 1.0;
  cfg.offered_load_qps = 2.0;
  cfg.query_count = 12;
  cfg.max_in_flight = 1;
  cfg.max_queue = 2;
  cfg.deadline_s = 12.0;  // < 2 epochs of queue wait
  cfg.seed = 0xD0D0;
  service::Dispatcher dispatcher(network, cfg, &keys, integer_reading);
  dispatcher.run();

  const auto& records = dispatcher.records();
  ASSERT_EQ(records.size(), 12u);
  EXPECT_EQ(dispatcher.completed() + dispatcher.dropped() + dispatcher.rejected(),
            12u);
  EXPECT_GT(dispatcher.completed(), 0u);
  EXPECT_GT(dispatcher.dropped(), 0u);
  EXPECT_GT(dispatcher.rejected(), 0u);

  for (const auto& r : records) {
    SCOPED_TRACE(r.id);
    switch (r.status) {
      case service::QueryStatus::kCompleted:
        // A completed query met its deadline (drop-at-launch policy).
        EXPECT_LE(r.latency_s, cfg.deadline_s + 1e-9);
        EXPECT_TRUE(r.accepted);
        break;
      case service::QueryStatus::kDroppedDeadline:
      case service::QueryStatus::kRejectedQueue:
        // Never launched: no epoch, no result.
        EXPECT_EQ(r.launched.seconds(), 0.0);
        EXPECT_FALSE(r.outcome.result.has_value());
        break;
    }
  }
}

TEST(ServiceTest, AdmissionCapBoundsConcurrency) {
  const auto keys = master_keys();
  net::Network network(dense_network(31));

  service::ServiceConfig cfg;
  cfg.protocol.pc = 1.0;
  cfg.offered_load_qps = 1.0;
  cfg.query_count = 8;
  cfg.max_in_flight = 2;
  cfg.deadline_s = 500.0;
  cfg.seed = 0xCAFE;
  service::Dispatcher dispatcher(network, cfg, &keys, integer_reading);
  dispatcher.run();
  ASSERT_EQ(dispatcher.completed(), 8u);

  // Sweep launch/close events: concurrency never exceeds the cap.
  std::vector<std::pair<double, int>> events;
  for (const auto& r : dispatcher.records()) {
    events.emplace_back(r.launched.seconds(), +1);
    events.emplace_back(r.closed.seconds(), -1);
  }
  std::sort(events.begin(), events.end());
  int active = 0, peak = 0;
  for (const auto& [t, d] : events) {
    active += d;
    peak = std::max(peak, active);
  }
  EXPECT_LE(peak, 2);
  EXPECT_EQ(peak, 2);  // the load is high enough to fill both slots
}

TEST(ServiceTest, AvgAndVarFinishersMatchGroundTruth) {
  // Kind cycle SUM/AVG/VAR over exact epochs: each finisher applied to
  // a full-coverage integer triple reproduces the exact answer.
  const auto keys = master_keys();
  net::Network network(dense_network(47));

  service::ServiceConfig cfg;
  cfg.protocol.pc = 1.0;
  cfg.offered_load_qps = 0.2;
  cfg.query_count = 3;
  cfg.max_in_flight = 2;
  cfg.deadline_s = 500.0;
  cfg.seed = 0xF1;
  service::Dispatcher dispatcher(network, cfg, &keys, integer_reading);
  dispatcher.run();
  ASSERT_EQ(dispatcher.completed(), 3u);

  const double n = 15.0, sum = 120.0, sum_sq = 1240.0;
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  const auto& r = dispatcher.records();
  EXPECT_EQ(r[0].kind, service::AggregateKind::kSum);
  EXPECT_EQ(r[0].value, sum);
  EXPECT_EQ(r[1].kind, service::AggregateKind::kAvg);
  EXPECT_EQ(r[1].value, mean);
  EXPECT_EQ(r[2].kind, service::AggregateKind::kVar);
  EXPECT_NEAR(r[2].value, var, 1e-12);
  for (const auto& rec : r) EXPECT_EQ(rec.abs_error, 0.0);
}

TEST(ServiceTest, NameHelpersCoverEveryEnumerator) {
  EXPECT_STREQ(service::aggregate_kind_name(service::AggregateKind::kSum), "sum");
  EXPECT_STREQ(service::aggregate_kind_name(service::AggregateKind::kAvg), "avg");
  EXPECT_STREQ(service::aggregate_kind_name(service::AggregateKind::kVar), "var");
  EXPECT_STREQ(service::query_status_name(service::QueryStatus::kCompleted),
               "completed");
  EXPECT_STREQ(service::query_status_name(service::QueryStatus::kDroppedDeadline),
               "dropped_deadline");
  EXPECT_STREQ(service::query_status_name(service::QueryStatus::kRejectedQueue),
               "rejected_queue");
}

TEST(ServiceTest, MuxDropsUnknownAndRetiredQueries) {
  const auto keys = master_keys();
  net::Network network(dense_network(3));

  service::ServiceState state;
  state.readings = integer_reading;
  state.keys = &keys;
  state.seed = 7;
  service::QueryMux mux(&state);

  auto& node = network.node(1);
  proto::HelloMsg hello;
  hello.query_id = 99;  // never registered
  net::Frame frame;
  frame.src = 0;
  frame.type = proto::kHello;
  frame.payload = hello.to_bytes();
  mux.on_receive(node, frame);
  EXPECT_EQ(mux.instance_count(), 0u);
  EXPECT_EQ(network.metrics().counter("service.frame_unknown_query"), 1u);

  // Registered but retired: dropped before any instance is created.
  auto& q = state.queries[99];
  q.config.query_id = 99;
  q.active = false;
  mux.on_receive(node, frame);
  EXPECT_EQ(mux.instance_count(), 0u);
  EXPECT_EQ(network.metrics().counter("service.frame_retired_query"), 1u);

  // Activated: the frame now builds the per-query instance and routes.
  q.active = true;
  mux.on_receive(node, frame);
  EXPECT_EQ(mux.instance_count(), 1u);
  ASSERT_NE(mux.instance_for(99), nullptr);
  EXPECT_TRUE(mux.instance_for(99)->joined_tree());

  // Truncated payload (no QueryId prefix): dropped, never routed.
  net::Frame junk;
  junk.src = 0;
  junk.type = proto::kHello;
  junk.payload = {0x01, 0x02};
  mux.on_receive(node, junk);
  EXPECT_EQ(network.metrics().counter("service.frame_unreadable"), 1u);
  EXPECT_EQ(mux.instance_count(), 1u);
}

TEST(ServiceTest, QuerySpansAndLifecycleCountersAppearInTrace) {
  const auto keys = master_keys();
  net::Network network(dense_network(11));
  network.enable_trace();

  auto cfg = exact_service(4);
  cfg.trace_query_spans = true;
  service::Dispatcher dispatcher(network, cfg, &keys, integer_reading);
  dispatcher.run();
  ASSERT_EQ(dispatcher.completed(), 4u);

  std::set<std::uint64_t> launched, completed, span_tags;
  for (const auto& ev : network.tracer().merged()) {
    if (ev.kind == sim::TraceEvent::Kind::kCounter) {
      const auto c = static_cast<sim::TraceCounter>(ev.tag);
      if (c == sim::TraceCounter::kQueryLaunch) launched.insert(ev.value);
      if (c == sim::TraceCounter::kQueryComplete) completed.insert(ev.value);
    }
    if (ev.kind == sim::TraceEvent::Kind::kBegin && ev.value != 0 &&
        ev.node != sim::kTraceGlobalNode) {
      span_tags.insert(ev.value);  // phase span tagged with its query id
    }
  }
  const std::set<std::uint64_t> all{1, 2, 3, 4};
  EXPECT_EQ(launched, all);
  EXPECT_EQ(completed, all);
  // Tagged phase spans are best-effort (switch_phase no-ops when two
  // overlapping queries put a node in the same phase, DESIGN.md §5h),
  // so we require attribution to exist, not to be exhaustive: only
  // known query ids appear, and more than one query is attributable.
  EXPECT_FALSE(span_tags.empty());
  EXPECT_GT(span_tags.size(), 1u);
  for (const auto tag : span_tags) EXPECT_TRUE(all.count(tag)) << tag;
}

}  // namespace
}  // namespace icpda
