// RunningStats::merge, Histogram::merge/quantile and
// MetricRegistry::merge — the reduction semantics the parallel
// campaign runner depends on (runner/campaign.h): merging per-cell
// accumulators in a fixed order must reproduce the sequential
// accumulation to floating-point-identity levels of agreement.
#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace icpda::sim {
namespace {

std::vector<double> random_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-50.0, 150.0);
  return v;
}

TEST(RunningStatsMergeTest, EmptyMergeEmptyIsEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_TRUE(std::isnan(a.min()));
  EXPECT_TRUE(std::isnan(a.max()));
}

TEST(RunningStatsMergeTest, EmptyMergeNonemptyAdoptsIt) {
  RunningStats a, b;
  b.add(2.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(RunningStatsMergeTest, NonemptyMergeEmptyIsUnchanged) {
  RunningStats a, b;
  a.add(1.0);
  a.add(5.0);
  const double mean = a.mean();
  const double var = a.variance();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_DOUBLE_EQ(a.variance(), var);
}

TEST(RunningStatsMergeTest, SplitVersusWholeEquivalence) {
  const auto samples = random_samples(1000, 0xA11CE);
  RunningStats whole;
  for (const double x : samples) whole.add(x);

  for (const std::size_t split : {1u, 137u, 500u, 999u}) {
    RunningStats left, right;
    for (std::size_t i = 0; i < split; ++i) left.add(samples[i]);
    for (std::size_t i = split; i < samples.size(); ++i) right.add(samples[i]);
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.sum(), whole.sum(), 1e-8);
  }
}

TEST(RunningStatsMergeTest, ManyChunksMergedInOrderMatchWhole) {
  // The campaign reduction shape: one accumulator per trial, merged in
  // ascending trial order.
  const auto samples = random_samples(600, 0xBEE);
  RunningStats whole;
  for (const double x : samples) whole.add(x);

  RunningStats reduced;
  for (std::size_t chunk = 0; chunk < 60; ++chunk) {
    RunningStats cell;
    for (std::size_t i = chunk * 10; i < (chunk + 1) * 10; ++i) cell.add(samples[i]);
    reduced.merge(cell);
  }
  EXPECT_EQ(reduced.count(), whole.count());
  EXPECT_NEAR(reduced.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(reduced.variance(), whole.variance(), 1e-9);
  EXPECT_NEAR(reduced.sem(), whole.sem(), 1e-12);
}

TEST(RunningStatsMergeTest, MergeIsDeterministic) {
  // Same chunking, same order -> bitwise-identical accumulator state.
  const auto samples = random_samples(200, 0xD5);
  const auto reduce = [&] {
    RunningStats acc;
    for (std::size_t chunk = 0; chunk < 20; ++chunk) {
      RunningStats cell;
      for (std::size_t i = chunk * 10; i < (chunk + 1) * 10; ++i) cell.add(samples[i]);
      acc.merge(cell);
    }
    return acc;
  };
  const RunningStats a = reduce();
  const RunningStats b = reduce();
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.sum(), b.sum());
}

TEST(HistogramQuantileTest, EmptyHistogramIsNaN) {
  const Histogram h(0.0, 10.0, 5);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(HistogramQuantileTest, QZeroAndQOneHitTheSupportEdges) {
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 100; ++i) h.add(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);   // lower edge of the range
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);   // upper edge of the hit bucket [4,6)
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesLinearly) {
  Histogram h(0.0, 1.0, 1);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramQuantileTest, OutOfRangeQClamps) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(HistogramMergeTest, MergeSumsBucketsAndTotals) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(9.0);
  b.add(1.5);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.buckets()[0], 2u);  // 1.0 and 1.5
  EXPECT_EQ(a.buckets()[2], 1u);  // 5.0
  EXPECT_EQ(a.buckets()[4], 1u);  // 9.0
}

TEST(HistogramMergeTest, GeometryMismatchThrows) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 10);
  Histogram c(1.0, 11.0, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(MetricRegistryMergeTest, CountersAddAndStatsMerge) {
  MetricRegistry a, b;
  a.add("shared", 2);
  a.add("only_a");
  a.observe("lat", 1.0);
  b.add("shared", 3);
  b.add("only_b", 7);
  b.observe("lat", 3.0);
  b.observe("cov", 0.5);

  a.merge(b);
  EXPECT_EQ(a.counter("shared"), 5u);
  EXPECT_EQ(a.counter("only_a"), 1u);
  EXPECT_EQ(a.counter("only_b"), 7u);
  EXPECT_EQ(a.stat("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.stat("lat").mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.stat("cov").mean(), 0.5);
}

TEST(MetricRegistryMergeTest, MergeWithEmptyIsIdentityBothWays) {
  MetricRegistry a, empty;
  a.add("c", 4);
  a.observe("s", 2.5);

  MetricRegistry forward = a;
  forward.merge(empty);
  EXPECT_EQ(forward.counter("c"), 4u);
  EXPECT_EQ(forward.stat("s").count(), 1u);

  MetricRegistry backward = empty;
  backward.merge(a);
  EXPECT_EQ(backward.counter("c"), 4u);
  EXPECT_DOUBLE_EQ(backward.stat("s").mean(), 2.5);
}

}  // namespace
}  // namespace icpda::sim
