// Crypto substrate: PRF, authenticated cipher, key schemes.
#include <gtest/gtest.h>

#include <set>

#include "crypto/cipher.h"
#include "crypto/keyring.h"
#include "crypto/prf.h"
#include "sim/rng.h"

namespace icpda::crypto {
namespace {

TEST(PrfTest, DeterministicPerKeyAndInput) {
  const Key k = Key::from_seed(1);
  const Bytes msg{1, 2, 3, 4, 5};
  EXPECT_EQ(prf64(k, msg), prf64(k, msg));
  EXPECT_NE(prf64(k, msg), prf64(Key::from_seed(2), msg));
  EXPECT_NE(prf64(k, msg), prf64(k, Bytes{1, 2, 3, 4, 6}));
}

TEST(PrfTest, LengthExtensionDiffers) {
  const Key k = Key::from_seed(3);
  EXPECT_NE(prf64(k, Bytes{0x61, 0x62}), prf64(k, Bytes{0x61, 0x62, 0x00}));
  EXPECT_NE(prf64(k, {}), prf64(k, Bytes{0x00}));
}

TEST(PrfTest, SqueezeStreamIsDeterministicAndMixed) {
  Prf a(Key::from_seed(7));
  Prf b(Key::from_seed(7));
  a.absorb_u64(42);
  b.absorb_u64(42);
  std::set<std::uint64_t> outs;
  for (int i = 0; i < 16; ++i) {
    const auto x = a.squeeze64();
    EXPECT_EQ(x, b.squeeze64());
    outs.insert(x);
  }
  EXPECT_EQ(outs.size(), 16u);  // no repeats in a short stream
}

TEST(PrfTest, AbsorbAfterSqueezeThrows) {
  Prf p(Key::from_seed(9));
  (void)p.squeeze64();
  EXPECT_THROW(p.absorb_u64(1), std::logic_error);
}

TEST(PrfTest, OutputLooksBalanced) {
  // Population count of concatenated outputs should be near 50%.
  Prf p(Key::from_seed(11));
  int bits = 0;
  const int words = 1000;
  for (int i = 0; i < words; ++i) bits += __builtin_popcountll(p.squeeze64());
  EXPECT_NEAR(static_cast<double>(bits) / (64.0 * words), 0.5, 0.02);
}

TEST(DeriveKeyTest, DistinctPerLabel) {
  const Key master = Key::from_seed(100);
  const Key a = derive_key(master, 1, 2);
  const Key b = derive_key(master, 2, 1);
  const Key c = derive_key(master, 1, 3);
  EXPECT_EQ(a, derive_key(master, 1, 2));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

// ---- cipher ---------------------------------------------------------

TEST(CipherTest, SealOpenRoundTrip) {
  const Key k = Key::from_seed(5);
  const Bytes plain{10, 20, 30, 40, 50};
  const Bytes sealed = seal(k, 12345, plain);
  EXPECT_EQ(sealed.size(), plain.size() + kSealOverheadBytes);
  const auto opened = open(k, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plain);
}

TEST(CipherTest, EmptyPlaintext) {
  const Key k = Key::from_seed(5);
  const auto opened = open(k, seal(k, 1, {}));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(CipherTest, WrongKeyFails) {
  const Bytes sealed = seal(Key::from_seed(5), 1, {1, 2, 3});
  EXPECT_FALSE(open(Key::from_seed(6), sealed).has_value());
}

TEST(CipherTest, TamperDetected) {
  const Key k = Key::from_seed(5);
  Bytes sealed = seal(k, 1, {1, 2, 3});
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    Bytes tampered = sealed;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(open(k, tampered).has_value()) << "byte " << i;
  }
}

TEST(CipherTest, TruncatedInputRejected) {
  const Key k = Key::from_seed(5);
  EXPECT_FALSE(open(k, Bytes(kSealOverheadBytes - 1, 0)).has_value());
  EXPECT_FALSE(open(k, {}).has_value());
}

TEST(CipherTest, DistinctNoncesGiveDistinctCiphertext) {
  const Key k = Key::from_seed(5);
  const Bytes plain{1, 2, 3, 4};
  const Bytes a = seal(k, 1, plain);
  const Bytes b = seal(k, 2, plain);
  EXPECT_NE(a, b);
}

TEST(CipherTest, CiphertextHidesPlaintext) {
  const Key k = Key::from_seed(5);
  const Bytes plain(64, 0xAA);
  const Bytes sealed = seal(k, 7, plain);
  // The body must not contain the constant plaintext run.
  int matches = 0;
  for (std::size_t i = 8; i < 8 + plain.size(); ++i) {
    if (sealed[i] == 0xAA) ++matches;
  }
  EXPECT_LT(matches, 16);  // ~1/4 of 64 would already be suspicious
}

// ---- key schemes ----------------------------------------------------

TEST(MasterPairwiseTest, SymmetricUniqueNoThirdParty) {
  const MasterPairwiseScheme scheme(Key::from_seed(77));
  const auto k12 = scheme.link_key(1, 2);
  const auto k21 = scheme.link_key(2, 1);
  const auto k13 = scheme.link_key(1, 3);
  ASSERT_TRUE(k12 && k21 && k13);
  EXPECT_EQ(*k12, *k21);
  EXPECT_NE(*k12, *k13);
  EXPECT_FALSE(scheme.link_key(4, 4).has_value());
  EXPECT_FALSE(scheme.third_party_can_read(1, 2, 3));
}

TEST(EgPredistributionTest, RingsHaveRequestedSize) {
  sim::Rng rng(3);
  const EgPredistribution eg(50, 1000, 80, rng);
  for (net::NodeId n = 0; n < 50; ++n) {
    EXPECT_EQ(eg.ring(n).size(), 80u);
    EXPECT_TRUE(std::is_sorted(eg.ring(n).begin(), eg.ring(n).end()));
  }
}

TEST(EgPredistributionTest, LinkKeyExistsIffRingsIntersect) {
  sim::Rng rng(5);
  const EgPredistribution eg(30, 500, 40, rng);
  for (net::NodeId a = 0; a < 30; ++a) {
    for (net::NodeId b = a + 1; b < 30; ++b) {
      std::set<std::uint32_t> ra(eg.ring(a).begin(), eg.ring(a).end());
      bool intersect = false;
      for (const auto id : eg.ring(b)) intersect |= ra.contains(id);
      EXPECT_EQ(eg.link_key(a, b).has_value(), intersect);
      EXPECT_EQ(eg.shared_key_id(a, b).has_value(), intersect);
    }
  }
}

TEST(EgPredistributionTest, SymmetricKeys) {
  sim::Rng rng(7);
  const EgPredistribution eg(20, 200, 30, rng);
  for (net::NodeId a = 0; a < 20; ++a) {
    for (net::NodeId b = a + 1; b < 20; ++b) {
      const auto kab = eg.link_key(a, b);
      const auto kba = eg.link_key(b, a);
      ASSERT_EQ(kab.has_value(), kba.has_value());
      if (kab) {
        EXPECT_EQ(*kab, *kba);
      }
    }
  }
}

TEST(EgPredistributionTest, ThirdPartyReadsIffHoldsSharedKey) {
  sim::Rng rng(11);
  const EgPredistribution eg(30, 300, 50, rng);
  int readable_links = 0;
  for (net::NodeId a = 0; a < 30; ++a) {
    for (net::NodeId b = a + 1; b < 30; ++b) {
      const auto id = eg.shared_key_id(a, b);
      if (!id) continue;
      for (net::NodeId c = 0; c < 30; ++c) {
        if (c == a || c == b) continue;
        const bool holds = std::binary_search(eg.ring(c).begin(), eg.ring(c).end(), *id);
        EXPECT_EQ(eg.third_party_can_read(a, b, c), holds);
        readable_links += holds ? 1 : 0;
      }
    }
  }
  EXPECT_GT(readable_links, 0);  // key reuse must actually occur at k/P=1/6
}

TEST(EgPredistributionTest, ConnectProbabilityMatchesMonteCarlo) {
  const std::size_t pool = 1000;
  const std::size_t ring = 50;
  const double analytic = EgPredistribution::connect_probability(pool, ring);
  sim::Rng rng(13);
  int connected = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const EgPredistribution eg(2, pool, ring, rng.fork("eg", static_cast<std::uint64_t>(t)));
    connected += eg.link_key(0, 1).has_value() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(connected) / trials, analytic, 0.07);
}

TEST(EgPredistributionTest, InvalidParamsThrow) {
  sim::Rng rng(1);
  EXPECT_THROW(EgPredistribution(10, 5, 6, rng), std::invalid_argument);
  EXPECT_THROW(EgPredistribution(10, 5, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace icpda::crypto
