// iCPDA protocol mechanics: phase-by-phase behaviour on crafted
// topologies and configuration edges (roster cap, rejoin, policies,
// masks, key-scheme failures, witness arming).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"

namespace icpda::core {
namespace {

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x7357)};
}

net::NetworkConfig paper_network(std::size_t n, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = n;
  cfg.seed = seed;
  return cfg;
}

/// Run an epoch while keeping handles to every app for inspection.
struct Rig {
  Rig(net::Network& network, const IcpdaConfig& cfg,
      const proto::ReadingProvider& readings, const crypto::KeyScheme& keys,
      const AttackPlan& attack = {})
      : attack_plan(attack) {
    network.attach_apps([&, this](net::Node&) {
      auto app = std::make_unique<IcpdaApp>(cfg, readings, &keys, &attack_plan,
                                            &outcome);
      apps.push_back(app.get());
      return app;
    });
    // Bounded horizon (mirrors run_icpda_epoch): congested scenarios
    // can drain stragglers for a long simulated time.
    network.run(sim::seconds(cfg.timing.start_delay_s + cfg.phase2_budget_s) +
                cfg.timing.close_delay() + sim::seconds(3.0));
  }
  AttackPlan attack_plan;
  IcpdaOutcome outcome;
  std::vector<IcpdaApp*> apps;
};

TEST(IcpdaProtocolTest, RosterCapIsRespected) {
  net::Network network(paper_network(500, 21));
  IcpdaConfig cfg;
  cfg.max_cluster_size = 5;
  const auto keys = master_keys();
  Rig rig(network, cfg, proto::constant_reading(1.0), keys);
  for (const auto& [size, count] : rig.outcome.cluster_sizes) {
    EXPECT_LE(size, 5u) << count << " clusters of size " << size;
  }
}

TEST(IcpdaProtocolTest, RejoinRecoversRejectedMembers) {
  net::Network network(paper_network(500, 22));
  IcpdaConfig cfg;
  cfg.max_cluster_size = 4;  // tight cap: many rejections
  const auto keys = master_keys();
  Rig rig(network, cfg, proto::constant_reading(1.0), keys);
  EXPECT_GT(network.metrics().counter("icpda.join_rejected"), 0u);
  EXPECT_GT(network.metrics().counter("icpda.rejoin"), 0u);
  // Most rejected members find another cluster: coverage stays high.
  EXPECT_LT(rig.outcome.unclustered, 60u);
}

TEST(IcpdaProtocolTest, DropPolicySuppressesLoneHeadReadings) {
  const auto run_with = [](SmallClusterPolicy policy) {
    net::Network network(paper_network(250, 23));
    IcpdaConfig cfg;
    cfg.small_cluster_policy = policy;
    const auto keys = master_keys();
    Rig rig(network, cfg, proto::constant_reading(1.0), keys);
    return rig.outcome.result ? rig.outcome.result->count : 0.0;
  };
  const double clear_count = run_with(SmallClusterPolicy::kClearReport);
  const double drop_count = run_with(SmallClusterPolicy::kDrop);
  EXPECT_GT(clear_count, drop_count);  // drop loses the lone heads' data
}

TEST(IcpdaProtocolTest, ExcludedNodesNeverAggregate) {
  net::Network network(paper_network(300, 24));
  IcpdaConfig cfg;
  // Allow only even ids (plus the BS).
  proto::HelloMsg mask_builder;
  for (net::NodeId id = 0; id < 300; id += 2) mask_builder.set_allowed(id, 300);
  cfg.allowed_mask = mask_builder.allowed_mask;
  const auto keys = master_keys();
  Rig rig(network, cfg, proto::constant_reading(1.0), keys);
  for (net::NodeId id = 1; id < 300; ++id) {
    if (id % 2 == 1) {
      EXPECT_NE(rig.apps[id]->role(), ClusterRole::kHead) << "node " << id;
    }
  }
  // Roughly half the readings are excluded.
  ASSERT_TRUE(rig.outcome.result.has_value());
  EXPECT_LT(rig.outcome.result->count, 200.0);
  EXPECT_GT(rig.outcome.result->count, 50.0);
}

TEST(IcpdaProtocolTest, MembersAndHeadsAgreeOnClusterValue) {
  net::Network network(paper_network(350, 25));
  IcpdaConfig cfg;
  const auto keys = master_keys();
  Rig rig(network, cfg, proto::constant_reading(1.0), keys);
  // For every member that solved a cluster value, it must equal its
  // head's (same digest, same interpolation).
  int compared = 0;
  for (net::NodeId id = 1; id < 350; ++id) {
    auto* app = rig.apps[id];
    if (app->role() != ClusterRole::kMember || !app->cluster_value()) continue;
    const net::NodeId head = app->cluster().head();
    const auto head_value = rig.apps[head]->cluster_value();
    if (!head_value) continue;
    EXPECT_NEAR(app->cluster_value()->sum, head_value->sum, 1e-9);
    ++compared;
  }
  EXPECT_GT(compared, 50);
}

TEST(IcpdaProtocolTest, ClusterSumsMatchMemberReadings) {
  net::Network network(paper_network(350, 26));
  IcpdaConfig cfg;
  const auto keys = master_keys();
  const auto readings = [](std::uint32_t id) { return 0.5 * id; };
  Rig rig(network, cfg, readings, keys);
  int checked = 0;
  for (net::NodeId id = 1; id < 350; ++id) {
    auto* app = rig.apps[id];
    if (app->role() != ClusterRole::kHead || !app->cluster_value()) continue;
    if (app->cluster().size() < 2) continue;  // clear-report path
    // The solved sum must equal the sum of readings over the common
    // contributor set.
    double expected = 0.0;
    for (const auto member : app->cluster().contributor_set()) {
      expected += readings(member);
    }
    EXPECT_NEAR(app->cluster_value()->sum, expected, 1e-6 * (1.0 + expected))
        << "head " << id;
    ++checked;
  }
  EXPECT_GT(checked, 30);
}

TEST(IcpdaProtocolTest, EgSchemeWithSparsePoolDegradesGracefully) {
  net::Network network(paper_network(300, 27));
  IcpdaConfig cfg;
  sim::Rng rng(5);
  // Pool so large rings rarely intersect: most pairs share no key.
  const crypto::EgPredistribution keys(300, 20000, 30, rng);
  Rig rig(network, cfg, proto::constant_reading(1.0), keys);
  EXPECT_GT(network.metrics().counter("icpda.no_link_key"), 0u);
  // Epoch still completes and is honest-accepted; data loss is the
  // cost, not crashes or false alarms.
  ASSERT_TRUE(rig.outcome.result.has_value());
  EXPECT_TRUE(rig.outcome.accepted());
}

TEST(IcpdaProtocolTest, WitnessesArmInDenseNetworks) {
  net::Network network(paper_network(400, 28));
  IcpdaConfig cfg;
  const auto keys = master_keys();
  Rig rig(network, cfg, proto::constant_reading(1.0), keys);
  const auto armed = network.metrics().counter("icpda.witness_armed");
  // Most members of solved clusters should be armed as witnesses.
  EXPECT_GT(armed, rig.outcome.members / 2);
}

TEST(IcpdaProtocolTest, WatchdogDisabledStillAggregates) {
  net::Network network(paper_network(300, 29));
  IcpdaConfig cfg;
  cfg.watchdog_enabled = false;
  const auto keys = master_keys();
  Rig rig(network, cfg, proto::constant_reading(1.0), keys);
  ASSERT_TRUE(rig.outcome.result.has_value());
  EXPECT_GT(rig.outcome.result->count, 0.9 * 299);
  EXPECT_EQ(network.metrics().counter("icpda.watchdog_alarm"), 0u);
}

TEST(IcpdaProtocolTest, PollutingRelayIsCaughtByWatchdog) {
  // Find a seed where some relay actually forwards traffic, make it a
  // polluter that does NOT grab a head role (pure in-transit tamper).
  int caught = 0;
  int active = 0;
  for (std::uint64_t seed = 31; seed < 40 && active < 4; ++seed) {
    net::Network network(paper_network(400, seed));
    IcpdaConfig cfg;
    const auto keys = master_keys();
    AttackPlan attack;
    attack.polluters.insert(123);
    attack.delta = 250.0;
    attack.force_head = false;  // stay a relay if the coin says so
    Rig rig(network, cfg, proto::constant_reading(1.0), keys, attack);
    const bool tampered_in_transit =
        network.metrics().counter("icpda.pollution_injected") > 0 &&
        rig.apps[123]->role() != ClusterRole::kHead;
    if (!tampered_in_transit) continue;
    ++active;
    if (!rig.outcome.accepted() ||
        network.metrics().counter("icpda.watchdog_tamper") > 0) {
      ++caught;
    }
  }
  ASSERT_GT(active, 0) << "no seed produced an in-transit tamper";
  EXPECT_EQ(caught, active);
}

TEST(IcpdaProtocolTest, SumQueryWithNegativeReadings) {
  net::Network network(paper_network(300, 41));
  IcpdaConfig cfg;
  const auto keys = master_keys();
  const auto readings = [](std::uint32_t id) {
    return (id % 2 == 0) ? -1.0 : 2.0;
  };
  Rig rig(network, cfg, readings, keys);
  ASSERT_TRUE(rig.outcome.result.has_value());
  // True sum over all 299 sensors: 150*2 - 149*1 = 151; allow loss.
  EXPECT_GT(rig.outcome.result->sum, 100.0);
  EXPECT_LT(rig.outcome.result->sum, 160.0);
  EXPECT_TRUE(rig.outcome.accepted());
}

TEST(IcpdaProtocolTest, VarianceComputableFromTriple) {
  net::Network network(paper_network(400, 43));
  IcpdaConfig cfg;
  const auto keys = master_keys();
  // Readings alternate 10 and 20: population variance 25, mean 15.
  const auto readings = [](std::uint32_t id) { return id % 2 ? 10.0 : 20.0; };
  Rig rig(network, cfg, readings, keys);
  ASSERT_TRUE(rig.outcome.result.has_value());
  EXPECT_NEAR(rig.outcome.result->mean(), 15.0, 0.5);
  EXPECT_NEAR(rig.outcome.result->variance(), 25.0, 1.5);
}

TEST(IcpdaProtocolTest, DisconnectedTopologyCoversOnlyBsComponent) {
  // Two clumps far apart; the BS sits in clump 1.
  std::vector<net::Point> pts;
  sim::Rng rng(3);
  for (int i = 0; i < 40; ++i) pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  for (int i = 0; i < 40; ++i) pts.push_back({rng.uniform(300, 400), rng.uniform(300, 400)});
  pts[0] = {50, 50};
  net::NetworkConfig ncfg;
  ncfg.seed = 4;
  net::Network network(net::Topology{pts, 50.0}, ncfg);
  IcpdaConfig cfg;
  const auto keys = master_keys();
  Rig rig(network, cfg, proto::constant_reading(1.0), keys);
  ASSERT_TRUE(rig.outcome.result.has_value());
  EXPECT_LE(rig.outcome.result->count, 39.5);
  EXPECT_GT(rig.outcome.result->count, 20.0);
}

TEST(IcpdaProtocolTest, DeterministicEpochForFixedSeed) {
  const auto run = [] {
    net::Network network(paper_network(300, 77));
    IcpdaConfig cfg;
    const auto keys = master_keys();
    Rig rig(network, cfg, proto::constant_reading(1.0), keys);
    return rig.outcome.result->count;
  };
  EXPECT_EQ(run(), run());
}

/// Parameterized density sweep: coverage (heads+members) must stay
/// high across the paper's size range.
class IcpdaCoverageTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IcpdaCoverageTest, CoverageAboveNinetyFivePercent) {
  const std::size_t n = GetParam();
  net::Network network(paper_network(n, 1000 + n));
  IcpdaConfig cfg;
  const auto keys = master_keys();
  Rig rig(network, cfg, proto::constant_reading(1.0), keys);
  const double covered =
      static_cast<double>(rig.outcome.heads + rig.outcome.members) /
      static_cast<double>(n - 1);
  EXPECT_GT(covered, 0.95) << "N=" << n;
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, IcpdaCoverageTest,
                         ::testing::Values(200, 300, 400, 500, 600));

}  // namespace
}  // namespace icpda::core
