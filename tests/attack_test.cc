// Byzantine adversary suite: per-attack-class behaviour of the active
// adversary layer (core::AdversaryPlan) and the hardening that detects
// and survives it (core::HardeningConfig).
//
// The differential test is the anchor: attacks::recover() solves the
// coalition's pooled linear system empirically, and its verdict must
// match the closed-form disclosure_predicate() from the Sen–Maitra
// rank argument on randomized synthetic clusters. The end-to-end tests
// then drive each attack class through real epochs: unhardened runs
// must demonstrably suffer the attack, hardened runs must detect it,
// and benign hardened runs must stay silent (zero false positives).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "attacks/sen_maitra.h"
#include "core/adversary.h"
#include "core/cpda_algebra.h"
#include "core/faults.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"
#include "proto/messages.h"
#include "sim/rng.h"

namespace icpda::core {
namespace {

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x601D)};
}

/// The golden fixture's 30-node dense deployment: every node has
/// several neighbours in range, so clusters of size >= 3 form reliably.
net::NetworkConfig small_net(std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = 30;
  cfg.field_width_m = 120.0;
  cfg.field_height_m = 120.0;
  cfg.range_m = 50.0;
  cfg.seed = seed;
  return cfg;
}

/// Epoch config with the fault-healing slack the recovery paths need.
IcpdaConfig epoch_config() {
  IcpdaConfig cfg;
  cfg.timing.close_slack_s = 2.5;
  return cfg;
}

/// Count this epoch's disclosed values via the coalition ledger, and
/// separately count how many of those are VALUE-verified against the
/// planted constant reading (every honest sensor read `reading`).
struct DisclosureCount {
  std::uint32_t disclosed = 0;
  std::uint32_t value_verified = 0;
};
DisclosureCount count_disclosures(const AdversaryState& st, double reading) {
  DisclosureCount out;
  for (const auto& [key, obs] : st.clusters) {
    if (key.first != st.epoch) continue;
    const auto view = attacks::view_from_observation(obs, st.nodes);
    const auto res = attacks::recover(view);
    out.disclosed += static_cast<std::uint32_t>(res.disclosed.size());
    if (res.disclosed.empty()) continue;
    const std::vector<double> known(view.members.size() - res.honest, reading);
    if (const auto v = attacks::recover_lone_value(view, known);
        v && std::abs(*v - reading) < 1e-6) {
      out.value_verified += static_cast<std::uint32_t>(res.disclosed.size());
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Differential: the empirical rank computation in attacks::recover()
// must agree with the closed-form Sen–Maitra predicate on randomized
// synthetic clusters — every cluster size, every coalition size, with
// and without the digest.

TEST(AttackTest, SenMaitraDifferential) {
  sim::Rng rng(0xA77AC4);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t m = static_cast<std::size_t>(rng.range(3, 6));

    // Public seeds: the protocol uses a shuffled permutation of 1..m.
    std::vector<double> seeds(m);
    for (std::size_t j = 0; j < m; ++j) seeds[j] = static_cast<double>(j + 1);
    rng.shuffle(seeds);

    // Private values and each member's share vector p_i(x_j).
    std::vector<double> values(m);
    std::vector<std::vector<proto::Aggregate>> shares(m);
    for (std::size_t i = 0; i < m; ++i) {
      values[i] = rng.uniform(-50.0, 50.0);
      shares[i] = make_shares(proto::Aggregate::of(values[i]), seeds, rng);
      ASSERT_EQ(shares[i].size(), m);
    }

    // Random coalition: 0..m-1 compromised members.
    const std::size_t coalition = static_cast<std::size_t>(rng.range(0, 3)) % m;
    attacks::CoalitionView view;
    view.seeds = seeds;
    view.compromised.assign(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      view.members.push_back(static_cast<std::uint32_t>(i + 1));
    }
    {
      std::vector<std::size_t> order(m);
      for (std::size_t i = 0; i < m; ++i) order[i] = i;
      rng.shuffle(order);
      for (std::size_t c = 0; c < coalition; ++c) view.compromised[order[c]] = 1;
    }

    // The coalition sees every share delivered to a compromised
    // recipient (the protocol delivers all m*m shares).
    for (std::size_t recipient = 0; recipient < m; ++recipient) {
      if (!view.compromised[recipient]) continue;
      for (std::size_t sender = 0; sender < m; ++sender) {
        view.shares[{recipient, sender}] = shares[sender][recipient].sum;
      }
    }

    // Digest coin: the head's broadcast F_j = sum_i p_i(x_j).
    const bool digest = rng.bernoulli(0.5);
    if (digest) {
      view.f_values.assign(m, 0.0);
      for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t i = 0; i < m; ++i) view.f_values[j] += shares[i][j].sum;
      }
    }

    const auto res = attacks::recover(view);
    const std::size_t honest = m - coalition;
    ASSERT_EQ(res.honest, honest);
    const bool predicted = attacks::disclosure_predicate(honest, digest);
    ASSERT_EQ(res.disclosed.size(), predicted ? 1u : 0u)
        << "iter " << iter << " m=" << m << " coalition=" << coalition
        << " digest=" << digest << " equations=" << res.equations
        << " nullity=" << res.nullity;

    // In the predicate case the closed-form numeric recovery must hand
    // back the lone honest member's planted value.
    std::vector<double> known;
    for (std::size_t i = 0; i < m; ++i) {
      if (view.compromised[i]) known.push_back(values[i]);
    }
    const auto v = attacks::recover_lone_value(view, known);
    if (predicted) {
      ASSERT_TRUE(v.has_value());
      std::size_t victim = m;
      for (std::size_t i = 0; i < m; ++i) {
        if (!view.compromised[i]) victim = i;
      }
      ASSERT_LT(victim, m);
      EXPECT_NEAR(*v, values[victim], 1e-6) << "iter " << iter;
    } else {
      EXPECT_FALSE(v.has_value()) << "iter " << iter;
    }
  }
}

// ---------------------------------------------------------------------
// Epoch-freshness tag codec: allocation-free peek, staleness gate and
// the gated frame-type set.

TEST(AttackTest, EpochTagPeekAndStaleness) {
  proto::FAnnounceMsg msg;
  msg.query_id = 7;
  msg.head = 1;
  msg.member = 2;
  msg.epoch_tag = 0xDEADBEEF;
  const auto tagged = msg.to_bytes();
  EXPECT_EQ(proto::peek_epoch_tag(tagged), 0xDEADBEEFu);
  EXPECT_FALSE(proto::epoch_tag_stale(tagged, 0xDEADBEEF));
  EXPECT_TRUE(proto::epoch_tag_stale(tagged, 0xDEADBEEF + 1));
  // Gate off (expected == 0): nothing is ever stale.
  EXPECT_FALSE(proto::epoch_tag_stale(tagged, 0));

  // Untagged payloads are byte-identical to the legacy wire format and
  // fail a non-zero gate (an unhardened frame cannot prove freshness).
  msg.epoch_tag = 0;
  const auto untagged = msg.to_bytes();
  EXPECT_EQ(proto::peek_epoch_tag(untagged), 0u);
  EXPECT_TRUE(proto::epoch_tag_stale(untagged, 1));
  EXPECT_FALSE(proto::epoch_tag_stale(untagged, 0));

  // A round-trip decode must surface the tag.
  const auto decoded = proto::FAnnounceMsg::from_bytes(tagged);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch_tag, 0xDEADBEEFu);

  // The gate covers exactly the Phase II/III traffic.
  EXPECT_TRUE(proto::epoch_tag_gated(proto::kClusterRoster));
  EXPECT_TRUE(proto::epoch_tag_gated(proto::kShare));
  EXPECT_TRUE(proto::epoch_tag_gated(proto::kFAnnounce));
  EXPECT_TRUE(proto::epoch_tag_gated(proto::kClusterDigest));
  EXPECT_TRUE(proto::epoch_tag_gated(proto::kClusterReport));
  EXPECT_TRUE(proto::epoch_tag_gated(proto::kAlarm));
  EXPECT_FALSE(proto::epoch_tag_gated(proto::kHello));
  EXPECT_FALSE(proto::epoch_tag_gated(proto::kJoin));
}

// ---------------------------------------------------------------------
// Composability: a node that is both crashed and compromised resolves
// to crashed, deterministically (dead nodes run no attack code).

TEST(AttackTest, ResolveCompromisedSubtractsCrashed) {
  net::Network network(small_net(0x601D));
  AdversaryPlan plan;
  plan.attack = AttackClass::kPollution;
  plan.compromised = {3, 5};

  AdversaryState st;
  const std::vector<net::NodeId> crashed{5};
  const auto n = resolve_compromised(network, plan, crashed,
                                     network.rng().fork("t"), st);
  EXPECT_EQ(n, 1u);
  EXPECT_TRUE(st.is_compromised(3));
  EXPECT_FALSE(st.is_compromised(5));

  // The Bernoulli stream is drawn unconditionally, so the random part
  // of the resolved set is independent of the explicit part: same rng,
  // same fraction, different explicit sets -> identical random draw.
  AdversaryPlan a, b;
  a.attack = b.attack = AttackClass::kPollution;
  a.compromise_fraction = b.compromise_fraction = 0.5;
  b.compromised = {3};
  AdversaryState sa, sb;
  resolve_compromised(network, a, {}, network.rng().fork("same"), sa);
  resolve_compromised(network, b, {}, network.rng().fork("same"), sb);
  sa.nodes.insert(3);
  EXPECT_EQ(sa.nodes, sb.nodes);
}

TEST(AttackTest, CrashedAndCompromisedResolvesToCrashed) {
  const auto keys = master_keys();

  // Node 7 is both compromised (polluter) and crashed at t=0: the
  // crashed-first rule keeps it out of the compromised set and no
  // attack behaviour fires anywhere.
  {
    net::Network network(small_net(0x601D));
    AdversaryPlan plan;
    plan.attack = AttackClass::kPollution;
    plan.compromised = {7};
    AdversaryState st;
    FaultPlan faults;
    faults.crash_at_s[7] = 0.0;
    const auto out = run_icpda_epoch(network, epoch_config(),
                                     proto::constant_reading(1.0), keys, plan,
                                     st, faults);
    EXPECT_EQ(out.nodes_crashed, 1u);
    EXPECT_EQ(out.compromised_nodes, 0u);
    EXPECT_EQ(st.digests_forged, 0u);
    EXPECT_TRUE(out.accepted());
  }

  // With a second compromised node the attack survives the crash of
  // the first: only node 9 stays resolved.
  {
    net::Network network(small_net(0x601D));
    AdversaryPlan plan;
    plan.attack = AttackClass::kPollution;
    plan.compromised = {7, 9};
    AdversaryState st;
    FaultPlan faults;
    faults.crash_at_s[7] = 0.0;
    const auto out = run_icpda_epoch(network, epoch_config(),
                                     proto::constant_reading(1.0), keys, plan,
                                     st, faults);
    EXPECT_EQ(out.nodes_crashed, 1u);
    EXPECT_EQ(out.compromised_nodes, 1u);
    EXPECT_FALSE(st.is_compromised(7));
    EXPECT_TRUE(st.is_compromised(9));
  }
}

// ---------------------------------------------------------------------
// Disclosure end-to-end: an unhardened epoch leaks at least one honest
// value (value-verified, not just rank-determined); the anonymity
// floor starves the coalition of small rosters.

TEST(AttackTest, DisclosureLeaksUnhardenedAndAnonymityFloorBlocks) {
  const auto keys = master_keys();
  AdversaryPlan plan;
  plan.attack = AttackClass::kDisclosure;
  plan.compromised = {3, 13, 23};

  // Seed 3: the coalition heads attract multi-honest joiner sets, so
  // roster engineering (not just luck) produces the tiny clusters.
  {
    net::Network network(small_net(3));
    AdversaryState st;
    const auto out = run_icpda_epoch(network, epoch_config(),
                                     proto::constant_reading(1.0), keys, plan, st);
    EXPECT_EQ(out.compromised_nodes, 3u);
    EXPECT_GE(st.rosters_engineered, 1u);
    const auto d = count_disclosures(st, 1.0);
    EXPECT_GE(d.disclosed, 1u);
    // Every rank-determined value must ALSO numerically match the
    // planted reading — disclosure is real, not a solver artifact.
    EXPECT_EQ(d.value_verified, d.disclosed);
  }

  // Hardened: honest members refuse rosters below the anonymity floor,
  // so the engineered tiny clusters never assemble around a victim.
  {
    net::Network network(small_net(3));
    AdversaryState st;
    auto cfg = epoch_config();
    cfg.hardening.epoch_tag = 1;
    cfg.hardening.min_honest_anonymity = 4;
    const auto out = run_icpda_epoch(network, cfg, proto::constant_reading(1.0),
                                     keys, plan, st);
    EXPECT_GE(out.rosters_refused, 1u);
    const auto d = count_disclosures(st, 1.0);
    EXPECT_EQ(d.disclosed, 0u);
  }
}

// ---------------------------------------------------------------------
// Pollution end-to-end: the calibrated own-entry forgery slides past
// the naive endorsement checks unhardened (accepted epoch, biased by
// exactly delta per forged digest); the on-air F self-commitment
// cross-check catches and attributes it.

TEST(AttackTest, PollutionBiasesUnhardenedAndCrosscheckCatches) {
  const auto keys = master_keys();
  AdversaryPlan plan;
  plan.attack = AttackClass::kPollution;
  plan.compromised = {3};

  {
    net::Network network(small_net(0x601D));
    AdversaryState st;
    const auto out = run_icpda_epoch(network, epoch_config(),
                                     proto::constant_reading(1.0), keys, plan, st);
    ASSERT_TRUE(out.result.has_value());
    EXPECT_GE(st.digests_forged, 1u);
    // No member endorses the head's own digest entry, so the forged
    // epoch is ACCEPTED — that is the vulnerability.
    EXPECT_TRUE(out.accepted());
    // The Lagrange calibration shifts the aggregate by exactly delta
    // per forged digest (all readings are 1.0, so truth is count*1).
    EXPECT_NEAR(std::abs(out.result->sum - out.result->count),
                plan.pollution_delta * st.digests_forged, 1e-6);
  }

  // Hardened: the head's own on-air F announcement pins a commitment
  // every listener can replay against the digest.
  {
    net::Network network(small_net(0x601D));
    AdversaryState st;
    auto cfg = epoch_config();
    cfg.hardening.epoch_tag = 1;
    cfg.hardening.digest_crosscheck = true;
    const auto out = run_icpda_epoch(network, cfg, proto::constant_reading(1.0),
                                     keys, plan, st);
    EXPECT_GE(st.digests_forged, 1u);
    EXPECT_GE(out.crosscheck_alarms, 1u);
    // The attributable value-tamper alarm rejects the epoch.
    EXPECT_FALSE(out.accepted());
  }
}

// ---------------------------------------------------------------------
// Replay end-to-end: frames captured in epoch 1 are re-injected in
// epoch 2. Unhardened receivers accept them; the freshness gate drops
// every one, and stays silent across benign hardened epochs.

TEST(AttackTest, ReplayInjectsUnhardenedAndFreshnessGateRejects) {
  const auto keys = master_keys();
  AdversaryPlan plan;
  plan.attack = AttackClass::kReplay;
  plan.compromised = {5, 9};

  {
    net::Network network(small_net(0x601D));
    AdversaryState st;
    for (std::uint32_t e = 1; e <= 2; ++e) {
      const auto out = run_icpda_epoch(network, epoch_config(),
                                       proto::constant_reading(double(e)), keys,
                                       plan, st);
      EXPECT_EQ(out.replay_rejections, 0u);  // nothing gates them
    }
    EXPECT_GT(st.replays_injected, 0u);
  }

  {
    net::Network network(small_net(0x601D));
    AdversaryState st;
    std::uint32_t rejections = 0;
    for (std::uint32_t e = 1; e <= 2; ++e) {
      auto cfg = epoch_config();
      cfg.hardening.epoch_tag = e;
      const auto out = run_icpda_epoch(network, cfg,
                                       proto::constant_reading(double(e)), keys,
                                       plan, st);
      rejections += out.replay_rejections;
    }
    EXPECT_GT(st.replays_injected, 0u);
    EXPECT_GT(rejections, 0u);
  }

  // Benign false-positive control: hardened epochs with no adversary
  // must never trip the gate (every sender stamps the current tag).
  {
    net::Network network(small_net(0x601D));
    AdversaryPlan benign;
    AdversaryState st;
    for (std::uint32_t e = 1; e <= 2; ++e) {
      auto cfg = epoch_config();
      cfg.hardening.epoch_tag = e;
      const auto out = run_icpda_epoch(network, cfg,
                                       proto::constant_reading(double(e)), keys,
                                       benign, st);
      EXPECT_EQ(out.compromised_nodes, 0u);
      EXPECT_EQ(out.replay_rejections, 0u);
      EXPECT_TRUE(out.accepted());
    }
  }
}

// ---------------------------------------------------------------------
// Withholding end-to-end: a compromised member starves the Vandermonde
// solve while announcing F. Unhardened recovery re-admits the starver;
// attribution excludes it and the cluster completes.

TEST(AttackTest, WithholdingStarvesUnhardenedAndAttributionRecovers) {
  const auto keys = master_keys();
  AdversaryPlan plan;
  plan.attack = AttackClass::kWithhold;
  plan.compromised = {3, 13, 23};

  {
    net::Network network(small_net(0x601D));
    AdversaryState st;
    const auto out = run_icpda_epoch(network, epoch_config(),
                                     proto::constant_reading(1.0), keys, plan, st);
    EXPECT_GT(st.shares_withheld, 0u);
    // The naive recovery round re-admits the announcing starver, so
    // starved clusters stay starved (failed) or churn through
    // recovery without completing.
    EXPECT_GT(out.clusters_failed +
                  network.metrics().counter("icpda.phase2_recovery"),
              0u);
    EXPECT_EQ(out.withholders_flagged, 0u);
  }

  {
    net::Network network(small_net(0x601D));
    AdversaryState st;
    auto cfg = epoch_config();
    cfg.hardening.epoch_tag = 1;
    cfg.hardening.attribute_withholders = true;
    const auto out = run_icpda_epoch(network, cfg, proto::constant_reading(1.0),
                                     keys, plan, st);
    EXPECT_GT(st.shares_withheld, 0u);
    // Attribution: announced, nobody lists it as contributor -> flagged
    // and excluded from the recovery roster, which then completes.
    EXPECT_GE(out.withholders_flagged, 1u);
    EXPECT_GE(network.metrics().counter("icpda.cluster_recovered"), 1u);
    EXPECT_TRUE(out.accepted());
  }
}

}  // namespace
}  // namespace icpda::core
