// Codec fuzzing for the protocol message catalogue (proto/messages.h
// plus the sealed ShareBody): every decoder must treat the payload as
// hostile — arbitrary bytes, truncations and bit flips may yield
// nullopt but must never crash, throw, or hang — and every encoder must
// round-trip: decode(encode(m)) re-encodes to the identical bytes.
//
// Labelled `slow` in CTest alongside the property suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>
#include <vector>

#include "core/cpda_algebra.h"
#include "crypto/cipher.h"
#include "proto/messages.h"
#include "sim/rng.h"

// ---- Global allocation counter --------------------------------------
// The epoch-freshness gate promises to reject stale frames WITHOUT
// running any decoder — i.e. without allocating. Replacing the global
// operators with counting malloc shims makes that promise testable;
// every other test in this binary just pays one relaxed increment.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC pairs `new` expressions with these replaced operators and then
// flags the malloc/free crossover the replacement is deliberately
// built on — silence just that heuristic here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace icpda::proto {
namespace {

net::Bytes random_bytes(sim::Rng& rng, std::size_t max_len) {
  net::Bytes b(rng.below(max_len + 1));
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

/// Hostile-input property for one message type: random garbage,
/// truncations of valid encodings, and single-byte corruptions must all
/// decode without crashing. Valid encodings must round-trip to
/// identical bytes.
template <typename Msg>
void fuzz_codec(const Msg& valid, sim::Rng& rng, const char* name) {
  const net::Bytes wire = valid.to_bytes();

  // decode(encode(m)) must succeed and re-encode byte-identically.
  const auto decoded = Msg::from_bytes(wire);
  ASSERT_TRUE(decoded.has_value()) << name << ": own encoding rejected";
  ASSERT_EQ(decoded->to_bytes(), wire) << name << ": round trip not identity";

  // Every truncation of a valid encoding.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const net::Bytes cut(wire.begin(),
                         wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_NO_THROW((void)Msg::from_bytes(cut)) << name << " truncated to " << len;
  }

  // Single-byte corruptions of a valid encoding; survivors that still
  // decode must still round-trip (the codec never half-parses).
  for (int i = 0; i < 400; ++i) {
    net::Bytes mut = wire;
    if (mut.empty()) break;
    mut[rng.below(mut.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    std::optional<Msg> d;
    EXPECT_NO_THROW(d = Msg::from_bytes(mut)) << name << " corrupted byte";
    if (d) {
      EXPECT_NO_THROW((void)d->to_bytes());
    }
  }

  // Pure garbage, short and long.
  for (int i = 0; i < 1200; ++i) {
    const net::Bytes junk = random_bytes(rng, i % 3 == 0 ? 8 : 256);
    EXPECT_NO_THROW((void)Msg::from_bytes(junk)) << name << " random garbage";
  }
}

Aggregate random_aggregate(sim::Rng& rng) {
  return Aggregate{rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6),
                   rng.uniform(0.0, 1e9)};
}

TEST(MessagesFuzzTest, HelloMsg) {
  sim::Rng rng(1);
  HelloMsg m;
  m.query_id = 0xABCD1234;
  m.hop = 7;
  m.allowed_mask = random_bytes(rng, 32);
  fuzz_codec(m, rng, "HelloMsg");
}

TEST(MessagesFuzzTest, TagReportMsg) {
  sim::Rng rng(2);
  TagReportMsg m;
  m.query_id = 99;
  m.reporter = 17;
  m.aggregate = random_aggregate(rng);
  fuzz_codec(m, rng, "TagReportMsg");
}

TEST(MessagesFuzzTest, ReportMsg) {
  sim::Rng rng(3);
  ReportMsg m;
  m.query_id = 5;
  m.reporter = 3;
  for (net::NodeId id = 1; id <= 6; ++id) {
    m.items.push_back(ReportItem{id, random_aggregate(rng)});
    m.aggregate.merge(m.items.back().value);
  }
  fuzz_codec(m, rng, "ReportMsg");
  m.epoch_tag = 0xDEADBEEF;
  fuzz_codec(m, rng, "ReportMsg+tag");
}

TEST(MessagesFuzzTest, ClusterHelloMsg) {
  sim::Rng rng(4);
  ClusterHelloMsg m;
  m.query_id = 1;
  m.head = 42;
  m.hop = 3;
  fuzz_codec(m, rng, "ClusterHelloMsg");
}

TEST(MessagesFuzzTest, JoinMsg) {
  sim::Rng rng(5);
  JoinMsg m;
  m.query_id = 2;
  m.member = 8;
  m.head = 42;
  fuzz_codec(m, rng, "JoinMsg");
}

TEST(MessagesFuzzTest, ClusterRosterMsg) {
  sim::Rng rng(6);
  ClusterRosterMsg m;
  m.query_id = 3;
  m.head = 42;
  m.round = 1;
  m.members = {42, 8, 9, 11};
  m.seeds = {1, 3, 2, 4};
  fuzz_codec(m, rng, "ClusterRosterMsg");
  m.epoch_tag = 2;
  fuzz_codec(m, rng, "ClusterRosterMsg+tag");
}

TEST(MessagesFuzzTest, ShareMsg) {
  sim::Rng rng(7);
  ShareMsg m;
  m.query_id = 4;
  m.sender = 8;
  m.recipient = 9;
  m.sealed = random_bytes(rng, 64);
  fuzz_codec(m, rng, "ShareMsg");
  m.epoch_tag = 0xFFFFFFFF;
  fuzz_codec(m, rng, "ShareMsg+tag");
}

TEST(MessagesFuzzTest, FAnnounceMsg) {
  sim::Rng rng(8);
  FAnnounceMsg m;
  m.query_id = 5;
  m.member = 9;
  m.head = 42;
  m.round = 0;
  m.f = random_aggregate(rng);
  m.contributors = {8, 9, 11, 42};
  fuzz_codec(m, rng, "FAnnounceMsg");
  m.epoch_tag = 7;
  fuzz_codec(m, rng, "FAnnounceMsg+tag");
}

TEST(MessagesFuzzTest, ClusterDigestMsg) {
  sim::Rng rng(9);
  ClusterDigestMsg m;
  m.query_id = 6;
  m.head = 42;
  m.members = {42, 8, 9};
  for (int i = 0; i < 3; ++i) m.f_values.push_back(random_aggregate(rng));
  m.contributors = {8, 9, 42};
  fuzz_codec(m, rng, "ClusterDigestMsg");
  m.epoch_tag = 3;
  fuzz_codec(m, rng, "ClusterDigestMsg+tag");
}

TEST(MessagesFuzzTest, AlarmMsg) {
  sim::Rng rng(10);
  AlarmMsg m;
  m.query_id = 7;
  m.kind = AlarmMsg::kDropSuspect;
  m.witness = 9;
  m.accused = 42;
  m.expected_sum = 123.456;
  m.observed_sum = -7.5;
  fuzz_codec(m, rng, "AlarmMsg");
  m.epoch_tag = 11;
  fuzz_codec(m, rng, "AlarmMsg+tag");
}

TEST(MessagesFuzzTest, SliceMsg) {
  sim::Rng rng(11);
  SliceMsg m;
  m.query_id = 8;
  m.sender = 5;
  m.recipient = 6;
  m.sealed = random_bytes(rng, 48);
  fuzz_codec(m, rng, "SliceMsg");
}

TEST(MessagesFuzzTest, ShareBody) {
  sim::Rng rng(12);
  core::ShareBody m;
  m.query_id = 9;
  m.round = 1;
  m.share = random_aggregate(rng);
  fuzz_codec(m, rng, "ShareBody");
  m.epoch_tag = 5;  // sealed copy of the freshness tag (field rides LAST)
  fuzz_codec(m, rng, "ShareBody+tag");
}

// The batched Phase II sender serializes one ShareBody template per
// cluster round and, per peer, patches the 24-byte share triple in
// place before sealing through a reused arena (patch_share + seal_into)
// instead of serializing and seal()-ing a fresh body each time. The
// frames on the air must be byte-for-byte what the naive path produces
// — and they must survive the same hostile-input codec battery.

TEST(MessagesFuzzTest, BatchedSealPathFramesMatchPerShareSealing) {
  sim::Rng rng(13);
  for (const std::uint32_t epoch_tag : {0u, 0xDEADu}) {
    for (int round_case = 0; round_case < 40; ++round_case) {
      const std::uint32_t query_id = static_cast<std::uint32_t>(rng.below(1000));
      const std::uint8_t round = static_cast<std::uint8_t>(rng.below(2));
      const std::size_t m = 2 + rng.below(8);

      // Batched sender state: one template, one sealed arena.
      core::ShareBody tmpl;
      tmpl.query_id = query_id;
      tmpl.round = round;
      tmpl.epoch_tag = epoch_tag;
      net::Bytes body_bytes = tmpl.to_bytes();
      crypto::Bytes sealed_arena;

      for (std::size_t peer = 0; peer < m; ++peer) {
        const auto key = crypto::Key::from_seed(rng());
        const std::uint64_t nonce = rng();
        const proto::Aggregate share = random_aggregate(rng);

        core::ShareBody::patch_share(body_bytes, share);
        crypto::seal_into(key, nonce, body_bytes, sealed_arena);

        // Naive reference: fresh body, fresh serialization, seal().
        core::ShareBody fresh = tmpl;
        fresh.share = share;
        const crypto::Bytes reference =
            crypto::seal(key, nonce, fresh.to_bytes());
        ASSERT_EQ(sealed_arena, reference)
            << "peer " << peer << " round_case " << round_case;

        // The full frame around the batched seal is codec-clean.
        ShareMsg msg;
        msg.query_id = query_id;
        msg.sender = 8;
        msg.recipient = 9 + static_cast<std::uint32_t>(peer);
        msg.epoch_tag = epoch_tag;
        msg.sealed = sealed_arena;
        if (peer == 0) {
          fuzz_codec(msg, rng, "ShareMsg(batched seal)");
        } else {
          // Cheaper identity check for the rest of the roster.
          const auto decoded = ShareMsg::from_bytes(msg.to_bytes());
          ASSERT_TRUE(decoded.has_value());
          EXPECT_EQ(decoded->to_bytes(), msg.to_bytes());
          ASSERT_TRUE(crypto::open(key, decoded->sealed).has_value());
        }
      }
    }
  }
}

// A stale-epoch frame must be rejectable BEFORE any decoder runs:
// peek_epoch_tag / epoch_tag_stale walk the raw bytes and allocate
// nothing, so a replay flood cannot cost the receiver heap churn.
TEST(MessagesFuzzTest, StaleTagRejectionDoesNotAllocate) {
  sim::Rng rng(14);
  std::vector<net::Bytes> payloads;
  {
    ClusterRosterMsg roster;
    roster.members = {42, 8, 9};
    roster.seeds = {1, 2, 3};
    roster.epoch_tag = 7;
    payloads.push_back(roster.to_bytes());
    FAnnounceMsg f;
    f.f = random_aggregate(rng);
    f.contributors = {8, 9};
    f.epoch_tag = 7;
    payloads.push_back(f.to_bytes());
    ReportMsg r;
    r.items.push_back(ReportItem{1, random_aggregate(rng)});
    r.epoch_tag = 7;
    payloads.push_back(r.to_bytes());
    AlarmMsg a;
    a.epoch_tag = 7;
    payloads.push_back(a.to_bytes());
    payloads.push_back(random_bytes(rng, 64));  // junk: peek must cope
    payloads.push_back({});                     // empty payload
  }

  const std::uint64_t before = g_allocations.load();
  std::uint64_t stale = 0;
  for (int round = 0; round < 1000; ++round) {
    for (const net::Bytes& p : payloads) {
      (void)peek_epoch_tag(p);
      if (epoch_tag_stale(p, 8)) ++stale;   // every tagged frame is stale
      if (epoch_tag_stale(p, 7)) ++stale;   // untagged ones still fail 7
    }
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "freshness gate allocated on the hot rejection path";
  // 4 tagged payloads stale vs 8, plus junk/empty failing both gates.
  EXPECT_EQ(stale, 1000u * (4 + 2 * 2));
}

// QueryId wire invariant (the service mux's routing contract): for
// EVERY valid encoding of every message type, peek_query_id must agree
// with the encoded query_id — and must survive truncation, corruption
// and garbage without crashing or allocating (it runs per frame per
// node before any decoder).
TEST(MessagesFuzzTest, PeekQueryIdAgreesWithEveryCodecAndNeverAllocates) {
  sim::Rng rng(15);
  // Query ids spanning the interesting encodings: small service ids,
  // byte-boundary values, and the max (0 is the "unreadable" sentinel,
  // exercised separately below).
  const std::uint32_t ids[] = {1, 2, 0x7F, 0x80, 0xFF, 0x100, 0xABCD1234,
                               0xFFFFFFFF};
  std::vector<net::Bytes> wires;
  for (const std::uint32_t qid : ids) {
    HelloMsg h;
    h.query_id = qid;
    h.allowed_mask = random_bytes(rng, 16);
    wires.push_back(h.to_bytes());
    TagReportMsg t;
    t.query_id = qid;
    t.aggregate = random_aggregate(rng);
    wires.push_back(t.to_bytes());
    ReportMsg r;
    r.query_id = qid;
    r.items.push_back(ReportItem{1, random_aggregate(rng)});
    r.epoch_tag = 5;
    wires.push_back(r.to_bytes());
    ClusterHelloMsg ch;
    ch.query_id = qid;
    wires.push_back(ch.to_bytes());
    JoinMsg j;
    j.query_id = qid;
    wires.push_back(j.to_bytes());
    ClusterRosterMsg cr;
    cr.query_id = qid;
    cr.members = {1, 2};
    cr.seeds = {3, 4};
    wires.push_back(cr.to_bytes());
    ShareMsg s;
    s.query_id = qid;
    s.sealed = random_bytes(rng, 32);
    wires.push_back(s.to_bytes());
    FAnnounceMsg f;
    f.query_id = qid;
    f.f = random_aggregate(rng);
    wires.push_back(f.to_bytes());
    ClusterDigestMsg d;
    d.query_id = qid;
    wires.push_back(d.to_bytes());
    AlarmMsg a;
    a.query_id = qid;
    wires.push_back(a.to_bytes());
    SliceMsg sl;
    sl.query_id = qid;
    sl.sealed = random_bytes(rng, 16);
    wires.push_back(sl.to_bytes());
  }

  // Agreement with the decoded id on every valid wire (spot-check via
  // the Hello decode; all codecs share the id-first layout, which is
  // exactly what this test pins).
  std::size_t w = 0;
  for (const std::uint32_t qid : ids) {
    for (int msg = 0; msg < 11; ++msg, ++w) {
      EXPECT_EQ(peek_query_id(wires[w]), qid)
          << "wire " << w << " does not lead with its query id";
    }
  }

  // Hostile inputs: truncations below the prefix read 0 (unreadable),
  // everything else reads *something* without crashing.
  for (const net::Bytes& wire : wires) {
    for (std::size_t len = 0; len < kQueryIdBytes; ++len) {
      const net::Bytes cut(wire.begin(),
                           wire.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_EQ(peek_query_id(cut), 0u);
    }
    net::Bytes mut = wire;
    mut[rng.below(mut.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_NO_THROW((void)peek_query_id(mut));
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_NO_THROW((void)peek_query_id(random_bytes(rng, 64)));
  }

  // The peek itself is allocation-free (same promise as the epoch-tag
  // gate: routing a frame flood must not cost heap churn).
  const std::uint64_t before = g_allocations.load();
  std::uint64_t sink = 0;
  for (int round = 0; round < 1000; ++round) {
    for (const net::Bytes& wire : wires) sink += peek_query_id(wire);
  }
  EXPECT_GT(sink, 0u);
  EXPECT_EQ(g_allocations.load(), before)
      << "peek_query_id allocated on the routing hot path";
}

// Legacy/untagged frames: encodings produced with the default query id
// decode identically whether or not anyone peeks first — peeking is
// observational and id 0 round-trips like any other field value.
TEST(MessagesFuzzTest, UntaggedLegacyFramesDecodeIdentically) {
  sim::Rng rng(16);
  HelloMsg h;  // query_id left at its default of 0
  h.allowed_mask = random_bytes(rng, 8);
  const net::Bytes wire = h.to_bytes();
  EXPECT_EQ(peek_query_id(wire), 0u);  // reads as "unreadable"/reserved
  const auto decoded = HelloMsg::from_bytes(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->query_id, 0u);
  EXPECT_EQ(decoded->to_bytes(), wire);
  // Peeking does not perturb the payload or subsequent decodes.
  (void)peek_query_id(wire);
  const auto again = HelloMsg::from_bytes(wire);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->to_bytes(), wire);
}

// Cross-type confusion: a valid encoding of every type fed to every
// OTHER decoder must not crash (frame types normally route payloads,
// but a malicious sender controls the type byte independently).
TEST(MessagesFuzzTest, CrossTypeDecodingNeverCrashes) {
  sim::Rng rng(13);
  std::vector<net::Bytes> wires;
  {
    HelloMsg h;
    h.query_id = 1;
    h.allowed_mask = random_bytes(rng, 16);
    wires.push_back(h.to_bytes());
    ReportMsg r;
    r.items.push_back(ReportItem{1, random_aggregate(rng)});
    wires.push_back(r.to_bytes());
    ClusterRosterMsg cr;
    cr.members = {1, 2, 3};
    cr.seeds = {1, 2, 3};
    wires.push_back(cr.to_bytes());
    AlarmMsg a;
    wires.push_back(a.to_bytes());
    ShareMsg s;
    s.sealed = random_bytes(rng, 32);
    wires.push_back(s.to_bytes());
  }
  for (const net::Bytes& w : wires) {
    EXPECT_NO_THROW((void)HelloMsg::from_bytes(w));
    EXPECT_NO_THROW((void)TagReportMsg::from_bytes(w));
    EXPECT_NO_THROW((void)ReportMsg::from_bytes(w));
    EXPECT_NO_THROW((void)ClusterHelloMsg::from_bytes(w));
    EXPECT_NO_THROW((void)JoinMsg::from_bytes(w));
    EXPECT_NO_THROW((void)ClusterRosterMsg::from_bytes(w));
    EXPECT_NO_THROW((void)ShareMsg::from_bytes(w));
    EXPECT_NO_THROW((void)FAnnounceMsg::from_bytes(w));
    EXPECT_NO_THROW((void)ClusterDigestMsg::from_bytes(w));
    EXPECT_NO_THROW((void)AlarmMsg::from_bytes(w));
    EXPECT_NO_THROW((void)SliceMsg::from_bytes(w));
    EXPECT_NO_THROW((void)core::ShareBody::from_bytes(w));
  }
}

}  // namespace
}  // namespace icpda::proto
