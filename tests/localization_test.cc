// Group-testing polluter localization against synthetic oracles.
#include <gtest/gtest.h>

#include <cmath>

#include "core/localization.h"
#include "proto/messages.h"
#include "sim/rng.h"

namespace icpda::core {
namespace {

/// Perfect oracle: the epoch is rejected iff the polluter may aggregate.
EpochRunner perfect_oracle(net::NodeId polluter, std::uint32_t* rounds_used = nullptr) {
  return [polluter, rounds_used](const net::Bytes& mask) {
    if (rounds_used) ++*rounds_used;
    proto::HelloMsg h;
    h.allowed_mask = mask;
    return !h.allows(polluter);
  };
}

TEST(LocalizationTest, MaskHelper) {
  const auto mask = make_allowed_mask(20, {3, 7});
  proto::HelloMsg h;
  h.allowed_mask = mask;
  EXPECT_TRUE(h.allows(0));  // BS always allowed
  EXPECT_TRUE(h.allows(3));
  EXPECT_TRUE(h.allows(7));
  EXPECT_FALSE(h.allows(4));
}

TEST(LocalizationTest, IsolatesPolluterWithPerfectOracle) {
  for (const net::NodeId polluter : {1u, 57u, 199u, 255u}) {
    const auto result = localize_polluter(256, perfect_oracle(polluter));
    ASSERT_TRUE(result.isolated.has_value()) << "polluter " << polluter;
    EXPECT_EQ(*result.isolated, polluter);
  }
}

TEST(LocalizationTest, RoundsAreLogarithmic) {
  for (const std::size_t n : {64, 256, 1024}) {
    const auto result = localize_polluter(n, perfect_oracle(static_cast<net::NodeId>(n / 2)));
    ASSERT_TRUE(result.isolated.has_value());
    // log2(n-1) halvings + 6 confirmation rounds, small slack.
    EXPECT_LE(result.rounds, static_cast<std::uint32_t>(std::ceil(std::log2(n))) + 7)
        << "n=" << n;
  }
}

TEST(LocalizationTest, NoPolluterAccusesNobody) {
  const EpochRunner always_clean = [](const net::Bytes&) { return true; };
  const auto result = localize_polluter(128, always_clean);
  EXPECT_FALSE(result.isolated.has_value());
}

TEST(LocalizationTest, JammedNetworkAccusesNobody) {
  // Every round rejected (e.g. wide-band jamming, not a single
  // aggregator): the suspect set collapses and resets; no single node
  // may be framed.
  const EpochRunner always_dirty = [](const net::Bytes&) { return false; };
  const auto result = localize_polluter(64, always_dirty, 20);
  EXPECT_FALSE(result.isolated.has_value());
}

TEST(LocalizationTest, SurvivesNoisyDetection) {
  // The oracle misses an active polluter 20% of the time (false
  // accepts). Localization must still converge via the confirmation
  // step + restart, just in more rounds.
  sim::Rng rng(77);
  const net::NodeId polluter = 99;
  int isolated_count = 0;
  for (int trial = 0; trial < 10; ++trial) {
    sim::Rng trial_rng = rng.fork("trial", static_cast<std::uint64_t>(trial));
    const EpochRunner noisy = [&](const net::Bytes& mask) {
      proto::HelloMsg h;
      h.allowed_mask = mask;
      const bool active = h.allows(polluter);
      if (!active) return true;
      return trial_rng.bernoulli(0.2);  // 20% missed detection
    };
    const auto result = localize_polluter(256, noisy, 200);
    if (result.isolated && *result.isolated == polluter) ++isolated_count;
    // It must never frame an innocent node.
    if (result.isolated) {
      EXPECT_EQ(*result.isolated, polluter);
    }
  }
  EXPECT_GE(isolated_count, 7);
}

TEST(LocalizationTest, TinyNetworks) {
  EXPECT_FALSE(localize_polluter(1, perfect_oracle(0)).isolated.has_value());
  const auto two = localize_polluter(2, perfect_oracle(1));
  ASSERT_TRUE(two.isolated.has_value());
  EXPECT_EQ(*two.isolated, 1u);
}

}  // namespace
}  // namespace icpda::core
