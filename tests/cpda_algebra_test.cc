// CPDA share algebra: reconstruction exactness, privacy structure,
// exact-integer path, parameterized over cluster sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/cpda_algebra.h"
#include "sim/rng.h"

namespace icpda::core {
namespace {

using proto::Aggregate;

TEST(CpdaAlgebraTest, DefaultSeedsAreDistinctNonZero) {
  const auto seeds = default_seeds(6);
  ASSERT_EQ(seeds.size(), 6u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_NE(seeds[i], 0.0);
    for (std::size_t j = i + 1; j < seeds.size(); ++j) EXPECT_NE(seeds[i], seeds[j]);
  }
}

TEST(CpdaAlgebraTest, LagrangeWeightsSumToOne) {
  // P(x) = 1 (constant) interpolates to 1 at zero: weights sum to 1.
  for (std::size_t m = 1; m <= 10; ++m) {
    const auto w = lagrange_weights_at_zero(default_seeds(m));
    ASSERT_EQ(w.size(), m);
    EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-9) << "m=" << m;
  }
}

TEST(CpdaAlgebraTest, InvalidSeedsRejected) {
  EXPECT_TRUE(lagrange_weights_at_zero({}).empty());
  EXPECT_TRUE(lagrange_weights_at_zero({0.0, 1.0}).empty());
  EXPECT_TRUE(lagrange_weights_at_zero({1.0, 1.0}).empty());
  EXPECT_FALSE(solve_cluster_sum({1.0, 1.0}, {Aggregate{}, Aggregate{}}).has_value());
  EXPECT_FALSE(solve_cluster_sum({1.0, 2.0}, {Aggregate{}}).has_value());
}

/// Full pipeline property: m members make shares, assemble F_j, the
/// solver recovers the exact cluster sum.
class CpdaPipelineTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CpdaPipelineTest, RecoversClusterSum) {
  const std::size_t m = GetParam();
  sim::Rng rng(1000 + m);
  const auto seeds = default_seeds(m);

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Aggregate> values(m);
    Aggregate truth;
    for (auto& v : values) {
      v = Aggregate::of(rng.uniform(-100.0, 100.0));
      truth.merge(v);
    }
    // shares[i][j] = member i's share destined for member j.
    std::vector<std::vector<Aggregate>> shares(m);
    for (std::size_t i = 0; i < m; ++i) {
      shares[i] = make_shares(values[i], seeds, rng);
      ASSERT_EQ(shares[i].size(), m);
    }
    // F_j = sum_i shares[i][j].
    std::vector<Aggregate> assembled(m);
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i = 0; i < m; ++i) assembled[j].merge(shares[i][j]);
    }
    const auto solved = solve_cluster_sum(seeds, assembled);
    ASSERT_TRUE(solved.has_value());
    // The Lagrange-at-zero weights grow ~4^m but the degree-scaled
    // coefficients keep shares O(coeff_scale), so the loss is bounded
    // by ~4^m * eps * coeff_scale.
    const double tol =
        std::max(1e-9, 2e-13 * 1000.0 * std::pow(4.0, static_cast<double>(m)));
    EXPECT_NEAR(solved->count, truth.count, tol * m);
    EXPECT_NEAR(solved->sum, truth.sum, tol * std::max(1.0, std::abs(truth.sum)));
    EXPECT_NEAR(solved->sum_sq, truth.sum_sq, 10 * tol * std::max(1.0, truth.sum_sq));
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, CpdaPipelineTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16));

TEST(CpdaAlgebraTest, SharesHideTheValue) {
  // No individual share equals (or obviously reveals) the value; and
  // the same value shared twice yields different shares (fresh
  // randomness).
  sim::Rng rng(77);
  const auto seeds = default_seeds(4);
  const Aggregate v = Aggregate::of(5.0);
  const auto s1 = make_shares(v, seeds, rng);
  const auto s2 = make_shares(v, seeds, rng);
  int equal_count = 0;
  for (std::size_t j = 0; j < 4; ++j) {
    if (std::abs(s1[j].sum - 5.0) < 1e-9) ++equal_count;
    EXPECT_NE(s1[j].sum, s2[j].sum);
  }
  EXPECT_EQ(equal_count, 0);
}

TEST(CpdaAlgebraTest, SingleMemberShareIsTheValue) {
  // m = 1: the polynomial is constant, the share IS the value.
  sim::Rng rng(5);
  const Aggregate v = Aggregate::of(3.5);
  const auto s = make_shares(v, default_seeds(1), rng);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], v);
}

TEST(CpdaAlgebraTest, PollutedAssemblyChangesSolution) {
  // Tampering any F_j changes the recovered sum (no silent absorption).
  sim::Rng rng(9);
  const auto seeds = default_seeds(3);
  std::vector<Aggregate> assembled(3);
  std::vector<std::vector<Aggregate>> shares(3);
  Aggregate truth;
  for (std::size_t i = 0; i < 3; ++i) {
    const Aggregate v = Aggregate::of(static_cast<double>(i + 1));
    truth.merge(v);
    shares[i] = make_shares(v, seeds, rng);
  }
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 3; ++i) assembled[j].merge(shares[i][j]);
  }
  auto tampered = assembled;
  tampered[1].sum += 10.0;
  const auto clean = solve_cluster_sum(seeds, assembled);
  const auto dirty = solve_cluster_sum(seeds, tampered);
  ASSERT_TRUE(clean && dirty);
  EXPECT_NEAR(clean->sum, truth.sum, 1e-8);
  EXPECT_GT(std::abs(dirty->sum - truth.sum), 1.0);
}

// ---- exact integer path ---------------------------------------------

class CpdaExactTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CpdaExactTest, BitExactRecovery) {
  const std::size_t m = GetParam();
  sim::Rng rng(2000 + m);
  std::vector<std::int64_t> seeds(m);
  std::iota(seeds.begin(), seeds.end(), 1);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::int64_t> values(m);
    std::int64_t truth = 0;
    for (auto& v : values) {
      v = rng.range(-1'000'000'000, 1'000'000'000);
      truth += v;
    }
    std::vector<std::int64_t> assembled(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto s = make_shares_exact(values[i], seeds, rng);
      for (std::size_t j = 0; j < m; ++j) assembled[j] += s.shares[j];
    }
    const auto solved = solve_cluster_sum_exact(seeds, assembled);
    ASSERT_TRUE(solved.has_value());
    EXPECT_EQ(*solved, truth);  // bit-exact, no tolerance
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, CpdaExactTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(CpdaExactTest, DetectsNonIntegralCorruption) {
  // A single +1 on one assembled value makes the interpolation
  // non-integral for most seed sets -> the solver reports corruption.
  sim::Rng rng(3);
  const std::vector<std::int64_t> seeds{1, 2, 3};
  std::vector<std::int64_t> assembled(3, 0);
  for (std::int64_t v : {10, 20, 30}) {
    const auto s = make_shares_exact(v, seeds, rng);
    for (std::size_t j = 0; j < 3; ++j) assembled[j] += s.shares[j];
  }
  assembled[0] += 1;
  // Weights at zero for seeds 1,2,3 are 3,-3,1: result stays integral,
  // so corruption shows as a wrong value, not a non-integral one.
  const auto solved = solve_cluster_sum_exact(seeds, assembled);
  ASSERT_TRUE(solved.has_value());
  EXPECT_NE(*solved, 60);
  // Invalid seeds are rejected outright.
  EXPECT_FALSE(solve_cluster_sum_exact({1, 1, 2}, assembled).has_value());
  EXPECT_FALSE(solve_cluster_sum_exact({0, 1, 2}, assembled).has_value());
}

TEST(ShareBodyTest, RoundTrip) {
  ShareBody body;
  body.query_id = 11;
  body.share = {0.5, -1.5, 2.25};
  const auto back = ShareBody::from_bytes(body.to_bytes());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->query_id, 11u);
  EXPECT_EQ(back->share, body.share);
  EXPECT_FALSE(ShareBody::from_bytes(net::Bytes{1, 2}).has_value());
}

}  // namespace
}  // namespace icpda::core
