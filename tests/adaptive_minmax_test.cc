// Extensions: adaptive head election and MIN/MAX power-mean queries
// run end to end through the full protocol.
#include <gtest/gtest.h>

#include <cmath>

#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"
#include "proto/aggregate.h"

namespace icpda::core {
namespace {

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0xADA97)};
}

IcpdaOutcome run_epoch(std::size_t n, std::uint64_t seed, const IcpdaConfig& cfg,
                       const proto::ReadingProvider& readings) {
  net::NetworkConfig ncfg;
  ncfg.node_count = n;
  ncfg.seed = seed;
  net::Network network(ncfg);
  const auto keys = master_keys();
  return run_icpda_epoch(network, cfg, readings, keys);
}

TEST(AdaptivePcTest, FewerHeadsInDenseNetworks) {
  IcpdaConfig fixed;
  IcpdaConfig adaptive;
  adaptive.adaptive_pc = true;
  adaptive.adapt_k = 2.0;
  const auto fixed_out = run_epoch(600, 51, fixed, proto::constant_reading(1.0));
  const auto adapt_out = run_epoch(600, 51, adaptive, proto::constant_reading(1.0));
  // At degree ~26, adaptive elects ~2 heads per neighbourhood's worth
  // of nodes: far fewer than pc=0.3 * N. The flip side (the A4 bench's
  // negative result): the resulting clusters are larger, the O(m^2)
  // intra-cluster exchange strains the heads, and accuracy drops —
  // fixed pc ~ 1/m_target is the better knob for CPDA clustering.
  EXPECT_LT(adapt_out.heads, 0.75 * fixed_out.heads);
  ASSERT_TRUE(adapt_out.result.has_value());
  EXPECT_GT(adapt_out.result->count, 0.4 * 599);  // degraded, not broken
  EXPECT_TRUE(adapt_out.accepted());
}

TEST(AdaptivePcTest, SparseNetworksStillCluster) {
  IcpdaConfig adaptive;
  adaptive.adaptive_pc = true;
  const auto out = run_epoch(200, 52, adaptive, proto::constant_reading(1.0));
  ASSERT_TRUE(out.result.has_value());
  EXPECT_GT(out.result->count, 0.9 * 199);
  EXPECT_GT(out.heads, 10u);
}

TEST(PowerMeanQueryTest, MaxApproximationThroughProtocol) {
  // MAX via power mean: each sensor contributes reading^k; the BS
  // finishes with the k-th root (the paper's Section II-B reduction).
  const double k = 16.0;
  // Readings in [1, 2], with a known max of 2.0 at id 100.
  const auto readings = [](std::uint32_t id) {
    return id == 100 ? 2.0 : 1.0 + 0.4 * ((id * 31) % 100) / 100.0;
  };
  IcpdaConfig cfg;
  const auto out = run_epoch(400, 53, cfg, [&](std::uint32_t id) {
    return proto::power_contribution(readings(id), k);
  });
  ASSERT_TRUE(out.result.has_value());
  const double approx_max = proto::power_mean_finish(out.result->sum, k);
  // The power mean overshoots the true max by at most n^(1/k).
  EXPECT_GE(approx_max, 1.95);
  EXPECT_LE(approx_max, 2.0 * std::pow(400.0, 1.0 / k) + 0.05);
}

TEST(PowerMeanQueryTest, MinApproximationThroughProtocol) {
  // MIN via negative exponent on positive readings.
  const double k = -16.0;
  const auto readings = [](std::uint32_t id) {
    return id == 200 ? 0.5 : 1.0 + 0.5 * ((id * 13) % 100) / 100.0;
  };
  IcpdaConfig cfg;
  const auto out = run_epoch(400, 54, cfg, [&](std::uint32_t id) {
    return proto::power_contribution(readings(id), k);
  });
  ASSERT_TRUE(out.result.has_value());
  const double approx_min = proto::power_mean_finish(out.result->sum, k);
  EXPECT_LE(approx_min, 0.52);
  EXPECT_GE(approx_min, 0.5 * std::pow(400.0, 1.0 / k) - 0.05);
}

}  // namespace
}  // namespace icpda::core
