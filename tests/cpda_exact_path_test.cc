// Property harness for the exact-integer CPDA reconstruction fast path.
//
// solve_cluster_sum_exact() dispatches m in {3, 5, 8} with small seeds
// to a specialized Vandermonde solve (single-gcd Lagrange weights); the
// incremental-Fraction solve remains as solve_cluster_sum_exact_generic.
// Lowest-terms rationals are a canonical form, so the two must agree
// *bitwise* — including on every rejection (singular seeds, provably
// non-integral results). ~10k randomized cases plus targeted edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include "core/cpda_algebra.h"
#include "sim/rng.h"

namespace icpda::core {
namespace {

constexpr std::int64_t kFastSeedBound = std::int64_t{1} << 17;

/// m distinct non-zero seeds with |x| <= bound, signs mixed.
std::vector<std::int64_t> random_seeds(sim::Rng& rng, std::size_t m,
                                       std::int64_t bound) {
  std::vector<std::int64_t> seeds;
  while (seeds.size() < m) {
    std::int64_t s = rng.range(1, bound);
    if (rng() % 2 == 0) s = -s;
    if (std::find(seeds.begin(), seeds.end(), s) == seeds.end()) {
      seeds.push_back(s);
    }
  }
  return seeds;
}

// ---------------------------------------------------------------------
// The headline differential: specialized vs generic over random inputs,
// both from genuine share sets (integral results) and from arbitrary
// assembled vectors (mostly non-integral -> both must reject).

TEST(CpdaExactPathTest, FastMatchesGenericOnRandomizedInputs) {
  sim::Rng rng(0xE1AC7);
  // Two regimes, both inside the solvers' documented Int128 domain:
  // the accumulation's rational denominators compound across terms
  // (toward the lcm of the per-weight denominators), so the joint-safe
  // domain is the protocol's own — small *positive* roster seeds,
  // whose difference structure keeps denominators dense with common
  // factors — at the full value range, plus a mixed-sign band at
  // reduced values. Random mixed-sign seeds with 2^40 values (let
  // alone seeds near the 2^17 dispatch bound) wrap the m = 8
  // accumulator in either path.
  struct Regime {
    std::int64_t seed_bound;
    std::int64_t value_bound;
    bool mixed_sign;
  };
  for (const Regime regime : {Regime{1 << 4, std::int64_t{1} << 40, false},
                              Regime{1 << 4, std::int64_t{1} << 20, true}}) {
    for (const std::size_t m : {3u, 5u, 8u}) {
      for (int i = 0; i < 1250; ++i) {
        auto seeds = random_seeds(rng, m, regime.seed_bound);
        if (!regime.mixed_sign) {
          for (auto& s : seeds) s = s < 0 ? -s : s;
          std::sort(seeds.begin(), seeds.end());
          seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
          while (seeds.size() < m) {
            const std::int64_t s = rng.range(1, regime.seed_bound);
            if (std::find(seeds.begin(), seeds.end(), s) == seeds.end()) {
              seeds.push_back(s);
            }
          }
        }
        std::vector<std::int64_t> assembled(m);
        for (auto& f : assembled) {
          f = rng.range(-regime.value_bound, regime.value_bound);
        }
        const auto fast = solve_cluster_sum_exact(seeds, assembled);
        const auto generic = solve_cluster_sum_exact_generic(seeds, assembled);
        ASSERT_EQ(fast.has_value(), generic.has_value())
            << "m " << m << " case " << i;
        if (fast) {
          ASSERT_EQ(*fast, *generic) << "m " << m << " case " << i;
        }
      }
    }
  }
}

// Genuine CPDA share sets: every member cuts shares, column sums are
// assembled, and the recovered sum must be the exact value total —
// through the dispatching entry point and the generic reference alike.

TEST(CpdaExactPathTest, RoundTripRecoversExactSum) {
  // The protocol's envelope: seeds are shuffled small roster integers
  // (1..16); the rational intermediates stay far inside Int128.
  sim::Rng rng(0x0DD5);
  for (const std::size_t m : {3u, 4u, 5u, 6u, 8u}) {  // 4 and 6 take the generic path
    for (int i = 0; i < 400; ++i) {
      std::vector<std::int64_t> pool(16);
      std::iota(pool.begin(), pool.end(), 1);
      for (std::size_t j = pool.size(); j > 1; --j) {
        std::swap(pool[j - 1], pool[rng() % j]);
      }
      const std::vector<std::int64_t> seeds(pool.begin(),
                                            pool.begin() + static_cast<std::ptrdiff_t>(m));
      std::vector<std::int64_t> values(m);
      std::vector<std::int64_t> assembled(m, 0);
      std::int64_t total = 0;
      for (std::size_t member = 0; member < m; ++member) {
        values[member] = rng.range(-1'000'000, 1'000'000);
        total += values[member];
        const auto set = make_shares_exact(values[member], seeds, rng);
        for (std::size_t j = 0; j < m; ++j) assembled[j] += set.shares[j];
      }
      const auto got = solve_cluster_sum_exact(seeds, assembled);
      ASSERT_TRUE(got.has_value()) << "m " << m << " case " << i;
      EXPECT_EQ(*got, total) << "m " << m << " case " << i;
      EXPECT_EQ(solve_cluster_sum_exact_generic(seeds, assembled), got)
          << "m " << m << " case " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Rejection agreement: singular systems and provably non-integral
// results must be refused identically by both paths.

TEST(CpdaExactPathTest, SingularSeedsRejectedByBothPaths) {
  const std::vector<std::int64_t> assembled{10, 20, 30};
  for (const auto& seeds : std::vector<std::vector<std::int64_t>>{
           {1, 2, 2},    // duplicate
           {1, 0, 3},    // zero seed
           {1, 2},       // size mismatch vs assembled
           {},           // empty
       }) {
    EXPECT_EQ(solve_cluster_sum_exact(seeds, assembled), std::nullopt);
    EXPECT_EQ(solve_cluster_sum_exact_generic(seeds, assembled), std::nullopt);
  }
}

TEST(CpdaExactPathTest, NonIntegralResultRejectedByBothPaths) {
  // Seeds {1,2,4}: w_1 = (2*4)/((2-1)(4-1)) = 8/3, so F = (1,0,0)
  // interpolates to a non-integer P(0) — corrupted-input territory.
  const std::vector<std::int64_t> seeds{1, 2, 4};
  const std::vector<std::int64_t> assembled{1, 0, 0};
  EXPECT_EQ(solve_cluster_sum_exact(seeds, assembled), std::nullopt);
  EXPECT_EQ(solve_cluster_sum_exact_generic(seeds, assembled), std::nullopt);
}

// ---------------------------------------------------------------------
// Guard rails: seeds beyond the overflow-safe bound must fall back to
// the generic path (observable only as continued agreement, which is
// the contract), and the fallback handles magnitudes whose raw products
// would overflow the specialized path's 128-bit intermediates.

TEST(CpdaExactPathTest, HugeSeedsFallBackAndStayExact) {
  sim::Rng rng(0xB16);
  for (int i = 0; i < 200; ++i) {
    // Two in-envelope seeds plus one just past the 2^17 dispatch bound:
    // m = 3 would qualify for the specialized solve if not for the big
    // seed, so this pins the fallback, with magnitudes (small
    // coefficients) that keep the generic path's rationals exact.
    std::vector<std::int64_t> seeds{rng.range(1, 16), 0, 0};
    do {
      seeds[1] = rng.range(1, 16);
    } while (seeds[1] == seeds[0]);
    seeds[2] = kFastSeedBound + rng.range(1, std::int64_t{1} << 10);
    std::vector<std::int64_t> values{rng.range(-1000, 1000), rng.range(-1000, 1000),
                                     rng.range(-1000, 1000)};
    std::vector<std::int64_t> assembled(3, 0);
    std::int64_t total = 0;
    for (const std::int64_t v : values) {
      total += v;
      const auto set = make_shares_exact(v, seeds, rng, 1000);
      for (std::size_t j = 0; j < 3; ++j) assembled[j] += set.shares[j];
    }
    const auto got = solve_cluster_sum_exact(seeds, assembled);
    ASSERT_TRUE(got.has_value()) << "case " << i;
    EXPECT_EQ(*got, total) << "case " << i;
    EXPECT_EQ(solve_cluster_sum_exact_generic(seeds, assembled), got) << "case " << i;
  }
}

}  // namespace
}  // namespace icpda::core
