// Loss-only false-positive guard: with lossy radios but no attackers
// and no faults, the base station must never reject an epoch. Losses
// surface as drop suspicions (advisory) or missing claims, never as
// value-tamper alarms above Th — the acceptance threshold exists
// precisely so that loss is not mistaken for pollution.
#include <gtest/gtest.h>

#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"

namespace icpda::core {
namespace {

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x7357)};
}

TEST(LossGuardTest, LossyHonestEpochsAreAlwaysAccepted) {
  const auto keys = master_keys();
  // 20 seeded epochs, loss swept up to the 0.1 the radio model is
  // specified for. Every one must come back accepted.
  for (int t = 0; t < 20; ++t) {
    const double loss = (t % 2 == 0) ? 0.05 : 0.10;
    net::NetworkConfig ncfg;
    ncfg.node_count = 300;
    ncfg.seed = 4000 + static_cast<std::uint64_t>(t);
    ncfg.channel.loss_probability = loss;
    net::Network network(ncfg);
    IcpdaConfig cfg;
    const auto out =
        run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
    EXPECT_TRUE(out.accepted())
        << "epoch " << t << " (loss " << loss << ") falsely rejected with "
        << out.significant_alarms << " significant alarms";
    ASSERT_TRUE(out.result.has_value()) << "epoch " << t;
    // Loss degrades coverage but the epoch still aggregates a
    // substantial fraction of the field.
    EXPECT_GT(out.result->count, 150.0) << "epoch " << t;
  }
}

}  // namespace
}  // namespace icpda::core
