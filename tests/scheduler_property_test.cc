// Scheduler semantics pinned as properties, against a naive reference
// model. Written BEFORE the indexed-heap rewrite (PR 4) so the
// observable contract — (time, schedule-order) dispatch order, exact
// cancel semantics, monotone clock — is frozen independently of the
// queue's internal representation. Any future scheduler change must
// keep every test here green without edits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/scheduler.h"

namespace icpda::sim {
namespace {

/// Reference model: a flat list of (time, schedule-seq) pairs, sorted
/// stably. Dispatch order of the real scheduler must equal a stable
/// sort by time — i.e. ties broken by schedule order.
struct RefEvent {
  double at;
  std::uint64_t seq;
  bool cancelled = false;
};

std::vector<std::uint64_t> reference_order(std::vector<RefEvent> evs) {
  std::stable_sort(evs.begin(), evs.end(),
                   [](const RefEvent& a, const RefEvent& b) { return a.at < b.at; });
  std::vector<std::uint64_t> order;
  for (const RefEvent& e : evs) {
    if (!e.cancelled) order.push_back(e.seq);
  }
  return order;
}

TEST(SchedulerPropertyTest, SameTimestampBatchesFireInScheduleOrder) {
  // Many events across few distinct timestamps: every tie must resolve
  // to schedule order, for any interleaving of the timestamps.
  Rng rng(0xA11CE);
  for (int trial = 0; trial < 50; ++trial) {
    Scheduler sched;
    std::vector<std::uint64_t> fired;
    std::vector<RefEvent> ref;
    const int n = 200;
    for (std::uint64_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(rng.below(7)) * 0.5;
      ref.push_back({t, i});
      sched.at(seconds(t), [&fired, i] { fired.push_back(i); });
    }
    sched.run();
    EXPECT_EQ(fired, reference_order(ref)) << "trial " << trial;
  }
}

TEST(SchedulerPropertyTest, CancelThenFireNeverDispatches) {
  // Cancel every third event, including some in same-timestamp batches;
  // a cancelled event must never run and cancel() must report exactly
  // whether the event was still pending.
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 50; ++trial) {
    Scheduler sched;
    std::vector<std::uint64_t> fired;
    std::vector<RefEvent> ref;
    std::vector<EventId> ids;
    const int n = 150;
    for (std::uint64_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(rng.below(5)) * 0.25;
      ref.push_back({t, i});
      ids.push_back(sched.at(seconds(t), [&fired, i] { fired.push_back(i); }));
    }
    for (std::uint64_t i = 0; i < n; i += 3) {
      ref[i].cancelled = true;
      EXPECT_TRUE(sched.cancel(ids[i]));
      EXPECT_FALSE(sched.cancel(ids[i]));  // double-cancel: no-op, reported
    }
    EXPECT_EQ(sched.pending(), ref.size() - (ref.size() + 2) / 3);
    sched.run();
    EXPECT_EQ(fired, reference_order(ref)) << "trial " << trial;
    // After the run everything has fired: cancel is a universal no-op.
    for (const EventId id : ids) EXPECT_FALSE(sched.cancel(id));
  }
}

TEST(SchedulerPropertyTest, InterleavedScheduleCancelStressMatchesReference) {
  // Randomized workload mirroring what the MAC does to the scheduler:
  // schedule bursts, cancel a random live subset (ACK timers), fire,
  // schedule more from inside callbacks. The reference model only
  // understands stable-sort-by-time; the scheduler must agree exactly.
  Rng rng(0xD15EA5E);
  for (int trial = 0; trial < 25; ++trial) {
    Scheduler sched;
    std::vector<std::uint64_t> fired;
    std::vector<RefEvent> ref;
    std::vector<std::pair<std::uint64_t, EventId>> live;
    std::uint64_t next_seq = 0;

    const auto schedule_one = [&](double t) {
      const std::uint64_t seq = next_seq++;
      ref.push_back({t, seq});
      live.emplace_back(seq, sched.at(seconds(t), [&fired, seq] { fired.push_back(seq); }));
    };

    // Phase A: a burst with heavy timestamp collisions.
    for (int i = 0; i < 300; ++i) {
      schedule_one(1.0 + static_cast<double>(rng.below(20)) * 0.125);
    }
    // Phase B: cancel a random half of what is live, in random order.
    rng.shuffle(live);
    const std::size_t keep = live.size() / 2;
    while (live.size() > keep) {
      const auto [seq, id] = live.back();
      live.pop_back();
      ref[seq].cancelled = true;
      EXPECT_TRUE(sched.cancel(id));
    }
    // Phase C: more events straddling the cancelled ones' timestamps,
    // plus one event that cancels another from inside its callback.
    for (int i = 0; i < 100; ++i) {
      schedule_one(1.0 + static_cast<double>(rng.below(25)) * 0.1);
    }
    {
      const std::uint64_t victim_seq = next_seq++;
      ref.push_back({9.0, victim_seq});
      const EventId victim =
          sched.at(seconds(9.0), [&fired, victim_seq] { fired.push_back(victim_seq); });
      ref[victim_seq].cancelled = true;
      const std::uint64_t killer_seq = next_seq++;
      ref.push_back({8.0, killer_seq});
      sched.at(seconds(8.0), [&fired, killer_seq, victim, &sched] {
        fired.push_back(killer_seq);
        EXPECT_TRUE(sched.cancel(victim));
      });
    }
    sched.run();
    EXPECT_EQ(fired, reference_order(ref)) << "trial " << trial;
  }
}

TEST(SchedulerPropertyTest, CancelFromInsideSameTimestampBatch) {
  // An event cancelling a later event of the SAME timestamp must win:
  // the victim was scheduled later, so it has not fired yet.
  Scheduler sched;
  std::vector<int> fired;
  sched.at(seconds(1.0), [&] { fired.push_back(0); });
  EventId victim{};
  sched.at(seconds(1.0), [&] {
    fired.push_back(1);
    EXPECT_TRUE(sched.cancel(victim));
  });
  victim = sched.at(seconds(1.0), [&] { fired.push_back(2); });
  sched.at(seconds(1.0), [&] { fired.push_back(3); });
  sched.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 3}));
}

TEST(SchedulerPropertyTest, ReschedulingInsideCallbacksKeepsOrder) {
  // Chains scheduled from inside callbacks land after already-pending
  // events of the same timestamp (they were scheduled later).
  Scheduler sched;
  std::vector<int> fired;
  sched.at(seconds(1.0), [&] {
    fired.push_back(0);
    sched.at(seconds(2.0), [&] { fired.push_back(3); });  // ties with seq 2, later
  });
  sched.at(seconds(2.0), [&] { fired.push_back(2); });
  sched.at(seconds(1.0), [&] { fired.push_back(1); });
  sched.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulerPropertyTest, StaleIdsStayNoOpsAcrossReset) {
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(sched.at(seconds(i + 1.0), [] {}));
  sched.reset();
  EXPECT_EQ(sched.pending(), 0u);
  // Stale ids from before the reset must not cancel anything scheduled
  // after it, even though the queue's storage is being reused.
  std::vector<EventId> fresh;
  int fired = 0;
  for (int i = 0; i < 32; ++i) {
    fresh.push_back(sched.at(seconds(i + 1.0), [&fired] { ++fired; }));
  }
  for (const EventId id : ids) EXPECT_FALSE(sched.cancel(id));
  EXPECT_EQ(sched.pending(), 32u);
  sched.run();
  EXPECT_EQ(fired, 32);
}

TEST(SchedulerPropertyTest, HeavyChurnClockStaysMonotone) {
  // Long alternating schedule/cancel/run_steps churn: the clock never
  // goes backwards and executed() counts exactly the dispatched events.
  Rng rng(0xC0FFEE);
  Scheduler sched;
  std::uint64_t dispatched = 0;
  double last_now = 0.0;
  std::vector<EventId> live;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 20; ++i) {
      live.push_back(sched.after(seconds(static_cast<double>(rng.below(50)) * 1e-3),
                                 [&] { ++dispatched; }));
    }
    for (int i = 0; i < 5 && !live.empty(); ++i) {
      const std::size_t pick = rng.below(live.size());
      sched.cancel(live[pick]);  // may be stale: both outcomes legal
      live[pick] = live.back();
      live.pop_back();
    }
    sched.run_steps(10);
    EXPECT_GE(sched.now().seconds(), last_now);
    last_now = sched.now().seconds();
  }
  sched.run();
  EXPECT_EQ(sched.executed(), dispatched);
  EXPECT_EQ(sched.pending(), 0u);
}

}  // namespace
}  // namespace icpda::sim
