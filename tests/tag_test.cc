// TAG baseline: end-to-end epochs on random deployments.
#include "baselines/tag.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "proto/epoch.h"

namespace icpda {
namespace {

net::NetworkConfig paper_network(std::size_t n, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = n;
  cfg.seed = seed;
  return cfg;  // 400x400 field, 50 m range, 1 Mbps — the paper setup
}

TEST(TagTest, CountQueryDenseNetworkIsNearlyComplete) {
  net::Network network(paper_network(400, 42));
  ASSERT_TRUE(network.topology().connected());
  baselines::TagConfig cfg;
  const auto outcome =
      baselines::run_tag_epoch(network, cfg, proto::constant_reading(1.0));
  ASSERT_TRUE(outcome.result.has_value());
  // COUNT over 399 sensors (BS contributes nothing).
  EXPECT_GT(outcome.result->count, 0.93 * 399);
  EXPECT_LE(outcome.result->count, 399.0);
}

TEST(TagTest, SumMatchesCountTimesReading) {
  net::Network network(paper_network(300, 7));
  baselines::TagConfig cfg;
  const auto outcome =
      baselines::run_tag_epoch(network, cfg, proto::constant_reading(2.5));
  ASSERT_TRUE(outcome.result.has_value());
  EXPECT_NEAR(outcome.result->sum, 2.5 * outcome.result->count, 1e-9);
}

TEST(TagTest, EveryJoinedNodeHasParent) {
  net::Network network(paper_network(250, 11));
  baselines::TagConfig cfg;
  std::vector<baselines::TagApp*> apps;
  baselines::TagOutcome outcome;
  network.attach_apps([&](net::Node&) {
    auto app = std::make_unique<baselines::TagApp>(cfg, proto::constant_reading(1.0),
                                                   &outcome);
    apps.push_back(app.get());
    return app;
  });
  network.run();
  std::size_t joined = 0;
  for (std::size_t id = 1; id < network.size(); ++id) {
    if (apps[id]->joined()) {
      ++joined;
      EXPECT_NE(apps[id]->parent(), net::kNoNode);
      EXPECT_GE(apps[id]->hop(), 1);
    }
  }
  EXPECT_GT(joined, 0.9 * static_cast<double>(network.size() - 1));
}

TEST(TagTest, DeterministicForFixedSeed) {
  const auto run = [] {
    net::Network network(paper_network(200, 99));
    baselines::TagConfig cfg;
    return baselines::run_tag_epoch(network, cfg, proto::constant_reading(1.0));
  };
  const auto a = run();
  const auto b = run();
  ASSERT_TRUE(a.result && b.result);
  EXPECT_EQ(a.result->count, b.result->count);
  EXPECT_EQ(a.result->sum, b.result->sum);
}

}  // namespace
}  // namespace icpda
