// Wire round-trips for every protocol message.
#include <gtest/gtest.h>

#include "proto/messages.h"

namespace icpda::proto {
namespace {

TEST(MessagesTest, HelloRoundTrip) {
  HelloMsg m;
  m.query_id = 7;
  m.hop = 3;
  m.set_allowed(5, 64);
  m.set_allowed(17, 64);
  const auto back = HelloMsg::from_bytes(m.to_bytes());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->query_id, 7u);
  EXPECT_EQ(back->hop, 3);
  EXPECT_TRUE(back->allows(5));
  EXPECT_TRUE(back->allows(17));
  EXPECT_FALSE(back->allows(6));
}

TEST(MessagesTest, HelloEmptyMaskAllowsEveryone) {
  HelloMsg m;
  EXPECT_TRUE(m.allows(0));
  EXPECT_TRUE(m.allows(123456));
}

TEST(MessagesTest, HelloMaskOutOfRangeIsDisallowed) {
  HelloMsg m;
  m.set_allowed(1, 16);  // two-byte mask
  EXPECT_FALSE(m.allows(99));
}

TEST(MessagesTest, TagReportRoundTrip) {
  TagReportMsg m;
  m.query_id = 9;
  m.reporter = 42;
  m.aggregate = {3.0, 12.5, 60.25};
  const auto back = TagReportMsg::from_bytes(m.to_bytes());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->reporter, 42u);
  EXPECT_EQ(back->aggregate, m.aggregate);
}

TEST(MessagesTest, ReportRoundTripWithItems) {
  ReportMsg m;
  m.query_id = 1;
  m.reporter = 10;
  m.items.push_back({11, Aggregate{1.0, 2.0, 4.0}});
  m.items.push_back({12, Aggregate{2.0, -3.0, 9.0}});
  m.aggregate = {3.0, -1.0, 13.0};
  const auto back = ReportMsg::from_bytes(m.to_bytes());
  ASSERT_TRUE(back);
  ASSERT_EQ(back->items.size(), 2u);
  EXPECT_EQ(back->items[0], m.items[0]);
  EXPECT_EQ(back->items[1], m.items[1]);
  EXPECT_TRUE(back->claims(11));
  EXPECT_FALSE(back->claims(13));
}

TEST(MessagesTest, ClusterHelloJoinRosterRoundTrip) {
  ClusterHelloMsg ch;
  ch.query_id = 2;
  ch.head = 33;
  ch.hop = 4;
  auto ch2 = ClusterHelloMsg::from_bytes(ch.to_bytes());
  ASSERT_TRUE(ch2);
  EXPECT_EQ(ch2->head, 33u);

  JoinMsg j;
  j.query_id = 2;
  j.member = 44;
  j.head = 33;
  auto j2 = JoinMsg::from_bytes(j.to_bytes());
  ASSERT_TRUE(j2);
  EXPECT_EQ(j2->member, 44u);

  ClusterRosterMsg r;
  r.query_id = 2;
  r.head = 33;
  r.members = {33, 44, 55};
  r.seeds = {2, 3, 1};
  auto r2 = ClusterRosterMsg::from_bytes(r.to_bytes());
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->members, r.members);
  EXPECT_EQ(r2->seeds, r.seeds);
}

TEST(MessagesTest, ShareAndFAnnounceRoundTrip) {
  ShareMsg s;
  s.query_id = 3;
  s.sender = 1;
  s.recipient = 2;
  s.sealed = {9, 8, 7};
  auto s2 = ShareMsg::from_bytes(s.to_bytes());
  ASSERT_TRUE(s2);
  EXPECT_EQ(s2->sealed, s.sealed);

  FAnnounceMsg f;
  f.query_id = 3;
  f.member = 2;
  f.head = 1;
  f.f = {1.5, 2.5, 3.5};
  f.contributors = {1, 2, 3};
  auto f2 = FAnnounceMsg::from_bytes(f.to_bytes());
  ASSERT_TRUE(f2);
  EXPECT_EQ(f2->f, f.f);
  EXPECT_EQ(f2->contributors, f.contributors);
}

TEST(MessagesTest, ClusterDigestRoundTrip) {
  ClusterDigestMsg d;
  d.query_id = 4;
  d.head = 7;
  d.members = {7, 8, 9};
  d.f_values = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  d.contributors = {7, 8, 9};
  auto d2 = ClusterDigestMsg::from_bytes(d.to_bytes());
  ASSERT_TRUE(d2);
  EXPECT_EQ(d2->members, d.members);
  ASSERT_EQ(d2->f_values.size(), 3u);
  EXPECT_EQ(d2->f_values[1], (Aggregate{4, 5, 6}));
  EXPECT_EQ(d2->contributors, d.contributors);
}

TEST(MessagesTest, AlarmRoundTripBothKinds) {
  for (const auto kind : {AlarmMsg::kValueTamper, AlarmMsg::kDropSuspect}) {
    AlarmMsg a;
    a.query_id = 5;
    a.kind = kind;
    a.witness = 10;
    a.accused = 20;
    a.expected_sum = 99.5;
    a.observed_sum = 42.0;
    auto a2 = AlarmMsg::from_bytes(a.to_bytes());
    ASSERT_TRUE(a2);
    EXPECT_EQ(a2->kind, kind);
    EXPECT_DOUBLE_EQ(a2->expected_sum, 99.5);
  }
}

TEST(MessagesTest, SliceRoundTrip) {
  SliceMsg s;
  s.query_id = 6;
  s.sender = 3;
  s.recipient = 4;
  s.sealed = {1, 1, 2, 3, 5};
  auto s2 = SliceMsg::from_bytes(s.to_bytes());
  ASSERT_TRUE(s2);
  EXPECT_EQ(s2->sealed, s.sealed);
}

TEST(MessagesTest, MalformedBytesYieldNullopt) {
  const net::Bytes junk{1, 2};
  EXPECT_FALSE(HelloMsg::from_bytes(junk));
  EXPECT_FALSE(ReportMsg::from_bytes(junk));
  EXPECT_FALSE(TagReportMsg::from_bytes(junk));
  EXPECT_FALSE(ClusterHelloMsg::from_bytes(junk));
  EXPECT_FALSE(JoinMsg::from_bytes(junk));
  EXPECT_FALSE(ClusterRosterMsg::from_bytes(junk));
  EXPECT_FALSE(ShareMsg::from_bytes(junk));
  EXPECT_FALSE(FAnnounceMsg::from_bytes(junk));
  EXPECT_FALSE(ClusterDigestMsg::from_bytes(junk));
  EXPECT_FALSE(AlarmMsg::from_bytes(junk));
  EXPECT_FALSE(SliceMsg::from_bytes(junk));
}

TEST(AggregateTest, MonoidLaws) {
  const Aggregate a = Aggregate::of(2.0);
  const Aggregate b = Aggregate::of(-3.0);
  const Aggregate c = Aggregate::of(7.0);
  // Associativity & commutativity of merge.
  EXPECT_EQ(a.merged(b).merged(c), a.merged(b.merged(c)));
  EXPECT_EQ(a.merged(b), b.merged(a));
  // Identity.
  EXPECT_EQ(a.merged(Aggregate{}), a);
}

TEST(AggregateTest, StatisticsFinishers) {
  Aggregate agg;
  for (const double r : {1.0, 2.0, 3.0, 4.0}) agg.merge(Aggregate::of(r));
  EXPECT_DOUBLE_EQ(agg.count, 4.0);
  EXPECT_DOUBLE_EQ(agg.mean(), 2.5);
  EXPECT_DOUBLE_EQ(agg.variance(), 1.25);  // population variance
  EXPECT_DOUBLE_EQ(agg.stddev() * agg.stddev(), 1.25);
}

TEST(AggregateTest, PowerMeanApproximatesMax) {
  const std::vector<double> xs{1.0, 3.0, 7.0, 2.0};
  const double k = 24.0;
  double sum = 0.0;
  for (const double x : xs) sum += power_contribution(x, k);
  EXPECT_NEAR(power_mean_finish(sum, k), 7.0, 0.45);
}

}  // namespace
}  // namespace icpda::proto
