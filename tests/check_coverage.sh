#!/usr/bin/env sh
# Line-coverage gate for the subsystems whose correctness arguments
# lean on tests rather than types: src/core (protocol logic), src/sim
# (scheduler, RNG, tracer) and src/net (topology, channel, MAC — the
# optimized DES hot paths). Builds the `coverage` preset, runs
# the tier-1 test lane (`-LE slow` — the gate must reflect what every
# PR runs, not the slow randomized lanes), then enforces the per-prefix
# thresholds checked in at tests/coverage_baseline.txt.
#
# Ratchet policy: when coverage rises, raise the baseline in the same
# PR; never lower it to make a PR pass.
set -eu

repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
cd "$repo_root"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake --preset coverage
cmake --build --preset coverage -j "$jobs"
ctest --test-dir build-coverage --output-on-failure -j "$jobs" -LE slow
python3 tests/coverage_report.py build-coverage tests/coverage_baseline.txt
