// The campaign runner: sweep grids, JSONL schema/escaping, the thread
// pool, CLI parsing, and — the load-bearing property — byte-identical
// campaign output at every thread count.
#include "runner/campaign.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/cli.h"
#include "runner/jsonl.h"
#include "runner/progress.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "sim/rng.h"

namespace icpda::runner {
namespace {

// ---- Sweep -----------------------------------------------------------

TEST(SweepTest, RowMajorEnumerationMatchesNestedLoops) {
  Sweep s;
  s.axis("n", {200, 400, 600}).axis("rate", {0.0, 0.5});
  ASSERT_EQ(s.point_count(), 6u);
  // Same order as: for n { for rate { ... } }
  std::vector<std::pair<double, double>> got;
  for (std::size_t i = 0; i < s.point_count(); ++i) {
    const Point p = s.point(i);
    got.emplace_back(p.get("n"), p.get("rate"));
  }
  const std::vector<std::pair<double, double>> want = {
      {200, 0.0}, {200, 0.5}, {400, 0.0}, {400, 0.5}, {600, 0.0}, {600, 0.5}};
  EXPECT_EQ(got, want);
}

TEST(SweepTest, SingleAndZeroAxisGrids) {
  Sweep justone;
  justone.axis("x", {7.0});
  EXPECT_EQ(justone.point_count(), 1u);
  EXPECT_DOUBLE_EQ(justone.point(0).get("x"), 7.0);

  const Sweep empty;  // axis-less sweep = one implicit point
  EXPECT_EQ(empty.point_count(), 1u);
}

TEST(SweepTest, UnknownAxisThrows) {
  Sweep s;
  s.axis("n", {1, 2});
  EXPECT_THROW(static_cast<void>(s.point(0).get("m")), std::out_of_range);
}

TEST(SweepTest, EmptyAxisRejected) {
  Sweep s;
  EXPECT_THROW(s.axis("n", {}), std::invalid_argument);
}

TEST(SweepTest, CategoricalAxisLabels) {
  Sweep s;
  s.categorical("policy", {"clear", "drop"}).axis("n", {100, 200});
  ASSERT_EQ(s.point_count(), 4u);
  EXPECT_EQ(s.point(0).label("policy"), "clear");
  EXPECT_EQ(s.point(2).label("policy"), "drop");
  EXPECT_DOUBLE_EQ(s.point(2).get("policy"), 1.0);
  EXPECT_EQ(s.point(1).label("n"), "200");  // numeric fallback label
}

// ---- JsonRow / JsonlSink --------------------------------------------

TEST(JsonlTest, EscapesStringsProperly) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string_view("nul\x01", 4)), "nul\\u0001");
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 passes through
}

TEST(JsonlTest, RowRendersInInsertionOrderWithFormatting) {
  JsonRow row;
  row.num("n", std::uint64_t{400})
      .num("rate", 0.131, 2)
      .str("policy", "clear")
      .boolean("ok", true)
      .num("nan_is_null", std::nan(""), 3);
  EXPECT_EQ(row.to_line(),
            "{\"n\": 400, \"rate\": 0.13, \"policy\": \"clear\", \"ok\": true, "
            "\"nan_is_null\": null}");
}

TEST(JsonlTest, SinkEnforcesStableSchema) {
  std::string out;
  JsonlSink sink = JsonlSink::to_buffer(&out);
  JsonRow first;
  first.num("a", 1).num("b", 2);
  sink.write(first);

  JsonRow reordered;
  reordered.num("b", 2).num("a", 1);
  EXPECT_THROW(sink.write(reordered), std::runtime_error);

  JsonRow extra;
  extra.num("a", 1).num("b", 2).num("c", 3);
  EXPECT_THROW(sink.write(extra), std::runtime_error);

  JsonRow ok;
  ok.num("a", 9).num("b", 8);
  sink.write(ok);
  EXPECT_EQ(sink.rows_written(), 2u);
  EXPECT_EQ(out, "{\"a\": 1, \"b\": 2}\n{\"a\": 9, \"b\": 8}\n");
}

TEST(JsonlTest, CommentLinesBypassSchema) {
  std::string out;
  JsonlSink sink = JsonlSink::to_buffer(&out);
  sink.comment("title line");
  JsonRow row;
  row.num("a", 1);
  sink.write(row);
  EXPECT_EQ(out, "# title line\n{\"a\": 1}\n");
}

// ---- ThreadPool ------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("cell exploded"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool must finish the queue, not drop it
  EXPECT_EQ(ran.load(), 50);
}

// ---- CLI -------------------------------------------------------------

RunnerOptions parse_or_die(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_x");
  RunnerOptions options;
  std::string error;
  const bool ok = parse_cli(static_cast<int>(args.size()),
                            const_cast<char**>(args.data()), options, error);
  EXPECT_TRUE(ok) << error;
  return options;
}

TEST(CliTest, ParsesAllFlags) {
  const auto o = parse_or_die(
      {"--threads=8", "--trials=20", "--points=0,3-5", "--out=/tmp/x.jsonl",
       "--no-progress"});
  EXPECT_EQ(o.threads, 8u);
  EXPECT_EQ(o.trials, 20);
  EXPECT_EQ(o.points, (std::vector<std::size_t>{0, 3, 4, 5}));
  EXPECT_EQ(o.out, "/tmp/x.jsonl");
  EXPECT_FALSE(o.progress);
  EXPECT_FALSE(o.help);
}

TEST(CliTest, SpaceSeparatedValuesAndHelp) {
  const auto o = parse_or_die({"--threads", "3", "--help"});
  EXPECT_EQ(o.threads, 3u);
  EXPECT_TRUE(o.help);
}

TEST(CliTest, ThreadsZeroMeansHardwareConcurrency) {
  const auto o = parse_or_die({"--threads=0"});
  EXPECT_EQ(o.threads, ThreadPool::default_threads());
  EXPECT_GE(o.threads, 1u);
}

TEST(CliTest, RejectsMalformedInput) {
  const char* cases[][2] = {{"--threads=abc", nullptr},
                            {"--trials=0", nullptr},
                            {"--trials=-3", nullptr},
                            {"--points=5-2", nullptr},
                            {"--points=", nullptr},
                            {"--bogus", nullptr},
                            {"--out", nullptr}};  // missing value
  for (const auto& c : cases) {
    const char* argv[] = {"bench_x", c[0]};
    RunnerOptions options;
    std::string error;
    EXPECT_FALSE(parse_cli(2, const_cast<char**>(argv), options, error))
        << c[0] << " should be rejected";
    EXPECT_FALSE(error.empty());
  }
}

TEST(CliTest, PointSpecRangesAndDedup) {
  std::vector<std::size_t> points;
  ASSERT_TRUE(parse_point_spec("4,1-3,2", points));
  EXPECT_EQ(points, (std::vector<std::size_t>{1, 2, 3, 4}));
  EXPECT_FALSE(parse_point_spec("1,,2", points));
  EXPECT_FALSE(parse_point_spec("a-b", points));
}

// ---- Campaign end-to-end --------------------------------------------

/// A small campaign whose cells do seed-dependent pseudo-work, enough
/// to make scheduling races visible if the reduction were ordered by
/// completion instead of by declaration.
Campaign test_campaign() {
  Campaign c;
  c.name = "unit-test campaign";
  c.label = "test";
  c.experiment = 77;
  c.sweep.axis("x", {1, 2, 3, 4}).axis("y", {0.5, 1.5});
  c.trials = 6;
  c.cell = [](CellContext& ctx) {
    sim::Rng rng(ctx.seed);
    // Uneven work per cell to shuffle completion order across threads.
    const int spins = 1 + static_cast<int>(rng.below(2000));
    double acc = 0;
    for (int i = 0; i < spins; ++i) acc += rng.uniform();
    ctx.metrics.observe("acc", acc);
    ctx.metrics.observe("spins", spins);
    ctx.metrics.add("cells");
  };
  c.row = [](const Point& p, const PointSummary& s, JsonRow& row) {
    row.num("x", p.get("x"), 0)
        .num("y", p.get("y"), 1)
        .num("cells", s.metrics.counter("cells"))
        .num("acc_mean", s.metrics.stat("acc").mean(), 9)
        .num("spins_mean", s.metrics.stat("spins").mean(), 3)
        .num("spins_sd", s.metrics.stat("spins").stddev(), 6);
  };
  return c;
}

std::string run_to_string(const Campaign& c, RunnerOptions options) {
  options.progress = false;
  std::string out;
  JsonlSink sink = JsonlSink::to_buffer(&out);
  EXPECT_EQ(run_campaign(c, options, sink), 0);
  return out;
}

TEST(CampaignTest, OutputIsByteIdenticalAcrossThreadCounts) {
  const Campaign c = test_campaign();
  RunnerOptions sequential;
  sequential.threads = 1;
  const std::string baseline = run_to_string(c, sequential);
  EXPECT_FALSE(baseline.empty());

  for (const unsigned threads : {2u, 4u, 8u}) {
    RunnerOptions parallel;
    parallel.threads = threads;
    EXPECT_EQ(run_to_string(c, parallel), baseline) << "threads=" << threads;
  }
}

TEST(CampaignTest, PointSubsetReproducesFullGridRows) {
  const Campaign c = test_campaign();
  RunnerOptions full;
  full.threads = 2;
  const std::string all = run_to_string(c, full);

  RunnerOptions subset;
  subset.threads = 2;
  subset.points = {2, 5};
  const std::string some = run_to_string(c, subset);

  // Each subset row must appear verbatim in the full output: seeds
  // derive from the flat grid index, not the subset position.
  std::size_t pos = 0;
  int rows = 0;
  for (std::size_t nl = some.find('\n'); nl != std::string::npos;
       pos = nl + 1, nl = some.find('\n', pos)) {
    const std::string line = some.substr(pos, nl - pos);
    if (line.rfind("# ", 0) == 0) continue;
    EXPECT_NE(all.find(line), std::string::npos) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

TEST(CampaignTest, TrialsOverrideAndHeaderComments) {
  const Campaign c = test_campaign();
  RunnerOptions options;
  options.trials = 2;
  const std::string out = run_to_string(c, options);
  EXPECT_NE(out.find("# unit-test campaign\n"), std::string::npos);
  EXPECT_NE(out.find("# trials per point: 2\n"), std::string::npos);
  EXPECT_NE(out.find("\"cells\": 2"), std::string::npos);
}

TEST(CampaignTest, FailingCellReportsErrorExit) {
  Campaign c = test_campaign();
  c.cell = [](CellContext&) { throw std::runtime_error("boom"); };
  RunnerOptions options;
  options.progress = false;
  std::string out;
  JsonlSink sink = JsonlSink::to_buffer(&out);
  EXPECT_EQ(run_campaign(c, options, sink), 1);

  RunnerOptions parallel = options;
  parallel.threads = 4;
  std::string out2;
  JsonlSink sink2 = JsonlSink::to_buffer(&out2);
  EXPECT_EQ(run_campaign(c, parallel, sink2), 1);
}

TEST(CampaignTest, OutOfRangePointIndexIsRejected) {
  const Campaign c = test_campaign();
  RunnerOptions options;
  options.progress = false;
  options.points = {99};
  std::string out;
  JsonlSink sink = JsonlSink::to_buffer(&out);
  EXPECT_EQ(run_campaign(c, options, sink), 1);
}

// ---- Seeds -----------------------------------------------------------

TEST(SeedMixTest, NoCollisionsAcrossRealisticTupleGrid) {
  // Every (experiment, point, trial) tuple a bench could plausibly
  // form; the old linear form collides in this range (e.g.
  // e*1000003 + p*1009 + t: (2,0,0) vs (1,991,84)).
  std::set<std::uint64_t> seen;
  std::size_t tuples = 0;
  for (std::uint64_t e = 1; e <= 18; ++e) {
    for (std::uint64_t p = 0; p < 40; ++p) {
      for (std::uint64_t t = 0; t < 50; ++t) {
        seen.insert(sim::seed_mix(e, p, t));
        ++tuples;
      }
    }
  }
  EXPECT_EQ(seen.size(), tuples);
  // And the historical collision pair is gone:
  EXPECT_NE(sim::seed_mix(2, 0, 0), sim::seed_mix(1, 991, 84));
}

}  // namespace
}  // namespace icpda::runner
