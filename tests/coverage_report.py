#!/usr/bin/env python3
"""Aggregate gcov line coverage per subsystem and enforce a baseline.

Usage: coverage_report.py <build-dir> <baseline-file>

Finds every .gcda under <build-dir>, asks gcov for JSON intermediate
records, folds executed/executable line counts per source prefix, and
fails (exit 1) if any prefix listed in the baseline file dips below its
threshold. Uses only gcov + the standard library, so the gate runs
identically in CI and in a bare toolchain container.

Baseline file format (comments with '#'):
    <source-prefix> <min-line-coverage-percent>
e.g.
    src/core 85.0
"""
import collections
import glob
import gzip
import json
import os
import subprocess
import sys
import tempfile


def parse_baseline(path):
    thresholds = {}
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            prefix, pct = line.split()
            thresholds[prefix] = float(pct)
    return thresholds


def run_gcov(build_dir, out_dir):
    # gcov runs with cwd=out_dir (it drops its .gcov.json.gz there), so
    # every path we hand it must be absolute.
    build_dir = os.path.abspath(build_dir)
    gcda = sorted(glob.glob(os.path.join(build_dir, "**", "*.gcda"),
                            recursive=True))
    if not gcda:
        sys.exit(f"no .gcda files under {build_dir} — "
                 "build the 'coverage' preset and run ctest first")
    # One gcov invocation per object directory keeps -o unambiguous.
    by_dir = collections.defaultdict(list)
    for path in gcda:
        by_dir[os.path.dirname(path)].append(path)
    for obj_dir, files in by_dir.items():
        subprocess.run(
            ["gcov", "--json-format", "-o", obj_dir] + files,
            cwd=out_dir, check=True, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)


def fold(out_dir, repo_root):
    covered = collections.Counter()
    executable = collections.Counter()
    seen = set()  # (source, line) — headers appear in many TUs
    line_hits = collections.Counter()
    for path in glob.glob(os.path.join(out_dir, "*.gcov.json.gz")):
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            data = json.load(fh)
        for rec in data.get("files", []):
            src = rec["file"]
            if not os.path.isabs(src):
                src = os.path.normpath(
                    os.path.join(data.get("current_working_directory", ""), src))
            src = os.path.relpath(src, repo_root)
            if src.startswith(".."):
                continue  # system/third-party headers
            for ln in rec.get("lines", []):
                key = (src, ln["line_number"])
                seen.add(key)
                if ln.get("count", 0) > 0:
                    line_hits[key] += 1
    for src, _ in seen:
        executable[src] += 1
    for (src, _), _hits in line_hits.items():
        covered[src] += 1
    return covered, executable


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    build_dir, baseline_path = sys.argv[1], sys.argv[2]
    repo_root = os.getcwd()
    thresholds = parse_baseline(baseline_path)

    with tempfile.TemporaryDirectory() as out_dir:
        run_gcov(build_dir, out_dir)
        covered, executable = fold(out_dir, repo_root)

    def pct(prefix):
        cov = sum(n for src, n in covered.items() if src.startswith(prefix))
        tot = sum(n for src, n in executable.items() if src.startswith(prefix))
        return (100.0 * cov / tot if tot else 0.0), cov, tot

    failed = False
    for prefix in sorted(thresholds):
        got, cov, tot = pct(prefix)
        want = thresholds[prefix]
        status = "OK  " if got >= want else "FAIL"
        if got < want:
            failed = True
        print(f"{status} {prefix:<16} {got:6.2f}% (lines {cov}/{tot}, "
              f"baseline {want:.2f}%)")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
