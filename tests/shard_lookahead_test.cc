// Lookahead-safety sweep for the sharded conservative-PDES engine
// (net/shard_engine.h): thousands of randomized synthetic event
// programs, biased to be maximally hostile to the window planner —
// spawn delays quantized to fractions of the lookahead (ties abound),
// border children landing exactly ON window boundaries, dense border
// populations, zero-delay gate chains.
//
// Each case runs three ways and the runs are played off against each
// other:
//   * engine, parallel windows (serialize_all = false) — the unit
//     under test,
//   * engine, fully serialized gate (serialize_all = true) — the
//     strategy-independence oracle: per-shard dispatch logs must match
//     the parallel run EXACTLY, proving window placement never affects
//     what runs when. This is the same property the windowed run must
//     hold against any other window placement, checked against the
//     degenerate one.
//   * one plain Scheduler — the exactly-once oracle: the same causal
//     program fires the same multiset of (shard, label, time) events,
//     none lost at window seams, none doubled. (Exact interleaving at
//     cross-shard (fire, sched) ties legitimately differs here: a
//     single heap breaks them by global FIFO, the gate by owner id —
//     see ShardEngine's gate_before.)
// Plus, per case: the engine's lookahead-violation counter stays zero,
// and every event observes its own scheduler clock at exactly its fire
// time.
//
// The program is a pure function of (case seed, event label): an event
// derives its children — count, target shard, delay, border flag —
// from a hash of its label alone, never from execution order, so all
// three runs unfold the same causal tree and their logs are
// comparable.
//
// Contract encoded here (the MAC spawn floor, DESIGN.md §5j): an event
// executed in a parallel drain only schedules border work at least one
// lookahead ahead; events executed in the serial gate may schedule
// anything anywhere, advancing the target clock first — exactly what
// the channel does for cross-shard delivery.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/shard_engine.h"
#include "runner/thread_pool.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace icpda::net {
namespace {

constexpr sim::SimTime kLookahead{1.0 / 64};  // exactly representable

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a + 0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

struct CaseParams {
  std::uint64_t seed = 0;
  std::size_t shards = 2;
  std::uint32_t seeds_per_shard = 4;
  std::uint32_t max_depth = 5;
};

/// One execution of a case's program on a set of schedulers (size 1 =
/// the plain-scheduler oracle, which maps every synthetic shard onto
/// the same heap but keeps per-shard logs separate).
struct ProgramRun {
  std::vector<std::vector<std::string>> logs;  // indexed by synthetic shard

  // Bookkeeping is kept per synthetic shard for the same reason logs
  // are: during parallel drains each shard executes on its own worker
  // thread, so a single shared counter would be a data race. Distinct
  // vector elements are distinct memory locations, and the engine's
  // barrier orders windows, so per-shard cells are safe.
  std::uint64_t fired() const {
    std::uint64_t total = 0;
    for (const ShardTally& t : tally_) total += t.fired;
    return total;
  }
  bool clock_ok() const {
    for (const ShardTally& t : tally_) {
      if (!t.clock_ok) return false;
    }
    return true;
  }

  void install(const CaseParams& p, std::vector<sim::Scheduler*> scheds) {
    logs.assign(p.shards, {});
    tally_.assign(p.shards, {});
    scheds_ = std::move(scheds);
    params_ = p;
    for (std::size_t s = 0; s < p.shards; ++s) {
      for (std::uint32_t i = 0; i < p.seeds_per_shard; ++i) {
        const std::uint64_t label = hash_mix(p.seed, s * 1000 + i);
        // Seed times quantized to lookahead/4: cross-shard ties from
        // the very first window.
        const sim::SimTime t =
            kLookahead * 0.25 * static_cast<double>(label % 16);
        schedule(s, label, t, /*depth=*/0, /*border=*/(label >> 8) % 3 == 0);
      }
    }
  }

 private:
  sim::Scheduler& sched_of(std::size_t shard) {
    return *scheds_[scheds_.size() == 1 ? 0 : shard];
  }

  void schedule(std::size_t shard, std::uint64_t label, sim::SimTime t,
                std::uint32_t depth, bool border) {
    // Owner ids must be disjoint across synthetic shards (the gate
    // tie-break relies on an owner living in exactly one shard).
    const auto owner =
        static_cast<std::uint32_t>(shard * 4096 + (label % 4096));
    sim::Scheduler& sched = sched_of(shard);
    if (sched.now() > t) {
      // Engine seams never allow this; reachable only via a bug in the
      // program generator itself.
      ADD_FAILURE() << "program scheduled into the past";
      return;
    }
    sched.at(
        t,
        [this, shard, label, t, depth, border] {
          fire(shard, label, t, depth, border);
        },
        owner, border);
  }

  void fire(std::size_t shard, std::uint64_t label, sim::SimTime t,
            std::uint32_t depth, bool border) {
    ++tally_[shard].fired;
    if (sched_of(shard).now() != t) tally_[shard].clock_ok = false;
    logs[shard].push_back(std::to_string(shard) + ":" +
                          std::to_string(label) + "@" +
                          std::to_string(t.seconds()));
    if (depth >= params_.max_depth) return;
    const std::uint64_t h = hash_mix(params_.seed, label);
    const std::uint32_t children = h % 3;  // 0..2 keeps the tree bounded
    for (std::uint32_t c = 0; c < children; ++c) {
      const std::uint64_t ch = hash_mix(h, c + 1);
      const std::uint64_t child_label = hash_mix(ch, depth + 1);
      const bool child_border = ch % 4 == 0;
      const bool cross_shard = border && params_.shards > 1 && ch % 3 == 0;
      const std::size_t target =
          cross_shard ? (shard + 1 + ch % (params_.shards - 1)) % params_.shards
                      : shard;
      // Delays quantized to lookahead/4, including exact-lookahead and
      // exact-zero (for gate events) — the boundary-hostile cases.
      sim::SimTime delay = kLookahead * 0.25 * static_cast<double>(ch % 9);
      if (!border && child_border) {
        // Drain-executed events honour the spawn floor for border
        // children: at least one full lookahead ahead.
        delay += kLookahead;
      }
      const sim::SimTime child_t = t + delay;
      if (cross_shard) {
        // Only gate-executed (border) events reach a foreign shard;
        // advance its clock to the acting instant first, as the
        // channel does for cross-shard delivery.
        sched_of(target).advance_to(t);
      }
      schedule(target, child_label, child_t, depth + 1, child_border);
    }
  }

  struct ShardTally {
    std::uint64_t fired = 0;
    bool clock_ok = true;
  };
  std::vector<ShardTally> tally_;
  std::vector<sim::Scheduler*> scheds_;
  CaseParams params_;
};

/// Run the case's program through a fresh engine (one scheduler per
/// synthetic shard).
ProgramRun run_engine(const CaseParams& p, runner::ThreadPool& pool,
                      bool serialize_all, std::uint64_t* violations) {
  std::vector<sim::Scheduler> scheds(p.shards);
  std::vector<sim::Scheduler*> raw;
  raw.reserve(p.shards);
  for (auto& s : scheds) raw.push_back(&s);
  ShardEngine engine(raw, kLookahead, pool);
  ProgramRun run;
  run.install(p, raw);
  engine.run(sim::SimTime::infinity(), serialize_all);
  if (violations) *violations = engine.stats().lookahead_violations;
  return run;
}

std::size_t case_count() {
  if (const char* env = std::getenv("ICPDA_LOOKAHEAD_CASES")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 5000;
}

TEST(ShardLookaheadTest, RandomizedBorderAdversarialSweep) {
  runner::ThreadPool pool(8);
  const std::size_t cases = case_count();
  std::uint64_t total_fired = 0;

  for (std::size_t i = 0; i < cases; ++i) {
    CaseParams p;
    p.seed = hash_mix(0x10CA11EAD, i);
    p.shards = 2 + p.seed % 7;  // 2..8
    p.seeds_per_shard = 2 + (p.seed >> 8) % 4;
    p.max_depth = 3 + (p.seed >> 16) % 4;

    std::uint64_t violations = 0;
    const ProgramRun par = run_engine(p, pool, /*serialize_all=*/false,
                                      &violations);
    const ProgramRun ser = run_engine(p, pool, /*serialize_all=*/true, nullptr);

    sim::Scheduler single;
    ProgramRun ref;
    ref.install(p, {&single});
    single.run();

    SCOPED_TRACE("case " + std::to_string(i) + " shards=" +
                 std::to_string(p.shards));
    ASSERT_EQ(violations, 0u);
    ASSERT_TRUE(par.clock_ok());
    ASSERT_TRUE(ser.clock_ok());
    ASSERT_TRUE(ref.clock_ok());
    // Strategy independence: window placement never changes dispatch.
    ASSERT_EQ(par.fired(), ser.fired());
    for (std::size_t s = 0; s < p.shards; ++s) {
      ASSERT_EQ(par.logs[s], ser.logs[s]) << "shard " << s;
    }
    // Exactly-once vs the plain scheduler: same multiset of
    // (shard, label, time) dispatches, none lost, none doubled.
    ASSERT_EQ(par.fired(), ref.fired());
    for (std::size_t s = 0; s < p.shards; ++s) {
      auto a = par.logs[s];
      auto b = ref.logs[s];
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "shard " << s;
    }
    total_fired += par.fired();
  }
  // The sweep must be exercising real work, not vacuous empty programs.
  EXPECT_GT(total_fired, cases * 10);
}

// Micro-instant gating, hand-adversarial: border and interior events
// stacked on one IDENTICAL timestamp across both shards, zero-delay
// border chains extending the gated instant onto the other shard, and
// interior followers inside the same lookahead window. 64 variants
// permute which shard hosts the root, whether a second border event
// ties at the instant, owner-id assignment, and installation order
// (which varies every seq tie-break) — the per-shard dispatch logs
// must be identical between the windowed run and the fully serialized
// gate regardless, and the engine's gate/parallel split must account
// for every fired event.
TEST(ShardLookaheadTest, SameInstantInteriorBorderInterleavings) {
  runner::ThreadPool pool(4);
  const sim::SimTime t0 = kLookahead * 4.0;
  const sim::SimTime quarter = kLookahead * 0.25;

  for (std::uint32_t v = 0; v < 64; ++v) {
    const std::size_t root_shard = v & 1;
    const std::size_t other = 1 - root_shard;
    const bool tie_border_other = (v & 2) != 0;
    const bool owners_inverted = (v & 4) != 0;
    const std::uint32_t perm = (v >> 3) % 6;

    // mode 0: engine, parallel windows; 1: engine, serialize_all;
    // 2: plain single scheduler (exactly-once oracle).
    auto run_program = [&](int mode, std::uint64_t* accounted)
        -> std::vector<std::vector<std::string>> {
      std::vector<std::vector<std::string>> logs(2);
      std::vector<sim::Scheduler> scheds(mode == 2 ? 1 : 2);
      std::vector<sim::Scheduler*> raw;
      for (auto& s : scheds) raw.push_back(&s);
      auto sched_of = [&raw](std::size_t shard) -> sim::Scheduler& {
        return *raw[raw.size() == 1 ? 0 : shard];
      };
      auto owner = [owners_inverted](std::size_t shard, std::uint32_t i) {
        return static_cast<std::uint32_t>(shard * 4096 +
                                          (owners_inverted ? 100 - i : i));
      };

      // Group A: root border event; from the gate it extends the
      // instant with a same-instant border child on the OTHER shard,
      // which drops a same-instant interior grandchild there plus an
      // in-window interior follower back home.
      auto install_a = [&] {
        sched_of(root_shard).at(
            t0,
            [&logs, &sched_of, owner, root_shard, other, t0, quarter] {
              logs[root_shard].push_back("A");
              sched_of(other).advance_to(t0);
              sched_of(other).at(
                  t0,
                  [&logs, &sched_of, owner, other, t0] {
                    logs[other].push_back("A.b");
                    sched_of(other).at(
                        t0, [&logs, other] { logs[other].push_back("A.b.i"); },
                        owner(other, 3), false);
                  },
                  owner(other, 2), true);
              sched_of(root_shard).at(
                  t0 + quarter,
                  [&logs, root_shard] { logs[root_shard].push_back("A.f"); },
                  owner(root_shard, 4), false);
            },
            owner(root_shard, 1), true);
      };
      // Group B: interior events tying the gated instant on BOTH
      // shards (they must drain inside the gate, in canonical order),
      // optionally plus a second border event tying on the other shard.
      auto install_b = [&] {
        sched_of(root_shard).at(
            t0, [&logs, root_shard] { logs[root_shard].push_back("B0"); },
            owner(root_shard, 10), false);
        sched_of(other).at(
            t0, [&logs, other] { logs[other].push_back("B1"); },
            owner(other, 11), false);
        if (tie_border_other) {
          sched_of(other).at(
              t0, [&logs, other] { logs[other].push_back("B2"); },
              owner(other, 12), true);
        }
      };
      // Group C: interior followers strictly inside the same window.
      auto install_c = [&] {
        sched_of(root_shard).at(
            t0 + quarter,
            [&logs, root_shard] { logs[root_shard].push_back("C0"); },
            owner(root_shard, 20), false);
        sched_of(other).at(
            t0 + quarter * 3.0,
            [&logs, other] { logs[other].push_back("C1"); },
            owner(other, 21), false);
      };

      // Permute installation order: every order assigns different
      // scheduler seqs, so same-instant ties are broken differently
      // unless the gate's canonical order is genuinely seq-exact.
      const std::array<std::array<int, 3>, 6> perms{{{0, 1, 2},
                                                     {0, 2, 1},
                                                     {1, 0, 2},
                                                     {1, 2, 0},
                                                     {2, 0, 1},
                                                     {2, 1, 0}}};
      for (const int g : perms[perm]) {
        if (g == 0) install_a();
        if (g == 1) install_b();
        if (g == 2) install_c();
      }

      if (mode == 2) {
        scheds[0].run();
      } else {
        ShardEngine engine(raw, kLookahead, pool);
        engine.run(sim::SimTime::infinity(), /*serialize_all=*/mode == 1);
        EXPECT_EQ(engine.stats().lookahead_violations, 0u);
        if (accounted != nullptr) {
          *accounted =
              engine.stats().gate_events + engine.stats().parallel_events;
        }
      }
      return logs;
    };

    SCOPED_TRACE("variant " + std::to_string(v));
    std::uint64_t accounted = 0;
    const auto par = run_program(0, &accounted);
    const auto ser = run_program(1, nullptr);
    const auto ref = run_program(2, nullptr);

    // Strategy independence, exactly: per-shard logs identical between
    // windowed and fully serialized execution.
    ASSERT_EQ(par[0], ser[0]);
    ASSERT_EQ(par[1], ser[1]);
    // Exactly-once vs the single scheduler (same per-shard multisets).
    for (std::size_t s = 0; s < 2; ++s) {
      auto a = par[s];
      auto b = ref[s];
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "shard " << s;
    }
    // The engine's own accounting covers every dispatched event.
    ASSERT_EQ(accounted, par[0].size() + par[1].size());
  }
}

// Engine construction contracts: misuse fails fast, loudly.
TEST(ShardLookaheadTest, ConstructorRejectsMisuse) {
  runner::ThreadPool pool(2);
  sim::Scheduler a, b, c;
  EXPECT_THROW(ShardEngine({}, kLookahead, pool), std::invalid_argument);
  EXPECT_THROW(ShardEngine({&a}, sim::SimTime::zero(), pool),
               std::invalid_argument);
  EXPECT_THROW(ShardEngine({&a, &b, &c}, kLookahead, pool),
               std::invalid_argument);  // pool smaller than shard count
}

// An exception thrown inside an event must not deadlock the barrier:
// every worker unwinds, and run() rethrows the original error.
TEST(ShardLookaheadTest, EventExceptionPropagatesWithoutDeadlock) {
  runner::ThreadPool pool(4);
  sim::Scheduler a, b;
  a.at(sim::seconds(0.5), [] { throw std::runtime_error("boom"); }, 7);
  b.at(sim::seconds(1.0), [] {}, 9);
  ShardEngine engine({&a, &b}, kLookahead, pool);
  EXPECT_THROW(engine.run(sim::SimTime::infinity(), false), std::runtime_error);
}

}  // namespace
}  // namespace icpda::net
