// ClusterContext: roster validation, share bookkeeping, consistency,
// end-to-end in-memory cluster rounds.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "sim/rng.h"

namespace icpda::core {
namespace {

using proto::Aggregate;

ClusterContext make_cluster(net::NodeId self) {
  ClusterContext ctx;
  EXPECT_TRUE(ctx.set_roster(10, {10, 20, 30}, {1, 2, 3}, self));
  return ctx;
}

TEST(ClusterContextTest, RosterValidation) {
  ClusterContext ctx;
  EXPECT_FALSE(ctx.set_roster(1, {}, {}, 1));                    // empty
  EXPECT_FALSE(ctx.set_roster(1, {1, 2}, {1}, 1));               // size mismatch
  EXPECT_FALSE(ctx.set_roster(1, {1, 2}, {1, 1}, 1));            // dup seeds
  EXPECT_FALSE(ctx.set_roster(1, {1, 2}, {0, 1}, 1));            // zero seed
  EXPECT_FALSE(ctx.set_roster(1, {1, 2}, {1, 2}, 3));            // self missing
  EXPECT_TRUE(ctx.set_roster(1, {1, 2}, {2, 1}, 2));
  EXPECT_TRUE(ctx.has_roster());
  EXPECT_EQ(ctx.head(), 1u);
  EXPECT_EQ(ctx.size(), 2u);
  EXPECT_EQ(ctx.my_index(), 1u);
  EXPECT_DOUBLE_EQ(ctx.my_seed(), 1.0);
}

TEST(ClusterContextTest, SeedLookup) {
  const auto ctx = make_cluster(20);
  EXPECT_DOUBLE_EQ(*ctx.seed_of(10), 1.0);
  EXPECT_DOUBLE_EQ(*ctx.seed_of(30), 3.0);
  EXPECT_FALSE(ctx.seed_of(99).has_value());
  EXPECT_TRUE(ctx.in_roster(20));
  EXPECT_FALSE(ctx.in_roster(21));
  EXPECT_EQ(ctx.seed_values(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(ClusterContextTest, AssembleSumsKeptAndReceived) {
  auto ctx = make_cluster(20);
  ctx.set_kept_share(Aggregate{1, 2, 3});
  ctx.record_share(10, Aggregate{10, 20, 30});
  ctx.record_share(30, Aggregate{100, 200, 300});
  std::vector<std::uint32_t> contributors;
  const auto f = ctx.assemble(contributors);
  EXPECT_EQ(f, (Aggregate{111, 222, 333}));
  EXPECT_EQ(contributors, (std::vector<std::uint32_t>{10, 20, 30}));
}

TEST(ClusterContextTest, RepeatShareOverwrites) {
  auto ctx = make_cluster(20);
  ctx.set_kept_share(Aggregate{});
  ctx.record_share(10, Aggregate{1, 1, 1});
  ctx.record_share(10, Aggregate{2, 2, 2});  // retransmission
  std::vector<std::uint32_t> contributors;
  EXPECT_EQ(ctx.assemble(contributors), (Aggregate{2, 2, 2}));
  EXPECT_EQ(ctx.shares_received(), 1u);
}

TEST(ClusterContextTest, ConsistencyRequiresIdenticalContributorSets) {
  auto ctx = make_cluster(10);
  ctx.record_announce(10, Aggregate{}, {10, 20, 30});
  ctx.record_announce(20, Aggregate{}, {30, 20, 10});  // same set, unsorted
  ctx.record_announce(30, Aggregate{}, {10, 20, 30});
  EXPECT_TRUE(ctx.complete());
  EXPECT_TRUE(ctx.consistent());
  EXPECT_EQ(ctx.contributor_set(), (std::vector<std::uint32_t>{10, 20, 30}));
}

TEST(ClusterContextTest, InconsistentSetsDetected) {
  auto ctx = make_cluster(10);
  ctx.record_announce(10, Aggregate{}, {10, 20, 30});
  ctx.record_announce(20, Aggregate{}, {10, 20});
  ctx.record_announce(30, Aggregate{}, {10, 20, 30});
  EXPECT_TRUE(ctx.complete());
  EXPECT_FALSE(ctx.consistent());
  EXPECT_FALSE(ctx.solve().has_value());
}

TEST(ClusterContextTest, IncompleteAnnouncesBlockSolve) {
  auto ctx = make_cluster(10);
  ctx.record_announce(10, Aggregate{}, {10, 20, 30});
  EXPECT_FALSE(ctx.complete());
  EXPECT_FALSE(ctx.solve().has_value());
}

TEST(ClusterContextTest, AnnouncesFromStrangersIgnored) {
  auto ctx = make_cluster(10);
  ctx.record_announce(99, Aggregate{}, {10, 20, 30});
  EXPECT_EQ(ctx.announces_received(), 0u);
}

TEST(ClusterContextTest, FullRoundSolvesClusterSum) {
  // Simulate the whole Phase II across three in-memory contexts.
  sim::Rng rng(42);
  const std::vector<std::uint32_t> members{10, 20, 30};
  const std::vector<std::uint32_t> seeds{1, 2, 3};
  const std::vector<double> values{4.0, -7.5, 11.25};

  std::vector<ClusterContext> ctxs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ctxs[i].set_roster(10, members, seeds, members[i]));
  }
  // Share exchange.
  const auto seed_vals = ctxs[0].seed_values();
  for (std::size_t i = 0; i < 3; ++i) {
    const auto shares = make_shares(Aggregate::of(values[i]), seed_vals, rng);
    for (std::size_t j = 0; j < 3; ++j) {
      if (j == i) {
        ctxs[i].set_kept_share(shares[j]);
      } else {
        ctxs[j].record_share(members[i], shares[j]);
      }
    }
  }
  // Announcements (everyone to everyone through the head's digest in
  // the live protocol; modelled directly here).
  for (std::size_t j = 0; j < 3; ++j) {
    std::vector<std::uint32_t> contributors;
    const auto f = ctxs[j].assemble(contributors);
    for (auto& ctx : ctxs) ctx.record_announce(members[j], f, contributors);
  }
  for (const auto& ctx : ctxs) {
    ASSERT_TRUE(ctx.complete());
    ASSERT_TRUE(ctx.consistent());
    const auto v = ctx.solve();
    ASSERT_TRUE(v.has_value());
    EXPECT_NEAR(v->sum, 4.0 - 7.5 + 11.25, 1e-8);
    EXPECT_NEAR(v->count, 3.0, 1e-8);
  }
}

TEST(ClusterContextTest, ConsistentSubsetStillSolvable) {
  // Member 30 never sent shares; everyone assembled without it — the
  // interpolation then recovers the sum over {10, 20} only.
  sim::Rng rng(43);
  const std::vector<std::uint32_t> members{10, 20, 30};
  const std::vector<std::uint32_t> seeds{1, 2, 3};
  std::vector<ClusterContext> ctxs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ctxs[i].set_roster(10, members, seeds, members[i]));
  }
  const auto seed_vals = ctxs[0].seed_values();
  const std::vector<double> values{5.0, 6.0};
  for (std::size_t i = 0; i < 2; ++i) {  // only members 10, 20 share
    const auto shares = make_shares(Aggregate::of(values[i]), seed_vals, rng);
    for (std::size_t j = 0; j < 3; ++j) {
      if (j == i) {
        ctxs[i].set_kept_share(shares[j]);
      } else {
        ctxs[j].record_share(members[i], shares[j]);
      }
    }
  }
  // Member 30 still assembles (only received shares, kept none).
  for (std::size_t j = 0; j < 3; ++j) {
    std::vector<std::uint32_t> contributors;
    const auto f = ctxs[j].assemble(contributors);
    for (auto& ctx : ctxs) ctx.record_announce(members[j], f, contributors);
  }
  // Contributor sets: {10,20} for member 30 vs {10,20} + self-kept for
  // 10 and 20 — j=0 assembles kept(10) + share from 20 = {10,20}; same
  // for j=1; j=2 assembles shares from 10, 20 = {10,20}. All equal.
  for (const auto& ctx : ctxs) {
    ASSERT_TRUE(ctx.consistent());
    const auto v = ctx.solve();
    ASSERT_TRUE(v.has_value());
    EXPECT_NEAR(v->sum, 11.0, 1e-8);
    EXPECT_NEAR(v->count, 2.0, 1e-8);
  }
}

TEST(ClusterContextTest, AnnouncedFValuesInRosterOrder) {
  auto ctx = make_cluster(10);
  ctx.record_announce(20, Aggregate{2, 2, 2}, {10, 20, 30});
  ctx.record_announce(10, Aggregate{1, 1, 1}, {10, 20, 30});
  const auto fs = ctx.announced_f_values();
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0], (Aggregate{1, 1, 1}));
  EXPECT_EQ(fs[1], (Aggregate{2, 2, 2}));
  EXPECT_EQ(fs[2], Aggregate{});  // missing -> zero slot
}

}  // namespace
}  // namespace icpda::core
