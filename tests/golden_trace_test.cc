// Golden-trace regression: a pinned-seed 30-node, 2-epoch iCPDA run
// must produce a bit-identical event trace forever. The trace is a
// deterministic function of (configuration, seed) — see DESIGN.md §5e —
// so ANY drift in scheduling, protocol logic, instrumentation sites or
// digest arithmetic shows up here, with the first diverging event
// printed for diagnosis.
//
// Golden files (tests/golden/):
//   trace_digest.txt  — FNV-1a-64 of the merged stream, one hex line.
//   trace_excerpt.txt — the first kExcerptEvents events, one
//                       format_trace_event line each.
//
// To regenerate after an INTENTIONAL behaviour change:
//   ICPDA_UPDATE_GOLDEN=1 ./golden_trace_test
// then inspect the diff of tests/golden/ like any other code change.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trace_report.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"
#include "sim/trace.h"

#ifndef ICPDA_GOLDEN_DIR
#error "golden_trace_test requires -DICPDA_GOLDEN_DIR=\"<path>\""
#endif

namespace icpda::core {
namespace {

constexpr std::size_t kExcerptEvents = 80;
constexpr char kDigestFile[] = ICPDA_GOLDEN_DIR "/trace_digest.txt";
constexpr char kExcerptFile[] = ICPDA_GOLDEN_DIR "/trace_excerpt.txt";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << "cannot write " << path;
  out << text;
}

bool update_mode() { return std::getenv("ICPDA_UPDATE_GOLDEN") != nullptr; }

class GoldenTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::NetworkConfig ncfg;
    ncfg.node_count = 30;
    ncfg.field_width_m = 120.0;  // 30 nodes at 50 m range: connected
    ncfg.field_height_m = 120.0;
    ncfg.range_m = 50.0;
    ncfg.seed = 0x601D;

    network_ = new net::Network(ncfg);
    ASSERT_TRUE(network_->topology().connected())
        << "golden scenario must be a single component";

    sim::Tracer::Config tcfg;
    tcfg.node_capacity = 16384;  // full-fidelity: nothing may ring-wrap
    tcfg.global_capacity = 16384;
    network_->enable_trace(tcfg);

    const auto keys =
        crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x601D)};
    const IcpdaConfig cfg;
    run_icpda_epoch(*network_, cfg, proto::constant_reading(1.0), keys);
    run_icpda_epoch(*network_, cfg, proto::constant_reading(1.0), keys);
    ASSERT_EQ(network_->tracer().dropped(), 0u)
        << "ring wrap would truncate the golden stream";
    events_ = network_->tracer().merged();
  }

  static void TearDownTestSuite() {
    delete network_;
    network_ = nullptr;
  }

  static net::Network* network_;
  static std::vector<sim::TraceEvent> events_;
};

net::Network* GoldenTraceTest::network_ = nullptr;
std::vector<sim::TraceEvent> GoldenTraceTest::events_;

TEST_F(GoldenTraceTest, ScenarioIsNonTrivial) {
  EXPECT_GT(events_.size(), 500u);
  EXPECT_EQ(network_->tracer().epoch(), 2u);
  const auto report = analysis::fold_trace(events_);
  EXPECT_EQ(report.unmatched_ends, 0u);
  // Both epochs carried protocol traffic.
  EXPECT_GT(report.epoch_tx_bytes(0), 0u);
  EXPECT_GT(report.epoch_tx_bytes(1), 0u);
}

TEST_F(GoldenTraceTest, DigestMatchesGolden) {
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(analysis::trace_digest(events_)));
  const std::string digest = std::string(hex) + "\n";

  if (update_mode()) {
    write_file(kDigestFile, digest);
    GTEST_SKIP() << "golden digest regenerated: " << kDigestFile;
  }
  const std::string golden = read_file(kDigestFile);
  ASSERT_FALSE(golden.empty())
      << kDigestFile << " missing — regenerate with ICPDA_UPDATE_GOLDEN=1";
  EXPECT_EQ(digest, golden)
      << "trace digest drifted. If the protocol/scheduler change is\n"
      << "intentional, regenerate with ICPDA_UPDATE_GOLDEN=1 and review\n"
      << "the tests/golden/ diff. First events now produced:\n"
      << analysis::trace_excerpt(events_, 10);
}

// Differential determinism (DESIGN.md §5f): an independent, freshly
// constructed Network run with the same (config, seed) must reproduce
// the suite fixture's stream bit for bit — this is what lets the
// substrate's internals (event queue layout, fan-out strategy) be
// optimized freely: any run-to-run divergence trips here even before
// the checked-in golden files are consulted.
TEST_F(GoldenTraceTest, SeedPairedRerunIsBitIdentical) {
  net::NetworkConfig ncfg;
  ncfg.node_count = 30;
  ncfg.field_width_m = 120.0;
  ncfg.field_height_m = 120.0;
  ncfg.range_m = 50.0;
  ncfg.seed = 0x601D;
  net::Network rerun(ncfg);

  sim::Tracer::Config tcfg;
  tcfg.node_capacity = 16384;
  tcfg.global_capacity = 16384;
  rerun.enable_trace(tcfg);

  const auto keys = crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x601D)};
  const IcpdaConfig cfg;
  run_icpda_epoch(rerun, cfg, proto::constant_reading(1.0), keys);
  run_icpda_epoch(rerun, cfg, proto::constant_reading(1.0), keys);
  ASSERT_EQ(rerun.tracer().dropped(), 0u);

  const auto repeated = rerun.tracer().merged();
  ASSERT_EQ(repeated.size(), events_.size());
  EXPECT_EQ(analysis::trace_digest(repeated), analysis::trace_digest(events_))
      << "same (config, seed) produced a different stream — the run is\n"
      << "no longer a pure function of its inputs. First events:\n"
      << analysis::trace_excerpt(repeated, 10);

  // And the digest is actually sensitive: a different seed must not
  // collide (guards against a degenerate digest implementation).
  ncfg.seed = 0x601E;
  net::Network other(ncfg);
  other.enable_trace(tcfg);
  run_icpda_epoch(other, cfg, proto::constant_reading(1.0), keys);
  run_icpda_epoch(other, cfg, proto::constant_reading(1.0), keys);
  EXPECT_NE(analysis::trace_digest(other.tracer().merged()),
            analysis::trace_digest(events_));
}

TEST_F(GoldenTraceTest, ExcerptMatchesGoldenLineForLine) {
  const std::string excerpt = analysis::trace_excerpt(events_, kExcerptEvents);

  if (update_mode()) {
    write_file(kExcerptFile, excerpt);
    GTEST_SKIP() << "golden excerpt regenerated: " << kExcerptFile;
  }
  const std::string golden = read_file(kExcerptFile);
  ASSERT_FALSE(golden.empty())
      << kExcerptFile << " missing — regenerate with ICPDA_UPDATE_GOLDEN=1";
  if (excerpt == golden) return;

  // Diverged: point at the first differing event, not just "not equal".
  std::istringstream got(excerpt), want(golden);
  std::string got_line, want_line;
  std::size_t line = 0;
  while (true) {
    const bool has_got = static_cast<bool>(std::getline(got, got_line));
    const bool has_want = static_cast<bool>(std::getline(want, want_line));
    if (!has_got && !has_want) break;
    if (!has_got) got_line = "<stream ended>";
    if (!has_want) want_line = "<stream ended>";
    ASSERT_EQ(got_line, want_line) << "first diverging event at excerpt line "
                                   << line << " (0-based)";
    ++line;
  }
  FAIL() << "excerpts differ but no diverging line found (trailing bytes?)";
}

// Second pinned scenario: the SAME 30-node deployment with 10% of the
// nodes compromised (pollution attack) and the hardening switched on.
// Pins the adversary interception sites, the detection machinery and
// the epoch-tag wire format the same way the benign digest pins the
// honest path — any drift in attack scheduling or hardening logic
// lands here without disturbing tests/golden/trace_digest.txt.
TEST(GoldenAdversaryTraceTest, AdversarialDigestMatchesGolden) {
  constexpr char kAdversaryDigestFile[] =
      ICPDA_GOLDEN_DIR "/trace_digest_adversary.txt";

  net::NetworkConfig ncfg;
  ncfg.node_count = 30;
  ncfg.field_width_m = 120.0;
  ncfg.field_height_m = 120.0;
  ncfg.range_m = 50.0;
  ncfg.seed = 0x601D;
  net::Network network(ncfg);

  sim::Tracer::Config tcfg;
  tcfg.node_capacity = 16384;
  tcfg.global_capacity = 16384;
  network.enable_trace(tcfg);

  const auto keys = crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x601D)};
  AdversaryPlan plan;
  plan.attack = AttackClass::kPollution;
  plan.compromised = {3, 13, 23};  // 3 of 30 sensors: the 10% scenario
  AdversaryState st;
  for (std::uint32_t e = 1; e <= 2; ++e) {
    IcpdaConfig cfg;
    cfg.hardening.epoch_tag = e;
    cfg.hardening.digest_crosscheck = true;
    cfg.hardening.attribute_withholders = true;
    run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys, plan, st);
  }
  ASSERT_EQ(network.tracer().dropped(), 0u);
  // The scenario is genuinely adversarial, not a benign run in costume.
  EXPECT_GE(st.digests_forged, 1u);

  const auto events = network.tracer().merged();
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(analysis::trace_digest(events)));
  const std::string digest = std::string(hex) + "\n";

  if (update_mode()) {
    write_file(kAdversaryDigestFile, digest);
    GTEST_SKIP() << "adversarial golden digest regenerated: "
                 << kAdversaryDigestFile;
  }
  const std::string golden = read_file(kAdversaryDigestFile);
  ASSERT_FALSE(golden.empty()) << kAdversaryDigestFile
                               << " missing — regenerate with ICPDA_UPDATE_GOLDEN=1";
  EXPECT_EQ(digest, golden)
      << "adversarial trace digest drifted. If the adversary/hardening\n"
      << "change is intentional, regenerate with ICPDA_UPDATE_GOLDEN=1 and\n"
      << "review the tests/golden/ diff. First events now produced:\n"
      << analysis::trace_excerpt(events, 10);
}

}  // namespace
}  // namespace icpda::core
