// Channel fan-out semantics pinned BEFORE the copy-free broadcast
// rewrite (PR 4): delivery set, delivery order, delivery time, and the
// collision/half-duplex rules under dense broadcast, observed through
// a raw delivery hook (no MAC in the way). The rewrite must keep every
// test here green without edits.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/channel.h"
#include "net/network.h"

namespace icpda::net {
namespace {

/// A clique: every node within range of every other (9 nodes inside a
/// 40 m square, range 60 m), so one broadcast fans out to all.
Topology clique_topology(std::size_t n = 9) {
  std::vector<Point> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i % 3) * 20.0,
                   static_cast<double>(i / 3) * 20.0});
  }
  return Topology{std::move(pts), 60.0};
}

struct Delivery {
  NodeId receiver;
  NodeId src;
  std::uint32_t seq;
  ReceptionStatus status;
  double at;
  Bytes payload;
};

struct Rig {
  explicit Rig(Topology topo, NetworkConfig cfg = {}) : network(std::move(topo), cfg) {
    network.channel().set_delivery(
        [this](NodeId r, const Frame& f, ReceptionStatus st) {
          deliveries.push_back(
              {r, f.src, f.seq, st, network.scheduler().now().seconds(), f.payload});
        });
  }
  Network network;
  std::vector<Delivery> deliveries;
};

Frame make_frame(NodeId src, std::uint32_t seq, std::size_t payload_bytes) {
  Frame f;
  f.src = src;
  f.seq = seq;
  f.payload.assign(payload_bytes, static_cast<std::uint8_t>(seq));
  return f;
}

TEST(ChannelFanoutTest, DenseBroadcastReachesEveryNeighborOnceInIdOrder) {
  Rig rig(clique_topology());
  auto& sched = rig.network.scheduler();
  sched.after(sim::seconds(0.001), [&] {
    rig.network.channel().transmit(4, make_frame(4, 1, 64), nullptr);
  });
  sched.run();

  // Exactly the 8 neighbours of node 4, each exactly once, ascending id
  // (the fan-out iterates the sorted adjacency; same-time deliveries
  // keep schedule order).
  ASSERT_EQ(rig.deliveries.size(), 8u);
  std::vector<NodeId> got;
  for (const auto& d : rig.deliveries) {
    got.push_back(d.receiver);
    EXPECT_EQ(d.status, ReceptionStatus::kOk);
    EXPECT_EQ(d.src, 4u);
    EXPECT_EQ(d.payload, Bytes(64, 1));
  }
  EXPECT_EQ(got, (std::vector<NodeId>{0, 1, 2, 3, 5, 6, 7, 8}));

  // All deliveries land at exactly end-of-frame + propagation delay.
  const double airtime =
      rig.network.channel().airtime_bytes(64 + kFrameOverheadBytes).seconds();
  const double expect_at =
      0.001 + airtime + rig.network.channel().config().propagation_delay_s;
  for (const auto& d : rig.deliveries) EXPECT_DOUBLE_EQ(d.at, expect_at);
}

TEST(ChannelFanoutTest, SimultaneousTransmitsDeliverInTransmitCallOrder) {
  // Two same-size frames put on the air in the same instant: all
  // receivers see both (corrupted), grouped by transmission in
  // transmit() call order — the schedule-order tie-break, pinned.
  Rig rig(clique_topology());
  auto& sched = rig.network.scheduler();
  sched.after(sim::seconds(0.001), [&] {
    rig.network.channel().transmit(0, make_frame(0, 1, 32), nullptr);
    rig.network.channel().transmit(8, make_frame(8, 2, 32), nullptr);
  });
  sched.run();

  ASSERT_EQ(rig.deliveries.size(), 16u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rig.deliveries[i].src, 0u) << i;
  }
  for (std::size_t i = 8; i < 16; ++i) {
    EXPECT_EQ(rig.deliveries[i].src, 8u) << i;
  }
  for (const auto& d : rig.deliveries) {
    if (d.receiver == 0) {
      // Node 0 was already transmitting when node 8's frame was
      // registered at it: half-duplex-deaf.
      EXPECT_EQ(d.status, ReceptionStatus::kHalfDuplex);
    } else if (d.receiver == 8) {
      // Asymmetric quirk, pinned deliberately: node 0's frame was
      // registered at node 8 BEFORE node 8's transmit() call in the
      // same instant, and node 8's own transmission ends before the
      // delivery fires — so neither half-duplex check trips.
      EXPECT_EQ(d.status, ReceptionStatus::kOk);
    } else {
      EXPECT_EQ(d.status, ReceptionStatus::kCollided);
    }
  }
}

TEST(ChannelFanoutTest, LaterTransmissionCorruptsFrameStillOnAir) {
  // Status is resolved at delivery time: a second transmission starting
  // mid-flight corrupts the first frame at every common receiver.
  Rig rig(clique_topology());
  auto& sched = rig.network.scheduler();
  sched.after(sim::seconds(0.001), [&] {
    rig.network.channel().transmit(0, make_frame(0, 1, 1000), nullptr);  // ~8 ms
  });
  sched.after(sim::seconds(0.002), [&] {
    rig.network.channel().transmit(1, make_frame(1, 2, 10), nullptr);  // inside
  });
  sched.run();

  for (const auto& d : rig.deliveries) {
    if (d.receiver == 0 || d.receiver == 1) continue;  // the two senders
    EXPECT_EQ(d.status, ReceptionStatus::kCollided)
        << "receiver " << d.receiver << " seq " << d.seq;
  }
}

TEST(ChannelFanoutTest, ReceiverTransmittingIsHalfDuplexDeaf) {
  Rig rig(clique_topology());
  auto& sched = rig.network.scheduler();
  sched.after(sim::seconds(0.001), [&] {
    rig.network.channel().transmit(0, make_frame(0, 1, 1000), nullptr);  // ~8 ms
  });
  // Node 0 still transmitting when node 1's short frame arrives at it.
  sched.after(sim::seconds(0.003), [&] {
    rig.network.channel().transmit(1, make_frame(1, 2, 10), nullptr);
  });
  sched.run();
  bool saw_node0 = false;
  for (const auto& d : rig.deliveries) {
    if (d.receiver == 0 && d.seq == 2) {
      saw_node0 = true;
      EXPECT_EQ(d.status, ReceptionStatus::kHalfDuplex);
    }
  }
  EXPECT_TRUE(saw_node0);
}

TEST(ChannelFanoutTest, BackToBackBroadcastStormKeepsSlotsConsistent) {
  // Many spaced transmissions from rotating senders: every one must
  // deliver kOk to every neighbour (no stale corruption state, no
  // leaked in-flight entries making the medium look busy forever).
  Rig rig(clique_topology());
  auto& sched = rig.network.scheduler();
  const int rounds = 50;
  for (int i = 0; i < rounds; ++i) {
    sched.at(sim::seconds(0.01 * (i + 1)), [&rig, i] {
      rig.network.channel().transmit(static_cast<NodeId>(i % 9),
                                     make_frame(static_cast<NodeId>(i % 9),
                                                static_cast<std::uint32_t>(i), 64),
                                     nullptr);
    });
  }
  sched.run();
  ASSERT_EQ(rig.deliveries.size(), static_cast<std::size_t>(rounds) * 8u);
  for (const auto& d : rig.deliveries) {
    EXPECT_EQ(d.status, ReceptionStatus::kOk);
  }
  EXPECT_FALSE(rig.network.channel().busy_at(0));
  EXPECT_EQ(rig.network.metrics().counter("channel.rx_ok"),
            static_cast<std::uint64_t>(rounds) * 8u);
}

TEST(ChannelFanoutTest, TapSeesSenderAndExactBytes) {
  Rig rig(clique_topology());
  std::vector<std::pair<NodeId, Bytes>> tapped;
  rig.network.channel().add_tap(
      [&](NodeId sender, const Frame& f) { tapped.emplace_back(sender, f.payload); });
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    rig.network.channel().transmit(2, make_frame(2, 7, 16), nullptr);
  });
  rig.network.scheduler().run();
  ASSERT_EQ(tapped.size(), 1u);
  EXPECT_EQ(tapped[0].first, 2u);
  EXPECT_EQ(tapped[0].second, Bytes(16, 7));
}

}  // namespace
}  // namespace icpda::net
