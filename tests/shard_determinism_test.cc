// Differential determinism for the sharded conservative-PDES engine
// (DESIGN.md §5j): a run at --shards=S must be observationally
// IDENTICAL to the single-shard reference — same protocol outcome,
// field for field, and the same per-node event history — for every
// scenario class the repository models: benign, crash-faulted, and
// actively adversarial with the hardening on.
//
// What "identical" means here and why:
//   * IcpdaOutcome — byte-for-byte (doubles by bit pattern). This is
//     what campaign rows are built from, so equality here is what
//     makes `icpda_bench --shards=8` reproduce `--shards=1` output.
//   * canonical_trace_digest — per-node event subsequences with seq
//     excluded. The global seq interleaving of same-instant events on
//     DIFFERENT nodes is an engine artifact (single-heap FIFO vs
//     per-shard rings); each node's own history is not, and any
//     protocol-visible divergence (a frame lost here but not there, a
//     backoff drawn differently) shows up in it.
// The classic golden digest (tests/golden/) continues to pin the
// shards=1 stream bit-for-bit, seq included.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trace_report.h"
#include "core/faults.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"
#include "proto/epoch.h"
#include "sim/trace.h"

namespace icpda::core {
namespace {

enum class Scenario { kBenign, kFaulted, kAdversary };

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kBenign:
      return "benign";
    case Scenario::kFaulted:
      return "faulted";
    case Scenario::kAdversary:
      return "adversary";
  }
  return "?";
}

/// Every IcpdaOutcome field, doubles by bit pattern, as one string —
/// a new field that is forgotten here still fails the sizeof tripwire
/// in OutcomeFingerprintCoversTheStruct below.
std::string outcome_fingerprint(const IcpdaOutcome& o) {
  std::ostringstream ss;
  const auto bits = [](double v) {
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
  };
  ss << "result=";
  if (o.result) {
    ss << bits(o.result->sum) << ',' << bits(o.result->count) << ','
       << bits(o.result->sum_sq);
  } else {
    ss << "none";
  }
  ss << " closed=" << bits(o.closed_at.seconds())
     << " last_report=" << bits(o.last_report_at.seconds())
     << " alarms=" << o.alarms.size() << " sig=" << o.significant_alarms
     << " drop_susp=" << o.drop_suspicions << " heads=" << o.heads
     << " members=" << o.members << " unclustered=" << o.unclustered
     << " reporters=" << o.reporters << " degraded=" << o.degraded_privacy
     << " cfailed=" << o.clusters_failed << " pollution=" << o.pollution_events
     << " crashed=" << o.nodes_crashed << " reroutes=" << o.reroutes
     << " lost=" << o.values_lost << " coverage=" << bits(o.coverage)
     << " compromised=" << o.compromised_nodes
     << " replay_rej=" << o.replay_rejections
     << " withheld=" << o.withholders_flagged
     << " crosscheck=" << o.crosscheck_alarms
     << " refused=" << o.rosters_refused << " sizes=";
  for (const auto& [size, count] : o.cluster_sizes) {
    ss << size << ':' << count << ';';
  }
  for (const auto& a : o.alarms) {
    ss << " alarm=" << a.query_id << '/' << unsigned{a.kind} << '/' << a.witness
       << '/' << a.accused << '/' << bits(a.expected_sum) << '/'
       << bits(a.observed_sum) << '/' << a.epoch_tag;
  }
  return ss.str();
}

struct RunResult {
  std::string rows;             // outcome fingerprints, one per epoch
  std::uint64_t digest = 0;     // canonical (engine-independent) digest
  std::uint64_t events = 0;     // merged stream length
  std::uint64_t violations = 0; // engine lookahead violations (0 for S=1)
  std::uint64_t executed = 0;   // scheduler events, summed over shards
  std::uint64_t gate_accounted = 0;  // engine gate + parallel events
  std::uint64_t undecided = 0;  // lineage compares that hit the depth cap
};

RunResult run_scenario(std::uint32_t nodes, double field_m, std::size_t shards,
                       Scenario scenario) {
  net::NetworkConfig ncfg;
  ncfg.node_count = nodes;
  ncfg.field_width_m = field_m;
  ncfg.field_height_m = field_m;
  ncfg.range_m = 50.0;
  ncfg.seed = 0x601D;
  ncfg.shards = shards;
  net::Network net(ncfg);
  EXPECT_TRUE(net.topology().connected())
      << "pick a field size that keeps the deployment connected";
  sim::reset_lineage_cmp_stats();

  sim::Tracer::Config tcfg;
  tcfg.node_capacity = 4096;
  tcfg.global_capacity = 4096;
  net.enable_trace(tcfg);

  const auto keys = crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x601D)};
  FaultPlan faults;
  if (scenario == Scenario::kFaulted) {
    // Deterministic permanent crashes spread over the epoch phases.
    faults.crash_at_s[3] = 0.4;                // during the query flood
    faults.crash_at_s[nodes / 2] = 2.5;        // during clustering
    faults.crash_at_s[nodes - 2] = 11.0;       // during the report phase
  }
  AdversaryPlan plan;
  AdversaryState st;
  if (scenario == Scenario::kAdversary) {
    plan.attack = AttackClass::kPollution;
    plan.compromised = {3, nodes / 2, nodes - 2};
  }

  RunResult out;
  for (std::uint32_t e = 1; e <= 2; ++e) {
    IcpdaConfig cfg;
    IcpdaOutcome outcome;
    if (scenario == Scenario::kAdversary) {
      cfg.hardening.epoch_tag = e;
      cfg.hardening.digest_crosscheck = true;
      cfg.hardening.attribute_withholders = true;
      outcome = run_icpda_epoch(net, cfg, proto::constant_reading(1.0), keys,
                                plan, st);
    } else {
      outcome = run_icpda_epoch(net, cfg, proto::constant_reading(1.0), keys,
                                {}, faults);
      faults = {};  // permanent crashes only schedule once
    }
    out.rows += outcome_fingerprint(outcome);
    out.rows += '\n';
    // Engine stats reset at every run(): fold in this epoch's share.
    if (const net::ShardEngine* eng = net.shard_engine()) {
      out.gate_accounted +=
          eng->stats().gate_events + eng->stats().parallel_events;
      out.violations += eng->stats().lookahead_violations;
    }
  }
  EXPECT_EQ(net.tracer().dropped(), 0u) << "ring wrap truncates the stream";
  const auto events = net.tracer().merged();
  out.digest = analysis::canonical_trace_digest(events);
  out.events = events.size();
  out.executed = net.executed_events();
  out.undecided = sim::lineage_cmp_stats().undecided;
  if (net.shard_engine() != nullptr) {
    EXPECT_EQ(net.shard_count(), shards);
  } else {
    out.gate_accounted = out.executed;
  }
  return out;
}

class ShardDeterminismTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Scenario>> {};

TEST_P(ShardDeterminismTest, AllShardCountsMatchTheReference) {
  const auto [nodes, scenario] = GetParam();
  // Roughly constant density: 30 nodes on a 120 m square, scaled.
  const double field_m = nodes <= 30 ? 120.0 : 310.0;

  const RunResult ref = run_scenario(nodes, field_m, 1, scenario);
  ASSERT_FALSE(ref.rows.empty());
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(std::string(scenario_name(scenario)) + " N=" +
                 std::to_string(nodes) + " shards=" + std::to_string(shards));
    const RunResult got = run_scenario(nodes, field_m, shards, scenario);
    EXPECT_EQ(got.rows, ref.rows);
    EXPECT_EQ(got.events, ref.events);
    EXPECT_EQ(got.digest, ref.digest);
    EXPECT_EQ(got.violations, 0u);
    // Dispatch-count reconciliation, EXACTLY: the PR-9 engine inflated
    // sharded event counts ~8% at large N (comparator divergence
    // snowballing through carrier sense); the exact-lineage gate order
    // removes the divergence entirely, so sharded runs execute the
    // same number of events as the reference — and the engine's own
    // gate/parallel split must account for every one of them.
    EXPECT_EQ(got.executed, ref.executed);
    EXPECT_EQ(got.gate_accounted, got.executed);
    // Every gate tie must be decided by lineage, never by the
    // owner-id fallback (which would be engine-dependent): the depth
    // cap is far above any observed chain, so no compare comes back
    // undecided.
    EXPECT_EQ(got.undecided, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ShardDeterminismTest,
    ::testing::Combine(::testing::Values(30u, 200u),
                       ::testing::Values(Scenario::kBenign, Scenario::kFaulted,
                                         Scenario::kAdversary)),
    [](const auto& info) {
      return std::string("N") + std::to_string(std::get<0>(info.param)) + "_" +
             scenario_name(std::get<1>(info.param));
    });

// The outcome fingerprint above must cover the whole struct: if a
// field is added to IcpdaOutcome without extending the fingerprint,
// this static size check goes stale and fails the build review here.
TEST(ShardDeterminismTest, OutcomeFingerprintCoversTheStruct) {
  // Update outcome_fingerprint() FIRST, then this expected size.
  struct Expected {
    std::optional<proto::Aggregate> result;
    sim::SimTime closed_at, last_report_at;
    std::vector<proto::AlarmMsg> alarms;
    std::uint32_t u32[15];
    std::map<std::uint32_t, std::uint32_t> cluster_sizes;
    double coverage;
    std::uint32_t tail[2];
  };
  EXPECT_LE(sizeof(IcpdaOutcome), sizeof(Expected) + 16)
      << "IcpdaOutcome grew: extend outcome_fingerprint() to cover the "
         "new field, then relax this bound";
}

}  // namespace
}  // namespace icpda::core
