// Fault-injection behaviour: node crashes and transient outages under
// FaultPlan, and the protocol's graceful-degradation machinery —
// silent-head fallback, Phase II recovery re-share, member digest
// deadline, Phase III parent reroute and head backup reporting.
//
// The overarching invariant (the paper's integrity argument demands
// it): benign churn must never convert into value-tamper rejections.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/faults.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"

namespace icpda::core {
namespace {

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0x7357)};
}

net::NetworkConfig paper_network(std::size_t n, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = n;
  cfg.seed = seed;
  return cfg;
}

/// Rig with a fault plan scheduled before the epoch runs.
struct FaultRig {
  FaultRig(net::Network& network, const IcpdaConfig& cfg,
           const proto::ReadingProvider& readings, const crypto::KeyScheme& keys,
           const FaultPlan& faults, const AttackPlan& attack = {})
      : attack_plan(attack) {
    network.attach_apps([&, this](net::Node&) {
      auto app = std::make_unique<IcpdaApp>(cfg, readings, &keys, &attack_plan,
                                            &outcome);
      apps.push_back(app.get());
      return app;
    });
    outcome.nodes_crashed =
        schedule_fault_plan(network, faults, network.rng().fork("faults"));
    network.run(sim::seconds(cfg.timing.start_delay_s + cfg.phase2_budget_s) +
                cfg.timing.close_delay() + sim::seconds(3.0));
  }
  AttackPlan attack_plan;
  IcpdaOutcome outcome;
  std::vector<IcpdaApp*> apps;
};

/// Pin node 1 as the only self-elected head: pc = 0 keeps everyone
/// else from electing, force_head makes node 1 elect unconditionally.
/// The delta is negligible (force_head only applies to an active
/// plan), far below Th and every assertion tolerance used here.
AttackPlan pin_head(net::NodeId head) {
  AttackPlan attack;
  attack.polluters.insert(head);
  attack.delta = 1e-4;
  attack.force_head = true;
  return attack;
}

// ---------------------------------------------------------------------
// Satellite: a member whose head goes permanently silent must re-enter
// the role decision (and end up a lone head), not give up unclustered.

TEST(FaultInjectionTest, SilentHeadMemberFallsBackToLoneHead) {
  // BS(0,0) -- head 1 at (40,0) -- node 2 at (30,30); every pair in
  // range. Node 1 is the only head and crashes right after node 2's
  // join, before any roster can go out.
  net::Network network(net::Topology{{{0, 0}, {40, 0}, {30, 30}}, 50.0},
                       paper_network(3, 31));
  IcpdaConfig cfg;
  cfg.pc = 0.0;
  cfg.roster_delay_s = 1.0;  // roster cannot beat the crash below
  const auto keys = master_keys();
  FaultPlan faults;
  faults.crash_at_s[1] = 0.45;
  FaultRig rig(network, cfg, proto::constant_reading(1.0), keys, faults,
               pin_head(1));

  // Node 2 re-entered decide_role after its head went silent and, with
  // no other head audible, became a lone head itself.
  EXPECT_GE(network.metrics().counter("icpda.head_failover"), 1u);
  EXPECT_EQ(rig.apps[2]->role(), ClusterRole::kHead);
  EXPECT_EQ(rig.outcome.unclustered, 0u);

  // Its reading still reaches the base station (clear lone-head
  // report), and nothing about the crash looks like tampering.
  ASSERT_TRUE(rig.outcome.result.has_value());
  EXPECT_NEAR(rig.outcome.result->count, 1.0, 1e-9);
  EXPECT_TRUE(rig.outcome.accepted());
  EXPECT_EQ(rig.outcome.nodes_crashed, 1u);
}

// ---------------------------------------------------------------------
// A head dying after the roster but before the digest: members hit the
// digest deadline and write the cluster off instead of hanging.

TEST(FaultInjectionTest, DeadHeadAfterRosterUnclustersItsMembers) {
  // Star around head 1 at (30,0): members 2..4 all within range of the
  // head; node 3 is out of the base station's range on purpose.
  net::Network network(
      net::Topology{{{0, 0}, {30, 0}, {30, 30}, {60, 0}, {30, -30}}, 50.0},
      paper_network(5, 32));
  IcpdaConfig cfg;
  cfg.pc = 0.0;
  const auto keys = master_keys();
  FaultPlan faults;
  faults.crash_at_s[1] = 1.1;  // after the roster, before any digest
  FaultRig rig(network, cfg, proto::constant_reading(1.0), keys, faults,
               pin_head(1));

  EXPECT_GE(network.metrics().counter("icpda.digest_missed"), 1u);
  for (net::NodeId id = 2; id <= 4; ++id) {
    EXPECT_EQ(rig.apps[id]->role(), ClusterRole::kUnclustered)
        << "node " << id;
  }
  // Data is lost (the whole cluster died with its head) but the epoch
  // is not rejected: a crash is not a tamper.
  EXPECT_TRUE(rig.outcome.accepted());
  EXPECT_EQ(rig.outcome.significant_alarms, 0u);
}

// ---------------------------------------------------------------------
// A member dying mid-Phase-II: the head re-fixes the roster to the
// survivors and reruns the exchange at reduced degree.

TEST(FaultInjectionTest, MemberCrashTriggersPhase2RecoveryRound) {
  net::Network network(
      net::Topology{{{0, 0}, {30, 0}, {30, 30}, {60, 0}, {30, -30}}, 50.0},
      paper_network(5, 33));
  IcpdaConfig cfg;
  cfg.pc = 0.0;
  const auto keys = master_keys();
  FaultPlan faults;
  faults.crash_at_s[4] = 1.0;  // after the roster, before its F unicast
  FaultRig rig(network, cfg, proto::constant_reading(1.0), keys, faults,
               pin_head(1));

  EXPECT_GE(network.metrics().counter("icpda.phase2_recovery"), 1u);
  EXPECT_GE(network.metrics().counter("icpda.cluster_recovered"), 1u);

  // The surviving cluster {1,2,3} still solves and reports.
  ASSERT_TRUE(rig.apps[1]->cluster_value().has_value());
  EXPECT_NEAR(rig.apps[1]->cluster_value()->count, 3.0, 1e-6);
  ASSERT_TRUE(rig.outcome.result.has_value());
  EXPECT_NEAR(rig.outcome.result->count, 3.0, 1e-6);
  EXPECT_TRUE(rig.outcome.accepted());
  // The recovery round's stale/fresh round tags kept the algebra clean:
  // no value-tamper alarms from mixing rounds.
  EXPECT_EQ(rig.outcome.significant_alarms, 0u);
}

// ---------------------------------------------------------------------
// Transient outage: the node blinks, the epoch survives, and the node
// is alive again at the end.

TEST(FaultInjectionTest, TransientOutageIsNotACrash) {
  net::Network network(paper_network(300, 34));
  IcpdaConfig cfg;
  const auto keys = master_keys();
  FaultPlan faults;
  faults.outages[17].push_back({0.2, 3.0});
  FaultRig rig(network, cfg, proto::constant_reading(1.0), keys, faults);

  EXPECT_EQ(rig.outcome.nodes_crashed, 0u);  // outages are not crashes
  EXPECT_EQ(network.metrics().counter("net.node_down"), 1u);
  EXPECT_EQ(network.metrics().counter("net.node_up"), 1u);
  EXPECT_TRUE(network.node_alive(17));
  EXPECT_TRUE(rig.outcome.accepted());
}

// ---------------------------------------------------------------------
// The headline acceptance criterion: 10% per-epoch crash probability,
// no attackers, default loss — every epoch accepted (zero false
// rejections), coverage at least 0.85 of the survivors, and both the
// head-failover and the parent-reroute paths actually exercised.

TEST(FaultInjectionTest, TenPercentCrashesDegradeGracefully) {
  const auto keys = master_keys();
  std::uint64_t head_failovers = 0;
  std::uint64_t reroutes = 0;
  for (const std::uint64_t seed : {41u, 42u, 44u}) {
    net::Network network(paper_network(400, seed));
    IcpdaConfig cfg;
    // Fault healing takes wall-clock time the default close slack does
    // not budget for: one exhausted MAC retry ladder (~0.8 s) tells a
    // reporter its parent is dead, the reroute backoff and a watchdog
    // rehand add roughly another ladder each. Give the epoch ~2.5 s of
    // extra slack so healed reports still land before the BS closes.
    cfg.timing.close_slack_s = 2.5;
    FaultPlan faults;
    faults.crash_probability = 0.10;
    const auto out = run_icpda_epoch(network, cfg, proto::constant_reading(1.0),
                                     keys, {}, faults);
    EXPECT_GT(out.nodes_crashed, 0u) << "seed " << seed;
    EXPECT_TRUE(out.accepted()) << "seed " << seed << ": crash-induced "
                                << out.significant_alarms
                                << " false rejection alarms";
    EXPECT_GE(out.coverage, 0.85) << "seed " << seed;
    ASSERT_TRUE(out.result.has_value());
    // A node that crashes after Phase II may already have contributed,
    // so the count can exceed the survivor population — but never the
    // sensor population (node 0 is the base station).
    EXPECT_LE(out.result->count, 399.0);
    head_failovers += network.metrics().counter("icpda.head_failover") +
                      network.metrics().counter("icpda.backup_report") +
                      network.metrics().counter("icpda.phase2_recovery");
    reroutes += out.reroutes;
  }
  // The degradation machinery was not idle: dead heads were failed
  // over and at least one reporter switched to a backup parent.
  EXPECT_GT(head_failovers, 0u);
  EXPECT_GT(reroutes, 0u);
}

// Zero-fault plans leave the fault counters at zero and coverage at
// the usual near-complete level.
TEST(FaultInjectionTest, InactivePlanChangesNothing) {
  net::Network network(paper_network(300, 44));
  IcpdaConfig cfg;
  const auto keys = master_keys();
  const auto out =
      run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
  EXPECT_EQ(out.nodes_crashed, 0u);
  EXPECT_EQ(network.metrics().counter("net.node_down"), 0u);
  EXPECT_TRUE(out.accepted());
  EXPECT_GT(out.coverage, 0.95);
}

}  // namespace
}  // namespace icpda::core
