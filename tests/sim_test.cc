// Simulation kernel: scheduler, RNG, metrics, time.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace icpda::sim {
namespace {

// ---- SimTime --------------------------------------------------------

TEST(SimTimeTest, ArithmeticAndOrdering) {
  const SimTime a = seconds(1.5);
  const SimTime b = millis(500);
  EXPECT_DOUBLE_EQ((a + b).seconds(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 1.0);
  EXPECT_DOUBLE_EQ((2.0 * b).millis(), 1000.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(micros(1000), millis(1));
  EXPECT_TRUE(SimTime::zero().is_finite());
  EXPECT_FALSE(SimTime::infinity().is_finite());
}

// ---- Scheduler ------------------------------------------------------

TEST(SchedulerTest, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(seconds(3.0), [&] { order.push_back(3); });
  sched.at(seconds(1.0), [&] { order.push_back(1); });
  sched.at(seconds(2.0), [&] { order.push_back(2); });
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now().seconds(), 3.0);
}

TEST(SchedulerTest, EqualTimesFireInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.at(seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, EventsScheduledDuringRunAreExecuted) {
  Scheduler sched;
  int fired = 0;
  sched.at(seconds(1.0), [&] {
    ++fired;
    sched.after(seconds(1.0), [&] { ++fired; });
  });
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sched.now().seconds(), 2.0);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  const EventId id = sched.at(seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // second cancel is a no-op
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelAfterFireIsHarmless) {
  Scheduler sched;
  const EventId id = sched.at(seconds(1.0), [] {});
  sched.run();
  EXPECT_FALSE(sched.cancel(id));
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler sched;
  std::vector<double> fired_at;
  for (int i = 1; i <= 5; ++i) {
    sched.at(seconds(i), [&fired_at, &sched] { fired_at.push_back(sched.now().seconds()); });
  }
  sched.run_until(seconds(2.5));
  EXPECT_EQ(fired_at.size(), 2u);
  EXPECT_DOUBLE_EQ(sched.now().seconds(), 2.5);
  sched.run();
  EXPECT_EQ(fired_at.size(), 5u);
}

TEST(SchedulerTest, RunStepsBoundsExecution) {
  Scheduler sched;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sched.at(seconds(i + 1), [&] { ++fired; });
  EXPECT_EQ(sched.run_steps(4), 4u);
  EXPECT_EQ(fired, 4);
}

TEST(SchedulerTest, RejectsPastAndEmptyEvents) {
  Scheduler sched;
  sched.at(seconds(5.0), [] {});
  sched.run();
  EXPECT_THROW(sched.at(seconds(1.0), [] {}), std::invalid_argument);
  EXPECT_THROW(sched.at(seconds(10.0), EventFn{}), std::invalid_argument);
}

TEST(SchedulerTest, ResetClearsQueueAndClock) {
  Scheduler sched;
  bool fired = false;
  sched.at(seconds(1.0), [&] { fired = true; });
  sched.reset();
  EXPECT_EQ(sched.pending(), 0u);
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(sched.now().seconds(), 0.0);
}

// ---- Rng ------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.below(10)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 600);
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 50000.0, 0.5, 0.02);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n - mean * mean), 2.0, 0.05);
}

TEST(RngTest, ForkIsIndependentAndStable) {
  const Rng root(42);
  Rng f1 = root.fork("alpha");
  Rng f2 = root.fork("beta");
  EXPECT_NE(f1(), f2());
  // Same name -> same stream, and forking does not perturb the parent.
  Rng f1_a = root.fork("alpha");
  Rng f1_b = root.fork("alpha");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(f1_a(), f1_b());
}

TEST(RngTest, IndexedForksDiffer) {
  const Rng root(42);
  Rng a = root.fork("node", 1);
  Rng b = root.fork("node", 2);
  EXPECT_NE(a(), b());
}

TEST(RngTest, SampleIndicesDistinctAndComplete) {
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    auto s = rng.sample_indices(20, 7);
    ASSERT_EQ(s.size(), 7u);
    std::sort(s.begin(), s.end());
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    EXPECT_LT(s.back(), 20u);
  }
  auto all = rng.sample_indices(5, 5);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_THROW((void)rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// ---- Metrics --------------------------------------------------------

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  Rng rng(37);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStats c;
  a.merge(c);
  EXPECT_EQ(a.count(), 1u);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps into bucket 0
  h.add(100.0);  // clamps into bucket 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[9], 2u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
}

TEST(MetricRegistryTest, CountersAndStats) {
  MetricRegistry m;
  m.add("x");
  m.add("x", 4);
  m.observe("lat", 1.0);
  m.observe("lat", 3.0);
  EXPECT_EQ(m.counter("x"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(m.stat("lat").mean(), 2.0);
  EXPECT_EQ(m.stat("missing").count(), 0u);
  m.clear();
  EXPECT_EQ(m.counter("x"), 0u);
}

}  // namespace
}  // namespace icpda::sim
