// Channel (collisions, loss, overhearing) and MAC (CSMA, ACK/retry,
// duplicate suppression) behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "net/channel.h"
#include "net/mac.h"
#include "net/network.h"
#include "net/node.h"

namespace icpda::net {
namespace {

/// Three nodes in a line: 0 -- 1 -- 2 (0 and 2 are hidden from each
/// other), all pairs within range except 0-2.
Topology line_topology() { return Topology{{{0, 0}, {40, 0}, {80, 0}}, 50.0}; }

/// App recording everything it sees.
class RecorderApp final : public App {
 public:
  struct Seen {
    Frame frame;
    bool overheard;
  };
  void on_receive(Node&, const Frame& f) override { seen.push_back({f, false}); }
  void on_overhear(Node&, const Frame& f) override { seen.push_back({f, true}); }
  void on_send_failed(Node&, const Frame& f) override { failed.push_back(f); }
  std::vector<Seen> seen;
  std::vector<Frame> failed;
};

struct Rig {
  explicit Rig(Topology topo, NetworkConfig cfg = {})
      : network(std::move(topo), cfg) {
    network.attach_apps([this](Node&) {
      auto app = std::make_unique<RecorderApp>();
      apps.push_back(app.get());
      return app;
    });
  }
  Network network;
  std::vector<RecorderApp*> apps;
};

TEST(ChannelTest, AirtimeMatchesBitrate) {
  Rig rig(line_topology());
  Frame f;
  f.payload.assign(83, 0);  // 83 + 17 overhead = 100 bytes = 800 bits
  EXPECT_NEAR(rig.network.channel().airtime(f).seconds(), 800.0 / 1e6, 1e-12);
}

TEST(ChannelMacTest, UnicastDeliversOnlyToDestinationButAllOverhear) {
  Rig rig(line_topology());
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    rig.network.node(1).send(0, 42, {1, 2, 3});
  });
  rig.network.run();
  ASSERT_EQ(rig.apps[0]->seen.size(), 1u);
  EXPECT_FALSE(rig.apps[0]->seen[0].overheard);
  EXPECT_EQ(rig.apps[0]->seen[0].frame.type, 42);
  // Node 2 is in range of node 1: promiscuous overhear.
  ASSERT_EQ(rig.apps[2]->seen.size(), 1u);
  EXPECT_TRUE(rig.apps[2]->seen[0].overheard);
}

TEST(ChannelMacTest, BroadcastReachesAllNeighbours) {
  Rig rig(line_topology());
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    rig.network.node(1).broadcast(7, {9});
  });
  rig.network.run();
  ASSERT_EQ(rig.apps[0]->seen.size(), 1u);
  EXPECT_FALSE(rig.apps[0]->seen[0].overheard);  // broadcast counts as addressed
  ASSERT_EQ(rig.apps[2]->seen.size(), 1u);
  EXPECT_EQ(rig.apps[0]->seen[0].frame.payload, Bytes{9});
}

TEST(ChannelMacTest, OutOfRangeUnicastFailsAfterRetries) {
  Rig rig(line_topology());
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    rig.network.node(0).send(2, 42, {1});  // 0 cannot reach 2
  });
  rig.network.run();
  EXPECT_EQ(rig.apps[2]->seen.size(), 0u);
  ASSERT_EQ(rig.apps[0]->failed.size(), 1u);
  EXPECT_EQ(rig.network.metrics().counter("mac.tx_failed"), 1u);
  // max_retries + 1 transmissions attempted.
  EXPECT_EQ(rig.network.metrics().counter("mac.tx_attempts"),
            rig.network.config().mac.max_retries + 1);
}

TEST(ChannelMacTest, AckedUnicastSucceedsWithoutFailure) {
  Rig rig(line_topology());
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    rig.network.node(0).send(1, 42, {1});
  });
  rig.network.run();
  EXPECT_EQ(rig.apps[1]->seen.size(), 1u);
  EXPECT_TRUE(rig.apps[0]->failed.empty());
  EXPECT_EQ(rig.network.metrics().counter("mac.ack_received"), 1u);
}

TEST(ChannelMacTest, SimultaneousHiddenTerminalsCollideAtMiddle) {
  // Force both hidden nodes to transmit into the same instant by
  // bypassing the MAC and driving the channel directly.
  Rig rig(line_topology());
  auto& channel = rig.network.channel();
  auto& sched = rig.network.scheduler();
  int delivered_ok = 0;
  channel.set_delivery([&](NodeId receiver, const Frame&, ReceptionStatus st) {
    if (receiver == 1 && st == ReceptionStatus::kOk) ++delivered_ok;
    if (receiver == 1 && st == ReceptionStatus::kCollided) {
      // expected
    }
  });
  sched.after(sim::seconds(0.001), [&] {
    Frame a;
    a.src = 0;
    a.dst = 1;
    a.payload.assign(50, 0);
    Frame b;
    b.src = 2;
    b.dst = 1;
    b.payload.assign(50, 0);
    channel.transmit(0, a, nullptr);
    channel.transmit(2, b, nullptr);
  });
  sched.run();
  EXPECT_EQ(delivered_ok, 0);
  EXPECT_EQ(rig.network.metrics().counter("channel.rx_collided"), 2u);
}

TEST(ChannelMacTest, CarrierSenseDefersNeighbour) {
  Rig rig(line_topology());
  auto& channel = rig.network.channel();
  auto& sched = rig.network.scheduler();
  sched.after(sim::seconds(0.001), [&] {
    Frame a;
    a.src = 0;
    a.dst = 1;
    a.payload.assign(1000, 0);  // ~8 ms on air
    channel.transmit(0, a, nullptr);
  });
  bool busy_seen = false;
  sched.after(sim::seconds(0.002), [&] { busy_seen = channel.busy_at(1); });
  sched.run();
  EXPECT_TRUE(busy_seen);
}

TEST(ChannelMacTest, RandomLossDropsConfiguredFraction) {
  NetworkConfig cfg;
  cfg.channel.loss_probability = 0.5;
  Rig rig(line_topology(), cfg);
  auto& sched = rig.network.scheduler();
  // 200 broadcasts from node 1; each neighbour should get ~50%.
  for (int i = 0; i < 200; ++i) {
    sched.at(sim::seconds(0.01 * (i + 1)), [&] { rig.network.node(1).broadcast(5, {}); });
  }
  rig.network.run();
  const auto got = static_cast<double>(rig.apps[0]->seen.size());
  EXPECT_NEAR(got / 200.0, 0.5, 0.12);
  EXPECT_GT(rig.network.metrics().counter("channel.rx_lost"), 50u);
}

TEST(ChannelMacTest, DuplicateDataFramesAreSuppressed) {
  // Simulate an ACK loss forcing a retransmission: drive the channel
  // directly with two identical frames (same src/seq).
  Rig rig(line_topology());
  auto& sched = rig.network.scheduler();
  Frame f;
  f.src = 0;
  f.dst = 1;
  f.seq = 5;
  f.type = 42;
  sched.after(sim::seconds(0.001), [&] { rig.network.channel().transmit(0, f, nullptr); });
  sched.after(sim::seconds(0.05), [&] { rig.network.channel().transmit(0, f, nullptr); });
  rig.network.run();
  EXPECT_EQ(rig.apps[1]->seen.size(), 1u);
  EXPECT_EQ(rig.network.metrics().counter("mac.duplicate_suppressed"), 1u);
}

TEST(ChannelMacTest, QueueOverflowReportsFailure) {
  NetworkConfig cfg;
  cfg.mac.queue_limit = 2;
  Rig rig(line_topology(), cfg);
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    for (int i = 0; i < 5; ++i) rig.network.node(0).send(1, 42, {});
  });
  rig.network.run();
  EXPECT_EQ(rig.apps[0]->failed.size(), 3u);
  EXPECT_EQ(rig.network.metrics().counter("mac.queue_drop"), 3u);
}

TEST(ChannelMacTest, TapSeesEveryTransmission) {
  Rig rig(line_topology());
  int tapped = 0;
  rig.network.channel().add_tap([&](NodeId, const Frame&) { ++tapped; });
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    rig.network.node(1).broadcast(7, {});
  });
  rig.network.run();
  EXPECT_EQ(tapped, 1);
}

TEST(NetworkTest, RejectsEmptyTopology) {
  NetworkConfig cfg;
  EXPECT_THROW(Network(Topology{{}, 50.0}, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace icpda::net
