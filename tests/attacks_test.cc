// Attack auditors: linear-algebra disclosure test, eavesdropping,
// collusion, SMART views — including cross-validation of the paper's
// privacy claims by exact inferability rather than formulas.
#include <gtest/gtest.h>

#include "analysis/models.h"
#include "attacks/eavesdropper.h"
#include "attacks/linear_audit.h"
#include "sim/rng.h"

namespace icpda::attacks {
namespace {

// ---- LinearKnowledge ------------------------------------------------

TEST(LinearKnowledgeTest, PinDeterminesExactlyThatVariable) {
  LinearKnowledge k(3);
  k.pin(1);
  EXPECT_FALSE(k.determined(0));
  EXPECT_TRUE(k.determined(1));
  EXPECT_FALSE(k.determined(2));
  EXPECT_EQ(k.nullity(), 2u);
}

TEST(LinearKnowledgeTest, SumConstraintAlonePinsNothing) {
  LinearKnowledge k(3);
  k.add_equation({1.0, 1.0, 1.0});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FALSE(k.determined(i));
}

TEST(LinearKnowledgeTest, FullRankDeterminesEverything) {
  LinearKnowledge k(3);
  k.add_equation({1.0, 1.0, 0.0});
  k.add_equation({0.0, 1.0, 1.0});
  k.add_equation({1.0, 0.0, 1.0});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(k.determined(i));
  EXPECT_EQ(k.nullity(), 0u);
}

TEST(LinearKnowledgeTest, RedundantEquationsHarmless) {
  LinearKnowledge k(2);
  k.add_equation({1.0, 1.0});
  k.add_equation({2.0, 2.0});
  k.add_equation({-1.0, -1.0});
  EXPECT_EQ(k.nullity(), 1u);
  EXPECT_FALSE(k.determined(0));
}

TEST(LinearKnowledgeTest, DifferenceOfConstraintsDetermines) {
  // x0 + x1 known and x1 known -> x0 determined.
  LinearKnowledge k(2);
  k.add_equation({1.0, 1.0});
  k.pin(1);
  EXPECT_TRUE(k.determined(0));
}

TEST(LinearKnowledgeTest, SizeValidation) {
  LinearKnowledge k(2);
  EXPECT_THROW(k.add_equation({1.0}), std::invalid_argument);
  EXPECT_THROW((void)k.determined(5), std::out_of_range);
}

// ---- CPDA cluster disclosure ----------------------------------------

TEST(ClusterViewTest, NoBreaksNoDisclosure) {
  for (std::size_t m : {2, 3, 5}) {
    const auto view = ClusterView::clean(m);
    for (const bool d : view.disclosed()) EXPECT_FALSE(d) << "m=" << m;
  }
}

TEST(ClusterViewTest, AllLinksOfVictimBrokenDiscloses) {
  // Outgoing AND incoming share links of member 0 broken -> v_0 leaks
  // (the paper's disclosure condition).
  auto view = ClusterView::clean(3);
  for (std::size_t j = 1; j < 3; ++j) {
    view.broken[0][j] = true;  // outgoing
    view.broken[j][0] = true;  // incoming
  }
  const auto d = view.disclosed();
  EXPECT_TRUE(d[0]);
  EXPECT_FALSE(d[1]);
  EXPECT_FALSE(d[2]);
}

TEST(ClusterViewTest, OutgoingAloneInsufficient) {
  auto view = ClusterView::clean(3);
  view.broken[0][1] = true;
  view.broken[0][2] = true;
  EXPECT_FALSE(view.disclosed()[0]);
}

TEST(ClusterViewTest, IncomingAloneInsufficient) {
  auto view = ClusterView::clean(3);
  view.broken[1][0] = true;
  view.broken[2][0] = true;
  EXPECT_FALSE(view.disclosed()[0]);
}

TEST(ClusterViewTest, WithoutPublicFNothingDiscloses) {
  // Even full victim-link knowledge needs the public F values to pin
  // the kept share.
  auto view = ClusterView::clean(3);
  view.f_public = false;
  for (std::size_t j = 1; j < 3; ++j) {
    view.broken[0][j] = true;
    view.broken[j][0] = true;
  }
  EXPECT_FALSE(view.disclosed()[0]);
}

TEST(ClusterViewTest, AllLinksBrokenDisclosesEveryone) {
  auto view = ClusterView::clean(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) view.broken[i][j] = true;
    }
  }
  for (const bool d : view.disclosed()) EXPECT_TRUE(d);
}

class CollusionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CollusionTest, AllButOneColludersBreakPrivacy) {
  const std::size_t m = GetParam();
  // m-1 colluders expose the last honest member.
  auto view = ClusterView::clean(m);
  for (std::size_t c = 1; c < m; ++c) view.colluders[c] = true;
  EXPECT_TRUE(view.disclosed()[0]) << "m=" << m;
}

TEST_P(CollusionTest, FewerColludersPreservePrivacy) {
  const std::size_t m = GetParam();
  if (m < 3) return;  // m-2 = 0 colluders is the clean case
  auto view = ClusterView::clean(m);
  for (std::size_t c = 2; c < m; ++c) view.colluders[c] = true;  // m-2 colluders
  const auto d = view.disclosed();
  EXPECT_FALSE(d[0]) << "m=" << m;
  EXPECT_FALSE(d[1]) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, CollusionTest, ::testing::Values(2, 3, 4, 5, 6));

TEST(ClusterViewTest, CollusionEstimatorMatchesTheory) {
  sim::Rng rng(5);
  EXPECT_DOUBLE_EQ(estimate_collusion_disclosure(4, 3, 20, rng), 1.0);
  EXPECT_DOUBLE_EQ(estimate_collusion_disclosure(4, 2, 20, rng), 0.0);
  EXPECT_DOUBLE_EQ(analysis::cpda_collusion_disclosure(4, 3), 1.0);
  EXPECT_DOUBLE_EQ(analysis::cpda_collusion_disclosure(4, 2), 0.0);
}

TEST(ClusterViewTest, DisclosureProbabilityMatchesClosedFormLeadingOrder) {
  // For px = 0.5 and m = 2 the closed form px^(2(m-1)) = 0.25 should
  // be a close lower bound of the rank-test estimate (rarer global
  // patterns add a little).
  sim::Rng rng(7);
  const double est = estimate_disclosure_probability(2, 0.5, 4000, rng);
  const double formula = analysis::cpda_disclosure_probability(2, 0.5);
  EXPECT_GE(est + 0.02, formula);
  EXPECT_NEAR(est, formula, 0.08);
}

TEST(ClusterViewTest, DisclosureDropsWithClusterSize) {
  sim::Rng rng(9);
  const double m2 = estimate_disclosure_probability(2, 0.4, 3000, rng);
  const double m3 = estimate_disclosure_probability(3, 0.4, 3000, rng);
  EXPECT_GT(m2, m3);
}

// ---- SMART view -----------------------------------------------------

TEST(SmartViewTest, MatchesClosedForm) {
  sim::Rng rng(11);
  SmartView view;
  view.l = 2;
  view.incoming = 1;
  view.px = 0.5;
  // Needs 1 outgoing + 1 incoming broken: 0.25.
  EXPECT_NEAR(view.estimate(4000, rng), 0.25, 0.03);
  EXPECT_DOUBLE_EQ(analysis::smart_disclosure_probability(2, 1, 0.5), 0.25);
}

TEST(SmartViewTest, MoreSlicesLowerDisclosure) {
  sim::Rng rng(13);
  SmartView l2{2, 2, 0.4};
  SmartView l3{3, 2, 0.4};
  EXPECT_GT(l2.estimate(3000, rng), l3.estimate(3000, rng));
}

TEST(SmartViewTest, CertainBreakDisclosesAlways) {
  sim::Rng rng(17);
  SmartView view{2, 1, 1.0};
  EXPECT_DOUBLE_EQ(view.estimate(100, rng), 1.0);
}

}  // namespace
}  // namespace icpda::attacks
