// SMART slicing baseline: accuracy, slice conservation, privacy
// degradation accounting.
#include <gtest/gtest.h>

#include "baselines/smart.h"
#include "crypto/keyring.h"
#include "net/network.h"

namespace icpda::baselines {
namespace {

net::NetworkConfig paper_network(std::size_t n, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = n;
  cfg.seed = seed;
  return cfg;
}

crypto::MasterPairwiseScheme master_keys() {
  return crypto::MasterPairwiseScheme{crypto::Key::from_seed(0xABCD)};
}

TEST(SmartTest, CountQueryDenseNetwork) {
  net::Network network(paper_network(400, 42));
  SmartConfig cfg;
  const auto keys = master_keys();
  const auto outcome =
      run_smart_epoch(network, cfg, proto::constant_reading(1.0), keys);
  ASSERT_TRUE(outcome.result.has_value());
  // Slicing moves randomized pieces around: the count is only exact if
  // every slice lands; with losses the residual error stays small.
  EXPECT_GT(outcome.result->count, 0.88 * 399);
  EXPECT_LT(outcome.result->count, 1.05 * 399);
}

TEST(SmartTest, SlicingConservesSumWhenAllDelivered) {
  // On a tiny fully-connected network nothing is lost, so the sliced
  // aggregate must reconstruct the exact total.
  net::Topology topo({{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}, 50.0);
  net::NetworkConfig cfg;
  cfg.seed = 5;
  net::Network network(std::move(topo), cfg);
  SmartConfig scfg;
  const auto keys = master_keys();
  const auto readings = [](std::uint32_t id) { return 1.5 * id; };
  const auto outcome = run_smart_epoch(network, scfg, readings, keys);
  ASSERT_TRUE(outcome.result.has_value());
  EXPECT_NEAR(outcome.result->sum, 1.5 * (1 + 2 + 3 + 4), 1e-9);
  EXPECT_NEAR(outcome.result->count, 4.0, 1e-9);
}

TEST(SmartTest, MoreSlicesMoreTraffic) {
  const auto bytes_for = [](std::uint32_t slices) {
    net::Network network(paper_network(300, 9));
    SmartConfig cfg;
    cfg.slices = slices;
    const auto keys = master_keys();
    run_smart_epoch(network, cfg, proto::constant_reading(1.0), keys);
    return network.metrics().counter("channel.tx_bytes");
  };
  EXPECT_GT(bytes_for(3), bytes_for(2));
}

TEST(SmartTest, SliceEncryptionVerified) {
  net::Network network(paper_network(300, 11));
  SmartConfig cfg;
  const auto keys = master_keys();
  run_smart_epoch(network, cfg, proto::constant_reading(1.0), keys);
  EXPECT_GT(network.metrics().counter("smart.slice_sent"), 200u);
  EXPECT_EQ(network.metrics().counter("smart.bad_slice_auth"), 0u);
}

TEST(SmartTest, IsolatedNodesDegradePrivacyNotAccuracy) {
  // A sparse network: some nodes lack enough neighbours for l-1
  // slices; they keep slices locally (degraded privacy, data intact).
  net::Network network(paper_network(150, 3));
  SmartConfig cfg;
  cfg.slices = 3;
  const auto keys = master_keys();
  const auto outcome =
      run_smart_epoch(network, cfg, proto::constant_reading(1.0), keys);
  EXPECT_GT(outcome.degraded_privacy, 0u);
}

}  // namespace
}  // namespace icpda::baselines
