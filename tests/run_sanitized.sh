#!/usr/bin/env sh
# Run the fault-path test binaries under sanitizers, in two passes:
#
#   1. asan  — AddressSanitizer + UBSan together: object-lifetime bugs
#      on the crash/purge/recovery paths the happy path never touches.
#   2. ubsan — UBSan alone: no shadow-memory slowdown, so the
#      allocation-heavy randomized suites (property/fuzz, label `slow`)
#      join the run and hostile-input UB gets real coverage.
#
# Usage: tests/run_sanitized.sh [extra ctest -R regex]
set -eu

repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
cd "$repo_root"
jobs="$(nproc 2>/dev/null || echo 4)"

filter="${1:-FaultInjectionTest|MacFailureTest|LossGuardTest|TraceTest|TraceConservationTest|AttackTest|ServiceTest|CryptoBatchTest|CpdaExactPathTest|EpochArenaTest|AllocRegressionTest}"

echo "== pass 1/2: asan (address+undefined) =="
cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -R "$filter"

echo "== pass 2/2: ubsan (undefined only, including slow suites) =="
cmake --preset ubsan
cmake --build --preset ubsan -j "$jobs"
ctest --test-dir build-ubsan --output-on-failure -R "$filter"
ctest --test-dir build-ubsan --output-on-failure -L slow
