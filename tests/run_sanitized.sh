#!/usr/bin/env sh
# Build the asan preset and run the fault-path test binaries under
# AddressSanitizer + UBSan. The fault-injection code paths (crash
# mid-epoch, MAC queue purges, recovery rounds) exercise object
# lifetimes the happy path never touches; this is the cheap way to keep
# them honest. Usage: tests/run_sanitized.sh [extra ctest -R regex]
set -eu

repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
cd "$repo_root"

cmake --preset asan
cmake --build --preset asan -j "$(nproc 2>/dev/null || echo 4)"

filter="${1:-FaultInjectionTest|MacFailureTest|LossGuardTest}"
ctest --test-dir build-asan --output-on-failure -R "$filter"
