#!/usr/bin/env sh
# Run the fault-path test binaries under sanitizers, in three passes:
#
#   1. asan  — AddressSanitizer + UBSan together: object-lifetime bugs
#      on the crash/purge/recovery paths the happy path never touches.
#   2. ubsan — UBSan alone: no shadow-memory slowdown, so the
#      allocation-heavy randomized suites (property/fuzz, label `slow`)
#      join the run and hostile-input UB gets real coverage.
#   3. tsan  — ThreadSanitizer over the sharded-engine suites: the
#      conservative-PDES worker drains (net/shard_engine.cc) run
#      concurrent Scheduler::run_before on a shared Channel, and the
#      determinism tests alone cannot see a torn read that happens to
#      produce the right bytes.
#
# Usage: tests/run_sanitized.sh [extra ctest -R regex]
#
# ICPDA_SAN_LANES selects a subset of passes (default "asan ubsan
# tsan") so CI can split the lanes into separate jobs.
set -eu

repo_root="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
cd "$repo_root"
jobs="$(nproc 2>/dev/null || echo 4)"
lanes="${ICPDA_SAN_LANES:-asan ubsan tsan}"

filter="${1:-FaultInjectionTest|MacFailureTest|LossGuardTest|TraceTest|TraceConservationTest|AttackTest|ServiceTest|CryptoBatchTest|CpdaExactPathTest|EpochArenaTest|AllocRegressionTest}"

case " $lanes " in *" asan "*)
  echo "== asan (address+undefined) =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -R "$filter"
esac

case " $lanes " in *" ubsan "*)
  echo "== ubsan (undefined only, including slow suites) =="
  cmake --preset ubsan
  cmake --build --preset ubsan -j "$jobs"
  ctest --test-dir build-ubsan --output-on-failure -R "$filter"
  ctest --test-dir build-ubsan --output-on-failure -L slow
esac

case " $lanes " in *" tsan "*)
  echo "== tsan (sharded-engine concurrency) =="
  tsan_filter="ShardDeterminismTest|ShardLookaheadTest|SchedulerTest"
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  # The lookahead sweep's default 5000 cases is sized for native
  # builds; TSan's ~10x slowdown gets full value from a tenth of the
  # budget.
  ICPDA_LOOKAHEAD_CASES=500 ctest --test-dir build-tsan --output-on-failure -R "$tsan_filter"
  # Full-campaign smoke at shards=8 x threads=8: the real protocol
  # running through the engine's parallel drains, under TSan.
  ctest --test-dir build-tsan --output-on-failure -R "smoke_bench_fault_shard_invariance"
esac
