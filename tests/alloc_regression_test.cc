// Allocation-count regression gate for the Phase II per-share hot path.
//
// The batched-crypto / SoA-arena refactor's whole point is that the
// steady-state share loop — derive link keys, cut shares, patch the
// serialized body template, seal, open, record, assemble, interpolate,
// bump metrics — touches NO heap once the arenas are warm. This binary
// replaces global operator new with a counting shim and asserts exactly
// that: zero allocations across many iterations of the loop. Any future
// change that sneaks a per-share allocation back in (a map node, a
// fresh Bytes, a std::string temporary) fails here long before it shows
// up in a profile.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "core/cpda_algebra.h"
#include "crypto/cipher.h"
#include "crypto/keyring.h"
#include "crypto/prf.h"
#include "sim/metrics.h"
#include "sim/rng.h"

// ---- Global allocation counter --------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC pairs `new` expressions with these replaced operators and then
// flags the malloc/free crossover the replacement is deliberately
// built on — silence just that heuristic here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace icpda {
namespace {

template <typename F>
std::uint64_t allocations_during(F&& body) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  body();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

/// Everything one member does per cluster round, against warm arenas.
/// Returns a checksum so nothing is optimized away.
struct HotLoop {
  static constexpr std::size_t kM = 8;

  crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(0x7357)};
  sim::Rng rng{0xA110C};
  sim::MetricRegistry metrics;
  core::ClusterContext ctx;

  std::vector<std::uint32_t> members;
  std::vector<double> seed_vals;
  std::vector<std::optional<crypto::Key>> link_keys;
  std::vector<proto::Aggregate> shares;
  std::vector<proto::Aggregate> announced;
  std::vector<std::uint32_t> contributors;
  net::Bytes body_bytes;
  crypto::Bytes sealed;
  crypto::Bytes opened;
  std::uint64_t checksum = 0;

  HotLoop() {
    std::vector<std::uint32_t> roster_members;
    std::vector<std::uint32_t> roster_seeds;
    for (std::size_t i = 0; i < kM; ++i) {
      roster_members.push_back(10 + static_cast<std::uint32_t>(i));
      roster_seeds.push_back(static_cast<std::uint32_t>(i) + 1);
    }
    members = roster_members;
    EXPECT_TRUE(ctx.set_roster(members[0], std::move(roster_members),
                               std::move(roster_seeds), members[0]));
    seed_vals = ctx.seed_values();
    announced.resize(kM);
    // Serialize the round's body template once; the loop only patches
    // the 24-byte share triple in place.
    const core::ShareBody body{7, 0, proto::Aggregate{}, 0xC0FFEE};
    body_bytes = body.to_bytes();
    // Counters pre-registered so the measured adds are pure lookups;
    // names long enough that a std::string round-trip would allocate.
    metrics.add("icpda.alloc_regression_probe_counter", 0);
    metrics.add("icpda.alloc_regression_second_counter", 0);
  }

  void iterate() {
    keys.link_keys(members[0], members, link_keys);
    core::make_shares_into(proto::Aggregate::of(rng.uniform(0.0, 30.0)),
                           seed_vals, rng, shares);
    ctx.set_kept_share(shares[0]);
    for (std::size_t j = 1; j < kM; ++j) {
      const crypto::Key& key = *link_keys[j];
      core::ShareBody::patch_share(body_bytes, shares[j]);
      crypto::seal_into(key, rng(), body_bytes, sealed);
      const bool ok = crypto::open_into(key, sealed, opened);
      checksum += ok ? opened[core::ShareBody::kShareOffset] : 0xFF;
      ctx.record_share(members[j], shares[j]);
    }
    const proto::Aggregate f = ctx.assemble(contributors);
    checksum += contributors.size();
    for (std::size_t j = 0; j < kM; ++j) announced[j] = f;
    const auto solved = core::solve_cluster_sum(seed_vals, announced);
    checksum += solved.has_value() ? 1 : 0;
    const crypto::Key link = crypto::KeyDeriver(keys_master()).derive(3, 17);
    checksum += link.words[0] & 1;
    metrics.add("icpda.alloc_regression_probe_counter");
    metrics.add("icpda.alloc_regression_second_counter", 2);
  }

  [[nodiscard]] static crypto::Key keys_master() {
    return crypto::Key::from_seed(0x7357);
  }
};

TEST(AllocRegressionTest, SteadyStateShareLoopDoesNotAllocate) {
  HotLoop loop;
  // Warm-up: first pass sizes every arena (scratch vectors, seal/open
  // buffers, metric map nodes). Allocations here are expected.
  loop.iterate();
  loop.iterate();

  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 200; ++i) loop.iterate();
  });
  EXPECT_EQ(allocs, 0u)
      << "per-share heap allocation crept back into the Phase II hot loop";
  // The work must not have been elided.
  EXPECT_NE(loop.checksum, 0u);
  EXPECT_EQ(loop.metrics.counter("icpda.alloc_regression_probe_counter"), 202u);
}

// Re-rostering a warm context at the same cluster size (the recovery
// path re-installs a roster mid-epoch) reuses arena capacity: with the
// member/seed vectors moved in, the install itself is allocation-free.

TEST(AllocRegressionTest, WarmRerosterDoesNotAllocate) {
  core::ClusterContext ctx;
  std::vector<std::uint32_t> members{10, 20, 30, 40, 50};
  std::vector<std::uint32_t> seeds{1, 2, 3, 4, 5};
  ASSERT_TRUE(ctx.set_roster(10, members, seeds, 20));
  for (const std::uint32_t m : members) ctx.record_share(m, proto::Aggregate::of(1.0));

  // Pre-built next-round vectors (the protocol reuses the decoded
  // roster message's buffers the same way).
  std::vector<std::uint32_t> members2 = members;
  std::vector<std::uint32_t> seeds2 = seeds;
  bool ok = false;
  const std::uint64_t allocs = allocations_during([&] {
    ok = ctx.set_roster(10, std::move(members2), std::move(seeds2), 20);
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(allocs, 0u) << "same-size re-roster should only assign() into arenas";
  EXPECT_EQ(ctx.shares_received(), 0u);
}

}  // namespace
}  // namespace icpda
