// Properties of the 2-D tile partitioner (sim/shard.h), the plan the
// sharded engine's parallel fraction lives or dies by:
//
//  * correctness — every node assigned, shard ids dense, border flags
//    exactly "some neighbour lives elsewhere", per-shard tallies
//    consistent (both partitioners);
//  * balance — no tile carries more than 2x the mean estimated event
//    load on randomized paper-density deployments (the slowest shard
//    paces every drain round);
//  * border economy — at shards >= 4 (tiles squarer than full-height
//    stripes, so cuts are shorter) the tile plan's border-node count
//    never exceeds the vertical-stripe plan's on the same deployment
//    (border nodes are the only ones that serialize through the
//    gate), and it should usually win outright. At shards == 2 both
//    plans make one full-height cut; the tile plan places it at the
//    load-weighted median, which can land in a denser band than the
//    stripe plan's equal-width cut — a few border nodes traded for
//    balance, bounded here;
//  * determinism — the plan is a pure function of its inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "sim/rng.h"
#include "sim/shard.h"

namespace icpda::sim {
namespace {

struct Deployment {
  net::Topology topo;
  std::vector<double> xs, ys;
  double side;
  NeighborFn neighbors;
};

Deployment make_deployment(std::size_t n, double side, std::uint64_t seed) {
  Rng rng(seed);
  net::Field field{side, side};
  net::Topology topo = net::make_random_topology(field, n, 50.0, rng);
  std::vector<double> xs(n), ys(n);
  for (net::NodeId id = 0; id < n; ++id) {
    xs[id] = topo.position(id).x;
    ys[id] = topo.position(id).y;
  }
  Deployment d{std::move(topo), std::move(xs), std::move(ys), side, {}};
  return d;
}

NeighborFn neighbor_fn(const net::Topology& topo) {
  return [&topo](std::uint32_t node,
                 const std::function<void(std::uint32_t)>& fn) {
    for (const net::NodeId r : topo.neighbors(node)) fn(r);
  };
}

/// Shared structural invariants of any ShardPlan.
void check_plan(const ShardPlan& plan, const net::Topology& topo,
                std::uint32_t shards) {
  const std::size_t n = topo.size();
  ASSERT_EQ(plan.shard_of.size(), n);
  ASSERT_EQ(plan.border.size(), n);
  ASSERT_EQ(plan.shard_count, shards);
  ASSERT_EQ(plan.shard_sizes.size(), shards);
  ASSERT_EQ(plan.est_load.size(), shards);

  std::vector<std::uint32_t> sizes(shards, 0);
  std::vector<std::uint64_t> loads(shards, 0);
  std::size_t borders = 0;
  for (net::NodeId id = 0; id < n; ++id) {
    const std::uint32_t s = plan.shard_of[id];
    ASSERT_LT(s, shards);
    ++sizes[s];
    loads[s] += 1 + topo.degree(id);
    bool crosses = false;
    for (const net::NodeId r : topo.neighbors(id)) {
      if (plan.shard_of[r] != s) crosses = true;
    }
    EXPECT_EQ(plan.border[id] != 0, shards > 1 && crosses) << "node " << id;
    if (plan.border[id] != 0) ++borders;
  }
  EXPECT_EQ(plan.border_count, borders);
  for (std::uint32_t s = 0; s < shards; ++s) {
    EXPECT_EQ(plan.shard_sizes[s], sizes[s]) << "shard " << s;
    EXPECT_EQ(plan.est_load[s], loads[s]) << "shard " << s;
  }
}

TEST(ShardPlanTest, TilePlanBalancedAndBorderEconomical) {
  // Paper density (400 nodes / 400 m square), randomized deployments.
  std::size_t stripe_wins = 0, comparisons = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::size_t n = 300 + 50 * (seed % 5);
    const double side = 20.0 * std::sqrt(static_cast<double>(n));
    Deployment d = make_deployment(n, side, 0xBA1A + seed);
    const NeighborFn nf = neighbor_fn(d.topo);

    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
                   " shards=" + std::to_string(shards));
      const ShardPlan tile =
          make_tile_plan(d.xs, d.ys, d.side, d.side, 50.0, shards, nf);
      const ShardPlan stripe = make_stripe_plan(d.xs, d.side, shards, nf);
      check_plan(tile, d.topo, shards);
      check_plan(stripe, d.topo, shards);

      // Balance: the slowest tile paces the engine; 2x mean is the
      // acceptance bar (the bisection's per-cut error is one grid
      // line's worth of load, far under this on paper densities).
      EXPECT_LE(tile.balance(), 2.0);

      // Border economy: never worse than the stripes it replaced once
      // tiles are squarer than stripes (shards >= 4). At shards == 2
      // the load-median cut may cost a few border nodes over the
      // equal-width cut (balance bought with border); cap the premium.
      if (shards >= 4) {
        EXPECT_LE(tile.border_count, stripe.border_count);
        ++comparisons;
        if (tile.border_count < stripe.border_count) ++stripe_wins;
      } else {
        EXPECT_LE(tile.border_count, stripe.border_count * 5 / 4);
      }
    }
  }
  // At square-ish tile aspect ratios the cut length (hence border
  // population) should beat full-height stripes most of the time, not
  // just tie them.
  ASSERT_GT(comparisons, 0u);
  EXPECT_GE(stripe_wins * 2, comparisons);
}

TEST(ShardPlanTest, TilePlanIsDeterministic) {
  Deployment d = make_deployment(400, 400.0, 0xD5);
  const NeighborFn nf = neighbor_fn(d.topo);
  const ShardPlan a = make_tile_plan(d.xs, d.ys, d.side, d.side, 50.0, 8, nf);
  const ShardPlan b = make_tile_plan(d.xs, d.ys, d.side, d.side, 50.0, 8, nf);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.border, b.border);
  EXPECT_EQ(a.est_load, b.est_load);
}

TEST(ShardPlanTest, DegenerateInputs) {
  Deployment d = make_deployment(50, 150.0, 0x5EED);
  const NeighborFn nf = neighbor_fn(d.topo);

  // shards == 1: trivial plan, nobody is border.
  const ShardPlan one = make_tile_plan(d.xs, d.ys, d.side, d.side, 50.0, 1, nf);
  check_plan(one, d.topo, 1);
  EXPECT_EQ(one.border_count, 0u);
  EXPECT_DOUBLE_EQ(one.balance(), 1.0);

  // More shards than grid buckets can stay dense: ids must still be
  // dense and every node assigned.
  const ShardPlan many =
      make_tile_plan(d.xs, d.ys, d.side, d.side, 50.0, 32, nf);
  check_plan(many, d.topo, 32);
}

}  // namespace
}  // namespace icpda::sim
