// MAC failure paths: every frame the MAC gives up on — ACK-retry
// exhaustion or queue tail-drop — invokes on_send_failed exactly once,
// and powering a radio off flushes its queue silently (a dead node has
// no app to notify). The iCPDA failover logic keys on these callbacks,
// so their exactly-once contract is load-bearing.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/mac.h"
#include "net/network.h"
#include "net/node.h"

namespace icpda::net {
namespace {

/// Three nodes in a line: 0 -- 1 -- 2; 0 and 2 are out of range.
Topology line_topology() { return Topology{{{0, 0}, {40, 0}, {80, 0}}, 50.0}; }

class RecorderApp final : public App {
 public:
  void on_receive(Node&, const Frame& f) override { seen.push_back(f); }
  void on_send_failed(Node&, const Frame& f) override { failed.push_back(f); }
  std::vector<Frame> seen;
  std::vector<Frame> failed;
};

struct Rig {
  explicit Rig(Topology topo, NetworkConfig cfg = {})
      : network(std::move(topo), cfg) {
    network.attach_apps([this](Node&) {
      auto app = std::make_unique<RecorderApp>();
      apps.push_back(app.get());
      return app;
    });
  }
  Network network;
  std::vector<RecorderApp*> apps;
};

/// How many failure callbacks carried this one-byte payload tag.
std::size_t failures_tagged(const RecorderApp& app, std::uint8_t tag) {
  return static_cast<std::size_t>(
      std::count_if(app.failed.begin(), app.failed.end(),
                    [&](const Frame& f) { return f.payload == Bytes{tag}; }));
}

TEST(MacFailureTest, AckExhaustionFailsEachFrameExactlyOnce) {
  Rig rig(line_topology());
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    for (std::uint8_t tag = 1; tag <= 3; ++tag) {
      rig.network.node(0).send(2, 42, {tag});  // 0 cannot reach 2
    }
  });
  rig.network.run();
  ASSERT_EQ(rig.apps[0]->failed.size(), 3u);
  for (std::uint8_t tag = 1; tag <= 3; ++tag) {
    EXPECT_EQ(failures_tagged(*rig.apps[0], tag), 1u) << "frame " << int(tag);
  }
  EXPECT_EQ(rig.network.metrics().counter("mac.tx_failed"), 3u);
  // Each frame burns the full retry ladder before its single failure.
  EXPECT_EQ(rig.network.metrics().counter("mac.tx_attempts"),
            3u * (rig.network.config().mac.max_retries + 1));
}

TEST(MacFailureTest, QueueTailDropFailsEachFrameExactlyOnce) {
  NetworkConfig cfg;
  cfg.mac.queue_limit = 2;
  Rig rig(line_topology(), cfg);
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    // Five back-to-back sends against a queue of two: frames 0 and 1
    // are accepted, frames 2..4 are tail-dropped on arrival.
    for (std::uint8_t tag = 0; tag < 5; ++tag) {
      rig.network.node(0).send(1, 42, {tag});
    }
  });
  rig.network.run();
  EXPECT_EQ(rig.network.metrics().counter("mac.queue_drop"), 3u);
  ASSERT_EQ(rig.apps[0]->failed.size(), 3u);
  for (std::uint8_t tag = 2; tag < 5; ++tag) {
    EXPECT_EQ(failures_tagged(*rig.apps[0], tag), 1u) << "frame " << int(tag);
  }
  // The accepted frames deliver normally — no second callback for them.
  ASSERT_EQ(rig.apps[1]->seen.size(), 2u);
  EXPECT_EQ(failures_tagged(*rig.apps[0], 0), 0u);
  EXPECT_EQ(failures_tagged(*rig.apps[0], 1), 0u);
}

TEST(MacFailureTest, PowerOffFlushesQueueWithoutCallbacks) {
  Rig rig(line_topology());
  rig.network.scheduler().after(sim::seconds(0.001), [&] {
    for (std::uint8_t tag = 0; tag < 3; ++tag) {
      rig.network.node(0).send(1, 42, {tag});
    }
    // Still in the initial backoff: nothing has hit the air yet.
    rig.network.mac(0).power_off();
  });
  // A send attempted while the radio is down is dropped, also silently.
  rig.network.scheduler().after(sim::seconds(0.01), [&] {
    rig.network.node(0).send(1, 42, {9});
  });
  rig.network.run();
  EXPECT_EQ(rig.network.metrics().counter("mac.flushed"), 3u);
  EXPECT_EQ(rig.network.metrics().counter("mac.down_drop"), 1u);
  EXPECT_TRUE(rig.apps[0]->failed.empty());  // flush != failure
  EXPECT_TRUE(rig.apps[1]->seen.empty());
}

TEST(MacFailureTest, DownNodeNeitherReceivesNorAcksUntilPoweredOn) {
  Rig rig(line_topology());
  auto& net = rig.network;
  std::size_t live_during_outage = 0;
  net.scheduler().after(sim::seconds(0.001), [&] { net.set_node_down(1); });
  net.scheduler().after(sim::seconds(0.002), [&] {
    live_during_outage = net.live_count();
    net.node(0).send(1, 42, {1});  // into a dead radio: retries exhaust
  });
  net.scheduler().after(sim::seconds(3.0), [&] { net.set_node_up(1); });
  net.scheduler().after(sim::seconds(3.1), [&] { net.node(0).send(1, 42, {2}); });
  net.run();

  EXPECT_EQ(live_during_outage, 2u);
  EXPECT_TRUE(net.node_alive(1));
  ASSERT_EQ(rig.apps[0]->failed.size(), 1u);
  EXPECT_EQ(rig.apps[0]->failed[0].payload, Bytes{1});
  EXPECT_GT(net.metrics().counter("channel.rx_dead"), 0u);
  // After power-on the same link works again.
  ASSERT_EQ(rig.apps[1]->seen.size(), 1u);
  EXPECT_EQ(rig.apps[1]->seen[0].payload, Bytes{2});
}

TEST(MacFailureTest, BaseStationIsExemptFromFaults) {
  Rig rig(line_topology());
  rig.network.set_node_down(0);  // node 0 is the base station
  EXPECT_TRUE(rig.network.node_alive(0));
  EXPECT_EQ(rig.network.live_count(), 3u);
}

}  // namespace
}  // namespace icpda::net
