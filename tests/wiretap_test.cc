// Frame-level eavesdropper: ciphertext is unreadable without key
// material; captures and EG key reuse open exactly the modelled links.
#include <gtest/gtest.h>

#include "attacks/wiretap.h"
#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"

namespace icpda::attacks {
namespace {

net::NetworkConfig paper_network(std::size_t n, std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.node_count = n;
  cfg.seed = seed;
  return cfg;
}

TEST(WiretapTest, NoCapturesOpenNothingUnderPairwiseKeys) {
  net::Network network(paper_network(300, 42));
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(1)};
  Wiretap tap(keys, {});
  tap.attach(network.channel());
  core::IcpdaConfig cfg;
  core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
  EXPECT_GT(tap.stats().share_frames, 100u);
  EXPECT_EQ(tap.stats().shares_opened, 0u);
  EXPECT_GT(tap.stats().cleartext_frames, 100u);
  EXPECT_DOUBLE_EQ(tap.effective_px(network.topology()), 0.0);
}

TEST(WiretapTest, CapturedEndpointOpensItsLinks) {
  net::Network network(paper_network(300, 43));
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(1)};
  // Capture a handful of nodes; every share to/from them is readable.
  Wiretap tap(keys, {50, 51, 52, 53, 54, 55, 56, 57, 58, 59});
  tap.attach(network.channel());
  core::IcpdaConfig cfg;
  core::run_icpda_epoch(network, cfg, proto::constant_reading(1.0), keys);
  EXPECT_GT(tap.stats().shares_opened, 0u);
  EXPECT_LT(tap.stats().shares_opened, tap.stats().share_frames);
  EXPECT_GT(tap.effective_px(network.topology()), 0.0);
}

TEST(WiretapTest, EgKeyReuseYieldsStructuralPx) {
  net::Network network(paper_network(300, 44));
  sim::Rng rng(9);
  // Small pool relative to rings: plenty of reuse.
  const crypto::EgPredistribution keys(300, 200, 40, rng);
  Wiretap tap(keys, {10, 20, 30});
  const double px = tap.effective_px(network.topology());
  EXPECT_GT(px, 0.05);  // key reuse must make some links readable
  EXPECT_LT(px, 1.0);
  // Larger pools reduce the effective px.
  const crypto::EgPredistribution sparse(300, 5000, 40, rng);
  Wiretap tap2(sparse, {10, 20, 30});
  EXPECT_LT(tap2.effective_px(network.topology()), px);
}

TEST(WiretapTest, LinkReadableMatchesScheme) {
  sim::Rng rng(3);
  const crypto::EgPredistribution keys(20, 100, 30, rng);
  Wiretap tap(keys, {5});
  for (net::NodeId a = 0; a < 20; ++a) {
    for (net::NodeId b = a + 1; b < 20; ++b) {
      const bool expected = a == 5 || b == 5 || keys.third_party_can_read(a, b, 5);
      EXPECT_EQ(tap.link_readable(a, b), expected) << a << "-" << b;
    }
  }
}

}  // namespace
}  // namespace icpda::attacks
