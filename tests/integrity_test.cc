// WitnessMonitor: itemized audits on synthetic traces.
#include <gtest/gtest.h>

#include "core/integrity.h"

namespace icpda::core {
namespace {

using proto::Aggregate;
using proto::ReportItem;
using proto::ReportMsg;
using Kind = WitnessMonitor::Verdict::Kind;

constexpr net::NodeId kHead = 7;

WitnessMonitor armed_monitor(const Aggregate& cluster_sum,
                             WitnessMonitor::Config cfg = {}) {
  WitnessMonitor m(cfg);
  m.set_target(kHead);
  m.set_cluster_sum(cluster_sum);
  return m;
}

ReportMsg head_report(std::vector<ReportItem> items) {
  ReportMsg r;
  r.query_id = 1;
  r.reporter = kHead;
  for (const auto& item : items) r.aggregate.merge(item.value);
  r.items = std::move(items);
  return r;
}

ReportMsg child_report(net::NodeId reporter, const Aggregate& agg) {
  ReportMsg r;
  r.query_id = 1;
  r.reporter = reporter;
  r.aggregate = agg;
  r.items.push_back({reporter, agg});
  return r;
}

TEST(WitnessMonitorTest, NoKnowledgeWithoutClusterSum) {
  WitnessMonitor m;
  m.set_target(kHead);
  const auto v = m.audit(head_report({{kHead, Aggregate{1, 1, 1}}}), sim::seconds(1));
  EXPECT_EQ(v.kind, Kind::kNoKnowledge);
  EXPECT_FALSE(v.alarming());
}

TEST(WitnessMonitorTest, CleanWhenEverythingMatches) {
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster);
  const Aggregate child{2, 5, 13};
  m.record_input(child_report(3, child), sim::seconds(1.0));
  const auto v = m.audit(head_report({{kHead, cluster}, {3, child}}), sim::seconds(2.0));
  EXPECT_EQ(v.kind, Kind::kClean);
  EXPECT_EQ(v.unverified_items, 0u);
}

TEST(WitnessMonitorTest, TotalItemMismatchCaughtByAnyWitness) {
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster);
  auto report = head_report({{kHead, cluster}});
  report.aggregate.sum += 100.0;  // smeared total
  const auto v = m.audit(report, sim::seconds(2.0));
  EXPECT_EQ(v.kind, Kind::kMismatch);
  EXPECT_TRUE(v.alarming());
}

TEST(WitnessMonitorTest, ForgedClusterItemCaught) {
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster);
  Aggregate forged = cluster;
  forged.sum += 50.0;
  const auto v = m.audit(head_report({{kHead, forged}}), sim::seconds(2.0));
  EXPECT_EQ(v.kind, Kind::kMismatch);
  EXPECT_DOUBLE_EQ(v.expected_sum, 10.0);
  EXPECT_DOUBLE_EQ(v.observed_sum, 60.0);
}

TEST(WitnessMonitorTest, ForgedChildItemCaughtIfOverheard) {
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster);
  const Aggregate child{1, 4, 16};
  m.record_input(child_report(3, child), sim::seconds(1.0));
  Aggregate forged = child;
  forged.sum -= 2.5;
  const auto v =
      m.audit(head_report({{kHead, cluster}, {3, forged}}), sim::seconds(2.0));
  EXPECT_EQ(v.kind, Kind::kMismatch);
}

TEST(WitnessMonitorTest, UnheardChildItemSkipped) {
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster);
  const auto v = m.audit(
      head_report({{kHead, cluster}, {99, Aggregate{1, 2, 3}}}), sim::seconds(2.0));
  EXPECT_EQ(v.kind, Kind::kPartialClean);
  EXPECT_EQ(v.unverified_items, 1u);
  EXPECT_FALSE(v.alarming());
}

TEST(WitnessMonitorTest, OmittedClusterSumIsOmission) {
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster);
  const Aggregate child{1, 4, 16};
  m.record_input(child_report(3, child), sim::seconds(1.0));
  const auto v = m.audit(head_report({{3, child}}), sim::seconds(2.0));
  EXPECT_EQ(v.kind, Kind::kOmission);
}

TEST(WitnessMonitorTest, OmittedChildBeyondGuardIsOmission) {
  WitnessMonitor::Config cfg;
  cfg.omission_guard_s = 0.5;
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster, cfg);
  m.record_input(child_report(3, Aggregate{1, 4, 16}), sim::seconds(1.0));
  // Audit 2 s later: the child input is clearly old -> omission.
  const auto v = m.audit(head_report({{kHead, cluster}}), sim::seconds(3.0));
  EXPECT_EQ(v.kind, Kind::kOmission);
}

TEST(WitnessMonitorTest, LateChildInsideGuardForgiven) {
  WitnessMonitor::Config cfg;
  cfg.omission_guard_s = 0.5;
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster, cfg);
  m.record_input(child_report(3, Aggregate{1, 4, 16}), sim::seconds(1.8));
  const auto v = m.audit(head_report({{kHead, cluster}}), sim::seconds(2.0));
  EXPECT_EQ(v.kind, Kind::kClean);
}

TEST(WitnessMonitorTest, OmissionCheckDisabled) {
  WitnessMonitor::Config cfg;
  cfg.alarm_on_omission = false;
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster, cfg);
  m.record_input(child_report(3, Aggregate{1, 4, 16}), sim::seconds(0.1));
  const auto v = m.audit(head_report({{kHead, cluster}}), sim::seconds(5.0));
  EXPECT_EQ(v.kind, Kind::kClean);
}

TEST(WitnessMonitorTest, ToleranceScalesWithMagnitude) {
  WitnessMonitor::Config cfg;
  cfg.tolerance = 1e-6;
  const Aggregate cluster{1e9, 1e12, 1e15};
  auto m = armed_monitor(cluster, cfg);
  Aggregate near = cluster;
  near.sum += 0.5;  // relative error 5e-13, far below tolerance
  const auto v = m.audit(head_report({{kHead, near}}), sim::seconds(1.0));
  EXPECT_EQ(v.kind, Kind::kClean);
}

TEST(WitnessMonitorTest, RetransmittedInputOverwrites) {
  const Aggregate cluster{3, 10, 40};
  auto m = armed_monitor(cluster);
  const Aggregate child{1, 4, 16};
  m.record_input(child_report(3, child), sim::seconds(1.0));
  m.record_input(child_report(3, child), sim::seconds(1.1));  // duplicate
  const auto v =
      m.audit(head_report({{kHead, cluster}, {3, child}}), sim::seconds(2.0));
  EXPECT_EQ(v.kind, Kind::kClean);
}

}  // namespace
}  // namespace icpda::core
