#include "service/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace icpda::service {

namespace {
/// Mask check mirroring HelloMsg::allows (empty mask = everyone).
bool mask_allows(const net::Bytes& mask, net::NodeId id) {
  if (mask.empty()) return true;
  const std::size_t byte = id / 8;
  if (byte >= mask.size()) return false;
  return (mask[byte] >> (id % 8)) & 1;
}
}  // namespace

Dispatcher::Dispatcher(net::Network& net, ServiceConfig config,
                       const crypto::KeyScheme* keys,
                       proto::ReadingProvider readings)
    : net_(net), config_(std::move(config)) {
  if (net_.shard_count() > 1) {
    // The dispatcher drives net.scheduler() directly (arrivals, drain
    // grace, completion callbacks), which is a detached empty heap in a
    // sharded Network — the run would silently hang at t=0.
    throw std::invalid_argument(
        "service::Dispatcher requires an unsharded Network (shards == 1)");
  }
  state_.readings = std::move(readings);
  state_.keys = keys;
  state_.seed = config_.seed;
  nominal_s_ = nominal_epoch_s(config_.protocol);
  // Exact ground truth over the allowed sensors (the BS, node 0, never
  // contributes a reading).
  for (net::NodeId id = 1; id < net_.size(); ++id) {
    if (!mask_allows(config_.allowed_mask, id)) continue;
    truth_.merge(proto::Aggregate::of(state_.readings(id)));
    ++allowed_sensors_;
  }
}

bool Dispatcher::misses_deadline(const QueryDescriptor& q) const {
  const double finish_at = net_.scheduler().now().seconds() + nominal_s_;
  return finish_at > q.arrival.seconds() + q.deadline_s;
}

std::uint32_t Dispatcher::count(QueryStatus s) const {
  std::uint32_t n = 0;
  for (const auto& r : records_) {
    if (r.status == s) ++n;
  }
  return n;
}

void Dispatcher::arrive(const QueryDescriptor& q) {
  net_.metrics().add("service.arrival");
  if (in_flight_ < config_.max_in_flight) {
    if (misses_deadline(q)) {
      drop(q, QueryStatus::kDroppedDeadline);
    } else {
      launch(q);
    }
    return;
  }
  if (waiting_.size() < config_.max_queue) {
    waiting_.push_back(q);
    net_.metrics().add("service.queued");
    return;
  }
  drop(q, QueryStatus::kRejectedQueue);
}

void Dispatcher::launch(const QueryDescriptor& q) {
  auto [it, inserted] = state_.queries.try_emplace(q.id);
  ActiveQuery& query = it->second;
  query.descriptor = q;
  query.config = config_.protocol;
  query.config.query_id = q.id;
  query.config.allowed_mask = q.allowed_mask;
  query.config.trace_query_spans = config_.trace_query_spans;
  query.active = true;
  ++in_flight_;

  const sim::SimTime now = net_.scheduler().now();
  CompletionRecord rec;
  rec.id = q.id;
  rec.kind = q.kind;
  rec.arrival = q.arrival;
  rec.launched = now;
  records_.push_back(rec);  // filled in by complete()

  net_.metrics().add("service.launched");
  net_.metrics().observe("service.queue_wait_s",
                         (now - q.arrival).seconds());
  net_.tracer().counter(sim::kTraceGlobalNode, sim::TraceCounter::kQueryLaunch,
                        q.id, now);

  auto& bs = net_.node(net_.base_station());
  static_cast<QueryMux*>(bs.app())->launch(bs, query);
  net_.scheduler().after(sim::seconds(nominal_s_ + config_.drain_grace_s),
                         [this, qid = q.id] { complete(qid); });
}

void Dispatcher::drop(const QueryDescriptor& q, QueryStatus status) {
  CompletionRecord rec;
  rec.id = q.id;
  rec.kind = q.kind;
  rec.status = status;
  rec.arrival = q.arrival;
  records_.push_back(rec);
  net_.metrics().add(status == QueryStatus::kRejectedQueue
                         ? "service.rejected_queue"
                         : "service.dropped_deadline");
  net_.tracer().counter(sim::kTraceGlobalNode, sim::TraceCounter::kQueryDrop,
                        q.id, net_.scheduler().now());
}

void Dispatcher::complete(std::uint32_t query_id) {
  ActiveQuery* query = state_.find(query_id);
  if (query == nullptr || !query->active) return;
  query->active = false;
  --in_flight_;

  CompletionRecord* rec = nullptr;
  for (auto& r : records_) {
    if (r.id == query_id) {
      rec = &r;
      break;
    }
  }
  if (rec != nullptr) {
    const core::IcpdaOutcome& out = query->outcome;
    rec->status = QueryStatus::kCompleted;
    rec->closed = out.closed_at;
    rec->latency_s = (out.closed_at - rec->arrival).seconds();
    rec->settle_s = out.last_report_at > rec->launched
                        ? (out.last_report_at - rec->launched).seconds()
                        : 0.0;
    const proto::Aggregate result =
        out.result ? *out.result : proto::Aggregate{};
    rec->value = finish_aggregate(rec->kind, result);
    rec->abs_error = std::abs(rec->value - finish_aggregate(rec->kind, truth_));
    rec->coverage = allowed_sensors_ > 0
                        ? result.count / static_cast<double>(allowed_sensors_)
                        : 0.0;
    rec->accepted = out.accepted();
    rec->outcome = out;
  }
  net_.metrics().add("service.completed");
  net_.tracer().counter(sim::kTraceGlobalNode, sim::TraceCounter::kQueryComplete,
                        query_id, net_.scheduler().now());
  pump();
}

void Dispatcher::pump() {
  while (in_flight_ < config_.max_in_flight && !waiting_.empty()) {
    const QueryDescriptor q = waiting_.front();
    waiting_.pop_front();
    if (misses_deadline(q)) {
      drop(q, QueryStatus::kDroppedDeadline);
      continue;
    }
    launch(q);
  }
}

sim::SimTime Dispatcher::run() {
  if (ran_) return net_.scheduler().now();
  ran_ = true;

  net_.attach_apps(
      [this](net::Node&) { return std::make_unique<QueryMux>(&state_); });

  // Poisson-by-seed arrival schedule, generated up front: the whole
  // offered-traffic process is a pure function of (seed, load, count).
  sim::Rng arrivals(sim::seed_mix(config_.seed, 0xA221BA15, config_.query_count));
  std::vector<QueryDescriptor> schedule;
  schedule.reserve(config_.query_count);
  double t = 0.0;
  for (std::uint32_t i = 0; i < config_.query_count; ++i) {
    t += arrivals.exponential(std::max(config_.offered_load_qps, 1e-9));
    QueryDescriptor q;
    q.id = i + 1;  // 0 is reserved (peek_query_id's "unreadable")
    q.kind = config_.kind_cycle.empty()
                 ? AggregateKind::kSum
                 : config_.kind_cycle[i % config_.kind_cycle.size()];
    q.arrival = sim::seconds(t);
    q.deadline_s = config_.deadline_s;
    q.allowed_mask = config_.allowed_mask;
    schedule.push_back(q);
    net_.scheduler().at(q.arrival, [this, q] { arrive(q); });
  }

  // Worst-case horizon: even fully serialized (one slot), every query
  // either finishes or is dropped by then. A hard bound keeps any
  // congestion pathology from running the simulation forever.
  double bound = 0.0;
  for (const auto& q : schedule) {
    bound = std::max(bound, q.arrival.seconds()) + nominal_s_ +
            config_.drain_grace_s;
  }
  net_.run(sim::seconds(bound + 5.0));
  // Balance the trace (close stray spans) and stamp the run boundary.
  net_.tracer().finalize_epoch(net_.scheduler().now());

  std::sort(records_.begin(), records_.end(),
            [](const CompletionRecord& a, const CompletionRecord& b) {
              return a.id < b.id;
            });
  return net_.scheduler().now();
}

double latency_percentile(const std::vector<CompletionRecord>& records, double p) {
  std::vector<double> lat;
  lat.reserve(records.size());
  for (const auto& r : records) {
    if (r.status == QueryStatus::kCompleted) lat.push_back(r.latency_s);
  }
  if (lat.empty()) return 0.0;
  std::sort(lat.begin(), lat.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(lat.size() - 1);
  // Linear interpolation between closest ranks (exact for p50 on odd n).
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, lat.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return lat[lo] + (lat[hi] - lat[lo]) * frac;
}

}  // namespace icpda::service
