// Per-node query multiplexer: routes frames to per-query protocol
// instances.
//
// Under the continuous-query service a node participates in several
// overlapping epochs at once — Phase I of query k+1 on the air while
// Phase III of query k is still ascending the tree. The QueryMux is
// the one net::App attached per node; it peeks the QueryId prefix
// every payload carries (proto::peek_query_id, the wire invariant) and
// dispatches the frame to that query's core::IcpdaApp instance,
// created lazily on first contact. Frames naming unknown or retired
// queries are dropped before any decoder runs. The IcpdaApp handlers'
// own query_id filter stays in place beneath this as defense in depth.
//
// Lifetime: protocol code schedules timers capturing raw `this`, so a
// per-query instance is NEVER destroyed while the simulation can still
// fire events — retired queries merely stop receiving frames (their
// stray timers fire into silence) and the instances are reclaimed when
// the dispatcher goes away after the run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/icpda.h"
#include "service/query.h"
#include "sim/rng.h"

namespace icpda::service {

/// One in-flight (or retired) query as the mux sees it: the per-query
/// protocol configuration and the shared outcome every node's instance
/// writes into. Entries live in a std::map so their addresses are
/// stable for the lifetime of the run.
struct ActiveQuery {
  QueryDescriptor descriptor;
  core::IcpdaConfig config;  ///< protocol config with query_id stamped
  core::IcpdaOutcome outcome;
  bool active = false;  ///< routing gate: retired queries drop frames
};

/// State shared by every node's mux, owned by the Dispatcher.
struct ServiceState {
  std::map<std::uint32_t, ActiveQuery> queries;
  proto::ReadingProvider readings;
  const crypto::KeyScheme* keys = nullptr;
  /// Seed salt for per-(node, query) protocol randomness.
  std::uint64_t seed = 1;
  /// Benign service runs mount no attack; one shared empty plan.
  core::AttackPlan no_attack;

  [[nodiscard]] ActiveQuery* find(std::uint32_t query_id) {
    const auto it = queries.find(query_id);
    return it == queries.end() ? nullptr : &it->second;
  }
};

/// Deterministic per-(node, query) protocol RNG seed. Derived from
/// (service seed, node, query) alone — NOT from the node's live RNG
/// stream — so a query's coin flips, jitters and share coefficients do
/// not depend on what other queries happen to be in flight. That
/// independence is the pipelined-vs-serial determinism contract.
[[nodiscard]] inline std::uint64_t query_rng_seed(std::uint64_t service_seed,
                                                 std::uint32_t node_id,
                                                 std::uint32_t query_id) {
  return sim::seed_mix(sim::seed_mix(service_seed, 0x53525643 /*'SRVC'*/, query_id),
                       node_id, 0x9E3779B97F4A7C15ULL);
}

class QueryMux final : public net::App {
 public:
  explicit QueryMux(ServiceState* state) : state_(state) {}

  /// Nothing to do at simulation start: epochs are opened per query by
  /// the Dispatcher calling launch() on the base station's mux.
  void start(net::Node&) override {}

  void on_receive(net::Node& node, const net::Frame& frame) override;
  void on_overhear(net::Node& node, const net::Frame& frame) override;
  void on_send_failed(net::Node& node, const net::Frame& frame) override;

  /// Base station only: create this query's instance and open its
  /// epoch (the flood is scheduled start_delay_s from now).
  void launch(net::Node& node, ActiveQuery& query);

  /// Instances created on this node so far (introspection for tests).
  [[nodiscard]] std::size_t instance_count() const { return instances_.size(); }
  [[nodiscard]] core::IcpdaApp* instance_for(std::uint32_t query_id) {
    const auto it = instances_.find(query_id);
    return it == instances_.end() ? nullptr : it->second.app.get();
  }

 private:
  struct Instance {
    std::unique_ptr<sim::Rng> rng;  ///< outlives the app (app holds a ptr)
    std::unique_ptr<core::IcpdaApp> app;
  };

  /// Get-or-create the per-query protocol instance on this node.
  core::IcpdaApp& instance(net::Node& node, ActiveQuery& query);
  /// Route one frame; returns the target app or nullptr (dropped).
  core::IcpdaApp* route(net::Node& node, const net::Frame& frame);

  ServiceState* state_;
  std::map<std::uint32_t, Instance> instances_;
};

}  // namespace icpda::service
