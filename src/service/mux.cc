#include "service/mux.h"

namespace icpda::service {

const char* aggregate_kind_name(AggregateKind k) {
  switch (k) {
    case AggregateKind::kSum: return "sum";
    case AggregateKind::kAvg: return "avg";
    case AggregateKind::kVar: return "var";
  }
  return "invalid";
}

const char* query_status_name(QueryStatus s) {
  switch (s) {
    case QueryStatus::kCompleted: return "completed";
    case QueryStatus::kDroppedDeadline: return "dropped_deadline";
    case QueryStatus::kRejectedQueue: return "rejected_queue";
  }
  return "invalid";
}

double finish_aggregate(AggregateKind kind, const proto::Aggregate& a) {
  switch (kind) {
    case AggregateKind::kSum: return a.sum;
    case AggregateKind::kAvg: return a.mean();
    case AggregateKind::kVar: return a.variance();
  }
  return 0.0;
}

core::IcpdaApp& QueryMux::instance(net::Node& node, ActiveQuery& query) {
  const std::uint32_t qid = query.config.query_id;
  auto it = instances_.find(qid);
  if (it == instances_.end()) {
    Instance inst;
    inst.rng = std::make_unique<sim::Rng>(
        query_rng_seed(state_->seed, node.id(), qid));
    inst.app = std::make_unique<core::IcpdaApp>(
        query.config, state_->readings, state_->keys, &state_->no_attack,
        &query.outcome, /*adversary=*/nullptr, /*adv=*/nullptr, inst.rng.get());
    it = instances_.emplace(qid, std::move(inst)).first;
    node.metrics().add("service.instance_created");
  }
  return *it->second.app;
}

core::IcpdaApp* QueryMux::route(net::Node& node, const net::Frame& frame) {
  const std::uint32_t qid = proto::peek_query_id(frame.payload);
  if (qid == 0) {
    node.metrics().add("service.frame_unreadable");
    return nullptr;
  }
  ActiveQuery* query = state_->find(qid);
  if (query == nullptr) {
    node.metrics().add("service.frame_unknown_query");
    return nullptr;
  }
  if (!query->active) {
    node.metrics().add("service.frame_retired_query");
    return nullptr;
  }
  return &instance(node, *query);
}

void QueryMux::on_receive(net::Node& node, const net::Frame& frame) {
  if (auto* app = route(node, frame)) app->on_receive(node, frame);
}

void QueryMux::on_overhear(net::Node& node, const net::Frame& frame) {
  if (auto* app = route(node, frame)) app->on_overhear(node, frame);
}

void QueryMux::on_send_failed(net::Node& node, const net::Frame& frame) {
  if (auto* app = route(node, frame)) app->on_send_failed(node, frame);
}

void QueryMux::launch(net::Node& node, ActiveQuery& query) {
  instance(node, query).start(node);
}

}  // namespace icpda::service
