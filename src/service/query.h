// Continuous-query service: query descriptors and completion records.
//
// The paper evaluates iCPDA one query epoch at a time; the service
// layer (DESIGN.md §5h) treats aggregation as a *network service*
// instead — an open-loop stream of SUM/AVG/VAR queries multiplexed
// over one deployment, each query running the full three-phase
// protocol under its own QueryId. This header holds the value types
// shared by the dispatcher, the per-node mux and the benches: what a
// query asks for, and what became of it.
#pragma once

#include <cstdint>

#include "core/icpda.h"
#include "net/wire.h"
#include "proto/aggregate.h"
#include "sim/time.h"

namespace icpda::service {

/// Aggregate a query asks for. All three are finishers over the same
/// (count, sum, sum_sq) moment triple the protocol already carries, so
/// the wire format and the share algebra are kind-agnostic: only the
/// finisher applied to the accepted triple differs.
enum class AggregateKind : std::uint8_t {
  kSum = 0,
  kAvg = 1,
  kVar = 2,
};

[[nodiscard]] const char* aggregate_kind_name(AggregateKind k);

/// Apply a query's finisher to an accepted moment triple.
[[nodiscard]] double finish_aggregate(AggregateKind kind,
                                      const proto::Aggregate& a);

/// One query as submitted to the service (before admission).
struct QueryDescriptor {
  /// Service-assigned id, >= 1 (0 is reserved: peek_query_id returns 0
  /// for unreadable payloads). Stamped into every frame of the query's
  /// epoch via IcpdaConfig::query_id.
  std::uint32_t id = 0;
  AggregateKind kind = AggregateKind::kSum;
  /// When the query entered the system (open-loop arrival process).
  sim::SimTime arrival;
  /// Completion deadline, measured from arrival. A query that cannot
  /// finish its (fixed-length) epoch before the deadline is dropped at
  /// admission rather than launched late.
  double deadline_s = 30.0;
  /// Optional node-subset restriction (bit per node id, empty = all
  /// sensors) — rides the query flood as HelloMsg::allowed_mask.
  net::Bytes allowed_mask;
};

/// Terminal state of a query.
enum class QueryStatus : std::uint8_t {
  /// Ran a full epoch; `outcome` holds the base station's view.
  kCompleted = 0,
  /// Dropped by admission: even launched immediately it could not have
  /// closed its epoch before the deadline (queueing delay ate it).
  kDroppedDeadline = 1,
  /// Rejected on arrival: the waiting queue was already full.
  kRejectedQueue = 2,
};

[[nodiscard]] const char* query_status_name(QueryStatus s);

/// Per-query completion record, the service's unit of accounting.
struct CompletionRecord {
  std::uint32_t id = 0;
  AggregateKind kind = AggregateKind::kSum;
  QueryStatus status = QueryStatus::kCompleted;
  sim::SimTime arrival;
  sim::SimTime launched;   ///< zero unless the query launched
  sim::SimTime closed;     ///< epoch close time (completed only)
  /// closed - arrival: queueing delay + the epoch itself.
  double latency_s = 0.0;
  /// Last report to reach the BS, relative to launch (settle time):
  /// how much of the fixed epoch budget the traffic actually used.
  double settle_s = 0.0;
  /// The query's finished answer (finish_aggregate over the result).
  double value = 0.0;
  /// |value - ground truth| where ground truth applies the same
  /// finisher to the exact triple over the allowed sensors.
  double abs_error = 0.0;
  /// result.count / allowed sensors (1.0 = every reading arrived).
  double coverage = 0.0;
  /// Integrity verdict (no significant tamper alarms).
  bool accepted = false;
  /// Full base-station outcome (completed queries only).
  core::IcpdaOutcome outcome;
};

/// Nominal epoch duration under `config`: flood launch + Phase II
/// budget + the depth-scheduled close delay. The epoch clock is fixed
/// by configuration (close_epoch fires unconditionally), so this is
/// exact, which is what makes the admission deadline test exact too.
[[nodiscard]] inline double nominal_epoch_s(const core::IcpdaConfig& config) {
  return config.timing.start_delay_s + config.phase2_budget_s +
         config.timing.close_delay().seconds();
}

}  // namespace icpda::service
