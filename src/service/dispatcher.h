// Continuous-query dispatcher: open-loop arrivals, admission control,
// pipelined epochs, per-query completion records.
//
// The Dispatcher owns one service run over one Network. It draws a
// Poisson-by-seed arrival schedule of query descriptors, admits them
// against a max-in-flight cap with a deadline-based drop policy, opens
// each admitted query's epoch at the base station (per-query QueryId,
// routed by the QueryMux on every node) and writes one
// CompletionRecord per query. Epochs overlap freely: the per-node
// protocol state is per-query (the mux's instance map), per-query
// randomness is derived from (seed, node, query) alone, and the epoch
// clock is fixed by configuration — so a run is a deterministic
// function of (network config, service config), byte-stable across
// campaign thread counts.
//
// Admission semantics (DESIGN.md §5h): an arriving query launches
// immediately if a slot is free, otherwise waits FIFO (bounded queue;
// overflow = rejected). At every launch opportunity the head of the
// queue is checked against its deadline — the epoch length is known
// exactly in advance, so "cannot finish in time" is decidable at
// launch and such queries are dropped instead of launched late.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "crypto/keys.h"
#include "net/network.h"
#include "service/mux.h"
#include "service/query.h"

namespace icpda::service {

struct ServiceConfig {
  /// Base protocol configuration; query_id / allowed_mask /
  /// trace_query_spans are overwritten per query.
  core::IcpdaConfig protocol;
  /// Open-loop Poisson arrival rate, queries per second.
  double offered_load_qps = 0.2;
  /// Total arrivals to generate.
  std::uint32_t query_count = 20;
  /// Admission: concurrent epochs allowed.
  std::uint32_t max_in_flight = 2;
  /// Waiting-room bound; arrivals beyond it are rejected outright.
  std::size_t max_queue = 32;
  /// Completion deadline per query, seconds from arrival.
  double deadline_s = 30.0;
  /// Arrival-process seed and per-(node, query) protocol RNG salt.
  std::uint64_t seed = 1;
  /// Post-close drain per query before its record is cut (mirrors the
  /// single-epoch runner's grace for straggler alarms).
  double drain_grace_s = 3.0;
  /// Stamp query ids on protocol phase spans (see IcpdaConfig).
  bool trace_query_spans = false;
  /// Aggregate kinds assigned round-robin by arrival index.
  std::vector<AggregateKind> kind_cycle{AggregateKind::kSum,
                                        AggregateKind::kAvg,
                                        AggregateKind::kVar};
  /// Node-subset restriction applied to every query (empty = all).
  net::Bytes allowed_mask;
};

class Dispatcher {
 public:
  /// `keys` and `readings` must outlive the run.
  Dispatcher(net::Network& net, ServiceConfig config,
             const crypto::KeyScheme* keys, proto::ReadingProvider readings);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Attach the muxes, schedule the arrival process and run the
  /// network until every query is resolved (bounded horizon). Call
  /// once. Returns simulated end time.
  sim::SimTime run();

  /// One record per generated query, sorted by query id.
  [[nodiscard]] const std::vector<CompletionRecord>& records() const {
    return records_;
  }

  [[nodiscard]] std::uint32_t completed() const { return count(QueryStatus::kCompleted); }
  [[nodiscard]] std::uint32_t dropped() const { return count(QueryStatus::kDroppedDeadline); }
  [[nodiscard]] std::uint32_t rejected() const { return count(QueryStatus::kRejectedQueue); }

  /// Shared mux state (introspection for tests).
  [[nodiscard]] ServiceState& state() { return state_; }

 private:
  void arrive(const QueryDescriptor& q);
  void launch(const QueryDescriptor& q);
  void drop(const QueryDescriptor& q, QueryStatus status);
  void complete(std::uint32_t query_id);
  /// Launch from the waiting queue while slots are free, dropping
  /// entries whose deadline can no longer be met.
  void pump();
  [[nodiscard]] bool misses_deadline(const QueryDescriptor& q) const;
  [[nodiscard]] std::uint32_t count(QueryStatus s) const;

  net::Network& net_;
  ServiceConfig config_;
  ServiceState state_;
  std::deque<QueryDescriptor> waiting_;
  std::vector<CompletionRecord> records_;
  std::uint32_t in_flight_ = 0;
  bool ran_ = false;
  double nominal_s_ = 0.0;        ///< exact epoch length (nominal_epoch_s)
  proto::Aggregate truth_;        ///< exact triple over allowed sensors
  std::size_t allowed_sensors_ = 0;
};

/// Exact nearest-rank percentile of completed-query latency (p in
/// [0, 100]); 0 when nothing completed. Benches feed this per cell so
/// the reported p50/p99 are exact, not streaming approximations.
[[nodiscard]] double latency_percentile(const std::vector<CompletionRecord>& records,
                                        double p);

}  // namespace icpda::service
