// trace_report: fold a trace JSONL file into per-phase tables.
//
// Usage: trace_report <trace.jsonl> [--chrome <out.json>]
//
// Reads the event schema emitted by analysis::write_trace_jsonl (one
// object per line; `# ...` comment lines skipped), prints the
// per-epoch / per-node phase table plus the trace digest, and can
// additionally convert the trace to Chrome trace_event JSON for
// about:tracing / Perfetto.
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/trace_report.h"

namespace {

int usage() {
  std::fprintf(stderr, "usage: trace_report <trace.jsonl> [--chrome <out.json>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string chrome_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chrome") {
      if (i + 1 >= argc) return usage();
      chrome_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (input.empty()) return usage();

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", input.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    const auto events = icpda::analysis::read_trace_jsonl(buffer.str());
    const auto report = icpda::analysis::fold_trace(events);
    std::fputs(icpda::analysis::render_report(report).c_str(), stdout);
    std::printf("digest=%016" PRIx64 "\n", icpda::analysis::trace_digest(events));
    if (!chrome_out.empty()) {
      std::ofstream out(chrome_out);
      if (!out) {
        std::fprintf(stderr, "trace_report: cannot write %s\n", chrome_out.c_str());
        return 1;
      }
      out << icpda::analysis::chrome_trace_json(events);
      std::printf("chrome trace written to %s\n", chrome_out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
