#include "analysis/models.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace icpda::analysis {

double expected_degree(const net::Field& field, std::size_t n, double range) {
  return field.expected_degree(n, range);
}

namespace {
/// Area of the intersection of disc(center, r) with the field,
/// evaluated by 1D integration over x of the chord heights clipped to
/// the field's y-extent.
double clipped_disc_area(const net::Field& field, const net::Point& c, double r,
                         std::size_t steps = 256) {
  const double x_lo = std::max(0.0, c.x - r);
  const double x_hi = std::min(field.width(), c.x + r);
  if (x_hi <= x_lo) return 0.0;
  const double dx = (x_hi - x_lo) / static_cast<double>(steps);
  double area = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double x = x_lo + (static_cast<double>(i) + 0.5) * dx;
    const double half = std::sqrt(std::max(0.0, r * r - (x - c.x) * (x - c.x)));
    const double y_lo = std::max(0.0, c.y - half);
    const double y_hi = std::min(field.height(), c.y + half);
    area += std::max(0.0, y_hi - y_lo) * dx;
  }
  return area;
}
}  // namespace

double expected_degree_border_corrected(const net::Field& field, std::size_t n,
                                        double range, std::size_t grid) {
  if (n < 2) return 0.0;
  double mean_area = 0.0;
  const double dx = field.width() / static_cast<double>(grid);
  const double dy = field.height() / static_cast<double>(grid);
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = 0; j < grid; ++j) {
      const net::Point p{(static_cast<double>(i) + 0.5) * dx,
                         (static_cast<double>(j) + 0.5) * dy};
      mean_area += clipped_disc_area(field, p, range);
    }
  }
  mean_area /= static_cast<double>(grid * grid);
  return static_cast<double>(n - 1) * mean_area / field.area();
}

double expected_cluster_size(double pc) {
  if (pc <= 0.0 || pc > 1.0) {
    throw std::invalid_argument("expected_cluster_size: pc in (0,1]");
  }
  return 1.0 / pc;
}

double lone_head_probability(double pc, double avg_degree) {
  if (pc <= 0.0 || pc > 1.0) {
    throw std::invalid_argument("lone_head_probability: pc in (0,1]");
  }
  const double heads_heard_by_neighbor = 1.0 + std::max(0.0, avg_degree - 1.0) * pc;
  const double p_joins_me = (1.0 - pc) / heads_heard_by_neighbor;
  return std::pow(1.0 - p_joins_me, avg_degree);
}

double cpda_disclosure_probability(std::size_t m, double px) {
  if (m < 2) return 1.0;
  return std::pow(px, 2.0 * static_cast<double>(m - 1));
}

double cpda_collusion_disclosure(std::size_t m, std::size_t colluders) {
  if (m < 2) return 1.0;
  return colluders >= m - 1 ? 1.0 : 0.0;
}

double smart_disclosure_probability(std::size_t l, std::size_t incoming, double px) {
  if (l < 2) return 1.0;
  return std::pow(px, static_cast<double>(l - 1 + incoming));
}

double tag_messages_per_node() { return 2.0; }

double icpda_messages_per_node(double pc, std::size_t f_repeats) {
  const double m = expected_cluster_size(pc);
  // HELLO re-broadcast:                 1
  // ClusterHello (heads) / Join (rest): pc + (1 - pc)
  // Roster broadcast (heads):           pc
  // Encrypted shares:                   m - 1
  // F announce (members only):          1 - pc
  // Digest broadcasts (heads):          pc * f_repeats
  // Tree report (heads + relays; upper bound 1):  1
  return 1.0 + 1.0 + pc + (m - 1.0) + (1.0 - pc) +
         pc * static_cast<double>(f_repeats) + 1.0;
}

double smart_messages_per_node(std::size_t l) {
  return tag_messages_per_node() + static_cast<double>(l - 1);
}

double witness_hears_child_probability() {
  // P(|P1 - P2| <= r) for P1, P2 i.i.d. uniform in a disc of radius r:
  // from the disc line-picking CDF, P = 1 - 3*sqrt(3)/(4*pi) ≈ 0.5865.
  return 1.0 - 3.0 * std::numbers::sqrt3 / (4.0 * std::numbers::pi);
}

double detection_probability(std::size_t witnesses, std::size_t children) {
  const double q = witness_hears_child_probability();
  const double full_view = std::pow(q, static_cast<double>(children));
  return 1.0 - std::pow(1.0 - full_view, static_cast<double>(witnesses));
}

}  // namespace icpda::analysis
