#include "analysis/trace_report.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace icpda::analysis {

using sim::TraceCounter;
using sim::TraceEvent;
using sim::TracePhase;

void PhaseStat::merge(const PhaseStat& o) {
  tx_bytes += o.tx_bytes;
  rx_bytes += o.rx_bytes;
  collision_bytes += o.collision_bytes;
  loss_bytes += o.loss_bytes;
  drop_bytes += o.drop_bytes;
  backoff_slots += o.backoff_slots;
  spans += o.spans;
  busy_s += o.busy_s;
}

std::uint64_t TraceReport::epoch_tx_bytes(std::uint16_t epoch) const {
  const auto it = per_epoch.find(epoch);
  if (it == per_epoch.end()) return 0;
  std::uint64_t total = 0;
  for (const PhaseStat& s : it->second) total += s.tx_bytes;
  return total;
}

namespace {

struct OpenSpan {
  TracePhase phase;
  double begin_t;
};

void add_counter(PhaseStat& stat, TraceCounter c, std::uint64_t value) {
  switch (c) {
    case TraceCounter::kTxBytes: stat.tx_bytes += value; break;
    case TraceCounter::kRxBytes: stat.rx_bytes += value; break;
    case TraceCounter::kCollisionBytes: stat.collision_bytes += value; break;
    case TraceCounter::kLossBytes: stat.loss_bytes += value; break;
    case TraceCounter::kBackoffSlots: stat.backoff_slots += value; break;
    case TraceCounter::kDropBytes: stat.drop_bytes += value; break;
    case TraceCounter::kReroute:
    case TraceCounter::kBackupReport:
    case TraceCounter::kAdversaryAction:
    case TraceCounter::kAdversaryDetect:
    case TraceCounter::kQueryLaunch:
    case TraceCounter::kQueryComplete:
    case TraceCounter::kQueryDrop:
    case TraceCounter::kShardRounds:
    case TraceCounter::kShardGateRounds:
    case TraceCounter::kShardGateEvents:
    case TraceCounter::kShardParallelEvents:
    case TraceCounter::kMaxCounter:
      break;  // occurrence counters: no byte bucket
  }
}

}  // namespace

TraceReport fold_trace(const std::vector<TraceEvent>& events) {
  TraceReport report;
  std::map<std::uint32_t, std::vector<OpenSpan>> stacks;
  for (const TraceEvent& ev : events) {
    ++report.events;
    auto& epoch_row = report.per_epoch[ev.epoch];
    auto& node_row = report.per_node[ev.node];
    auto& stack = stacks[ev.node];
    switch (ev.kind) {
      case TraceEvent::Kind::kBegin:
        stack.push_back(OpenSpan{static_cast<TracePhase>(ev.tag), ev.t});
        break;
      case TraceEvent::Kind::kEnd: {
        const auto phase = static_cast<TracePhase>(ev.tag);
        if (stack.empty() || stack.back().phase != phase) {
          // The matching begin was overwritten by ring wrap (or the
          // excerpt was truncated): count it, don't guess.
          ++report.unmatched_ends;
          break;
        }
        const std::size_t idx = static_cast<std::size_t>(ev.tag);
        const double dur = ev.t - stack.back().begin_t;
        epoch_row[idx].spans += 1;
        epoch_row[idx].busy_s += dur;
        node_row[idx].spans += 1;
        node_row[idx].busy_s += dur;
        stack.pop_back();
        break;
      }
      case TraceEvent::Kind::kCounter: {
        const TracePhase phase =
            stack.empty() ? TracePhase::kNone : stack.back().phase;
        const std::size_t idx = static_cast<std::size_t>(phase);
        add_counter(epoch_row[idx], static_cast<TraceCounter>(ev.tag), ev.value);
        add_counter(node_row[idx], static_cast<TraceCounter>(ev.tag), ev.value);
        break;
      }
      case TraceEvent::Kind::kMarker:
        break;  // epoch boundary: the epoch field already partitions
    }
  }
  return report;
}

std::uint64_t trace_digest(const std::vector<TraceEvent>& events) {
  // FNV-1a-64 over every field, doubles by bit pattern: any decimal
  // formatting here would make the digest depend on printf rounding.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const TraceEvent& ev : events) {
    mix(std::bit_cast<std::uint64_t>(ev.t));
    mix(ev.seq);
    mix(ev.value);
    mix(ev.node);
    mix(static_cast<std::uint64_t>(ev.kind));
    mix(ev.tag);
    mix(ev.epoch);
  }
  return h;
}

std::uint64_t canonical_trace_digest(const std::vector<TraceEvent>& events) {
  // Per-node FNV-1a-64 folds (seq excluded), combined ascending by
  // node id. map keeps the combine order independent of the order
  // nodes first appear in the stream.
  std::map<std::uint32_t, std::uint64_t> per_node;
  for (const TraceEvent& ev : events) {
    auto [it, inserted] = per_node.try_emplace(ev.node, 1469598103934665603ULL);
    std::uint64_t& h = it->second;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 1099511628211ULL;
      }
    };
    mix(std::bit_cast<std::uint64_t>(ev.t));
    mix(ev.value);
    mix(static_cast<std::uint64_t>(ev.kind));
    mix(ev.tag);
    mix(ev.epoch);
  }
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [node, fold] : per_node) {
    mix(node);
    mix(fold);
  }
  return h;
}

std::string format_trace_event(const TraceEvent& ev) {
  const char* tag_name = "epoch_mark";
  if (ev.kind == TraceEvent::Kind::kBegin || ev.kind == TraceEvent::Kind::kEnd) {
    tag_name = sim::trace_phase_name(static_cast<TracePhase>(ev.tag));
  } else if (ev.kind == TraceEvent::Kind::kCounter) {
    tag_name = sim::trace_counter_name(static_cast<TraceCounter>(ev.tag));
  }
  char node_buf[16];
  if (ev.node == sim::kTraceGlobalNode) {
    std::snprintf(node_buf, sizeof(node_buf), "global");
  } else {
    std::snprintf(node_buf, sizeof(node_buf), "%" PRIu32, ev.node);
  }
  char line[160];
  std::snprintf(line, sizeof(line),
                "seq=%" PRIu64 " t=%.9f ep=%u node=%s %s %s v=%" PRIu64,
                ev.seq, ev.t, ev.epoch, node_buf, sim::trace_kind_name(ev.kind),
                tag_name, ev.value);
  return line;
}

std::optional<std::size_t> first_divergence(const std::vector<TraceEvent>& a,
                                            const std::vector<TraceEvent>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) return i;
  }
  if (a.size() != b.size()) return n;
  return std::nullopt;
}

std::string trace_excerpt(const std::vector<TraceEvent>& events,
                          std::size_t max_events) {
  std::string out;
  const std::size_t n = std::min(events.size(), max_events);
  for (std::size_t i = 0; i < n; ++i) {
    out += format_trace_event(events[i]);
    out += '\n';
  }
  return out;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  // Durations in chrome://tracing are microseconds.
  std::string out = "[";
  bool first = true;
  char buf[256];
  for (const TraceEvent& ev : events) {
    const double ts_us = ev.t * 1e6;
    const std::uint32_t tid = ev.node;
    switch (ev.kind) {
      case TraceEvent::Kind::kBegin:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":0,"
                      "\"tid\":%" PRIu32 "}",
                      sim::trace_phase_name(static_cast<TracePhase>(ev.tag)),
                      ts_us, tid);
        break;
      case TraceEvent::Kind::kEnd:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":0,"
                      "\"tid\":%" PRIu32 ",\"args\":{\"reason\":%" PRIu64 "}}",
                      sim::trace_phase_name(static_cast<TracePhase>(ev.tag)),
                      ts_us, tid, ev.value);
        break;
      case TraceEvent::Kind::kCounter:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":0,"
                      "\"tid\":%" PRIu32 ",\"args\":{\"value\":%" PRIu64 "}}",
                      sim::trace_counter_name(static_cast<TraceCounter>(ev.tag)),
                      ts_us, tid, ev.value);
        break;
      case TraceEvent::Kind::kMarker:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"epoch_%" PRIu64 "\",\"ph\":\"i\",\"ts\":%.3f,"
                      "\"pid\":0,\"tid\":%" PRIu32 ",\"s\":\"g\"}",
                      ev.value, ts_us, tid);
        break;
    }
    if (!first) out += ',';
    first = false;
    out += buf;
  }
  out += "]";
  return out;
}

void write_trace_jsonl(const std::vector<TraceEvent>& events,
                       runner::JsonlSink& sink) {
  for (const TraceEvent& ev : events) {
    runner::JsonRow row;
    row.num("seq", ev.seq)
        .num("t", ev.t, 9)
        .num("t_bits", std::bit_cast<std::uint64_t>(ev.t))
        .str("kind", sim::trace_kind_name(ev.kind))
        .num("node", static_cast<std::uint64_t>(ev.node))
        .num("tag", static_cast<std::uint64_t>(ev.tag))
        .num("value", ev.value)
        .num("epoch", static_cast<std::uint64_t>(ev.epoch));
    sink.write(row);
  }
}

namespace {

/// Minimal field extractor for the flat, non-nested rows this module
/// itself writes. Returns the raw token after `"key":`.
std::string extract_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    throw std::runtime_error("trace jsonl: missing key '" + key + "'");
  }
  std::size_t start = pos + needle.size();
  while (start < line.size() && line[start] == ' ') ++start;
  std::size_t end = start;
  if (end < line.size() && line[end] == '"') {
    ++end;
    while (end < line.size() && line[end] != '"') ++end;
    return line.substr(start + 1, end - start - 1);
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

std::uint64_t extract_u64(const std::string& line, const std::string& key) {
  return std::strtoull(extract_field(line, key).c_str(), nullptr, 10);
}

}  // namespace

std::vector<TraceEvent> read_trace_jsonl(const std::string& text) {
  std::vector<TraceEvent> events;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    TraceEvent ev;
    ev.seq = extract_u64(line, "seq");
    ev.t = std::bit_cast<double>(extract_u64(line, "t_bits"));
    const std::string kind = extract_field(line, "kind");
    if (kind == "B") {
      ev.kind = TraceEvent::Kind::kBegin;
    } else if (kind == "E") {
      ev.kind = TraceEvent::Kind::kEnd;
    } else if (kind == "C") {
      ev.kind = TraceEvent::Kind::kCounter;
    } else if (kind == "M") {
      ev.kind = TraceEvent::Kind::kMarker;
    } else {
      throw std::runtime_error("trace jsonl: bad kind '" + kind + "'");
    }
    ev.node = static_cast<std::uint32_t>(extract_u64(line, "node"));
    ev.tag = static_cast<std::uint8_t>(extract_u64(line, "tag"));
    ev.value = extract_u64(line, "value");
    ev.epoch = static_cast<std::uint16_t>(extract_u64(line, "epoch"));
    events.push_back(ev);
  }
  return events;
}

std::string render_report(const TraceReport& report) {
  std::string out;
  char buf[256];
  const auto emit_row = [&](const char* scope_key, std::uint64_t scope,
                            std::size_t phase_idx, const PhaseStat& s) {
    if (s.tx_bytes == 0 && s.rx_bytes == 0 && s.collision_bytes == 0 &&
        s.loss_bytes == 0 && s.drop_bytes == 0 && s.backoff_slots == 0 &&
        s.spans == 0) {
      return;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s=%-6" PRIu64 " %-17s tx=%-8" PRIu64 " rx=%-8" PRIu64
                  " coll=%-7" PRIu64 " loss=%-7" PRIu64 " drop=%-7" PRIu64
                  " backoff=%-6" PRIu64 " spans=%-5" PRIu64 " busy=%.6fs\n",
                  scope_key, scope,
                  sim::trace_phase_name(static_cast<TracePhase>(phase_idx)),
                  s.tx_bytes, s.rx_bytes, s.collision_bytes, s.loss_bytes,
                  s.drop_bytes, s.backoff_slots, s.spans, s.busy_s);
    out += buf;
  };
  out += "== per-epoch phase totals ==\n";
  for (const auto& [epoch, row] : report.per_epoch) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) emit_row("epoch", epoch, p, row[p]);
  }
  out += "== per-node phase totals ==\n";
  for (const auto& [node, row] : report.per_node) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      emit_row("node", node == sim::kTraceGlobalNode ? 9999999 : node, p, row[p]);
    }
  }
  std::snprintf(buf, sizeof(buf), "events=%" PRIu64 " unmatched_ends=%" PRIu64 "\n",
                report.events, report.unmatched_ends);
  out += buf;
  return out;
}

}  // namespace icpda::analysis
