// Closed-form models from the paper's theoretical analysis, plus the
// reconstruction's own derivations. Each function documents its
// assumptions; the test suite cross-validates every model against the
// corresponding Monte-Carlo estimator (rank-test auditors, topology
// sampling), which is the strongest reproduction statement this
// repository makes about the analysis section.
#pragma once

#include <cstddef>

#include "net/geometry.h"

namespace icpda::analysis {

// ---- deployment ------------------------------------------------------

/// Expected node degree ignoring border effects:
/// (n-1) * pi r^2 / area.
[[nodiscard]] double expected_degree(const net::Field& field, std::size_t n,
                                     double range);

/// Expected node degree with border correction: the transmission disc
/// of a node near the field edge is clipped, so the mean neighbourhood
/// area is E_p[ area(disc(p, r) ∩ field) ]. Evaluated by numerical
/// integration over a `grid x grid` lattice of positions (the
/// integrand is smooth; 200^2 is plenty for 3 digits).
[[nodiscard]] double expected_degree_border_corrected(const net::Field& field,
                                                      std::size_t n, double range,
                                                      std::size_t grid = 200);

// ---- cluster formation ----------------------------------------------

/// Expected cluster size when each node independently heads with
/// probability pc and every non-head joins some head: E[m] = 1/pc.
[[nodiscard]] double expected_cluster_size(double pc);

/// Probability that a head ends up alone (no joiners), in a network of
/// average degree d: each of its ~d neighbours is itself a head w.p.
/// pc, and a non-head neighbour picks this head only 1-in-(heads it
/// hears, ~ 1 + (d-1)pc). First-order approximation:
///   P(lone) = (1 - (1-pc)/(1+(d-1)pc))^d
[[nodiscard]] double lone_head_probability(double pc, double avg_degree);

// ---- privacy ---------------------------------------------------------

/// Leading-order CPDA disclosure probability for one member of a
/// cluster of size m when each share link independently breaks with
/// probability px and the F values are public (iCPDA digest):
/// the attacker needs all m-1 outgoing AND all m-1 incoming share
/// links of the victim, so
///   P ≈ px^(2(m-1)).
/// Exact disclosure also occurs through rarer global patterns (e.g.
/// every link in the cluster broken); the Monte-Carlo auditor measures
/// those too, and the tests assert this formula is a lower bound that
/// matches to leading order for small px.
[[nodiscard]] double cpda_disclosure_probability(std::size_t m, double px);

/// Collusion: an honest member of a size-m cluster is exposed iff all
/// other m-1 members collude. With k attacker-controlled members
/// placed uniformly, a given honest member is exposed iff k = m-1.
[[nodiscard]] double cpda_collusion_disclosure(std::size_t m, std::size_t colluders);

/// SMART/iPDA slicing disclosure (cleartext tree reports): the
/// attacker needs the l-1 outgoing slice links and the `incoming`
/// inbound slice links of the victim:
///   P = px^(l-1+incoming).
[[nodiscard]] double smart_disclosure_probability(std::size_t l, std::size_t incoming,
                                                  double px);

// ---- communication overhead -------------------------------------------

/// Expected protocol messages originated per node and epoch (MAC ACKs
/// and retransmissions excluded — those are measured, not modelled).
/// TAG: 1 HELLO re-broadcast + 1 report.
[[nodiscard]] double tag_messages_per_node();

/// iCPDA: HELLO + role traffic + (E[m]-1) shares + F announce +
/// digest + report. pc is the head probability, f_repeats the digest
/// repetition count.
[[nodiscard]] double icpda_messages_per_node(double pc, std::size_t f_repeats);

/// SMART: TAG plus l-1 slice messages.
[[nodiscard]] double smart_messages_per_node(std::size_t l);

// ---- integrity ---------------------------------------------------------

/// Probability that two points placed uniformly i.i.d. in a disc of
/// radius r are within distance r of each other (~0.5865). This is the
/// chance that a random witness overhears a random tree child of its
/// head, both being in the head's neighbourhood.
[[nodiscard]] double witness_hears_child_probability();

/// Probability that at least one of `witnesses` cluster members has a
/// full view of a head with `children` tree children (and can
/// therefore audit it exactly):
///   1 - (1 - q^children)^witnesses,  q = witness_hears_child_probability.
[[nodiscard]] double detection_probability(std::size_t witnesses, std::size_t children);

}  // namespace icpda::analysis
