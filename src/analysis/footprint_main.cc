// Per-node memory footprint probe.
//
// Builds one deployment at constant paper density (400 nodes per
// 400x400 m^2 field, 50 m range — the field side scales as
// 20*sqrt(N)), runs one full iCPDA epoch, and emits a single JSON
// object on stdout: the Network's per-subsystem heap accounting
// (Network::footprint), process RSS/HWM from /proc/self/status, wall
// clock, and — for sharded runs — the engine's parallel-fraction
// counters. tools/mem_footprint.py consumes this to gate
// bytes-per-node against the checked-in baseline.
//
// Usage: footprint_probe [--nodes=N] [--shards=S] [--seed=X]

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/icpda.h"
#include "crypto/keyring.h"
#include "net/network.h"
#include "proto/epoch.h"

namespace {

/// VmRSS / VmHWM in kB from /proc/self/status (0 if unavailable).
std::size_t proc_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t out = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      out = std::strtoull(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return out;
}

bool parse_flag(const char* arg, const char* name, unsigned long long& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  out = std::strtoull(arg + len + 1, &end, 10);
  return end != arg + len + 1 && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icpda;

  unsigned long long nodes = 20000, shards = 1, seed = 1;
  for (int i = 1; i < argc; ++i) {
    unsigned long long v = 0;
    if (parse_flag(argv[i], "--nodes", v)) {
      nodes = v;
    } else if (parse_flag(argv[i], "--shards", v)) {
      shards = v;
    } else if (parse_flag(argv[i], "--seed", v)) {
      seed = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--nodes=N] [--shards=S] [--seed=X]\n", argv[0]);
      return 2;
    }
  }
  if (nodes == 0 || shards == 0) {
    std::fprintf(stderr, "--nodes/--shards must be positive\n");
    return 2;
  }

  net::NetworkConfig cfg;
  cfg.node_count = static_cast<std::size_t>(nodes);
  // Constant density: the paper's 400/400^2 nodes/m^2 at every N, so
  // degree (and with it per-node event load) stays in the paper regime.
  const double side = 20.0 * std::sqrt(static_cast<double>(nodes));
  cfg.field_width_m = side;
  cfg.field_height_m = side;
  cfg.seed = seed;
  cfg.shards = static_cast<std::size_t>(shards);

  const auto t0 = std::chrono::steady_clock::now();
  net::Network network(cfg);
  const auto t_built = std::chrono::steady_clock::now();

  const core::IcpdaConfig icpda_cfg;
  const crypto::MasterPairwiseScheme keys{crypto::Key::from_seed(0x1CDA2009)};
  const core::IcpdaOutcome outcome = core::run_icpda_epoch(
      network, icpda_cfg, proto::constant_reading(1.0), keys);
  const auto t_done = std::chrono::steady_clock::now();

  const net::Network::Footprint fp = network.footprint();
  const double wall_build =
      std::chrono::duration<double>(t_built - t0).count();
  const double wall_epoch =
      std::chrono::duration<double>(t_done - t_built).count();

  std::uint64_t gate_events = 0, parallel_events = 0;
  if (const net::ShardEngine* engine = network.shard_engine()) {
    gate_events = engine->stats().gate_events;
    parallel_events = engine->stats().parallel_events;
  }
  const std::uint64_t total_events = gate_events + parallel_events;

  std::printf(
      "{\"nodes\": %llu, \"shards\": %llu, \"seed\": %llu,\n"
      " \"topology_bytes\": %zu, \"scheduler_bytes\": %zu,\n"
      " \"channel_bytes\": %zu, \"mac_bytes\": %zu,\n"
      " \"metrics_bytes\": %zu, \"plan_bytes\": %zu,\n"
      " \"object_bytes\": %zu, \"total_bytes\": %zu,\n"
      " \"bytes_per_node\": %.1f,\n"
      " \"rss_kb\": %zu, \"hwm_kb\": %zu,\n"
      " \"build_s\": %.3f, \"epoch_s\": %.3f,\n"
      " \"gate_events\": %llu, \"parallel_events\": %llu,\n"
      " \"parallel_fraction\": %.4f,\n"
      " \"reporters\": %u, \"accepted\": %s}\n",
      nodes, shards, seed, fp.topology, fp.schedulers, fp.channel, fp.macs,
      fp.metrics, fp.plan, fp.objects, fp.total(),
      static_cast<double>(fp.total()) / static_cast<double>(nodes),
      proc_status_kb("VmRSS"), proc_status_kb("VmHWM"), wall_build, wall_epoch,
      static_cast<unsigned long long>(gate_events),
      static_cast<unsigned long long>(parallel_events),
      total_events == 0
          ? 0.0
          : static_cast<double>(parallel_events) / static_cast<double>(total_events),
      outcome.reporters, outcome.accepted() ? "true" : "false");
  return 0;
}
