// Trace folding, digesting and export.
//
// The Tracer (sim/trace.h) records raw events; everything that turns
// them into something a human or a test can consume lives here:
//   * fold_trace     — per-epoch / per-phase / per-node accounting
//                      (byte totals, span counts, busy time),
//   * trace_digest   — an order- and bit-exact FNV-1a fingerprint of a
//                      merged trace, the anchor of the golden tests,
//   * format_trace_event / first_divergence — human-readable excerpts
//                      and the "first event that differs" diagnostic,
//   * chrome_trace_json — the Chrome about:tracing / Perfetto format,
//   * write_trace_jsonl / read_trace_jsonl — the campaign JSONL event
//     schema, exact round-trip via bit-pattern timestamps.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runner/jsonl.h"
#include "sim/trace.h"

namespace icpda::analysis {

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(sim::TracePhase::kMaxPhase);

/// Accumulated totals for one (epoch|node, phase) bucket.
struct PhaseStat {
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t collision_bytes = 0;
  std::uint64_t loss_bytes = 0;
  std::uint64_t drop_bytes = 0;
  std::uint64_t backoff_slots = 0;
  std::uint64_t spans = 0;  ///< completed spans (begin..end pairs)
  double busy_s = 0.0;      ///< summed span durations

  void merge(const PhaseStat& o);
};

/// A folded trace: the merged event stream reduced to tables.
struct TraceReport {
  /// Per-epoch totals across all nodes, indexed by TracePhase.
  std::map<std::uint16_t, std::array<PhaseStat, kPhaseCount>> per_epoch;
  /// Per-node totals across all epochs, indexed by TracePhase.
  std::map<std::uint32_t, std::array<PhaseStat, kPhaseCount>> per_node;
  std::uint64_t events = 0;
  std::uint64_t unmatched_ends = 0;  ///< ends with no live begin (ring wrap)

  /// Sum of kTxBytes over every phase of `epoch` (kNone included), i.e.
  /// the traced share of channel.tx_bytes for that epoch.
  [[nodiscard]] std::uint64_t epoch_tx_bytes(std::uint16_t epoch) const;
};

/// Replay a merged (seq-ordered) event stream into per-phase tables.
/// Counters are attributed to the owning node's innermost open span at
/// their position in the stream; counters outside any span land in
/// TracePhase::kNone.
[[nodiscard]] TraceReport fold_trace(const std::vector<sim::TraceEvent>& events);

/// Order- and bit-exact FNV-1a-64 over every event field (doubles by
/// bit pattern, never by decimal formatting).
[[nodiscard]] std::uint64_t trace_digest(const std::vector<sim::TraceEvent>& events);

/// Engine-independent fingerprint: the stream is split into per-node
/// subsequences, each hashed in order with `seq` excluded, and the
/// per-node hashes are combined in ascending node id. A node's own
/// event subsequence is a pure function of (configuration, seed)
/// regardless of how the run was executed, while the cross-node
/// interleaving of same-instant events and the seq numbering are
/// artifacts of the engine (single-heap FIFO vs per-shard rings) —
/// this digest sees the former and not the latter, so it must agree
/// across --shards values. Do not enable Tracer shard_counters when
/// comparing: those global-ring counters are engine-shaped by design.
[[nodiscard]] std::uint64_t canonical_trace_digest(
    const std::vector<sim::TraceEvent>& events);

/// One event as a stable single line, e.g.
/// `seq=12 t=1.234567890 ep=0 node=7 B share_exchange v=0`.
[[nodiscard]] std::string format_trace_event(const sim::TraceEvent& ev);

/// Index of the first position where the two streams differ (field-wise
/// or one ends early); nullopt when identical.
[[nodiscard]] std::optional<std::size_t> first_divergence(
    const std::vector<sim::TraceEvent>& a, const std::vector<sim::TraceEvent>& b);

/// The first `max_events` events, one format_trace_event line each.
[[nodiscard]] std::string trace_excerpt(const std::vector<sim::TraceEvent>& events,
                                        std::size_t max_events);

/// Chrome trace_event JSON (the array form): load in about:tracing or
/// Perfetto. Spans become B/E duration events (tid = node), counters
/// become C events, markers become instants.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<sim::TraceEvent>& events);

/// One JSONL row per event through the campaign sink. Timestamps ride
/// twice: `t` human-readable and `t_bits` as the exact IEEE-754 bit
/// pattern, so read_trace_jsonl reconstructs events bit-identically.
void write_trace_jsonl(const std::vector<sim::TraceEvent>& events,
                       runner::JsonlSink& sink);

/// Parse the write_trace_jsonl format back (comment lines skipped).
/// Throws std::runtime_error on malformed rows.
[[nodiscard]] std::vector<sim::TraceEvent> read_trace_jsonl(const std::string& text);

/// The per-phase/per-node table the trace_report CLI prints.
[[nodiscard]] std::string render_report(const TraceReport& report);

}  // namespace icpda::analysis
