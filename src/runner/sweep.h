// Declarative parameter grids for experiment campaigns.
//
// A Sweep is an ordered list of named axes; its grid is the cartesian
// product in row-major order (first axis outermost), which matches the
// nested `for` loops the bench binaries used to hand-roll — point
// index 0 is the first row the sequential code would have printed.
// Axes are numeric (doubles) with optional per-value labels for
// categorical axes (policy names, scheme names, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace icpda::runner {

struct Axis {
  std::string name;
  std::vector<double> values;
  /// Empty, or one label per value (categorical axes).
  std::vector<std::string> labels;
};

class Sweep;

/// One grid point: coordinate lookup by axis name plus its flat index.
class Point {
 public:
  Point(const Sweep* sweep, std::size_t index) : sweep_(sweep), index_(index) {}

  /// Flat row-major index of this point in the grid.
  [[nodiscard]] std::size_t index() const { return index_; }

  /// Coordinate on a named axis; throws std::out_of_range for an
  /// unknown axis name (a typo'd lookup should fail loudly, not read 0).
  [[nodiscard]] double get(std::string_view axis) const;

  /// Coordinate cast to an integer count (network sizes etc.).
  [[nodiscard]] std::size_t count(std::string_view axis) const {
    return static_cast<std::size_t>(get(axis));
  }

  /// Label of the coordinate on a categorical axis (falls back to the
  /// numeric value rendered with %g when the axis has no labels).
  [[nodiscard]] std::string label(std::string_view axis) const;

 private:
  const Sweep* sweep_;
  std::size_t index_;
};

class Sweep {
 public:
  /// Append a numeric axis. Returns *this for chaining. Empty axes are
  /// rejected (the grid would be empty by accident).
  Sweep& axis(std::string name, std::vector<double> values);

  /// Append a categorical axis; coordinates are 0..n-1, label() maps
  /// them back.
  Sweep& categorical(std::string name, std::vector<std::string> labels);

  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }

  /// Total number of grid points (product of axis sizes; 1 for an
  /// axis-less sweep, which models a single-point experiment).
  [[nodiscard]] std::size_t point_count() const;

  [[nodiscard]] Point point(std::size_t index) const { return Point(this, index); }

  /// Value of axis `axis_pos` at flat point `index` (row-major).
  [[nodiscard]] std::size_t coordinate(std::size_t index, std::size_t axis_pos) const;

  /// Position of a named axis; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t axis_pos(std::string_view name) const;

 private:
  std::vector<Axis> axes_;
};

}  // namespace icpda::runner
