#include "runner/sweep.h"

#include <cstdio>
#include <stdexcept>

namespace icpda::runner {

Sweep& Sweep::axis(std::string name, std::vector<double> values) {
  if (values.empty()) throw std::invalid_argument("Sweep: axis '" + name + "' is empty");
  axes_.push_back(Axis{std::move(name), std::move(values), {}});
  return *this;
}

Sweep& Sweep::categorical(std::string name, std::vector<std::string> labels) {
  if (labels.empty()) throw std::invalid_argument("Sweep: axis '" + name + "' is empty");
  std::vector<double> values(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) values[i] = static_cast<double>(i);
  axes_.push_back(Axis{std::move(name), std::move(values), std::move(labels)});
  return *this;
}

std::size_t Sweep::point_count() const {
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.values.size();
  return n;
}

std::size_t Sweep::coordinate(std::size_t index, std::size_t axis_pos) const {
  // Row-major: the last axis varies fastest.
  std::size_t stride = 1;
  for (std::size_t i = axes_.size(); i-- > axis_pos + 1;) stride *= axes_[i].values.size();
  return (index / stride) % axes_[axis_pos].values.size();
}

std::size_t Sweep::axis_pos(std::string_view name) const {
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i].name == name) return i;
  }
  throw std::out_of_range("Sweep: unknown axis '" + std::string(name) + "'");
}

double Point::get(std::string_view axis) const {
  const std::size_t pos = sweep_->axis_pos(axis);
  return sweep_->axes()[pos].values[sweep_->coordinate(index_, pos)];
}

std::string Point::label(std::string_view axis) const {
  const std::size_t pos = sweep_->axis_pos(axis);
  const Axis& a = sweep_->axes()[pos];
  const std::size_t i = sweep_->coordinate(index_, pos);
  if (!a.labels.empty()) return a.labels[i];
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", a.values[i]);
  return buf;
}

}  // namespace icpda::runner
