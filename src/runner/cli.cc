#include "runner/cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runner/thread_pool.h"

namespace icpda::runner {

namespace {

/// Strict non-negative integer parse; rejects sign prefixes, leading
/// whitespace and trailing garbage (strtoull accepts all three).
bool parse_uint(const std::string& s, unsigned long long& out) {
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(s.c_str(), &end, 10);
  return errno == 0 && end == s.c_str() + s.size();
}

/// Split "--flag=value" / "--flag value" style arguments. Returns true
/// if argv[i] names `flag`, with `value` filled (consuming argv[i+1]
/// when needed) and `i` advanced accordingly.
bool take_value_flag(int argc, char** argv, int& i, const char* flag,
                     std::string& value, std::string& error) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return false;
  const char* rest = argv[i] + len;
  if (*rest == '=') {
    value = rest + 1;
    return true;
  }
  if (*rest == '\0') {
    if (i + 1 >= argc) {
      error = std::string(flag) + " requires a value";
      value.clear();
      return true;
    }
    value = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

bool parse_point_spec(const std::string& spec, std::vector<std::size_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t dash = item.find('-');
    unsigned long long lo = 0, hi = 0;
    if (dash == std::string::npos) {
      if (!parse_uint(item, lo)) return false;
      hi = lo;
    } else {
      if (!parse_uint(item.substr(0, dash), lo) ||
          !parse_uint(item.substr(dash + 1), hi) || hi < lo) {
        return false;
      }
    }
    for (unsigned long long p = lo; p <= hi; ++p) out.push_back(static_cast<std::size_t>(p));
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  if (out.empty()) return false;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

bool parse_cli(int argc, char** argv, RunnerOptions& options, std::string& error) {
  if (const char* env = std::getenv("ICPDA_THREADS")) {
    unsigned long long t = 0;
    if (parse_uint(env, t)) {
      options.threads = t == 0 ? ThreadPool::default_threads() : static_cast<unsigned>(t);
    }
  }
  if (const char* env = std::getenv("ICPDA_SHARDS")) {
    // Reject garbage loudly: a typo'd shard count silently running the
    // single engine would invalidate every scaling number downstream.
    unsigned long long s = 0;
    if (!parse_uint(env, s) || s == 0) {
      error = std::string("ICPDA_SHARDS: expected a positive integer, got '") +
              env + "'";
      return false;
    }
    options.shards = static_cast<std::size_t>(s);
  }
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      options.help = true;
      return true;
    }
    if (std::strcmp(argv[i], "--no-progress") == 0) {
      options.progress = false;
      continue;
    }
    if (std::strcmp(argv[i], "--trace") == 0) {
      options.trace = true;
      continue;
    }
    if (take_value_flag(argc, argv, i, "--threads", value, error)) {
      unsigned long long t = 0;
      if (!error.empty()) return false;
      if (!parse_uint(value, t)) {
        error = "--threads: expected a non-negative integer, got '" + value + "'";
        return false;
      }
      options.threads = t == 0 ? ThreadPool::default_threads() : static_cast<unsigned>(t);
      continue;
    }
    if (take_value_flag(argc, argv, i, "--shards", value, error)) {
      unsigned long long s = 0;
      if (!error.empty()) return false;
      if (!parse_uint(value, s) || s == 0) {
        error = "--shards: expected a positive integer, got '" + value + "'";
        return false;
      }
      options.shards = static_cast<std::size_t>(s);
      // Campaign cells construct their own NetworkConfig deep inside
      // each bench binary; the env var is the one channel they all
      // already read (bench::shards), so the flag is exported to it.
      setenv("ICPDA_SHARDS", value.c_str(), /*overwrite=*/1);
      continue;
    }
    if (take_value_flag(argc, argv, i, "--trials", value, error)) {
      unsigned long long t = 0;
      if (!error.empty()) return false;
      if (!parse_uint(value, t) || t == 0) {
        error = "--trials: expected a positive integer, got '" + value + "'";
        return false;
      }
      options.trials = static_cast<int>(t);
      continue;
    }
    if (take_value_flag(argc, argv, i, "--points", value, error)) {
      if (!error.empty()) return false;
      if (!parse_point_spec(value, options.points)) {
        error = "--points: malformed spec '" + value + "' (want e.g. 0,3,7 or 2-5)";
        return false;
      }
      continue;
    }
    if (take_value_flag(argc, argv, i, "--out", value, error)) {
      if (!error.empty()) return false;
      options.out = value;
      continue;
    }
    error = std::string("unknown argument '") + argv[i] + "'";
    return false;
  }
  return true;
}

void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads=N] [--shards=N] [--trials=N] [--points=SPEC]\n"
               "          [--out=PATH] [--trace] [--no-progress] [--help]\n"
               "  --threads=N    worker threads (0 = all hardware threads;\n"
               "                 default $ICPDA_THREADS or 1). Rows are\n"
               "                 byte-identical at every thread count.\n"
               "  --shards=N     spatial shards per simulated network\n"
               "                 (default $ICPDA_SHARDS or 1). Rows are\n"
               "                 byte-identical at every shard count.\n"
               "  --trials=N     Monte-Carlo trials per grid point\n"
               "                 (default: campaign declaration / $ICPDA_TRIALS)\n"
               "  --points=SPEC  run a subset of flat grid points: 0,3,7 or 2-5\n"
               "  --out=PATH     write result rows to PATH instead of stdout\n"
               "  --trace        per-cell structured tracing (trace-aware\n"
               "                 campaigns add per-phase breakdown columns)\n"
               "  --no-progress  suppress the stderr progress/ETA reporter\n",
               argv0);
}

}  // namespace icpda::runner
