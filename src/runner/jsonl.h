// JSON-lines output for campaign results.
//
// JsonRow renders one object with insertion-ordered keys and explicit
// numeric formatting (fixed decimal places, like the printf rows the
// benches used to emit), so a row is byte-reproducible across runs and
// thread counts. JsonlSink enforces a stable schema — every row must
// carry the first row's keys in the first row's order — and writes
// each line with a single fwrite, so concurrently-written sinks can
// never interleave half-lines.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace icpda::runner {

/// Escape a string for inclusion inside JSON double quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonRow {
 public:
  /// Fixed-point double with `precision` decimal places. Non-finite
  /// values render as null (JSON has no NaN/Inf).
  JsonRow& num(std::string_view key, double value, int precision);

  JsonRow& num(std::string_view key, std::uint64_t value);
  JsonRow& num(std::string_view key, int value) {
    return num(key, static_cast<std::uint64_t>(value));
  }

  JsonRow& str(std::string_view key, std::string_view value);
  JsonRow& boolean(std::string_view key, bool value);

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

  /// `{"k": v, ...}` — no trailing newline.
  [[nodiscard]] std::string to_line() const;

 private:
  JsonRow& raw(std::string_view key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> fields_;
};

class JsonlSink {
 public:
  /// Write to an already-open stream (not closed on destruction).
  static JsonlSink to_stream(std::FILE* stream);

  /// Open `path` for writing; throws std::runtime_error on failure.
  static JsonlSink to_file(const std::string& path);

  /// Collect lines into `*out` instead of a stream (tests).
  static JsonlSink to_buffer(std::string* out);

  JsonlSink(JsonlSink&&) noexcept;
  JsonlSink& operator=(JsonlSink&&) = delete;
  ~JsonlSink();

  /// Write one row atomically; flushes so downstream consumers can
  /// stream-parse a live campaign. Throws std::runtime_error if the
  /// row's keys deviate from the first row's schema.
  void write(const JsonRow& row);

  /// Write a `# ...` header/comment line (the bench header convention;
  /// strictly speaking an extension of JSONL).
  void comment(std::string_view text);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  JsonlSink(std::FILE* stream, bool owned, std::string* buffer)
      : stream_(stream), owned_(owned), buffer_(buffer) {}

  void write_line(const std::string& line);

  std::FILE* stream_ = nullptr;
  bool owned_ = false;
  std::string* buffer_ = nullptr;
  std::mutex mutex_;
  std::vector<std::string> schema_;
  std::size_t rows_ = 0;
};

}  // namespace icpda::runner
