#include "runner/campaign.h"

#include <cstdio>
#include <exception>
#include <future>
#include <vector>

#include "runner/progress.h"
#include "runner/thread_pool.h"
#include "sim/rng.h"

namespace icpda::runner {

namespace {

void run_cell(const Campaign& campaign, const Point& point, int trial,
              sim::MetricRegistry& metrics, bool trace) {
  CellContext ctx{point, trial,
                  sim::seed_mix(campaign.experiment,
                                static_cast<std::uint64_t>(point.index()),
                                static_cast<std::uint64_t>(trial)),
                  metrics, trace};
  campaign.cell(ctx);
}

}  // namespace

int run_campaign(const Campaign& campaign, const RunnerOptions& options,
                 JsonlSink& sink) {
  if (!campaign.cell || !campaign.row) {
    std::fprintf(stderr, "campaign '%s': missing cell or row function\n",
                 campaign.name.c_str());
    return 1;
  }
  const std::size_t grid = campaign.sweep.point_count();
  std::vector<std::size_t> selected = options.points;
  if (selected.empty()) {
    selected.resize(grid);
    for (std::size_t i = 0; i < grid; ++i) selected[i] = i;
  } else if (selected.back() >= grid) {
    std::fprintf(stderr, "campaign '%s': --points index %zu out of range (grid has %zu points)\n",
                 campaign.name.c_str(), selected.back(), grid);
    return 1;
  }
  const int trials = options.trials > 0 ? options.trials : campaign.trials;
  if (trials <= 0) {
    std::fprintf(stderr, "campaign '%s': trials must be positive\n", campaign.name.c_str());
    return 1;
  }

  sink.comment(campaign.name);
  sink.comment("trials per point: " + std::to_string(trials));

  // Surface the active shard partitions next to the progress/ETA line:
  // the Networks are built deep inside the cells, so the announcement
  // itself lives in Network::wire (once per distinct plan), opted in
  // here.
  if (options.progress && options.shards > 1) {
    setenv("ICPDA_ANNOUNCE_PLAN", "1", /*overwrite=*/0);
  }

  const std::size_t cells = selected.size() * static_cast<std::size_t>(trials);
  Progress progress(campaign.label.empty() ? campaign.name : campaign.label, cells,
                    options.progress);

  // One registry slot per cell, indexed point-major so the reduction
  // below can walk them in declaration order.
  std::vector<sim::MetricRegistry> results(cells);

  try {
    if (options.threads <= 1) {
      // Sequential path: no pool, same cell order and (crucially) the
      // same trial-ordered reduction as the parallel path.
      std::size_t slot = 0;
      for (const std::size_t p : selected) {
        const Point point = campaign.sweep.point(p);
        PointSummary summary;
        for (int t = 0; t < trials; ++t, ++slot) {
          run_cell(campaign, point, t, results[slot], options.trace);
          progress.tick();
          summary.metrics.merge(results[slot]);
          ++summary.trials;
        }
        JsonRow row;
        campaign.row(point, summary, row);
        sink.write(row);
      }
    } else {
      ThreadPool pool(options.threads);
      std::vector<std::future<void>> futures;
      futures.reserve(cells);
      std::size_t slot = 0;
      for (const std::size_t p : selected) {
        for (int t = 0; t < trials; ++t, ++slot) {
          futures.push_back(pool.submit([&campaign, &progress, &results, &options, p,
                                         t, slot] {
            const Point point = campaign.sweep.point(p);
            run_cell(campaign, point, t, results[slot], options.trace);
            progress.tick();
          }));
        }
      }
      // Emit rows in point order as each point's trials complete;
      // later cells keep executing on the pool meanwhile.
      slot = 0;
      for (const std::size_t p : selected) {
        const Point point = campaign.sweep.point(p);
        PointSummary summary;
        for (int t = 0; t < trials; ++t, ++slot) {
          futures[slot].get();
          summary.metrics.merge(results[slot]);
          ++summary.trials;
        }
        JsonRow row;
        campaign.row(point, summary, row);
        sink.write(row);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign '%s' failed: %s\n", campaign.name.c_str(), e.what());
    return 1;
  }

  progress.finish(options.threads);
  return 0;
}

int run_campaign(const Campaign& campaign, const RunnerOptions& options) {
  try {
    JsonlSink sink = options.out.empty() ? JsonlSink::to_stream(stdout)
                                         : JsonlSink::to_file(options.out);
    return run_campaign(campaign, options, sink);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign '%s' failed: %s\n", campaign.name.c_str(), e.what());
    return 1;
  }
}

int bench_main(const Campaign& campaign, int argc, char** argv) {
  RunnerOptions options;
  std::string error;
  if (!parse_cli(argc, argv, options, error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    print_usage(argv[0]);
    return 2;
  }
  if (options.help) {
    print_usage(argv[0]);
    return 0;
  }
  return run_campaign(campaign, options);
}

}  // namespace icpda::runner
