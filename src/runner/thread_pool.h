// Fixed-size thread pool for Monte-Carlo campaign execution.
//
// Deliberately work-stealing-free: a single FIFO queue behind one
// mutex. Campaign cells are whole protocol-epoch simulations
// (milliseconds to seconds each), so queue contention is irrelevant
// and a simple pool keeps the execution order reasoning trivial —
// determinism of campaign output comes from the *reduction* order,
// never from scheduling (see campaign.h).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace icpda::runner {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future completes when it has run (or rethrows
  /// what the task threw).
  std::future<void> submit(std::function<void()> fn);

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Reasonable worker count for this machine (hardware_concurrency,
  /// falling back to 1 when the runtime reports 0).
  [[nodiscard]] static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace icpda::runner
