#include "runner/jsonl.h"

#include <cmath>
#include <stdexcept>

namespace icpda::runner {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonRow& JsonRow::raw(std::string_view key, std::string rendered) {
  fields_.emplace_back(std::string(key), std::move(rendered));
  return *this;
}

JsonRow& JsonRow::num(std::string_view key, double value, int precision) {
  if (!std::isfinite(value)) return raw(key, "null");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return raw(key, buf);
}

JsonRow& JsonRow::num(std::string_view key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  return raw(key, buf);
}

JsonRow& JsonRow::str(std::string_view key, std::string_view value) {
  return raw(key, "\"" + json_escape(value) + "\"");
}

JsonRow& JsonRow::boolean(std::string_view key, bool value) {
  return raw(key, value ? "true" : "false");
}

std::string JsonRow::to_line() const {
  std::string line = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) line += ", ";
    line += "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  line += "}";
  return line;
}

JsonlSink JsonlSink::to_stream(std::FILE* stream) {
  return JsonlSink(stream, false, nullptr);
}

JsonlSink JsonlSink::to_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("JsonlSink: cannot open '" + path + "' for writing");
  return JsonlSink(f, true, nullptr);
}

JsonlSink JsonlSink::to_buffer(std::string* out) {
  return JsonlSink(nullptr, false, out);
}

JsonlSink::JsonlSink(JsonlSink&& other) noexcept
    : stream_(other.stream_),
      owned_(other.owned_),
      buffer_(other.buffer_),
      schema_(std::move(other.schema_)),
      rows_(other.rows_) {
  other.stream_ = nullptr;
  other.owned_ = false;
  other.buffer_ = nullptr;
}

JsonlSink::~JsonlSink() {
  if (owned_ && stream_) std::fclose(stream_);
}

void JsonlSink::write_line(const std::string& line) {
  if (buffer_) {
    *buffer_ += line;
    *buffer_ += '\n';
    return;
  }
  const std::string with_newline = line + "\n";
  std::fwrite(with_newline.data(), 1, with_newline.size(), stream_);
  std::fflush(stream_);
}

void JsonlSink::write(const JsonRow& row) {
  const std::lock_guard lock(mutex_);
  if (schema_.empty()) {
    for (const auto& [key, value] : row.fields()) schema_.push_back(key);
    if (schema_.empty()) throw std::runtime_error("JsonlSink: empty row");
  } else {
    const auto& fields = row.fields();
    bool match = fields.size() == schema_.size();
    for (std::size_t i = 0; match && i < fields.size(); ++i) {
      match = fields[i].first == schema_[i];
    }
    if (!match) {
      throw std::runtime_error(
          "JsonlSink: row schema deviates from the first row (key set and "
          "order must be stable)");
    }
  }
  write_line(row.to_line());
  ++rows_;
}

void JsonlSink::comment(std::string_view text) {
  const std::lock_guard lock(mutex_);
  write_line("# " + std::string(text));
}

}  // namespace icpda::runner
