// Declarative experiment campaigns: sweep × trials → JSONL rows.
//
// A Campaign replaces the hand-rolled nested loops of the bench
// binaries: it names the experiment (for seed derivation), declares
// the parameter grid (Sweep), the Monte-Carlo trial count, a per-cell
// body and a per-point row formatter. The engine executes the
// (point, trial) cells — sequentially or on a fixed ThreadPool — and
// reduces each point's per-cell MetricRegistry instances into one
// summary via MetricRegistry::merge.
//
// Determinism contract:
//  * every cell runs against its own MetricRegistry, seeded by
//    sim::seed_mix(experiment, point_index, trial) — a pure function
//    of the declaration, independent of scheduling;
//  * per-point reduction merges cell registries in ascending trial
//    order, and rows are emitted in ascending point order, regardless
//    of which threads finish first;
//  * therefore the emitted rows are byte-for-byte identical at every
//    --threads value, and a --points subset reproduces exactly the
//    rows the full grid would emit for those points.
// Rows stream to the sink as soon as a point's trials complete (in
// point order), so long campaigns can be tail-followed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "runner/cli.h"
#include "runner/jsonl.h"
#include "runner/sweep.h"
#include "sim/metrics.h"

namespace icpda::runner {

/// Everything a cell body needs: where it is in the grid, its
/// deterministic seed, and its private metrics registry.
struct CellContext {
  const Point& point;
  int trial;
  std::uint64_t seed;
  sim::MetricRegistry& metrics;
  /// --trace was given: the cell body should enable its Network's
  /// tracer and fold per-phase results into `metrics`. Tracing must
  /// stay observational — base metrics identical either way.
  bool trace = false;
};

/// Per-point reduction result handed to the row formatter.
struct PointSummary {
  sim::MetricRegistry metrics;  ///< cell registries merged in trial order
  int trials = 0;               ///< cells reduced into `metrics`
};

struct Campaign {
  /// Header title, echoed as the leading `# ...` comment line.
  std::string name;
  /// Short progress-reporter label; falls back to `name` when empty.
  std::string label;
  /// Experiment id (bench::Experiment) mixed into every cell seed.
  std::uint64_t experiment = 0;
  Sweep sweep;
  /// Default Monte-Carlo trials per point (--trials overrides).
  int trials = 1;
  /// Cell body: one independent simulation/estimation run.
  std::function<void(CellContext&)> cell;
  /// Row formatter: summary of one point -> one JSONL row. Must emit
  /// the same key sequence for every point (enforced by JsonlSink).
  std::function<void(const Point&, const PointSummary&, JsonRow&)> row;
};

/// Execute `campaign` under `options`, writing rows to `sink`.
/// Returns a process exit code (0 on success; 1 on a failed cell or an
/// invalid option/declaration, with the reason on stderr).
int run_campaign(const Campaign& campaign, const RunnerOptions& options,
                 JsonlSink& sink);

/// As above, with the sink built from options (--out file or stdout).
int run_campaign(const Campaign& campaign, const RunnerOptions& options);

/// Complete main() body for a single-campaign bench binary: parse the
/// shared CLI (--help included), then run.
int bench_main(const Campaign& campaign, int argc, char** argv);

}  // namespace icpda::runner
