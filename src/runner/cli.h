// Shared command-line layer for the bench binaries.
//
//   --threads=N   worker threads (0 = all hardware threads); default
//                 from ICPDA_THREADS, else 1 so plain invocations stay
//                 sequential and comparable. Row output is identical
//                 at every thread count (see campaign.h).
//   --shards=N    spatial shards per simulated Network (default from
//                 ICPDA_SHARDS, else 1). Row output is identical at
//                 every shard count (see net/shard_engine.h).
//   --trials=N    Monte-Carlo trials per grid point; default from the
//                 campaign declaration (usually ICPDA_TRIALS-scaled).
//   --points=SPEC run only the listed flat grid points, e.g.
//                 "0,3,7" or "2-5" or "0,4-6" (order-normalized).
//   --out=PATH    write rows to PATH instead of stdout.
//   --trace       enable structured event tracing in each cell; trace-
//                 aware campaigns emit per-phase breakdown columns.
//                 Purely observational: base columns stay byte-
//                 identical to an untraced run.
//   --no-progress suppress the stderr progress reporter.
//   --help        print usage and exit 0.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace icpda::runner {

struct RunnerOptions {
  unsigned threads = 1;
  /// Spatial shards per simulated Network (see net/shard_engine.h);
  /// default from ICPDA_SHARDS, else 1. parse_cli() also exports the
  /// flag back to ICPDA_SHARDS so campaign cells constructing their
  /// own NetworkConfig (via bench::paper_network) pick it up. Rows are
  /// byte-identical at every shard count — that is what
  /// tests/shard_determinism_test.cc pins.
  std::size_t shards = 1;
  int trials = 0;                    // 0 = use the campaign's default
  std::vector<std::size_t> points;   // empty = whole grid
  std::string out;                   // empty = stdout
  bool trace = false;
  bool progress = true;
  bool help = false;
};

/// Parse argv into `options`. Returns false and fills `error` on a
/// malformed flag; `options.help` is set (and true returned) for
/// --help. Unknown flags are errors — a typo'd axis restriction must
/// not silently run the full grid.
bool parse_cli(int argc, char** argv, RunnerOptions& options, std::string& error);

/// Usage text for --help / parse errors (writes to stderr).
void print_usage(const char* argv0);

/// Parse a "--points" spec ("0,3,7", "2-5", "0,4-6") into sorted,
/// deduplicated indices; returns false on malformed input.
bool parse_point_spec(const std::string& spec, std::vector<std::size_t>& out);

}  // namespace icpda::runner
