#include "runner/thread_pool.h"

#include <algorithm>

namespace icpda::runner {

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto future = task.get_future();
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace icpda::runner
