// stderr progress/ETA reporting for campaign execution.
//
// Cells tick from worker threads; printing is throttled and serialized
// so a busy pool costs two atomic ops per cell. Interactive terminals
// get a live \r-rewritten status line; non-terminals (CI logs, pipes)
// get one full line per ~10% milestone. Everything goes to stderr, so
// result rows on stdout stay clean for stream parsing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace icpda::runner {

class Progress {
 public:
  /// `label` prefixes every status line; `enabled == false` makes the
  /// whole object a no-op (tests, --no-progress).
  Progress(std::string label, std::size_t total_cells, bool enabled);

  /// Record one completed cell (thread-safe).
  void tick();

  /// Print the final wall-time / throughput summary line.
  void finish(unsigned threads);

  [[nodiscard]] std::size_t done() const { return done_.load(std::memory_order_relaxed); }

 private:
  void print_status(std::size_t done, bool final_newline);

  std::string label_;
  std::size_t total_;
  bool enabled_;
  bool tty_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> next_milestone_{0};
  std::mutex print_mutex_;
  std::chrono::steady_clock::time_point last_print_;
};

}  // namespace icpda::runner
