#include "runner/progress.h"

#include <unistd.h>

#include <cstdio>

namespace icpda::runner {

namespace {
constexpr auto kTtyThrottle = std::chrono::milliseconds(200);
}

Progress::Progress(std::string label, std::size_t total_cells, bool enabled)
    : label_(std::move(label)),
      total_(total_cells),
      enabled_(enabled && total_cells > 0),
      tty_(isatty(fileno(stderr)) != 0),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_) {}

void Progress::print_status(std::size_t done, bool final_newline) {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - start_).count();
  const double rate = elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0;
  const double eta = rate > 0 ? static_cast<double>(total_ - done) / rate : 0.0;
  std::fprintf(stderr, "%s[%s] %zu/%zu cells (%.0f%%), %.1f runs/s, ETA %.0fs%s",
               tty_ ? "\r" : "", label_.c_str(), done, total_,
               100.0 * static_cast<double>(done) / static_cast<double>(total_), rate,
               eta, (!tty_ || final_newline) ? "\n" : "");
  std::fflush(stderr);
}

void Progress::tick() {
  const std::size_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!enabled_) return;
  if (tty_) {
    // Throttle terminal rewrites; drop the update if another thread is
    // already printing.
    std::unique_lock lock(print_mutex_, std::try_to_lock);
    if (!lock) return;
    const auto now = std::chrono::steady_clock::now();
    if (done < total_ && now - last_print_ < kTtyThrottle) return;
    last_print_ = now;
    print_status(done, done == total_);
  } else {
    // Milestone lines: every ceil(total/10) cells, and the last one.
    const std::size_t step = (total_ + 9) / 10;
    std::size_t expected = next_milestone_.load(std::memory_order_relaxed);
    if (done < expected && done != total_) return;
    if (!next_milestone_.compare_exchange_strong(expected, done + step)) return;
    const std::lock_guard lock(print_mutex_);
    print_status(done, true);
  }
}

void Progress::finish(unsigned threads) {
  if (!enabled_) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const std::size_t done = done_.load(std::memory_order_relaxed);
  std::fprintf(stderr, "[%s] %zu cells in %.2f s (%.1f runs/s, %u thread%s)\n",
               label_.c_str(), done, elapsed,
               elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0, threads,
               threads == 1 ? "" : "s");
  std::fflush(stderr);
}

}  // namespace icpda::runner
