#include "crypto/keyring.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icpda::crypto {

std::optional<Key> MasterPairwiseScheme::link_key(net::NodeId a, net::NodeId b) const {
  if (a == b) return std::nullopt;
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  return deriver_.derive(lo, hi);
}

void MasterPairwiseScheme::link_keys(net::NodeId self,
                                     std::span<const net::NodeId> peers,
                                     std::vector<std::optional<Key>>& out) const {
  out.clear();
  out.reserve(peers.size());
  for (const net::NodeId peer : peers) {
    if (peer == self) {
      out.emplace_back(std::nullopt);
    } else {
      out.emplace_back(deriver_.derive(std::min(self, peer), std::max(self, peer)));
    }
  }
}

EgPredistribution::EgPredistribution(std::size_t node_count, std::size_t pool_size,
                                     std::size_t ring_size, sim::Rng rng)
    : pool_size_(pool_size),
      ring_size_(ring_size),
      pool_master_(Key::from_seed(rng())),
      pool_deriver_(pool_master_),
      rings_(node_count) {
  if (ring_size == 0 || ring_size > pool_size) {
    throw std::invalid_argument("EgPredistribution: need 0 < ring_size <= pool_size");
  }
  for (auto& ring : rings_) {
    auto picks = rng.sample_indices(pool_size, ring_size);
    ring.assign(picks.begin(), picks.end());
    std::sort(ring.begin(), ring.end());
    // sample_indices returns size_t; rings store u32 for wire-compat.
    // pool sizes in all experiments are << 2^32.
  }
}

Key EgPredistribution::pool_key(std::uint32_t key_id) const {
  return pool_deriver_.derive(0x706F6F6CULL /*"pool"*/, key_id);
}

std::optional<std::uint32_t> EgPredistribution::shared_key_id(net::NodeId a,
                                                              net::NodeId b) const {
  if (a == b) return std::nullopt;
  const auto& ra = rings_.at(a);
  const auto& rb = rings_.at(b);
  // Both sorted: linear merge to find the smallest common id.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ra.size() && j < rb.size()) {
    if (ra[i] == rb[j]) return ra[i];
    if (ra[i] < rb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return std::nullopt;
}

std::optional<Key> EgPredistribution::link_key(net::NodeId a, net::NodeId b) const {
  const auto id = shared_key_id(a, b);
  if (!id) return std::nullopt;
  return pool_key(*id);
}

bool EgPredistribution::third_party_can_read(net::NodeId a, net::NodeId b,
                                             net::NodeId c) const {
  if (c == a || c == b) return false;
  const auto id = shared_key_id(a, b);
  if (!id) return false;
  const auto& rc = rings_.at(c);
  return std::binary_search(rc.begin(), rc.end(), *id);
}

double EgPredistribution::connect_probability(std::size_t pool_size,
                                              std::size_t ring_size) {
  if (2 * ring_size > pool_size) return 1.0;
  // 1 - C(P-k,k)/C(P,k) computed in log space for stability.
  double log_ratio = 0.0;
  for (std::size_t i = 0; i < ring_size; ++i) {
    const auto num = static_cast<double>(pool_size - ring_size - i);
    const auto den = static_cast<double>(pool_size - i);
    log_ratio += std::log(num / den);
  }
  return 1.0 - std::exp(log_ratio);
}

}  // namespace icpda::crypto
