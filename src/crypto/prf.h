// Keyed pseudo-random function — the primitive under the cipher & MAC.
//
// SIMULATION-GRADE, NOT CRYPTOGRAPHICALLY SECURE. The reproduction
// needs the *structure* of link-level security (who holds which key
// determines who can read which frame), not resistance to real
// cryptanalysis; no experiment in the paper measures primitive
// strength. The construction is a SplitMix64-based absorb/squeeze
// sponge over 128-bit keys: deterministic, well mixed, fast.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "sim/rng.h"

namespace icpda::crypto {

/// 128-bit symmetric key.
struct Key {
  std::array<std::uint64_t, 2> words{};

  friend bool operator==(const Key&, const Key&) = default;

  [[nodiscard]] static Key from_seed(std::uint64_t seed) {
    std::uint64_t s = seed;
    Key k;
    k.words[0] = sim::splitmix64(s);
    k.words[1] = sim::splitmix64(s);
    return k;
  }
};

/// Keyed PRF with incremental absorb and arbitrary-length squeeze.
///
///   Prf prf(key);
///   prf.absorb(bytes);
///   std::uint64_t tag = prf.squeeze64();
class Prf {
 public:
  explicit Prf(const Key& key);

  /// Mix bytes into the state.
  void absorb(std::span<const std::uint8_t> data);
  void absorb_u64(std::uint64_t v);

  /// Produce the next 64 bits of output. Squeezing is stateful: calls
  /// produce a keystream. Absorbing after squeezing is not supported
  /// (precondition; enforced with an assert-like throw).
  [[nodiscard]] std::uint64_t squeeze64();

 private:
  void permute();

  std::array<std::uint64_t, 4> state_{};
  std::uint64_t absorbed_len_ = 0;
  bool squeezing_ = false;
};

/// One-shot convenience: PRF(key, data) -> 64-bit value.
[[nodiscard]] std::uint64_t prf64(const Key& key, std::span<const std::uint8_t> data);

/// One-shot keyed derivation: PRF(key, label, index) -> new Key.
/// Used for per-link key derivation from a master key.
[[nodiscard]] Key derive_key(const Key& master, std::uint64_t label_a,
                             std::uint64_t label_b);

/// Batched key derivation under one master: the keyed sponge state
/// after the initial permutation depends only on the master key, so a
/// deriver caches it once and each derive() replays just the two label
/// absorptions and the squeeze. Output is byte-identical to
/// derive_key(master, a, b) for every (a, b) — pinned differentially by
/// CryptoBatchTest. Used to derive a whole cluster's pairwise keys in
/// one pass per round.
class KeyDeriver {
 public:
  explicit KeyDeriver(const Key& master);

  [[nodiscard]] Key derive(std::uint64_t label_a, std::uint64_t label_b) const;

 private:
  std::array<std::uint64_t, 4> init_state_{};
};

}  // namespace icpda::crypto
