#include "crypto/prf.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace icpda::crypto {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// Four rounds of an ARX-style mix; plenty for statistical mixing. Free
// function so the Prf and the KeyDeriver share one definition (the
// derivation cache must replay bit-identical permutations).
void permute_state(std::array<std::uint64_t, 4>& s) {
  for (int round = 0; round < 4; ++round) {
    s[0] += s[1];
    s[3] ^= s[0];
    s[3] = rotl(s[3], 32);
    s[2] += s[3];
    s[1] ^= s[2];
    s[1] = rotl(s[1], 24);
    s[0] += s[1];
    s[3] ^= s[0];
    s[3] = rotl(s[3], 16);
    s[2] += s[3];
    s[1] ^= s[2];
    s[1] = rotl(s[1], 63);
  }
}

void key_state(const Key& key, std::array<std::uint64_t, 4>& s) {
  s[0] = key.words[0] ^ 0x6A09E667F3BCC908ULL;
  s[1] = key.words[1] ^ 0xBB67AE8584CAA73BULL;
  s[2] = key.words[0] ^ 0x3C6EF372FE94F82BULL;
  s[3] = key.words[1] ^ 0xA54FF53A5F1D36F1ULL;
  permute_state(s);
}

/// Little-endian 64-bit load: the word the byte-at-a-time absorb loop
/// assembles, read in one shot on little-endian targets.
std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  return v;
}

}  // namespace

Prf::Prf(const Key& key) { key_state(key, state_); }

void Prf::permute() { permute_state(state_); }

void Prf::absorb(std::span<const std::uint8_t> data) {
  if (squeezing_) throw std::logic_error("Prf: absorb after squeeze");
  // Full words go through a word-wide load instead of eight shift-or
  // steps; the assembled word (and so the whole state trajectory) is
  // identical to the byte loop's.
  std::size_t i = 0;
  const std::size_t n = data.size();
  for (; i + 8 <= n; i += 8) {
    state_[0] ^= load_le64(data.data() + i);
    permute();
  }
  if (i < n) {
    // Pad the trailing partial word with a 0x80-style terminator so
    // that e.g. "ab" and "ab\0" absorb differently.
    std::uint64_t word = 0;
    int filled = 0;
    for (; i < n; ++i, ++filled) {
      word |= static_cast<std::uint64_t>(data[i]) << (8 * filled);
    }
    word |= 0x80ULL << (8 * filled);
    state_[0] ^= word;
    permute();
  }
  absorbed_len_ += n;
}

void Prf::absorb_u64(std::uint64_t v) {
  if (squeezing_) throw std::logic_error("Prf: absorb after squeeze");
  state_[0] ^= v;
  permute();
}

std::uint64_t Prf::squeeze64() {
  if (!squeezing_) {
    // Domain separation between absorb and squeeze phases, keyed by
    // total absorbed length.
    state_[1] ^= 0x9E3779B97F4A7C15ULL ^ absorbed_len_;
    permute();
    squeezing_ = true;
  }
  const std::uint64_t out = state_[0] ^ rotl(state_[2], 31);
  permute();
  return out;
}

std::uint64_t prf64(const Key& key, std::span<const std::uint8_t> data) {
  Prf prf(key);
  prf.absorb(data);
  return prf.squeeze64();
}

Key derive_key(const Key& master, std::uint64_t label_a, std::uint64_t label_b) {
  Prf prf(master);
  prf.absorb_u64(label_a);
  prf.absorb_u64(label_b);
  Key k;
  k.words[0] = prf.squeeze64();
  k.words[1] = prf.squeeze64();
  return k;
}

KeyDeriver::KeyDeriver(const Key& master) { key_state(master, init_state_); }

Key KeyDeriver::derive(std::uint64_t label_a, std::uint64_t label_b) const {
  // Replays derive_key step for step from the cached post-init state:
  // two u64 absorptions (absorbed_len_ stays 0 — absorb_u64 does not
  // count bytes), the squeeze transition, then two squeezed words with
  // one permutation between them.
  auto s = init_state_;
  s[0] ^= label_a;
  permute_state(s);
  s[0] ^= label_b;
  permute_state(s);
  s[1] ^= 0x9E3779B97F4A7C15ULL;
  permute_state(s);
  Key k;
  k.words[0] = s[0] ^ rotl(s[2], 31);
  permute_state(s);
  k.words[1] = s[0] ^ rotl(s[2], 31);
  return k;
}

}  // namespace icpda::crypto
