#include "crypto/prf.h"

#include <stdexcept>

namespace icpda::crypto {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Prf::Prf(const Key& key) {
  state_[0] = key.words[0] ^ 0x6A09E667F3BCC908ULL;
  state_[1] = key.words[1] ^ 0xBB67AE8584CAA73BULL;
  state_[2] = key.words[0] ^ 0x3C6EF372FE94F82BULL;
  state_[3] = key.words[1] ^ 0xA54FF53A5F1D36F1ULL;
  permute();
}

void Prf::permute() {
  // Four rounds of an ARX-style mix; plenty for statistical mixing.
  for (int round = 0; round < 4; ++round) {
    state_[0] += state_[1];
    state_[3] ^= state_[0];
    state_[3] = rotl(state_[3], 32);
    state_[2] += state_[3];
    state_[1] ^= state_[2];
    state_[1] = rotl(state_[1], 24);
    state_[0] += state_[1];
    state_[3] ^= state_[0];
    state_[3] = rotl(state_[3], 16);
    state_[2] += state_[3];
    state_[1] ^= state_[2];
    state_[1] = rotl(state_[1], 63);
  }
}

void Prf::absorb(std::span<const std::uint8_t> data) {
  if (squeezing_) throw std::logic_error("Prf: absorb after squeeze");
  std::uint64_t word = 0;
  int filled = 0;
  for (const std::uint8_t b : data) {
    word |= static_cast<std::uint64_t>(b) << (8 * filled);
    if (++filled == 8) {
      absorb_u64(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) {
    // Pad the trailing partial word with a 0x80-style terminator so
    // that e.g. "ab" and "ab\0" absorb differently.
    word |= 0x80ULL << (8 * filled);
    absorb_u64(word);
  }
  absorbed_len_ += data.size();
}

void Prf::absorb_u64(std::uint64_t v) {
  if (squeezing_) throw std::logic_error("Prf: absorb after squeeze");
  state_[0] ^= v;
  permute();
}

std::uint64_t Prf::squeeze64() {
  if (!squeezing_) {
    // Domain separation between absorb and squeeze phases, keyed by
    // total absorbed length.
    state_[1] ^= 0x9E3779B97F4A7C15ULL ^ absorbed_len_;
    permute();
    squeezing_ = true;
  }
  const std::uint64_t out = state_[0] ^ rotl(state_[2], 31);
  permute();
  return out;
}

std::uint64_t prf64(const Key& key, std::span<const std::uint8_t> data) {
  Prf prf(key);
  prf.absorb(data);
  return prf.squeeze64();
}

Key derive_key(const Key& master, std::uint64_t label_a, std::uint64_t label_b) {
  Prf prf(master);
  prf.absorb_u64(label_a);
  prf.absorb_u64(label_b);
  Key k;
  k.words[0] = prf.squeeze64();
  k.words[1] = prf.squeeze64();
  return k;
}

}  // namespace icpda::crypto
