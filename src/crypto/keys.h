// Key-management interface.
//
// iCPDA is key-scheme agnostic: any mechanism that gives neighbouring
// sensors a shared link key works, and the *privacy* experiments only
// depend on which third parties can read which links. This interface
// captures exactly that, and keyring.h ships two concrete schemes:
//   * MasterPairwiseScheme — every pair derives a unique key from a
//     pre-loaded master (ideal pairwise keying: no structural leaks);
//   * EgPredistribution    — Eschenauer–Gligor random key rings, where
//     key reuse lets some third parties read some links (the dominant
//     source of the paper's link-compromise probability px).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "crypto/prf.h"
#include "net/topology.h"

namespace icpda::crypto {

class KeyScheme {
 public:
  virtual ~KeyScheme() = default;

  /// Shared key for the unordered pair {a, b}, or nullopt if these two
  /// nodes cannot establish one (possible under EG predistribution).
  [[nodiscard]] virtual std::optional<Key> link_key(net::NodeId a,
                                                    net::NodeId b) const = 0;

  /// Batch variant: the link keys for {self, p} over a whole member set
  /// in one pass. `out` is overwritten to peers.size() entries with
  /// out[i] == link_key(self, peers[i]) — including the nullopt cases
  /// (self itself, keyless pairs) — and keeps its capacity across calls.
  /// The default implementation is the per-pair loop; schemes whose
  /// keys come from a master-keyed PRF override it to amortize the key
  /// schedule across the cluster round.
  virtual void link_keys(net::NodeId self, std::span<const net::NodeId> peers,
                         std::vector<std::optional<Key>>& out) const {
    out.clear();
    out.reserve(peers.size());
    for (const net::NodeId peer : peers) out.push_back(link_key(self, peer));
  }

  /// Can node `c` (not an endpoint) decrypt traffic on link {a, b}
  /// using only its own key material? This is the structural leak the
  /// privacy analysis calls key reuse.
  [[nodiscard]] virtual bool third_party_can_read(net::NodeId a, net::NodeId b,
                                                  net::NodeId c) const = 0;
};

}  // namespace icpda::crypto
