#include "crypto/cipher.h"

#include <bit>
#include <cstring>
#include <span>

namespace icpda::crypto {

namespace {

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  }
  return v;
}

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  return v;
}

void store_le64(std::uint8_t* p, std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  std::memcpy(p, &v, sizeof v);
}

/// XOR the PRF keystream for (key, nonce) into `data`. Whole words XOR
/// in one 64-bit op; byte k of each squeezed word lands on data[i + k]
/// exactly as the byte-at-a-time loop placed it.
void keystream_xor(const Key& key, std::uint64_t nonce,
                   std::span<std::uint8_t> data) {
  Prf prf(key);
  prf.absorb_u64(0x656E63ULL);  // "enc" domain separator
  prf.absorb_u64(nonce);
  std::size_t i = 0;
  const std::size_t n = data.size();
  for (; i + 8 <= n; i += 8) {
    store_le64(&data[i], load_le64(&data[i]) ^ prf.squeeze64());
  }
  if (i < n) {
    const std::uint64_t ks = prf.squeeze64();
    for (int b = 0; i < n; ++b, ++i) {
      data[i] ^= static_cast<std::uint8_t>(ks >> (8 * b));
    }
  }
}

/// Authentication tag over (nonce, ciphertext).
std::uint64_t auth_tag(const Key& key, std::uint64_t nonce,
                       std::span<const std::uint8_t> ciphertext) {
  Prf prf(key);
  prf.absorb_u64(0x746167ULL);  // "tag" domain separator
  prf.absorb_u64(nonce);
  prf.absorb(ciphertext);
  return prf.squeeze64();
}

}  // namespace

void seal_into(const Key& key, std::uint64_t nonce,
               std::span<const std::uint8_t> plaintext, Bytes& out) {
  out.clear();
  out.reserve(plaintext.size() + kSealOverheadBytes);
  put_u64(out, nonce);
  out.insert(out.end(), plaintext.begin(), plaintext.end());
  keystream_xor(key, nonce, std::span{out}.subspan(8));
  const std::uint64_t tag =
      auth_tag(key, nonce, std::span{out}.subspan(8, plaintext.size()));
  put_u64(out, tag);
}

Bytes seal(const Key& key, std::uint64_t nonce, const Bytes& plaintext) {
  Bytes out;
  seal_into(key, nonce, plaintext, out);
  return out;
}

bool open_into(const Key& key, std::span<const std::uint8_t> sealed, Bytes& plain) {
  plain.clear();
  if (sealed.size() < kSealOverheadBytes) return false;
  const std::uint64_t nonce = get_u64(sealed, 0);
  const std::size_t ct_len = sealed.size() - kSealOverheadBytes;
  const std::uint64_t claimed = get_u64(sealed, 8 + ct_len);
  const std::uint64_t expected = auth_tag(key, nonce, sealed.subspan(8, ct_len));
  if (claimed != expected) return false;
  plain.assign(sealed.begin() + 8,
               sealed.begin() + 8 + static_cast<std::ptrdiff_t>(ct_len));
  keystream_xor(key, nonce, std::span{plain});
  return true;
}

std::optional<Bytes> open(const Key& key, const Bytes& sealed) {
  Bytes plain;
  if (!open_into(key, sealed, plain)) return std::nullopt;
  return plain;
}

}  // namespace icpda::crypto
