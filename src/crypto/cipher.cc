#include "crypto/cipher.h"

#include <span>

namespace icpda::crypto {

namespace {

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const Bytes& in, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  }
  return v;
}

/// XOR the PRF keystream for (key, nonce) into `data`.
void keystream_xor(const Key& key, std::uint64_t nonce,
                   std::span<std::uint8_t> data) {
  Prf prf(key);
  prf.absorb_u64(0x656E63ULL);  // "enc" domain separator
  prf.absorb_u64(nonce);
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t ks = prf.squeeze64();
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<std::uint8_t>(ks >> (8 * b));
    }
  }
}

/// Authentication tag over (nonce, ciphertext).
std::uint64_t auth_tag(const Key& key, std::uint64_t nonce,
                       std::span<const std::uint8_t> ciphertext) {
  Prf prf(key);
  prf.absorb_u64(0x746167ULL);  // "tag" domain separator
  prf.absorb_u64(nonce);
  prf.absorb(ciphertext);
  return prf.squeeze64();
}

}  // namespace

Bytes seal(const Key& key, std::uint64_t nonce, const Bytes& plaintext) {
  Bytes out;
  out.reserve(plaintext.size() + kSealOverheadBytes);
  put_u64(out, nonce);
  out.insert(out.end(), plaintext.begin(), plaintext.end());
  keystream_xor(key, nonce, std::span{out}.subspan(8));
  const std::uint64_t tag =
      auth_tag(key, nonce, std::span{out}.subspan(8, plaintext.size()));
  put_u64(out, tag);
  return out;
}

std::optional<Bytes> open(const Key& key, const Bytes& sealed) {
  if (sealed.size() < kSealOverheadBytes) return std::nullopt;
  const std::uint64_t nonce = get_u64(sealed, 0);
  const std::size_t ct_len = sealed.size() - kSealOverheadBytes;
  const std::uint64_t claimed = get_u64(sealed, 8 + ct_len);
  const std::uint64_t expected =
      auth_tag(key, nonce, std::span{sealed}.subspan(8, ct_len));
  if (claimed != expected) return std::nullopt;
  Bytes plain(sealed.begin() + 8,
              sealed.begin() + 8 + static_cast<std::ptrdiff_t>(ct_len));
  keystream_xor(key, nonce, std::span{plain});
  return plain;
}

}  // namespace icpda::crypto
