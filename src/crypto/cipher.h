// Authenticated link-level encryption for data shares.
//
// Sealed-message format:  nonce(8) || ciphertext(len) || tag(8)
// The cipher is PRF-keystream XOR; the tag is a PRF over
// (nonce, ciphertext) under a domain-separated key. Opening with the
// wrong key fails the tag check with overwhelming probability, which
// is how the eavesdropper model decides whether a captured frame is
// readable. See prf.h for the security caveat (simulation-grade).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/prf.h"

namespace icpda::crypto {

using Bytes = std::vector<std::uint8_t>;

/// Ciphertext expansion of seal(): nonce + tag.
inline constexpr std::size_t kSealOverheadBytes = 16;

/// Encrypt-and-authenticate `plaintext` under `key` with a caller-
/// supplied unique `nonce` (per-key uniqueness is the caller's job; the
/// protocol layers use their per-node Rng).
[[nodiscard]] Bytes seal(const Key& key, std::uint64_t nonce, const Bytes& plaintext);

/// Verify-and-decrypt. Returns nullopt on tag mismatch (wrong key or
/// corrupted message) or malformed input.
[[nodiscard]] std::optional<Bytes> open(const Key& key, const Bytes& sealed);

/// Arena variant of seal(): writes the sealed message into `out`
/// (cleared and refilled; capacity is reused across calls, so a warm
/// buffer seals with zero heap allocations). The produced bytes are
/// identical to seal() for every (key, nonce, plaintext) — pinned
/// differentially by CryptoBatchTest. This is the one-context-per-
/// cluster-round entry point: the protocol keeps one buffer per round
/// and seals every member's share through it.
void seal_into(const Key& key, std::uint64_t nonce,
               std::span<const std::uint8_t> plaintext, Bytes& out);

/// Arena variant of open(): verifies and decrypts into `plain` (cleared
/// and refilled, capacity reused). Returns false — leaving `plain`
/// empty — exactly when open() would return nullopt.
[[nodiscard]] bool open_into(const Key& key, std::span<const std::uint8_t> sealed,
                             Bytes& plain);

}  // namespace icpda::crypto
