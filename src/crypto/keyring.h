// Concrete key-management schemes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/keys.h"
#include "sim/rng.h"

namespace icpda::crypto {

/// Ideal pairwise keying: every unordered pair {a, b} shares a unique
/// key derived from a network-wide master secret loaded before
/// deployment. No third party holds any link's key.
class MasterPairwiseScheme final : public KeyScheme {
 public:
  explicit MasterPairwiseScheme(Key master)
      : master_(master), deriver_(master) {}

  [[nodiscard]] std::optional<Key> link_key(net::NodeId a,
                                            net::NodeId b) const override;
  /// One cached key schedule serves the whole member set (KeyDeriver);
  /// entry values are byte-identical to the per-pair path.
  void link_keys(net::NodeId self, std::span<const net::NodeId> peers,
                 std::vector<std::optional<Key>>& out) const override;
  [[nodiscard]] bool third_party_can_read(net::NodeId, net::NodeId,
                                          net::NodeId) const override {
    return false;
  }

 private:
  Key master_;
  KeyDeriver deriver_;  ///< cached post-init sponge state for master_
};

/// Eschenauer–Gligor random key predistribution.
///
/// A pool of `pool_size` keys exists; each of `node_count` sensors is
/// pre-loaded with a ring of `ring_size` distinct keys drawn uniformly
/// from the pool. Two neighbours use the smallest-id key their rings
/// share. A third node whose ring contains that key can read the link —
/// this is what makes the effective link-compromise probability px
/// non-zero even without node capture.
class EgPredistribution final : public KeyScheme {
 public:
  EgPredistribution(std::size_t node_count, std::size_t pool_size,
                    std::size_t ring_size, sim::Rng rng);

  [[nodiscard]] std::optional<Key> link_key(net::NodeId a,
                                            net::NodeId b) const override;
  [[nodiscard]] bool third_party_can_read(net::NodeId a, net::NodeId b,
                                          net::NodeId c) const override;

  /// Key ids in node `n`'s ring (sorted).
  [[nodiscard]] const std::vector<std::uint32_t>& ring(net::NodeId n) const {
    return rings_.at(n);
  }
  [[nodiscard]] std::size_t pool_size() const { return pool_size_; }
  [[nodiscard]] std::size_t ring_size() const { return ring_size_; }

  /// Smallest shared key id for {a, b}, or nullopt.
  [[nodiscard]] std::optional<std::uint32_t> shared_key_id(net::NodeId a,
                                                           net::NodeId b) const;

  /// Closed-form probability that two random rings intersect:
  ///   1 - C(P-k, k) / C(P, k)
  /// (Eschenauer & Gligor 2002, eq. for direct connectivity).
  [[nodiscard]] static double connect_probability(std::size_t pool_size,
                                                  std::size_t ring_size);

  /// Closed-form probability that a third random ring contains one
  /// specific key id: k / P.
  [[nodiscard]] double third_party_read_probability() const {
    return static_cast<double>(ring_size_) / static_cast<double>(pool_size_);
  }

 private:
  std::size_t pool_size_;
  std::size_t ring_size_;
  Key pool_master_;
  KeyDeriver pool_deriver_;  ///< cached post-init sponge state for pool_master_
  std::vector<std::vector<std::uint32_t>> rings_;

  [[nodiscard]] Key pool_key(std::uint32_t key_id) const;
};

}  // namespace icpda::crypto
