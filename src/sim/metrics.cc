#include "sim/metrics.h"

#include <stdexcept>

namespace icpda::sim {

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || width_ != other.width_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: bucket geometry mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target) {
      const double frac = c > 0 ? (target - cum) / c : 0.0;
      return bucket_lo(i) + frac * width_;
    }
    cum += c;
  }
  return bucket_hi(counts_.size() - 1);
}

void MetricRegistry::add_slow(CacheEntry& e, std::string_view counter,
                              std::uint64_t delta) {
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(counter), std::uint64_t{0}).first;
  }
  it->second += delta;
  e.name = &it->first;
  e.value = &it->second;
}

void MetricRegistry::observe(std::string_view stat, double value) {
  auto it = stats_.find(stat);
  if (it == stats_.end()) {
    it = stats_.emplace(std::string(stat), RunningStats{}).first;
  }
  it->second.add(value);
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, s] : other.stats_) stats_[name].merge(s);
}

void MetricRegistry::drain_into(MetricRegistry& dst) {
  for (auto& [name, value] : counters_) {
    dst.counters_[name] += value;
    value = 0;  // node kept: bound Cells stay valid
  }
  for (auto& [name, s] : stats_) {
    dst.stats_[name].merge(s);
    s = RunningStats{};
  }
}

void MetricRegistry::print(std::ostream& os) const {
  os << "counters:\n";
  for (const auto& [name, value] : counters_) {
    os << "  " << name << " = " << value << "\n";
  }
  os << "stats:\n";
  for (const auto& [name, s] : stats_) {
    os << "  " << name << ": n=" << s.count() << " mean=" << s.mean()
       << " sd=" << s.stddev() << " min=" << s.min() << " max=" << s.max() << "\n";
  }
}

}  // namespace icpda::sim
