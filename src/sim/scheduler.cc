#include "sim/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace icpda::sim {

namespace {
/// Min-heap predicate for the border index (std::*_heap build
/// max-heaps, so "greater" yields a min-heap).
[[nodiscard]] bool border_later(const EventKey& a, const EventKey& b) {
  return b < a;
}

/// The dispatch currently executing on this thread — the "parent" of
/// everything it schedules. Thread-local rather than per-scheduler
/// because a gate-executed event inserts into FOREIGN schedulers
/// (cross-shard delivery), and the child's parentage is the acting
/// event, not anything the target scheduler knows. Parallel drains
/// each dispatch on their own worker thread, so contexts never mix.
struct DispatchCtx {
  bool active = false;
  SimTime parent_sched_at = SimTime::infinity();
  std::uint32_t parent_owner = kNoEventOwner;
  std::uint32_t next_intra = 0;
};
thread_local DispatchCtx t_dispatch_ctx;
}  // namespace

EventId Scheduler::at(SimTime t, EventFn fn, std::uint32_t owner, bool border) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler::at: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Scheduler::at: empty callback");
  }
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(meta_.size());
    meta_.emplace_back();
    fns_.emplace_back();
    ext_.emplace_back();
  }
  Meta& m = meta_[s];
  fns_[s] = std::move(fn);
  // The Ext slab is written only under tracking: untracked schedulers
  // never read it back (pop skips it, and only the sharded gate — which
  // tracks by construction — calls next_key()), so skipping the store
  // keeps the single-shard schedule path at its pre-sharding cost.
  // Stale slot contents from before set_track_parentage(true) are ruled
  // out by the engine enabling it before any event exists.
  if (track_parentage_) {
    Ext& x = ext_[s];
    DispatchCtx& ctx = t_dispatch_ctx;
    if (ctx.active) {
      x = Ext{now_, ctx.parent_sched_at, ctx.parent_owner, ctx.next_intra++};
    } else {
      x = Ext{now_};  // setup code: FIFO-last at any tie (+inf anc2)
    }
  }
  m.heap_pos = static_cast<std::uint32_t>(heap_.size());
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(HeapEntry{t, seq, owner, s});
  sift_up(heap_.size() - 1);
  if (border) index_border(t, seq, owner, s);
  return encode(s, m.gen);
}

// Out of line deliberately: only sharded runs ever tag border events,
// and inlining the push_heap machinery doubles at()'s code size for
// everyone else.
void Scheduler::index_border(SimTime t, std::uint64_t seq,
                             std::uint32_t owner, std::uint32_t s) {
  const Ext& x = ext_[s];
  border_.push_back(BorderEntry{
      EventKey{t, now_, owner, seq, x.anc2, x.parent_owner, x.intra}, s,
      meta_[s].gen});
  std::push_heap(border_.begin(), border_.end(),
                 [](const BorderEntry& a, const BorderEntry& b) {
                   return border_later(a.key, b.key);
                 });
}

void Scheduler::dispatch_tracked(Popped& ev) {
  now_ = ev.at;
  DispatchCtx& ctx = t_dispatch_ctx;
  const DispatchCtx saved = ctx;
  ctx = DispatchCtx{true, ev.sched_at, ev.owner, 0};
  struct Restore {
    DispatchCtx& ctx;
    const DispatchCtx& saved;
    ~Restore() { ctx = saved; }
  } restore{ctx, saved};
  Tracer* tr = tracer_;
  const bool span = tr && tr->enabled() && tr->config().scheduler_spans;
  if (span) {
    tr->begin_span(kTraceGlobalNode, TracePhase::kDispatch, now_,
                   static_cast<std::uint64_t>(ev.id));
  }
  ev.fn();
  if (span) tr->end_span(kTraceGlobalNode, TracePhase::kDispatch, now_);
  ++executed_;
}

bool Scheduler::next_border(EventKey& out) {
  const auto later = [](const BorderEntry& a, const BorderEntry& b) {
    return border_later(a.key, b.key);
  };
  while (!border_.empty()) {
    const BorderEntry& top = border_.front();
    const Meta& m = meta_[top.slot];
    if (m.gen == top.gen && m.heap_pos != kNotQueued) {
      out = top.key;
      return true;
    }
    // Fired or cancelled since it was indexed: drop lazily.
    std::pop_heap(border_.begin(), border_.end(), later);
    border_.pop_back();
  }
  return false;
}

bool Scheduler::cancel(EventId id) {
  const auto raw = static_cast<std::uint64_t>(id);
  const auto s = static_cast<std::uint32_t>(raw & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(raw >> 32);
  if (s >= meta_.size()) return false;
  const Meta& m = meta_[s];
  if (m.gen != gen || m.heap_pos == kNotQueued) return false;  // fired or stale
  remove_at(m.heap_pos);
  return true;
}

void Scheduler::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    const HeapEntry& p = heap_[parent];
    if (!before(e, p)) break;
    heap_[pos] = p;
    meta_[p.slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  meta_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Scheduler::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[pos];
  while (true) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    const HeapEntry b = heap_[best];
    if (!before(b, e)) break;
    heap_[pos] = b;
    meta_[b.slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  meta_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Scheduler::remove_at(std::size_t pos) {
  release(heap_[pos].slot);
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail
  heap_[pos] = moved;
  meta_[moved.slot].heap_pos = static_cast<std::uint32_t>(pos);
  // The replacement came from the bottom: it can only need to move
  // down, unless the removal hole was below its parent (possible when
  // removing from the middle) — try both; one is a no-op.
  sift_up(pos);
  sift_down(meta_[moved.slot].heap_pos);
}

void Scheduler::release(std::uint32_t s) {
  fns_[s] = nullptr;  // drop captured state now, not at slot reuse
  Meta& m = meta_[s];
  m.heap_pos = kNotQueued;
  ++m.gen;
  free_slots_.push_back(s);
}

bool Scheduler::pop_next(Popped& out) {
  if (heap_.empty()) return false;
  const std::uint32_t s = heap_[0].slot;
  Meta& m = meta_[s];
  out.at = heap_[0].at;
  // Only the parent-context publish in dispatch() consumes sched_at,
  // and only under tracking — skip the slab load otherwise.
  out.sched_at = track_parentage_ ? ext_[s].sched_at : SimTime::zero();
  out.owner = heap_[0].owner;
  out.id = encode(s, m.gen);
  out.fn = std::move(fns_[s]);  // move empties the slab cell
  m.heap_pos = kNotQueued;
  ++m.gen;
  free_slots_.push_back(s);
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = moved;
    meta_[moved.slot].heap_pos = 0;
    sift_down(0);
  }
  return true;
}

std::uint64_t Scheduler::run() {
  std::uint64_t fired = 0;
  Popped ev;
  while (pop_next(ev)) {
    dispatch(ev);
    ++fired;
  }
  return fired;
}

std::uint64_t Scheduler::run_until(SimTime deadline) {
  std::uint64_t fired = 0;
  Popped ev;
  while (!heap_.empty() && heap_[0].at <= deadline) {
    pop_next(ev);
    dispatch(ev);
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::uint64_t Scheduler::run_before(SimTime bound) {
  std::uint64_t fired = 0;
  Popped ev;
  while (!heap_.empty() && heap_[0].at < bound) {
    pop_next(ev);
    dispatch(ev);
    ++fired;
  }
  return fired;
}

bool Scheduler::run_one() {
  Popped ev;
  if (!pop_next(ev)) return false;
  dispatch(ev);
  return true;
}

std::uint64_t Scheduler::run_steps(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  Popped ev;
  while (fired < max_events && pop_next(ev)) {
    dispatch(ev);
    ++fired;
  }
  return fired;
}

void Scheduler::reset() {
  for (const HeapEntry& e : heap_) release(e.slot);
  heap_.clear();
  border_.clear();
  now_ = SimTime::zero();
  executed_ = 0;
}

}  // namespace icpda::sim
