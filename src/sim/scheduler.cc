#include "sim/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace icpda::sim {

namespace {
/// Min-heap predicate for the border index (std::*_heap build
/// max-heaps, so "greater" yields a min-heap).
[[nodiscard]] bool border_later(const EventKey& a, const EventKey& b) {
  return b < a;
}

/// The dispatch currently executing on this thread — the "parent" of
/// everything it schedules. Thread-local rather than per-scheduler
/// because a gate-executed event inserts into FOREIGN schedulers
/// (cross-shard delivery), and the child's parentage is the acting
/// event, not anything the target scheduler knows. Parallel drains
/// each dispatch on their own worker thread, so contexts never mix.
///
/// `self` is the dispatch's lineage node, created lazily on its first
/// child; it absorbs the dispatched event's own chain reference
/// (`parent`, transferred from the popped slot).
struct DispatchCtx {
  bool active = false;
  SimTime sched_at = SimTime::infinity();  ///< dispatched event's sched time
  Lineage* self = nullptr;    ///< this dispatch's node (lazily created)
  Lineage* parent = nullptr;  ///< dispatched event's own parent chain
  std::uint32_t intra = 0;    ///< dispatched event's intra / install seq
  std::uint32_t next_intra = 0;
};
thread_local DispatchCtx t_dispatch_ctx;

/// Global install sequence: events scheduled outside any dispatch
/// (network wiring, per-epoch setup) order by program order at a full
/// cross-shard tie, exactly as single-heap seq would. Serial program
/// phases issue these; atomic only as belt-and-braces.
std::atomic<std::uint32_t> g_install_seq{0};

/// Recycling pool for lineage nodes: freed nodes return to the
/// freeing thread's pool (no cross-thread synchronisation), capped so
/// a burst cannot pin unbounded memory. The wrapper destructor matters:
/// every sharded Network owns its own worker pool, so threads come and
/// go with Networks — a bare vector of raw pointers would leak its
/// pooled nodes on every thread exit, growing without bound over a
/// campaign's thousands of cells.
struct LineagePool {
  std::vector<Lineage*> nodes;
  ~LineagePool() {
    for (Lineage* n : nodes) delete n;
  }
};
thread_local LineagePool t_lineage_pool_holder;
constexpr std::size_t kLineagePoolCap = 1 << 14;

std::atomic<std::uint64_t> g_lineage_live{0};
std::atomic<std::uint64_t> g_lineage_peak{0};
std::atomic<std::uint32_t> g_lineage_max_depth{0};

void note_peak(std::uint64_t live) {
  std::uint64_t cur = g_lineage_peak.load(std::memory_order_relaxed);
  while (live > cur && !g_lineage_peak.compare_exchange_weak(
                           cur, live, std::memory_order_relaxed)) {
  }
}

[[nodiscard]] Lineage* lineage_alloc() {
  note_peak(g_lineage_live.fetch_add(1, std::memory_order_relaxed) + 1);
  if (!t_lineage_pool_holder.nodes.empty()) {
    Lineage* n = t_lineage_pool_holder.nodes.back();
    t_lineage_pool_holder.nodes.pop_back();
    return n;
  }
  return new Lineage;
}

/// Build the lineage node for the running dispatch, transferring the
/// context's chain reference into it (or dropping the chain at the
/// depth cap).
[[nodiscard]] Lineage* lineage_for_dispatch(DispatchCtx& ctx) {
  Lineage* n = lineage_alloc();
  n->sched_at = ctx.sched_at;
  n->intra = ctx.intra;
  n->refs.store(1, std::memory_order_relaxed);  // the context's hold
  if (ctx.parent == nullptr) {
    n->parent = nullptr;
    n->depth = 0;
    n->flags = Lineage::kRoot;
  } else if (ctx.parent->depth + 1 >= kMaxLineageDepth) {
    // Restart the chain: depth resets to 0 so descendants keep
    // accumulating the most recent <= kMaxLineageDepth generations of
    // history (a cut that left depth at the cap would truncate every
    // descendant too, destroying ALL later ties' history — that bug
    // shipped first; see DESIGN.md §5k).
    lineage_release(ctx.parent);
    n->parent = nullptr;
    n->depth = 0;
    n->flags = Lineage::kTruncated;
  } else {
    n->parent = ctx.parent;  // transfer: no refcount traffic
    n->depth = static_cast<std::uint16_t>(ctx.parent->depth + 1);
    n->flags = 0;
    std::uint32_t cur = g_lineage_max_depth.load(std::memory_order_relaxed);
    while (n->depth > cur && !g_lineage_max_depth.compare_exchange_weak(
                                 cur, n->depth, std::memory_order_relaxed)) {
    }
  }
  ctx.parent = nullptr;  // ownership moved into (or released by) the node
  return n;
}
}  // namespace

void lineage_release(Lineage* n) {
  while (n != nullptr &&
         n->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Lineage* next = n->parent;
    g_lineage_live.fetch_sub(1, std::memory_order_relaxed);
    if (t_lineage_pool_holder.nodes.size() < kLineagePoolCap) {
      t_lineage_pool_holder.nodes.push_back(n);
    } else {
      delete n;
    }
    n = next;
  }
}

namespace {
std::atomic<std::uint32_t> g_cmp_max_walk{0};
std::atomic<std::uint64_t> g_cmp_undecided{0};

void note_walk(std::uint32_t walked) {
  std::uint32_t cur = g_cmp_max_walk.load(std::memory_order_relaxed);
  while (walked > cur && !g_cmp_max_walk.compare_exchange_weak(
                             cur, walked, std::memory_order_relaxed)) {
  }
}
}  // namespace

LineageCmpStats lineage_cmp_stats() {
  return LineageCmpStats{g_cmp_max_walk.load(std::memory_order_relaxed),
                         g_cmp_undecided.load(std::memory_order_relaxed),
                         g_lineage_live.load(std::memory_order_relaxed),
                         g_lineage_peak.load(std::memory_order_relaxed),
                         g_lineage_max_depth.load(std::memory_order_relaxed)};
}

void reset_lineage_cmp_stats() {
  g_cmp_max_walk.store(0, std::memory_order_relaxed);
  g_cmp_undecided.store(0, std::memory_order_relaxed);
  g_lineage_peak.store(g_lineage_live.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  g_lineage_max_depth.store(0, std::memory_order_relaxed);
}

int lineage_cmp(const Lineage* a, std::uint32_t ia, const Lineage* b,
                std::uint32_t ib) {
  std::uint32_t walked = 0;
  for (;;) {
    if (a == b) {
      // Same parent dispatch (or both install-scheduled): the child
      // index / install sequence is the FIFO order. Equal only for
      // one and the same event.
      note_walk(walked);
      if (ia != ib) return ia < ib ? -1 : 1;
      return 0;
    }
    // Install-scheduled sorts after runtime-scheduled at a full tie
    // (the legacy +infinity-ancestor rule; see DESIGN.md §5k).
    if (a == nullptr) {
      note_walk(walked);
      return 1;
    }
    if (b == nullptr) {
      note_walk(walked);
      return -1;
    }
    if (a->sched_at != b->sched_at) {
      note_walk(walked);
      return a->sched_at < b->sched_at ? -1 : 1;
    }
    // Parents tied at (fire, schedule) time too: their dispatch order
    // is decided one causal level up — unless a chain was cut.
    if (a->truncated() || b->truncated()) {
      note_walk(walked);
      g_cmp_undecided.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    ia = a->intra;
    ib = b->intra;
    a = a->parent;
    b = b->parent;
    ++walked;
  }
}

bool canonical_cross_before(const EventKey& a, const EventKey& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.sched_at != b.sched_at) return a.sched_at < b.sched_at;
  if (const int c = lineage_cmp(a.parent, a.intra, b.parent, b.intra)) {
    return c < 0;
  }
  // Undecidable only past the lineage depth cap: fall back to the
  // owner id — engine-independent (a node id never depends on its
  // home shard), deterministic across shard counts.
  return a.owner < b.owner;
}

Scheduler::~Scheduler() {
  if (!track_parentage_) return;
  for (const HeapEntry& e : heap_) {
    if (Lineage* p = ext_[e.slot].parent) {
      lineage_release(p);
      ext_[e.slot].parent = nullptr;
    }
  }
}

EventId Scheduler::at(SimTime t, EventFn fn, std::uint32_t owner, bool border) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler::at: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Scheduler::at: empty callback");
  }
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(meta_.size());
    meta_.emplace_back();
    fns_.emplace_back();
    ext_.emplace_back();
  }
  Meta& m = meta_[s];
  fns_[s] = std::move(fn);
  // The Ext slab is written only under tracking: untracked schedulers
  // never read it back (pop skips it, and only the sharded gate — which
  // tracks by construction — calls next_key()), so skipping the store
  // keeps the single-shard schedule path at its pre-sharding cost.
  // Stale slot contents from before set_track_parentage(true) are ruled
  // out by the engine enabling it before any event exists.
  if (track_parentage_) {
    Ext& x = ext_[s];
    DispatchCtx& ctx = t_dispatch_ctx;
    if (ctx.active) {
      if (ctx.self == nullptr) ctx.self = lineage_for_dispatch(ctx);
      ctx.self->refs.fetch_add(1, std::memory_order_relaxed);
      x = Ext{now_, ctx.self, ctx.next_intra++};
    } else {
      // Setup code outside any dispatch: a chain root, ordered by the
      // global install sequence (FIFO-last against runtime events at
      // a full tie — see lineage_cmp).
      x = Ext{now_, nullptr,
              g_install_seq.fetch_add(1, std::memory_order_relaxed)};
    }
  }
  m.heap_pos = static_cast<std::uint32_t>(heap_.size());
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(HeapEntry{t, seq, owner, s});
  sift_up(heap_.size() - 1);
  if (border) index_border(t, seq, owner, s);
  return encode(s, m.gen);
}

// Out of line deliberately: only sharded runs ever tag border events,
// and inlining the push_heap machinery doubles at()'s code size for
// everyone else.
void Scheduler::index_border(SimTime t, std::uint64_t seq,
                             std::uint32_t owner, std::uint32_t s) {
  const Ext& x = ext_[s];
  border_.push_back(BorderEntry{
      EventKey{t, now_, owner, seq, x.parent, x.intra}, s, meta_[s].gen});
  std::push_heap(border_.begin(), border_.end(),
                 [](const BorderEntry& a, const BorderEntry& b) {
                   return border_later(a.key, b.key);
                 });
}

void Scheduler::dispatch_tracked(Popped& ev) {
  now_ = ev.at;
  DispatchCtx& ctx = t_dispatch_ctx;
  const DispatchCtx saved = ctx;
  ctx = DispatchCtx{true, ev.sched_at, nullptr, ev.parent, ev.intra, 0};
  struct Restore {
    DispatchCtx& ctx;
    const DispatchCtx& saved;
    // Runs on normal return AND unwind: drop the dispatch's chain hold
    // (self when a node was created — children keep their own refs —
    // else the popped event's untransferred parent reference).
    ~Restore() {
      if (ctx.self != nullptr) {
        lineage_release(ctx.self);
      } else if (ctx.parent != nullptr) {
        lineage_release(ctx.parent);
      }
      ctx = saved;
    }
  } restore{ctx, saved};
  Tracer* tr = tracer_;
  const bool span = tr && tr->enabled() && tr->config().scheduler_spans;
  if (span) {
    tr->begin_span(kTraceGlobalNode, TracePhase::kDispatch, now_,
                   static_cast<std::uint64_t>(ev.id));
  }
  ev.fn();
  if (span) tr->end_span(kTraceGlobalNode, TracePhase::kDispatch, now_);
  ++executed_;
}

bool Scheduler::next_border(EventKey& out) {
  const auto later = [](const BorderEntry& a, const BorderEntry& b) {
    return border_later(a.key, b.key);
  };
  while (!border_.empty()) {
    const BorderEntry& top = border_.front();
    const Meta& m = meta_[top.slot];
    if (m.gen == top.gen && m.heap_pos != kNotQueued) {
      out = top.key;
      return true;
    }
    // Fired or cancelled since it was indexed: drop lazily.
    std::pop_heap(border_.begin(), border_.end(), later);
    border_.pop_back();
  }
  return false;
}

bool Scheduler::cancel(EventId id) {
  const auto raw = static_cast<std::uint64_t>(id);
  const auto s = static_cast<std::uint32_t>(raw & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(raw >> 32);
  if (s >= meta_.size()) return false;
  const Meta& m = meta_[s];
  if (m.gen != gen || m.heap_pos == kNotQueued) return false;  // fired or stale
  remove_at(m.heap_pos);
  return true;
}

void Scheduler::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    const HeapEntry& p = heap_[parent];
    if (!before(e, p)) break;
    heap_[pos] = p;
    meta_[p.slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  meta_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Scheduler::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[pos];
  while (true) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    const HeapEntry b = heap_[best];
    if (!before(b, e)) break;
    heap_[pos] = b;
    meta_[b.slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  meta_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Scheduler::remove_at(std::size_t pos) {
  release(heap_[pos].slot);
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail
  heap_[pos] = moved;
  meta_[moved.slot].heap_pos = static_cast<std::uint32_t>(pos);
  // The replacement came from the bottom: it can only need to move
  // down, unless the removal hole was below its parent (possible when
  // removing from the middle) — try both; one is a no-op.
  sift_up(pos);
  sift_down(meta_[moved.slot].heap_pos);
}

void Scheduler::release(std::uint32_t s) {
  fns_[s] = nullptr;  // drop captured state now, not at slot reuse
  if (track_parentage_) {
    if (Lineage* p = ext_[s].parent) {
      lineage_release(p);
      ext_[s].parent = nullptr;
    }
  }
  Meta& m = meta_[s];
  m.heap_pos = kNotQueued;
  ++m.gen;
  free_slots_.push_back(s);
}

bool Scheduler::pop_next(Popped& out) {
  if (heap_.empty()) return false;
  const std::uint32_t s = heap_[0].slot;
  Meta& m = meta_[s];
  out.at = heap_[0].at;
  // Only the parent-context publish in dispatch() consumes the Ext
  // fields, and only under tracking — skip the slab loads otherwise.
  // The slot's lineage reference TRANSFERS into the Popped (nulling
  // the slab cell so slot reuse never double-releases it).
  if (track_parentage_) {
    Ext& x = ext_[s];
    out.sched_at = x.sched_at;
    out.intra = x.intra;
    out.parent = x.parent;
    x.parent = nullptr;
  } else {
    out.sched_at = SimTime::zero();
    out.intra = 0;
    out.parent = nullptr;
  }
  out.owner = heap_[0].owner;
  out.id = encode(s, m.gen);
  out.fn = std::move(fns_[s]);  // move empties the slab cell
  m.heap_pos = kNotQueued;
  ++m.gen;
  free_slots_.push_back(s);
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = moved;
    meta_[moved.slot].heap_pos = 0;
    sift_down(0);
  }
  return true;
}

std::uint64_t Scheduler::run() {
  std::uint64_t fired = 0;
  Popped ev;
  while (pop_next(ev)) {
    dispatch(ev);
    ++fired;
  }
  return fired;
}

std::uint64_t Scheduler::run_until(SimTime deadline) {
  std::uint64_t fired = 0;
  Popped ev;
  while (!heap_.empty() && heap_[0].at <= deadline) {
    pop_next(ev);
    dispatch(ev);
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::uint64_t Scheduler::run_before(SimTime bound) {
  std::uint64_t fired = 0;
  Popped ev;
  while (!heap_.empty() && heap_[0].at < bound) {
    pop_next(ev);
    dispatch(ev);
    ++fired;
  }
  return fired;
}

bool Scheduler::run_one() {
  Popped ev;
  if (!pop_next(ev)) return false;
  dispatch(ev);
  return true;
}

std::uint64_t Scheduler::run_steps(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  Popped ev;
  while (fired < max_events && pop_next(ev)) {
    dispatch(ev);
    ++fired;
  }
  return fired;
}

void Scheduler::reset() {
  for (const HeapEntry& e : heap_) release(e.slot);
  heap_.clear();
  border_.clear();
  now_ = SimTime::zero();
  executed_ = 0;
}

}  // namespace icpda::sim
