#include "sim/scheduler.h"

#include <stdexcept>
#include <utility>

namespace icpda::sim {

EventId Scheduler::at(SimTime t, EventFn fn) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler::at: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Scheduler::at: empty callback");
  }
  const EventId id{next_id_++};
  queue_.push(Event{t, id, std::move(fn)});
  pending_ids_.insert(static_cast<std::uint64_t>(id));
  return id;
}

bool Scheduler::cancel(EventId id) {
  // We cannot remove from the middle of a binary heap cheaply, so we
  // record the id and discard the event lazily when it surfaces.
  const auto raw = static_cast<std::uint64_t>(id);
  if (pending_ids_.erase(raw) == 0) return false;  // fired or unknown
  cancelled_.insert(raw);
  return true;
}

bool Scheduler::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const&; we must copy the closure out
    // before pop. Closures in this codebase are small (captured
    // pointers + POD), so the copy is cheap.
    out = queue_.top();
    queue_.pop();
    const auto raw = static_cast<std::uint64_t>(out.id);
    if (auto it = cancelled_.find(raw); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(raw);
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run() {
  std::uint64_t fired = 0;
  Event ev;
  while (pop_next(ev)) {
    dispatch(ev);
    ++fired;
  }
  return fired;
}

std::uint64_t Scheduler::run_until(SimTime deadline) {
  std::uint64_t fired = 0;
  Event ev;
  while (pop_next(ev)) {
    if (ev.at > deadline) {
      // Put it back; it is beyond the horizon.
      queue_.push(std::move(ev));
      break;
    }
    dispatch(ev);
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::uint64_t Scheduler::run_steps(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  Event ev;
  while (fired < max_events && pop_next(ev)) {
    dispatch(ev);
    ++fired;
  }
  return fired;
}

void Scheduler::reset() {
  queue_ = {};
  pending_ids_.clear();
  cancelled_.clear();
  now_ = SimTime::zero();
  executed_ = 0;
}

}  // namespace icpda::sim
