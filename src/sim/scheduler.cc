#include "sim/scheduler.h"

#include <stdexcept>
#include <utility>

namespace icpda::sim {

EventId Scheduler::at(SimTime t, EventFn fn) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler::at: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Scheduler::at: empty callback");
  }
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(meta_.size());
    meta_.emplace_back();
    fns_.emplace_back();
  }
  Meta& m = meta_[s];
  fns_[s] = std::move(fn);
  m.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{t, next_seq_++, s});
  sift_up(heap_.size() - 1);
  return encode(s, m.gen);
}

bool Scheduler::cancel(EventId id) {
  const auto raw = static_cast<std::uint64_t>(id);
  const auto s = static_cast<std::uint32_t>(raw & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(raw >> 32);
  if (s >= meta_.size()) return false;
  const Meta& m = meta_[s];
  if (m.gen != gen || m.heap_pos == kNotQueued) return false;  // fired or stale
  remove_at(m.heap_pos);
  return true;
}

void Scheduler::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    const HeapEntry& p = heap_[parent];
    if (!before(e, p)) break;
    heap_[pos] = p;
    meta_[p.slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  meta_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Scheduler::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[pos];
  while (true) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    const HeapEntry b = heap_[best];
    if (!before(b, e)) break;
    heap_[pos] = b;
    meta_[b.slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  meta_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Scheduler::remove_at(std::size_t pos) {
  release(heap_[pos].slot);
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail
  heap_[pos] = moved;
  meta_[moved.slot].heap_pos = static_cast<std::uint32_t>(pos);
  // The replacement came from the bottom: it can only need to move
  // down, unless the removal hole was below its parent (possible when
  // removing from the middle) — try both; one is a no-op.
  sift_up(pos);
  sift_down(meta_[moved.slot].heap_pos);
}

void Scheduler::release(std::uint32_t s) {
  fns_[s] = nullptr;  // drop captured state now, not at slot reuse
  Meta& m = meta_[s];
  m.heap_pos = kNotQueued;
  ++m.gen;
  free_slots_.push_back(s);
}

bool Scheduler::pop_next(SimTime& at, EventId& id, EventFn& fn) {
  if (heap_.empty()) return false;
  const std::uint32_t s = heap_[0].slot;
  Meta& m = meta_[s];
  at = heap_[0].at;
  id = encode(s, m.gen);
  fn = std::move(fns_[s]);  // move empties the slab cell
  m.heap_pos = kNotQueued;
  ++m.gen;
  free_slots_.push_back(s);
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = moved;
    meta_[moved.slot].heap_pos = 0;
    sift_down(0);
  }
  return true;
}

std::uint64_t Scheduler::run() {
  std::uint64_t fired = 0;
  SimTime at;
  EventId id;
  EventFn fn;
  while (pop_next(at, id, fn)) {
    dispatch(at, id, fn);
    ++fired;
  }
  return fired;
}

std::uint64_t Scheduler::run_until(SimTime deadline) {
  std::uint64_t fired = 0;
  SimTime at;
  EventId id;
  EventFn fn;
  while (!heap_.empty() && heap_[0].at <= deadline) {
    pop_next(at, id, fn);
    dispatch(at, id, fn);
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::uint64_t Scheduler::run_steps(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  SimTime at;
  EventId id;
  EventFn fn;
  while (fired < max_events && pop_next(at, id, fn)) {
    dispatch(at, id, fn);
    ++fired;
  }
  return fired;
}

void Scheduler::reset() {
  for (const HeapEntry& e : heap_) release(e.slot);
  heap_.clear();
  now_ = SimTime::zero();
  executed_ = 0;
}

}  // namespace icpda::sim
