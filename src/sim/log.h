// Minimal leveled tracing for protocol debugging.
//
// Logging is OFF by default and costs one branch per call site when
// off; the benchmark binaries never enable it. Tests that assert on
// protocol traces capture via set_sink().
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace icpda::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Process-wide logger used by convenience macros; individual
  /// Simulations may also own private Logger instances.
  static Logger& global();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return level_ >= level && level != LogLevel::kOff;
  }

  /// Replace the output sink (default: stderr). Pass nullptr to restore
  /// the default.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

/// Stream-style logging helper:
///   ICPDA_LOG(kDebug) << "node " << id << " became CH";
/// The stream body is not evaluated when the level is disabled.
#define ICPDA_LOG(lvl)                                                     \
  if (!::icpda::sim::Logger::global().enabled(::icpda::sim::LogLevel::lvl)) \
    ;                                                                      \
  else                                                                     \
    ::icpda::sim::LogLine(::icpda::sim::LogLevel::lvl)

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::global().log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace icpda::sim
