// Event identity and callback types for the discrete-event kernel.
#pragma once

#include <cstdint>
#include <functional>

namespace icpda::sim {

/// Opaque identifier of a scheduled event; used to cancel it.
///
/// Ids are unique within one Scheduler for the lifetime of the
/// simulation: the encoding carries a per-slot generation counter, so
/// a stale id (fired, cancelled, or from before a reset()) can never
/// alias a live event and cancel() on it is a safe no-op.
enum class EventId : std::uint64_t {};

/// Callback executed when an event fires. Events carry no payload of
/// their own; closures capture whatever state they need.
///
/// Dispatch order is (time, schedule-order): events scheduled earlier
/// at equal times fire first — the deterministic FIFO tie-break that
/// reproducibility rests on. The ordering key is an internal monotone
/// sequence number, not the EventId (see scheduler.h).
using EventFn = std::function<void()>;

}  // namespace icpda::sim
