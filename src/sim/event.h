// Event identity and callback types for the discrete-event kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace icpda::sim {

/// Opaque identifier of a scheduled event; used to cancel it.
///
/// Ids are unique within one Scheduler for the lifetime of the
/// simulation: the encoding carries a per-slot generation counter, so
/// a stale id (fired, cancelled, or from before a reset()) can never
/// alias a live event and cancel() on it is a safe no-op.
enum class EventId : std::uint64_t {};

/// Callback executed when an event fires. Events carry no payload of
/// their own; closures capture whatever state they need.
///
/// Dispatch order is (time, schedule-order): events scheduled earlier
/// at equal times fire first — the deterministic FIFO tie-break that
/// reproducibility rests on. The ordering key is an internal monotone
/// sequence number, not the EventId (see scheduler.h).
///
/// Move-only with small-buffer storage (DESIGN.md §5i): a simulation
/// at N = 1000 dispatches ~10^5 events per epoch, and std::function's
/// 16-byte inline budget sent nearly every closure through the heap.
/// The 48-byte buffer holds all of the kernel's hot closures — channel
/// delivery (this + shared Frame + ids), the MAC's tx-done/backoff/ACK
/// continuations (this + at most a 40-byte Frame) — so steady-state
/// event traffic allocates nothing. Oversized captures fall back to a
/// single heap cell; behaviour is identical either way.
class EventFn {
 public:
  /// Inline capture budget. Raising it grows every scheduler slot;
  /// the current hot-closure high-water mark is the MAC's deferred
  /// ACK (this + 40-byte Frame = 48).
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kOps<D, /*Inline=*/true>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kOps<D, /*Inline=*/false>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    /// Move-construct the callable into `dst` storage and destroy the
    /// one in `src` (for the heap case this just relocates a pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj) noexcept;
  };

  template <typename D>
  static D* as(void* p) noexcept {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D, bool Inline>
  struct Vtbl {
    static void invoke(void* p) {
      if constexpr (Inline) {
        (*as<D>(p))();
      } else {
        (**as<D*>(p))();
      }
    }
    static void relocate(void* dst, void* src) noexcept {
      if constexpr (Inline) {
        D* s = as<D>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      } else {
        ::new (dst) D*(*as<D*>(src));
      }
    }
    static void destroy(void* p) noexcept {
      if constexpr (Inline) {
        as<D>(p)->~D();
      } else {
        delete *as<D*>(p);
      }
    }
  };

  template <typename D, bool Inline>
  static constexpr Ops kOps{&Vtbl<D, Inline>::invoke, &Vtbl<D, Inline>::relocate,
                            &Vtbl<D, Inline>::destroy};

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void move_from(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace icpda::sim
