// Event representation for the discrete-event kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/time.h"

namespace icpda::sim {

/// Opaque identifier of a scheduled event; used to cancel it.
///
/// Ids are unique within one Scheduler for the lifetime of the
/// simulation (64-bit counter, never reused).
enum class EventId : std::uint64_t {};

/// Callback executed when an event fires. Events carry no payload of
/// their own; closures capture whatever state they need.
using EventFn = std::function<void()>;

/// A scheduled event, ordered by (time, sequence-number) so that events
/// scheduled earlier at equal times fire first (deterministic FIFO
/// tie-break, which matters for reproducibility).
struct Event {
  SimTime at;
  EventId id;
  EventFn fn;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at > b.at;
    return static_cast<std::uint64_t>(a.id) > static_cast<std::uint64_t>(b.id);
  }
};

}  // namespace icpda::sim
