// Structured event tracing: per-node ring buffers of typed events.
//
// The MetricRegistry answers "how much, over the whole run"; the Tracer
// answers "where inside the epoch did it go". Every event is a fixed
// 24-byte record written into a preallocated per-node ring buffer —
// zero heap allocation on the hot path, no locks (one simulation is one
// thread; campaign parallelism is across Networks, each with its own
// Tracer). A disabled tracer costs one predictable branch per call
// site, and the whole subsystem compiles to no-ops under
// -DICPDA_TRACE_DISABLED.
//
// Event model (see DESIGN.md §5e):
//  * span begin/end  — a node enters/leaves a protocol phase
//    (TracePhase). Spans on one node form a stack; the innermost open
//    span is the node's *current phase*, and counter events are
//    attributed to it at record time.
//  * counter         — a typed quantity (TraceCounter) with a value
//    (byte counts for tx/rx/drop events, slot counts for backoff).
//  * marker          — epoch boundaries written by the epoch driver.
//
// Determinism contract: recording is purely observational — it draws no
// randomness and schedules nothing, so an instrumented run is event-
// for-event identical to an uninstrumented one, and the trace itself is
// a deterministic function of (configuration, seed). A strictly
// monotone global sequence number stamps every event, so the merged
// trace has one canonical order and a stable digest. That is what makes
// golden-trace tests and --threads invariance checks possible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace icpda::sim {

#ifdef ICPDA_TRACE_DISABLED
inline constexpr bool kTraceCompiled = false;
#else
inline constexpr bool kTraceCompiled = true;
#endif

/// Protocol phase of a span. Phases mirror the per-phase accounting of
/// the iCPDA/iPDA papers: overhead is attributed to cluster formation
/// vs share exchange vs aggregation vs monitoring vs the up-tree
/// report, with the PR-1 recovery round as its own phase.
enum class TracePhase : std::uint8_t {
  kNone = 0,          ///< no open span (substrate traffic, TAG/SMART)
  kClusterFormation,  ///< iCPDA I: flood, join, roster
  kShareExchange,     ///< iCPDA II: encrypted shares + F announcements
  kHeadAggregation,   ///< iCPDA II/III: head solves, digests, merges
  kPeerMonitoring,    ///< iCPDA III: armed witness overhearing its head
  kReport,            ///< iCPDA III: up-tree report / forwarding duty
  kRecovery,          ///< PR-1: Phase II crash-recovery round
  kDispatch,          ///< scheduler event dispatch (global node)
  kMaxPhase,          ///< sentinel: number of phases
};

/// Typed counter events. Values are byte counts unless noted.
enum class TraceCounter : std::uint8_t {
  kTxBytes = 0,     ///< frame put on the air (sender side, incl. ACKs)
  kRxBytes,         ///< frame decoded intact (receiver side)
  kCollisionBytes,  ///< frame corrupted by overlap at this receiver
  kLossBytes,       ///< frame lost to channel noise at this receiver
  kBackoffSlots,    ///< MAC backoff drawn (value = contention slots)
  kDropBytes,       ///< frame dropped: queue overflow / retries / radio off
  kReroute,         ///< Phase III parent failover (value = new parent)
  kBackupReport,    ///< backup reporter takeover (value = dead head)
  kAdversaryAction, ///< compromised node deviated (value = attack class)
  kAdversaryDetect, ///< hardening flagged an attack (value = accused id)
  kQueryLaunch,     ///< service dispatcher launched a query (value = query id)
  kQueryComplete,   ///< service query closed at the BS (value = query id)
  kQueryDrop,       ///< service admission dropped a query (value = query id)
  // Sharded-engine barrier counters (net/shard_engine.h), recorded on
  // the global pseudo-node once per run when Config::shard_counters is
  // set. Values are counts, not bytes.
  kShardRounds,         ///< lookahead windows advanced
  kShardGateRounds,     ///< windows that needed a serialized gate
  kShardGateEvents,     ///< events executed inside gates (serial)
  kShardParallelEvents, ///< events executed in parallel drains
  kMaxCounter,      ///< sentinel: number of counters
};

/// How a span ended; rides in the `value` field of end events.
enum : std::uint64_t {
  kSpanEndNormal = 0,       ///< explicit protocol transition
  kSpanEndInterrupted = 1,  ///< node crashed mid-phase (fault injection)
  kSpanEndFinalized = 2,    ///< epoch driver closed it at epoch end
};

/// The node id used for events with no single owner (scheduler
/// dispatch spans, epoch markers).
inline constexpr std::uint32_t kTraceGlobalNode = 0xFFFFFFFFu;

/// One trace record. Fixed-size POD; `seq` is the global record order.
struct TraceEvent {
  enum class Kind : std::uint8_t { kBegin = 0, kEnd, kCounter, kMarker };

  double t = 0.0;            ///< simulation time, seconds
  std::uint64_t seq = 0;     ///< global monotone sequence number
  std::uint64_t value = 0;   ///< counter value / span-end reason / marker arg
  std::uint32_t node = 0;    ///< owning node (kTraceGlobalNode for global)
  Kind kind = Kind::kCounter;
  std::uint8_t tag = 0;      ///< TracePhase for spans, TraceCounter for counters
  std::uint16_t epoch = 0;   ///< epoch index at record time

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

[[nodiscard]] const char* trace_phase_name(TracePhase p);
[[nodiscard]] const char* trace_counter_name(TraceCounter c);
[[nodiscard]] const char* trace_kind_name(TraceEvent::Kind k);

/// Parse helpers for the trace_report CLI (inverse of the *_name
/// functions; return the sentinel on unknown names).
[[nodiscard]] TracePhase trace_phase_from_name(const std::string& name);
[[nodiscard]] TraceCounter trace_counter_from_name(const std::string& name);

class Tracer {
 public:
  struct Config {
    /// Ring capacity per node, in events. When a ring fills, the OLDEST
    /// events are overwritten and `dropped()` counts them — truncation
    /// is explicit, never silent.
    std::size_t node_capacity = 4096;
    /// Ring capacity of the global pseudo-node (markers + dispatch).
    std::size_t global_capacity = 4096;
    /// Record a kDispatch span around every scheduler event. High
    /// volume (one span per simulated event); off by default so the
    /// protocol-phase rings keep their history on long runs.
    bool scheduler_spans = false;
    /// Record receiver-side channel events (kRxBytes, kCollisionBytes,
    /// kLossBytes). One event per in-range receiver per frame — the
    /// dominant volume in dense networks. Disable for sender-side byte
    /// accounting, where only kTxBytes must survive ring wrap.
    bool rx_events = true;
    /// Record MAC backoff draws (kBackoffSlots).
    bool mac_events = true;
    /// Record the sharded engine's window/gate occupancy counters
    /// (kShard*) on the global pseudo-node at the end of each run. Off
    /// by default so single-shard golden traces are unaffected.
    bool shard_counters = false;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocate rings for `node_count` nodes and start recording. All
  /// heap allocation happens here, none on the record path.
  void enable(std::size_t node_count, Config config);
  void enable(std::size_t node_count) { enable(node_count, Config{}); }

  /// Stop recording and release every ring.
  void disable();

  /// Sharded recording mode (set by the Network when it runs the
  /// parallel engine): sequence numbers and drop counts become
  /// per-ring, so concurrent shards never touch a shared counter — a
  /// node's events are recorded only by its home shard (or inside the
  /// serialized gate), so each ring stays single-writer. Per-ring seq
  /// still orders one node's events totally; the cross-node
  /// interleaving is no longer meaningful, which is why sharded
  /// equivalence is judged on the per-node canonical digest
  /// (analysis::canonical_trace_digest) rather than merged() order.
  void set_sharded(bool sharded) { sharded_ = sharded; }
  [[nodiscard]] bool sharded() const { return sharded_; }

  [[nodiscard]] bool enabled() const { return kTraceCompiled && enabled_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t node_count() const {
    return rings_.empty() ? 0 : rings_.size() - 1;
  }

  // ---- hot path -----------------------------------------------------
  // Every recorder is a no-op unless enabled(); callers may also guard
  // with enabled() themselves to skip argument computation.

  /// Open a phase span on `node` (pushes onto the node's span stack).
  /// `value` is free-form span metadata (e.g. the scheduler event id
  /// for kDispatch spans); protocol phases leave it zero.
  void begin_span(std::uint32_t node, TracePhase phase, SimTime t,
                  std::uint64_t value = 0);

  /// Close the innermost span matching `phase` (and any spans opened
  /// inside it — a phase transition implies its sub-work is over).
  /// A stray end with no matching begin is dropped.
  void end_span(std::uint32_t node, TracePhase phase, SimTime t,
                std::uint64_t reason = kSpanEndNormal);

  /// End the current phase (if any) and begin `phase`: the one-liner
  /// protocol code uses for sequential phase transitions. No-op if the
  /// node is already in `phase`. `value` tags the opened span (the
  /// service layer stamps the query id so per-query latency decomposes
  /// by phase); single-query runs leave it zero, keeping their digests
  /// unchanged.
  void switch_phase(std::uint32_t node, TracePhase phase, SimTime t,
                    std::uint64_t value = 0);

  /// Record a typed counter event, attributed to the node's current
  /// phase at record time.
  void counter(std::uint32_t node, TraceCounter c, std::uint64_t value, SimTime t);

  /// Fault injection: the node crashed — close every open span with
  /// kSpanEndInterrupted so traces balance even on crash paths.
  void interrupt(std::uint32_t node, SimTime t);

  /// Epoch driver: close every open span on every node (reason
  /// kSpanEndFinalized), write an epoch-end marker, and advance the
  /// epoch index stamped on subsequent events.
  void finalize_epoch(SimTime t);

  /// Current innermost phase of `node` (kNone when no span is open).
  [[nodiscard]] TracePhase current_phase(std::uint32_t node) const;

  // ---- inspection ---------------------------------------------------

  /// Events recorded (including any later overwritten by ring wrap).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events lost to ring-buffer overwrite.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Epochs finalized so far.
  [[nodiscard]] std::uint16_t epoch() const { return epoch_; }

  /// All surviving events merged into the canonical global order
  /// (ascending seq). O(total events log node_count).
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  /// Surviving events of one node ring, oldest first. `node` may be
  /// kTraceGlobalNode.
  [[nodiscard]] std::vector<TraceEvent> node_events(std::uint32_t node) const;

 private:
  struct Ring {
    std::vector<TraceEvent> slots;
    std::size_t head = 0;   ///< next write position
    std::size_t count = 0;  ///< live events (<= slots.size())
    /// Sharded mode only: per-ring sequence and overwrite counters, so
    /// concurrent shards share no mutable tracer state.
    std::uint64_t next_seq = 0;
    std::uint64_t dropped = 0;
  };

  /// Fixed-depth span stack; deeper nesting is clamped (deepest frame
  /// replaced) rather than heap-grown.
  struct SpanStack {
    static constexpr std::size_t kDepth = 8;
    TracePhase frames[kDepth] = {};
    std::size_t depth = 0;
  };

  void record(std::uint32_t node, TraceEvent ev);
  [[nodiscard]] Ring& ring_for(std::uint32_t node);
  [[nodiscard]] const Ring& ring_for(std::uint32_t node) const;

  bool enabled_ = false;
  Config config_;
  std::vector<Ring> rings_;       ///< index node id; last slot = global
  std::vector<SpanStack> stacks_; ///< per real node
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint16_t epoch_ = 0;
  bool sharded_ = false;
};

}  // namespace icpda::sim
