#include "sim/trace.h"

#include <algorithm>
#include <string>

namespace icpda::sim {

const char* trace_phase_name(TracePhase p) {
  switch (p) {
    case TracePhase::kNone: return "none";
    case TracePhase::kClusterFormation: return "cluster_formation";
    case TracePhase::kShareExchange: return "share_exchange";
    case TracePhase::kHeadAggregation: return "head_aggregation";
    case TracePhase::kPeerMonitoring: return "peer_monitoring";
    case TracePhase::kReport: return "report";
    case TracePhase::kRecovery: return "recovery";
    case TracePhase::kDispatch: return "dispatch";
    case TracePhase::kMaxPhase: break;
  }
  return "invalid";
}

const char* trace_counter_name(TraceCounter c) {
  switch (c) {
    case TraceCounter::kTxBytes: return "tx_bytes";
    case TraceCounter::kRxBytes: return "rx_bytes";
    case TraceCounter::kCollisionBytes: return "collision_bytes";
    case TraceCounter::kLossBytes: return "loss_bytes";
    case TraceCounter::kBackoffSlots: return "backoff_slots";
    case TraceCounter::kDropBytes: return "drop_bytes";
    case TraceCounter::kReroute: return "reroute";
    case TraceCounter::kBackupReport: return "backup_report";
    case TraceCounter::kAdversaryAction: return "adversary_action";
    case TraceCounter::kAdversaryDetect: return "adversary_detect";
    case TraceCounter::kQueryLaunch: return "query_launch";
    case TraceCounter::kQueryComplete: return "query_complete";
    case TraceCounter::kQueryDrop: return "query_drop";
    case TraceCounter::kShardRounds: return "shard_rounds";
    case TraceCounter::kShardGateRounds: return "shard_gate_rounds";
    case TraceCounter::kShardGateEvents: return "shard_gate_events";
    case TraceCounter::kShardParallelEvents: return "shard_parallel_events";
    case TraceCounter::kMaxCounter: break;
  }
  return "invalid";
}

const char* trace_kind_name(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kBegin: return "B";
    case TraceEvent::Kind::kEnd: return "E";
    case TraceEvent::Kind::kCounter: return "C";
    case TraceEvent::Kind::kMarker: return "M";
  }
  return "?";
}

TracePhase trace_phase_from_name(const std::string& name) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(TracePhase::kMaxPhase); ++i) {
    const auto p = static_cast<TracePhase>(i);
    if (name == trace_phase_name(p)) return p;
  }
  return TracePhase::kMaxPhase;
}

TraceCounter trace_counter_from_name(const std::string& name) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(TraceCounter::kMaxCounter); ++i) {
    const auto c = static_cast<TraceCounter>(i);
    if (name == trace_counter_name(c)) return c;
  }
  return TraceCounter::kMaxCounter;
}

void Tracer::enable(std::size_t node_count, Config config) {
  if constexpr (!kTraceCompiled) return;
  config_ = config;
  rings_.assign(node_count + 1, Ring{});
  for (std::size_t i = 0; i < node_count; ++i) {
    rings_[i].slots.resize(std::max<std::size_t>(1, config.node_capacity));
  }
  rings_[node_count].slots.resize(std::max<std::size_t>(1, config.global_capacity));
  stacks_.assign(node_count, SpanStack{});
  next_seq_ = 0;
  dropped_ = 0;
  epoch_ = 0;
  enabled_ = true;
}

void Tracer::disable() {
  enabled_ = false;
  rings_.clear();
  stacks_.clear();
}

Tracer::Ring& Tracer::ring_for(std::uint32_t node) {
  const std::size_t last = rings_.size() - 1;
  return rings_[node < last ? node : last];
}

const Tracer::Ring& Tracer::ring_for(std::uint32_t node) const {
  const std::size_t last = rings_.size() - 1;
  return rings_[node < last ? node : last];
}

void Tracer::record(std::uint32_t node, TraceEvent ev) {
  Ring& ring = ring_for(node);
  // Sharded mode: per-ring counters. A ring has exactly one writer at
  // any moment (the node's home shard, or the serialized gate), so no
  // shared counter is ever touched from two shards concurrently.
  ev.seq = sharded_ ? ring.next_seq++ : next_seq_++;
  ev.epoch = epoch_;
  ring.slots[ring.head] = ev;
  ring.head = (ring.head + 1) % ring.slots.size();
  if (ring.count < ring.slots.size()) {
    ++ring.count;
  } else {
    // Overwrote the oldest event in this ring.
    if (sharded_) {
      ++ring.dropped;
    } else {
      ++dropped_;
    }
  }
}

std::uint64_t Tracer::recorded() const {
  if (!sharded_) return next_seq_;
  std::uint64_t total = next_seq_;
  for (const Ring& r : rings_) total += r.next_seq;
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = dropped_;
  for (const Ring& r : rings_) total += r.dropped;
  return total;
}

void Tracer::begin_span(std::uint32_t node, TracePhase phase, SimTime t,
                        std::uint64_t value) {
  if (!enabled()) return;
  if (node < stacks_.size()) {
    SpanStack& st = stacks_[node];
    if (st.depth == SpanStack::kDepth) {
      // Depth clamp: retire the deepest frame (with an end event) before
      // replacing it, so begins and ends stay balanced.
      record(node, TraceEvent{t.seconds(), 0, kSpanEndNormal, node,
                              TraceEvent::Kind::kEnd,
                              static_cast<std::uint8_t>(st.frames[st.depth - 1]), 0});
    } else {
      ++st.depth;
    }
    st.frames[st.depth - 1] = phase;
  }
  record(node, TraceEvent{t.seconds(), 0, value, node, TraceEvent::Kind::kBegin,
                          static_cast<std::uint8_t>(phase), 0});
}

void Tracer::end_span(std::uint32_t node, TracePhase phase, SimTime t,
                      std::uint64_t reason) {
  if (!enabled()) return;
  if (node < stacks_.size()) {
    SpanStack& st = stacks_[node];
    // Find the innermost matching frame; unwind (and emit ends for)
    // everything above it so begins and ends always balance.
    std::size_t match = st.depth;
    for (std::size_t i = st.depth; i-- > 0;) {
      if (st.frames[i] == phase) {
        match = i;
        break;
      }
    }
    if (match == st.depth) return;  // stray end: no matching begin
    while (st.depth > match) {
      --st.depth;
      record(node, TraceEvent{t.seconds(), 0, reason, node, TraceEvent::Kind::kEnd,
                              static_cast<std::uint8_t>(st.frames[st.depth]), 0});
    }
    return;
  }
  // Global pseudo-node: no stack bookkeeping (dispatch spans are
  // strictly sequential).
  record(node, TraceEvent{t.seconds(), 0, reason, node, TraceEvent::Kind::kEnd,
                          static_cast<std::uint8_t>(phase), 0});
}

void Tracer::switch_phase(std::uint32_t node, TracePhase phase, SimTime t,
                          std::uint64_t value) {
  if (!enabled() || node >= stacks_.size()) return;
  if (current_phase(node) == phase) return;
  SpanStack& st = stacks_[node];
  while (st.depth > 0) {
    --st.depth;
    record(node, TraceEvent{t.seconds(), 0, kSpanEndNormal, node,
                            TraceEvent::Kind::kEnd,
                            static_cast<std::uint8_t>(st.frames[st.depth]), 0});
  }
  begin_span(node, phase, t, value);
}

void Tracer::counter(std::uint32_t node, TraceCounter c, std::uint64_t value,
                     SimTime t) {
  if (!enabled()) return;
  record(node, TraceEvent{t.seconds(), 0, value, node, TraceEvent::Kind::kCounter,
                          static_cast<std::uint8_t>(c), 0});
}

void Tracer::interrupt(std::uint32_t node, SimTime t) {
  if (!enabled() || node >= stacks_.size()) return;
  SpanStack& st = stacks_[node];
  while (st.depth > 0) {
    --st.depth;
    record(node, TraceEvent{t.seconds(), 0, kSpanEndInterrupted, node,
                            TraceEvent::Kind::kEnd,
                            static_cast<std::uint8_t>(st.frames[st.depth]), 0});
  }
}

void Tracer::finalize_epoch(SimTime t) {
  if (!enabled()) return;
  for (std::uint32_t node = 0; node < stacks_.size(); ++node) {
    SpanStack& st = stacks_[node];
    while (st.depth > 0) {
      --st.depth;
      record(node, TraceEvent{t.seconds(), 0, kSpanEndFinalized, node,
                              TraceEvent::Kind::kEnd,
                              static_cast<std::uint8_t>(st.frames[st.depth]), 0});
    }
  }
  record(kTraceGlobalNode,
         TraceEvent{t.seconds(), 0, epoch_, kTraceGlobalNode,
                    TraceEvent::Kind::kMarker, 0, 0});
  ++epoch_;
}

TracePhase Tracer::current_phase(std::uint32_t node) const {
  if (!enabled() || node >= stacks_.size()) return TracePhase::kNone;
  const SpanStack& st = stacks_[node];
  return st.depth > 0 ? st.frames[st.depth - 1] : TracePhase::kNone;
}

std::vector<TraceEvent> Tracer::node_events(std::uint32_t node) const {
  std::vector<TraceEvent> out;
  if (rings_.empty()) return out;
  const Ring& ring = ring_for(node);
  out.reserve(ring.count);
  const std::size_t cap = ring.slots.size();
  const std::size_t start = (ring.head + cap - ring.count) % cap;
  for (std::size_t i = 0; i < ring.count; ++i) {
    out.push_back(ring.slots[(start + i) % cap]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::merged() const {
  std::vector<TraceEvent> out;
  if (rings_.empty()) return out;
  std::size_t total = 0;
  for (const Ring& r : rings_) total += r.count;
  out.reserve(total);
  for (const Ring& r : rings_) {
    const std::size_t cap = r.slots.size();
    const std::size_t start = (r.head + cap - r.count) % cap;
    for (std::size_t i = 0; i < r.count; ++i) {
      out.push_back(r.slots[(start + i) % cap]);
    }
  }
  // Per-ring slices are already seq-sorted; a global sort on the unique
  // seq restores the canonical interleaving. In sharded mode seqs are
  // per-ring (not unique), so the node id breaks ties — the result is
  // stable but the cross-node interleaving is no longer the execution
  // order; compare sharded traces per-node (canonical_trace_digest).
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.node < b.node;
  });
  return out;
}

}  // namespace icpda::sim
