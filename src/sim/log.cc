#include "sim/log.h"

#include <iostream>

namespace icpda::sim {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "OFF";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
  }
  return "?";
}
}  // namespace

Logger::Logger()
    : sink_([](LogLevel level, std::string_view msg) {
        std::cerr << "[" << level_name(level) << "] " << msg << "\n";
      }) {}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view msg) {
      std::cerr << "[" << level_name(level) << "] " << msg << "\n";
    };
  }
}

void Logger::log(LogLevel level, std::string_view msg) {
  if (enabled(level)) sink_(level, msg);
}

}  // namespace icpda::sim
