// Deterministic random number generation for reproducible simulation.
//
// Every Monte-Carlo sweep in the benchmarks and every protocol decision
// (cluster-head election, share coefficients, MAC backoff, jitter)
// draws from an Rng. The generator is xoshiro256** seeded through
// SplitMix64, following the reference construction of Blackman &
// Vigna. Named substreams (`fork`) let independent subsystems consume
// randomness without perturbing each other, which keeps experiment
// configurations comparable across code changes.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <string_view>
#include <vector>

namespace icpda::sim {

/// SplitMix64 step: the canonical 64-bit mixer used for seeding.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Mix an (experiment, point, trial) tuple into a seed by chaining
/// SplitMix64 over the components. Unlike a small-multiplier linear
/// form, nearby tuples land in unrelated parts of the seed space, so
/// distinct experiments can never share an RNG stream by arithmetic
/// coincidence.
[[nodiscard]] constexpr std::uint64_t seed_mix(std::uint64_t a, std::uint64_t b,
                                               std::uint64_t c) {
  std::uint64_t state = 0x1CDA2009ULL ^ a;
  std::uint64_t h = splitmix64(state);
  state = h ^ b;
  h = splitmix64(state);
  state = h ^ c;
  return splitmix64(state);
}

/// FNV-1a 64-bit hash of a string, used to derive substream seeds from
/// human-readable names.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random>
/// distributions when something exotic is needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xD1CEBA5EDA7A5EEDULL) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next raw 64-bit value.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// A statistically independent generator derived from this one and a
  /// stream name. Forking does NOT advance this generator's state, so
  /// adding a new subsystem fork does not shift existing streams.
  [[nodiscard]] Rng fork(std::string_view stream_name) const {
    // Mix the current state summary with the stream-name hash.
    const std::uint64_t summary =
        state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^ rotl(state_[3], 47);
    return Rng{summary ^ fnv1a(stream_name)};
  }

  /// Same but keyed by an index (e.g. per-node streams).
  [[nodiscard]] Rng fork(std::string_view stream_name, std::uint64_t index) const {
    const std::uint64_t summary =
        state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^ rotl(state_[3], 47);
    std::uint64_t mix = summary ^ fnv1a(stream_name);
    mix ^= 0x9E3779B97F4A7C15ULL * (index + 1);
    return Rng{mix};
  }

  // ---- distributions ------------------------------------------------

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (Lemire with
  /// rejection).
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential with rate lambda (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda);

  /// Standard normal via Box–Muller (no cached second value, to keep
  /// the generator stateless w.r.t. distribution history).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n). Requires k <= n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Pick one element uniformly; requires the vector be non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    return v[below(v.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace icpda::sim
