// Reusable reduction barrier for the sharded conservative-PDES engine.
//
// All parties arrive; the LAST arriver runs a caller-supplied serial
// section while every other party is parked on the condition variable,
// then releases the generation. The serial section is where the engine
// plans the next lookahead window and executes gated (cross-shard)
// events in canonical order — the barrier's mutex gives it exclusive,
// happens-before-ordered access to every shard's scheduler and state:
// writes made by shard workers before arriving are visible to the
// serial section, and its writes are visible to every worker after
// release. One mutex + one condvar, generation-counted so the same
// barrier is reused every round; ThreadSanitizer-clean by construction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace icpda::sim {

class ReductionBarrier {
 public:
  explicit ReductionBarrier(std::size_t parties);

  ReductionBarrier(const ReductionBarrier&) = delete;
  ReductionBarrier& operator=(const ReductionBarrier&) = delete;

  [[nodiscard]] std::size_t parties() const { return parties_; }

  /// Block until all parties have arrived. The last arriver runs
  /// `on_last()` under the barrier mutex before waking the others.
  /// `on_last` must not call back into the barrier.
  template <typename F>
  void arrive_and_wait(F&& on_last) {
    std::unique_lock lk(mutex_);
    const std::uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      on_last();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return generation_ != gen; });
    }
  }

  /// Plain barrier (no serial section).
  void arrive_and_wait() {
    arrive_and_wait([] {});
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace icpda::sim
