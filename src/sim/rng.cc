#include "sim/rng.h"

#include <cmath>
#include <stdexcept>

namespace icpda::sim {

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::below: n must be > 0");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("Rng::exponential: lambda must be > 0");
  }
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::normal(double mean, double stddev) {
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.283185307179586476925286766559 * u2);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  // Floyd's algorithm: O(k) expected, no O(n) scratch.
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = below(j + 1);
    bool seen = false;
    for (const std::size_t p : picked) {
      if (p == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  return picked;
}

}  // namespace icpda::sim
