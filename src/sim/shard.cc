#include "sim/shard.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace icpda::sim {

namespace {

/// Fill border/shard_sizes/est_load/border_count from a finished
/// shard_of map. Shared by both partitioners so their plans are
/// comparable field-for-field.
void finalize_plan(ShardPlan& plan, const NeighborFn& neighbors) {
  const std::size_t n = plan.shard_of.size();
  plan.border.assign(n, 0);
  plan.shard_sizes.assign(plan.shard_count, 0);
  plan.est_load.assign(plan.shard_count, 0);
  plan.border_count = 0;
  for (std::size_t i = 0; i < n; ++i) ++plan.shard_sizes[plan.shard_of[i]];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t home = plan.shard_of[i];
    std::uint64_t degree = 0;
    neighbors(static_cast<std::uint32_t>(i), [&](std::uint32_t r) {
      ++degree;
      if (plan.shard_count > 1 && plan.shard_of[r] != home) plan.border[i] = 1;
    });
    plan.est_load[home] += 1 + degree;
    if (plan.border[i] != 0) ++plan.border_count;
  }
}

}  // namespace

double ShardPlan::balance() const {
  if (est_load.empty()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const std::uint64_t l : est_load) {
    total += l;
    peak = std::max(peak, l);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(est_load.size());
  return static_cast<double>(peak) / mean;
}

ShardPlan make_stripe_plan(const std::vector<double>& xs, double field_width,
                           std::uint32_t shards, const NeighborFn& neighbors) {
  if (shards == 0) throw std::invalid_argument("make_stripe_plan: zero shards");
  if (field_width <= 0.0) {
    throw std::invalid_argument("make_stripe_plan: non-positive field width");
  }
  ShardPlan plan;
  plan.shard_count = shards;
  plan.shard_of.resize(xs.size());
  const double stripe = field_width / static_cast<double>(shards);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = std::clamp(xs[i], 0.0, field_width);
    auto s = static_cast<std::uint32_t>(x / stripe);
    plan.shard_of[i] = std::min(s, shards - 1);
  }
  finalize_plan(plan, neighbors);
  return plan;
}

ShardPlan make_tile_plan(const std::vector<double>& xs,
                         const std::vector<double>& ys, double field_width,
                         double field_height, double cell_hint,
                         std::uint32_t shards, const NeighborFn& neighbors) {
  if (shards == 0) throw std::invalid_argument("make_tile_plan: zero shards");
  if (field_width <= 0.0 || field_height <= 0.0) {
    throw std::invalid_argument("make_tile_plan: non-positive field dimension");
  }
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("make_tile_plan: xs/ys size mismatch");
  }
  if (!(cell_hint > 0.0)) cell_hint = field_width;

  // Bucket grid. One radio range per bucket is the natural cut
  // granularity (a finer grid cannot shorten a border: any boundary
  // still straddles one range worth of nodes) but the grid must be
  // fine enough to actually split `shards` ways with slack to balance,
  // and coarse enough to stay cheap at any node count.
  const auto grid_dim = [](double extent, double cell, std::uint32_t floor_dim) {
    auto d = static_cast<std::uint32_t>(std::ceil(extent / cell));
    d = std::clamp<std::uint32_t>(d, 1, 256);
    return std::max(d, floor_dim);
  };
  // ceil(sqrt(4 * shards)) per axis guarantees nx*ny >= 4*shards.
  const auto floor_dim = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(4.0 * static_cast<double>(shards))));
  const std::uint32_t nx = grid_dim(field_width, cell_hint, floor_dim);
  const std::uint32_t ny = grid_dim(field_height, cell_hint, floor_dim);

  // Per-bucket estimated load (1 + degree per node) and the bucket of
  // every node.
  const std::size_t n = xs.size();
  std::vector<std::uint32_t> bucket_of(n);
  std::vector<std::uint64_t> load(static_cast<std::size_t>(nx) * ny, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = std::clamp(xs[i], 0.0, field_width);
    const double y = std::clamp(ys[i], 0.0, field_height);
    const auto bx = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(x / field_width * nx), nx - 1);
    const auto by = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(y / field_height * ny), ny - 1);
    bucket_of[i] = by * nx + bx;
    std::uint64_t degree = 0;
    neighbors(static_cast<std::uint32_t>(i), [&](std::uint32_t) { ++degree; });
    load[bucket_of[i]] += 1 + degree;
  }

  // Recursive orthogonal bisection over bucket rectangles: split the
  // longer axis at the index that best divides the rectangle's load in
  // the ratio floor(k/2) : ceil(k/2); leaves get consecutive tile ids
  // (recursion order — deterministic).
  std::vector<std::uint32_t> tile_of_bucket(load.size(), 0);
  std::uint32_t next_tile = 0;
  struct Rect {
    std::uint32_t x0, x1, y0, y1;  // half-open bucket ranges
  };
  const auto rect_assign = [&](const Rect& r, std::uint32_t tile) {
    for (std::uint32_t y = r.y0; y < r.y1; ++y) {
      for (std::uint32_t x = r.x0; x < r.x1; ++x) {
        tile_of_bucket[static_cast<std::size_t>(y) * nx + x] = tile;
      }
    }
  };
  const auto line_load = [&](const Rect& r, bool split_x, std::uint32_t i) {
    std::uint64_t s = 0;
    if (split_x) {
      for (std::uint32_t y = r.y0; y < r.y1; ++y) {
        s += load[static_cast<std::size_t>(y) * nx + i];
      }
    } else {
      for (std::uint32_t x = r.x0; x < r.x1; ++x) {
        s += load[static_cast<std::size_t>(i) * nx + x];
      }
    }
    return s;
  };
  const std::function<void(Rect, std::uint32_t)> bisect = [&](Rect r,
                                                              std::uint32_t k) {
    if (k <= 1) {
      rect_assign(r, next_tile++);
      return;
    }
    const std::uint32_t k_lo = k / 2;
    // Prefer the longer axis (shorter cut line -> fewer border nodes);
    // an axis with a single bucket line cannot split.
    const std::uint32_t wx = r.x1 - r.x0;
    const std::uint32_t wy = r.y1 - r.y0;
    const bool split_x = wy > wx ? false : (wx > 1 || wy <= 1);
    const std::uint32_t lo = split_x ? r.x0 : r.y0;
    const std::uint32_t hi = split_x ? r.x1 : r.y1;
    if (hi - lo <= 1) {
      // Unsplittable sliver: park the whole budget here. Tile ids must
      // stay dense, so emit k tiles (the extras stay empty; the floor
      // on the grid dimensions makes this unreachable in practice).
      for (std::uint32_t t = 0; t < k; ++t) rect_assign(r, next_tile++);
      return;
    }
    std::uint64_t total = 0;
    for (std::uint32_t i = lo; i < hi; ++i) total += line_load(r, split_x, i);
    const double target =
        static_cast<double>(total) * static_cast<double>(k_lo) / k;
    std::uint32_t cut = lo + 1;
    std::uint64_t prefix = line_load(r, split_x, lo);
    double best_err = std::abs(static_cast<double>(prefix) - target);
    std::uint64_t run = prefix;
    for (std::uint32_t i = lo + 1; i + 1 < hi; ++i) {
      run += line_load(r, split_x, i);
      const double err = std::abs(static_cast<double>(run) - target);
      if (err < best_err) {
        best_err = err;
        cut = i + 1;
      }
    }
    Rect a = r;
    Rect b = r;
    if (split_x) {
      a.x1 = cut;
      b.x0 = cut;
    } else {
      a.y1 = cut;
      b.y0 = cut;
    }
    bisect(a, k_lo);
    bisect(b, k - k_lo);
  };
  bisect(Rect{0, nx, 0, ny}, shards);

  ShardPlan plan;
  plan.shard_count = shards;
  plan.shard_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    plan.shard_of[i] = tile_of_bucket[bucket_of[i]];
  }
  finalize_plan(plan, neighbors);
  return plan;
}

}  // namespace icpda::sim
