#include "sim/shard.h"

#include <algorithm>
#include <stdexcept>

namespace icpda::sim {

ShardPlan make_stripe_plan(const std::vector<double>& xs, double field_width,
                           std::uint32_t shards, const NeighborFn& neighbors) {
  if (shards == 0) throw std::invalid_argument("make_stripe_plan: zero shards");
  if (field_width <= 0.0) {
    throw std::invalid_argument("make_stripe_plan: non-positive field width");
  }
  ShardPlan plan;
  plan.shard_count = shards;
  plan.shard_of.resize(xs.size());
  plan.border.assign(xs.size(), 0);
  plan.shard_sizes.assign(shards, 0);
  const double stripe = field_width / static_cast<double>(shards);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = std::clamp(xs[i], 0.0, field_width);
    auto s = static_cast<std::uint32_t>(x / stripe);
    s = std::min(s, shards - 1);
    plan.shard_of[i] = s;
    ++plan.shard_sizes[s];
  }
  if (shards > 1) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::uint32_t home = plan.shard_of[i];
      neighbors(static_cast<std::uint32_t>(i), [&](std::uint32_t n) {
        if (plan.shard_of[n] != home) plan.border[i] = 1;
      });
      if (plan.border[i] != 0) ++plan.border_count;
    }
  }
  return plan;
}

}  // namespace icpda::sim
