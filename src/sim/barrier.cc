#include "sim/barrier.h"

#include <stdexcept>

namespace icpda::sim {

ReductionBarrier::ReductionBarrier(std::size_t parties) : parties_(parties) {
  if (parties == 0) {
    throw std::invalid_argument("ReductionBarrier: zero parties");
  }
}

}  // namespace icpda::sim
