// Discrete-event scheduler: the heart of the WSN simulator.
//
// A Scheduler owns a priority queue of (time, callback) events and a
// monotone simulation clock. Protocol code schedules future work with
// `at()`/`after()` and the main loop (`run*`) drains events in time
// order. Everything in this repository that "waits" — MAC backoff,
// HELLO jitter, share-assembly timeouts, epoch deadlines — is an event
// here; there are no threads and no wall-clock dependence, so a run is
// a deterministic function of (configuration, RNG seed).
//
// Ordering contract (DESIGN.md §5j): events are dispatched in ascending
// canonical key (fire time, schedule time, schedule seq) — exactly the
// historical (time, FIFO) order, since the clock is monotone and so
// schedule time already orders seq. The owner node id and border flag
// carried by each event are NOT ordering keys within a scheduler:
// distinct same-instant dispatches (e.g. several nodes' epoch timers
// firing at one clock tick) schedule events in an order that is FIFO
// but not ascending-owner, so folding the owner into the heap order
// would silently permute the golden trace. Owner matters only at the
// sharded engine's gate (net/shard_engine.h), where same-(fire,
// schedule)-time events from different shards need an engine-
// independent tie-break and per-shard seq counters are incomparable.
//
// Representation (DESIGN.md §5f, §5i): an indexed 4-ary min-heap over
// a slab of event slots. The heap array stores the comparison keys
// plus the slot inline, so sift compares stream contiguous 24-byte
// records with no per-compare gather into a side table; each slot
// records its own heap position, so cancel() removes the event from the
// middle of the heap in O(log n) — no tombstones, no hash tables, no
// per-event allocation beyond what the closure itself needs. EventIds
// encode (generation, slot), making stale ids self-invalidating. The
// callables live in a slab parallel to the slot metadata and are
// touched exactly twice per event (store at schedule, move-out at
// pop) — never during heap maintenance.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/event.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace icpda::sim {

/// Owner tag for events not tied to any node (test rigs, the service
/// dispatcher). Never compared within a scheduler; at the sharded
/// gate it sorts after every real node.
inline constexpr std::uint32_t kNoEventOwner = 0xFFFFFFFFu;

/// Immutable record of one DISPATCHED event's ordering coordinates,
/// kept alive (refcounted spaghetti stack) while any pending
/// descendant might still need it for the sharded gate's cross-shard
/// FIFO reconstruction (lineage_cmp below). A node is created lazily,
/// at most once per dispatch, the first time the dispatch schedules a
/// child under parentage tracking; it is freed when the last pending
/// descendant referencing the chain fires or is cancelled.
///
/// Chains are depth-capped (kMaxLineageDepth): the node that would
/// exceed the cap keeps its own (sched_at, intra) but drops the parent
/// pointer, carries kTruncated, and RESTARTS the chain at depth 0 — so
/// every event always has its most recent <= kMaxLineageDepth
/// generations of history and only comparisons that need to look past
/// a cut report "undecided" (counted in LineageCmpStats; the deepest
/// walk ever observed is ~13 levels, so at 4096 the cap is pure
/// memory insurance). Without the cap, a long-lived self-rescheduling
/// event line would pin its entire causal history in memory.
struct Lineage {
  static constexpr std::uint8_t kRoot = 1;       ///< dispatched event was
                                                 ///< install-scheduled
  static constexpr std::uint8_t kTruncated = 2;  ///< chain cut at depth cap
  SimTime sched_at;        ///< when the dispatched event was scheduled
  Lineage* parent;         ///< dispatch that scheduled it (null: root/cut)
  std::atomic<std::uint32_t> refs;
  std::uint32_t intra;     ///< index within ITS parent (root: install seq)
  std::uint16_t depth;
  std::uint8_t flags;
  [[nodiscard]] bool truncated() const { return (flags & kTruncated) != 0; }
};

inline constexpr std::uint16_t kMaxLineageDepth = 4096;

/// Drop one reference to `n`'s chain, freeing nodes whose last
/// reference this was. Safe from any thread (the sharded engine's
/// drains release chains concurrently).
void lineage_release(Lineage* n);

/// Relative single-heap FIFO order of two events that tie at
/// (fire time, schedule time), reconstructed from their parent
/// dispatch chains: tied children fire in their parents' dispatch
/// order (then by intra-dispatch index), parents tied at the same
/// instant recurse to grandparents, and chains that bottom out at
/// install-scheduled roots compare by the global install sequence.
/// Events scheduled outside any dispatch sort AFTER runtime-scheduled
/// events at a full tie (the legacy +infinity-ancestor rule). Returns
/// <0, 0, >0; 0 means undecided (a chain was cut at the depth cap) —
/// callers fall back to the owner id.
[[nodiscard]] int lineage_cmp(const Lineage* a, std::uint32_t ia,
                              const Lineage* b, std::uint32_t ib);

/// Observability for the gate comparator (process-wide, relaxed
/// atomics): the deepest chain walk any comparison needed, and how
/// many comparisons came back undecided (chain cut at the depth cap).
/// Tests assert undecided == 0 at pinned sizes so a cap that is
/// silently too small shows up as a counter, not as a mystery
/// divergence (it did once — see DESIGN.md §5k).
struct LineageCmpStats {
  std::uint32_t max_walk = 0;   ///< deepest levels walked by one compare
  std::uint64_t undecided = 0;  ///< compares that fell back to owner id
  std::uint64_t live = 0;       ///< lineage nodes currently allocated
  std::uint64_t peak = 0;       ///< high-water mark of live nodes
  std::uint32_t max_depth = 0;  ///< deepest chain ever built
};
[[nodiscard]] LineageCmpStats lineage_cmp_stats();
void reset_lineage_cmp_stats();

/// Canonical ordering key of a scheduled event. `operator<` is the
/// scheduler-local dispatch order: (fire time, schedule time, seq) —
/// seq is FIFO schedule order and breaks every tie; the remaining
/// fields ride along as metadata. Across schedulers seq counters are
/// incomparable, so the sharded engine's gate orders a (fire time,
/// schedule time) tie by PARENTAGE instead — see lineage_cmp and
/// canonical_cross_before.
struct EventKey {
  SimTime at;        ///< fire time
  SimTime sched_at;  ///< clock value when the event was scheduled
  std::uint32_t owner = kNoEventOwner;  ///< owning node id (metadata)
  std::uint64_t seq = 0;                ///< scheduler-local schedule order
  /// Parent dispatch chain (null: scheduled outside any dispatch).
  /// Borrowed, not owned: valid only while the event is pending.
  const Lineage* parent = nullptr;
  std::uint32_t intra = 0;  ///< schedule index within the parent dispatch
                            ///< (global install seq when parent is null)

  [[nodiscard]] friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.sched_at != b.sched_at) return a.sched_at < b.sched_at;
    return a.seq < b.seq;
  }
};

/// Engine-independent canonical order between events of DIFFERENT
/// schedulers (the sharded gate's merge order): (fire time, schedule
/// time), then exact single-heap FIFO via lineage_cmp, with the owner
/// id as the final fallback for chains cut at the depth cap. Within
/// one scheduler EventKey::operator< (seq FIFO) is the same order.
[[nodiscard]] bool canonical_cross_before(const EventKey& a,
                                          const EventKey& b);

class Scheduler {
 public:
  Scheduler() = default;
  /// Releases the lineage references of still-pending events (tracked
  /// schedulers only; untracked destruction stays trivial).
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Monotone: only advances inside run*()
  /// and advance_to().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Number of events currently pending (excludes cancelled ones).
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Schedule `fn` at absolute time `t`. `t` must be >= now().
  /// `owner` is the node the event acts for (kNoEventOwner when none);
  /// `border` marks events that may touch another shard's state when
  /// the scheduler runs inside the sharded engine — they are indexed
  /// so the engine can find the next cross-shard interaction in O(1).
  /// Single-shard runs never pass border and pay nothing for it.
  EventId at(SimTime t, EventFn fn, std::uint32_t owner = kNoEventOwner,
             bool border = false);

  /// Schedule `fn` after a relative delay from now().
  EventId after(SimTime delay, EventFn fn, std::uint32_t owner = kNoEventOwner,
                bool border = false) {
    return at(now_ + delay, std::move(fn), owner, border);
  }

  /// Cancel a pending event: O(log n) true removal from the heap.
  /// Cancelling an already-fired or already cancelled event is a
  /// harmless no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// Run until the queue is empty. Returns the number of events fired.
  std::uint64_t run();

  /// Run until the queue is empty or simulation time would exceed
  /// `deadline` (events strictly after the deadline remain queued; the
  /// clock is advanced to `deadline`).
  std::uint64_t run_until(SimTime deadline);

  /// Execute at most `max_events` events.
  std::uint64_t run_steps(std::uint64_t max_events);

  // ---- sharded-engine surface (net/shard_engine.h) ------------------

  [[nodiscard]] bool has_next() const { return !heap_.empty(); }
  /// Fire time of the next event; requires has_next().
  [[nodiscard]] SimTime next_time() const { return heap_.front().at; }
  /// Full canonical key of the next event; requires has_next(). The
  /// parentage fields are gathered from the slot side table — they are
  /// needed once per gate peek, not during heap maintenance.
  [[nodiscard]] EventKey next_key() const {
    const HeapEntry& e = heap_.front();
    const Ext& x = ext_[e.slot];
    return EventKey{e.at, x.sched_at, e.owner, e.seq, x.parent, x.intra};
  }
  /// Canonical key of the earliest still-pending border event; false
  /// when none. Prunes fired/cancelled index entries lazily.
  bool next_border(EventKey& out);

  /// Execute events with fire time strictly before `bound`; the clock
  /// ends at the last fired event (it is NOT advanced to the bound).
  std::uint64_t run_before(SimTime bound);
  /// Pop and dispatch the single next event; false if the queue is
  /// empty.
  bool run_one();
  /// Advance the clock to `t` if it is ahead of now() (lookahead
  /// window close, horizon semantics). Never moves the clock back.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Drop every pending event and reset the clock to zero. Event ids
  /// are NOT reset — stale EventIds remain safely cancellable no-ops
  /// (their slot generation no longer matches).
  void reset();

  /// Attach a tracer: when it is enabled with scheduler_spans set, the
  /// run loops record a kDispatch span (global node, value = event id)
  /// around every callback. Pass nullptr to detach. Purely
  /// observational — attaching a tracer never changes event order.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Heap bytes held by the event storage (slot slabs, heap, border
  /// index) — capacity-based, so it reports high-water footprint, not
  /// the instantaneous queue depth. Feeds the footprint probe
  /// (analysis/footprint_main.cc).
  [[nodiscard]] std::size_t footprint_bytes() const {
    return meta_.capacity() * sizeof(Meta) + fns_.capacity() * sizeof(EventFn) +
           ext_.capacity() * sizeof(Ext) +
           free_slots_.capacity() * sizeof(std::uint32_t) +
           heap_.capacity() * sizeof(HeapEntry) +
           border_.capacity() * sizeof(BorderEntry);
  }

  /// Enable parentage tracking (EventKey::parent/intra lineage).
  /// Those fields are consumed ONLY by the sharded engine's gate
  /// tie-break, yet maintaining them costs a thread-local context
  /// save/restore per dispatch plus a side-table write per schedule —
  /// a measurable tax (~30%) on the shallow scheduler microkernels.
  /// Off by default; net::ShardEngine switches it on for its shard
  /// schedulers at construction, before any events exist (enabling
  /// with events already queued would leave their slots stale). With
  /// it off, the sched_at/parentage slab is never written — harmless,
  /// since only the gate (which always tracks) reads it via
  /// next_key().
  void set_track_parentage(bool on) { track_parentage_ = on; }

 private:
  /// Sentinel heap position marking a slot as free / not queued.
  static constexpr std::uint32_t kNotQueued = 0xFFFFFFFF;

  /// Per-slot identity metadata (8 bytes): `gen` validates EventIds
  /// across slot reuse, `heap_pos` lets cancel() find the slot's heap
  /// entry. The ordering keys live in the heap entries themselves.
  struct Meta {
    std::uint32_t gen = 0;
    std::uint32_t heap_pos = kNotQueued;
  };

  /// One queued event as the heap sees it: the comparison keys plus
  /// the slot index, stored inline so sift compares walk contiguous
  /// 24-byte records instead of gathering keys from a side table.
  /// `seq` is the monotone schedule-order tie-break — THE determinism
  /// anchor within one scheduler. `sched_at` is deliberately NOT here:
  /// the clock is monotone, so at equal fire times seq order already
  /// refines schedule-time order and the compare never needs it; it
  /// lives in the per-slot `sched_at_` table, read once per pop/peek.
  /// `owner` rides in what would otherwise be padding.
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t owner;
    std::uint32_t slot;
  };

  /// Border-event index entry; validated against the slot generation
  /// when peeked, so cancelled/fired events cost nothing to remove.
  struct BorderEntry {
    EventKey key;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Non-comparison key fields per slot: the schedule time plus the
  /// parentage metadata (EventKey::parent/intra). Kept OUT of
  /// HeapEntry — the heap comparator never reads any of it (see
  /// before()), so the hot sift path keeps its compact 24-byte
  /// records; pop reads sched_at once, and the gate gathers the rest
  /// once per peek via next_key(). Written (and read) ONLY under
  /// track_parentage_ — untracked schedulers keep the slab allocated
  /// but untouched. A non-null `parent` OWNS one reference on the
  /// chain, released when the slot fires (transferred to the dispatch
  /// context) or is cancelled/reset (lineage_release).
  struct Ext {
    SimTime sched_at = SimTime::zero();
    Lineage* parent = nullptr;
    std::uint32_t intra = 0;
  };

  [[nodiscard]] static EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return static_cast<EventId>((static_cast<std::uint64_t>(gen) << 32) | slot);
  }

  /// Strict canonical ordering between two queued events: the
  /// historical (fire time, FIFO) order. Comparing (at, seq) dispatches
  /// in exactly the canonical (at, sched_at, seq) EventKey order: the
  /// clock is monotone, so schedule times are non-decreasing in seq and
  /// a seq compare already refines the sched_at compare. `owner` is
  /// deliberately not compared — see the ordering contract at the top
  /// of this file.
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  bool track_parentage_ = false;

  /// Append the just-scheduled event to the border index (cold: only
  /// sharded runs tag border events; kept out of at()'s inline body).
  void index_border(SimTime t, std::uint64_t seq, std::uint32_t owner,
                    std::uint32_t s);

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Remove the slot at heap position `pos` (restoring heap order) and
  /// return it to the free list.
  void remove_at(std::size_t pos);
  /// Release a slot back to the free list, bumping its generation.
  void release(std::uint32_t slot);

  /// A popped, not-yet-dispatched event. Under parentage tracking it
  /// holds the slot's lineage reference (transferred, not copied);
  /// dispatch_tracked hands it on to the dispatch context, which
  /// releases it when the dispatch completes.
  struct Popped {
    SimTime at;
    SimTime sched_at;
    std::uint32_t owner;
    std::uint32_t intra;
    Lineage* parent;
    EventId id;
    EventFn fn;
  };

  /// One event dispatch, with the optional trace span around it.
  /// Defined inline so the run loops keep their pre-sharding dispatch
  /// cost; the tracked path tails out of line (the parent-context
  /// thread-local lives in scheduler.cc).
  void dispatch(Popped& ev) {
    if (track_parentage_) {
      dispatch_tracked(ev);
      return;
    }
    now_ = ev.at;
    Tracer* tr = tracer_;
    const bool span = tr && tr->enabled() && tr->config().scheduler_spans;
    if (span) {
      tr->begin_span(kTraceGlobalNode, TracePhase::kDispatch, now_,
                     static_cast<std::uint64_t>(ev.id));
    }
    ev.fn();
    if (span) tr->end_span(kTraceGlobalNode, TracePhase::kDispatch, now_);
    ++executed_;
  }

  /// Tracked-path dispatch: additionally publishes (sched_at, owner)
  /// of the dispatched event as the thread-local parent context, so
  /// everything `fn` schedules — on this scheduler or, from the
  /// sharded gate, on a foreign one — inherits its parentage key
  /// fields.
  void dispatch_tracked(Popped& ev);

  /// Pops the next event into `out`; false if the queue is empty. The
  /// slot is released before the caller dispatches, so the callback
  /// can freely schedule (and reuse storage).
  bool pop_next(Popped& out);

  std::vector<Meta> meta_;
  /// Callable slab, parallel to meta_.
  std::vector<EventFn> fns_;
  /// Non-comparison key slab (sched_at + parentage), parallel to meta_.
  std::vector<Ext> ext_;
  std::vector<std::uint32_t> free_slots_;
  /// 4-ary min-heap of canonical-key entries. Four-way beats binary
  /// here: half the tree depth, and the sibling compares stream
  /// adjacent inline keys.
  std::vector<HeapEntry> heap_;
  /// Lazy min-heap over border-tagged events (sharded engine only;
  /// empty and untouched in single-shard runs).
  std::vector<BorderEntry> border_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  Tracer* tracer_ = nullptr;
};

}  // namespace icpda::sim
