// Discrete-event scheduler: the heart of the WSN simulator.
//
// A Scheduler owns a priority queue of (time, callback) events and a
// monotone simulation clock. Protocol code schedules future work with
// `at()`/`after()` and the main loop (`run*`) drains events in time
// order. Everything in this repository that "waits" — MAC backoff,
// HELLO jitter, share-assembly timeouts, epoch deadlines — is an event
// here; there are no threads and no wall-clock dependence, so a run is
// a deterministic function of (configuration, RNG seed).
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace icpda::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Monotone: only advances inside run*().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Number of events currently pending (excludes cancelled ones).
  [[nodiscard]] std::size_t pending() const { return pending_ids_.size(); }

  /// Schedule `fn` at absolute time `t`. `t` must be >= now().
  EventId at(SimTime t, EventFn fn);

  /// Schedule `fn` after a relative delay from now().
  EventId after(SimTime delay, EventFn fn) { return at(now_ + delay, std::move(fn)); }

  /// Cancel a pending event. Cancelling an already-fired or already
  /// cancelled event is a harmless no-op. Returns true if the event was
  /// pending.
  bool cancel(EventId id);

  /// Run until the queue is empty. Returns the number of events fired.
  std::uint64_t run();

  /// Run until the queue is empty or simulation time would exceed
  /// `deadline` (events strictly after the deadline remain queued; the
  /// clock is advanced to `deadline`).
  std::uint64_t run_until(SimTime deadline);

  /// Execute at most `max_events` events.
  std::uint64_t run_steps(std::uint64_t max_events);

  /// Drop every pending event and reset the clock to zero. Event ids
  /// are NOT reset — stale EventIds remain safely cancellable no-ops.
  void reset();

  /// Attach a tracer: when it is enabled with scheduler_spans set, the
  /// run loops record a kDispatch span (global node, value = event id)
  /// around every callback. Pass nullptr to detach. Purely
  /// observational — attaching a tracer never changes event order.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  /// One event dispatch, with the optional trace span around it.
  void dispatch(const Event& ev) {
    now_ = ev.at;
    Tracer* tr = tracer_;
    const bool span = tr && tr->enabled() && tr->config().scheduler_spans;
    if (span) {
      tr->begin_span(kTraceGlobalNode, TracePhase::kDispatch, now_,
                     static_cast<std::uint64_t>(ev.id));
    }
    ev.fn();
    if (span) tr->end_span(kTraceGlobalNode, TracePhase::kDispatch, now_);
    ++executed_;
  }

  // Min-heap on (time, id).
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  /// Ids of events still in the heap (removed on fire/cancel); lets
  /// cancel() answer "was it pending" exactly.
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_id_ = 0;
  std::uint64_t executed_ = 0;
  Tracer* tracer_ = nullptr;

  /// Pops the next non-cancelled event, or returns false if none.
  bool pop_next(Event& out);
};

}  // namespace icpda::sim
