// Discrete-event scheduler: the heart of the WSN simulator.
//
// A Scheduler owns a priority queue of (time, callback) events and a
// monotone simulation clock. Protocol code schedules future work with
// `at()`/`after()` and the main loop (`run*`) drains events in time
// order. Everything in this repository that "waits" — MAC backoff,
// HELLO jitter, share-assembly timeouts, epoch deadlines — is an event
// here; there are no threads and no wall-clock dependence, so a run is
// a deterministic function of (configuration, RNG seed).
//
// Representation (DESIGN.md §5f, §5i): an indexed 4-ary min-heap over
// a slab of event slots. The heap array stores (time, seq, slot)
// entries inline, so sift compares stream contiguous 24-byte records
// with no per-compare gather into a side table; each slot records its
// own heap position, so cancel() removes the event from the middle of
// the heap in O(log n) — no tombstones, no hash tables, no per-event
// allocation beyond what the closure itself needs. EventIds encode
// (generation, slot), making stale ids self-invalidating. The
// callables live in a slab parallel to the slot metadata and are
// touched exactly twice per event (store at schedule, move-out at
// pop) — never during heap maintenance.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace icpda::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Monotone: only advances inside run*().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Number of events currently pending (excludes cancelled ones).
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Schedule `fn` at absolute time `t`. `t` must be >= now().
  EventId at(SimTime t, EventFn fn);

  /// Schedule `fn` after a relative delay from now().
  EventId after(SimTime delay, EventFn fn) { return at(now_ + delay, std::move(fn)); }

  /// Cancel a pending event: O(log n) true removal from the heap.
  /// Cancelling an already-fired or already cancelled event is a
  /// harmless no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// Run until the queue is empty. Returns the number of events fired.
  std::uint64_t run();

  /// Run until the queue is empty or simulation time would exceed
  /// `deadline` (events strictly after the deadline remain queued; the
  /// clock is advanced to `deadline`).
  std::uint64_t run_until(SimTime deadline);

  /// Execute at most `max_events` events.
  std::uint64_t run_steps(std::uint64_t max_events);

  /// Drop every pending event and reset the clock to zero. Event ids
  /// are NOT reset — stale EventIds remain safely cancellable no-ops
  /// (their slot generation no longer matches).
  void reset();

  /// Attach a tracer: when it is enabled with scheduler_spans set, the
  /// run loops record a kDispatch span (global node, value = event id)
  /// around every callback. Pass nullptr to detach. Purely
  /// observational — attaching a tracer never changes event order.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Sentinel heap position marking a slot as free / not queued.
  static constexpr std::uint32_t kNotQueued = 0xFFFFFFFF;

  /// Per-slot identity metadata (8 bytes): `gen` validates EventIds
  /// across slot reuse, `heap_pos` lets cancel() find the slot's heap
  /// entry. The ordering keys live in the heap entries themselves.
  struct Meta {
    std::uint32_t gen = 0;
    std::uint32_t heap_pos = kNotQueued;
  };

  /// One queued event as the heap sees it: the full ordering key plus
  /// the slot index, stored inline so sift compares walk contiguous
  /// 24-byte records (four children share two cache lines) instead of
  /// gathering keys from a side table. `seq` is the monotone
  /// schedule-order tie-break — THE determinism anchor: two events at
  /// the same instant always fire in schedule order.
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  [[nodiscard]] static EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return static_cast<EventId>((static_cast<std::uint64_t>(gen) << 32) | slot);
  }

  /// Strict (time, seq) ordering between two queued events.
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Remove the slot at heap position `pos` (restoring heap order) and
  /// return it to the free list.
  void remove_at(std::size_t pos);
  /// Release a slot back to the free list, bumping its generation.
  void release(std::uint32_t slot);

  /// One event dispatch, with the optional trace span around it.
  void dispatch(SimTime at, EventId id, EventFn& fn) {
    now_ = at;
    Tracer* tr = tracer_;
    const bool span = tr && tr->enabled() && tr->config().scheduler_spans;
    if (span) {
      tr->begin_span(kTraceGlobalNode, TracePhase::kDispatch, now_,
                     static_cast<std::uint64_t>(id));
    }
    fn();
    if (span) tr->end_span(kTraceGlobalNode, TracePhase::kDispatch, now_);
    ++executed_;
  }

  /// Pops the next event into (at, id, fn); false if the queue is
  /// empty. The slot is released before the caller dispatches, so the
  /// callback can freely schedule (and reuse storage).
  bool pop_next(SimTime& at, EventId& id, EventFn& fn);

  std::vector<Meta> meta_;
  /// Callable slab, parallel to meta_.
  std::vector<EventFn> fns_;
  std::vector<std::uint32_t> free_slots_;
  /// 4-ary min-heap of (time, seq, slot) entries. Four-way beats
  /// binary here: half the tree depth, and the sibling compares stream
  /// adjacent inline keys.
  std::vector<HeapEntry> heap_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  Tracer* tracer_ = nullptr;
};

}  // namespace icpda::sim
