// Spatial shard plan: the static partition behind the parallel epoch
// engine (net/shard_engine.h).
//
// Two partitioners share one plan shape:
//
//  - make_stripe_plan: equal-width vertical stripes by x coordinate.
//    The PR-8/9 partition; kept as the comparison baseline (its border
//    band grows with field height and its load balance is whatever the
//    deployment happens to give).
//  - make_tile_plan: event-load-balanced 2-D tiling. The field is
//    rasterised into grid buckets of roughly one radio range, each
//    bucket weighted by its estimated event load (1 + degree per node:
//    a node's event count is dominated by the receptions it fields,
//    which scale with its neighbour count), and buckets are assigned
//    to shards by recursive orthogonal bisection — split the bucket
//    rectangle across its longer axis at the weighted median, splitting
//    the shard budget k into floor(k/2)/ceil(k/2), and recurse. Tiles
//    come out contiguous, load-balanced, and with short cut lines,
//    which is what minimises the border-node count (only border nodes
//    ever serialize through the engine's gate).
//
// A node is a *border* node iff any of its radio neighbours lives in a
// different shard — only border nodes can interact across a shard
// boundary, and only when they transmit (or a unicast addressed to
// them solicits an ACK). Everything the lookahead engine needs is
// derived here, once, from the topology: the partition map, the border
// set, the per-shard population and the per-shard load estimate.
//
// This header is deliberately net-type-free (plain integer ids + a
// neighbour callback) so sim/ does not depend on net/: the Network
// adapts its CSR topology when building the plan.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace icpda::sim {

struct ShardPlan {
  std::uint32_t shard_count = 1;
  /// Node id -> shard index.
  std::vector<std::uint32_t> shard_of;
  /// Node id -> 1 iff any neighbour is in another shard.
  std::vector<std::uint8_t> border;
  std::size_t border_count = 0;
  std::vector<std::uint32_t> shard_sizes;
  /// Estimated event load per shard: sum over member nodes of
  /// (1 + degree). The quantity the tile partitioner balances.
  std::vector<std::uint64_t> est_load;

  [[nodiscard]] std::size_t node_count() const { return shard_of.size(); }

  /// Max/mean estimated shard load (1.0 = perfectly balanced; the
  /// slowest shard paces every drain round, so this bounds achievable
  /// parallel speed-up from below).
  [[nodiscard]] double balance() const;
};

/// Enumerate `node`'s neighbours through the callback.
using NeighborFn =
    std::function<void(std::uint32_t node, const std::function<void(std::uint32_t)>&)>;

/// Cut `[0, field_width)` into `shards` equal vertical stripes and
/// assign each node by its x coordinate (clamped into range). With
/// shards == 1 every node is interior and the plan is trivial.
[[nodiscard]] ShardPlan make_stripe_plan(const std::vector<double>& xs,
                                         double field_width, std::uint32_t shards,
                                         const NeighborFn& neighbors);

/// Event-load-balanced 2-D tiling by recursive orthogonal bisection
/// (see file comment). `cell_hint` sets the bucket granularity —
/// pass the radio range; it is clamped so the grid always has enough
/// buckets to split `shards` ways. Deterministic in its arguments
/// (pure arithmetic, no RNG), so every engine/thread configuration
/// sees the same partition.
[[nodiscard]] ShardPlan make_tile_plan(const std::vector<double>& xs,
                                       const std::vector<double>& ys,
                                       double field_width, double field_height,
                                       double cell_hint, std::uint32_t shards,
                                       const NeighborFn& neighbors);

}  // namespace icpda::sim
