// Spatial shard plan: the static partition behind the parallel epoch
// engine (net/shard_engine.h).
//
// The field is cut into vertical stripes of equal width; a node's shard
// is the stripe its x coordinate falls in. A node is a *border* node
// iff any of its radio neighbours lives in a different shard — only
// border nodes can interact across a shard boundary, and only when
// they transmit (or a unicast addressed to them solicits an ACK).
// Everything the lookahead engine needs is derived here, once, from
// the topology: the partition map, the border set, and the per-shard
// population.
//
// This header is deliberately net-type-free (plain integer ids + a
// neighbour callback) so sim/ does not depend on net/: the Network
// adapts its CSR topology when building the plan.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace icpda::sim {

struct ShardPlan {
  std::uint32_t shard_count = 1;
  /// Node id -> shard index.
  std::vector<std::uint32_t> shard_of;
  /// Node id -> 1 iff any neighbour is in another shard.
  std::vector<std::uint8_t> border;
  std::size_t border_count = 0;
  std::vector<std::uint32_t> shard_sizes;

  [[nodiscard]] std::size_t node_count() const { return shard_of.size(); }
};

/// Enumerate `node`'s neighbours through the callback.
using NeighborFn =
    std::function<void(std::uint32_t node, const std::function<void(std::uint32_t)>&)>;

/// Cut `[0, field_width)` into `shards` equal vertical stripes and
/// assign each node by its x coordinate (clamped into range). With
/// shards == 1 every node is interior and the plan is trivial.
[[nodiscard]] ShardPlan make_stripe_plan(const std::vector<double>& xs,
                                         double field_width, std::uint32_t shards,
                                         const NeighborFn& neighbors);

}  // namespace icpda::sim
