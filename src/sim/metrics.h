// Measurement plumbing: counters, running statistics and histograms.
//
// Every experiment in bench/ reports through a MetricRegistry owned by
// its Simulation, so the figures are regenerated from the same counters
// the protocol code increments — no duplicated bookkeeping in the
// drivers.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace icpda::sim {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable for the long Monte-Carlo sweeps in bench/.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean; 0 for fewer than 2 samples.
  [[nodiscard]] double sem() const {
    return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }
  [[nodiscard]] double min() const {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to
/// the edge buckets so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  /// Merge a histogram with identical bucketing (same lo/hi/count);
  /// throws std::invalid_argument on a geometry mismatch.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  [[nodiscard]] double bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

  /// Value below which fraction q of samples fall (linear interpolation
  /// within the bucket). q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Named counters + named stats.
///
/// add() is on the per-frame hot path (the MAC bumps several counters
/// per reception), so it takes a string_view — no std::string
/// temporary, hence no heap allocation for names past the SSO limit —
/// and memoizes the map slot in a small direct-mapped cache keyed by
/// the name's address. Counter names are string literals at every call
/// site, so the same call site hits the same cache line every time; a
/// content check (length + memcmp against the stored map key) keeps a
/// reused heap address from aliasing a stale entry. The cache affects
/// only speed, never values, so results stay deterministic.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  // The cache holds pointers into this registry's own map nodes, so it
  // must not travel with copies/moves (a default-copied cache would
  // dangle into — or worse, alias — the source registry's nodes).
  MetricRegistry(const MetricRegistry& other)
      : counters_(other.counters_), stats_(other.stats_) {}
  MetricRegistry& operator=(const MetricRegistry& other) {
    counters_ = other.counters_;
    stats_ = other.stats_;
    reset_cache();
    return *this;
  }
  MetricRegistry(MetricRegistry&& other) noexcept
      : counters_(std::move(other.counters_)), stats_(std::move(other.stats_)) {
    other.reset_cache();
  }
  MetricRegistry& operator=(MetricRegistry&& other) noexcept {
    counters_ = std::move(other.counters_);
    stats_ = std::move(other.stats_);
    reset_cache();
    other.reset_cache();
    return *this;
  }

  void add(std::string_view counter, std::uint64_t delta = 1) {
    CacheEntry& e = cache_[slot_of(counter)];
    if (e.name != nullptr && e.name->size() == counter.size() &&
        std::memcmp(e.name->data(), counter.data(), counter.size()) == 0) {
      *e.value += delta;
      return;
    }
    add_slow(e, counter, delta);
  }

  /// A pre-bound counter handle for call sites even hotter than the
  /// direct-mapped cache can serve (the channel touches a counter per
  /// receiver per frame — millions of times per epoch). The handle
  /// resolves its map cell on first add() — lazily, so a counter that
  /// is never incremented still never appears in dumps — and then
  /// costs a test + pointer increment. std::map nodes are stable, so
  /// the cell outlives later inserts; like the internal cache, a
  /// handle must not be used across its registry's clear()/assignment
  /// (no call site does either mid-run).
  class Cell {
   public:
    /// `name` must outlive the handle (string literals at every site).
    explicit Cell(std::string_view name) : name_(name) {}

    void add(MetricRegistry& reg, std::uint64_t delta = 1) {
      if (value_ == nullptr) value_ = reg.cell_of(name_);
      *value_ += delta;
    }

   private:
    std::string_view name_;
    std::uint64_t* value_ = nullptr;
  };
  void observe(std::string_view stat, double value);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] const RunningStats& stat(std::string_view name) const {
    static const RunningStats kEmpty;
    const auto it = stats_.find(name);
    return it == stats_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>& counters()
      const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, RunningStats, std::less<>>& stats() const {
    return stats_;
  }

  void clear() {
    counters_.clear();
    stats_.clear();
    reset_cache();
  }

  /// Fold another registry into this one: counters add, stats merge.
  /// The reduction step behind parallel experiment execution — merging
  /// per-run registries in a fixed order is deterministic, so reduced
  /// results do not depend on which thread finished first.
  void merge(const MetricRegistry& other);

  /// Fold this registry into `dst` and reset it IN PLACE: counter
  /// values move to `dst` and zero here, stats merge and reset here.
  /// Unlike clear(), no map node is ever erased — pre-bound Cell
  /// handles (the channel/MAC hot-path cells bound to a shard registry)
  /// stay valid across the drain, which is what lets the sharded
  /// Network drain its per-shard registries into the main one after
  /// every run and keep simulating.
  void drain_into(MetricRegistry& dst);

  /// Human-readable dump (used by examples and debugging).
  void print(std::ostream& os) const;

  /// Approximate heap bytes held (map nodes + heap-allocated names).
  /// Node overhead is estimated at 48 bytes (rb-tree color/parent/
  /// children plus allocator rounding) — advisory accounting for the
  /// footprint probe, not an allocator audit.
  [[nodiscard]] std::size_t footprint_bytes() const {
    constexpr std::size_t kNode = 48;
    std::size_t bytes = 0;
    for (const auto& [k, v] : counters_) {
      bytes += kNode + sizeof(std::string) + sizeof(v);
      if (k.capacity() > sizeof(std::string)) bytes += k.capacity() + 1;
    }
    for (const auto& [k, v] : stats_) {
      bytes += kNode + sizeof(std::string) + sizeof(v);
      if (k.capacity() > sizeof(std::string)) bytes += k.capacity() + 1;
    }
    return bytes;
  }

 private:
  /// Memo of one resolved counter per slot: the map key (for the
  /// content check) and its value cell. std::map nodes are stable, so
  /// both pointers survive later inserts; only clear()/copy/move
  /// invalidate them.
  struct CacheEntry {
    const std::string* name = nullptr;
    std::uint64_t* value = nullptr;
  };
  static constexpr std::size_t kCacheSlots = 64;

  [[nodiscard]] static std::size_t slot_of(std::string_view name) {
    // Literals are word-aligned-ish; dropping the low bits spreads
    // distinct call sites across slots.
    return (reinterpret_cast<std::uintptr_t>(name.data()) >> 4) % kCacheSlots;
  }
  void add_slow(CacheEntry& e, std::string_view counter, std::uint64_t delta);
  void reset_cache() { cache_.fill(CacheEntry{}); }

  /// Insert-or-find the counter and return its stable value cell.
  [[nodiscard]] std::uint64_t* cell_of(std::string_view name) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) return &it->second;
    return &counters_.emplace(std::string(name), 0).first->second;
  }

  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, RunningStats, std::less<>> stats_;
  std::array<CacheEntry, kCacheSlots> cache_{};
};

}  // namespace icpda::sim
