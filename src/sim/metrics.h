// Measurement plumbing: counters, running statistics and histograms.
//
// Every experiment in bench/ reports through a MetricRegistry owned by
// its Simulation, so the figures are regenerated from the same counters
// the protocol code increments — no duplicated bookkeeping in the
// drivers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace icpda::sim {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable for the long Monte-Carlo sweeps in bench/.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean; 0 for fewer than 2 samples.
  [[nodiscard]] double sem() const {
    return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }
  [[nodiscard]] double min() const {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to
/// the edge buckets so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  /// Merge a histogram with identical bucketing (same lo/hi/count);
  /// throws std::invalid_argument on a geometry mismatch.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  [[nodiscard]] double bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

  /// Value below which fraction q of samples fall (linear interpolation
  /// within the bucket). q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Named counters + named stats; cheap lookup by string, which is fine
/// at protocol-event granularity (thousands of events per run).
class MetricRegistry {
 public:
  void add(const std::string& counter, std::uint64_t delta = 1) {
    counters_[counter] += delta;
  }
  void observe(const std::string& stat, double value) { stats_[stat].add(value); }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] const RunningStats& stat(const std::string& name) const {
    static const RunningStats kEmpty;
    const auto it = stats_.find(name);
    return it == stats_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, RunningStats>& stats() const {
    return stats_;
  }

  void clear() {
    counters_.clear();
    stats_.clear();
  }

  /// Fold another registry into this one: counters add, stats merge.
  /// The reduction step behind parallel experiment execution — merging
  /// per-run registries in a fixed order is deterministic, so reduced
  /// results do not depend on which thread finished first.
  void merge(const MetricRegistry& other);

  /// Human-readable dump (used by examples and debugging).
  void print(std::ostream& os) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, RunningStats> stats_;
};

}  // namespace icpda::sim
