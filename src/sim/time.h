// Simulation time: a strong type over double seconds.
//
// The discrete-event kernel (scheduler.h) orders events by SimTime.
// We follow the ns-2 convention of double-precision seconds, wrapped in
// a distinct type so that times, durations and plain numbers cannot be
// mixed up silently.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace icpda::sim {

/// A point in simulated time, measured in seconds since simulation start.
///
/// SimTime is totally ordered and supports the affine operations one
/// expects of a time point (time +/- duration, time - time -> duration).
/// Durations are represented as plain SimTime values as well (the origin
/// is zero), which keeps the arithmetic lightweight; the factory helpers
/// `seconds`, `millis` and `micros` make call sites unit-explicit.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double s) : seconds_(s) {}

  [[nodiscard]] constexpr double seconds() const { return seconds_; }
  [[nodiscard]] constexpr double millis() const { return seconds_ * 1e3; }
  [[nodiscard]] constexpr double micros() const { return seconds_ * 1e6; }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0.0}; }
  [[nodiscard]] static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr bool is_finite() const {
    return std::isfinite(seconds_);
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime d) {
    seconds_ += d.seconds_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) {
    seconds_ -= d.seconds_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.seconds_ + b.seconds_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.seconds_ - b.seconds_};
  }
  friend constexpr SimTime operator*(SimTime a, double k) {
    return SimTime{a.seconds_ * k};
  }
  friend constexpr SimTime operator*(double k, SimTime a) { return a * k; }

 private:
  double seconds_ = 0.0;
};

[[nodiscard]] constexpr SimTime seconds(double s) { return SimTime{s}; }
[[nodiscard]] constexpr SimTime millis(double ms) { return SimTime{ms * 1e-3}; }
[[nodiscard]] constexpr SimTime micros(double us) { return SimTime{us * 1e-6}; }

inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.seconds() << "s";
}

}  // namespace icpda::sim
