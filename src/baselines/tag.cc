#include "baselines/tag.h"

#include <utility>

#include "sim/log.h"

namespace icpda::baselines {

using proto::HelloMsg;
using proto::TagReportMsg;

void TagApp::start(net::Node& node) {
  if (!node.is_base_station()) return;
  joined_ = true;  // the BS is the tree root
  node.schedule(sim::seconds(config_.timing.start_delay_s), [this, &node] {
    HelloMsg hello;
    hello.query_id = config_.query_id;
    hello.hop = 0;
    node.broadcast(proto::kHello, hello.to_bytes());
    node.metrics().add("tag.hello_sent");
    node.schedule(config_.timing.close_delay(), [this, &node] { close_epoch(node); });
  });
}

void TagApp::on_receive(net::Node& node, const net::Frame& frame) {
  switch (frame.type) {
    case proto::kHello:
      handle_hello(node, frame);
      break;
    case proto::kTagReport:
      handle_report(node, frame);
      break;
    default:
      break;
  }
}

void TagApp::handle_hello(net::Node& node, const net::Frame& frame) {
  if (node.is_base_station() || joined_) return;
  const auto hello = HelloMsg::from_bytes(frame.payload);
  if (!hello || hello->query_id != config_.query_id) return;
  if (hello->hop >= config_.timing.max_hops) {
    node.metrics().add("tag.hop_budget_exceeded");
    return;
  }

  joined_ = true;
  parent_ = frame.src;
  hop_ = static_cast<std::uint16_t>(hello->hop + 1);
  node.metrics().add("tag.joined");

  // Re-flood after jitter so the wavefront does not self-collide.
  HelloMsg rebroadcast = *hello;
  rebroadcast.hop = hop_;
  const auto jitter = sim::seconds(node.rng().uniform(0.0, config_.timing.hello_jitter_s));
  node.schedule(jitter, [&node, payload = rebroadcast.to_bytes()]() mutable {
    node.broadcast(proto::kHello, std::move(payload));
  });

  // Depth-scheduled report slot.
  node.schedule(config_.timing.report_delay(hop_), [this, &node] { send_report(node); });
}

void TagApp::handle_report(net::Node& node, const net::Frame& frame) {
  const auto report = TagReportMsg::from_bytes(frame.payload);
  if (!report || report->query_id != config_.query_id) return;
  if (reported_) {
    // Child missed the slot (losses/backoff); its data cannot be
    // included any more — this is TAG's data-loss mechanism.
    node.metrics().add("tag.late_report");
    return;
  }
  pending_.merge(report->aggregate);
  node.metrics().add("tag.report_received");
}

void TagApp::send_report(net::Node& node) {
  if (reported_) return;
  reported_ = true;
  TagReportMsg report;
  report.query_id = config_.query_id;
  report.reporter = node.id();
  report.aggregate = pending_.merged(proto::Aggregate::of(readings_(node.id())));
  node.send(parent_, proto::kTagReport, report.to_bytes());
  node.metrics().add("tag.report_sent");
  if (outcome_) ++outcome_->reporters;
}

void TagApp::close_epoch(net::Node& node) {
  reported_ = true;  // stop accepting input
  if (outcome_) {
    outcome_->result = pending_;
    outcome_->closed_at = node.now();
  }
  node.metrics().add("tag.epoch_closed");
}

TagOutcome run_tag_epoch(net::Network& net, const TagConfig& config,
                         const proto::ReadingProvider& readings) {
  TagOutcome outcome;
  net.attach_apps([&](net::Node&) {
    return std::make_unique<TagApp>(config, readings, &outcome);
  });
  net.run(sim::seconds(config.timing.start_delay_s) + config.timing.close_delay() +
          sim::seconds(2.0));
  return outcome;
}

}  // namespace icpda::baselines
