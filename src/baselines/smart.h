// SMART — Slice-Mix-AggRegaTe (He et al., INFOCOM'07), the slicing
// baseline of the paper family (iPDA's privacy mechanism is the same
// idea with disjoint trees on top).
//
// Each sensor hides its reading by splitting its aggregate contribution
// into l random slices: l-1 are sent encrypted to distinct neighbouring
// participants, one is kept. After a mixing deadline every node treats
// (kept slice + received slices) as its effective reading and a plain
// TAG epoch aggregates the effective values. Privacy holds against an
// eavesdropper unless all l slices of a node leak; there is NO
// integrity mechanism — it is the privacy-but-no-integrity comparator.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/keys.h"
#include "net/network.h"
#include "net/node.h"
#include "proto/aggregate.h"
#include "proto/epoch.h"
#include "proto/messages.h"

namespace icpda::baselines {

struct SmartConfig {
  std::uint32_t query_id = 1;
  proto::TreeTiming timing;
  /// Total slices per node (l). l-1 leave the node; the paper family
  /// recommends l = 2 as the overhead/privacy sweet spot.
  std::uint32_t slices = 2;
  /// Wait after joining the tree before picking slice recipients
  /// (neighbour discovery = overheard HELLO re-broadcasts).
  double slice_delay_s = 0.05;
};

struct SmartOutcome {
  std::optional<proto::Aggregate> result;
  sim::SimTime closed_at;
  std::uint32_t reporters = 0;
  /// Nodes that could not find l-1 participating neighbours and kept
  /// extra slices locally (reduced privacy, not data loss).
  std::uint32_t degraded_privacy = 0;
};

class SmartApp final : public net::App {
 public:
  SmartApp(SmartConfig config, proto::ReadingProvider readings,
           const crypto::KeyScheme* keys, SmartOutcome* outcome)
      : config_(config),
        readings_(std::move(readings)),
        keys_(keys),
        outcome_(outcome) {}

  void start(net::Node& node) override;
  void on_receive(net::Node& node, const net::Frame& frame) override;
  void on_overhear(net::Node& node, const net::Frame& frame) override;

  [[nodiscard]] bool joined() const { return joined_; }
  [[nodiscard]] net::NodeId parent() const { return parent_; }

 private:
  void handle_hello(net::Node& node, const net::Frame& frame);
  void handle_slice(net::Node& node, const net::Frame& frame);
  void handle_report(net::Node& node, const net::Frame& frame);
  void send_slices(net::Node& node);
  void send_report(net::Node& node);
  void close_epoch(net::Node& node);
  void note_participant(net::NodeId id);

  SmartConfig config_;
  proto::ReadingProvider readings_;
  const crypto::KeyScheme* keys_;
  SmartOutcome* outcome_;

  bool joined_ = false;
  bool reported_ = false;
  bool sliced_ = false;
  net::NodeId parent_ = net::kNoNode;
  std::uint16_t hop_ = 0;
  /// Kept slice of the own contribution (own triple minus sent slices).
  proto::Aggregate kept_;
  /// Received slices + children reports accumulate here.
  proto::Aggregate pending_;
  /// Participating neighbours discovered from HELLO traffic.
  std::vector<net::NodeId> participants_;
};

/// Run one SMART epoch on `net`. Keys: pairwise scheme for slice
/// encryption (must yield a key for every neighbour pair used).
SmartOutcome run_smart_epoch(net::Network& net, const SmartConfig& config,
                             const proto::ReadingProvider& readings,
                             const crypto::KeyScheme& keys);

}  // namespace icpda::baselines
