#include "baselines/smart.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "crypto/cipher.h"

namespace icpda::baselines {

using proto::Aggregate;
using proto::HelloMsg;
using proto::TagReportMsg;
using proto::SliceMsg;

namespace {

/// Plaintext body of one slice message.
struct SliceBody {
  std::uint32_t query_id = 0;
  Aggregate slice;

  [[nodiscard]] net::Bytes to_bytes() const {
    net::WireWriter w;
    w.u32(query_id);
    slice.write(w);
    return std::move(w).take();
  }
  [[nodiscard]] static std::optional<SliceBody> from_bytes(const net::Bytes& b) {
    try {
      net::WireReader r(b);
      SliceBody body;
      body.query_id = r.u32();
      body.slice = Aggregate::read(r);
      return body;
    } catch (const net::WireError&) {
      return std::nullopt;
    }
  }
};

}  // namespace

void SmartApp::start(net::Node& node) {
  if (!node.is_base_station()) return;
  joined_ = true;
  node.schedule(sim::seconds(config_.timing.start_delay_s), [this, &node] {
    HelloMsg hello;
    hello.query_id = config_.query_id;
    hello.hop = 0;
    node.broadcast(proto::kHello, hello.to_bytes());
    node.schedule(config_.timing.close_delay(), [this, &node] { close_epoch(node); });
  });
}

void SmartApp::note_participant(net::NodeId id) {
  if (id == 0) return;  // base station is not a slice recipient
  if (std::find(participants_.begin(), participants_.end(), id) == participants_.end()) {
    participants_.push_back(id);
  }
}

void SmartApp::on_receive(net::Node& node, const net::Frame& frame) {
  switch (frame.type) {
    case proto::kHello:
      handle_hello(node, frame);
      break;
    case proto::kSmartSlice:
      handle_slice(node, frame);
      break;
    case proto::kSmartReport:
      handle_report(node, frame);
      break;
    default:
      break;
  }
}

void SmartApp::on_overhear(net::Node& node, const net::Frame& frame) {
  // Unicast HELLOs do not exist, but slices addressed to others reveal
  // participation too.
  (void)node;
  if (frame.type == proto::kSmartSlice) note_participant(frame.src);
}

void SmartApp::handle_hello(net::Node& node, const net::Frame& frame) {
  note_participant(frame.src);
  if (node.is_base_station() || joined_) return;
  const auto hello = HelloMsg::from_bytes(frame.payload);
  if (!hello || hello->query_id != config_.query_id) return;
  if (hello->hop >= config_.timing.max_hops) return;

  joined_ = true;
  parent_ = frame.src;
  hop_ = static_cast<std::uint16_t>(hello->hop + 1);
  kept_ = Aggregate::of(readings_(node.id()));
  node.metrics().add("smart.joined");

  HelloMsg rebroadcast = *hello;
  rebroadcast.hop = hop_;
  const auto jitter = sim::seconds(node.rng().uniform(0.0, config_.timing.hello_jitter_s));
  node.schedule(jitter, [&node, payload = rebroadcast.to_bytes()]() mutable {
    node.broadcast(proto::kHello, std::move(payload));
  });

  node.schedule(sim::seconds(config_.slice_delay_s), [this, &node] { send_slices(node); });
  node.schedule(config_.timing.report_delay(hop_), [this, &node] { send_report(node); });
}

void SmartApp::send_slices(net::Node& node) {
  if (sliced_ || !joined_ || node.is_base_station()) return;
  sliced_ = true;

  const std::uint32_t want = config_.slices > 0 ? config_.slices - 1 : 0;
  std::vector<net::NodeId> targets = participants_;
  node.rng().shuffle(targets);
  if (targets.size() > want) targets.resize(want);
  if (targets.size() < want) {
    node.metrics().add("smart.insufficient_neighbors");
    if (outcome_) ++outcome_->degraded_privacy;
  }

  for (const net::NodeId target : targets) {
    const auto key = keys_->link_key(node.id(), target);
    if (!key) {
      node.metrics().add("smart.no_link_key");
      continue;
    }
    // Random slice of each component; the kept slice absorbs the
    // remainder so the total is exactly the original contribution.
    Aggregate slice;
    slice.count = node.rng().uniform(-1.0, 1.0);
    slice.sum = node.rng().uniform(-1.0, 1.0) * (std::abs(kept_.sum) + 1.0);
    slice.sum_sq = node.rng().uniform(-1.0, 1.0) * (std::abs(kept_.sum_sq) + 1.0);
    kept_.count -= slice.count;
    kept_.sum -= slice.sum;
    kept_.sum_sq -= slice.sum_sq;

    SliceBody body{config_.query_id, slice};
    SliceMsg msg;
    msg.query_id = config_.query_id;
    msg.sender = node.id();
    msg.recipient = target;
    msg.sealed = crypto::seal(*key, node.rng()(), body.to_bytes());
    node.send(target, proto::kSmartSlice, msg.to_bytes());
    node.metrics().add("smart.slice_sent");
  }
}

void SmartApp::handle_slice(net::Node& node, const net::Frame& frame) {
  const auto msg = SliceMsg::from_bytes(frame.payload);
  if (!msg || msg->query_id != config_.query_id || msg->recipient != node.id()) return;
  if (reported_) {
    node.metrics().add("smart.late_slice");
    return;
  }
  const auto key = keys_->link_key(msg->sender, node.id());
  if (!key) return;
  const auto opened = crypto::open(*key, msg->sealed);
  if (!opened) {
    node.metrics().add("smart.bad_slice_auth");
    return;
  }
  const auto body = SliceBody::from_bytes(*opened);
  if (!body || body->query_id != config_.query_id) return;
  pending_.merge(body->slice);
  node.metrics().add("smart.slice_received");
}

void SmartApp::handle_report(net::Node& node, const net::Frame& frame) {
  const auto report = TagReportMsg::from_bytes(frame.payload);
  if (!report || report->query_id != config_.query_id) return;
  if (reported_) {
    node.metrics().add("smart.late_report");
    return;
  }
  pending_.merge(report->aggregate);
}

void SmartApp::send_report(net::Node& node) {
  if (reported_) return;
  reported_ = true;
  TagReportMsg report;
  report.query_id = config_.query_id;
  report.reporter = node.id();
  // Effective reading = kept slice (+ not-yet-sent remainder if slice
  // sending was impossible) + received slices + children reports.
  report.aggregate = pending_.merged(kept_);
  node.send(parent_, proto::kSmartReport, report.to_bytes());
  node.metrics().add("smart.report_sent");
  if (outcome_) ++outcome_->reporters;
}

void SmartApp::close_epoch(net::Node& node) {
  reported_ = true;
  if (outcome_) {
    outcome_->result = pending_;
    outcome_->closed_at = node.now();
  }
}

SmartOutcome run_smart_epoch(net::Network& net, const SmartConfig& config,
                             const proto::ReadingProvider& readings,
                             const crypto::KeyScheme& keys) {
  SmartOutcome outcome;
  net.attach_apps([&](net::Node&) {
    return std::make_unique<SmartApp>(config, readings, &keys, &outcome);
  });
  net.run(sim::seconds(config.timing.start_delay_s) + config.timing.close_delay() +
          sim::seconds(2.0));
  return outcome;
}

}  // namespace icpda::baselines
