// TAG: Tiny AGgregation (Madden et al., OSDI'02) — the paper's
// comparison baseline.
//
// The base station floods a HELLO; each node adopts the first sender
// it hears as its tree parent and re-broadcasts once. Reports ascend
// the tree in depth-scheduled slots, each node merging its children's
// aggregates with its own reading. No privacy (the first-hop report
// reveals each leaf's reading to its parent and to every eavesdropper
// of that link) and no integrity (any aggregator can silently rewrite
// the partial aggregate) — it is the efficiency yardstick.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/network.h"
#include "net/node.h"
#include "proto/aggregate.h"
#include "proto/epoch.h"
#include "proto/messages.h"

namespace icpda::baselines {

struct TagConfig {
  std::uint32_t query_id = 1;
  proto::TreeTiming timing;
};

/// Shared outcome sink: one per simulated epoch, owned by the driver,
/// written by the base station's app when the epoch closes.
struct TagOutcome {
  std::optional<proto::Aggregate> result;
  sim::SimTime closed_at;
  /// Nodes that transmitted a report (diagnostic).
  std::uint32_t reporters = 0;
};

class TagApp final : public net::App {
 public:
  TagApp(TagConfig config, proto::ReadingProvider readings, TagOutcome* outcome)
      : config_(config), readings_(std::move(readings)), outcome_(outcome) {}

  void start(net::Node& node) override;
  void on_receive(net::Node& node, const net::Frame& frame) override;

  // Introspection for tests.
  [[nodiscard]] net::NodeId parent() const { return parent_; }
  [[nodiscard]] std::uint16_t hop() const { return hop_; }
  [[nodiscard]] bool joined() const { return joined_; }

 private:
  void handle_hello(net::Node& node, const net::Frame& frame);
  void handle_report(net::Node& node, const net::Frame& frame);
  void send_report(net::Node& node);
  void close_epoch(net::Node& node);

  TagConfig config_;
  proto::ReadingProvider readings_;
  TagOutcome* outcome_;

  bool joined_ = false;    ///< heard the query, part of the tree
  bool reported_ = false;  ///< already sent (or closed) — late input dropped
  net::NodeId parent_ = net::kNoNode;
  std::uint16_t hop_ = 0;
  proto::Aggregate pending_;  ///< children's aggregates merged so far
};

/// Convenience driver: build apps on every node of `net`, run one
/// epoch to quiescence, and return the outcome.
TagOutcome run_tag_epoch(net::Network& net, const TagConfig& config,
                         const proto::ReadingProvider& readings);

}  // namespace icpda::baselines
