// Epoch timing shared by the tree-based protocols.
//
// TAG-style aggregation schedules reporting by tree depth: a node at
// hop h transmits its aggregate (max_hops - h) slots after it learned
// its place in the tree, so children's reports arrive before the
// parent's own slot. All tree protocols in this repository (TAG, SMART,
// iCPDA Phase III) share this discipline.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.h"

namespace icpda::proto {

struct TreeTiming {
  /// Base-station delay before issuing the query flood.
  double start_delay_s = 0.05;
  /// Application-level jitter before re-broadcasting a HELLO (on top
  /// of MAC backoff; desynchronises the flood wavefront).
  double hello_jitter_s = 0.05;
  /// Depth budget of the epoch: nodes deeper than this cannot report
  /// in time (the field/range combinations used in the experiments
  /// stay well below it).
  std::uint16_t max_hops = 24;
  /// Per-hop reporting slot.
  double hop_slot_s = 0.08;
  /// Extra slack before the base station closes the epoch.
  double close_slack_s = 0.5;

  /// Delay, from the moment a node at `hop` learns its tree position,
  /// until it must transmit its report.
  [[nodiscard]] sim::SimTime report_delay(std::uint16_t hop) const {
    const std::uint16_t remaining = hop >= max_hops ? 0 : static_cast<std::uint16_t>(max_hops - hop);
    return sim::seconds(static_cast<double>(remaining) * hop_slot_s);
  }

  /// Delay, from query issue, until the base station closes the epoch.
  [[nodiscard]] sim::SimTime close_delay() const {
    return sim::seconds(static_cast<double>(max_hops + 2) * hop_slot_s + close_slack_s);
  }
};

/// One reading per sensor, indexed by node id. Experiments install a
/// provider; COUNT queries use `constant_reading(1.0)`.
using ReadingProvider = std::function<double(std::uint32_t node_id)>;

[[nodiscard]] inline ReadingProvider constant_reading(double value) {
  return [value](std::uint32_t) { return value; };
}

}  // namespace icpda::proto
