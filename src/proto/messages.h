// Protocol message catalogue: frame-type registry + typed payloads.
//
// Every protocol message in the repository is declared here with its
// wire serialization, so byte accounting is consistent across TAG,
// SMART and iCPDA, and tests can round-trip every message type.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "net/wire.h"
#include "proto/aggregate.h"

namespace icpda::proto {

/// Frame-type values (net::FrameType). 0 is reserved by the MAC (ACK).
enum MsgType : net::FrameType {
  kHello = 1,          ///< query flood / tree construction (TAG & iCPDA)
  kTagReport = 2,      ///< TAG: aggregate to tree parent
  kClusterHello = 3,   ///< iCPDA I: cluster-head announcement
  kJoin = 4,           ///< iCPDA I: member -> CH join request
  kClusterRoster = 5,  ///< iCPDA I: CH broadcasts final member list+seeds
  kShare = 6,          ///< iCPDA II: encrypted polynomial share
  kFAnnounce = 7,      ///< iCPDA II: assembled F_j broadcast (cleartext)
  kClusterReport = 8,  ///< iCPDA III: aggregate up the tree
  kAlarm = 9,          ///< iCPDA III: witness pollution alarm
  kSmartSlice = 10,    ///< SMART: encrypted data slice
  kSmartReport = 11,   ///< SMART: aggregate to tree parent
  kClusterDigest = 12, ///< iCPDA II: head's consolidated F vector
};

// ---- QueryId wire invariant (continuous-query multiplexing) ---------
//
// Every payload in this catalogue begins with the message's query id as
// a little-endian u32 — the first four bytes of ANY valid encoding name
// the query the frame belongs to, for every frame type, in every phase.
// That invariant is what lets the service layer (src/service/) demux
// overlapping epochs without decoding: one allocation-free peek routes
// the frame to the right per-query protocol instance, and frames for
// unknown/retired queries are dropped before any decoder runs. The
// single-query binaries never call the peek, so their wire bytes and
// behaviour are untouched. Covered by tests/messages_fuzz_test.cc
// (QueryIdPeek*): the peek never crashes, never allocates, and agrees
// with the decoded `query_id` field on every valid encoding.

inline constexpr std::size_t kQueryIdBytes = 4;  // LE u32 payload prefix

/// Allocation-free peek at an encoded payload's query id. Returns 0 for
/// payloads too short to carry the prefix (0 is never a service query
/// id — the dispatcher assigns ids from 1).
[[nodiscard]] std::uint32_t peek_query_id(const net::Bytes& payload);

// ---- Epoch-freshness tag (replay hardening) -------------------------
//
// When core::HardeningConfig::epoch_tag is non-zero, every Phase II/III
// sender appends a 5-byte trailer — marker byte 0xE9 + the tag as a
// little-endian u32 — after its regular payload body, and receivers
// drop gated frame types whose tag mismatches the current epoch. The
// trailer is OPTIONAL: a tag of zero encodes nothing, so benign
// (unhardened) encodings are byte-identical to the previous wire format
// and old decoders simply ignore the trailing bytes. The frame-level
// tag is not MACed — it models an authenticated epoch counter (the
// sealed ShareBody's copy IS under the link MAC); see DESIGN.md §5g
// for the threat-model caveat.

inline constexpr std::uint8_t kEpochTagMarker = 0xE9;
inline constexpr std::size_t kEpochTagBytes = 5;  // marker + u32 tag

/// Append the trailer (no-op when tag == 0).
void write_epoch_tag(net::WireWriter& w, std::uint32_t tag);
/// Consume a trailing tag iff the reader has exactly one trailer left.
std::uint32_t read_epoch_tag(net::WireReader& r);
/// Allocation-free peek at an encoded payload's tag (0 = untagged).
[[nodiscard]] std::uint32_t peek_epoch_tag(const net::Bytes& payload);
/// True iff `payload` fails the freshness gate for `expected`
/// (expected == 0 disables the gate entirely). Allocation-free: stale
/// frames are rejected before any decoder runs.
[[nodiscard]] bool epoch_tag_stale(const net::Bytes& payload,
                                   std::uint32_t expected);
/// Frame types the receive gate applies to (Phase II/III traffic; the
/// Phase I flood precedes any per-epoch secret and is out of scope).
[[nodiscard]] constexpr bool epoch_tag_gated(net::FrameType type) {
  return type == kClusterRoster || type == kShare || type == kFAnnounce ||
         type == kClusterDigest || type == kClusterReport || type == kAlarm;
}

/// Query flood message. `hop` counts from the base station; receivers
/// adopt the first sender they hear as tree parent. `allowed_mask`
/// optionally restricts which nodes may serve as aggregators/cluster
/// heads this round (used by the bisection localizer; empty = all).
struct HelloMsg {
  std::uint32_t query_id = 0;
  std::uint16_t hop = 0;
  net::Bytes allowed_mask;  ///< bitset over node ids; empty = everyone

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<HelloMsg> from_bytes(const net::Bytes& b);

  [[nodiscard]] bool allows(net::NodeId id) const {
    if (allowed_mask.empty()) return true;
    const std::size_t byte = id / 8;
    if (byte >= allowed_mask.size()) return false;
    return (allowed_mask[byte] >> (id % 8)) & 1;
  }
  void set_allowed(net::NodeId id, std::size_t universe);
};

/// Lean aggregate report used by the TAG and SMART baselines (the
/// paper's TAG carries no auditing metadata).
struct TagReportMsg {
  std::uint32_t query_id = 0;
  net::NodeId reporter = net::kNoNode;
  Aggregate aggregate;

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<TagReportMsg> from_bytes(const net::Bytes& b);
};

/// iCPDA Phase III itemized report: the aggregating head lists every
/// input it combined — (contributor id, value) pairs, including its own
/// cluster sum under its own id — plus the total. Itemization is what
/// lets even a partial-view witness audit: anyone can check
/// total == sum(items); a witness checks the head's own item against
/// the cluster sum it solved, and every child item it personally
/// overheard. Tampering must therefore corrupt a specific item and is
/// caught unless NO witness saw that item. (The items reveal only
/// subtree aggregates, which the shared medium already exposes.)
struct ReportItem {
  net::NodeId id = net::kNoNode;
  Aggregate value;
  friend bool operator==(const ReportItem&, const ReportItem&) = default;
};

struct ReportMsg {
  std::uint32_t query_id = 0;
  net::NodeId reporter = net::kNoNode;
  Aggregate aggregate;  ///< total of `items`
  std::vector<ReportItem> items;

  [[nodiscard]] bool claims(net::NodeId id) const {
    for (const auto& item : items) {
      if (item.id == id) return true;
    }
    return false;
  }

  std::uint32_t epoch_tag = 0;  ///< freshness trailer (0 = untagged)

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<ReportMsg> from_bytes(const net::Bytes& b);
};

/// iCPDA Phase I: cluster-head announcement (carries hop so the CH
/// overlay inherits tree depth information from the flood).
struct ClusterHelloMsg {
  std::uint32_t query_id = 0;
  net::NodeId head = net::kNoNode;
  std::uint16_t hop = 0;

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<ClusterHelloMsg> from_bytes(const net::Bytes& b);
};

/// iCPDA Phase I: join request from a would-be member to a CH.
struct JoinMsg {
  std::uint32_t query_id = 0;
  net::NodeId member = net::kNoNode;
  net::NodeId head = net::kNoNode;

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<JoinMsg> from_bytes(const net::Bytes& b);
};

/// iCPDA Phase I: the CH fixes the cluster roster and the public,
/// distinct, non-zero seeds x_i used by the share polynomials. Seeds
/// are small integers (1..m permuted) — public by design.
struct ClusterRosterMsg {
  std::uint32_t query_id = 0;
  net::NodeId head = net::kNoNode;
  /// Phase II round this roster opens. 0 is the normal epoch roster;
  /// round 1 is a *recovery* roster — the head re-fixes the cluster to
  /// the members that proved alive so the share algebra can rerun at
  /// reduced degree after a mid-exchange crash.
  std::uint8_t round = 0;
  std::vector<std::uint32_t> members;  ///< includes the head itself
  std::vector<std::uint32_t> seeds;    ///< same order as members
  std::uint32_t epoch_tag = 0;         ///< freshness trailer (0 = untagged)

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<ClusterRosterMsg> from_bytes(const net::Bytes& b);
};

/// iCPDA Phase II: encrypted share carrier. The sealed blob decrypts
/// (under the pairwise link key) to the share triple the CPDA algebra
/// defines; `sender`/`recipient` ride in the clear like any link header.
struct ShareMsg {
  std::uint32_t query_id = 0;
  net::NodeId sender = net::kNoNode;
  net::NodeId recipient = net::kNoNode;
  net::Bytes sealed;  ///< crypto::seal of a ShareBody (see core/cpda_algebra.h)
  std::uint32_t epoch_tag = 0;  ///< freshness trailer (0 = untagged)

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<ShareMsg> from_bytes(const net::Bytes& b);
};

/// iCPDA Phase II: node j's assembled value F_j, sent to the cluster
/// head in the clear (F values are public by design — the privacy of
/// individual readings rests on the share randomness, not on hiding
/// the assembled sums). Unicast so MAC ARQ covers it.
struct FAnnounceMsg {
  std::uint32_t query_id = 0;
  net::NodeId member = net::kNoNode;
  net::NodeId head = net::kNoNode;
  /// Phase II round this F belongs to (see ClusterRosterMsg::round);
  /// the head discards announcements from a stale round.
  std::uint8_t round = 0;
  /// F_j triple: assembled (count, sum, sum_sq) shares.
  Aggregate f;
  /// Member ids whose shares are included in f (sorted). All cluster
  /// members must agree on this set for the interpolation to be valid;
  /// the head checks the lists for consistency before solving.
  std::vector<std::uint32_t> contributors;
  std::uint32_t epoch_tag = 0;  ///< freshness trailer (0 = untagged)

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<FAnnounceMsg> from_bytes(const net::Bytes& b);
};

/// iCPDA Phase II: the head's consolidated view, broadcast to the
/// cluster (members may be two hops from each other but all are one
/// hop from the head). Member j endorses the digest by checking that
/// entry j equals the F_j it sent and that the claimed contributor set
/// matches its own assembly — a forged entry is a provable lie and
/// draws an alarm. Any endorser can interpolate the cluster sum from
/// the vector, which is what arms the Phase III witnesses.
struct ClusterDigestMsg {
  std::uint32_t query_id = 0;
  net::NodeId head = net::kNoNode;
  std::vector<std::uint32_t> members;  ///< roster order
  std::vector<Aggregate> f_values;     ///< same order as members
  std::vector<std::uint32_t> contributors;  ///< common contributor set
  std::uint32_t epoch_tag = 0;              ///< freshness trailer (0 = untagged)

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<ClusterDigestMsg> from_bytes(const net::Bytes& b);
};

/// iCPDA Phase III: witness alarm, flooded toward the base station.
///
/// kValueTamper alarms (a witness reconstructed a different sum, or a
/// member caught a forged digest entry) reject the epoch when the
/// deviation exceeds Th. kDropSuspect alarms (a watchdog saw its
/// parent swallow a report) are advisory: dropping is indistinguishable
/// from loss at a single witness, so it feeds rerouting/reputation
/// rather than rejection.
struct AlarmMsg {
  enum Kind : std::uint8_t { kValueTamper = 0, kDropSuspect = 1 };

  std::uint32_t query_id = 0;
  std::uint8_t kind = kValueTamper;
  net::NodeId witness = net::kNoNode;
  net::NodeId accused = net::kNoNode;
  double expected_sum = 0.0;
  double observed_sum = 0.0;
  std::uint32_t epoch_tag = 0;  ///< freshness trailer (0 = untagged)

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<AlarmMsg> from_bytes(const net::Bytes& b);
};

/// SMART/iPDA-style slicing baseline: encrypted slice carrier.
struct SliceMsg {
  std::uint32_t query_id = 0;
  net::NodeId sender = net::kNoNode;
  net::NodeId recipient = net::kNoNode;
  net::Bytes sealed;  ///< crypto::seal of one slice triple

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<SliceMsg> from_bytes(const net::Bytes& b);
};

}  // namespace icpda::proto
