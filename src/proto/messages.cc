#include "proto/messages.h"

namespace icpda::proto {

namespace {
/// Wrap a deserializer body so a truncated/malformed payload becomes
/// nullopt (protocol layers drop malformed frames, they never throw
/// across the MAC boundary).
template <typename T, typename Fn>
std::optional<T> parse(const net::Bytes& b, Fn&& body) {
  try {
    net::WireReader r(b);
    T msg = body(r);
    return msg;
  } catch (const net::WireError&) {
    return std::nullopt;
  }
}

/// Guard a wire-supplied element count against the bytes actually left
/// in the buffer before allocating: a hostile length prefix must yield
/// a clean parse failure, not a giant reserve().
void check_count(const net::WireReader& r, std::uint32_t n,
                 std::size_t min_elem_bytes) {
  if (static_cast<std::uint64_t>(n) * min_elem_bytes > r.remaining()) {
    throw net::WireError("element count exceeds remaining payload");
  }
}
}  // namespace

// ---- QueryId wire invariant -----------------------------------------

std::uint32_t peek_query_id(const net::Bytes& payload) {
  if (payload.size() < kQueryIdBytes) return 0;
  return static_cast<std::uint32_t>(payload[0]) |
         static_cast<std::uint32_t>(payload[1]) << 8 |
         static_cast<std::uint32_t>(payload[2]) << 16 |
         static_cast<std::uint32_t>(payload[3]) << 24;
}

// ---- Epoch-freshness tag --------------------------------------------

void write_epoch_tag(net::WireWriter& w, std::uint32_t tag) {
  if (tag == 0) return;
  w.u8(kEpochTagMarker);
  w.u32(tag);
}

std::uint32_t read_epoch_tag(net::WireReader& r) {
  // Exactly one trailer must remain: anything else is either an
  // untagged encoding (remaining == 0) or trailing junk the decoders
  // tolerate for forward compatibility.
  if (r.remaining() != kEpochTagBytes) return 0;
  if (r.u8() != kEpochTagMarker) return 0;
  return r.u32();
}

std::uint32_t peek_epoch_tag(const net::Bytes& payload) {
  const std::size_t n = payload.size();
  if (n < kEpochTagBytes || payload[n - 5] != kEpochTagMarker) return 0;
  return static_cast<std::uint32_t>(payload[n - 4]) |
         static_cast<std::uint32_t>(payload[n - 3]) << 8 |
         static_cast<std::uint32_t>(payload[n - 2]) << 16 |
         static_cast<std::uint32_t>(payload[n - 1]) << 24;
}

bool epoch_tag_stale(const net::Bytes& payload, std::uint32_t expected) {
  return expected != 0 && peek_epoch_tag(payload) != expected;
}

// ---- HelloMsg -------------------------------------------------------

net::Bytes HelloMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u16(hop);
  w.blob(allowed_mask);
  return std::move(w).take();
}

std::optional<HelloMsg> HelloMsg::from_bytes(const net::Bytes& b) {
  return parse<HelloMsg>(b, [](net::WireReader& r) {
    HelloMsg m;
    m.query_id = r.u32();
    m.hop = r.u16();
    m.allowed_mask = r.blob();
    return m;
  });
}

void HelloMsg::set_allowed(net::NodeId id, std::size_t universe) {
  if (allowed_mask.empty()) allowed_mask.assign((universe + 7) / 8, 0);
  allowed_mask.at(id / 8) |= static_cast<std::uint8_t>(1u << (id % 8));
}

// ---- TagReportMsg ---------------------------------------------------

net::Bytes TagReportMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u32(reporter);
  aggregate.write(w);
  return std::move(w).take();
}

std::optional<TagReportMsg> TagReportMsg::from_bytes(const net::Bytes& b) {
  return parse<TagReportMsg>(b, [](net::WireReader& r) {
    TagReportMsg m;
    m.query_id = r.u32();
    m.reporter = r.u32();
    m.aggregate = Aggregate::read(r);
    return m;
  });
}

// ---- ReportMsg ------------------------------------------------------

net::Bytes ReportMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u32(reporter);
  aggregate.write(w);
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) {
    w.u32(item.id);
    item.value.write(w);
  }
  write_epoch_tag(w, epoch_tag);
  return std::move(w).take();
}

std::optional<ReportMsg> ReportMsg::from_bytes(const net::Bytes& b) {
  return parse<ReportMsg>(b, [](net::WireReader& r) {
    ReportMsg m;
    m.query_id = r.u32();
    m.reporter = r.u32();
    m.aggregate = Aggregate::read(r);
    const std::uint32_t n = r.u32();
    check_count(r, n, /*min_elem_bytes=*/28);  // u32 id + 3x f64 triple
    m.items.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ReportItem item;
      item.id = r.u32();
      item.value = Aggregate::read(r);
      m.items.push_back(item);
    }
    m.epoch_tag = read_epoch_tag(r);
    return m;
  });
}

// ---- ClusterHelloMsg ------------------------------------------------

net::Bytes ClusterHelloMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u32(head);
  w.u16(hop);
  return std::move(w).take();
}

std::optional<ClusterHelloMsg> ClusterHelloMsg::from_bytes(const net::Bytes& b) {
  return parse<ClusterHelloMsg>(b, [](net::WireReader& r) {
    ClusterHelloMsg m;
    m.query_id = r.u32();
    m.head = r.u32();
    m.hop = r.u16();
    return m;
  });
}

// ---- JoinMsg --------------------------------------------------------

net::Bytes JoinMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u32(member);
  w.u32(head);
  return std::move(w).take();
}

std::optional<JoinMsg> JoinMsg::from_bytes(const net::Bytes& b) {
  return parse<JoinMsg>(b, [](net::WireReader& r) {
    JoinMsg m;
    m.query_id = r.u32();
    m.member = r.u32();
    m.head = r.u32();
    return m;
  });
}

// ---- ClusterRosterMsg -----------------------------------------------

net::Bytes ClusterRosterMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u32(head);
  w.u8(round);
  w.u32_vec(members);
  w.u32_vec(seeds);
  write_epoch_tag(w, epoch_tag);
  return std::move(w).take();
}

std::optional<ClusterRosterMsg> ClusterRosterMsg::from_bytes(const net::Bytes& b) {
  return parse<ClusterRosterMsg>(b, [](net::WireReader& r) {
    ClusterRosterMsg m;
    m.query_id = r.u32();
    m.head = r.u32();
    m.round = r.u8();
    m.members = r.u32_vec();
    m.seeds = r.u32_vec();
    m.epoch_tag = read_epoch_tag(r);
    return m;
  });
}

// ---- ShareMsg -------------------------------------------------------

net::Bytes ShareMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u32(sender);
  w.u32(recipient);
  w.blob(sealed);
  write_epoch_tag(w, epoch_tag);
  return std::move(w).take();
}

std::optional<ShareMsg> ShareMsg::from_bytes(const net::Bytes& b) {
  return parse<ShareMsg>(b, [](net::WireReader& r) {
    ShareMsg m;
    m.query_id = r.u32();
    m.sender = r.u32();
    m.recipient = r.u32();
    m.sealed = r.blob();
    m.epoch_tag = read_epoch_tag(r);
    return m;
  });
}

// ---- FAnnounceMsg ---------------------------------------------------

net::Bytes FAnnounceMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u32(member);
  w.u32(head);
  w.u8(round);
  f.write(w);
  w.u32_vec(contributors);
  write_epoch_tag(w, epoch_tag);
  return std::move(w).take();
}

std::optional<FAnnounceMsg> FAnnounceMsg::from_bytes(const net::Bytes& b) {
  return parse<FAnnounceMsg>(b, [](net::WireReader& r) {
    FAnnounceMsg m;
    m.query_id = r.u32();
    m.member = r.u32();
    m.head = r.u32();
    m.round = r.u8();
    m.f = Aggregate::read(r);
    m.contributors = r.u32_vec();
    m.epoch_tag = read_epoch_tag(r);
    return m;
  });
}

// ---- ClusterDigestMsg -----------------------------------------------

net::Bytes ClusterDigestMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u32(head);
  w.u32_vec(members);
  w.u32(static_cast<std::uint32_t>(f_values.size()));
  for (const auto& f : f_values) f.write(w);
  w.u32_vec(contributors);
  write_epoch_tag(w, epoch_tag);
  return std::move(w).take();
}

std::optional<ClusterDigestMsg> ClusterDigestMsg::from_bytes(const net::Bytes& b) {
  return parse<ClusterDigestMsg>(b, [](net::WireReader& r) {
    ClusterDigestMsg m;
    m.query_id = r.u32();
    m.head = r.u32();
    m.members = r.u32_vec();
    const std::uint32_t n = r.u32();
    check_count(r, n, /*min_elem_bytes=*/24);  // 3x f64 triple
    m.f_values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) m.f_values.push_back(Aggregate::read(r));
    m.contributors = r.u32_vec();
    m.epoch_tag = read_epoch_tag(r);
    return m;
  });
}

// ---- AlarmMsg -------------------------------------------------------

net::Bytes AlarmMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u8(kind);
  w.u32(witness);
  w.u32(accused);
  w.f64(expected_sum);
  w.f64(observed_sum);
  write_epoch_tag(w, epoch_tag);
  return std::move(w).take();
}

std::optional<AlarmMsg> AlarmMsg::from_bytes(const net::Bytes& b) {
  return parse<AlarmMsg>(b, [](net::WireReader& r) {
    AlarmMsg m;
    m.query_id = r.u32();
    m.kind = r.u8();
    m.witness = r.u32();
    m.accused = r.u32();
    m.expected_sum = r.f64();
    m.observed_sum = r.f64();
    m.epoch_tag = read_epoch_tag(r);
    return m;
  });
}

// ---- SliceMsg -------------------------------------------------------

net::Bytes SliceMsg::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u32(sender);
  w.u32(recipient);
  w.blob(sealed);
  return std::move(w).take();
}

std::optional<SliceMsg> SliceMsg::from_bytes(const net::Bytes& b) {
  return parse<SliceMsg>(b, [](net::WireReader& r) {
    SliceMsg m;
    m.query_id = r.u32();
    m.sender = r.u32();
    m.recipient = r.u32();
    m.sealed = r.blob();
    return m;
  });
}

}  // namespace icpda::proto
