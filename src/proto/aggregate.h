// Additive aggregation algebra.
//
// The paper studies additive aggregation functions y = sum_i r_i and
// notes they are the base of count/mean/variance/stddev (each sensor
// contributes the triple (1, r, r^2)) and of power-mean approximations
// of min/max. Aggregate carries exactly that triple; it forms a
// commutative monoid under merge(), which is the algebraic fact that
// makes in-network aggregation order-insensitive.
#pragma once

#include <cmath>
#include <cstdint>

#include "net/wire.h"

namespace icpda::proto {

struct Aggregate {
  /// Real-valued: the privacy protocols (SMART slicing, CPDA shares)
  /// split even the count component into random real shares, so the
  /// whole triple lives in R^3. For plain TAG it stays integral.
  double count = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;

  /// Contribution of one sensor reading.
  [[nodiscard]] static Aggregate of(double reading) {
    return Aggregate{1.0, reading, reading * reading};
  }

  void merge(const Aggregate& other) {
    count += other.count;
    sum += other.sum;
    sum_sq += other.sum_sq;
  }

  [[nodiscard]] Aggregate merged(const Aggregate& other) const {
    Aggregate out = *this;
    out.merge(other);
    return out;
  }

  [[nodiscard]] double mean() const { return count > 0 ? sum / count : 0.0; }

  /// Population variance E[r^2] - E[r]^2 (the paper's formula).
  [[nodiscard]] double variance() const {
    if (count <= 0) return 0.0;
    const double m = mean();
    return sum_sq / count - m * m;
  }

  [[nodiscard]] double stddev() const { return std::sqrt(std::max(0.0, variance())); }

  friend bool operator==(const Aggregate&, const Aggregate&) = default;

  void write(net::WireWriter& w) const {
    w.f64(count);
    w.f64(sum);
    w.f64(sum_sq);
  }
  [[nodiscard]] static Aggregate read(net::WireReader& r) {
    Aggregate a;
    a.count = r.f64();
    a.sum = r.f64();
    a.sum_sq = r.f64();
    return a;
  }
};

/// Power-mean approximation of max over positive readings:
///   max(x) ~= (sum x_i^k)^(1/k) for large k
/// (the paper's Section II-B device for reducing MIN/MAX to sums).
/// The caller aggregates contributions x_i^k additively and applies
/// this finisher. Use `power_mean_min` with k < 0 for MIN.
[[nodiscard]] inline double power_mean_finish(double sum_of_powers, double k) {
  return std::pow(sum_of_powers, 1.0 / k);
}

[[nodiscard]] inline double power_contribution(double reading, double k) {
  return std::pow(reading, k);
}

}  // namespace icpda::proto
