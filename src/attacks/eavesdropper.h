// Eavesdropping attack model and disclosure estimation.
//
// The attacker overhears the entire shared medium; what it can READ is
// limited by link-level encryption. Following the paper family, px is
// the probability that the attacker can break the security of a given
// link (via key reuse under random predistribution, node capture
// elsewhere in the network, etc.). Everything sent in the clear — the
// F digests, the up-tree cluster-sum reports — is attacker-known by
// definition.
//
// Disclosure is decided by the LinearKnowledge rank test (linear_audit.h),
// not by a formula, so these estimators double as an independent check
// on the closed forms in analysis/models.h.
#pragma once

#include <cstdint>
#include <vector>

#include "attacks/linear_audit.h"
#include "sim/rng.h"

namespace icpda::attacks {

/// The attacker's view of one CPDA cluster of size m.
///
/// Unknowns per member i: its private value v_i and its m-1 blinding
/// coefficients. Public by protocol: all assembled F_j (the head's
/// digest is broadcast in the clear) and hence the cluster sum.
struct ClusterView {
  std::size_t m = 0;
  /// seeds[j]: public evaluation point of member j (default 1..m).
  std::vector<double> seeds;
  /// broken[i][j]: attacker reads the encrypted share i -> j (i != j).
  std::vector<std::vector<bool>> broken;
  /// colluders[i]: member i is attacker-controlled (all its secrets
  /// and everything it received are known).
  std::vector<bool> colluders;
  /// F values are public (true for iCPDA; set false to model a CPDA
  /// variant that unicasts F to the head under encryption).
  bool f_public = true;

  [[nodiscard]] static ClusterView clean(std::size_t m);

  /// Build the attacker's equation system.
  [[nodiscard]] LinearKnowledge knowledge() const;

  /// disclosed[i]: v_i uniquely determined by the attacker's view.
  /// Colluders are trivially "disclosed" to themselves and excluded
  /// (reported false) — the interesting victims are honest members.
  [[nodiscard]] std::vector<bool> disclosed() const;
};

/// Monte-Carlo estimate of the per-member disclosure probability in a
/// cluster of size m when each share link independently breaks with
/// probability px (no colluders).
[[nodiscard]] double estimate_disclosure_probability(std::size_t m, double px,
                                                     std::size_t trials,
                                                     sim::Rng& rng);

/// Same, with `colluders` randomly chosen attacker-controlled members;
/// returns the probability that a given HONEST member is disclosed.
[[nodiscard]] double estimate_collusion_disclosure(std::size_t m,
                                                   std::size_t colluders,
                                                   std::size_t trials,
                                                   sim::Rng& rng);

// ---------------------------------------------------------------------
// SMART baseline view (for the cross-protocol privacy comparison).

/// One SMART node and its slice neighbourhood: the node splits its
/// value into l slices, keeps one, sends l-1 out; it receives
/// `incoming` slices from peers; its effective value (kept + received)
/// travels in the clear in its tree report.
struct SmartView {
  std::size_t l = 2;          ///< total slices (l-1 sent out)
  std::size_t incoming = 1;   ///< slices received from distinct peers
  double px = 0.1;            ///< per-link break probability

  /// Monte-Carlo disclosure probability of the node's value.
  [[nodiscard]] double estimate(std::size_t trials, sim::Rng& rng) const;
};

}  // namespace icpda::attacks
