// Information-theoretic disclosure auditing via linear algebra.
//
// Every privacy mechanism in this repository (CPDA shares, SMART
// slices) is linear: the attacker's view is a set of linear equations
// over the sensors' secrets and the protocols' random blinding values.
// A secret is DISCLOSED exactly when it is uniquely determined by that
// equation system — i.e. when its coordinate vector is orthogonal to
// the solution null space. LinearKnowledge implements that test
// directly, so the privacy experiments measure actual inferability
// rather than pattern-matching a formula.
#pragma once

#include <cstddef>
#include <vector>

namespace icpda::attacks {

class LinearKnowledge {
 public:
  /// A system over `unknowns` real variables.
  explicit LinearKnowledge(std::size_t unknowns) : unknowns_(unknowns) {}

  [[nodiscard]] std::size_t unknowns() const { return unknowns_; }
  [[nodiscard]] std::size_t equations() const { return rows_.size(); }

  /// Add the equation  sum_k coeffs[k] * x_k = rhs-known-to-attacker.
  /// The right-hand side value itself is irrelevant for determinedness
  /// (the system is consistent by construction: the real execution is
  /// a solution), so only the coefficient row is stored.
  void add_equation(std::vector<double> coeffs);

  /// Convenience: the attacker directly knows x_idx.
  void pin(std::size_t idx);

  /// True iff x_idx is uniquely determined by the added equations,
  /// i.e. e_idx lies in the row space. Computed against a cached
  /// null-space basis; adding equations invalidates the cache.
  [[nodiscard]] bool determined(std::size_t idx) const;

  /// Number of free dimensions left (unknowns - rank).
  [[nodiscard]] std::size_t nullity() const;

 private:
  void ensure_nullspace() const;

  std::size_t unknowns_;
  std::vector<std::vector<double>> rows_;
  mutable std::vector<std::vector<double>> nullspace_;
  mutable bool nullspace_valid_ = false;
};

}  // namespace icpda::attacks
