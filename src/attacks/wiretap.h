// Frame-level eavesdropper: an antenna on the shared medium plus the
// key material of captured nodes.
//
// Unlike the algebraic auditors (eavesdropper.h), the Wiretap operates
// on the actual ciphertext frames the Channel carries: it can only
// open a sealed share if it holds the link's key — by having captured
// an endpoint, or structurally under Eschenauer–Gligor key reuse. The
// key-scheme ablation (bench_keyscheme) uses it to measure the
// *effective* px a key-management choice induces.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "crypto/keys.h"
#include "net/channel.h"
#include "net/packet.h"

namespace icpda::attacks {

class Wiretap {
 public:
  struct Stats {
    std::uint64_t frames_seen = 0;
    std::uint64_t share_frames = 0;
    std::uint64_t shares_opened = 0;  ///< successfully decrypted
    std::uint64_t cleartext_frames = 0;
  };

  Wiretap(const crypto::KeyScheme& keys, std::vector<net::NodeId> captured);

  /// Can this attacker read link {a, b}? True if it captured an
  /// endpoint or a third party holding the link's key.
  [[nodiscard]] bool link_readable(net::NodeId a, net::NodeId b) const;

  /// Register on the channel; every transmission flows through.
  void attach(net::Channel& channel);

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Fraction of a topology's links this attacker can read — the
  /// empirical px induced by the key scheme + captured set.
  [[nodiscard]] double effective_px(const net::Topology& topo) const;

 private:
  void observe(net::NodeId sender, const net::Frame& frame);

  const crypto::KeyScheme& keys_;
  std::vector<net::NodeId> captured_;
  std::unordered_set<net::NodeId> captured_set_;
  Stats stats_;
};

}  // namespace icpda::attacks
