// The Sen–Maitra algebraic disclosure attack on CPDA share exchange
// (J. Sen, S. Maitra, "An Attack on Privacy Preserving Data
// Aggregation Protocol for Wireless Sensor Networks", arXiv 1201.4532).
//
// Setting: a CPDA cluster of m members with public seeds x_1..x_m. A
// coalition of compromised members pools everything it legitimately
// sees: the shares p_i(x_j) delivered to compromised recipients j, and
// the public digest F_1..F_m the head broadcasts (F_j = sum_i p_i(x_j)).
// Each honest member i contributes m unknowns (its private value v_i
// plus m-1 random coefficients). The coalition's view is a linear
// system over those unknowns; v_i is DISCLOSED exactly when it is
// uniquely determined.
//
// Rank counting gives the paper's headline result: with exactly ONE
// honest member h in the cluster, the coalition holds m-1 shares of
// p_h (one per compromised recipient) and the digest supplies the
// m-th independent evaluation — p_h is fully determined and
// v_h = p_h(0) falls out. With two or more honest members the system
// stays rank-deficient (their polynomials can be jointly shifted), so
// nothing is disclosed. `recover()` verifies this *empirically* per
// cluster via attacks::LinearKnowledge; `disclosure_predicate()` is
// the closed form the differential test checks it against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/adversary.h"
#include "net/topology.h"

namespace icpda::attacks {

/// The coalition's pooled view of ONE cluster, in roster order.
struct CoalitionView {
  std::vector<std::uint32_t> members;     ///< node ids, roster order
  std::vector<double> seeds;              ///< public seeds, roster order
  std::vector<std::uint8_t> compromised;  ///< 1 = coalition member
  /// Observed shares p_sender(x_recipient), keyed by roster indices
  /// (recipient_idx, sender_idx). Only shares whose recipient is
  /// compromised are legitimately visible to the coalition.
  std::map<std::pair<std::size_t, std::size_t>, double> shares;
  /// The head's published digest (F sums, roster order); empty until
  /// the digest was observed.
  std::vector<double> f_values;

  [[nodiscard]] std::size_t honest_count() const;
  [[nodiscard]] bool digest_seen() const { return !f_values.empty(); }
};

/// Closed-form disclosure condition from the rank argument above: the
/// coalition recovers an honest value iff exactly one honest member is
/// left in the cluster AND the digest is public.
[[nodiscard]] constexpr bool disclosure_predicate(std::size_t honest,
                                                  bool digest_seen) {
  return honest == 1 && digest_seen;
}

struct DisclosureResult {
  /// Roster indices of honest members whose private value is uniquely
  /// determined by the coalition's view.
  std::vector<std::size_t> disclosed;
  std::size_t honest = 0;     ///< honest members in the cluster
  std::size_t equations = 0;  ///< equations the view contributed
  std::size_t nullity = 0;    ///< free dimensions left in the system
};

/// Build the coalition's linear system and test each honest member's
/// private value for determinedness. Purely algebraic — no protocol
/// state, unit-testable against synthetic clusters.
[[nodiscard]] DisclosureResult recover(const CoalitionView& view);

/// Numeric recovery for the disclosure_predicate case: interpolate the
/// digest at zero (the cluster sum) and subtract the coalition's own
/// readings, leaving the lone honest member's value. nullopt when the
/// predicate does not hold or the view is malformed.
[[nodiscard]] std::optional<double> recover_lone_value(
    const CoalitionView& view, const std::vector<double>& compromised_readings);

/// Adapt a coalition ledger entry recorded by the protocol layer
/// (core::AdversaryState) to the solver's view.
[[nodiscard]] CoalitionView view_from_observation(
    const core::AdversaryState::ClusterObservation& obs,
    const std::unordered_set<net::NodeId>& compromised);

}  // namespace icpda::attacks
