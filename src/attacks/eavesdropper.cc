#include "attacks/eavesdropper.h"

#include <stdexcept>

#include "core/cpda_algebra.h"

namespace icpda::attacks {

namespace {

/// Coefficient row of the share value s_{i,j} = p_i(x_j) over the
/// m*m unknown layout (member i occupies [i*m, i*m + m)):
///   index i*m     -> v_i
///   index i*m + t -> r_{i,t}, t = 1..m-1
std::vector<double> share_row(std::size_t m, std::size_t i, double x_j) {
  std::vector<double> row(m * m, 0.0);
  row[i * m] = 1.0;
  double p = 1.0;
  for (std::size_t t = 1; t < m; ++t) {
    p *= x_j;
    row[i * m + t] = p;
  }
  return row;
}

}  // namespace

ClusterView ClusterView::clean(std::size_t m) {
  ClusterView v;
  v.m = m;
  v.seeds = core::default_seeds(m);
  v.broken.assign(m, std::vector<bool>(m, false));
  v.colluders.assign(m, false);
  return v;
}

LinearKnowledge ClusterView::knowledge() const {
  if (seeds.size() != m || broken.size() != m || colluders.size() != m) {
    throw std::invalid_argument("ClusterView: inconsistent sizes");
  }
  LinearKnowledge k(m * m);

  // Public F values: F_j = sum_i s_{i,j}.
  if (f_public) {
    for (std::size_t j = 0; j < m; ++j) {
      std::vector<double> row(m * m, 0.0);
      for (std::size_t i = 0; i < m; ++i) {
        const auto r = share_row(m, i, seeds[j]);
        for (std::size_t c = 0; c < row.size(); ++c) row[c] += r[c];
      }
      k.add_equation(std::move(row));
    }
  }

  // Broken share links: the attacker reads s_{i,j} in transit.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      if (broken[i][j]) k.add_equation(share_row(m, i, seeds[j]));
    }
  }

  // Colluders: all their secrets plus everything addressed to them.
  for (std::size_t c = 0; c < m; ++c) {
    if (!colluders[c]) continue;
    for (std::size_t t = 0; t < m; ++t) k.pin(c * m + t);
    for (std::size_t i = 0; i < m; ++i) {
      if (i == c) continue;
      k.add_equation(share_row(m, i, seeds[c]));
    }
  }
  return k;
}

std::vector<bool> ClusterView::disclosed() const {
  const LinearKnowledge k = knowledge();
  std::vector<bool> out(m, false);
  for (std::size_t i = 0; i < m; ++i) {
    if (colluders[i]) continue;  // their own value is not a victim's
    out[i] = k.determined(i * m);
  }
  return out;
}

double estimate_disclosure_probability(std::size_t m, double px,
                                       std::size_t trials, sim::Rng& rng) {
  if (m < 2) return 1.0;  // a lone node reports in the clear
  std::size_t disclosed_members = 0;
  std::size_t total_members = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    ClusterView view = ClusterView::clean(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        if (i != j) view.broken[i][j] = rng.bernoulli(px);
      }
    }
    for (const bool d : view.disclosed()) {
      disclosed_members += d ? 1 : 0;
      ++total_members;
    }
  }
  return total_members ? static_cast<double>(disclosed_members) /
                             static_cast<double>(total_members)
                       : 0.0;
}

double estimate_collusion_disclosure(std::size_t m, std::size_t colluders,
                                     std::size_t trials, sim::Rng& rng) {
  if (m < 2 || colluders >= m) return 1.0;
  std::size_t disclosed_members = 0;
  std::size_t total_members = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    ClusterView view = ClusterView::clean(m);
    const auto picks = rng.sample_indices(m, colluders);
    for (const std::size_t c : picks) view.colluders[c] = true;
    for (const bool d : view.disclosed()) {
      disclosed_members += d ? 1 : 0;
    }
    total_members += m - colluders;
  }
  return total_members ? static_cast<double>(disclosed_members) /
                             static_cast<double>(total_members)
                       : 0.0;
}

double SmartView::estimate(std::size_t trials, sim::Rng& rng) const {
  // Unknown layout: 0 = v, 1..l-1 = outgoing slices, l = kept slice,
  // l+1 .. l+incoming = received slices.
  const std::size_t n = 1 + (l - 1) + 1 + incoming;
  std::size_t disclosed = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    LinearKnowledge k(n);
    // Protocol structure, known to everyone: v = kept + sum(out).
    {
      std::vector<double> row(n, 0.0);
      row[0] = 1.0;
      for (std::size_t s = 1; s < l; ++s) row[s] = -1.0;
      row[l] = -1.0;
      k.add_equation(std::move(row));
    }
    // The cleartext tree report: R = kept + sum(in).
    {
      std::vector<double> row(n, 0.0);
      row[l] = 1.0;
      for (std::size_t s = 0; s < incoming; ++s) row[l + 1 + s] = 1.0;
      k.add_equation(std::move(row));
    }
    for (std::size_t s = 1; s < l; ++s) {
      if (rng.bernoulli(px)) k.pin(s);
    }
    for (std::size_t s = 0; s < incoming; ++s) {
      if (rng.bernoulli(px)) k.pin(l + 1 + s);
    }
    if (k.determined(0)) ++disclosed;
  }
  return static_cast<double>(disclosed) / static_cast<double>(trials);
}

}  // namespace icpda::attacks
