#include "attacks/sen_maitra.h"

#include <cmath>

#include "attacks/linear_audit.h"
#include "core/cpda_algebra.h"

namespace icpda::attacks {

std::size_t CoalitionView::honest_count() const {
  std::size_t honest = 0;
  for (const std::uint8_t c : compromised) {
    if (!c) ++honest;
  }
  return honest;
}

DisclosureResult recover(const CoalitionView& view) {
  DisclosureResult res;
  const std::size_t m = view.members.size();
  if (m == 0 || view.seeds.size() != m || view.compromised.size() != m) {
    return res;
  }
  res.honest = view.honest_count();
  if (res.honest == 0) return res;

  // Unknowns: one block of m coefficients per HONEST member (constant
  // term v first, then the m-1 random coefficients). Compromised
  // members' polynomials are known to the coalition and contribute
  // nothing unknown.
  std::vector<std::size_t> block(m, static_cast<std::size_t>(-1));
  std::size_t next = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (!view.compromised[i]) block[i] = next++;
  }
  LinearKnowledge sys(res.honest * m);

  const auto poly_row = [&](std::vector<double>& row, std::size_t honest_block,
                            double x) {
    double p = 1.0;
    for (std::size_t k = 0; k < m; ++k) {
      row[honest_block * m + k] += p;
      p *= x;
    }
  };

  // Share equations: p_sender(x_recipient) = observed, one unknown
  // polynomial per row. Only honest senders add information; only
  // compromised recipients legitimately saw the share.
  for (const auto& [key, value] : view.shares) {
    (void)value;  // rhs is irrelevant for determinedness
    const auto [recipient, sender] = key;
    if (recipient >= m || sender >= m) continue;
    if (view.compromised[sender] || !view.compromised[recipient]) continue;
    std::vector<double> row(res.honest * m, 0.0);
    poly_row(row, block[sender], view.seeds[recipient]);
    sys.add_equation(std::move(row));
  }

  // Digest equations: F_j = sum_i p_i(x_j). The compromised members'
  // polynomials move to the known side, leaving the sum of the honest
  // polynomials evaluated at x_j.
  if (view.digest_seen() && view.f_values.size() == m) {
    for (std::size_t j = 0; j < m; ++j) {
      std::vector<double> row(res.honest * m, 0.0);
      for (std::size_t i = 0; i < m; ++i) {
        if (!view.compromised[i]) poly_row(row, block[i], view.seeds[j]);
      }
      sys.add_equation(std::move(row));
    }
  }

  res.equations = sys.equations();
  res.nullity = sys.nullity();
  for (std::size_t i = 0; i < m; ++i) {
    if (view.compromised[i]) continue;
    // The private value is the polynomial's constant term: unknown
    // index block*m + 0.
    if (sys.determined(block[i] * m)) res.disclosed.push_back(i);
  }
  return res;
}

std::optional<double> recover_lone_value(
    const CoalitionView& view, const std::vector<double>& compromised_readings) {
  const std::size_t m = view.members.size();
  if (!disclosure_predicate(view.honest_count(), view.digest_seen())) {
    return std::nullopt;
  }
  if (view.f_values.size() != m || view.seeds.size() != m) return std::nullopt;
  const auto w = core::lagrange_weights_at_zero(view.seeds);
  if (w.size() != m) return std::nullopt;
  double cluster_sum = 0.0;
  for (std::size_t j = 0; j < m; ++j) cluster_sum += w[j] * view.f_values[j];
  for (const double r : compromised_readings) cluster_sum -= r;
  return cluster_sum;
}

CoalitionView view_from_observation(
    const core::AdversaryState::ClusterObservation& obs,
    const std::unordered_set<net::NodeId>& compromised) {
  CoalitionView view;
  view.members = obs.members;
  view.seeds.reserve(obs.seeds.size());
  for (const std::uint32_t s : obs.seeds) {
    view.seeds.push_back(static_cast<double>(s));
  }
  view.compromised.reserve(obs.members.size());
  std::map<net::NodeId, std::size_t> index;
  for (std::size_t i = 0; i < obs.members.size(); ++i) {
    index[obs.members[i]] = i;
    view.compromised.push_back(compromised.contains(obs.members[i]) ? 1 : 0);
  }
  for (const auto& [key, share] : obs.shares) {
    const auto r = index.find(key.first);
    const auto s = index.find(key.second);
    if (r == index.end() || s == index.end()) continue;
    view.shares[{r->second, s->second}] = share.sum;
  }
  if (obs.digest_seen && obs.f_values.size() == obs.members.size()) {
    view.f_values.reserve(obs.f_values.size());
    for (const auto& f : obs.f_values) view.f_values.push_back(f.sum);
  }
  return view;
}

}  // namespace icpda::attacks
