#include "attacks/linear_audit.h"

#include <cmath>
#include <stdexcept>

namespace icpda::attacks {

namespace {
constexpr double kEps = 1e-9;
}

void LinearKnowledge::add_equation(std::vector<double> coeffs) {
  if (coeffs.size() != unknowns_) {
    throw std::invalid_argument("LinearKnowledge: coefficient count mismatch");
  }
  rows_.push_back(std::move(coeffs));
  nullspace_valid_ = false;
}

void LinearKnowledge::pin(std::size_t idx) {
  std::vector<double> row(unknowns_, 0.0);
  row.at(idx) = 1.0;
  add_equation(std::move(row));
}

void LinearKnowledge::ensure_nullspace() const {
  if (nullspace_valid_) return;
  // Reduced row echelon form of the coefficient matrix with partial
  // pivoting; free columns generate the null space.
  std::vector<std::vector<double>> m = rows_;
  const std::size_t n = unknowns_;
  std::vector<std::size_t> pivot_col_of_row;
  std::size_t row = 0;
  for (std::size_t col = 0; col < n && row < m.size(); ++col) {
    // Pivot search.
    std::size_t best = row;
    double best_abs = std::abs(m[row][col]);
    for (std::size_t r = row + 1; r < m.size(); ++r) {
      if (std::abs(m[r][col]) > best_abs) {
        best = r;
        best_abs = std::abs(m[r][col]);
      }
    }
    if (best_abs < kEps) continue;  // free column
    std::swap(m[row], m[best]);
    const double inv = 1.0 / m[row][col];
    for (std::size_t c = col; c < n; ++c) m[row][c] *= inv;
    for (std::size_t r = 0; r < m.size(); ++r) {
      if (r == row) continue;
      const double f = m[r][col];
      if (std::abs(f) < kEps) continue;
      for (std::size_t c = col; c < n; ++c) m[r][c] -= f * m[row][c];
    }
    pivot_col_of_row.push_back(col);
    ++row;
  }

  // Identify pivot columns.
  std::vector<bool> is_pivot(n, false);
  for (const std::size_t c : pivot_col_of_row) is_pivot[c] = true;

  nullspace_.clear();
  for (std::size_t free_col = 0; free_col < n; ++free_col) {
    if (is_pivot[free_col]) continue;
    std::vector<double> basis(n, 0.0);
    basis[free_col] = 1.0;
    for (std::size_t r = 0; r < pivot_col_of_row.size(); ++r) {
      basis[pivot_col_of_row[r]] = -m[r][free_col];
    }
    nullspace_.push_back(std::move(basis));
  }
  nullspace_valid_ = true;
}

bool LinearKnowledge::determined(std::size_t idx) const {
  if (idx >= unknowns_) {
    throw std::out_of_range("LinearKnowledge::determined: bad index");
  }
  ensure_nullspace();
  // x_idx is determined iff every null-space direction leaves it fixed.
  for (const auto& basis : nullspace_) {
    if (std::abs(basis[idx]) > 1e-7) return false;
  }
  return true;
}

std::size_t LinearKnowledge::nullity() const {
  ensure_nullspace();
  return nullspace_.size();
}

}  // namespace icpda::attacks
