#include "attacks/wiretap.h"

#include <utility>

#include "crypto/cipher.h"
#include "proto/messages.h"

namespace icpda::attacks {

Wiretap::Wiretap(const crypto::KeyScheme& keys, std::vector<net::NodeId> captured)
    : keys_(keys), captured_(std::move(captured)),
      captured_set_(captured_.begin(), captured_.end()) {}

bool Wiretap::link_readable(net::NodeId a, net::NodeId b) const {
  if (captured_set_.contains(a) || captured_set_.contains(b)) return true;
  for (const net::NodeId c : captured_) {
    if (keys_.third_party_can_read(a, b, c)) return true;
  }
  return false;
}

void Wiretap::attach(net::Channel& channel) {
  channel.add_tap([this](net::NodeId sender, const net::Frame& frame) {
    observe(sender, frame);
  });
}

void Wiretap::observe(net::NodeId sender, const net::Frame& frame) {
  (void)sender;
  ++stats_.frames_seen;
  if (frame.type != proto::kShare && frame.type != proto::kSmartSlice) {
    // Everything else in the protocols travels in the clear.
    if (frame.type != net::kMacAck) ++stats_.cleartext_frames;
    return;
  }
  ++stats_.share_frames;
  // Parse the clear header to learn the endpoints, then try the link
  // key if our captured material covers it.
  net::NodeId a = net::kNoNode;
  net::NodeId b = net::kNoNode;
  net::Bytes sealed;
  if (frame.type == proto::kShare) {
    const auto msg = proto::ShareMsg::from_bytes(frame.payload);
    if (!msg) return;
    a = msg->sender;
    b = msg->recipient;
    sealed = msg->sealed;
  } else {
    const auto msg = proto::SliceMsg::from_bytes(frame.payload);
    if (!msg) return;
    a = msg->sender;
    b = msg->recipient;
    sealed = msg->sealed;
  }
  if (!link_readable(a, b)) return;
  const auto key = keys_.link_key(a, b);
  if (!key) return;
  if (crypto::open(*key, sealed)) ++stats_.shares_opened;
}

double Wiretap::effective_px(const net::Topology& topo) const {
  std::uint64_t readable = 0;
  std::uint64_t total = 0;
  for (net::NodeId a = 0; a < topo.size(); ++a) {
    for (const net::NodeId b : topo.neighbors(a)) {
      if (b <= a) continue;
      ++total;
      if (link_readable(a, b)) ++readable;
    }
  }
  return total ? static_cast<double>(readable) / static_cast<double>(total) : 0.0;
}

}  // namespace icpda::attacks
