#include "net/channel.h"

#include <utility>

namespace icpda::net {

Channel::Channel(const Topology& topo, sim::Scheduler& sched, sim::Rng rng,
                 sim::MetricRegistry& metrics, ChannelConfig config)
    : topo_(topo),
      sched_(sched),
      rng_(rng),
      metrics_(metrics),
      config_(config),
      tx_until_(topo.size(), sim::SimTime::zero()),
      receptions_(topo.size()) {}

bool Channel::transmitting(NodeId node) const {
  return tx_until_[node] > sched_.now();
}

bool Channel::busy_at(NodeId node) const {
  if (transmitting(node)) return true;
  const sim::SimTime now = sched_.now();
  for (const auto& r : receptions_[node]) {
    if (r.end > now) return true;
  }
  return false;
}

void Channel::transmit(NodeId sender, Frame frame, std::function<void()> on_tx_done) {
  const sim::SimTime now = sched_.now();
  const sim::SimTime dur = airtime(frame);
  const sim::SimTime end = now + dur;
  const sim::SimTime arrive = end + sim::SimTime{config_.propagation_delay_s};
  const std::uint64_t tx_id = next_tx_id_++;

  metrics_.add("channel.tx_frames");
  metrics_.add("channel.tx_bytes", frame.air_bytes());
  if (tracer_ && tracer_->enabled()) {
    // Same value as the channel.tx_bytes metric, attributed to the
    // sender's current protocol phase — conservation by construction.
    tracer_->counter(sender, sim::TraceCounter::kTxBytes, frame.air_bytes(), now);
  }

  tx_until_[sender] = std::max(tx_until_[sender], end);

  // One shared immutable frame per transmission: taps and every
  // receiver see this single copy by reference.
  auto shared = std::make_shared<const Frame>(std::move(frame));
  for (const auto& tap : taps_) tap(sender, *shared);

  // Register the reception at every in-range node and detect overlap.
  const auto receivers = topo_.neighbors(sender);
  for (const NodeId r : receivers) {
    auto& rs = receptions_[r];
    bool corrupted = false;
    for (auto& other : rs) {
      if (other.end > now) {
        // Temporal overlap with a frame still on the air corrupts both
        // at this receiver (no capture effect).
        other.corrupted = true;
        corrupted = true;
      }
    }
    // Half-duplex: a receiver mid-transmission cannot decode.
    rs.push_back(Reception{tx_id, end, corrupted, transmitting(r)});
  }

  // One delivery event per transmission: every receiver shares the
  // arrival instant, and per-receiver status is resolved at fire time
  // because a *later* transmission can still corrupt the frame.
  if (!receivers.empty()) {
    sched_.at(arrive, [this, sender, tx_id, shared] {
      deliver(sender, tx_id, *shared);
    });
  }

  // Notify the sender's MAC when the air is clear again.
  sched_.at(end, [cb = std::move(on_tx_done)] {
    if (cb) cb();
  });
}

void Channel::deliver(NodeId sender, std::uint64_t tx_id, const Frame& frame) {
  const bool traced = tracer_ && tracer_->enabled() && tracer_->config().rx_events;
  for (const NodeId r : topo_.neighbors(sender)) {
    auto& rs = receptions_[r];
    ReceptionStatus status = ReceptionStatus::kOk;
    bool rx_while_tx = false;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs[i].tx_id != tx_id) continue;
      if (rs[i].corrupted) status = ReceptionStatus::kCollided;
      rx_while_tx = rs[i].rx_while_tx;
      rs[i] = rs.back();  // swap-remove: the pool keeps its capacity
      rs.pop_back();
      break;
    }
    if (rx_while_tx || transmitting(r)) status = ReceptionStatus::kHalfDuplex;
    if (status == ReceptionStatus::kOk && rng_.bernoulli(config_.loss_probability)) {
      status = ReceptionStatus::kLost;
    }
    switch (status) {
      case ReceptionStatus::kOk:
        metrics_.add("channel.rx_ok");
        if (traced) {
          tracer_->counter(r, sim::TraceCounter::kRxBytes, frame.air_bytes(),
                           sched_.now());
        }
        break;
      case ReceptionStatus::kCollided:
        metrics_.add("channel.rx_collided");
        if (frame.dst == r) metrics_.add("channel.dst_collided");
        if (traced) {
          tracer_->counter(r, sim::TraceCounter::kCollisionBytes,
                           frame.air_bytes(), sched_.now());
        }
        break;
      case ReceptionStatus::kLost:
        metrics_.add("channel.rx_lost");
        if (traced) {
          tracer_->counter(r, sim::TraceCounter::kLossBytes, frame.air_bytes(),
                           sched_.now());
        }
        break;
      case ReceptionStatus::kHalfDuplex:
        metrics_.add("channel.rx_halfduplex");
        if (frame.dst == r) metrics_.add("channel.dst_halfduplex");
        break;
    }
    if (delivery_) delivery_(r, frame, status);
  }
}

}  // namespace icpda::net
