#include "net/channel.h"

#include <utility>

#include "net/mac.h"

namespace icpda::net {

Channel::Channel(const Topology& topo, sim::Scheduler& sched, sim::Rng rng,
                 sim::MetricRegistry& metrics, ChannelConfig config)
    : topo_(topo),
      sched_(sched),
      rng_(rng),
      metrics_(metrics),
      config_(config),
      tx_until_(topo.size(), sim::SimTime::zero()),
      receptions_(topo.size()) {}

bool Channel::transmitting(NodeId node) const {
  return tx_until_[node] > sched_.now();
}

bool Channel::busy_at(NodeId node) const {
  if (transmitting(node)) return true;
  const sim::SimTime now = sched_.now();
  for (const auto& r : receptions_[node]) {
    if (r.end > now) return true;
  }
  return false;
}

void Channel::transmit(NodeId sender, const Frame& frame, sim::EventFn on_tx_done) {
  const sim::SimTime now = sched_.now();
  const sim::SimTime dur = airtime(frame);
  const sim::SimTime end = now + dur;
  const sim::SimTime arrive = end + sim::SimTime{config_.propagation_delay_s};
  const std::uint64_t tx_id = next_tx_id_++;

  tx_frames_.add(metrics_);
  tx_bytes_.add(metrics_, frame.air_bytes());
  if (tracer_ && tracer_->enabled()) {
    // Same value as the channel.tx_bytes metric, attributed to the
    // sender's current protocol phase — conservation by construction.
    tracer_->counter(sender, sim::TraceCounter::kTxBytes, frame.air_bytes(), now);
  }

  tx_until_[sender] = std::max(tx_until_[sender], end);

  // Taps see the caller's frame directly at start-of-frame.
  for (const auto& tap : taps_) tap(sender, frame);

  // Register the reception at every in-range node and detect overlap.
  const auto receivers = topo_.neighbors(sender);
  for (const NodeId r : receivers) {
    auto& rs = receptions_[r];
    bool corrupted = false;
    for (auto& other : rs) {
      if (other.end > now) {
        // Temporal overlap with a frame still on the air corrupts both
        // at this receiver (no capture effect).
        other.corrupted = true;
        corrupted = true;
      }
    }
    // Half-duplex: a receiver mid-transmission cannot decode.
    rs.push_back(Reception{tx_id, end, corrupted, transmitting(r)});
  }

  // One delivery event per transmission: every receiver shares the
  // arrival instant, and per-receiver status is resolved at fire time
  // because a *later* transmission can still corrupt the frame. The
  // frame copy the receivers will read lives in a recycled pool slot
  // on the sink path (no allocation once pools warm up) and in a
  // shared_ptr on the hook path (hooks may keep the channel busy in
  // ways the pool's no-transmit-during-deliver invariant forbids).
  if (!receivers.empty()) {
    if (sink_macs_ != nullptr) {
      std::uint32_t slot;
      if (!free_inflight_.empty()) {
        slot = free_inflight_.back();
        free_inflight_.pop_back();
      } else {
        slot = static_cast<std::uint32_t>(inflight_.size());
        inflight_.emplace_back();
      }
      inflight_[slot] = frame;  // payload buffer capacity is reused
      sched_.at(arrive, [this, sender, tx_id, slot] {
        deliver(sender, tx_id, inflight_[slot]);
        free_inflight_.push_back(slot);
      });
    } else {
      auto shared = std::make_shared<const Frame>(frame);
      sched_.at(arrive, [this, sender, tx_id, shared] {
        deliver(sender, tx_id, *shared);
      });
    }
  }

  // Notify the sender's MAC when the air is clear again. With no
  // callback (ACKs, taps) there is nothing to notify: the former no-op
  // event drew no RNG and touched no trace counter, so eliding it is
  // observationally invisible — relative (time, seq) order of every
  // remaining event is unchanged.
  if (on_tx_done) sched_.at(end, std::move(on_tx_done));
}

void Channel::deliver(NodeId sender, std::uint64_t tx_id, const Frame& frame) {
  const bool traced = tracer_ && tracer_->enabled() && tracer_->config().rx_events;
  for (const NodeId r : topo_.neighbors(sender)) {
    auto& rs = receptions_[r];
    ReceptionStatus status = ReceptionStatus::kOk;
    bool rx_while_tx = false;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs[i].tx_id != tx_id) continue;
      if (rs[i].corrupted) status = ReceptionStatus::kCollided;
      rx_while_tx = rs[i].rx_while_tx;
      rs[i] = rs.back();  // swap-remove: the pool keeps its capacity
      rs.pop_back();
      break;
    }
    if (rx_while_tx || transmitting(r)) status = ReceptionStatus::kHalfDuplex;
    if (status == ReceptionStatus::kOk && rng_.bernoulli(config_.loss_probability)) {
      status = ReceptionStatus::kLost;
    }
    switch (status) {
      case ReceptionStatus::kOk:
        rx_ok_.add(metrics_);
        if (traced) {
          tracer_->counter(r, sim::TraceCounter::kRxBytes, frame.air_bytes(),
                           sched_.now());
        }
        break;
      case ReceptionStatus::kCollided:
        rx_collided_.add(metrics_);
        if (frame.dst == r) dst_collided_.add(metrics_);
        if (traced) {
          tracer_->counter(r, sim::TraceCounter::kCollisionBytes,
                           frame.air_bytes(), sched_.now());
        }
        break;
      case ReceptionStatus::kLost:
        rx_lost_.add(metrics_);
        if (traced) {
          tracer_->counter(r, sim::TraceCounter::kLossBytes, frame.air_bytes(),
                           sched_.now());
        }
        break;
      case ReceptionStatus::kHalfDuplex:
        rx_halfduplex_.add(metrics_);
        if (frame.dst == r) dst_halfduplex_.add(metrics_);
        break;
    }
    if (sink_macs_ != nullptr) {
      // Direct dispatch into the receiving MAC; a dead receiver's
      // radio is off, so the frame dissipates unheard (the MAC's own
      // down flag backstops this, but filtering here keeps the metric
      // honest — same accounting the Network's hook used to do). The
      // MAC discards every non-kOk reception unconditionally, so those
      // calls are elided outright; a delivery hook still sees all four
      // statuses.
      if (!sink_alive_[r]) {
        rx_dead_.add(metrics_);
      } else if (status == ReceptionStatus::kOk) {
        sink_macs_[r]->handle_reception(frame, status);
      }
    } else if (delivery_) {
      delivery_(r, frame, status);
    }
  }
}

}  // namespace icpda::net
