#include "net/channel.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "net/mac.h"

namespace icpda::net {

Channel::Channel(const Topology& topo, sim::Scheduler& sched, sim::Rng rng,
                 sim::MetricRegistry& metrics, ChannelConfig config)
    : topo_(topo),
      metrics_(metrics),
      config_(config),
      ctxs_(1),
      loss_seed_(rng.fork("loss")()),
      tx_until_(topo.size(), sim::SimTime::zero()),
      receptions_(topo.size()) {
  ctxs_[0].sched = &sched;
  ctxs_[0].metrics = &metrics;
}

void Channel::set_shards(ShardWiring wiring) {
  const std::size_t shards = wiring.scheds.size();
  if (shards == 0 || wiring.metrics.size() != shards) {
    throw std::invalid_argument("Channel::set_shards: scheds/metrics mismatch");
  }
  if (shards > 1 && (wiring.shard_of == nullptr || wiring.border == nullptr)) {
    throw std::invalid_argument("Channel::set_shards: missing node maps");
  }
  ctxs_.assign(shards, ShardCtx{});
  for (std::size_t s = 0; s < shards; ++s) {
    ctxs_[s].sched = wiring.scheds[s];
    ctxs_[s].metrics = wiring.metrics[s];
  }
  shard_of_ = shards > 1 ? wiring.shard_of : nullptr;
  border_ = shards > 1 ? wiring.border : nullptr;
}

bool Channel::transmitting(NodeId node) const {
  return transmitting_at(node, ctx_of(node).sched->now());
}

bool Channel::busy_at(NodeId node) const {
  const sim::SimTime now = ctx_of(node).sched->now();
  if (transmitting_at(node, now)) return true;
  for (const auto& r : receptions_[node]) {
    if (r.end > now) return true;
  }
  return false;
}

bool Channel::keyed_loss(NodeId sender, NodeId receiver, const Frame& frame,
                         sim::SimTime now) const {
  const double p = config_.loss_probability;
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // Key on physically-unique coordinates of the (transmission, receiver)
  // pair: a sender cannot start two frames arriving at one receiver at
  // the same instant, so (sender, receiver, arrival time) never repeats
  // — and both engines compute identical arrival times, so the draw is
  // engine- and order-independent. The MAC seq decorrelates nothing by
  // itself (ACKs all carry seq of the acked frame) but adds margin.
  std::uint64_t tbits = 0;
  const double t = now.seconds();
  std::memcpy(&tbits, &t, sizeof(tbits));
  const std::uint64_t h = sim::seed_mix(
      loss_seed_, (static_cast<std::uint64_t>(sender) << 32) | receiver,
      tbits ^ (static_cast<std::uint64_t>(frame.seq) << 1));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

void Channel::transmit(NodeId sender, const Frame& frame, sim::EventFn on_tx_done) {
  ShardCtx& ctx = ctx_of(sender);
  const sim::SimTime now = ctx.sched->now();
  const sim::SimTime dur = airtime(frame);
  const sim::SimTime end = now + dur;
  const sim::SimTime arrive = end + sim::SimTime{config_.propagation_delay_s};
  // Transmission ids are per-shard (high 16 bits tag the shard) so
  // concurrent drains never contend on a shared counter; ids only need
  // to be unique among in-flight transmissions, never dense.
  const std::uint64_t tx_id =
      (shard_of_ == nullptr
           ? std::uint64_t{0}
           : static_cast<std::uint64_t>(shard_of_[sender]) << 48) |
      ctx.next_tx_id++;

  ctx.tx_frames.add(*ctx.metrics);
  ctx.tx_bytes.add(*ctx.metrics, frame.air_bytes());
  if (tracer_ && tracer_->enabled()) {
    // Same value as the channel.tx_bytes metric, attributed to the
    // sender's current protocol phase — conservation by construction.
    tracer_->counter(sender, sim::TraceCounter::kTxBytes, frame.air_bytes(), now);
  }

  tx_until_[sender] = std::max(tx_until_[sender], end);

  // Taps see the caller's frame directly at start-of-frame.
  for (const auto& tap : taps_) tap(sender, frame);

  // Register the reception at every in-range node and detect overlap.
  const auto receivers = topo_.neighbors(sender);
  for (const NodeId r : receivers) {
    auto& rs = receptions_[r];
    bool corrupted = false;
    for (auto& other : rs) {
      if (other.end > now) {
        // Temporal overlap with a frame still on the air corrupts both
        // at this receiver (no capture effect).
        other.corrupted = true;
        corrupted = true;
      }
    }
    // Half-duplex: a receiver mid-transmission cannot decode.
    rs.push_back(Reception{tx_id, end, corrupted, transmitting_at(r, now)});
  }

  // Border classification of the delivery pass (inert when unsharded):
  //  * a border sender's neighbours may live in another shard, so the
  //    pass itself touches foreign per-node state;
  //  * a unicast data frame to a border destination will make that
  //    receiver schedule its MAC ACK — a border event — only one SIFS
  //    (< lookahead) after delivery, so the spawn must happen inside
  //    the serialized gate to keep the lookahead contract honest.
  // Everything the pass can spawn otherwise sits at least one lookahead
  // ahead: attempts are >= one backoff slot out, and nested deliveries
  // are >= min frame airtime + propagation out.
  bool border = false;
  if (border_ != nullptr) {
    border = border_[sender] != 0;
    if (!border && !frame.is_broadcast() && frame.type != kMacAck &&
        frame.dst < topo_.size()) {
      border = border_[frame.dst] != 0;
    }
  }

  // One delivery event per transmission: every receiver shares the
  // arrival instant, and per-receiver status is resolved at fire time
  // because a *later* transmission can still corrupt the frame. The
  // frame copy the receivers will read lives in a recycled pool slot
  // on the sink path (no allocation once pools warm up) and in a
  // shared_ptr on the hook path (hooks may keep the channel busy in
  // ways the pool's no-transmit-during-deliver invariant forbids).
  if (!receivers.empty()) {
    if (sink_macs_ != nullptr) {
      std::uint32_t slot;
      if (!ctx.free_inflight.empty()) {
        slot = ctx.free_inflight.back();
        ctx.free_inflight.pop_back();
      } else {
        slot = static_cast<std::uint32_t>(ctx.inflight.size());
        ctx.inflight.emplace_back();
      }
      ctx.inflight[slot] = frame;  // payload buffer capacity is reused
      ShardCtx* cp = &ctx;         // ctxs_ never reallocates after wiring
      ctx.sched->at(
          arrive,
          [this, sender, tx_id, slot, cp] {
            deliver(sender, tx_id, cp->inflight[slot], *cp);
            cp->free_inflight.push_back(slot);
          },
          sender, border);
    } else {
      auto shared = std::make_shared<const Frame>(frame);
      ShardCtx* cp = &ctx;
      ctx.sched->at(
          arrive,
          [this, sender, tx_id, shared, cp] {
            deliver(sender, tx_id, *shared, *cp);
          },
          sender, border);
    }
  }

  // Notify the sender's MAC when the air is clear again. With no
  // callback (ACKs, taps) there is nothing to notify: the former no-op
  // event drew no RNG and touched no trace counter, so eliding it is
  // observationally invisible — relative (time, seq) order of every
  // remaining event is unchanged. Never a border event: the callback
  // acts on the sender's own MAC only.
  if (on_tx_done) ctx.sched->at(end, std::move(on_tx_done), sender);
}

void Channel::deliver(NodeId sender, std::uint64_t tx_id, const Frame& frame,
                      ShardCtx& ctx) {
  const sim::SimTime now = ctx.sched->now();
  const bool traced = tracer_ && tracer_->enabled() && tracer_->config().rx_events;
  for (const NodeId r : topo_.neighbors(sender)) {
    auto& rs = receptions_[r];
    ReceptionStatus status = ReceptionStatus::kOk;
    bool rx_while_tx = false;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs[i].tx_id != tx_id) continue;
      if (rs[i].corrupted) status = ReceptionStatus::kCollided;
      rx_while_tx = rs[i].rx_while_tx;
      rs[i] = rs.back();  // swap-remove: the pool keeps its capacity
      rs.pop_back();
      break;
    }
    if (rx_while_tx || transmitting_at(r, now)) status = ReceptionStatus::kHalfDuplex;
    if (status == ReceptionStatus::kOk && keyed_loss(sender, r, frame, now)) {
      status = ReceptionStatus::kLost;
    }
    switch (status) {
      case ReceptionStatus::kOk:
        ctx.rx_ok.add(*ctx.metrics);
        if (traced) {
          tracer_->counter(r, sim::TraceCounter::kRxBytes, frame.air_bytes(), now);
        }
        break;
      case ReceptionStatus::kCollided:
        ctx.rx_collided.add(*ctx.metrics);
        if (frame.dst == r) ctx.dst_collided.add(*ctx.metrics);
        if (traced) {
          tracer_->counter(r, sim::TraceCounter::kCollisionBytes,
                           frame.air_bytes(), now);
        }
        break;
      case ReceptionStatus::kLost:
        ctx.rx_lost.add(*ctx.metrics);
        if (traced) {
          tracer_->counter(r, sim::TraceCounter::kLossBytes, frame.air_bytes(),
                           now);
        }
        break;
      case ReceptionStatus::kHalfDuplex:
        ctx.rx_halfduplex.add(*ctx.metrics);
        if (frame.dst == r) ctx.dst_halfduplex.add(*ctx.metrics);
        break;
    }
    if (sink_macs_ != nullptr) {
      // Direct dispatch into the receiving MAC; a dead receiver's
      // radio is off, so the frame dissipates unheard (the MAC's own
      // down flag backstops this, but filtering here keeps the metric
      // honest — same accounting the Network's hook used to do). The
      // MAC discards every non-kOk reception unconditionally, so those
      // calls are elided outright; a delivery hook still sees all four
      // statuses.
      if (!sink_alive_[r]) {
        ctx.rx_dead.add(*ctx.metrics);
      } else if (status == ReceptionStatus::kOk) {
        if (shard_of_ != nullptr) {
          // Under the serialized gate a foreign receiver's clock may
          // lag this event; catch it up so anything the reception
          // schedules (the SIFS ACK above all) lands relative to the
          // true current time. Safe: gate order is the canonical global
          // order, so no pending event of that shard precedes `now`.
          ctxs_[shard_of_[r]].sched->advance_to(now);
        }
        sink_macs_[r]->handle_reception(frame, status);
      }
    } else if (delivery_) {
      delivery_(r, frame, status);
    }
  }
}

}  // namespace icpda::net
