// Unit-disk connectivity graph over a deployment.
//
// Two sensors share a wireless link iff their distance is at most the
// transmission range (the random-geometric-graph model G(N, r) used
// throughout the paper family). The Topology is immutable once built;
// the Channel consults it on every transmission, so the adjacency is
// stored as a flat CSR array (one offsets array + one neighbour
// array) built once per deployment: neighbour iteration is a single
// contiguous scan with no per-node vector indirection.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/geometry.h"
#include "sim/rng.h"

namespace icpda::net {

/// Index of a node within one simulation; the base station is always
/// node 0 by convention (see Network).
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFF;

class Topology {
 public:
  /// Builds the unit-disk graph for the given positions and range.
  Topology(std::vector<Point> positions, double range);

  [[nodiscard]] std::size_t size() const { return positions_.size(); }
  [[nodiscard]] double range() const { return range_; }
  [[nodiscard]] const Point& position(NodeId id) const { return positions_.at(id); }
  [[nodiscard]] const std::vector<Point>& positions() const { return positions_; }

  /// Physical one-hop neighbours of `id` (excluding `id` itself), in
  /// ascending id order. A contiguous view into the CSR adjacency;
  /// valid for the lifetime of the Topology.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const {
    if (id >= positions_.size()) {
      throw std::out_of_range("Topology::neighbors: bad node id");
    }
    return {csr_flat_.data() + csr_offsets_[id],
            csr_flat_.data() + csr_offsets_[id + 1]};
  }

  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const;

  [[nodiscard]] std::size_t degree(NodeId id) const {
    if (id >= positions_.size()) {
      throw std::out_of_range("Topology::degree: bad node id");
    }
    return csr_offsets_[id + 1] - csr_offsets_[id];
  }
  [[nodiscard]] double average_degree() const;
  [[nodiscard]] std::size_t min_degree() const;
  [[nodiscard]] std::size_t edge_count() const { return csr_flat_.size() / 2; }

  /// Heap bytes held by the deployment (positions + CSR adjacency).
  [[nodiscard]] std::size_t footprint_bytes() const {
    return positions_.capacity() * sizeof(Point) +
           csr_offsets_.capacity() * sizeof(std::uint32_t) +
           csr_flat_.capacity() * sizeof(NodeId);
  }

  /// True iff the graph is connected (BFS from node 0).
  [[nodiscard]] bool connected() const;

  /// Nodes reachable from `root`, including `root`.
  [[nodiscard]] std::vector<NodeId> reachable_from(NodeId root) const;

  /// Hop distance from `root` to every node (kUnreachable if none).
  static constexpr std::uint32_t kUnreachable = 0xFFFFFFFF;
  [[nodiscard]] std::vector<std::uint32_t> hop_distances(NodeId root) const;

 private:
  std::vector<Point> positions_;
  double range_;
  /// CSR adjacency: neighbours of i are csr_flat_[csr_offsets_[i] ..
  /// csr_offsets_[i+1]), sorted ascending. offsets has size() + 1
  /// entries.
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<NodeId> csr_flat_;
};

/// Convenience: sample a uniform deployment and build its topology.
/// `base_station_at_center` replaces node 0's sampled position with the
/// field center (the paper family places the BS centrally).
[[nodiscard]] Topology make_random_topology(const Field& field, std::size_t n,
                                            double range, sim::Rng& rng,
                                            bool base_station_at_center = true);

}  // namespace icpda::net
