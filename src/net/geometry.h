// Planar geometry for sensor deployment.
//
// The paper family deploys N sensors uniformly at random on a
// 400 m x 400 m field with a 50 m transmission range; these types model
// exactly that: points, a rectangular field, and uniform placement.
#pragma once

#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace icpda::net {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

[[nodiscard]] inline double distance_sq(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

[[nodiscard]] inline double distance(const Point& a, const Point& b) {
  return std::sqrt(distance_sq(a, b));
}

/// Axis-aligned rectangular deployment field with the origin at (0,0).
class Field {
 public:
  Field(double width, double height);

  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] double height() const { return height_; }
  [[nodiscard]] double area() const { return width_ * height_; }
  [[nodiscard]] Point center() const { return {width_ / 2, height_ / 2}; }

  [[nodiscard]] bool contains(const Point& p) const {
    return p.x >= 0 && p.x <= width_ && p.y >= 0 && p.y <= height_;
  }

  /// One point uniformly at random inside the field.
  [[nodiscard]] Point sample(sim::Rng& rng) const {
    return {rng.uniform(0.0, width_), rng.uniform(0.0, height_)};
  }

  /// n points i.i.d. uniform inside the field.
  [[nodiscard]] std::vector<Point> sample_n(sim::Rng& rng, std::size_t n) const;

  /// Expected node degree when n nodes with transmission range r are
  /// placed uniformly: (n-1) * pi r^2 / area, ignoring border effects.
  [[nodiscard]] double expected_degree(std::size_t n, double range) const;

 private:
  double width_;
  double height_;
};

}  // namespace icpda::net
