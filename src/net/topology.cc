#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <utility>

namespace icpda::net {

Topology::Topology(std::vector<Point> positions, double range)
    : positions_(std::move(positions)), range_(range) {
  if (!(range > 0)) throw std::invalid_argument("Topology: range must be positive");
  // Grid-bucketed neighbour search: O(N) buckets of side `range`, each
  // node only compares against its 3x3 bucket neighbourhood. For the
  // paper-scale N (hundreds) a quadratic scan would also do, but the
  // benchmarks sweep to thousands of nodes.
  const std::size_t n = positions_.size();
  csr_offsets_.assign(n + 1, 0);
  if (n == 0) return;

  double max_x = 0.0;
  double max_y = 0.0;
  for (const auto& p : positions_) {
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const auto cols = static_cast<std::size_t>(max_x / range) + 1;
  const auto rows = static_cast<std::size_t>(max_y / range) + 1;
  std::vector<std::vector<NodeId>> grid(cols * rows);
  const auto bucket_of = [&](const Point& p) {
    const auto cx = std::min(cols - 1, static_cast<std::size_t>(p.x / range));
    const auto cy = std::min(rows - 1, static_cast<std::size_t>(p.y / range));
    return cy * cols + cx;
  };
  for (NodeId i = 0; i < n; ++i) grid[bucket_of(positions_[i])].push_back(i);

  // Pass 1: collect the undirected edge list and per-node degrees.
  const double r2 = range * range;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < n; ++i) {
    const auto& p = positions_[i];
    const auto cx = std::min(cols - 1, static_cast<std::size_t>(p.x / range));
    const auto cy = std::min(rows - 1, static_cast<std::size_t>(p.y / range));
    for (std::size_t gy = (cy == 0 ? 0 : cy - 1); gy <= std::min(rows - 1, cy + 1); ++gy) {
      for (std::size_t gx = (cx == 0 ? 0 : cx - 1); gx <= std::min(cols - 1, cx + 1); ++gx) {
        for (const NodeId j : grid[gy * cols + gx]) {
          if (j <= i) continue;
          if (distance_sq(p, positions_[j]) <= r2) {
            edges.emplace_back(i, j);
            ++csr_offsets_[i + 1];
            ++csr_offsets_[j + 1];
          }
        }
      }
    }
  }

  // Pass 2: prefix-sum the degrees into CSR offsets and scatter the
  // edges; each segment is then sorted so neighbors() yields ascending
  // ids (cluster formation and the wiretap census rely on that).
  for (std::size_t i = 1; i <= n; ++i) csr_offsets_[i] += csr_offsets_[i - 1];
  csr_flat_.resize(csr_offsets_[n]);
  std::vector<std::uint32_t> cursor(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    csr_flat_[cursor[a]++] = b;
    csr_flat_[cursor[b]++] = a;
  }
  for (NodeId i = 0; i < n; ++i) {
    std::sort(csr_flat_.begin() + csr_offsets_[i], csr_flat_.begin() + csr_offsets_[i + 1]);
  }
}

bool Topology::adjacent(NodeId a, NodeId b) const {
  const auto adj = neighbors(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

double Topology::average_degree() const {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(csr_flat_.size()) / static_cast<double>(positions_.size());
}

std::size_t Topology::min_degree() const {
  std::size_t m = positions_.empty() ? 0 : degree(0);
  for (NodeId i = 0; i < positions_.size(); ++i) m = std::min(m, degree(i));
  return m;
}

bool Topology::connected() const {
  if (positions_.empty()) return true;
  return reachable_from(0).size() == positions_.size();
}

std::vector<NodeId> Topology::reachable_from(NodeId root) const {
  std::vector<bool> seen(positions_.size(), false);
  std::vector<NodeId> order;
  std::queue<NodeId> frontier;
  seen.at(root) = true;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    order.push_back(u);
    for (const NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        frontier.push(v);
      }
    }
  }
  return order;
}

std::vector<std::uint32_t> Topology::hop_distances(NodeId root) const {
  std::vector<std::uint32_t> dist(positions_.size(), kUnreachable);
  std::queue<NodeId> frontier;
  dist.at(root) = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

Topology make_random_topology(const Field& field, std::size_t n, double range,
                              sim::Rng& rng, bool base_station_at_center) {
  auto positions = field.sample_n(rng, n);
  if (base_station_at_center && !positions.empty()) {
    positions[0] = field.center();
  }
  return Topology{std::move(positions), range};
}

}  // namespace icpda::net
