#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace icpda::net {

Topology::Topology(std::vector<Point> positions, double range)
    : positions_(std::move(positions)), range_(range), adjacency_(positions_.size()) {
  if (!(range > 0)) throw std::invalid_argument("Topology: range must be positive");
  // Grid-bucketed neighbour search: O(N) buckets of side `range`, each
  // node only compares against its 3x3 bucket neighbourhood. For the
  // paper-scale N (hundreds) a quadratic scan would also do, but the
  // benchmarks sweep to thousands of nodes.
  const std::size_t n = positions_.size();
  if (n == 0) return;

  double max_x = 0.0;
  double max_y = 0.0;
  for (const auto& p : positions_) {
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const auto cols = static_cast<std::size_t>(max_x / range) + 1;
  const auto rows = static_cast<std::size_t>(max_y / range) + 1;
  std::vector<std::vector<NodeId>> grid(cols * rows);
  const auto bucket_of = [&](const Point& p) {
    const auto cx = std::min(cols - 1, static_cast<std::size_t>(p.x / range));
    const auto cy = std::min(rows - 1, static_cast<std::size_t>(p.y / range));
    return cy * cols + cx;
  };
  for (NodeId i = 0; i < n; ++i) grid[bucket_of(positions_[i])].push_back(i);

  const double r2 = range * range;
  for (NodeId i = 0; i < n; ++i) {
    const auto& p = positions_[i];
    const auto cx = std::min(cols - 1, static_cast<std::size_t>(p.x / range));
    const auto cy = std::min(rows - 1, static_cast<std::size_t>(p.y / range));
    for (std::size_t gy = (cy == 0 ? 0 : cy - 1); gy <= std::min(rows - 1, cy + 1); ++gy) {
      for (std::size_t gx = (cx == 0 ? 0 : cx - 1); gx <= std::min(cols - 1, cx + 1); ++gx) {
        for (const NodeId j : grid[gy * cols + gx]) {
          if (j <= i) continue;
          if (distance_sq(p, positions_[j]) <= r2) {
            adjacency_[i].push_back(j);
            adjacency_[j].push_back(i);
          }
        }
      }
    }
  }
  for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());
}

bool Topology::adjacent(NodeId a, NodeId b) const {
  const auto& adj = adjacency_.at(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

double Topology::average_degree() const {
  if (positions_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return static_cast<double>(total) / static_cast<double>(positions_.size());
}

std::size_t Topology::min_degree() const {
  std::size_t m = positions_.empty() ? 0 : adjacency_[0].size();
  for (const auto& adj : adjacency_) m = std::min(m, adj.size());
  return m;
}

std::size_t Topology::edge_count() const {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

bool Topology::connected() const {
  if (positions_.empty()) return true;
  return reachable_from(0).size() == positions_.size();
}

std::vector<NodeId> Topology::reachable_from(NodeId root) const {
  std::vector<bool> seen(positions_.size(), false);
  std::vector<NodeId> order;
  std::queue<NodeId> frontier;
  seen.at(root) = true;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    order.push_back(u);
    for (const NodeId v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        frontier.push(v);
      }
    }
  }
  return order;
}

std::vector<std::uint32_t> Topology::hop_distances(NodeId root) const {
  std::vector<std::uint32_t> dist(positions_.size(), kUnreachable);
  std::queue<NodeId> frontier;
  dist.at(root) = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : adjacency_[u]) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

Topology make_random_topology(const Field& field, std::size_t n, double range,
                              sim::Rng& rng, bool base_station_at_center) {
  auto positions = field.sample_n(rng, n);
  if (base_station_at_center && !positions.empty()) {
    positions[0] = field.center();
  }
  return Topology{std::move(positions), range};
}

}  // namespace icpda::net
