#include "net/shard_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <future>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "sim/barrier.h"

namespace icpda::net {

ShardEngine::ShardEngine(std::vector<sim::Scheduler*> scheds,
                         sim::SimTime lookahead, runner::ThreadPool& pool)
    : scheds_(std::move(scheds)), lookahead_(lookahead), pool_(pool) {
  if (scheds_.empty()) {
    throw std::invalid_argument("ShardEngine: need at least one shard");
  }
  if (!(lookahead_ > sim::SimTime::zero())) {
    throw std::invalid_argument("ShardEngine: lookahead must be positive");
  }
  if (pool_.size() < scheds_.size()) {
    throw std::invalid_argument(
        "ShardEngine: pool smaller than shard count would deadlock");
  }
  // The gate's tie-break needs parentage metadata; schedulers keep it
  // off by default because only this engine ever reads it. Engines are
  // constructed before any events are scheduled (Network::wire), so no
  // pre-existing event misses tracking.
  for (sim::Scheduler* s : scheds_) s->set_track_parentage(true);
}

namespace {

// Cross-shard dispatch order at the gate. Per-shard FIFO seq counters
// are incomparable across schedulers, so a (fire time, schedule time)
// tie is ordered by the full parent dispatch LINEAGE
// (sim::canonical_cross_before → sim::lineage_cmp): tied children
// fire in their parents' dispatch order, tied parents recurse one
// causal level up, and chains bottoming out at install-scheduled
// roots compare by the global install sequence — the exact
// single-heap FIFO order, not a fixed-depth approximation (the PR-9
// two-level truncation reordered deep slot-aligned MAC ties at paper
// density, which snowballed into different carrier-sense outcomes; see
// DESIGN.md §5k). Only chains cut at the lineage depth cap fall back
// to the owner id, which is engine-independent.
[[nodiscard]] bool gate_before(const sim::EventKey& a, const sim::EventKey& b) {
  return sim::canonical_cross_before(a, b);
}

}  // namespace

void ShardEngine::run_gate(sim::SimTime bound) {
  // K-way merge by repeated peek: always run the globally-least pending
  // event below the bound. An executed event may insert new events, but
  // never before itself — re-peeking every iteration keeps the order
  // canonical through arbitrary insert patterns. Within a shard the
  // scheduler's own heap supplies the (at, sched_at, seq) FIFO order;
  // across shards gate_before() decides.
  const std::size_t shards = scheds_.size();
  for (;;) {
    std::size_t best = shards;
    sim::EventKey best_key{};
    for (std::size_t s = 0; s < shards; ++s) {
      if (!scheds_[s]->has_next() || !(scheds_[s]->next_time() < bound)) continue;
      const sim::EventKey k = scheds_[s]->next_key();
      if (best == shards || gate_before(k, best_key)) {
        best = s;
        best_key = k;
      }
    }
    if (best == shards) return;
    scheds_[best]->run_one();
    ++stats_.gate_events;
  }
}

sim::SimTime ShardEngine::run(sim::SimTime horizon, bool serialize_all) {
  const std::size_t shards = scheds_.size();
  // Events at exactly the horizon still fire (run_until semantics):
  // bound is the smallest representable time after it.
  const sim::SimTime bound{
      horizon.is_finite()
          ? std::nextafter(horizon.seconds(),
                           std::numeric_limits<double>::infinity())
          : std::numeric_limits<double>::infinity()};

  stats_ = Stats{};
  struct Plan {
    bool done = false;
    sim::SimTime drain_bound = sim::SimTime::zero();
  };
  Plan plan;
  sim::ReductionBarrier barrier(shards);
  std::vector<std::uint64_t> drained(shards, 0);
  std::vector<std::uint64_t> violations(shards, 0);
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  // Runs serially under the barrier (the other workers are parked):
  // play every pending border INSTANT through the gate, then plan the
  // next parallel drain segment. Unlike the PR-9 window machinery —
  // which, once a window contained any border event, serialized the
  // window's whole tail — the gate here executes only one clock
  // instant at a time (every event AT the earliest border time, in
  // canonical cross-shard order), and control returns to the parallel
  // drains the moment a border-free prefix reappears. Interior events
  // between two border instants therefore drain concurrently, which
  // is where the parallel fraction comes from (DESIGN.md §5k).
  //
  // Gate code is arbitrary protocol code; an exception here must not
  // strand the other workers in the barrier, so it is trapped exactly
  // like a drain-side failure.
  auto replan = [&] {
    if (failed.load(std::memory_order_relaxed)) {
      plan.done = true;
      return;
    }
    try {
      for (;;) {
        sim::SimTime next = sim::SimTime::infinity();
        for (sim::Scheduler* s : scheds_) {
          if (s->has_next()) next = std::min(next, s->next_time());
        }
        if (!(next < bound)) {
          plan.done = true;
          return;
        }
        if (serialize_all) {
          ++stats_.gate_rounds;
          run_gate(bound);
          continue;  // drains everything; next pass observes done
        }
        sim::SimTime gate_at = sim::SimTime::infinity();
        sim::EventKey bk;
        for (sim::Scheduler* s : scheds_) {
          if (s->next_border(bk)) gate_at = std::min(gate_at, bk.at);
        }
        if (gate_at <= next) {
          // No drainable border-free prefix: serialize this one
          // instant (border events plus any same-instant interiors —
          // same-time cross-shard interaction is real, so the whole
          // instant replays in canonical order), then re-plan; runs of
          // consecutive border instants gate back-to-back without
          // releasing the barrier.
          ++stats_.gate_rounds;
          run_gate(sim::SimTime{std::nextafter(
              gate_at.seconds(), std::numeric_limits<double>::infinity())});
          continue;
        }
        ++stats_.rounds;
        plan.drain_bound = std::min({gate_at, next + lookahead_, bound});
        return;
      }
    } catch (...) {
      const std::scoped_lock lock(error_mutex);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
      plan.done = true;
    }
  };

  auto worker = [&](std::size_t s) {
    for (;;) {
      barrier.arrive_and_wait(replan);
      if (plan.done) return;
      try {
        drained[s] += scheds_[s]->run_before(plan.drain_bound);
        // Lookahead-safety check (invariant 3): nothing this drain ran
        // may have left a border event pending below the drain bound —
        // the gate would execute it late, out of canonical order.
        sim::EventKey bk;
        if (scheds_[s]->next_border(bk) && bk.at < plan.drain_bound) {
          ++violations[s];
        }
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    futures.push_back(pool_.submit([&worker, s] { worker(s); }));
  }
  for (auto& f : futures) f.get();
  if (error) std::rethrow_exception(error);

  for (std::size_t s = 0; s < shards; ++s) {
    stats_.parallel_events += drained[s];
    stats_.lookahead_violations += violations[s];
  }

  // Leave every shard clock at a common end time: the horizon when
  // finite, else the latest event executed anywhere.
  sim::SimTime end = horizon.is_finite() ? horizon : sim::SimTime::zero();
  for (sim::Scheduler* s : scheds_) end = std::max(end, s->now());
  for (sim::Scheduler* s : scheds_) s->advance_to(end);
  return end;
}

}  // namespace icpda::net
