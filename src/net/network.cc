#include "net/network.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>

namespace icpda::net {

namespace {
Topology build_topology(const NetworkConfig& config, sim::Rng& rng) {
  const Field field{config.field_width_m, config.field_height_m};
  sim::Rng topo_rng = rng.fork("topology");
  return make_random_topology(field, config.node_count, config.range_m, topo_rng,
                              config.base_station_at_center);
}

/// With ICPDA_ANNOUNCE_PLAN set (the runner sets it alongside its
/// progress reporter), print each distinct (node count, shard count)
/// partition once to stderr — campaigns build thousands of Networks,
/// so per-instance printing would drown the progress line.
void announce_plan(const sim::ShardPlan& plan, std::size_t nodes) {
  if (std::getenv("ICPDA_ANNOUNCE_PLAN") == nullptr) return;
  static std::mutex mu;
  static std::set<std::pair<std::size_t, std::uint32_t>> seen;
  const std::scoped_lock lock(mu);
  if (!seen.insert({nodes, plan.shard_count}).second) return;
  std::fprintf(stderr,
               "[shard-plan] n=%zu tiles=%u border=%zu (%.1f%%) balance=%.2f\n",
               nodes, plan.shard_count, plan.border_count,
               100.0 * static_cast<double>(plan.border_count) /
                   static_cast<double>(nodes == 0 ? 1 : nodes),
               plan.balance());
}
}  // namespace

Network::Network(const NetworkConfig& config)
    : config_(config), rng_(config.seed), topology_(build_topology(config, rng_)) {
  wire();
}

Network::Network(Topology topology, const NetworkConfig& config)
    : config_(config), rng_(config.seed), topology_(std::move(topology)) {
  config_.node_count = topology_.size();
  wire();
}

void Network::wire() {
  if (topology_.size() == 0) {
    throw std::invalid_argument("Network: empty topology");
  }

  // Sharded setup first: the MACs below must be bound to their
  // home-shard scheduler/registry at construction.
  const auto shards = static_cast<std::uint32_t>(
      std::min<std::size_t>(config_.shards, topology_.size()));
  if (shards > 1) {
    std::vector<double> xs(topology_.size());
    std::vector<double> ys(topology_.size());
    for (NodeId id = 0; id < topology_.size(); ++id) {
      xs[id] = topology_.position(id).x;
      ys[id] = topology_.position(id).y;
    }
    plan_ = sim::make_tile_plan(
        xs, ys, config_.field_width_m, config_.field_height_m, config_.range_m,
        shards,
        [this](std::uint32_t node, const std::function<void(std::uint32_t)>& fn) {
          for (const NodeId r : topology_.neighbors(node)) fn(r);
        });
    announce_plan(plan_, topology_.size());
    shard_scheds_.reserve(shards);
    shard_metrics_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      shard_scheds_.push_back(std::make_unique<sim::Scheduler>());
      shard_scheds_.back()->set_tracer(&tracer_);
      shard_metrics_.push_back(std::make_unique<sim::MetricRegistry>());
    }
    // Trace rings stay single-writer under parallel drains only with
    // per-ring sequence numbers.
    tracer_.set_sharded(true);
    // Lookahead: the tightest bound on how soon a drained event can
    // spawn a border event — min(one contention slot, the airtime of a
    // payload-free frame + propagation). The SIFS ACK undercuts this,
    // which is why ACK-soliciting deliveries are gate-forced instead
    // (see Channel::transmit).
    const double spawn_floor_s = std::min(
        config_.mac.slot_time_s,
        static_cast<double>(kFrameOverheadBytes) * 8.0 / config_.channel.bit_rate_bps +
            config_.channel.propagation_delay_s);
    pool_ = std::make_unique<runner::ThreadPool>(shards);
    std::vector<sim::Scheduler*> raw;
    raw.reserve(shards);
    for (auto& s : shard_scheds_) raw.push_back(s.get());
    engine_ = std::make_unique<ShardEngine>(std::move(raw),
                                            sim::seconds(spawn_floor_s), *pool_);
  }

  channel_ = std::make_unique<Channel>(topology_, scheduler_, rng_.fork("channel"),
                                       metrics_, config_.channel);
  scheduler_.set_tracer(&tracer_);
  channel_->set_tracer(&tracer_);
  if (engine_) {
    Channel::ShardWiring wiring;
    for (auto& s : shard_scheds_) wiring.scheds.push_back(s.get());
    for (auto& m : shard_metrics_) wiring.metrics.push_back(m.get());
    wiring.shard_of = plan_.shard_of.data();
    wiring.border = plan_.border.data();
    channel_->set_shards(std::move(wiring));
  }
  macs_.reserve(topology_.size());
  nodes_.reserve(topology_.size());
  for (NodeId id = 0; id < topology_.size(); ++id) {
    macs_.push_back(std::make_unique<Mac>(id, *channel_, scheduler_for(id),
                                          rng_.fork("mac", id), metrics_for(id),
                                          config_.mac));
    macs_.back()->set_tracer(&tracer_);
    if (engine_) macs_.back()->set_border(plan_.border[id] != 0);
    nodes_.push_back(std::make_unique<Node>(id, *this, rng_.fork("node", id)));
  }
  // Delivery path: channel -> receiving MAC -> node -> app, wired as
  // direct sinks (no std::function hop on either leg — they fire once
  // per in-range node per frame). Dead-receiver filtering and its
  // channel.rx_dead accounting moved into Channel::deliver; the arrays
  // handed to set_sink never reallocate after this point.
  alive_.assign(topology_.size(), 1);
  mac_raw_.reserve(topology_.size());
  for (NodeId id = 0; id < topology_.size(); ++id) {
    mac_raw_.push_back(macs_[id].get());
    macs_[id]->set_sink(nodes_[id].get());
  }
  channel_->set_sink(mac_raw_.data(), alive_.data());
}

void Network::set_node_down(NodeId id) {
  if (id == base_station()) return;  // the sink never crashes
  if (!nodes_.at(id)->alive()) return;
  nodes_[id]->set_alive(false);
  alive_[id] = 0;
  macs_[id]->power_off();
  // Crash mid-phase: close every open span so traces stay balanced.
  // The node's home-shard clock is the acting time (fault events run on
  // the crashing node's shard).
  tracer_.interrupt(id, scheduler_for(id).now());
  metrics_for(id).add("net.node_down");
}

void Network::set_node_up(NodeId id) {
  if (nodes_.at(id)->alive()) return;
  nodes_[id]->set_alive(true);
  alive_[id] = 1;
  macs_[id]->power_on();
  metrics_for(id).add("net.node_up");
}

std::size_t Network::live_count() const {
  std::size_t live = 0;
  for (const auto& n : nodes_) {
    if (n->alive()) ++live;
  }
  return live;
}

void Network::start() {
  // Base station first: it owns query initiation in every protocol here.
  for (auto& n : nodes_) {
    if (n->app()) n->app()->start(*n);
  }
}

Network::Footprint Network::footprint() const {
  Footprint f;
  f.topology = topology_.footprint_bytes();
  f.schedulers = scheduler_.footprint_bytes();
  for (const auto& s : shard_scheds_) f.schedulers += s->footprint_bytes();
  f.channel = channel_ ? channel_->footprint_bytes() : 0;
  for (const auto& m : macs_) f.macs += m->footprint_bytes();
  f.metrics = metrics_.footprint_bytes();
  for (const auto& m : shard_metrics_) f.metrics += m->footprint_bytes();
  f.plan = plan_.shard_of.capacity() * sizeof(std::uint32_t) +
           plan_.border.capacity() * sizeof(std::uint8_t) +
           plan_.shard_sizes.capacity() * sizeof(std::uint32_t) +
           plan_.est_load.capacity() * sizeof(std::uint64_t);
  f.objects = macs_.size() * (sizeof(Mac) + sizeof(Node) + 2 * sizeof(void*)) +
              mac_raw_.capacity() * sizeof(Mac*) +
              alive_.capacity() * sizeof(std::uint8_t) + sizeof(Network) +
              (channel_ ? sizeof(Channel) : 0);
  return f;
}

sim::SimTime Network::run(sim::SimTime horizon) {
  start();
  if (!engine_) {
    if (horizon.is_finite()) {
      scheduler_.run_until(horizon);
    } else {
      scheduler_.run();
    }
    return scheduler_.now();
  }

  // Arbitrary shared observers make every event a potential cross-shard
  // interaction: run the whole horizon through the serialized gate
  // (identical results, no parallelism) rather than risk a torn read.
  const bool serialize = serialize_all_ || channel_->has_taps() ||
                         (tracer_.enabled() && tracer_.config().scheduler_spans);
  const sim::SimTime end = engine_->run(horizon, serialize);

  // Fold per-shard registries into the main one, in shard order —
  // deterministic, and Cell handles survive for the next run.
  for (auto& m : shard_metrics_) m->drain_into(metrics_);

  if (tracer_.enabled() && tracer_.config().shard_counters) {
    const ShardEngine::Stats& st = engine_->stats();
    tracer_.counter(sim::kTraceGlobalNode, sim::TraceCounter::kShardRounds,
                    st.rounds, end);
    tracer_.counter(sim::kTraceGlobalNode, sim::TraceCounter::kShardGateRounds,
                    st.gate_rounds, end);
    tracer_.counter(sim::kTraceGlobalNode, sim::TraceCounter::kShardGateEvents,
                    st.gate_events, end);
    tracer_.counter(sim::kTraceGlobalNode, sim::TraceCounter::kShardParallelEvents,
                    st.parallel_events, end);
  }
  return end;
}

}  // namespace icpda::net
