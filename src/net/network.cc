#include "net/network.h"

#include <stdexcept>
#include <utility>

namespace icpda::net {

namespace {
Topology build_topology(const NetworkConfig& config, sim::Rng& rng) {
  const Field field{config.field_width_m, config.field_height_m};
  sim::Rng topo_rng = rng.fork("topology");
  return make_random_topology(field, config.node_count, config.range_m, topo_rng,
                              config.base_station_at_center);
}
}  // namespace

Network::Network(const NetworkConfig& config)
    : config_(config), rng_(config.seed), topology_(build_topology(config, rng_)) {
  wire();
}

Network::Network(Topology topology, const NetworkConfig& config)
    : config_(config), rng_(config.seed), topology_(std::move(topology)) {
  config_.node_count = topology_.size();
  wire();
}

void Network::wire() {
  if (topology_.size() == 0) {
    throw std::invalid_argument("Network: empty topology");
  }
  channel_ = std::make_unique<Channel>(topology_, scheduler_, rng_.fork("channel"),
                                       metrics_, config_.channel);
  scheduler_.set_tracer(&tracer_);
  channel_->set_tracer(&tracer_);
  macs_.reserve(topology_.size());
  nodes_.reserve(topology_.size());
  for (NodeId id = 0; id < topology_.size(); ++id) {
    macs_.push_back(std::make_unique<Mac>(id, *channel_, scheduler_,
                                          rng_.fork("mac", id), metrics_, config_.mac));
    macs_.back()->set_tracer(&tracer_);
    nodes_.push_back(std::make_unique<Node>(id, *this, rng_.fork("node", id)));
  }
  // Delivery path: channel -> receiving MAC -> node -> app, wired as
  // direct sinks (no std::function hop on either leg — they fire once
  // per in-range node per frame). Dead-receiver filtering and its
  // channel.rx_dead accounting moved into Channel::deliver; the arrays
  // handed to set_sink never reallocate after this point.
  alive_.assign(topology_.size(), 1);
  mac_raw_.reserve(topology_.size());
  for (NodeId id = 0; id < topology_.size(); ++id) {
    mac_raw_.push_back(macs_[id].get());
    macs_[id]->set_sink(nodes_[id].get());
  }
  channel_->set_sink(mac_raw_.data(), alive_.data());
}

void Network::set_node_down(NodeId id) {
  if (id == base_station()) return;  // the sink never crashes
  if (!nodes_.at(id)->alive()) return;
  nodes_[id]->set_alive(false);
  alive_[id] = 0;
  macs_[id]->power_off();
  // Crash mid-phase: close every open span so traces stay balanced.
  tracer_.interrupt(id, scheduler_.now());
  metrics_.add("net.node_down");
}

void Network::set_node_up(NodeId id) {
  if (nodes_.at(id)->alive()) return;
  nodes_[id]->set_alive(true);
  alive_[id] = 1;
  macs_[id]->power_on();
  metrics_.add("net.node_up");
}

std::size_t Network::live_count() const {
  std::size_t live = 0;
  for (const auto& n : nodes_) {
    if (n->alive()) ++live;
  }
  return live;
}

void Network::start() {
  // Base station first: it owns query initiation in every protocol here.
  for (auto& n : nodes_) {
    if (n->app()) n->app()->start(*n);
  }
}

sim::SimTime Network::run(sim::SimTime horizon) {
  start();
  if (horizon.is_finite()) {
    scheduler_.run_until(horizon);
  } else {
    scheduler_.run();
  }
  return scheduler_.now();
}

}  // namespace icpda::net
