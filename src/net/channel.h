// Shared wireless medium with collision and loss modelling.
//
// The channel is broadcast by nature: every frame physically reaches
// every node within transmission range of the sender. That single fact
// powers three different protocol behaviours in this repository:
//   * addressed delivery        (normal reception),
//   * promiscuous overhearing   (iCPDA peer monitoring, Phase III),
//   * eavesdropping             (the attack model).
//
// Collision model: two transmissions overlapping in time at a receiver
// corrupt each other there (no capture effect); a node that is itself
// transmitting cannot receive (half-duplex). On top of collisions, an
// independent Bernoulli(p_loss) models fading/noise losses per
// (frame, receiver) pair. These two loss sources are what force the
// base station's acceptance threshold Th > 0.
//
// Fan-out is copy-free (DESIGN.md §5f): transmit() moves the frame
// into one shared immutable allocation and every receiver sees that
// same Frame by reference — per-receiver state is a 24-byte slot in a
// reusable per-node pool, and all of a transmission's deliveries run
// from a single scheduler event (they share the arrival instant, so
// consolidation is observationally invisible).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace icpda::net {

struct ChannelConfig {
  /// Radio bit rate (paper family: 1 Mbps).
  double bit_rate_bps = 1e6;
  /// Independent per-(frame,receiver) loss probability.
  double loss_probability = 0.0;
  /// Propagation delay per frame (distance-independent; ranges are
  /// <=50 m so real propagation is ~0.2 us — dominated by this slack).
  double propagation_delay_s = 1e-6;
};

/// Outcome of one frame at one receiver, reported to the Network.
enum class ReceptionStatus : std::uint8_t {
  kOk,         ///< delivered intact
  kCollided,   ///< corrupted by an overlapping transmission
  kLost,       ///< random channel loss
  kHalfDuplex  ///< receiver was transmitting at the time
};

class Channel {
 public:
  /// receiver, frame, status. Called once per in-range node per frame
  /// at reception-complete time (ok or not, so MACs can count noise).
  /// The Frame reference is to the transmission's shared copy: valid
  /// for the duration of the callback only.
  using DeliveryFn =
      std::function<void(NodeId receiver, const Frame& frame, ReceptionStatus)>;

  /// Wiretap observer: sees every transmission at start-of-frame with
  /// the sender id. Used by attack instrumentation; taps see ciphertext
  /// bytes exactly as a real antenna would.
  using TapFn = std::function<void(NodeId sender, const Frame& frame)>;

  Channel(const Topology& topo, sim::Scheduler& sched, sim::Rng rng,
          sim::MetricRegistry& metrics, ChannelConfig config);

  /// Airtime of a frame at the configured bit rate.
  [[nodiscard]] sim::SimTime airtime(const Frame& frame) const {
    return airtime_bytes(frame.air_bytes());
  }
  [[nodiscard]] sim::SimTime airtime_bytes(std::size_t bytes) const {
    return sim::seconds(static_cast<double>(bytes) * 8.0 / config_.bit_rate_bps);
  }

  /// Carrier sense: is any transmission audible at `node` right now
  /// (including the node's own)?
  [[nodiscard]] bool busy_at(NodeId node) const;

  /// Is `node` itself currently transmitting?
  [[nodiscard]] bool transmitting(NodeId node) const;

  /// Start transmitting `frame` from `sender` now. The MAC must have
  /// done its carrier-sense dance already; the channel will happily
  /// create a collision if told to transmit into a busy medium.
  /// `on_tx_done` fires at end-of-frame at the sender.
  void transmit(NodeId sender, Frame frame, std::function<void()> on_tx_done);

  void set_delivery(DeliveryFn fn) { delivery_ = std::move(fn); }
  void add_tap(TapFn fn) { taps_.push_back(std::move(fn)); }

  /// Attach a tracer: transmit() records kTxBytes at the sender (same
  /// value and call site as the channel.tx_bytes metric, so per-phase
  /// trace sums reconcile with the registry exactly) and each delivery
  /// records kRxBytes / kCollisionBytes / kLossBytes at the receiver.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] const ChannelConfig& config() const { return config_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }

 private:
  /// One in-flight frame at one receiver. An entry lives in the
  /// receiver's slot pool from start-of-frame until the transmission's
  /// delivery pass consumes it (the corrupted flag must survive that
  /// whole window); slots are reclaimed by swap-removal, so a pool
  /// never shrinks its capacity — steady state allocates nothing.
  struct Reception {
    std::uint64_t tx_id;
    sim::SimTime end;
    bool corrupted;
    /// Half-duplex latch: the receiver was mid-transmission when this
    /// frame started (checked again against `now` at delivery).
    bool rx_while_tx;
  };

  /// Deliver one transmission to every in-range receiver, in neighbour
  /// (= ascending id) order — the same order the per-receiver events
  /// used to fire in, since they shared (arrival time, schedule order).
  void deliver(NodeId sender, std::uint64_t tx_id, const Frame& frame);

  const Topology& topo_;
  sim::Scheduler& sched_;
  sim::Rng rng_;
  sim::MetricRegistry& metrics_;
  ChannelConfig config_;
  sim::Tracer* tracer_ = nullptr;
  DeliveryFn delivery_;
  std::vector<TapFn> taps_;

  /// Per-node time until which the node is transmitting.
  std::vector<sim::SimTime> tx_until_;
  /// Per-node slot pools of in-flight receptions.
  std::vector<std::vector<Reception>> receptions_;
  std::uint64_t next_tx_id_ = 0;
};

}  // namespace icpda::net
