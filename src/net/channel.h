// Shared wireless medium with collision and loss modelling.
//
// The channel is broadcast by nature: every frame physically reaches
// every node within transmission range of the sender. That single fact
// powers three different protocol behaviours in this repository:
//   * addressed delivery        (normal reception),
//   * promiscuous overhearing   (iCPDA peer monitoring, Phase III),
//   * eavesdropping             (the attack model).
//
// Collision model: two transmissions overlapping in time at a receiver
// corrupt each other there (no capture effect); a node that is itself
// transmitting cannot receive (half-duplex). On top of collisions, an
// independent Bernoulli(p_loss) models fading/noise losses per
// (frame, receiver) pair. The loss draw is KEYED — a stateless hash of
// (sender, receiver, MAC seq, arrival time) under a seed forked from
// the channel RNG — so the outcome of one delivery never depends on
// how many other deliveries drew before it. That order-independence is
// what lets the sharded engine (DESIGN.md §5j) replay deliveries from
// per-shard schedulers and still produce bit-identical results.
//
// Fan-out is copy-free (DESIGN.md §5f, §5i): transmit() keeps one
// copy of the frame per transmission — a recycled pool slot under the
// production MAC sink, a shared immutable allocation under delivery
// hooks — and every receiver sees that same Frame by reference.
// Per-receiver state is a 24-byte slot in a reusable per-node pool,
// and all of a transmission's deliveries run from a single scheduler
// event (they share the arrival instant, so consolidation is
// observationally invisible).
//
// Sharded operation (set_shards): the physical state (tx_until_,
// receptions_) stays in the single shared per-node arrays, but every
// *acting* resource — scheduler, metric registry, in-flight frame
// pool, tx-id space — is per shard, selected by the transmitting
// node's shard. Events that can touch another shard's per-node state
// (a border node's delivery pass, or a delivery that will solicit an
// ACK from a border receiver) are border-tagged so the engine routes
// them through its serialized gate; everything else runs in the
// parallel drains, where the partition guarantees it only touches its
// own shard's rows of the shared arrays.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace icpda::net {

class Mac;

struct ChannelConfig {
  /// Radio bit rate (paper family: 1 Mbps).
  double bit_rate_bps = 1e6;
  /// Independent per-(frame,receiver) loss probability.
  double loss_probability = 0.0;
  /// Propagation delay per frame (distance-independent; ranges are
  /// <=50 m so real propagation is ~0.2 us — dominated by this slack).
  double propagation_delay_s = 1e-6;
};

/// Outcome of one frame at one receiver, reported to the Network.
enum class ReceptionStatus : std::uint8_t {
  kOk,         ///< delivered intact
  kCollided,   ///< corrupted by an overlapping transmission
  kLost,       ///< random channel loss
  kHalfDuplex  ///< receiver was transmitting at the time
};

class Channel {
 public:
  /// receiver, frame, status. Called once per in-range node per frame
  /// at reception-complete time (ok or not, so MACs can count noise).
  /// The Frame reference is to the transmission's shared copy: valid
  /// for the duration of the callback only.
  using DeliveryFn =
      std::function<void(NodeId receiver, const Frame& frame, ReceptionStatus)>;

  /// Wiretap observer: sees every transmission at start-of-frame with
  /// the sender id. Used by attack instrumentation; taps see ciphertext
  /// bytes exactly as a real antenna would. A tapped channel forces the
  /// sharded engine into full serialization (taps are arbitrary shared
  /// state).
  using TapFn = std::function<void(NodeId sender, const Frame& frame)>;

  Channel(const Topology& topo, sim::Scheduler& sched, sim::Rng rng,
          sim::MetricRegistry& metrics, ChannelConfig config);

  /// Sharded wiring (Network::wire when config.shards > 1): per-shard
  /// schedulers/registries plus the node->shard map and border flags.
  /// The pointed-to arrays must outlive the channel and never move.
  struct ShardWiring {
    std::vector<sim::Scheduler*> scheds;
    std::vector<sim::MetricRegistry*> metrics;
    const std::uint32_t* shard_of = nullptr;  ///< per node
    const std::uint8_t* border = nullptr;     ///< per node
  };
  void set_shards(ShardWiring wiring);

  /// Airtime of a frame at the configured bit rate.
  [[nodiscard]] sim::SimTime airtime(const Frame& frame) const {
    return airtime_bytes(frame.air_bytes());
  }
  [[nodiscard]] sim::SimTime airtime_bytes(std::size_t bytes) const {
    return sim::seconds(static_cast<double>(bytes) * 8.0 / config_.bit_rate_bps);
  }

  /// Carrier sense: is any transmission audible at `node` right now
  /// (including the node's own)? "Now" is the node's own shard clock —
  /// callers are always the node's own MAC, acting inside one of the
  /// node's events.
  [[nodiscard]] bool busy_at(NodeId node) const;

  /// Is `node` itself currently transmitting (on its own shard clock)?
  [[nodiscard]] bool transmitting(NodeId node) const;

  /// Start transmitting `frame` from `sender` now (the channel takes a
  /// copy; under the direct-sink wiring it lands in a slot whose
  /// payload buffer is recycled across transmissions, so steady state
  /// allocates nothing). The MAC must have done its carrier-sense
  /// dance already; the channel will happily create a collision if
  /// told to transmit into a busy medium. `on_tx_done` fires at
  /// end-of-frame at the sender; pass nullptr (ACKs, test rigs) and no
  /// end-of-frame event is scheduled at all — carrier state lives in
  /// tx_until_, so the event exists only to run the callback.
  void transmit(NodeId sender, const Frame& frame, sim::EventFn on_tx_done);

  /// Installing a delivery hook clears any direct MAC sink: the hook
  /// takes over the reception path completely (tests and tools rely on
  /// replacing the Network's wiring this way).
  void set_delivery(DeliveryFn fn) {
    delivery_ = std::move(fn);
    sink_macs_ = nullptr;
    sink_alive_ = nullptr;
  }

  /// Production fast path (Network::wire): deliver straight into
  /// `macs[r]->handle_reception` when `alive[r]`, skipping the
  /// std::function hop paid once per in-range node per frame — the
  /// hottest indirect call in the simulator. Both arrays are indexed
  /// by NodeId, must cover every topology node and outlive the
  /// channel's use of them (the Network owns both; neither reallocates
  /// after wiring). Dead receivers count channel.rx_dead, exactly as
  /// the Network's hook did.
  void set_sink(Mac* const* macs, const std::uint8_t* alive) {
    sink_macs_ = macs;
    sink_alive_ = alive;
  }

  void add_tap(TapFn fn) { taps_.push_back(std::move(fn)); }
  [[nodiscard]] bool has_taps() const { return !taps_.empty(); }

  /// Attach a tracer: transmit() records kTxBytes at the sender (same
  /// value and call site as the channel.tx_bytes metric, so per-phase
  /// trace sums reconcile with the registry exactly) and each delivery
  /// records kRxBytes / kCollisionBytes / kLossBytes at the receiver.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] const ChannelConfig& config() const { return config_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Heap bytes held by the physical state (per-node carrier clocks and
  /// reception pools) and the per-shard acting contexts (in-flight
  /// frame pools). Capacity-based: reports the high-water pool sizes.
  [[nodiscard]] std::size_t footprint_bytes() const {
    std::size_t bytes = tx_until_.capacity() * sizeof(sim::SimTime) +
                        receptions_.capacity() * sizeof(std::vector<Reception>);
    for (const auto& pool : receptions_) bytes += pool.capacity() * sizeof(Reception);
    for (const ShardCtx& ctx : ctxs_) {
      bytes += ctx.inflight.capacity() * sizeof(Frame) +
               ctx.free_inflight.capacity() * sizeof(std::uint32_t);
      for (const Frame& f : ctx.inflight) bytes += f.payload.capacity();
    }
    return bytes;
  }

 private:
  /// One in-flight frame at one receiver. An entry lives in the
  /// receiver's slot pool from start-of-frame until the transmission's
  /// delivery pass consumes it (the corrupted flag must survive that
  /// whole window); slots are reclaimed by swap-removal, so a pool
  /// never shrinks its capacity — steady state allocates nothing.
  struct Reception {
    std::uint64_t tx_id;
    sim::SimTime end;
    bool corrupted;
    /// Half-duplex latch: the receiver was mid-transmission when this
    /// frame started (checked again against `now` at delivery).
    bool rx_while_tx;
  };

  /// Everything a transmission *acts through*, one instance per shard
  /// (exactly one in single-shard operation, bound to the constructor's
  /// scheduler/registry). The metric cells are per-context because the
  /// delivery hot loop bumps them from concurrent shard drains.
  struct ShardCtx {
    sim::Scheduler* sched = nullptr;
    sim::MetricRegistry* metrics = nullptr;
    /// In-flight frame pool for the sink path: one slot per
    /// transmission from start-of-frame until its delivery pass
    /// finishes, recycled with payload capacity retained. Safe because
    /// under the MAC sink no code transmits from inside deliver() —
    /// every MAC send goes through a scheduled backoff/SIFS event — so
    /// the pool cannot reallocate while a slot is being read.
    std::vector<Frame> inflight;
    std::vector<std::uint32_t> free_inflight;
    /// Low 48 bits of this shard's next transmission id.
    std::uint64_t next_tx_id = 0;

    /// Pre-bound counter handles (sim::MetricRegistry::Cell): deliver()
    /// touches one per receiver per frame, the single hottest metric
    /// path in the simulator.
    sim::MetricRegistry::Cell tx_frames{"channel.tx_frames"};
    sim::MetricRegistry::Cell tx_bytes{"channel.tx_bytes"};
    sim::MetricRegistry::Cell rx_ok{"channel.rx_ok"};
    sim::MetricRegistry::Cell rx_collided{"channel.rx_collided"};
    sim::MetricRegistry::Cell dst_collided{"channel.dst_collided"};
    sim::MetricRegistry::Cell rx_lost{"channel.rx_lost"};
    sim::MetricRegistry::Cell rx_halfduplex{"channel.rx_halfduplex"};
    sim::MetricRegistry::Cell dst_halfduplex{"channel.dst_halfduplex"};
    sim::MetricRegistry::Cell rx_dead{"channel.rx_dead"};
  };

  [[nodiscard]] ShardCtx& ctx_of(NodeId node) {
    return shard_of_ == nullptr ? ctxs_[0] : ctxs_[shard_of_[node]];
  }
  [[nodiscard]] const ShardCtx& ctx_of(NodeId node) const {
    return shard_of_ == nullptr ? ctxs_[0] : ctxs_[shard_of_[node]];
  }

  /// Is `node` transmitting at `now`? Internal paths pass the ACTING
  /// event's time explicitly: under the sharded gate another shard's
  /// clock may lag the acting event, so reading the remote scheduler
  /// would mis-evaluate carrier state.
  [[nodiscard]] bool transmitting_at(NodeId node, sim::SimTime now) const {
    return tx_until_[node] > now;
  }

  /// Stateless per-(frame, receiver) loss draw; see the header comment.
  [[nodiscard]] bool keyed_loss(NodeId sender, NodeId receiver,
                                const Frame& frame, sim::SimTime now) const;

  /// Deliver one transmission to every in-range receiver, in neighbour
  /// (= ascending id) order — the same order the per-receiver events
  /// used to fire in, since they shared (arrival time, schedule order).
  void deliver(NodeId sender, std::uint64_t tx_id, const Frame& frame,
               ShardCtx& ctx);

  const Topology& topo_;
  sim::MetricRegistry& metrics_;
  ChannelConfig config_;
  sim::Tracer* tracer_ = nullptr;
  DeliveryFn delivery_;
  /// Direct-dispatch sink (set_sink); non-null only under the
  /// production Network wiring, where it replaces `delivery_`.
  Mac* const* sink_macs_ = nullptr;
  const std::uint8_t* sink_alive_ = nullptr;
  std::vector<TapFn> taps_;

  /// Acting contexts: one per shard (one total when unsharded).
  std::vector<ShardCtx> ctxs_;
  const std::uint32_t* shard_of_ = nullptr;  ///< per node; null = unsharded
  const std::uint8_t* border_ = nullptr;     ///< per node; null = unsharded

  /// Seed of the keyed loss draw (forked once from the channel RNG, so
  /// it is a pure function of the network seed — identical across
  /// engines and shard counts).
  std::uint64_t loss_seed_;

  /// Per-node time until which the node is transmitting.
  std::vector<sim::SimTime> tx_until_;
  /// Per-node slot pools of in-flight receptions.
  std::vector<std::vector<Reception>> receptions_;
};

}  // namespace icpda::net
