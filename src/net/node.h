// Sensor node and the application interface protocols implement.
//
// A Node is the runtime identity of one sensor: id, position, radio
// (via the Network), its own RNG substream and an attached App. All
// protocol logic in this repository — TAG, SMART, cluster formation,
// CPDA, peer monitoring — is written as App subclasses; the substrate
// below the App line never changes between experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "net/packet.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/scheduler.h"

namespace icpda::net {

class Network;
class Node;

/// Protocol behaviour attached to a node. Handlers receive the Node so
/// one App instance could in principle be shared; in practice each node
/// owns its own App (they hold per-node protocol state).
class App {
 public:
  virtual ~App() = default;

  /// Called once when the simulation starts (base station first).
  virtual void start(Node& node) { (void)node; }

  /// An intact frame addressed to this node (or broadcast) arrived.
  virtual void on_receive(Node& node, const Frame& frame) {
    (void)node;
    (void)frame;
  }

  /// An intact frame addressed to *another* node was overheard
  /// (promiscuous mode). iCPDA peer monitoring lives here.
  virtual void on_overhear(Node& node, const Frame& frame) {
    (void)node;
    (void)frame;
  }

  /// A unicast frame was dropped after exhausting MAC retries.
  virtual void on_send_failed(Node& node, const Frame& frame) {
    (void)node;
    (void)frame;
  }
};

class Node {
 public:
  Node(NodeId id, Network& network, sim::Rng rng)
      : id_(id), network_(network), rng_(std::move(rng)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  /// Node 0 is the base station by convention.
  [[nodiscard]] bool is_base_station() const { return id_ == 0; }

  /// Liveness (fault injection). A dead node's radio is off and its
  /// application is frozen: sends are discarded, receptions and
  /// overhears are not dispatched, and timers scheduled through the
  /// node fire only if the node is alive at fire time. Toggled by
  /// Network::set_node_down / set_node_up, never directly.
  [[nodiscard]] bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  // Radio / timer facade (implemented in node.cc against Network).
  [[nodiscard]] sim::SimTime now() const;
  sim::EventId schedule(sim::SimTime delay, sim::EventFn fn);
  void cancel(sim::EventId id);
  void send(NodeId dst, FrameType type, Bytes payload);
  void broadcast(FrameType type, Bytes payload);
  /// Fail (on_send_failed) all queued frames to a neighbour this node
  /// has concluded is dead; see Mac::fail_queued_to.
  void purge_sends_to(NodeId dst);
  [[nodiscard]] sim::MetricRegistry& metrics();
  [[nodiscard]] sim::Tracer& tracer();
  [[nodiscard]] const Point& position() const;

  void attach_app(std::unique_ptr<App> app) { app_ = std::move(app); }
  [[nodiscard]] App* app() { return app_.get(); }

  // Network-internal dispatch.
  void dispatch_receive(const Frame& f) {
    if (app_ && alive_) app_->on_receive(*this, f);
  }
  void dispatch_overhear(const Frame& f) {
    if (app_ && alive_) app_->on_overhear(*this, f);
  }
  void dispatch_send_failed(const Frame& f) {
    if (app_ && alive_) app_->on_send_failed(*this, f);
  }

 private:
  NodeId id_;
  Network& network_;
  sim::Rng rng_;
  bool alive_ = true;
  std::unique_ptr<App> app_;
};

}  // namespace icpda::net
