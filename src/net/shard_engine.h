// Conservative parallel discrete-event engine over per-shard schedulers.
//
// The Network partitions the field into spatial shards (sim/shard.h),
// gives each shard its own sim::Scheduler, and runs them here on a
// fixed worker pool. Correctness rests on three invariants the
// substrate maintains (DESIGN.md §5j):
//
//  1. Insert locality — every event an event schedules goes into its
//     OWN shard's scheduler (applications, MACs and fault injection
//     schedule per owner; a transmission's delivery event lives on the
//     sender's scheduler).
//  2. State locality — an event NOT tagged border only reads/writes
//     state of nodes in its own shard (an interior node's neighbours
//     are all local, by construction of the shard plan).
//  3. Lookahead — a drained (non-border) event only ever spawns border
//     events at least `lookahead` after itself: MAC attempts are >= one
//     contention slot out, deliveries >= min-frame airtime +
//     propagation out, and the one sub-lookahead spawn (the SIFS ACK)
//     is forced into the gate by border-tagging the delivery that
//     solicits it (Channel::transmit).
//
// Round structure: one ReductionBarrier per drain round. The last
// worker to arrive (serially, under the barrier) alternates two moves
// until a parallel drain is possible: while the globally-earliest
// pending event is (or ties with) a border event, it gates that ONE
// clock instant — every event AT the earliest border time, merged
// across shards in ascending canonical EventKey order, exactly the
// order the single-shard engine would use — and re-plans; once a
// border-free prefix exists, it plans the drain segment
// [K, min(first border time, K + lookahead, horizon)) and releases
// the workers to drain their shards in parallel, each in local
// canonical order. Border instants serialize; everything between them
// drains concurrently (PR-9 serialized a gated window's entire tail
// instead — see DESIGN.md §5k for the delta and the proof sketch).
// Because same-segment cross-shard events are causally independent
// (invariants 2+3), the parallel drain commutes with the canonical
// order — the observable execution is bit-identical to the
// single-shard engine.
//
// serialize_all runs every event through the gate (used when arbitrary
// shared state is attached: adversary co-ordination, channel taps,
// scheduler-span tracing). Still the same canonical order — just zero
// parallelism.
#pragma once

#include <cstdint>
#include <vector>

#include "runner/thread_pool.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace icpda::net {

class ShardEngine {
 public:
  /// Window/gate occupancy of the last run (how much parallelism the
  /// lookahead actually exposed).
  struct Stats {
    std::uint64_t rounds = 0;          ///< parallel drain segments run
    std::uint64_t gate_rounds = 0;     ///< border instants serialized
    std::uint64_t gate_events = 0;     ///< events executed inside gates
    std::uint64_t parallel_events = 0; ///< events executed in drains
    /// Drained events that left a border event pending below their own
    /// window bound — a violation of invariant 3. Always zero unless
    /// the substrate's lookahead accounting is broken; counted (and
    /// asserted on by tests) rather than assumed.
    std::uint64_t lookahead_violations = 0;
  };

  /// `scheds` are borrowed (the Network owns them); `pool` must have at
  /// least scheds.size() workers or the barrier deadlocks.
  ShardEngine(std::vector<sim::Scheduler*> scheds, sim::SimTime lookahead,
              runner::ThreadPool& pool);

  /// Run every shard up to and including `horizon` (or to exhaustion if
  /// infinite), then advance all shard clocks to a common end time,
  /// which is returned. Not reentrant; call from one thread.
  sim::SimTime run(sim::SimTime horizon, bool serialize_all);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] sim::SimTime lookahead() const { return lookahead_; }
  [[nodiscard]] std::size_t shard_count() const { return scheds_.size(); }

 private:
  /// Execute every pending event with fire time < bound, across all
  /// shards, in ascending canonical key order (k-way merge by repeated
  /// peek). Runs single-threaded under the barrier.
  void run_gate(sim::SimTime bound);

  std::vector<sim::Scheduler*> scheds_;
  sim::SimTime lookahead_;
  runner::ThreadPool& pool_;
  Stats stats_;
};

}  // namespace icpda::net
