// The Network: one simulated WSN deployment.
//
// Owns the scheduler, topology, channel, per-node MACs and Nodes, and
// wires the delivery path channel -> MAC -> node -> app. Experiments
// construct a Network from a NetworkConfig (or a pre-built Topology),
// attach protocol Apps, call start(), and run the scheduler.
//
// A Network is a self-contained world: no globals, fully deterministic
// in (config, seed), cheap enough to build thousands per benchmark.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/channel.h"
#include "net/mac.h"
#include "net/node.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace icpda::net {

struct NetworkConfig {
  std::size_t node_count = 400;
  double field_width_m = 400.0;
  double field_height_m = 400.0;
  double range_m = 50.0;
  bool base_station_at_center = true;
  std::uint64_t seed = 1;
  ChannelConfig channel;
  MacConfig mac;
};

class Network {
 public:
  /// Random uniform deployment per `config`.
  explicit Network(const NetworkConfig& config);

  /// Explicit topology (tests build hand-crafted graphs).
  Network(Topology topology, const NetworkConfig& config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] NodeId base_station() const { return 0; }

  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] Channel& channel() { return *channel_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] sim::MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] Mac& mac(NodeId id) { return *macs_.at(id); }

  // ---- Structured tracing -------------------------------------------
  // Every Network owns a Tracer (disabled and ring-less by default, so
  // untraced runs pay one branch per instrumented site). Enabling is
  // purely observational: the traced run is event-for-event identical
  // to the untraced one.

  [[nodiscard]] sim::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const sim::Tracer& tracer() const { return tracer_; }

  /// Allocate per-node rings and start recording.
  void enable_trace(sim::Tracer::Config cfg) { tracer_.enable(size(), cfg); }
  void enable_trace() { enable_trace(sim::Tracer::Config{}); }

  // ---- Liveness (fault injection) -----------------------------------
  // A down node neither transmits, receives nor overhears: its MAC
  // queue is flushed, its radio stops decoding (so unicasts to it
  // exhaust the sender's retries) and its application timers are
  // frozen. The base station (node 0) is exempt — it is the epoch
  // driver, and the paper's fault model never crashes the sink.

  /// Take a node down (crash or outage start). No-op for the BS.
  void set_node_down(NodeId id);
  /// Bring a node back up (outage end). Its protocol state survived
  /// (apps are not re-created) but its MAC queue and timers are gone.
  void set_node_up(NodeId id);
  [[nodiscard]] bool node_alive(NodeId id) const { return nodes_.at(id)->alive(); }
  /// Nodes currently up, including the base station.
  [[nodiscard]] std::size_t live_count() const;

  /// Root RNG: fork substreams from here for experiment-level draws so
  /// they do not disturb protocol randomness.
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  /// Attach an App built per node. Factory receives the Node.
  template <typename Factory>
  void attach_apps(Factory&& make_app) {
    for (auto& n : nodes_) n->attach_app(make_app(*n));
  }

  /// Call App::start on every node, base station first (it initiates
  /// the query), then run nothing — callers drive the scheduler.
  void start();

  /// Convenience: start() then run the scheduler until quiescent or
  /// until `horizon`, whichever first. Returns simulated end time.
  sim::SimTime run(sim::SimTime horizon = sim::SimTime::infinity());

 private:
  void wire();

  NetworkConfig config_;
  sim::Rng rng_;
  sim::Scheduler scheduler_;
  sim::MetricRegistry metrics_;
  sim::Tracer tracer_;
  Topology topology_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Mac>> macs_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Dense raw-pointer mirror of macs_, handed to Channel::set_sink —
  /// the delivery loop indexes it once per receiver per frame.
  std::vector<Mac*> mac_raw_;
  /// Dense mirror of each node's alive flag, maintained by
  /// set_node_down/up: the delivery path checks liveness once per
  /// receiver per frame, and a byte load from this array replaces a
  /// pointer chase into the heap-scattered Node objects.
  std::vector<std::uint8_t> alive_;
};

}  // namespace icpda::net
