// The Network: one simulated WSN deployment.
//
// Owns the scheduler, topology, channel, per-node MACs and Nodes, and
// wires the delivery path channel -> MAC -> node -> app. Experiments
// construct a Network from a NetworkConfig (or a pre-built Topology),
// attach protocol Apps, call start(), and run the scheduler.
//
// A Network is a self-contained world: no globals, fully deterministic
// in (config, seed), cheap enough to build thousands per benchmark.
//
// Sharded execution (NetworkConfig::shards > 1): the field is cut into
// event-load-balanced 2-D tiles (sim/shard.h), each tile gets its own
// sim::Scheduler and sim::MetricRegistry, and run() drives them through
// the conservative-PDES ShardEngine on an owned worker pool instead of
// the single scheduler. The partition is invisible to protocol code —
// nodes schedule through scheduler_for()/metrics_for(), which collapse
// to the single scheduler/registry when unsharded — and the engine's
// canonical event order reproduces the single-shard run bit-for-bit
// (DESIGN.md §5j). The service layer drives the scheduler directly and
// is not shard-aware: keep shards == 1 there.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/channel.h"
#include "net/mac.h"
#include "net/node.h"
#include "net/shard_engine.h"
#include "net/topology.h"
#include "runner/thread_pool.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/shard.h"
#include "sim/trace.h"

namespace icpda::net {

struct NetworkConfig {
  std::size_t node_count = 400;
  double field_width_m = 400.0;
  double field_height_m = 400.0;
  double range_m = 50.0;
  bool base_station_at_center = true;
  std::uint64_t seed = 1;
  /// Spatial shards for parallel execution (1 = classic single-engine
  /// run). Clamped to the node count; results are byte-identical for
  /// every value.
  std::size_t shards = 1;
  ChannelConfig channel;
  MacConfig mac;
};

class Network {
 public:
  /// Random uniform deployment per `config`.
  explicit Network(const NetworkConfig& config);

  /// Explicit topology (tests build hand-crafted graphs).
  Network(Topology topology, const NetworkConfig& config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] NodeId base_station() const { return 0; }

  /// The single-engine scheduler. In a sharded network this is a
  /// detached, empty scheduler — use scheduler_for()/now() instead
  /// (every in-tree caller is either per-node or single-shard-only).
  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }
  /// Home-shard scheduler of `id` (the scheduler when unsharded).
  [[nodiscard]] sim::Scheduler& scheduler_for(NodeId id) {
    return engine_ ? *shard_scheds_[plan_.shard_of[id]] : scheduler_;
  }
  /// Home-shard registry of `id` (the main registry when unsharded).
  /// Per-shard registries are drained into metrics() after every run,
  /// so post-run readers never need this.
  [[nodiscard]] sim::MetricRegistry& metrics_for(NodeId id) {
    return engine_ ? *shard_metrics_[plan_.shard_of[id]] : metrics_;
  }
  /// Current simulation time, correct under either engine. All shard
  /// clocks agree outside run() (the engine aligns them on exit).
  [[nodiscard]] sim::SimTime now() const {
    return engine_ ? shard_scheds_[0]->now() : scheduler_.now();
  }

  /// Events executed so far, summed across every engine — the number
  /// the shard-determinism suite reconciles EXACTLY against the
  /// single-shard reference (and against the ShardEngine's own
  /// gate/parallel accounting).
  [[nodiscard]] std::uint64_t executed_events() const {
    std::uint64_t total = scheduler_.executed();
    for (const auto& s : shard_scheds_) total += s->executed();
    return total;
  }

  [[nodiscard]] Channel& channel() { return *channel_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] sim::MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] Mac& mac(NodeId id) { return *macs_.at(id); }

  // ---- Sharded engine -----------------------------------------------

  /// Effective shard count (1 when running the single engine).
  [[nodiscard]] std::size_t shard_count() const {
    return engine_ ? plan_.shard_count : 1;
  }
  /// The spatial partition (empty when unsharded).
  [[nodiscard]] const sim::ShardPlan& shard_plan() const { return plan_; }
  /// Engine of the last/current sharded run; null when unsharded.
  [[nodiscard]] const ShardEngine* shard_engine() const { return engine_.get(); }
  /// Force every event through the engine's serialized gate. run() also
  /// turns this on by itself when arbitrary cross-shard shared state is
  /// attached (channel taps, scheduler-span tracing); protocol drivers
  /// set it for adversary runs (shared AdversaryState). Sticky.
  void set_serialize_all(bool serialize) { serialize_all_ = serialize; }

  // ---- Structured tracing -------------------------------------------
  // Every Network owns a Tracer (disabled and ring-less by default, so
  // untraced runs pay one branch per instrumented site). Enabling is
  // purely observational: the traced run is event-for-event identical
  // to the untraced one.

  [[nodiscard]] sim::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const sim::Tracer& tracer() const { return tracer_; }

  /// Allocate per-node rings and start recording.
  void enable_trace(sim::Tracer::Config cfg) { tracer_.enable(size(), cfg); }
  void enable_trace() { enable_trace(sim::Tracer::Config{}); }

  // ---- Liveness (fault injection) -----------------------------------
  // A down node neither transmits, receives nor overhears: its MAC
  // queue is flushed, its radio stops decoding (so unicasts to it
  // exhaust the sender's retries) and its application timers are
  // frozen. The base station (node 0) is exempt — it is the epoch
  // driver, and the paper's fault model never crashes the sink.

  /// Take a node down (crash or outage start). No-op for the BS.
  void set_node_down(NodeId id);
  /// Bring a node back up (outage end). Its protocol state survived
  /// (apps are not re-created) but its MAC queue and timers are gone.
  void set_node_up(NodeId id);
  [[nodiscard]] bool node_alive(NodeId id) const { return nodes_.at(id)->alive(); }
  /// Nodes currently up, including the base station.
  [[nodiscard]] std::size_t live_count() const;

  /// Root RNG: fork substreams from here for experiment-level draws so
  /// they do not disturb protocol randomness.
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  /// Attach an App built per node. Factory receives the Node.
  template <typename Factory>
  void attach_apps(Factory&& make_app) {
    for (auto& n : nodes_) n->attach_app(make_app(*n));
  }

  /// Call App::start on every node, base station first (it initiates
  /// the query), then run nothing — callers drive the scheduler.
  void start();

  /// Convenience: start() then run until quiescent or until `horizon`,
  /// whichever first. Returns simulated end time. Sharded networks run
  /// the ShardEngine here and fold the per-shard registries into
  /// metrics() (in shard order — deterministic) before returning.
  sim::SimTime run(sim::SimTime horizon = sim::SimTime::infinity());

  // ---- Footprint accounting -----------------------------------------

  /// Per-subsystem heap accounting for the memory-diet work
  /// (tools/mem_footprint.py gates bytes-per-node against a checked-in
  /// baseline). Capacity-based high-water numbers; `objects` covers the
  /// fixed sizeof() of every Mac/Node/App-owning allocation, the
  /// category-specific fields count only what those objects point at.
  struct Footprint {
    std::size_t topology = 0;    ///< positions + CSR adjacency
    std::size_t schedulers = 0;  ///< event slabs, all engines
    std::size_t channel = 0;     ///< carrier clocks, reception + frame pools
    std::size_t macs = 0;        ///< queues, dedup tables, callbacks
    std::size_t metrics = 0;     ///< all registries (main + per-shard)
    std::size_t plan = 0;        ///< shard partition arrays
    std::size_t objects = 0;     ///< sizeof of per-node objects + ptr arrays
    [[nodiscard]] std::size_t total() const {
      return topology + schedulers + channel + macs + metrics + plan + objects;
    }
  };
  [[nodiscard]] Footprint footprint() const;

 private:
  void wire();

  NetworkConfig config_;
  sim::Rng rng_;
  sim::Scheduler scheduler_;
  sim::MetricRegistry metrics_;
  sim::Tracer tracer_;
  Topology topology_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Mac>> macs_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Dense raw-pointer mirror of macs_, handed to Channel::set_sink —
  /// the delivery loop indexes it once per receiver per frame.
  std::vector<Mac*> mac_raw_;
  /// Dense mirror of each node's alive flag, maintained by
  /// set_node_down/up: the delivery path checks liveness once per
  /// receiver per frame, and a byte load from this array replaces a
  /// pointer chase into the heap-scattered Node objects.
  std::vector<std::uint8_t> alive_;

  // Sharded engine state; all empty/null when config_.shards == 1.
  sim::ShardPlan plan_;
  std::vector<std::unique_ptr<sim::Scheduler>> shard_scheds_;
  std::vector<std::unique_ptr<sim::MetricRegistry>> shard_metrics_;
  std::unique_ptr<runner::ThreadPool> pool_;
  std::unique_ptr<ShardEngine> engine_;
  bool serialize_all_ = false;
};

}  // namespace icpda::net
