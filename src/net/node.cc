#include "net/node.h"

#include "net/network.h"

namespace icpda::net {

sim::SimTime Node::now() const { return network_.scheduler_for(id_).now(); }

sim::EventId Node::schedule(sim::SimTime delay, sim::EventFn fn) {
  // Liveness gate at fire time, not at schedule time: a node that
  // crashes loses its pending application timers (its program state is
  // gone), and a node that was down when the timer was set may be back
  // up when it fires. Timers run on the node's home-shard scheduler,
  // owner-tagged, and are never border events: application handlers
  // only touch the node's own state and send through its own MAC.
  return network_.scheduler_for(id_).after(
      delay,
      [this, fn = std::move(fn)]() mutable {
        if (alive_) fn();
      },
      id_);
}

void Node::cancel(sim::EventId id) { network_.scheduler_for(id_).cancel(id); }

void Node::send(NodeId dst, FrameType type, Bytes payload) {
  if (!alive_) return;  // dead radio: nothing leaves the node
  Frame f;
  f.dst = dst;
  f.type = type;
  f.payload = std::move(payload);
  network_.mac(id_).send(std::move(f));
}

void Node::broadcast(FrameType type, Bytes payload) {
  send(kBroadcast, type, std::move(payload));
}

void Node::purge_sends_to(NodeId dst) {
  if (!alive_) return;
  network_.mac(id_).fail_queued_to(dst);
}

sim::MetricRegistry& Node::metrics() { return network_.metrics_for(id_); }

sim::Tracer& Node::tracer() { return network_.tracer(); }

const Point& Node::position() const { return network_.topology().position(id_); }

}  // namespace icpda::net
