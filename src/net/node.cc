#include "net/node.h"

#include "net/network.h"

namespace icpda::net {

sim::SimTime Node::now() const { return network_.scheduler().now(); }

sim::EventId Node::schedule(sim::SimTime delay, sim::EventFn fn) {
  return network_.scheduler().after(delay, std::move(fn));
}

void Node::cancel(sim::EventId id) { network_.scheduler().cancel(id); }

void Node::send(NodeId dst, FrameType type, Bytes payload) {
  Frame f;
  f.dst = dst;
  f.type = type;
  f.payload = std::move(payload);
  network_.mac(id_).send(std::move(f));
}

void Node::broadcast(FrameType type, Bytes payload) {
  send(kBroadcast, type, std::move(payload));
}

sim::MetricRegistry& Node::metrics() { return network_.metrics(); }

const Point& Node::position() const { return network_.topology().position(id_); }

}  // namespace icpda::net
