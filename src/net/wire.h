// Byte-level serialization for protocol messages.
//
// Protocol payloads travel through the simulated radio as real byte
// vectors — link-level encryption (crypto/cipher.h) operates on these
// bytes, and the byte counts feed the communication-overhead figures.
// The format is little-endian fixed-width fields plus length-prefixed
// containers; no alignment games, no UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace icpda::net {

using Bytes = std::vector<std::uint8_t>;

/// Serializer: append-only writer over a byte vector.
class WireWriter {
 public:
  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }

  /// Length-prefixed (u32) raw bytes.
  void blob(const Bytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Length-prefixed (u32) vector of doubles.
  void f64_vec(const std::vector<double>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const double x : v) f64(x);
  }

  /// Length-prefixed (u32) vector of u32.
  void u32_vec(const std::vector<std::uint32_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const std::uint32_t x : v) u32(x);
  }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Deserializer: bounds-checked reader; throws WireError on truncation
/// (which the protocol layers surface as a malformed-frame drop).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class WireReader {
 public:
  explicit WireReader(const Bytes& buf) : buf_(buf) {}

  [[nodiscard]] bool done() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }

  double f64() {
    const std::uint64_t bits = get_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  Bytes blob() {
    const std::uint32_t n = u32();
    need(n);
    Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
              buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::vector<double> f64_vec() {
    const std::uint32_t n = u32();
    need(static_cast<std::size_t>(n) * 8);
    std::vector<double> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(f64());
    return out;
  }

  std::vector<std::uint32_t> u32_vec() {
    const std::uint32_t n = u32();
    need(static_cast<std::size_t>(n) * 4);
    std::vector<std::uint32_t> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(u32());
    return out;
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > buf_.size()) throw WireError("wire: truncated message");
  }

  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(buf_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  const Bytes& buf_;
  std::size_t pos_ = 0;
};

}  // namespace icpda::net
