#include "net/geometry.h"

#include <numbers>
#include <stdexcept>

namespace icpda::net {

Field::Field(double width, double height) : width_(width), height_(height) {
  if (!(width > 0) || !(height > 0)) {
    throw std::invalid_argument("Field: dimensions must be positive");
  }
}

std::vector<Point> Field::sample_n(sim::Rng& rng, std::size_t n) const {
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back(sample(rng));
  return pts;
}

double Field::expected_degree(std::size_t n, double range) const {
  if (n == 0) return 0.0;
  return static_cast<double>(n - 1) * std::numbers::pi * range * range / area();
}

}  // namespace icpda::net
