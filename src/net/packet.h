// Link-layer frame.
//
// A Frame is what the radio actually transmits: link-layer header
// (source, destination, sequence number, payload-type discriminator)
// plus an opaque payload. Byte accounting — the basis of the
// communication-overhead experiments — charges the 802.15.4-like
// header/trailer overhead declared here.
#pragma once

#include <cstdint>

#include "net/topology.h"
#include "net/wire.h"

namespace icpda::net {

/// Link-layer broadcast address.
inline constexpr NodeId kBroadcast = 0xFFFFFFFE;

/// Payload-type discriminator. The link layer reserves 0 for MAC ACKs;
/// protocols define their own values (see proto/messages.h).
using FrameType = std::uint16_t;
inline constexpr FrameType kMacAck = 0;

/// Bytes of PHY preamble + link header + CRC charged to every frame,
/// loosely modelled on 802.15.4 (SHR+PHR+MHR+FCS for short addressing).
inline constexpr std::size_t kFrameOverheadBytes = 17;

/// Size of a MAC-level ACK frame on the air.
inline constexpr std::size_t kAckBytes = kFrameOverheadBytes + 3;

struct Frame {
  NodeId src = kNoNode;
  NodeId dst = kBroadcast;
  std::uint32_t seq = 0;
  FrameType type = 0;
  Bytes payload;

  [[nodiscard]] bool is_broadcast() const { return dst == kBroadcast; }

  /// Total on-air size in bytes (header overhead + payload).
  [[nodiscard]] std::size_t air_bytes() const {
    return kFrameOverheadBytes + payload.size();
  }
};

}  // namespace icpda::net
