// Compact FIFO of link-layer frames.
//
// std::deque was the natural container for the MAC transmit queue, but
// libstdc++'s deque pays a ~576-byte floor per instance (the chunk map
// plus one 512-byte chunk, allocated in the default constructor) —
// real money when there is one queue per node and the N=1M target
// means a million of them, most of which hold zero or one frame at any
// instant. This vector-backed queue starts at 24 bytes and allocates
// nothing until the first frame is queued.
//
// pop_front() advances a head index instead of shifting; the dead
// prefix is compacted away once it outgrows the live region, so a
// sequence of k pushes and pops costs O(k) amortized moves, same as
// the deque. Logical indexing ([], erase) is what Mac::fail_queued_to
// needs to purge doomed frames mid-queue.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace icpda::net {

class FrameQueue {
 public:
  [[nodiscard]] bool empty() const { return head_ == buf_.size(); }
  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }

  [[nodiscard]] Frame& front() { return buf_[head_]; }
  [[nodiscard]] const Frame& front() const { return buf_[head_]; }

  /// Logical index: [0] is the front.
  [[nodiscard]] Frame& operator[](std::size_t i) { return buf_[head_ + i]; }
  [[nodiscard]] const Frame& operator[](std::size_t i) const {
    return buf_[head_ + i];
  }

  void push_back(Frame f) { buf_.push_back(std::move(f)); }

  void pop_front() {
    ++head_;
    compact();
  }

  /// Remove the frame at logical index `i` (shifts the tail down).
  void erase(std::size_t i) {
    buf_.erase(buf_.begin() + static_cast<std::ptrdiff_t>(head_ + i));
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

  /// Heap bytes held (frame slots + their payload buffers).
  [[nodiscard]] std::size_t footprint_bytes() const {
    std::size_t bytes = buf_.capacity() * sizeof(Frame);
    for (const Frame& f : buf_) bytes += f.payload.capacity();
    return bytes;
  }

 private:
  void compact() {
    if (head_ == buf_.size()) {
      // Empty: reset in place, capacity retained for the next burst.
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 16 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<Frame> buf_;
  std::size_t head_ = 0;
};

}  // namespace icpda::net
