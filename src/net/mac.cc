#include "net/mac.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/node.h"
#include "net/wire.h"
#include "sim/log.h"

namespace icpda::net {

Mac::Mac(NodeId self, Channel& channel, sim::Scheduler& sched, sim::Rng rng,
         sim::MetricRegistry& metrics, MacConfig config)
    : self_(self),
      channel_(channel),
      sched_(sched),
      rng_(rng),
      metrics_(metrics),
      config_(config),
      cw_(config.cw_min) {}

void Mac::power_off() {
  down_ = true;
  if (!queue_.empty()) metrics_.add("mac.flushed", queue_.size());
  queue_.clear();
  state_ = State::kIdle;
  retries_ = 0;
  cw_ = config_.cw_min;
  if (ack_timer_armed_) {
    sched_.cancel(ack_timer_);
    ack_timer_armed_ = false;
  }
}

void Mac::power_on() { down_ = false; }

void Mac::trace_drop(const Frame& frame) {
  if (tracer_ && tracer_->enabled()) {
    tracer_->counter(self_, sim::TraceCounter::kDropBytes, frame.air_bytes(),
                     sched_.now());
  }
}

void Mac::fail_queued_to(NodeId dst) {
  if (queue_.empty()) return;
  // The front frame is in service whenever the MAC is not idle; its
  // ladder is left to finish. Collect first, then notify: callbacks
  // re-enter send() and must see a consistent queue.
  std::vector<Frame> doomed;
  const std::size_t first = state_ == State::kIdle ? 0 : 1;
  for (std::size_t i = first; i < queue_.size();) {
    if (queue_[i].dst == dst) {
      doomed.push_back(std::move(queue_[i]));
      queue_.erase(i);
    } else {
      ++i;
    }
  }
  if (doomed.empty()) return;
  metrics_.add("mac.purged", doomed.size());
  for (const Frame& f : doomed) {
    trace_drop(f);
    if (sink_ != nullptr) {
      sink_->dispatch_send_failed(f);
    } else if (cbs_ && cbs_->on_send_failed) {
      cbs_->on_send_failed(f);
    }
  }
}

void Mac::send(Frame frame) {
  if (down_) {
    metrics_.add("mac.down_drop");
    trace_drop(frame);
    return;
  }
  frame.src = self_;
  frame.seq = next_seq_++;
  if (queue_.size() >= config_.queue_limit) {
    metrics_.add("mac.queue_drop");
    trace_drop(frame);
    if (sink_ != nullptr) {
      sink_->dispatch_send_failed(frame);
    } else if (cbs_ && cbs_->on_send_failed) {
      cbs_->on_send_failed(frame);
    }
    return;
  }
  queue_.push_back(std::move(frame));
  enqueued_.add(metrics_);
  if (state_ == State::kIdle) try_start();
}

sim::SimTime Mac::random_backoff() {
  const std::uint64_t slots = rng_.below(cw_) + 1;
  if (tracer_ && tracer_->enabled() && tracer_->config().mac_events) {
    tracer_->counter(self_, sim::TraceCounter::kBackoffSlots, slots, sched_.now());
  }
  return sim::seconds(static_cast<double>(slots) * config_.slot_time_s);
}

void Mac::try_start() {
  if (queue_.empty()) {
    state_ = State::kIdle;
    return;
  }
  // Always take an initial backoff: it desynchronises flood responses,
  // which otherwise all fire on the same scheduler tick and collide.
  defer();
}

void Mac::defer() {
  state_ = State::kDeferring;
  const sim::SimTime wait = random_backoff();
  // Owner-tagged so canonical event order is engine-independent;
  // border-tagged on boundary nodes because the attempt transmits (and
  // a boundary node's frames reach foreign shards). The wait is always
  // >= one contention slot >= the engine lookahead, so the tag never
  // trips the lookahead contract.
  sched_.after(
      wait,
      [this] {
        if (state_ != State::kDeferring) return;
        if (channel_.busy_at(self_)) {
          cs_busy_.add(metrics_);
          cw_ = std::min(cw_ * 2, config_.cw_max);
          defer();
        } else {
          begin_transmission();
        }
      },
      self_, border_);
}

void Mac::begin_transmission() {
  state_ = State::kTransmitting;
  tx_attempts_.add(metrics_);
  channel_.transmit(self_, queue_.front(), [this] { on_tx_done(); });
}

void Mac::on_tx_done() {
  if (state_ != State::kTransmitting) return;
  const Frame& cur = queue_.front();
  if (cur.is_broadcast() || cur.type == kMacAck) {
    finish_current(true);
    return;
  }
  state_ = State::kAwaitingAck;
  ack_timer_ = sched_.after(
      sim::seconds(config_.ack_timeout_s),
      [this] {
        ack_timer_armed_ = false;
        on_ack_timeout();
      },
      self_);
  ack_timer_armed_ = true;
}

void Mac::on_ack_timeout() {
  if (state_ != State::kAwaitingAck) return;
  ack_timeout_count_.add(metrics_);
  ++retries_;
  if (retries_ > config_.max_retries) {
    finish_current(false);
    return;
  }
  cw_ = std::min(cw_ * 2, config_.cw_max);
  defer();
}

void Mac::finish_current(bool success) {
  Frame done = std::move(queue_.front());
  queue_.pop_front();
  state_ = State::kIdle;
  retries_ = 0;
  cw_ = config_.cw_min;
  if (ack_timer_armed_) {
    sched_.cancel(ack_timer_);
    ack_timer_armed_ = false;
  }
  if (success) {
    tx_ok_.add(metrics_);
  } else {
    metrics_.add("mac.tx_failed");
    trace_drop(done);
    if (sink_ != nullptr) {
      sink_->dispatch_send_failed(done);
    } else if (cbs_ && cbs_->on_send_failed) {
      cbs_->on_send_failed(done);
    }
  }
  if (!queue_.empty()) try_start();
}

void Mac::send_ack(const Frame& data_frame) {
  WireWriter w;
  w.u32(data_frame.seq);
  Frame ack;
  ack.src = self_;
  ack.dst = data_frame.src;
  ack.seq = 0;  // ACKs are identified by the payload's echoed sequence.
  ack.type = kMacAck;
  ack.payload = std::move(w).take();
  // ACKs bypass contention: fire after a short inter-frame space, like
  // 802.11/802.15.4. They can still collide — that is physics. The SIFS
  // is shorter than the engine lookahead, which is exactly why a border
  // node's ACK send must be border-tagged — and why the delivery that
  // solicits it runs inside the gate (see Channel::transmit).
  sched_.after(
      sim::seconds(config_.sifs_s),
      [this, ack = std::move(ack)] {
        ack_sent_.add(metrics_);
        channel_.transmit(self_, ack, nullptr);
      },
      self_, border_);
}

void Mac::handle_reception(const Frame& frame, ReceptionStatus status) {
  if (down_) return;  // radio off: cannot decode, cannot ACK
  if (status != ReceptionStatus::kOk) return;

  if (frame.type == kMacAck) {
    if (frame.dst != self_) return;
    if (state_ != State::kAwaitingAck || queue_.empty()) return;
    try {
      WireReader r(frame.payload);
      const std::uint32_t acked_seq = r.u32();
      if (acked_seq == queue_.front().seq && frame.src == queue_.front().dst) {
        ack_received_.add(metrics_);
        finish_current(true);
      }
    } catch (const WireError&) {
      metrics_.add("mac.malformed_ack");
    }
    return;
  }

  // Broadcasts are transmitted exactly once (no ACK, hence no
  // retransmission) and MAC sequence numbers are strictly monotone per
  // sender for the lifetime of the run (send() stamps src and seq;
  // power cycles reuse the Mac, so next_seq_ never resets), so a
  // broadcast can never repeat a previously seen sequence: skip the
  // per-sender dedup-table touch — a near-guaranteed cache miss on the
  // hottest reception path (floods are broadcast).
  if (frame.is_broadcast()) {
    if (sink_ != nullptr) {
      sink_->dispatch_receive(frame);
    } else if (cbs_ && cbs_->on_deliver) {
      cbs_->on_deliver(frame);
    }
    return;
  }

  // Duplicate suppression (unicast): sequence numbers are monotone per
  // sender (one frame in flight at a time), so a repeat means the
  // sender missed our ACK and retransmitted. Re-ACK but do not
  // re-deliver. The table is linear-scanned: only one-hop neighbours
  // can be heard, so it holds at most degree-many entries and in
  // practice a handful (cluster members unicast to their head only).
  std::uint32_t* last_seen = nullptr;
  for (SeenSeq& e : last_seen_) {
    if (e.src == frame.src) {
      last_seen = &e.seq;
      break;
    }
  }
  if (last_seen == nullptr) {
    last_seen_.push_back(SeenSeq{frame.src, 0});
    last_seen = &last_seen_.back().seq;
  }
  const bool duplicate = *last_seen != 0 && frame.seq <= *last_seen;
  if (!duplicate) *last_seen = frame.seq;

  if (frame.dst == self_) {
    send_ack(frame);
    if (duplicate) {
      dup_suppressed_.add(metrics_);
      return;
    }
    if (sink_ != nullptr) {
      sink_->dispatch_receive(frame);
    } else if (cbs_ && cbs_->on_deliver) {
      cbs_->on_deliver(frame);
    }
  } else {
    // Addressed elsewhere: promiscuous overhearing path.
    if (duplicate) {
      dup_suppressed_.add(metrics_);
      return;
    }
    if (sink_ != nullptr) {
      sink_->dispatch_overhear(frame);
    } else if (cbs_ && cbs_->on_overhear) {
      cbs_->on_overhear(frame);
    }
  }
}

std::size_t Mac::footprint_bytes() const {
  std::size_t bytes = queue_.footprint_bytes();
  bytes += last_seen_.capacity() * sizeof(SeenSeq);
  if (cbs_) bytes += sizeof(Callbacks);
  return bytes;
}

}  // namespace icpda::net
