// CSMA/CA-lite medium access control.
//
// One Mac instance per node. Upper layers enqueue frames; the MAC
// carrier-senses, backs off with binary-exponential contention windows,
// transmits, and for unicast frames waits for a link-level ACK and
// retransmits a bounded number of times. Broadcast frames are sent once
// after a mandatory desynchronising backoff (floods would otherwise
// collide en masse — exactly the behaviour the paper's loss numbers
// come from, so we keep it physical rather than idealised).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/channel.h"
#include "net/frame_queue.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "sim/scheduler.h"

namespace icpda::net {

class Node;

struct MacConfig {
  /// Contention slot. Deliberately on the order of a frame airtime
  /// (~0.6 ms at 1 Mbps for a typical protocol frame): with slots much
  /// shorter than a frame, two stations picking nearby slots still
  /// overlap and backoff stops resolving contention.
  double slot_time_s = 400e-6;
  double sifs_s = 10e-6;           ///< gap before an ACK
  std::uint32_t cw_min = 32;       ///< initial contention window (slots)
  std::uint32_t cw_max = 1024;     ///< max contention window
  std::uint32_t max_retries = 7;   ///< unicast retransmissions before giving up
  double ack_timeout_s = 1.2e-3;   ///< unicast ACK wait
  std::size_t queue_limit = 256;   ///< tail-drop beyond this depth
};

class Mac {
 public:
  /// Upper-layer hooks. `on_deliver` fires for intact frames addressed
  /// to this node or broadcast; `on_overhear` for intact frames
  /// addressed elsewhere; `on_send_failed` when unicast retries are
  /// exhausted (or the queue overflows).
  struct Callbacks {
    std::function<void(const Frame&)> on_deliver;
    std::function<void(const Frame&)> on_overhear;
    std::function<void(const Frame&)> on_send_failed;
  };

  Mac(NodeId self, Channel& channel, sim::Scheduler& sched, sim::Rng rng,
      sim::MetricRegistry& metrics, MacConfig config);

  Mac(const Mac&) = delete;
  Mac& operator=(const Mac&) = delete;

  void set_callbacks(Callbacks cbs) {
    cbs_ = std::make_unique<Callbacks>(std::move(cbs));
  }

  /// Production fast path (Network::wire): route deliveries,
  /// overhears and send failures straight into the owning Node's
  /// dispatch_* methods instead of through the std::function hooks —
  /// two of the three fire once per intact reception. A non-null sink
  /// takes precedence over `cbs_`; test rigs keep using Callbacks.
  void set_sink(Node* node) { sink_ = node; }

  /// Attach a tracer: backoff draws record kBackoffSlots and every
  /// frame the MAC gives up on (queue overflow, retry exhaustion,
  /// radio-off send, purge) records kDropBytes.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Sharded engine: this node sits on a shard boundary, so its backoff
  /// attempts and ACK sends — events whose transmissions reach foreign
  /// shards — are border-tagged for the serialized gate. The ACK
  /// *timer* stays interior: it only mutates this MAC (a retry attempt
  /// it triggers is a fresh, properly tagged backoff event).
  void set_border(bool border) { border_ = border; }

  /// Enqueue a frame for transmission. The MAC stamps the sequence
  /// number and source address.
  void send(Frame frame);

  /// Frames currently queued (diagnostics).
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Fault injection: the node's radio died. Flushes every queued
  /// frame (without on_send_failed — the application is dead too),
  /// cancels the ACK timer and freezes the MAC; subsequent send()s are
  /// discarded until power_on(). A frame already on the air completes
  /// physically (receivers may still decode it) but is not retried.
  void power_off();

  /// Fault injection: the node rebooted. The MAC comes back idle with
  /// an empty queue and fresh contention state.
  void power_on();

  /// Fail every *queued* unicast frame addressed to `dst` immediately
  /// (on_send_failed per frame), without burning a retry ladder on
  /// each. Upper layers call this once they learn a neighbour is dead:
  /// a FIFO queue would otherwise serialise full ACK-retry ladders for
  /// every doomed frame, head-of-line-blocking live traffic for
  /// seconds. A frame already in service completes its ladder (its
  /// failure is the evidence the caller acted on).
  void fail_queued_to(NodeId dst);

  [[nodiscard]] bool powered() const { return !down_; }

  /// Channel entry point: the Network routes every reception here.
  void handle_reception(const Frame& frame, ReceptionStatus status);

  /// Heap bytes held by this MAC beyond sizeof(Mac): queued frames and
  /// their payloads, the per-sender dedup table, test callbacks.
  [[nodiscard]] std::size_t footprint_bytes() const;

 private:
  enum class State : std::uint8_t { kIdle, kDeferring, kTransmitting, kAwaitingAck };

  NodeId self_;
  Channel& channel_;
  sim::Scheduler& sched_;
  sim::Rng rng_;
  sim::MetricRegistry& metrics_;
  MacConfig config_;
  sim::Tracer* tracer_ = nullptr;
  /// Test-rig hooks only (production wiring uses sink_); boxed so the
  /// common case pays one null pointer instead of three std::functions
  /// (~96 bytes per node).
  std::unique_ptr<Callbacks> cbs_;
  Node* sink_ = nullptr;
  bool border_ = false;

  void trace_drop(const Frame& frame);

  /// Pre-bound handles for the per-frame counters (the rare paths —
  /// drops, purges, malformed ACKs — stay on the string-keyed add()).
  sim::MetricRegistry::Cell enqueued_{"mac.enqueued"};
  sim::MetricRegistry::Cell tx_attempts_{"mac.tx_attempts"};
  sim::MetricRegistry::Cell tx_ok_{"mac.tx_ok"};
  sim::MetricRegistry::Cell ack_sent_{"mac.ack_sent"};
  sim::MetricRegistry::Cell ack_received_{"mac.ack_received"};
  sim::MetricRegistry::Cell dup_suppressed_{"mac.duplicate_suppressed"};
  sim::MetricRegistry::Cell cs_busy_{"mac.cs_busy"};
  sim::MetricRegistry::Cell ack_timeout_count_{"mac.ack_timeout"};

  FrameQueue queue_;
  State state_ = State::kIdle;
  bool down_ = false;
  std::uint32_t retries_ = 0;
  std::uint32_t cw_ = 0;
  std::uint32_t next_seq_ = 1;
  sim::EventId ack_timer_{~0ULL};
  bool ack_timer_armed_ = false;
  /// Highest data-frame sequence seen per sender; suppresses the
  /// duplicate deliveries a lost ACK + retransmission would cause.
  /// Keyed by actual unicast senders, linear-scanned: a node only ever
  /// hears its one-hop neighbours, so the table stays at most
  /// degree-sized. (The obvious flat array indexed by sender id was
  /// quadratic in disguise: node ids are scattered uniformly over the
  /// field, so nearly every node resized its array to ~N entries —
  /// ~4·N bytes per node, ~4 TB at the N=1M target.) seq 0 means
  /// "nothing seen" — valid because the MAC stamps sequences from
  /// next_seq_, which starts at 1.
  struct SeenSeq {
    NodeId src;
    std::uint32_t seq;
  };
  std::vector<SeenSeq> last_seen_;

  void try_start();
  void defer();
  void begin_transmission();
  void on_tx_done();
  void on_ack_timeout();
  void finish_current(bool success);
  void send_ack(const Frame& data_frame);
  [[nodiscard]] sim::SimTime random_backoff();
};

}  // namespace icpda::net
