#include "core/cluster.h"

#include <algorithm>

namespace icpda::core {

bool ClusterContext::set_roster(net::NodeId head, std::vector<std::uint32_t> members,
                                std::vector<std::uint32_t> seeds, net::NodeId self) {
  if (members.empty() || members.size() != seeds.size()) return false;
  const auto it = std::find(members.begin(), members.end(), self);
  if (it == members.end()) return false;
  // Seeds must be distinct and non-zero for the interpolation.
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (seeds[i] == 0) return false;
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      if (seeds[i] == seeds[j]) return false;
    }
  }
  head_ = head;
  members_ = std::move(members);
  seeds_ = std::move(seeds);
  my_index_ = static_cast<std::size_t>(it - members_.begin());
  return true;
}

std::optional<double> ClusterContext::seed_of(net::NodeId member) const {
  const auto it = std::find(members_.begin(), members_.end(), member);
  if (it == members_.end()) return std::nullopt;
  return static_cast<double>(seeds_[static_cast<std::size_t>(it - members_.begin())]);
}

bool ClusterContext::in_roster(net::NodeId n) const {
  return std::find(members_.begin(), members_.end(), n) != members_.end();
}

std::vector<double> ClusterContext::seed_values() const {
  std::vector<double> out(seeds_.size());
  std::transform(seeds_.begin(), seeds_.end(), out.begin(),
                 [](std::uint32_t s) { return static_cast<double>(s); });
  return out;
}

proto::Aggregate ClusterContext::assemble(std::vector<std::uint32_t>& contributors) const {
  proto::Aggregate f;
  contributors.clear();
  if (have_kept_) {
    f.merge(kept_share_);
    contributors.push_back(members_[my_index_]);
  }
  for (const auto& [sender, share] : shares_in_) {
    f.merge(share);
    contributors.push_back(sender);
  }
  std::sort(contributors.begin(), contributors.end());
  return f;
}

void ClusterContext::record_announce(net::NodeId member, const proto::Aggregate& f,
                                     std::vector<std::uint32_t> contributors) {
  if (!in_roster(member)) return;
  std::sort(contributors.begin(), contributors.end());
  announces_[member] = Announce{f, std::move(contributors)};
}

bool ClusterContext::consistent() const {
  if (announces_.empty()) return false;
  const auto& reference = announces_.begin()->second.contributors;
  if (reference.empty()) return false;
  return std::all_of(announces_.begin(), announces_.end(), [&](const auto& kv) {
    return kv.second.contributors == reference;
  });
}

std::optional<proto::Aggregate> ClusterContext::solve() const {
  if (!complete() || !consistent()) return std::nullopt;
  std::vector<proto::Aggregate> assembled(members_.size());
  for (std::size_t j = 0; j < members_.size(); ++j) {
    const auto it = announces_.find(members_[j]);
    if (it == announces_.end()) return std::nullopt;
    assembled[j] = it->second.f;
  }
  return solve_cluster_sum(seed_values(), assembled);
}

std::vector<proto::Aggregate> ClusterContext::announced_f_values() const {
  std::vector<proto::Aggregate> out(members_.size());
  for (std::size_t j = 0; j < members_.size(); ++j) {
    if (const auto it = announces_.find(members_[j]); it != announces_.end()) {
      out[j] = it->second.f;
    }
  }
  return out;
}

std::vector<std::uint32_t> ClusterContext::contributor_set() const {
  if (announces_.empty()) return {};
  return announces_.begin()->second.contributors;
}

std::uint32_t ClusterContext::included_by(net::NodeId member) const {
  std::uint32_t count = 0;
  for (const auto& [who, ann] : announces_) {
    if (who == member) continue;
    if (std::binary_search(ann.contributors.begin(), ann.contributors.end(),
                           member)) {
      ++count;
    }
  }
  return count;
}

}  // namespace icpda::core
