#include "core/cluster.h"

#include <algorithm>

namespace icpda::core {

bool ClusterContext::set_roster(net::NodeId head, std::vector<std::uint32_t> members,
                                std::vector<std::uint32_t> seeds, net::NodeId self) {
  if (members.empty() || members.size() != seeds.size()) return false;
  const auto it = std::find(members.begin(), members.end(), self);
  if (it == members.end()) return false;
  // Seeds must be distinct and non-zero for the interpolation.
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (seeds[i] == 0) return false;
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      if (seeds[i] == seeds[j]) return false;
    }
  }
  // Validation passed: commit the roster and reset every arena. assign()
  // reuses the vectors' capacity, so re-rostering a warm context (new
  // epoch, Phase II recovery) allocates only if the roster grew.
  const std::size_t m = members.size();
  head_ = head;
  my_index_ = static_cast<std::size_t>(it - members.begin());
  members_ = std::move(members);
  seeds_ = std::move(seeds);
  by_id_.resize(m);
  for (std::size_t i = 0; i < m; ++i) by_id_[i] = static_cast<std::uint32_t>(i);
  std::sort(by_id_.begin(), by_id_.end(), [this](std::uint32_t a, std::uint32_t b) {
    return members_[a] < members_[b];
  });
  have_kept_ = false;
  share_vals_.assign(m, proto::Aggregate{});
  share_present_.assign(m, 0);
  shares_count_ = 0;
  ann_f_.assign(m, proto::Aggregate{});
  ann_present_.assign(m, 0);
  ann_count_ = 0;
  ann_contribs_.resize(m);
  for (auto& c : ann_contribs_) c.clear();
  return true;
}

std::size_t ClusterContext::index_of(net::NodeId member) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == member) return i;
  }
  return kNpos;
}

std::optional<double> ClusterContext::seed_of(net::NodeId member) const {
  const std::size_t i = index_of(member);
  if (i == kNpos) return std::nullopt;
  return static_cast<double>(seeds_[i]);
}

bool ClusterContext::in_roster(net::NodeId n) const { return index_of(n) != kNpos; }

std::vector<double> ClusterContext::seed_values() const {
  std::vector<double> out(seeds_.size());
  std::transform(seeds_.begin(), seeds_.end(), out.begin(),
                 [](std::uint32_t s) { return static_cast<double>(s); });
  return out;
}

void ClusterContext::record_share(net::NodeId sender, const proto::Aggregate& share) {
  const std::size_t i = index_of(sender);
  if (i == kNpos) return;
  if (!share_present_[i]) {
    share_present_[i] = 1;
    ++shares_count_;
  }
  share_vals_[i] = share;
}

proto::Aggregate ClusterContext::assemble(std::vector<std::uint32_t>& contributors) const {
  proto::Aggregate f;
  contributors.clear();
  if (have_kept_) {
    f.merge(kept_share_);
    contributors.push_back(members_[my_index_]);
  }
  // Ascending sender id — the float merge order the map-based storage
  // used, which the golden traces pin.
  for (const std::uint32_t idx : by_id_) {
    if (!share_present_[idx]) continue;
    f.merge(share_vals_[idx]);
    contributors.push_back(members_[idx]);
  }
  std::sort(contributors.begin(), contributors.end());
  return f;
}

void ClusterContext::record_announce(net::NodeId member, const proto::Aggregate& f,
                                     std::vector<std::uint32_t> contributors) {
  const std::size_t i = index_of(member);
  if (i == kNpos) return;
  std::sort(contributors.begin(), contributors.end());
  if (!ann_present_[i]) {
    ann_present_[i] = 1;
    ++ann_count_;
  }
  ann_f_[i] = f;
  ann_contribs_[i] = std::move(contributors);
}

bool ClusterContext::announced(net::NodeId member) const {
  const std::size_t i = index_of(member);
  return i != kNpos && ann_present_[i] != 0;
}

std::size_t ClusterContext::reference_announcer() const {
  for (const std::uint32_t idx : by_id_) {
    if (ann_present_[idx]) return idx;
  }
  return kNpos;
}

bool ClusterContext::consistent() const {
  const std::size_t ref = reference_announcer();
  if (ref == kNpos) return false;
  const auto& reference = ann_contribs_[ref];
  if (reference.empty()) return false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (ann_present_[i] && ann_contribs_[i] != reference) return false;
  }
  return true;
}

std::optional<proto::Aggregate> ClusterContext::solve() const {
  if (!complete() || !consistent()) return std::nullopt;
  // complete() => every roster slot has announced, so ann_f_ already is
  // the assembled vector in roster order.
  return solve_cluster_sum(seed_values(), ann_f_);
}

std::vector<proto::Aggregate> ClusterContext::announced_f_values() const {
  std::vector<proto::Aggregate> out(members_.size());
  for (std::size_t j = 0; j < members_.size(); ++j) {
    if (ann_present_[j]) out[j] = ann_f_[j];
  }
  return out;
}

std::vector<std::uint32_t> ClusterContext::contributor_set() const {
  const std::size_t ref = reference_announcer();
  if (ref == kNpos) return {};
  return ann_contribs_[ref];
}

std::uint32_t ClusterContext::included_by(net::NodeId member) const {
  std::uint32_t count = 0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (!ann_present_[i] || members_[i] == member) continue;
    const auto& contribs = ann_contribs_[i];
    if (std::binary_search(contribs.begin(), contribs.end(), member)) ++count;
  }
  return count;
}

}  // namespace icpda::core
