#include "core/integrity.h"

#include <algorithm>
#include <cmath>

namespace icpda::core {

void WitnessMonitor::record_input(const proto::ReportMsg& report, sim::SimTime heard_at) {
  // Retransmissions overwrite; the aggregate is identical anyway.
  inputs_[report.reporter] = Input{report.aggregate, heard_at};
}

namespace {
bool triples_match(const proto::Aggregate& a, const proto::Aggregate& b,
                   double tolerance) {
  const auto ok = [tolerance](double x, double y) {
    const double scale = std::max({1.0, std::abs(x), std::abs(y)});
    return std::abs(x - y) <= tolerance * scale;
  };
  return ok(a.count, b.count) && ok(a.sum, b.sum) && ok(a.sum_sq, b.sum_sq);
}
}  // namespace

WitnessMonitor::Verdict WitnessMonitor::audit(const proto::ReportMsg& outgoing,
                                              sim::SimTime now) const {
  Verdict v;
  v.observed_sum = outgoing.aggregate.sum;

  // Without the cluster sum the witness has no anchor: it cannot tell
  // how much of the outgoing report is the head's own cluster.
  if (!have_cluster_sum_) {
    v.kind = Verdict::Kind::kNoKnowledge;
    return v;
  }

  // Structural check, independent of what we overheard: the claimed
  // total must equal the sum of the claimed items.
  proto::Aggregate item_total;
  for (const auto& item : outgoing.items) item_total.merge(item.value);
  if (!triples_match(item_total, outgoing.aggregate, config_.tolerance)) {
    v.kind = Verdict::Kind::kMismatch;
    v.expected_sum = item_total.sum;
    return v;
  }

  bool cluster_claimed = false;
  for (const auto& item : outgoing.items) {
    if (item.id == target_) {
      // The head's own item must be the cluster sum we solved.
      cluster_claimed = true;
      if (!triples_match(item.value, cluster_sum_, config_.tolerance)) {
        v.kind = Verdict::Kind::kMismatch;
        v.expected_sum = cluster_sum_.sum;
        v.observed_sum = item.value.sum;
        return v;
      }
      continue;
    }
    const auto it = inputs_.find(item.id);
    if (it == inputs_.end()) {
      // An input we never heard: skip (another witness may cover it).
      ++v.unverified_items;
      continue;
    }
    if (!triples_match(item.value, it->second.aggregate, config_.tolerance)) {
      v.kind = Verdict::Kind::kMismatch;
      v.expected_sum = it->second.aggregate.sum;
      v.observed_sum = item.value.sum;
      return v;
    }
  }

  if (config_.alarm_on_omission) {
    // Omitted cluster sum: we solved one, the head pretends it has none.
    if (!cluster_claimed) {
      v.kind = Verdict::Kind::kOmission;
      v.expected_sum = outgoing.aggregate.sum + cluster_sum_.sum;
      return v;
    }
    // Omitted child: we clearly saw it arrive (before the guard
    // window), the head does not claim it.
    const sim::SimTime guard = sim::seconds(config_.omission_guard_s);
    for (const auto& [child, input] : inputs_) {
      if (!outgoing.claims(child) && input.heard_at + guard < now) {
        v.kind = Verdict::Kind::kOmission;
        v.expected_sum = outgoing.aggregate.sum + input.aggregate.sum;
        return v;
      }
    }
  }

  v.expected_sum = outgoing.aggregate.sum;
  v.kind = v.unverified_items == 0 ? Verdict::Kind::kClean
                                   : Verdict::Kind::kPartialClean;
  return v;
}

}  // namespace icpda::core
