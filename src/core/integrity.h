// Peer-monitoring integrity audit (iCPDA Phase III).
//
// A witness is a cluster member of a cluster head (CH). Because the
// wireless medium is shared, the witness physically overhears (a) the
// reports the CH's tree children address to the CH and (b) the CH's own
// outgoing report — and because the digest was broadcast in Phase II,
// the witness independently knows the true cluster sum.
//
// Reports are ITEMIZED (ReportMsg::items): the head lists each input it
// merged, with its value, including its own cluster sum under its own
// id. The audit therefore checks, in order:
//  * structure: total == sum(items) — verifiable by ANY witness, so
//    "smearing" pollution across the total is always caught;
//  * the head's own item against the cluster sum the witness solved;
//  * every child item the witness personally overheard;
//  * omissions: the head hides its cluster sum, or hides a child input
//    the witness saw arrive before the guard window (when enabled).
// Items the witness did not overhear are skipped — a better-placed
// witness may still check them; the verdict records how many were
// unverified (kClean = all seen, kPartialClean = no lie found in the
// part we could see).
//
// WitnessMonitor is pure state + decision logic (no radio, no timers),
// unit-testable on synthetic traces.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/topology.h"
#include "proto/aggregate.h"
#include "proto/messages.h"
#include "sim/time.h"

namespace icpda::core {

class WitnessMonitor {
 public:
  struct Config {
    double tolerance = 1e-6;
    bool alarm_on_omission = true;
    /// Inputs overheard within this window before the head's report
    /// are exempt from omission alarms (the head may legitimately have
    /// closed aggregation already).
    double omission_guard_s = 0.08;
  };

  struct Verdict {
    enum class Kind : std::uint8_t {
      kClean,         ///< every item verified, all match
      kPartialClean,  ///< verified subset matches; some items unseen
      kMismatch,      ///< a verifiable item (or the total) is wrong -> alarm
      kOmission,      ///< input provably dropped -> alarm
      kNoKnowledge    ///< witness never solved the cluster sum
    };
    Kind kind = Kind::kNoKnowledge;
    double expected_sum = 0.0;
    double observed_sum = 0.0;
    std::size_t unverified_items = 0;

    [[nodiscard]] bool alarming() const {
      return kind == Kind::kMismatch || kind == Kind::kOmission;
    }
  };

  explicit WitnessMonitor(Config config) : config_(config) {}
  WitnessMonitor() = default;

  void set_target(net::NodeId head) { target_ = head; }
  [[nodiscard]] net::NodeId target() const { return target_; }

  /// The cluster sum this witness solved in Phase II.
  void set_cluster_sum(const proto::Aggregate& v) {
    cluster_sum_ = v;
    have_cluster_sum_ = true;
  }
  [[nodiscard]] bool knows_cluster_sum() const { return have_cluster_sum_; }

  /// An overheard report addressed to the target head.
  void record_input(const proto::ReportMsg& report, sim::SimTime heard_at);

  /// Audit the head's outgoing report, overheard at `now`.
  [[nodiscard]] Verdict audit(const proto::ReportMsg& outgoing, sim::SimTime now) const;

 private:
  struct Input {
    proto::Aggregate aggregate;
    sim::SimTime heard_at;
  };

  Config config_;
  net::NodeId target_ = net::kNoNode;
  proto::Aggregate cluster_sum_;
  bool have_cluster_sum_ = false;
  std::map<net::NodeId, Input> inputs_;
};

}  // namespace icpda::core
