#include "core/localization.h"

#include <algorithm>
#include <numeric>

namespace icpda::core {

net::Bytes make_allowed_mask(std::size_t node_count,
                             const std::vector<net::NodeId>& ids) {
  net::Bytes mask((node_count + 7) / 8, 0);
  const auto set = [&mask](net::NodeId id) {
    mask[id / 8] |= static_cast<std::uint8_t>(1u << (id % 8));
  };
  set(0);  // the base station always participates
  for (const net::NodeId id : ids) set(id);
  return mask;
}

LocalizationResult localize_polluter(std::size_t node_count,
                                     const EpochRunner& run_epoch,
                                     std::uint32_t max_rounds) {
  LocalizationResult result;
  std::vector<net::NodeId> suspects(node_count > 1 ? node_count - 1 : 0);
  std::iota(suspects.begin(), suspects.end(), 1u);
  std::vector<net::NodeId> everyone = suspects;

  while (result.rounds < max_rounds) {
    if (suspects.size() == 1) {
      // Candidate found: confirm both directions, repeated to defeat
      // noisy detection. With the candidate excluded EVERY repeat must
      // pass (a still-active polluter is unlikely to dodge detection
      // three times); with everyone included a majority must fail.
      // Otherwise restart from the full suspect set — never accuse on
      // a single noisy reading.
      constexpr std::uint32_t kConfirmRepeats = 3;
      const net::NodeId candidate = suspects.front();
      std::vector<net::NodeId> without;
      without.reserve(everyone.size() - 1);
      for (const net::NodeId id : everyone) {
        if (id != candidate) without.push_back(id);
      }
      bool clean_without = true;
      std::uint32_t dirty_votes = 0;
      for (std::uint32_t r = 0; r < kConfirmRepeats; ++r) {
        clean_without &= run_epoch(make_allowed_mask(node_count, without));
        dirty_votes += run_epoch(make_allowed_mask(node_count, everyone)) ? 0 : 1;
      }
      result.rounds += 2 * kConfirmRepeats;
      const bool dirty_with = dirty_votes * 2 > kConfirmRepeats;
      if (clean_without && dirty_with) {
        result.isolated = candidate;
        break;
      }
      if (dirty_votes == 0) break;  // nothing detectable any more
      suspects = everyone;
      continue;
    }
    // Allow the first half of the suspects plus every non-suspect.
    const std::size_t half = suspects.size() / 2;
    std::vector<net::NodeId> allowed;
    allowed.reserve(node_count);
    for (const net::NodeId id : everyone) {
      const bool is_suspect =
          std::binary_search(suspects.begin(), suspects.end(), id);
      const bool in_first_half =
          is_suspect &&
          static_cast<std::size_t>(
              std::lower_bound(suspects.begin(), suspects.end(), id) -
              suspects.begin()) < half;
      if (!is_suspect || in_first_half) allowed.push_back(id);
    }
    // Detection is asymmetric: a rejection is reliable evidence of an
    // active polluter (witness audits do not false-fire), while an
    // acceptance can be a missed detection (e.g. the polluter drew no
    // witnesses this epoch). So an accept is only trusted after a
    // repeat: per-halving error drops from miss-rate to miss-rate^2.
    const auto mask = make_allowed_mask(node_count, allowed);
    bool accepted = run_epoch(mask);
    ++result.rounds;
    if (accepted && result.rounds < max_rounds) {
      accepted = run_epoch(mask);
      ++result.rounds;
    }
    if (accepted) {
      // Polluter was excluded: it is in the second half.
      suspects.erase(suspects.begin(),
                     suspects.begin() + static_cast<std::ptrdiff_t>(half));
    } else {
      // Active polluter among the allowed suspects: first half.
      suspects.resize(half);
    }
    if (suspects.empty()) {
      // Oracle noise walked us into a contradiction; start over.
      suspects = everyone;
    }
  }

  result.suspects = suspects;
  return result;
}

}  // namespace icpda::core
