// iCPDA: the cluster-based integrity-enforcing, privacy-preserving
// data aggregation protocol (the paper's contribution).
//
// One epoch runs three phases on top of the shared substrate:
//
//  Phase I   — the base station floods the query; every node joins the
//              spanning tree, then self-elects cluster head with
//              probability pc or joins a head it heard. Heads fix a
//              roster + public seeds and broadcast it.
//  Phase II  — CPDA share exchange inside each cluster: encrypted
//              shares (member-to-member legs relayed through the head,
//              sealed end-to-end), assembled F values unicast to the
//              head, and a consolidated digest broadcast back, which
//              every member endorses (its own entry must match) and
//              from which every member interpolates the cluster sum.
//  Phase III — heads inject their cluster sums into a TAG-style
//              depth-scheduled ascent of the spanning tree with
//              itemized reports; cluster members act as witnesses,
//              overhear their head's inputs and output, and flood an
//              ALARM on any value discrepancy; relays forward verbatim
//              under the sender's watchdog. The base station rejects
//              the epoch on any value-tamper alarm whose deviation
//              exceeds Th.
//
// See DESIGN.md for the reconstruction notes (which details come from
// the companion papers and which are engineering choices).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/adversary.h"
#include "core/cluster.h"
#include "core/flat_set.h"
#include "core/config.h"
#include "core/faults.h"
#include "core/integrity.h"
#include "crypto/cipher.h"
#include "crypto/keys.h"
#include "net/network.h"
#include "net/node.h"
#include "proto/aggregate.h"
#include "proto/epoch.h"
#include "proto/messages.h"

namespace icpda::core {

/// Epoch outcome, written by the base station (plus per-node tallies
/// written by everyone). One instance per epoch, owned by the driver.
struct IcpdaOutcome {
  std::optional<proto::Aggregate> result;
  sim::SimTime closed_at;
  /// When the last report merged at the base station (zero if none):
  /// the settle time, vs closed_at which is the fixed epoch deadline.
  sim::SimTime last_report_at;
  std::vector<proto::AlarmMsg> alarms;
  /// Value-tamper alarms whose |expected - observed| exceeded Th.
  std::uint32_t significant_alarms = 0;
  /// Advisory drop-suspicion alarms (watchdog): feed rerouting, do not
  /// reject the epoch (a single watchdog cannot tell drop from loss).
  std::uint32_t drop_suspicions = 0;
  [[nodiscard]] bool accepted() const { return significant_alarms == 0; }

  // Tallies (whole network).
  std::uint32_t heads = 0;
  std::uint32_t members = 0;
  std::uint32_t unclustered = 0;
  std::uint32_t reporters = 0;
  /// Nodes whose values travelled with degraded privacy (clusters
  /// below min_cluster_size under kClearReport, incl. lone heads).
  std::uint32_t degraded_privacy = 0;
  /// Clusters that failed Phase II (missing/inconsistent shares or F).
  std::uint32_t clusters_failed = 0;
  /// Times a polluter actually tampered with a value this epoch.
  std::uint32_t pollution_events = 0;
  /// Cluster size -> number of clusters (at roster time).
  std::map<std::uint32_t, std::uint32_t> cluster_sizes;

  // Fault tolerance (filled when a FaultPlan is active; zero otherwise).
  /// Nodes the fault plan crashed this epoch (base station exempt).
  std::uint32_t nodes_crashed = 0;
  /// Phase III parent switches after a dead/silent parent.
  std::uint32_t reroutes = 0;
  /// Live sensors whose value never reached the base station.
  std::uint32_t values_lost = 0;
  /// result.count / live sensors at epoch end (1.0 when nothing runs).
  double coverage = 0.0;

  // Active adversary (filled when an AdversaryPlan runs; zero otherwise).
  /// Nodes resolved compromised this epoch (after crashed-first).
  std::uint32_t compromised_nodes = 0;
  /// Stale-epoch frames dropped by the freshness gate (hardening).
  std::uint32_t replay_rejections = 0;
  /// Members flagged as share withholders by the recovery round.
  std::uint32_t withholders_flagged = 0;
  /// Digest-vs-announcement mismatches caught by the cross-check.
  std::uint32_t crosscheck_alarms = 0;
  /// Rosters refused by members under the anonymity floor.
  std::uint32_t rosters_refused = 0;
};

class IcpdaApp final : public net::App {
 public:
  IcpdaApp(IcpdaConfig config, proto::ReadingProvider readings,
           const crypto::KeyScheme* keys, const AttackPlan* attack,
           IcpdaOutcome* outcome, const AdversaryPlan* adversary = nullptr,
           AdversaryState* adv = nullptr, sim::Rng* rng_override = nullptr)
      : config_(config),
        readings_(std::move(readings)),
        keys_(keys),
        attack_(attack),
        outcome_(outcome),
        adversary_(adversary),
        adv_(adv),
        rng_override_(rng_override),
        monitor_(WitnessMonitor::Config{config.witness_tolerance,
                                        config.alarm_on_omission,
                                        config.omission_guard_s}) {}

  void start(net::Node& node) override;
  void on_receive(net::Node& node, const net::Frame& frame) override;
  void on_overhear(net::Node& node, const net::Frame& frame) override;
  void on_send_failed(net::Node& node, const net::Frame& frame) override;

  // Introspection for tests & the privacy auditor.
  [[nodiscard]] ClusterRole role() const { return role_; }
  [[nodiscard]] const ClusterContext& cluster() const { return cluster_; }
  [[nodiscard]] std::optional<proto::Aggregate> cluster_value() const {
    return cluster_value_;
  }
  [[nodiscard]] net::NodeId tree_parent() const { return parent_; }
  [[nodiscard]] std::uint16_t hop() const { return hop_; }
  [[nodiscard]] bool joined_tree() const { return joined_; }

 private:
  // Phase I.
  void handle_hello(net::Node& node, const net::Frame& frame);
  void handle_cluster_hello(net::Node& node, const net::Frame& frame);
  void handle_join(net::Node& node, const net::Frame& frame);
  void handle_roster(net::Node& node, const net::Frame& frame);
  void decide_role(net::Node& node, std::uint32_t round);
  void send_join(net::Node& node);
  void retry_or_give_up(net::Node& node);
  void become_head(net::Node& node);
  void close_roster(net::Node& node);

  // Phase II.
  void handle_share(net::Node& node, const net::Frame& frame);
  void send_shares(net::Node& node);
  void announce_f(net::Node& node);
  void handle_f_announce(net::Node& node, const net::Frame& frame);
  void solve_and_digest(net::Node& node);
  void handle_digest(net::Node& node, const net::Frame& frame);

  // Phase II crash recovery (head re-fixes the roster to survivors and
  // reruns the exchange at reduced degree; see DESIGN.md fault model).
  void start_phase2_recovery(net::Node& node);
  void handle_recovery_roster(net::Node& node, const proto::ClusterRosterMsg& roster);
  void replay_early_shares();
  void digest_deadline(net::Node& node);

  // Phase III.
  void handle_report(net::Node& node, const net::Frame& frame);
  void send_report(net::Node& node);
  void forward_verbatim(net::Node& node, const net::Frame& frame);
  void dispatch_up(net::Node& node, const proto::ReportMsg& report,
                   const net::Bytes& payload);
  void overhear_report(net::Node& node, const net::Frame& frame);
  void raise_alarm(net::Node& node, net::NodeId accused,
                   proto::AlarmMsg::Kind kind, double expected, double observed);
  void handle_alarm(net::Node& node, const net::Frame& frame);
  void close_epoch(net::Node& node);

  // Watchdog on the tree parent.
  void expect_forward(net::Node& node, net::NodeId reporter, net::Bytes payload,
                      std::uint32_t attempt);
  void check_watchdog(net::Node& node, const proto::ReportMsg& report,
                      const net::Bytes& payload);

  // Phase III crash failover.
  bool reroute_to_backup(net::Node& node);
  void redispatch(net::Node& node, const net::Bytes& payload);
  void arm_backup_reporter(net::Node& node);
  void backup_report(net::Node& node);

  // Active adversary (core/adversary.h). `compromised` is true when the
  // adversary layer is attached AND this node is in the resolved set;
  // `attacking` additionally matches the plan's attack class. Honest
  // nodes (and every node in a benign run) take none of these branches.
  [[nodiscard]] bool compromised(const net::Node& node) const {
    return adv_ != nullptr && adversary_ != nullptr &&
           adv_->is_compromised(node.id());
  }
  [[nodiscard]] bool attacking(AttackClass c, const net::Node& node) const {
    return compromised(node) && adversary_->attack == c;
  }
  /// True iff the freshness gate drops this frame (stale epoch tag).
  bool replay_gate(net::Node& node, const net::Frame& frame);
  /// kReplay: squirrel away interesting Phase II/III frames.
  void maybe_capture(net::Node& node, const net::Frame& frame);
  /// kReplay: schedule this epoch's injections of past captures.
  void schedule_replays(net::Node& node);
  /// kDisclosure: pool roster/share/digest knowledge into the ledger.
  void observe_roster(net::Node& node);
  void observe_share(net::NodeId sender, const proto::Aggregate& share);
  void observe_digest(net::Node& node, const proto::ClusterDigestMsg& digest);
  /// Hardened digest cross-check (all receivers, incl. foreign heads).
  void crosscheck_digest(net::Node& node, const proto::ClusterDigestMsg& digest);

  /// Protocol randomness: the node's own substream by default. The
  /// service layer injects a per-(node, query) override so each query's
  /// draws are a function of (seed, node, query) alone — independent of
  /// how many other queries share the node's substream — which is what
  /// makes pipelined and serial executions of the same query set
  /// byte-comparable.
  [[nodiscard]] sim::Rng& rng(net::Node& node) {
    return rng_override_ != nullptr ? *rng_override_ : node.rng();
  }
  /// Span tag for phase spans (query id when trace_query_spans is on).
  [[nodiscard]] std::uint64_t span_tag() const {
    return config_.trace_query_spans ? config_.query_id : 0;
  }

  IcpdaConfig config_;
  proto::ReadingProvider readings_;
  const crypto::KeyScheme* keys_;
  const AttackPlan* attack_;
  IcpdaOutcome* outcome_;
  const AdversaryPlan* adversary_ = nullptr;
  AdversaryState* adv_ = nullptr;
  sim::Rng* rng_override_ = nullptr;
  /// digest_crosscheck: head id -> F sum it self-announced on the air.
  std::map<net::NodeId, double> head_f_seen_;

  // Tree state.
  bool joined_ = false;           ///< has a (participating) tree parent
  bool flood_forwarded_ = false;  ///< re-broadcast the query once
  net::NodeId parent_ = net::kNoNode;
  std::uint16_t hop_ = 0;
  bool allowed_aggregator_ = true;
  proto::HelloMsg query_;  ///< the query as first heard (mask checks)
  sim::SimTime join_time_; ///< when we joined the tree

  // Cluster state.
  ClusterRole role_ = ClusterRole::kUndecided;
  /// Distinct neighbours whose query re-broadcast we heard; the
  /// density estimate behind adaptive head election.
  FlatSet<net::NodeId> hello_sources_;
  std::vector<net::NodeId> heard_heads_;
  net::NodeId chosen_head_ = net::kNoNode;
  std::uint32_t join_attempts_ = 0;
  std::vector<net::NodeId> joiners_;  ///< heads: members that joined us
  bool roster_sent_ = false;
  ClusterContext cluster_;
  std::optional<proto::Aggregate> cluster_value_;
  bool clear_report_ = false;  ///< lone head reporting in the clear

  // Phase II state.
  proto::Aggregate my_f_;                     ///< the F this node sent
  std::vector<std::uint32_t> my_f_contributors_;
  bool f_sent_ = false;
  /// Scratch arenas for the share hot path (send_shares/handle_share):
  /// capacity persists across rounds and epochs, so the warm loop cuts,
  /// seals and opens shares without heap allocation. Values never leak
  /// across uses — every consumer overwrites before reading.
  std::vector<proto::Aggregate> share_scratch_;
  std::vector<std::optional<crypto::Key>> link_keys_scratch_;
  crypto::Bytes opened_scratch_;
  /// Shares that arrived before the matching roster (decrypted, keyed
  /// by sender, tagged with their round); replayed into the context
  /// once the roster for that round is installed.
  std::map<net::NodeId, std::pair<std::uint8_t, proto::Aggregate>> early_shares_;
  /// Current Phase II round (0 = normal, 1 = crash recovery).
  std::uint8_t phase2_round_ = 0;
  bool recovery_started_ = false;  ///< heads: one recovery per epoch

  // Phase III state.
  proto::Aggregate pending_;  ///< inputs aggregated so far (heads/BS)
  std::vector<proto::ReportItem> items_;  ///< itemized inputs (heads)
  bool reported_ = false;
  WitnessMonitor monitor_;
  FlatSet<std::pair<net::NodeId, net::NodeId>> alarms_forwarded_;  ///< (witness, accused)

  /// Watchdog expectations on the tree parent: after handing a report
  /// up, the sender waits to overhear either a verbatim forward or an
  /// aggregate claiming the reporter.
  struct Expectation {
    net::NodeId reporter;
    net::Bytes payload;
    bool satisfied = false;       ///< watchdog: no alarm needed
    bool failure_handled = false; ///< retry bookkeeping (one per entry)
    std::uint32_t send_attempts = 1;
  };
  std::vector<Expectation> watchdog_;
  std::uint32_t parent_reports_overheard_ = 0;
  static constexpr std::uint32_t kMaxRehandsPerEpoch = 4;
  std::uint32_t rehands_used_ = 0;

  // Fault-failover state.
  /// Strictly-shallower neighbours heard during the flood (id -> hop):
  /// the candidate pool for Phase III parent failover.
  std::map<net::NodeId, std::uint16_t> backup_parents_;
  std::set<net::NodeId> failed_parents_;
  std::uint32_t reroutes_used_ = 0;
  /// Backup-reporter bookkeeping (first member after the head).
  bool head_report_seen_ = false;
  bool probe_sent_ = false;
  bool probe_failed_ = false;
};

/// Run one iCPDA epoch on `net`; `attack` and `faults` may be empty
/// (honest, fully-live run).
IcpdaOutcome run_icpda_epoch(net::Network& net, const IcpdaConfig& config,
                             const proto::ReadingProvider& readings,
                             const crypto::KeyScheme& keys,
                             const AttackPlan& attack = {},
                             const FaultPlan& faults = {});

/// Active-adversary epoch: faults are scheduled FIRST and the
/// compromised set is resolved against the materialized crash set
/// (crashed-and-compromised resolves to crashed), then apps attach with
/// the adversary layer. `adv` persists across epochs of one scenario —
/// its epoch counter is bumped here — so replay captures and the
/// disclosure coalition's ledger accumulate.
IcpdaOutcome run_icpda_epoch(net::Network& net, const IcpdaConfig& config,
                             const proto::ReadingProvider& readings,
                             const crypto::KeyScheme& keys,
                             const AdversaryPlan& adversary, AdversaryState& adv,
                             const FaultPlan& faults = {});

}  // namespace icpda::core
