#include "core/faults.h"

namespace icpda::core {

std::uint32_t schedule_fault_plan(net::Network& net, const FaultPlan& plan,
                                  sim::Rng rng,
                                  std::vector<net::NodeId>* crashed_out) {
  if (!plan.active()) return 0;
  std::uint32_t crashes = 0;

  // Fault events run on the affected node's home-shard scheduler,
  // owner-tagged: a crash only mutates that node's own state (alive
  // flag, MAC), which keeps it drainable under the sharded engine.
  const auto schedule_crash = [&](net::NodeId id, double at_s) {
    net.scheduler_for(id).after(sim::seconds(at_s),
                                [&net, id] { net.set_node_down(id); }, id);
    ++crashes;
    if (crashed_out) crashed_out->push_back(id);
  };

  for (net::NodeId id = 1; id < net.size(); ++id) {
    if (const auto it = plan.crash_at_s.find(id); it != plan.crash_at_s.end()) {
      schedule_crash(id, it->second);
      continue;  // an explicit crash overrides the random draw
    }
    if (plan.crash_probability > 0.0 && rng.bernoulli(plan.crash_probability)) {
      schedule_crash(id, rng.uniform(0.0, plan.crash_window_s));
    }
  }

  for (const auto& [id, intervals] : plan.outages) {
    if (id == net.base_station() || id >= net.size()) continue;
    auto& sched = net.scheduler_for(id);
    for (const auto& o : intervals) {
      if (o.up_at_s <= o.down_at_s) continue;
      sched.after(sim::seconds(o.down_at_s), [&net, id] { net.set_node_down(id); },
                  id);
      sched.after(sim::seconds(o.up_at_s), [&net, id] { net.set_node_up(id); }, id);
    }
  }
  return crashes;
}

}  // namespace icpda::core
