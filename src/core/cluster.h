// Per-node cluster bookkeeping for one iCPDA epoch.
//
// ClusterContext is pure protocol algebra — no networking, no timers —
// so the share/assemble/solve pipeline is unit-testable in isolation.
// The IcpdaApp owns one per node and feeds it roster, shares and F
// announcements as they arrive off the radio.
//
// Storage is struct-of-arrays keyed by roster position: shares and
// announcements live in flat vectors sized to the roster, reset
// (capacity-preserving) by set_roster(). A warm context processes a
// whole epoch with zero per-share heap allocations; rosters are tiny
// (E[m] = 1/pc, single digits), so membership lookups are linear scans.
// EpochArenaTest pins that a reused context behaves identically to a
// freshly constructed one.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cpda_algebra.h"
#include "net/topology.h"
#include "proto/aggregate.h"

namespace icpda::core {

enum class ClusterRole : std::uint8_t {
  kUndecided,   ///< heard the query, role not yet fixed
  kHead,        ///< cluster head (aggregator)
  kMember,      ///< joined a head's cluster
  kUnclustered  ///< found no cluster to join (excluded from aggregation)
};

class ClusterContext {
 public:
  /// Install the final roster (as broadcast by the head) and reset all
  /// per-epoch arenas. `self` must appear in `members`; returns false —
  /// leaving the prior state untouched — otherwise, or if members/seeds
  /// are malformed.
  bool set_roster(net::NodeId head, std::vector<std::uint32_t> members,
                  std::vector<std::uint32_t> seeds, net::NodeId self);

  [[nodiscard]] bool has_roster() const { return !members_.empty(); }
  [[nodiscard]] net::NodeId head() const { return head_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] const std::vector<std::uint32_t>& members() const { return members_; }

  /// Seed x_j assigned to a member; nullopt if not in the roster.
  [[nodiscard]] std::optional<double> seed_of(net::NodeId member) const;
  [[nodiscard]] double my_seed() const { return seeds_.at(my_index_); }
  [[nodiscard]] std::size_t my_index() const { return my_index_; }
  [[nodiscard]] bool in_roster(net::NodeId n) const;

  /// Seeds of all members, roster order (doubles for the solver).
  [[nodiscard]] std::vector<double> seed_values() const;

  /// Raw integer seeds, roster order (reused verbatim when a recovery
  /// roster narrows the cluster to its surviving members).
  [[nodiscard]] const std::vector<std::uint32_t>& seed_ints() const { return seeds_; }

  // ---- Phase II bookkeeping ----------------------------------------

  /// The share p_self(x_self) this node keeps for itself.
  void set_kept_share(const proto::Aggregate& share) {
    kept_share_ = share;
    have_kept_ = true;
  }

  /// A decrypted share p_sender(x_self) received from a peer. Repeat
  /// senders overwrite (retransmission); senders outside the roster are
  /// ignored (every protocol call site already filters on in_roster).
  void record_share(net::NodeId sender, const proto::Aggregate& share);

  [[nodiscard]] std::size_t shares_received() const { return shares_count_; }

  /// Assemble F_self = kept + sum of received shares. `contributors`
  /// receives the sorted member ids whose shares are included
  /// (including self). Requires set_kept_share() to have been called.
  [[nodiscard]] proto::Aggregate assemble(std::vector<std::uint32_t>& contributors) const;

  /// An F announcement from `member` (possibly self), with the
  /// contributor list it claims.
  void record_announce(net::NodeId member, const proto::Aggregate& f,
                       std::vector<std::uint32_t> contributors);

  [[nodiscard]] std::size_t announces_received() const { return ann_count_; }

  /// Whether a specific member's F announcement has arrived — the
  /// liveness evidence Phase II recovery keys on.
  [[nodiscard]] bool announced(net::NodeId member) const;

  /// All roster members have announced F.
  [[nodiscard]] bool complete() const { return ann_count_ == members_.size(); }

  /// All announced contributor lists are identical (the consistency
  /// condition under which the interpolation recovers sum over that
  /// common contributor set).
  [[nodiscard]] bool consistent() const;

  /// Interpolate the cluster sum. Requires complete() && consistent();
  /// returns nullopt otherwise (or on numerically invalid seeds).
  [[nodiscard]] std::optional<proto::Aggregate> solve() const;

  /// The common contributor set (valid when consistent()).
  [[nodiscard]] std::vector<std::uint32_t> contributor_set() const;

  /// Announced F values in roster order (valid when complete()); a
  /// missing announce yields a zero triple in its slot.
  [[nodiscard]] std::vector<proto::Aggregate> announced_f_values() const;

  /// How many OTHER announcers' contributor lists include `member`.
  /// Withholder attribution keys on this: a member that announced its
  /// own F (proved alive) yet appears in nobody else's list never sent
  /// its shares out.
  [[nodiscard]] std::uint32_t included_by(net::NodeId member) const;

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  /// Roster position of `member`, or kNpos.
  [[nodiscard]] std::size_t index_of(net::NodeId member) const;
  /// Roster position (via by_id_) of the smallest-id member that has
  /// announced — the reference for consistent()/contributor_set(),
  /// matching the old std::map iteration order. kNpos if none.
  [[nodiscard]] std::size_t reference_announcer() const;

  net::NodeId head_ = net::kNoNode;
  std::vector<std::uint32_t> members_;  ///< roster order
  std::vector<std::uint32_t> seeds_;    ///< roster order
  std::size_t my_index_ = 0;
  /// Roster positions sorted by member id — the iteration order the
  /// previous map-based storage exposed (ascending sender id), which
  /// the float merge in assemble() must reproduce exactly.
  std::vector<std::uint32_t> by_id_;

  proto::Aggregate kept_share_;
  bool have_kept_ = false;

  // Per-epoch arenas, indexed by roster position.
  std::vector<proto::Aggregate> share_vals_;
  std::vector<std::uint8_t> share_present_;
  std::size_t shares_count_ = 0;

  std::vector<proto::Aggregate> ann_f_;
  std::vector<std::vector<std::uint32_t>> ann_contribs_;  ///< stored sorted
  std::vector<std::uint8_t> ann_present_;
  std::size_t ann_count_ = 0;
};

}  // namespace icpda::core
