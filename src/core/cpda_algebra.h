// CPDA share algebra: additive polynomial secret sharing within a
// cluster (He et al., INFOCOM'07; the privacy core of the ICDCS'09
// cluster protocol).
//
// Cluster of m members with public, distinct, non-zero seeds x_1..x_m.
// Member i holding private value v_i draws random coefficients
// r_{i,1..m-1} and forms the polynomial
//     p_i(x) = v_i + r_{i,1} x + ... + r_{i,m-1} x^(m-1).
// It sends p_i(x_j) encrypted to member j (keeping p_i(x_i)). Member j
// assembles F_j = sum_i p_i(x_j) = P(x_j) where P = sum_i p_i is again
// a degree-(m-1) polynomial whose constant term is the cluster sum
// V = sum_i v_i. Once all m assembled values are public, anyone can
// interpolate P and read off V = P(0) — while any m-2 colluding
// members still cannot isolate an individual v_i.
//
// Values in this repository are aggregate triples (count, sum, sum_sq),
// so three independent polynomials run side by side — the API works on
// whole proto::Aggregate triples.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/wire.h"
#include "proto/aggregate.h"
#include "sim/rng.h"

namespace icpda::core {

/// Canonical public seeds for a cluster of size m: the integers 1..m.
/// Small distinct integers keep the Vandermonde system well conditioned
/// (m stays single-digit in practice: E[m] = 1/pc).
[[nodiscard]] std::vector<double> default_seeds(std::size_t m);

/// Evaluations p(x_j) of the sharing polynomial for one private triple.
/// Element j of the result is the share destined for the member with
/// seed seeds[j]. `coeff_scale` bounds the uniform random coefficients;
/// privacy only needs them unpredictable, magnitude is a conditioning
/// choice.
[[nodiscard]] std::vector<proto::Aggregate> make_shares(
    const proto::Aggregate& value, const std::vector<double>& seeds,
    sim::Rng& rng, double coeff_scale = 1000.0);

/// Recover the cluster sum V = P(0) from the m assembled values
/// F_j = P(x_j) by Lagrange interpolation at zero. Returns nullopt if
/// seeds are not distinct/non-zero or sizes mismatch.
[[nodiscard]] std::optional<proto::Aggregate> solve_cluster_sum(
    const std::vector<double>& seeds, const std::vector<proto::Aggregate>& assembled);

/// Lagrange-at-zero weights w_j with P(0) = sum_j w_j F_j; exposed for
/// the analysis module and tests. Empty on invalid seeds.
[[nodiscard]] std::vector<double> lagrange_weights_at_zero(
    const std::vector<double>& seeds);

// ---------------------------------------------------------------------
// Exact integer path.
//
// The floating solve above is what a sensor would run. For tests and
// for bit-exactness arguments we also provide the same algebra over
// scaled 64-bit integers with exact rational interpolation (128-bit
// intermediates). Shares are integers; the recovered sum is exact.

struct ExactShareSet {
  /// shares[j] = p(x_j) with integer coefficients.
  std::vector<std::int64_t> shares;
};

[[nodiscard]] ExactShareSet make_shares_exact(std::int64_t value,
                                              const std::vector<std::int64_t>& seeds,
                                              sim::Rng& rng,
                                              std::int64_t coeff_bound = 1'000'000);

/// Exact recovery of V from integer F_j at integer seeds. Returns
/// nullopt on invalid seeds or if the result is provably non-integral
/// (which indicates corrupted inputs).
[[nodiscard]] std::optional<std::int64_t> solve_cluster_sum_exact(
    const std::vector<std::int64_t>& seeds, const std::vector<std::int64_t>& assembled);

// ---------------------------------------------------------------------
// Wire body of one encrypted share message (sealed inside ShareMsg).

struct ShareBody {
  std::uint32_t query_id = 0;
  /// Phase II round the share was cut for (0 = normal, 1 = recovery
  /// re-share after a member crash). Shares from different rounds come
  /// from polynomials of different degree and must never be mixed; the
  /// round rides inside the sealed body so it is authenticated.
  std::uint8_t round = 0;
  proto::Aggregate share;
  /// Epoch-freshness tag (proto::write_epoch_tag trailer; 0 = untagged).
  /// Unlike the frame-level trailer this copy is under the seal, so a
  /// replayed share cannot be re-stamped by an attacker without the
  /// pairwise key.
  std::uint32_t epoch_tag = 0;

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<ShareBody> from_bytes(const net::Bytes& b);
};

}  // namespace icpda::core
