// CPDA share algebra: additive polynomial secret sharing within a
// cluster (He et al., INFOCOM'07; the privacy core of the ICDCS'09
// cluster protocol).
//
// Cluster of m members with public, distinct, non-zero seeds x_1..x_m.
// Member i holding private value v_i draws random coefficients
// r_{i,1..m-1} and forms the polynomial
//     p_i(x) = v_i + r_{i,1} x + ... + r_{i,m-1} x^(m-1).
// It sends p_i(x_j) encrypted to member j (keeping p_i(x_i)). Member j
// assembles F_j = sum_i p_i(x_j) = P(x_j) where P = sum_i p_i is again
// a degree-(m-1) polynomial whose constant term is the cluster sum
// V = sum_i v_i. Once all m assembled values are public, anyone can
// interpolate P and read off V = P(0) — while any m-2 colluding
// members still cannot isolate an individual v_i.
//
// Values in this repository are aggregate triples (count, sum, sum_sq),
// so three independent polynomials run side by side — the API works on
// whole proto::Aggregate triples.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/wire.h"
#include "proto/aggregate.h"
#include "sim/rng.h"

namespace icpda::core {

/// Canonical public seeds for a cluster of size m: the integers 1..m.
/// Small distinct integers keep the Vandermonde system well conditioned
/// (m stays single-digit in practice: E[m] = 1/pc).
[[nodiscard]] std::vector<double> default_seeds(std::size_t m);

/// Evaluations p(x_j) of the sharing polynomial for one private triple.
/// Element j of the result is the share destined for the member with
/// seed seeds[j]. `coeff_scale` bounds the uniform random coefficients;
/// privacy only needs them unpredictable, magnitude is a conditioning
/// choice.
[[nodiscard]] std::vector<proto::Aggregate> make_shares(
    const proto::Aggregate& value, const std::vector<double>& seeds,
    sim::Rng& rng, double coeff_scale = 1000.0);

/// Arena variant of make_shares(): fills `shares` in place (capacity is
/// reused across calls, so a warm vector cuts a round of shares with
/// zero heap allocations; blinding coefficients live on the stack for
/// m <= 32). Draws the same Rng sequence and performs the same float
/// ops as make_shares(), so the produced shares are bit-identical —
/// pinned differentially by CryptoBatchTest.
void make_shares_into(const proto::Aggregate& value, const std::vector<double>& seeds,
                      sim::Rng& rng, std::vector<proto::Aggregate>& shares,
                      double coeff_scale = 1000.0);

/// Recover the cluster sum V = P(0) from the m assembled values
/// F_j = P(x_j) by Lagrange interpolation at zero. Returns nullopt if
/// seeds are not distinct/non-zero or sizes mismatch.
[[nodiscard]] std::optional<proto::Aggregate> solve_cluster_sum(
    const std::vector<double>& seeds, const std::vector<proto::Aggregate>& assembled);

/// Lagrange-at-zero weights w_j with P(0) = sum_j w_j F_j; exposed for
/// the analysis module and tests. Empty on invalid seeds.
[[nodiscard]] std::vector<double> lagrange_weights_at_zero(
    const std::vector<double>& seeds);

// ---------------------------------------------------------------------
// Exact integer path.
//
// The floating solve above is what a sensor would run. For tests and
// for bit-exactness arguments we also provide the same algebra over
// scaled 64-bit integers with exact rational interpolation (128-bit
// intermediates). Shares are integers; the recovered sum is exact.

struct ExactShareSet {
  /// shares[j] = p(x_j) with integer coefficients.
  std::vector<std::int64_t> shares;
};

[[nodiscard]] ExactShareSet make_shares_exact(std::int64_t value,
                                              const std::vector<std::int64_t>& seeds,
                                              sim::Rng& rng,
                                              std::int64_t coeff_bound = 1'000'000);

/// Exact recovery of V from integer F_j at integer seeds. Returns
/// nullopt on invalid seeds or if the result is provably non-integral
/// (which indicates corrupted inputs).
///
/// Precondition (both paths): the rational intermediates must fit in
/// 128-bit integers, and the binding constraint is the *accumulation*,
/// not weight formation — partial sums carry denominators that
/// compound toward the lcm of the per-weight denominators, each up to
/// |2·seed|^(m-1). The joint-safe domain therefore shrinks with m;
/// the protocol envelope (roster seeds <= ~16, |F_j| <= 2^40) has
/// orders of magnitude of headroom at every supported m, and the
/// randomized differential suite runs at positive seeds <= 16 with the
/// full value range (mixed-sign seeds only at reduced values). Seeds
/// near the 2^17 dispatch bound can wrap the m = 8 accumulator in
/// either path; callers outside tests never leave the envelope.
///
/// For the cluster sizes the protocol actually produces (m in {3,5,8})
/// with small seeds (|x_j| <= 2^17), a specialized Vandermonde solve
/// computes each Lagrange weight as one product pair N_j/D_j reduced by
/// a single gcd instead of m-1 incremental Fraction normalizations.
/// Lowest-terms rationals are canonical, so the fast path is bitwise
/// identical to the generic one — pinned by CpdaExactPathTest over
/// ~10k randomized cases.
[[nodiscard]] std::optional<std::int64_t> solve_cluster_sum_exact(
    const std::vector<std::int64_t>& seeds, const std::vector<std::int64_t>& assembled);

/// The generic incremental-Fraction solve, kept public as the
/// differential reference for the specialized fast path above.
[[nodiscard]] std::optional<std::int64_t> solve_cluster_sum_exact_generic(
    const std::vector<std::int64_t>& seeds, const std::vector<std::int64_t>& assembled);

// ---------------------------------------------------------------------
// Wire body of one encrypted share message (sealed inside ShareMsg).

struct ShareBody {
  std::uint32_t query_id = 0;
  /// Phase II round the share was cut for (0 = normal, 1 = recovery
  /// re-share after a member crash). Shares from different rounds come
  /// from polynomials of different degree and must never be mixed; the
  /// round rides inside the sealed body so it is authenticated.
  std::uint8_t round = 0;
  proto::Aggregate share;
  /// Epoch-freshness tag (proto::write_epoch_tag trailer; 0 = untagged).
  /// Unlike the frame-level trailer this copy is under the seal, so a
  /// replayed share cannot be re-stamped by an attacker without the
  /// pairwise key.
  std::uint32_t epoch_tag = 0;

  [[nodiscard]] net::Bytes to_bytes() const;
  [[nodiscard]] static std::optional<ShareBody> from_bytes(const net::Bytes& b);

  /// Byte offset of `share` inside to_bytes() output: u32 query_id (4)
  /// + u8 round (1). The epoch-tag trailer, if any, follows the triple.
  static constexpr std::size_t kShareOffset = 5;
  /// Overwrite the 24-byte share triple inside an already-serialized
  /// body. Lets the sender serialize the (query_id, round, epoch_tag)
  /// template once per cluster round and patch only the per-peer share
  /// — the bytes equal a fresh to_bytes() for every peer, which the
  /// fuzz/differential suites pin. `bytes` must come from to_bytes().
  static void patch_share(net::Bytes& bytes, const proto::Aggregate& share);
};

}  // namespace icpda::core
