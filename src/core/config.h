// Configuration knobs of the iCPDA protocol and its attack plans.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "net/topology.h"
#include "net/wire.h"
#include "proto/epoch.h"

namespace icpda::core {

/// What a cluster head does when its cluster ends up smaller than the
/// minimum size the share algebra needs for privacy (3).
enum class SmallClusterPolicy : std::uint8_t {
  /// Report the members' values in the clear (no privacy for them,
  /// full accuracy). Degraded nodes are counted in the outcome.
  kClearReport,
  /// Suppress the cluster's contribution entirely (full privacy,
  /// data loss).
  kDrop,
};

struct IcpdaConfig {
  std::uint32_t query_id = 1;
  proto::TreeTiming timing;

  /// Stamp query_id as the span tag (TraceEvent::value of begin events)
  /// on every protocol phase span, so overlapping queries' latency
  /// decomposes per query in the trace. Off by default: single-query
  /// runs keep the tag at 0 and their golden digests unchanged.
  bool trace_query_spans = false;

  /// Cluster-head self-election probability on hearing the query.
  double pc = 0.3;

  /// Density-adaptive election (the family's iPDA rule p = k/N_heard,
  /// transplanted to cluster-head election): instead of the fixed pc,
  /// a node elects with probability min(1, adapt_k / hellos_heard), so
  /// the number of heads per radio neighbourhood stays ~adapt_k
  /// regardless of density. Off by default (the ICDCS paper uses a
  /// fixed pc); bench_adaptive_pc measures the difference.
  bool adaptive_pc = false;
  double adapt_k = 2.0;

  /// Minimum cluster size for the share algebra (m >= 3 keeps any
  /// single member from solving for a peer's value).
  std::uint32_t min_cluster_size = 3;
  SmallClusterPolicy small_cluster_policy = SmallClusterPolicy::kClearReport;
  /// Heads cap their roster at this size: the intra-cluster exchange is
  /// O(m^2) frames through one radio, so unbounded clusters in dense
  /// neighbourhoods collapse Phase II. Excess joiners re-join another
  /// head (see rejoin_attempts).
  std::uint32_t max_cluster_size = 8;
  /// How many times a member whose join was rejected/lost tries a
  /// different head before giving up as unclustered.
  std::uint32_t rejoin_attempts = 2;

  // -- Phase I timing (offsets from a node hearing the query) --------
  /// Non-heads wait this long collecting ClusterHello before joining.
  double join_delay_s = 0.10;
  /// A node that heard no ClusterHello retries its role decision every
  /// join_delay_s, self-electing with pc each round; after this many
  /// rounds it becomes a head unconditionally (so isolated nodes still
  /// report, as lone heads, under the small-cluster policy).
  std::uint32_t max_join_rounds = 4;
  /// Jitter window for sending the join (desynchronises the join wave).
  double join_jitter_s = 0.05;
  /// Heads close their roster this long after announcing.
  double roster_delay_s = 0.30;
  /// Roster broadcasts have no ARQ; repeat them this many times.
  std::uint32_t roster_repeats = 2;
  /// Members give up waiting for their head's roster after this long
  /// (measured from sending the join).
  double roster_timeout_s = 0.70;

  // -- Phase II timing (offsets from a member receiving the roster) --
  // A cluster of size m exchanges ~m^2 share frames, all serialized
  // through the head's radio (member-to-member shares relay via the
  // head), so the deadlines scale with m: every member knows m from
  // the roster.
  /// Base jitter window for sending the encrypted shares.
  double share_jitter_s = 0.10;
  /// Base delay until each member unicasts its assembled F value.
  double assemble_delay_s = 0.50;
  /// Jitter window on the F unicast.
  double f_jitter_s = 0.12;
  /// How many times the head repeats the digest broadcast (no ARQ).
  std::uint32_t f_repeats = 2;
  /// Base delay until the head solves and broadcasts the digest.
  double solve_delay_s = 0.95;
  /// Added to the share window (x0.6), assemble and solve deadlines
  /// per roster member.
  double per_member_slack_s = 0.08;

  [[nodiscard]] double share_window_s(std::size_t m) const {
    return share_jitter_s + 0.6 * per_member_slack_s * static_cast<double>(m);
  }
  [[nodiscard]] double assemble_at_s(std::size_t m) const {
    return assemble_delay_s + per_member_slack_s * static_cast<double>(m);
  }
  [[nodiscard]] double solve_at_s(std::size_t m) const {
    return solve_delay_s + per_member_slack_s * static_cast<double>(m);
  }

  /// Extra head-start added before the tree report slots so Phase II
  /// completes below every report (added to TreeTiming::report_delay).
  /// Must cover max_join_rounds * join_delay + roster_delay +
  /// solve_delay plus jitters.
  double phase2_budget_s = 4.0;

  /// Bound on the uniform random polynomial coefficients.
  double coeff_scale = 1000.0;

  // -- Phase III: witness auditing ------------------------------------
  /// Numeric tolerance when a witness compares the head's outgoing sum
  /// with its own reconstruction (floating-point slack only; losses
  /// are handled by claim matching, not by this threshold).
  double witness_tolerance = 1e-6;
  /// Alarm when the head omits an input the witness saw arrive.
  bool alarm_on_omission = true;
  /// Inputs overheard within this window before the head's report are
  /// exempt from omission alarms: the head builds the report payload at
  /// its slot but the frame airs only after MAC queueing/backoff (up to
  /// ~0.4 s under contention), so inputs landing in between were
  /// legitimately missed — the head forwards them verbatim instead, and
  /// the child's watchdog covers genuine drops in this window.
  double omission_guard_s = 0.6;

  /// Watchdog: after sending/forwarding a report to a (non-BS) parent,
  /// the sender overhears the medium and expects the parent either to
  /// forward the payload verbatim (relays) or to claim the reporter in
  /// its own aggregate (heads) within this window; otherwise it alarms.
  double watchdog_timeout_s = 1.0;
  bool watchdog_enabled = true;

  /// Base-station acceptance threshold on |alarm.expected - observed|;
  /// alarms with deviation below Th are ignored (loss tolerance).
  double th = 0.5;

  // -- Fault tolerance (crash/outage degradation) ---------------------
  /// Phase II recovery: if the solve deadline passes with F values
  /// missing or inconsistent, the head re-fixes the roster to the
  /// members whose F arrived (proved alive) and reruns the share
  /// exchange once at the reduced degree, instead of failing the
  /// cluster outright.
  bool phase2_recovery = true;
  /// Grace past the (recovery-extended) solve deadline before a member
  /// that never received a digest writes its cluster off and marks
  /// itself unclustered instead of witnessing for a dead head.
  double digest_grace_s = 0.4;
  [[nodiscard]] double digest_deadline_s(std::size_t m) const {
    return solve_at_s(m) * (phase2_recovery ? 2.0 : 1.0) + digest_grace_s;
  }
  /// Phase III failover: a reporter whose parent exhausts MAC retries
  /// (or stays watchdog-silent) adopts a backup parent — the best
  /// strictly-shallower neighbour heard during the flood — and
  /// re-dispatches after a short backoff.
  bool reroute_enabled = true;
  /// Parent switches allowed per node per epoch.
  std::uint32_t reroute_attempts = 2;
  /// Base backoff before re-dispatching through the new parent.
  double reroute_backoff_s = 0.15;
  /// Head failover: the first roster member after the head re-issues
  /// the endorsed cluster sum (under the head's reporter id, so the BS
  /// dedupes) when the head dies between digest and report. The backup
  /// first probes the head with a unicast; only a probe the MAC gives
  /// up on (no ACK from the head) triggers the takeover.
  bool backup_reporter = true;
  /// Probe this long before the last report slot (covers a full MAC
  /// retry ladder so the verdict is in by the backup's slot).
  double backup_probe_lead_s = 0.9;
  /// The backup's own slot sits this far past the last regular slot.
  double backup_slot_slack_s = 0.12;

  /// Optional aggregator-eligibility bitset carried in the query flood
  /// (bit per node id). Empty = every node may head/aggregate. The
  /// bisection localizer narrows this set round by round.
  net::Bytes allowed_mask;

  /// Active-adversary countermeasures (see core/adversary.h). ALL off
  /// by default: with the defaults the protocol's behaviour — and its
  /// wire bytes — are identical to the unhardened build (golden trace).
  struct HardeningConfig {
    /// Epoch-freshness tag stamped into every Phase II/III frame
    /// (0 = off). Receivers drop gated frame types whose trailer
    /// mismatches, so frames captured in earlier epochs are rejected
    /// at the first hop. The epoch driver bumps this every epoch.
    std::uint32_t epoch_tag = 0;
    /// Heads broadcast their own F announcement on the air before the
    /// digest; every listener (members AND adjacent heads) cross-checks
    /// it against the entry the head later publishes for itself —
    /// catching a head that forges its own digest slot (the one slot
    /// no member endorses) even when all its members collude.
    bool digest_crosscheck = false;
    /// Phase II recovery flags members that announced an F (proved
    /// alive, unicast path working) yet appear in NOBODY else's
    /// contributor list — shares withheld, not lost — and excludes
    /// them from the recovery roster instead of re-admitting the
    /// starver. Requires >= 3 announcers so genuine loss cannot be
    /// misattributed.
    bool attribute_withholders = false;
    /// Members refuse rosters smaller than this many nodes (0 = off):
    /// a disclosure coalition engineers tiny rosters to isolate one
    /// honest victim, so honest members walk away and re-join rather
    /// than accept an anonymity set below the floor.
    std::uint32_t min_honest_anonymity = 0;
  };
  HardeningConfig hardening;
};

/// Data-pollution attack plan: `polluters` tamper with the aggregate
/// they forward in Phase III by adding `delta` to the sum component
/// (and proportionally to count if `pollute_count`).
struct AttackPlan {
  std::unordered_set<net::NodeId> polluters;
  double delta = 0.0;
  bool pollute_count = false;
  /// Attackers maximise their aggregation role: a polluter always
  /// self-elects as cluster head instead of drawing pc (a compromised
  /// node is not bound by the honest protocol's coin flips).
  bool force_head = true;

  [[nodiscard]] bool is_polluter(net::NodeId id) const {
    return polluters.contains(id);
  }
  [[nodiscard]] bool active() const { return !polluters.empty() && delta != 0.0; }
};

}  // namespace icpda::core
