// Sorted-vector set for small, hot membership tracking.
//
// The protocol keeps a few per-node dedup/membership sets that are
// touched once per received frame (hello sources, forwarded-alarm
// keys) but only ever queried for membership and size — never
// iterated. std::set pays a node allocation and an O(log n) pointer
// chase per insert for ordering nobody reads; a sorted vector keeps
// the same semantics (strict weak order, unique elements) with
// contiguous storage, and past the first few epochs inserts are
// almost always duplicates, i.e. a binary search with no write.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace icpda::core {

template <typename T>
class FlatSet {
 public:
  /// Insert `v`; returns true if it was not already present.
  bool insert(const T& v) {
    const auto it = std::lower_bound(items_.begin(), items_.end(), v);
    if (it != items_.end() && *it == v) return false;
    items_.insert(it, v);
    return true;
  }

  [[nodiscard]] bool contains(const T& v) const {
    return std::binary_search(items_.begin(), items_.end(), v);
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }

 private:
  std::vector<T> items_;
};

}  // namespace icpda::core
