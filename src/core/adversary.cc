#include "core/adversary.h"

namespace icpda::core {

const char* attack_class_name(AttackClass c) {
  switch (c) {
    case AttackClass::kNone:
      return "none";
    case AttackClass::kDisclosure:
      return "disclosure";
    case AttackClass::kPollution:
      return "pollution";
    case AttackClass::kReplay:
      return "replay";
    case AttackClass::kWithhold:
      return "withhold";
  }
  return "?";
}

std::uint32_t resolve_compromised(const net::Network& net, const AdversaryPlan& plan,
                                  const std::vector<net::NodeId>& crashed,
                                  sim::Rng rng, AdversaryState& state) {
  state.nodes.clear();
  if (!plan.active()) return 0;
  for (net::NodeId id = 1; id < net.size(); ++id) {
    // Draw the Bernoulli unconditionally so the stream never depends on
    // the explicit set (same fraction + seed -> same random cohort).
    const bool drawn = plan.compromise_fraction > 0.0 &&
                       rng.bernoulli(plan.compromise_fraction);
    if (plan.marks(id) || drawn) state.nodes.insert(id);
  }
  // Crashed-first: a node that is both crashed and compromised resolves
  // to crashed — dead nodes run no attack code.
  for (const net::NodeId id : crashed) state.nodes.erase(id);
  return static_cast<std::uint32_t>(state.nodes.size());
}

}  // namespace icpda::core
