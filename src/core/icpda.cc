#include "core/icpda.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "crypto/cipher.h"
#include "sim/log.h"

namespace icpda::core {

using proto::Aggregate;
using proto::AlarmMsg;
using proto::ClusterDigestMsg;
using proto::ClusterHelloMsg;
using proto::ClusterRosterMsg;
using proto::FAnnounceMsg;
using proto::HelloMsg;
using proto::JoinMsg;
using proto::ReportMsg;
using proto::ShareMsg;

// ---------------------------------------------------------------------
// Start & query dissemination

void IcpdaApp::start(net::Node& node) {
  if (!node.is_base_station()) return;
  joined_ = true;
  node.schedule(sim::seconds(config_.timing.start_delay_s), [this, &node] {
    // The BS opens the epoch: its query flood is Phase I traffic.
    node.tracer().switch_phase(node.id(), sim::TracePhase::kClusterFormation,
                               node.now(), span_tag());
    HelloMsg hello;
    hello.query_id = config_.query_id;
    hello.hop = 0;
    hello.allowed_mask = config_.allowed_mask;
    query_ = hello;
    node.broadcast(proto::kHello, hello.to_bytes());
    node.metrics().add("icpda.query_issued");
    const auto close_at =
        sim::seconds(config_.phase2_budget_s) + config_.timing.close_delay();
    node.schedule(close_at, [this, &node] { close_epoch(node); });
  });
}

void IcpdaApp::on_receive(net::Node& node, const net::Frame& frame) {
  // replay_gate's first test is `epoch_tag == 0`; hoisting it here
  // keeps the un-hardened configuration (the common one) from paying a
  // non-inlined call per dispatched frame.
  if (config_.hardening.epoch_tag != 0 && replay_gate(node, frame)) return;
  if (adv_) maybe_capture(node, frame);
  switch (frame.type) {
    case proto::kHello:
      handle_hello(node, frame);
      break;
    case proto::kClusterHello:
      handle_cluster_hello(node, frame);
      break;
    case proto::kJoin:
      handle_join(node, frame);
      break;
    case proto::kClusterRoster:
      handle_roster(node, frame);
      break;
    case proto::kShare:
      handle_share(node, frame);
      break;
    case proto::kFAnnounce:
      handle_f_announce(node, frame);
      break;
    case proto::kClusterDigest:
      handle_digest(node, frame);
      break;
    case proto::kClusterReport:
      handle_report(node, frame);
      break;
    case proto::kAlarm:
      handle_alarm(node, frame);
      break;
    default:
      break;
  }
}

void IcpdaApp::on_overhear(net::Node& node, const net::Frame& frame) {
  if (config_.hardening.epoch_tag != 0 && replay_gate(node, frame)) return;
  if (adv_) maybe_capture(node, frame);
  switch (frame.type) {
    case proto::kClusterReport:
      overhear_report(node, frame);
      break;
    case proto::kAlarm:
      // Alarms are broadcast, so they arrive via on_receive; nothing
      // extra to do on the promiscuous path.
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------
// Phase I — tree join + cluster formation

void IcpdaApp::handle_hello(net::Node& node, const net::Frame& frame) {
  if (node.is_base_station()) return;
  const auto hello = HelloMsg::from_bytes(frame.payload);
  if (!hello || hello->query_id != config_.query_id) return;
  if (hello->hop >= config_.timing.max_hops) {
    node.metrics().add("icpda.hop_budget_exceeded");
    return;
  }

  // First valid query copy: the node is in Phase I from here until its
  // roster settles (switch_phase is a no-op on later copies).
  node.tracer().switch_phase(node.id(), sim::TracePhase::kClusterFormation,
                             node.now(), span_tag());

  if (frame.src != 0) hello_sources_.insert(frame.src);

  // Forward the flood exactly once, participating or not: excluded
  // nodes still carry the control plane (else the query cannot reach
  // past them), they just cannot be parents or aggregators.
  if (!flood_forwarded_) {
    flood_forwarded_ = true;
    query_ = *hello;
    HelloMsg rebroadcast = *hello;
    rebroadcast.hop = static_cast<std::uint16_t>(hello->hop + 1);
    const auto jitter =
        sim::seconds(rng(node).uniform(0.0, config_.timing.hello_jitter_s));
    node.schedule(jitter, [&node, payload = rebroadcast.to_bytes()]() mutable {
      node.broadcast(proto::kHello, std::move(payload));
    });
  }

  // Tree join: only via a participating parent (the BS, id 0, always
  // participates), and only if we participate ourselves.
  if (joined_) {
    // Late flood copies advertise alternative parents. Keep the
    // strictly shallower ones as Phase III failover candidates (strict
    // depth decrease keeps the reroute graph loop-free).
    if (frame.src != parent_ && hello->hop < hop_ &&
        (frame.src == 0 || hello->allows(frame.src))) {
      backup_parents_[frame.src] = hello->hop;
    }
    return;
  }
  if (!hello->allows(node.id())) return;  // excluded this round
  if (frame.src != 0 && !hello->allows(frame.src)) {
    node.metrics().add("icpda.parent_excluded");
    return;  // wait for a hello from a participating node
  }

  joined_ = true;
  parent_ = frame.src;
  hop_ = static_cast<std::uint16_t>(hello->hop + 1);
  allowed_aggregator_ = true;
  join_time_ = node.now();
  node.metrics().add("icpda.joined_tree");

  // A replaying node is on the air now: schedule this epoch's
  // injections of frames captured in earlier epochs.
  if (attacking(AttackClass::kReplay, node)) schedule_replays(node);

  // Immediate self-election (the CPDA rule: on hearing the query a
  // node becomes a cluster head with probability pc). A compromised
  // node ignores the coin and grabs the aggregator role. In adaptive
  // mode the decision is deferred to decide_role so the density
  // estimate (hello_sources_) can accumulate during join_delay.
  const bool grabs_role = attack_ && attack_->active() &&
                          attack_->force_head && attack_->is_polluter(node.id());
  // Disclosure and pollution adversaries maximise the aggregator role;
  // withholders avoid it (they starve clusters from the member side).
  const bool adv_grabs = compromised(node) && adversary_->force_head &&
                         (adversary_->attack == AttackClass::kDisclosure ||
                          adversary_->attack == AttackClass::kPollution);
  const bool adv_avoids = attacking(AttackClass::kWithhold, node);
  if (grabs_role || adv_grabs ||
      (!adv_avoids && !config_.adaptive_pc && rng(node).bernoulli(config_.pc))) {
    become_head(node);
  } else {
    node.schedule(sim::seconds(config_.join_delay_s),
                  [this, &node] { decide_role(node, 1); });
  }

  // Phase III slot, fixed relative to tree join.
  const auto report_at = sim::seconds(config_.phase2_budget_s) +
                         config_.timing.report_delay(hop_);
  node.schedule(report_at, [this, &node] { send_report(node); });
}

void IcpdaApp::become_head(net::Node& node) {
  role_ = ClusterRole::kHead;
  if (outcome_) ++outcome_->heads;
  node.metrics().add("icpda.head");
  ClusterHelloMsg msg;
  msg.query_id = config_.query_id;
  msg.head = node.id();
  msg.hop = hop_;
  const auto jitter =
      sim::seconds(rng(node).uniform(0.0, config_.timing.hello_jitter_s));
  node.schedule(jitter, [&node, payload = msg.to_bytes()]() mutable {
    node.broadcast(proto::kClusterHello, std::move(payload));
  });
  // Stagger roster closing across heads so the cluster phases of
  // neighbouring clusters do not all contend at the same instants.
  node.schedule(jitter + sim::seconds(config_.roster_delay_s +
                                      rng(node).uniform(0.0, 0.4)),
                [this, &node] { close_roster(node); });
}

void IcpdaApp::handle_cluster_hello(net::Node& node, const net::Frame& frame) {
  const auto msg = ClusterHelloMsg::from_bytes(frame.payload);
  if (!msg || msg->query_id != config_.query_id) return;
  if (msg->head == node.id()) return;
  if (!query_.allows(msg->head)) {
    // A node barred from aggregating announced itself as a head:
    // ignore it (receiver-side enforcement of the participation mask).
    node.metrics().add("icpda.head_excluded_ignored");
    return;
  }
  if (std::find(heard_heads_.begin(), heard_heads_.end(), msg->head) ==
      heard_heads_.end()) {
    heard_heads_.push_back(msg->head);
  }
  // Heads advertise their tree hop: shallower ones double as Phase III
  // failover parents.
  if (joined_ && msg->head != parent_ && msg->hop < hop_) {
    backup_parents_[msg->head] = msg->hop;
  }
}

void IcpdaApp::send_join(net::Node& node) {
  // Join a uniformly random cluster among those heard (CPDA rule).
  chosen_head_ = heard_heads_[rng(node).below(heard_heads_.size())];
  role_ = ClusterRole::kMember;
  ++join_attempts_;
  JoinMsg join;
  join.query_id = config_.query_id;
  join.member = node.id();
  join.head = chosen_head_;
  const auto jitter = sim::seconds(rng(node).uniform(0.0, config_.join_jitter_s));
  node.schedule(jitter, [this, &node, payload = join.to_bytes()]() mutable {
    node.send(chosen_head_, proto::kJoin, std::move(payload));
  });
  node.metrics().add("icpda.join_sent");
  // Guard the timeout with the attempt counter: the MAC-failure fast
  // path below can re-join earlier, and a stale timer from the previous
  // join must not cut the new head's answer window short.
  node.schedule(sim::seconds(config_.roster_timeout_s),
                [this, &node, attempt = join_attempts_] {
    if (role_ == ClusterRole::kMember && !cluster_.has_roster() &&
        join_attempts_ == attempt) {
      node.metrics().add("icpda.roster_missed");
      retry_or_give_up(node);
    }
  });
}

void IcpdaApp::retry_or_give_up(net::Node& node) {
  // Drop the head that failed us; try another if the budget allows.
  std::erase(heard_heads_, chosen_head_);
  if (join_attempts_ <= config_.rejoin_attempts && !heard_heads_.empty()) {
    node.metrics().add("icpda.rejoin");
    role_ = ClusterRole::kUndecided;
    send_join(node);
    return;
  }
  if (heard_heads_.empty()) {
    // Every head we ever heard is gone (crashed or unreachable). That
    // is not "no cluster wanted us" — it is "no cluster exists here":
    // re-enter the role decision at its final round, which makes us a
    // lone head, so our reading still reaches the BS under the
    // small-cluster policy instead of silently vanishing.
    node.metrics().add("icpda.head_failover");
    role_ = ClusterRole::kUndecided;
    decide_role(node, config_.max_join_rounds);
    return;
  }
  role_ = ClusterRole::kUnclustered;
  if (outcome_) ++outcome_->unclustered;
  node.metrics().add("icpda.unclustered");
}

void IcpdaApp::decide_role(net::Node& node, std::uint32_t round) {
  if (role_ != ClusterRole::kUndecided || node.is_base_station()) return;

  if (!heard_heads_.empty()) {
    send_join(node);
    return;
  }

  if (!allowed_aggregator_) {
    // Barred from aggregating and no head in range: excluded.
    role_ = ClusterRole::kUnclustered;
    if (outcome_) ++outcome_->unclustered;
    node.metrics().add("icpda.excluded_no_head");
    return;
  }

  if (round >= config_.max_join_rounds) {
    become_head(node);  // last resort: lone head
    return;
  }
  const double pc_eff =
      config_.adaptive_pc
          ? std::min(1.0, config_.adapt_k /
                              std::max<std::size_t>(1, hello_sources_.size()))
          : config_.pc;
  // Withholders never self-elect (see handle_hello); the final-round
  // lone-head fallback above still applies so they stay reachable.
  if (!attacking(AttackClass::kWithhold, node) && rng(node).bernoulli(pc_eff)) {
    become_head(node);
    return;
  }
  node.schedule(sim::seconds(config_.join_delay_s),
                [this, &node, round] { decide_role(node, round + 1); });
}

void IcpdaApp::handle_join(net::Node& node, const net::Frame& frame) {
  if (role_ != ClusterRole::kHead || roster_sent_) return;
  const auto join = JoinMsg::from_bytes(frame.payload);
  if (!join || join->query_id != config_.query_id || join->head != node.id()) return;
  if (!query_.allows(join->member)) {
    node.metrics().add("icpda.join_excluded_ignored");
    return;
  }
  if (std::find(joiners_.begin(), joiners_.end(), join->member) == joiners_.end()) {
    joiners_.push_back(join->member);
  }
}

void IcpdaApp::close_roster(net::Node& node) {
  if (role_ != ClusterRole::kHead || roster_sent_) return;
  roster_sent_ = true;

  ClusterRosterMsg roster;
  roster.query_id = config_.query_id;
  roster.head = node.id();
  roster.epoch_tag = config_.hardening.epoch_tag;
  roster.members.push_back(node.id());

  if (attacking(AttackClass::kDisclosure, node) && adversary_->engineer_roster) {
    // Coalition roster engineering (Sen–Maitra setup): admit every
    // compromised joiner and at most ONE honest victim. With a single
    // honest polynomial left unknown, the coalition's pooled shares
    // plus the public digest make the system full rank for the
    // victim's private value.
    std::vector<net::NodeId> keep, honest;
    for (const net::NodeId j : joiners_) {
      (adv_->is_compromised(j) ? keep : honest).push_back(j);
    }
    if (!honest.empty()) keep.push_back(honest.front());
    if (keep.size() != joiners_.size()) {
      ++adv_->rosters_engineered;
      node.metrics().add("icpda.roster_engineered");
      node.tracer().counter(node.id(), sim::TraceCounter::kAdversaryAction,
                            static_cast<std::uint64_t>(AttackClass::kDisclosure),
                            node.now());
      joiners_ = std::move(keep);
    }
  }

  // Cap the roster: the intra-cluster exchange is O(m^2) frames
  // through this node's single radio. Excess joiners see a roster
  // without themselves and re-join elsewhere.
  const std::size_t cap =
      std::max<std::size_t>(1, config_.max_cluster_size) - 1;
  if (joiners_.size() > cap) {
    rng(node).shuffle(joiners_);  // fairness: no id bias in who stays
    node.metrics().add("icpda.joiners_rejected", joiners_.size() - cap);
    joiners_.resize(cap);
  }
  for (const net::NodeId j : joiners_) roster.members.push_back(j);
  const std::size_t m = roster.members.size();
  if (outcome_) ++outcome_->cluster_sizes[static_cast<std::uint32_t>(m)];
  node.metrics().observe("icpda.cluster_size", static_cast<double>(m));

  if (m == 1) {
    // Lone head: no share algebra possible.
    switch (config_.small_cluster_policy) {
      case SmallClusterPolicy::kClearReport:
        clear_report_ = true;
        cluster_value_ = Aggregate::of(readings_(node.id()));
        if (outcome_) ++outcome_->degraded_privacy;
        node.metrics().add("icpda.lone_head_clear");
        break;
      case SmallClusterPolicy::kDrop:
        node.metrics().add("icpda.lone_head_dropped");
        if (outcome_) ++outcome_->clusters_failed;
        break;
    }
    return;
  }

  if (m < config_.min_cluster_size && outcome_) {
    // The algebra still runs (m >= 2) but in-cluster peers can deduce
    // each other's values: privacy degraded for every member.
    outcome_->degraded_privacy += static_cast<std::uint32_t>(m);
    node.metrics().add("icpda.small_cluster");
  }

  // Public seeds: a random permutation of 1..m (values are public; the
  // permutation just avoids structural correlation with node ids).
  std::vector<std::uint32_t> seeds(m);
  for (std::size_t i = 0; i < m; ++i) seeds[i] = static_cast<std::uint32_t>(i + 1);
  rng(node).shuffle(seeds);
  roster.seeds = seeds;

  // The roster broadcast has no ARQ: repeat it (members act on the
  // first copy; the MAC's sequence numbers make repeats distinct).
  for (std::uint32_t rep = 0; rep < std::max<std::uint32_t>(1, config_.roster_repeats);
       ++rep) {
    const auto at = sim::seconds(static_cast<double>(rep) * 0.04 +
                                 rng(node).uniform(0.0, 0.02));
    node.schedule(at, [&node, payload = roster.to_bytes()]() mutable {
      node.broadcast(proto::kClusterRoster, std::move(payload));
    });
  }
  node.metrics().add("icpda.roster_sent");

  // The head is a member of its own cluster: install the roster and
  // run Phase II alongside everyone else.
  if (cluster_.set_roster(node.id(), roster.members, roster.seeds, node.id())) {
    if (attacking(AttackClass::kDisclosure, node)) observe_roster(node);
    node.tracer().switch_phase(node.id(), sim::TracePhase::kShareExchange,
                               node.now(), span_tag());
    monitor_.set_target(node.id());
    const std::size_t cluster_m = cluster_.size();
    const auto jitter =
        sim::seconds(rng(node).uniform(0.0, config_.share_window_s(cluster_m)));
    node.schedule(jitter, [this, &node] { send_shares(node); });
    node.schedule(sim::seconds(config_.assemble_at_s(cluster_m)),
                  [this, &node] { announce_f(node); });
    node.schedule(sim::seconds(config_.solve_at_s(cluster_m)),
                  [this, &node] { solve_and_digest(node); });
  }
}

void IcpdaApp::handle_roster(net::Node& node, const net::Frame& frame) {
  // Header peek before the full parse (two u32_vec allocations): the
  // (query_id, head, round) prefix sits at fixed offsets, and a
  // round-0 roster only matters to an unrostered member that chose
  // this head. Every discard branch below runs before any side
  // effect, so returning on the peeked fields is observationally
  // identical; short payloads fall through to the parse, which
  // rejects them exactly as before.
  if (frame.payload.size() >= 9) {
    net::WireReader peek(frame.payload);
    const std::uint32_t query_id = peek.u32();
    const net::NodeId head = peek.u32();
    const std::uint8_t round = peek.u8();
    if (query_id != config_.query_id) return;
    if (round == 0 && (role_ != ClusterRole::kMember || head != chosen_head_ ||
                       cluster_.has_roster())) {
      return;
    }
  }
  const auto roster = ClusterRosterMsg::from_bytes(frame.payload);
  if (!roster || roster->query_id != config_.query_id) return;
  if (roster->round > 0) {
    handle_recovery_roster(node, *roster);
    return;
  }
  if (role_ != ClusterRole::kMember) return;
  if (roster->head != chosen_head_) return;
  if (cluster_.has_roster()) return;

  if (std::find(roster->members.begin(), roster->members.end(), node.id()) ==
      roster->members.end()) {
    // Our join was lost or the roster was full: try another head.
    node.metrics().add("icpda.join_rejected");
    retry_or_give_up(node);
    return;
  }
  if (config_.hardening.min_honest_anonymity > 0 && !compromised(node) &&
      roster->members.size() < config_.hardening.min_honest_anonymity) {
    // Anonymity floor: a tiny roster is exactly the shape a disclosure
    // coalition engineers around one victim. Walk away and try another
    // head rather than accept an anonymity set below the floor.
    // (Compromised members skip this — the attacker does not police
    // itself.)
    node.metrics().add("icpda.roster_refused");
    if (outcome_) ++outcome_->rosters_refused;
    node.tracer().counter(node.id(), sim::TraceCounter::kAdversaryDetect,
                          roster->head, node.now());
    retry_or_give_up(node);
    return;
  }
  if (!cluster_.set_roster(roster->head, roster->members, roster->seeds, node.id())) {
    role_ = ClusterRole::kUnclustered;
    if (outcome_) ++outcome_->unclustered;
    node.metrics().add("icpda.bad_roster");
    return;
  }
  if (outcome_) ++outcome_->members;
  if (attacking(AttackClass::kDisclosure, node)) observe_roster(node);
  monitor_.set_target(roster->head);
  node.metrics().add("icpda.member");
  node.tracer().switch_phase(node.id(), sim::TracePhase::kShareExchange,
                             node.now(), span_tag());

  // Shares that raced ahead of our roster copy are valid now.
  replay_early_shares();

  const std::size_t cluster_m = cluster_.size();
  const auto jitter =
      sim::seconds(rng(node).uniform(0.0, config_.share_window_s(cluster_m)));
  node.schedule(jitter, [this, &node] { send_shares(node); });
  const auto announce_at = sim::seconds(
      config_.assemble_at_s(cluster_m) + rng(node).uniform(0.0, config_.f_jitter_s));
  node.schedule(announce_at, [this, &node] { announce_f(node); });
  // If the head dies before a digest reaches us, stop waiting: a
  // member with no endorsed cluster sum by this deadline has no value
  // in flight and no head to witness for.
  node.schedule(sim::seconds(config_.digest_deadline_s(cluster_m)),
                [this, &node] { digest_deadline(node); });
}

void IcpdaApp::replay_early_shares() {
  for (const auto& [sender, entry] : early_shares_) {
    if (entry.first == phase2_round_ && cluster_.in_roster(sender)) {
      cluster_.record_share(sender, entry.second);
      observe_share(sender, entry.second);
    }
  }
  early_shares_.clear();
}

void IcpdaApp::digest_deadline(net::Node& node) {
  if (role_ != ClusterRole::kMember || monitor_.knows_cluster_sum()) return;
  // No digest by the (recovery-extended) deadline: the head is dead or
  // unreachable, and with Phase II unfinished our reading is provably
  // in no cluster sum. Stand down instead of hanging as a half-armed
  // witness; tree forwarding duties continue regardless of role.
  node.metrics().add("icpda.digest_missed");
  node.tracer().switch_phase(node.id(), sim::TracePhase::kReport, node.now(), span_tag());
  role_ = ClusterRole::kUnclustered;
  if (outcome_) {
    ++outcome_->unclustered;
    if (outcome_->members > 0) --outcome_->members;
  }
}

void IcpdaApp::handle_recovery_roster(net::Node& node, const ClusterRosterMsg& roster) {
  if (role_ != ClusterRole::kMember || !cluster_.has_roster()) return;
  if (roster.head != cluster_.head()) return;
  if (phase2_round_ >= roster.round) return;  // duplicate repeat
  if (monitor_.knows_cluster_sum()) return;   // round 0 finished for us

  if (std::find(roster.members.begin(), roster.members.end(), node.id()) ==
      roster.members.end()) {
    // The head never saw our F: it presumes us dead and our value is
    // out of this epoch's sum. Stand down as a witness.
    node.metrics().add("icpda.recovery_excluded");
    role_ = ClusterRole::kUnclustered;
    if (outcome_) {
      ++outcome_->unclustered;
      if (outcome_->members > 0) --outcome_->members;
    }
    return;
  }
  // In-place arena reset: set_roster validates fully before mutating,
  // so a bad recovery roster leaves the round-0 state untouched —
  // exactly what the old construct-then-move-assign did.
  if (!cluster_.set_roster(roster.head, roster.members, roster.seeds, node.id())) {
    node.metrics().add("icpda.bad_roster");
    return;
  }
  phase2_round_ = roster.round;
  f_sent_ = false;
  my_f_contributors_.clear();
  replay_early_shares();
  node.metrics().add("icpda.recovery_roster");
  node.tracer().switch_phase(node.id(), sim::TracePhase::kRecovery, node.now(), span_tag());

  // Rerun the exchange at the reduced degree on the recovery clock.
  const std::size_t cluster_m = cluster_.size();
  const auto jitter =
      sim::seconds(rng(node).uniform(0.0, config_.share_window_s(cluster_m)));
  node.schedule(jitter, [this, &node] { send_shares(node); });
  const auto announce_at = sim::seconds(
      config_.assemble_at_s(cluster_m) + rng(node).uniform(0.0, config_.f_jitter_s));
  node.schedule(announce_at, [this, &node] { announce_f(node); });
}

// ---------------------------------------------------------------------
// Phase II — shares, assembly, digest

void IcpdaApp::send_shares(net::Node& node) {
  const Aggregate contribution = Aggregate::of(readings_(node.id()));
  const auto seeds = cluster_.seed_values();
  make_shares_into(contribution, seeds, rng(node), share_scratch_, config_.coeff_scale);
  const auto& shares = share_scratch_;
  const auto& members = cluster_.members();

  cluster_.set_kept_share(shares[cluster_.my_index()]);
  if (attacking(AttackClass::kWithhold, node) && members.size() > 1) {
    // Withholding: keep our own share, send nothing to any peer. The
    // victims' F values become unassemblable (or inconsistent), so the
    // head cannot run the m-point Vandermonde solve — yet we still
    // announce an F below, so naive recovery keeps re-admitting us.
    adv_->shares_withheld += static_cast<std::uint32_t>(members.size() - 1);
    node.metrics().add("icpda.share_withheld");
    node.tracer().counter(node.id(), sim::TraceCounter::kAdversaryAction,
                          static_cast<std::uint64_t>(AttackClass::kWithhold),
                          node.now());
    return;
  }
  // Batched crypto for the cluster round: every pairwise key in one
  // pass (one cached key schedule under MasterPairwiseScheme), the
  // sealed body serialized once as a template with only the 24-byte
  // share patched per peer, and one seal buffer reused across peers.
  // Wire bytes and RNG draw order (coefficients first, then one nonce
  // per actually-sent share in member order) match the old per-share
  // loop exactly — pinned by CryptoBatchTest and the golden traces.
  keys_->link_keys(node.id(), members, link_keys_scratch_);
  ShareBody body{config_.query_id, phase2_round_, proto::Aggregate{}};
  body.epoch_tag = config_.hardening.epoch_tag;
  net::Bytes body_bytes = body.to_bytes();
  ShareMsg msg;
  msg.query_id = config_.query_id;
  msg.sender = node.id();
  msg.epoch_tag = config_.hardening.epoch_tag;
  for (std::size_t j = 0; j < members.size(); ++j) {
    if (j == cluster_.my_index()) continue;
    const net::NodeId peer = members[j];
    const auto& key = link_keys_scratch_[j];
    if (!key) {
      // No pairwise key with this member (possible under EG rings):
      // the share cannot be protected, so it is not sent. The cluster
      // will fail the consistency check unless everyone else also
      // missed this member.
      node.metrics().add("icpda.no_link_key");
      continue;
    }
    ShareBody::patch_share(body_bytes, shares[j]);
    msg.recipient = peer;
    crypto::seal_into(*key, rng(node)(), body_bytes, msg.sealed);
    // Cluster members are all within range of the head but not
    // necessarily of each other (the cluster is a star): member-to-
    // member shares are relayed through the head. The share is sealed
    // end-to-end under the pairwise key k_{sender,recipient}, so the
    // relaying head carries ciphertext it cannot read.
    const net::NodeId next_hop =
        (role_ == ClusterRole::kHead || peer == cluster_.head()) ? peer
                                                                 : cluster_.head();
    node.send(next_hop, proto::kShare, msg.to_bytes());
    node.metrics().add("icpda.share_sent");
  }
}

void IcpdaApp::handle_share(net::Node& node, const net::Frame& frame) {
  const auto msg = ShareMsg::from_bytes(frame.payload);
  if (!msg || msg->query_id != config_.query_id) return;
  if (msg->recipient != node.id()) {
    // Relay leg of a member-to-member share: forward if we are the
    // head of a cluster containing the recipient.
    if (role_ == ClusterRole::kHead && cluster_.has_roster() &&
        cluster_.in_roster(msg->recipient)) {
      node.send(msg->recipient, proto::kShare, frame.payload);
      node.metrics().add("icpda.share_relayed");
    }
    return;
  }
  const auto key = keys_->link_key(msg->sender, node.id());
  if (!key) return;
  // Arena open: the plaintext buffer is a member scratch, so steady-
  // state share reception decrypts without heap allocation.
  if (!crypto::open_into(*key, msg->sealed, opened_scratch_)) {
    node.metrics().add("icpda.share_bad_auth");
    return;
  }
  const auto body = ShareBody::from_bytes(opened_scratch_);
  if (!body || body->query_id != config_.query_id) return;
  if (body->round < phase2_round_) {
    // Round-0 stragglers after a recovery reset: their polynomial has
    // the wrong degree for the current roster — mixing them would
    // corrupt the algebra and fire false tamper alarms downstream.
    node.metrics().add("icpda.share_stale_round");
    return;
  }
  if (!cluster_.has_roster() || body->round > phase2_round_) {
    // A peer's roster copy (normal or recovery) beat ours: hold the
    // share until the matching roster arrives (it is authenticated by
    // the pairwise key either way).
    if (early_shares_.size() < 64) {
      early_shares_[msg->sender] = {body->round, body->share};
    }
    node.metrics().add("icpda.share_stashed");
    return;
  }
  if (f_sent_) {
    // Our F for this round is already out; a share landing now cannot
    // be folded in (everyone's contributor lists would diverge).
    node.metrics().add("icpda.share_late");
    return;
  }
  if (!cluster_.in_roster(msg->sender)) {
    node.metrics().add("icpda.share_unexpected");
    return;
  }
  cluster_.record_share(msg->sender, body->share);
  observe_share(msg->sender, body->share);
  node.metrics().add("icpda.share_received");
}

void IcpdaApp::announce_f(net::Node& node) {
  if (!cluster_.has_roster() || f_sent_) return;
  f_sent_ = true;
  my_f_ = cluster_.assemble(my_f_contributors_);

  FAnnounceMsg msg;
  msg.query_id = config_.query_id;
  msg.member = node.id();
  msg.head = cluster_.head();
  msg.round = phase2_round_;
  msg.f = my_f_;
  msg.contributors = my_f_contributors_;
  msg.epoch_tag = config_.hardening.epoch_tag;

  if (role_ == ClusterRole::kHead) {
    // The head's own F goes straight into its context.
    cluster_.record_announce(node.id(), my_f_, my_f_contributors_);
    if (config_.hardening.digest_crosscheck) {
      // Commit the head's own F on the air before the digest exists:
      // listeners pin it and later cross-check the digest's head entry
      // against this commitment (the one digest slot no member
      // endorses).
      node.broadcast(proto::kFAnnounce, msg.to_bytes());
      node.metrics().add("icpda.f_selfannounced");
    }
  } else {
    node.send(cluster_.head(), proto::kFAnnounce, msg.to_bytes());
    node.metrics().add("icpda.f_sent");
  }
}

void IcpdaApp::handle_f_announce(net::Node& node, const net::Frame& frame) {
  if (role_ != ClusterRole::kHead && !config_.hardening.digest_crosscheck) return;
  const auto msg = FAnnounceMsg::from_bytes(frame.payload);
  if (!msg || msg->query_id != config_.query_id) return;
  if (config_.hardening.digest_crosscheck && msg->member == msg->head &&
      msg->member == frame.src) {
    // A head committing its own F: pin it for the digest cross-check.
    head_f_seen_[msg->member] = msg->f.sum;
  }
  if (role_ != ClusterRole::kHead || msg->head != node.id()) return;
  if (msg->round != phase2_round_) {
    // Round-0 F arriving after a recovery reset (or a probe re-send
    // racing ahead): different-degree polynomials, not comparable.
    node.metrics().add("icpda.f_stale_round");
    return;
  }
  if (!cluster_.in_roster(msg->member)) return;
  cluster_.record_announce(msg->member, msg->f, msg->contributors);
  node.metrics().add("icpda.f_received");
}

void IcpdaApp::solve_and_digest(net::Node& node) {
  if (role_ != ClusterRole::kHead || clear_report_ || cluster_value_) return;
  if (!cluster_.complete() || !cluster_.consistent()) {
    node.metrics().add(cluster_.complete() ? "icpda.cluster_inconsistent"
                                           : "icpda.cluster_incomplete");
    if (config_.phase2_recovery && !recovery_started_) {
      // A member crashed (or its frames all died) mid-exchange. The
      // degree-(m-1) interpolation cannot run with a missing F, so
      // re-fix the roster to the members that proved alive and rerun
      // the share exchange once at the reduced degree.
      start_phase2_recovery(node);
      return;
    }
    if (outcome_) ++outcome_->clusters_failed;
    return;
  }
  // Pollution: a compromised head forges its OWN entry in the digest —
  // the one slot no member endorses (each member checks only its own
  // F). Dividing the injected bias by this entry's Lagrange weight at 0
  // makes the solved cluster sum come out exactly pollution_delta high,
  // so witnesses armed with the (also biased) digest still pass.
  bool forged = false;
  auto f_vals = cluster_.announced_f_values();  // roster order
  if (attacking(AttackClass::kPollution, node) && f_vals.size() >= 2) {
    const auto w = lagrange_weights_at_zero(cluster_.seed_values());
    const std::size_t me = cluster_.my_index();
    if (me < w.size() && w[me] != 0.0) {
      f_vals[me].sum += adversary_->pollution_delta / w[me];
      forged = true;
      ++adv_->digests_forged;
      if (outcome_) ++outcome_->pollution_events;
      node.metrics().add("icpda.digest_forged");
      node.tracer().counter(node.id(), sim::TraceCounter::kAdversaryAction,
                            static_cast<std::uint64_t>(AttackClass::kPollution),
                            node.now());
    }
  }

  const auto v =
      forged ? solve_cluster_sum(cluster_.seed_values(), f_vals) : cluster_.solve();
  if (!v) {
    node.metrics().add("icpda.solve_failed");
    if (outcome_) ++outcome_->clusters_failed;
    return;
  }
  cluster_value_ = *v;
  monitor_.set_cluster_sum(*v);
  node.metrics().add("icpda.cluster_solved");
  node.tracer().switch_phase(node.id(), sim::TracePhase::kHeadAggregation,
                             node.now(), span_tag());

  // Consolidated digest so every member can verify & solve too.
  ClusterDigestMsg digest;
  digest.query_id = config_.query_id;
  digest.head = node.id();
  digest.members = cluster_.members();
  digest.f_values = forged ? f_vals : cluster_.announced_f_values();
  digest.contributors = cluster_.contributor_set();
  digest.epoch_tag = config_.hardening.epoch_tag;
  if (attacking(AttackClass::kDisclosure, node)) observe_digest(node, digest);

  for (std::uint32_t r = 0; r < std::max<std::uint32_t>(1, config_.f_repeats); ++r) {
    const auto jitter = sim::seconds(
        rng(node).uniform(0.0, config_.share_jitter_s) +
        static_cast<double>(r) * 0.03);
    node.schedule(jitter, [&node, payload = digest.to_bytes()]() mutable {
      node.broadcast(proto::kClusterDigest, std::move(payload));
    });
  }
  if (recovery_started_) node.metrics().add("icpda.cluster_recovered");
}

void IcpdaApp::start_phase2_recovery(net::Node& node) {
  recovery_started_ = true;
  node.metrics().add("icpda.phase2_recovery");
  node.tracer().switch_phase(node.id(), sim::TracePhase::kRecovery, node.now(), span_tag());

  // Survivors: members whose F arrived (proof of life past the
  // assemble deadline), keeping roster order and their original seeds
  // (a subset of distinct non-zero seeds is still distinct non-zero).
  // The head's own F is always recorded, so it is always survivors[0].
  ClusterRosterMsg roster;
  roster.query_id = config_.query_id;
  roster.head = node.id();
  roster.round = 1;
  roster.epoch_tag = config_.hardening.epoch_tag;
  const auto& all = cluster_.members();
  const auto& all_seeds = cluster_.seed_ints();
  for (std::size_t j = 0; j < all.size(); ++j) {
    if (!cluster_.announced(all[j])) continue;
    if (config_.hardening.attribute_withholders && all[j] != node.id() &&
        cluster_.announces_received() >= 3 && cluster_.included_by(all[j]) == 0) {
      // Announced an F (alive, unicast path working) yet appears in
      // NOBODY else's contributor list: with >= 3 announcers the ARQ'd
      // share unicasts cannot all have died one-sidedly, so this member
      // withheld its shares. Exclude it from the recovery roster instead
      // of re-admitting the starver for a second round of the same.
      node.metrics().add("icpda.withholder_flagged");
      if (outcome_) ++outcome_->withholders_flagged;
      node.tracer().counter(node.id(), sim::TraceCounter::kAdversaryDetect,
                            all[j], node.now());
      raise_alarm(node, all[j], AlarmMsg::kDropSuspect, 0.0, 0.0);
      continue;
    }
    roster.members.push_back(all[j]);
    roster.seeds.push_back(all_seeds[j]);
  }
  const std::size_t m = roster.members.size();
  const std::size_t orig_m = all.size();

  if (m <= 1) {
    // Nobody else proved alive: collapse to the lone-head policy so at
    // least our own reading survives the epoch.
    switch (config_.small_cluster_policy) {
      case SmallClusterPolicy::kClearReport:
        clear_report_ = true;
        cluster_value_ = Aggregate::of(readings_(node.id()));
        if (outcome_) ++outcome_->degraded_privacy;
        node.metrics().add("icpda.recovery_lone_clear");
        break;
      case SmallClusterPolicy::kDrop:
        if (outcome_) ++outcome_->clusters_failed;
        node.metrics().add("icpda.recovery_lone_dropped");
        break;
    }
    return;
  }

  if (m < config_.min_cluster_size && orig_m >= config_.min_cluster_size &&
      outcome_) {
    // The crash shrank a healthy cluster below the privacy floor.
    outcome_->degraded_privacy += static_cast<std::uint32_t>(m);
    node.metrics().add("icpda.recovery_small_cluster");
  }

  for (std::uint32_t rep = 0; rep < std::max<std::uint32_t>(1, config_.roster_repeats);
       ++rep) {
    const auto at = sim::seconds(static_cast<double>(rep) * 0.04 +
                                 rng(node).uniform(0.0, 0.02));
    node.schedule(at, [&node, payload = roster.to_bytes()]() mutable {
      node.broadcast(proto::kClusterRoster, std::move(payload));
    });
  }

  phase2_round_ = 1;
  // In-place arena reset; cannot fail here (the head is survivors[0]
  // and the seeds are a distinct non-zero subset of the round-0 ones).
  cluster_.set_roster(node.id(), roster.members, roster.seeds, node.id());
  f_sent_ = false;
  my_f_contributors_.clear();

  const auto jitter =
      sim::seconds(rng(node).uniform(0.0, config_.share_window_s(m)));
  node.schedule(jitter, [this, &node] { send_shares(node); });
  node.schedule(sim::seconds(config_.assemble_at_s(m)),
                [this, &node] { announce_f(node); });
  node.schedule(sim::seconds(config_.solve_at_s(m)),
                [this, &node] { solve_and_digest(node); });
}

void IcpdaApp::handle_digest(net::Node& node, const net::Frame& frame) {
  const bool member_path = role_ == ClusterRole::kMember && cluster_.has_roster();
  if (!member_path && !config_.hardening.digest_crosscheck) return;
  // Header peek mirroring handle_roster: without the crosscheck sweep
  // only our own head's digest can matter, and with overhear degrees
  // of ~45 almost every digest heard belongs to a foreign cluster.
  // The peeked checks replicate the first two discard branches below,
  // which run before any side effect.
  if (!config_.hardening.digest_crosscheck && frame.payload.size() >= 8) {
    net::WireReader peek(frame.payload);
    if (peek.u32() != config_.query_id) return;
    if (peek.u32() != cluster_.head()) return;
  }
  const auto digest = ClusterDigestMsg::from_bytes(frame.payload);
  if (!digest || digest->query_id != config_.query_id) return;
  if (config_.hardening.digest_crosscheck) crosscheck_digest(node, *digest);
  if (!member_path) return;
  if (digest->head != cluster_.head()) return;
  if (monitor_.knows_cluster_sum()) return;  // duplicate repeat
  if (digest->members != cluster_.members() ||
      digest->f_values.size() != digest->members.size()) {
    node.metrics().add("icpda.digest_malformed");
    return;
  }
  if (attacking(AttackClass::kDisclosure, node)) observe_digest(node, *digest);

  // Endorsement check 1: our own F entry must be exactly what we sent.
  const std::size_t my_idx = cluster_.my_index();
  if (f_sent_ && digest->f_values[my_idx] != my_f_) {
    // Provable forgery by the head.
    node.metrics().add("icpda.digest_forged_f");
    raise_alarm(node, cluster_.head(), AlarmMsg::kValueTamper, my_f_.sum,
                digest->f_values[my_idx].sum);
    return;
  }
  // Endorsement check 2: the claimed common contributor set must match
  // our own assembly (otherwise we cannot vouch for the solution).
  if (f_sent_ && digest->contributors != my_f_contributors_) {
    node.metrics().add("icpda.digest_contributor_mismatch");
    return;
  }

  const auto v = solve_cluster_sum(cluster_.seed_values(), digest->f_values);
  if (!v) {
    node.metrics().add("icpda.digest_unsolvable");
    return;
  }
  cluster_value_ = *v;
  monitor_.set_cluster_sum(*v);
  node.metrics().add("icpda.witness_armed");
  node.tracer().switch_phase(node.id(), sim::TracePhase::kPeerMonitoring,
                             node.now(), span_tag());

  // Head failover: the first member after the head in roster order is
  // the designated backup reporter for the endorsed cluster sum.
  if (config_.backup_reporter && f_sent_ && cluster_.size() >= 2 &&
      cluster_.members()[1] == node.id()) {
    arm_backup_reporter(node);
  }
}

void IcpdaApp::arm_backup_reporter(net::Node& node) {
  // The backup probes the head with a unicast shortly before the last
  // report slot; the MAC ACK doubles as a liveness check. Only a head
  // that neither ACKs the probe nor is overheard reporting triggers
  // the takeover — under the head's reporter id, so the BS dedupes if
  // the head did report and we merely missed it.
  const sim::SimTime last_slot = join_time_ +
                                 sim::seconds(config_.phase2_budget_s) +
                                 config_.timing.report_delay(0);
  const auto probe_at = last_slot - sim::seconds(config_.backup_probe_lead_s);
  const auto report_at = last_slot + sim::seconds(config_.backup_slot_slack_s +
                                                  rng(node).uniform(0.0, 0.05));
  const auto now = node.now();
  node.schedule(probe_at > now ? probe_at - now : sim::SimTime{}, [this, &node] {
    if (head_report_seen_ || role_ != ClusterRole::kMember || !f_sent_) return;
    probe_sent_ = true;
    FAnnounceMsg msg;
    msg.query_id = config_.query_id;
    msg.member = node.id();
    msg.head = cluster_.head();
    msg.round = phase2_round_;
    msg.f = my_f_;
    msg.contributors = my_f_contributors_;
    msg.epoch_tag = config_.hardening.epoch_tag;
    node.send(cluster_.head(), proto::kFAnnounce, msg.to_bytes());
    node.metrics().add("icpda.backup_probe");
  });
  node.schedule(report_at > now ? report_at - now : sim::SimTime{},
                [this, &node] { backup_report(node); });
}

void IcpdaApp::backup_report(net::Node& node) {
  if (role_ != ClusterRole::kMember || head_report_seen_ || !cluster_value_) return;
  // Without positive evidence of death (an un-ACKed probe), stay
  // quiet: a duplicate under the head's id is only safe when the BS
  // can dedupe it, and an absorbed aggregate hides the head's id.
  if (!probe_sent_ || !probe_failed_) return;
  ReportMsg report;
  report.query_id = config_.query_id;
  report.reporter = cluster_.head();
  report.aggregate = *cluster_value_;
  report.epoch_tag = config_.hardening.epoch_tag;
  report.items.push_back(proto::ReportItem{cluster_.head(), *cluster_value_});
  node.metrics().add("icpda.backup_report");
  node.tracer().counter(node.id(), sim::TraceCounter::kBackupReport,
                        cluster_.head(), node.now());
  if (joined_) dispatch_up(node, report, report.to_bytes());
}

// ---------------------------------------------------------------------
// Phase III — up-tree aggregation + peer monitoring

void IcpdaApp::handle_report(net::Node& node, const net::Frame& frame) {
  const auto report = ReportMsg::from_bytes(frame.payload);
  if (!report || report->query_id != config_.query_id) return;
  if (frame.src != 0 && !query_.allows(frame.src)) {
    // Excluded nodes must not inject aggregation traffic.
    node.metrics().add("icpda.report_from_excluded");
    return;
  }

  // Reporter-level dedupe: a report instance is identified by its
  // reporter id (one aggregate per node per epoch). Re-hands from a
  // watchdog miss and app-level retransmissions would otherwise be
  // merged twice — silently corrupting the sum.
  const bool already_merged =
      std::any_of(items_.begin(), items_.end(), [&](const proto::ReportItem& it) {
        return it.id == report->reporter;
      });

  if (node.is_base_station()) {
    if (already_merged) {
      node.metrics().add("icpda.report_duplicate");
      return;
    }
    pending_.merge(report->aggregate);
    items_.push_back(proto::ReportItem{report->reporter, report->aggregate});
    if (outcome_) outcome_->last_report_at = node.now();
    node.metrics().add("icpda.report_at_bs");
    return;
  }

  // Only cluster heads aggregate (their members witness-audit them);
  // everyone else forwards verbatim so the watchdog check is exact.
  if (role_ == ClusterRole::kHead && !reported_) {
    if (already_merged) {
      node.metrics().add("icpda.report_duplicate");
      return;
    }
    pending_.merge(report->aggregate);
    items_.push_back(proto::ReportItem{report->reporter, report->aggregate});
    node.metrics().add("icpda.report_merged");
    return;
  }
  if (role_ == ClusterRole::kHead && already_merged) {
    // A re-hand for something we already claimed in our (sent) report:
    // re-emit verbatim so the child's watchdog can see the hand-off.
    forward_verbatim(node, frame);
    return;
  }
  forward_verbatim(node, frame);
}

void IcpdaApp::forward_verbatim(net::Node& node, const net::Frame& frame) {
  if (!joined_) return;
  auto report = ReportMsg::from_bytes(frame.payload);
  if (!report) return;

  net::Bytes payload = frame.payload;
  if (attack_ && attack_->is_polluter(node.id())) {
    // A compromised relay tampers with the values it is asked to carry.
    report->aggregate.sum += attack_->delta;
    if (attack_->pollute_count) report->aggregate.count += attack_->delta;
    payload = report->to_bytes();
    node.metrics().add("icpda.pollution_injected");
    if (outcome_) ++outcome_->pollution_events;
  }

  // A repeat hand-off (the child missed our first transmission and
  // re-handed): re-transmit so the child can overhear, but do NOT arm
  // another expectation of our own — our duty upward was discharged by
  // the first forward. Without this, re-hands cascade up the whole
  // path and congestion feeds on itself.
  for (const auto& exp : watchdog_) {
    if (exp.payload == payload) {
      node.send(parent_, proto::kClusterReport, payload);
      node.metrics().add("icpda.report_reforwarded");
      return;
    }
  }
  dispatch_up(node, *report, payload);
  node.metrics().add("icpda.report_forwarded");
}

void IcpdaApp::dispatch_up(net::Node& node, const ReportMsg& report,
                           const net::Bytes& payload) {
  node.send(parent_, proto::kClusterReport, payload);
  if (parent_ != 0) {
    // Track the hand-off even with the watchdog disabled: the record
    // also drives the app-level retransmission in on_send_failed.
    expect_forward(node, report.reporter, payload, /*attempt=*/1);
  }
}

void IcpdaApp::send_report(net::Node& node) {
  if (reported_ || node.is_base_station() || !joined_) return;
  reported_ = true;
  // The report slot opens Phase III for every tree node: heads
  // originate, everyone else is on pure forwarding duty from here.
  node.tracer().switch_phase(node.id(), sim::TracePhase::kReport, node.now(), span_tag());

  if (role_ != ClusterRole::kHead) {
    // Members and unclustered nodes originate nothing: their readings
    // travel inside cluster sums; in-transit reports were forwarded
    // verbatim on arrival.
    return;
  }

  ReportMsg report;
  report.query_id = config_.query_id;
  report.reporter = node.id();
  report.aggregate = pending_;
  report.items = items_;
  report.epoch_tag = config_.hardening.epoch_tag;

  if (cluster_value_) {
    // The head's own cluster sum rides as an item under its own id.
    report.aggregate.merge(*cluster_value_);
    report.items.push_back(proto::ReportItem{node.id(), *cluster_value_});
  }

  const bool polluting = attack_ && attack_->is_polluter(node.id());
  if (polluting && !report.items.empty()) {
    // The attacker must corrupt a concrete item (the itemized format
    // makes total-only smearing trivially detectable); the naive
    // attacker modelled here inflates its own cluster item if it has
    // one, else the first child item, and keeps the total consistent.
    auto& victim = report.items.back();
    victim.value.sum += attack_->delta;
    report.aggregate.sum += attack_->delta;
    if (attack_->pollute_count) {
      victim.value.count += attack_->delta;
      report.aggregate.count += attack_->delta;
    }
    node.metrics().add("icpda.pollution_injected");
    if (outcome_) ++outcome_->pollution_events;
  }

  if (report.items.empty()) {
    // Failed cluster and no child inputs: nothing to carry.
    node.metrics().add("icpda.report_skipped");
    return;
  }
  dispatch_up(node, report, report.to_bytes());
  node.metrics().add("icpda.report_sent");
  if (outcome_) ++outcome_->reporters;
}

void IcpdaApp::expect_forward(net::Node& node, net::NodeId reporter,
                              net::Bytes payload, std::uint32_t attempt) {
  watchdog_.push_back(Expectation{reporter, std::move(payload),
                                  !config_.watchdog_enabled, false, attempt});
  if (!config_.watchdog_enabled) return;  // record kept for retries only
  const std::size_t idx = watchdog_.size() - 1;
  // The parent may legitimately hold the data until its own report
  // slot (it aggregates if it is a head): the deadline must cover that
  // slot — computed from the parent's hop = ours - 1 — plus grace.
  const std::uint16_t parent_hop = hop_ > 0 ? static_cast<std::uint16_t>(hop_ - 1) : 0;
  const sim::SimTime parent_slot = join_time_ +
                                   sim::seconds(config_.phase2_budget_s) +
                                   config_.timing.report_delay(parent_hop);
  const sim::SimTime fire_at =
      std::max(node.now(), parent_slot) + sim::seconds(config_.watchdog_timeout_s);
  node.schedule(fire_at - node.now(), [this, &node, idx] {
    if (idx >= watchdog_.size() || watchdog_[idx].satisfied) return;
    watchdog_[idx].satisfied = true;  // this entry's verdict is final
    const auto exp = watchdog_[idx];
    if (exp.send_attempts < 3 && rehands_used_ < kMaxRehandsPerEpoch) {
      // First miss: we may simply have failed to overhear the hand-off
      // (collision at us). Re-hand the report — an honest parent
      // re-forwards or re-claims it; only a second miss alarms. The
      // per-epoch budget keeps a congested neighbourhood from feeding
      // on its own retransmissions.
      ++rehands_used_;
      node.metrics().add("icpda.watchdog_rehand");
      node.send(parent_, proto::kClusterReport, exp.payload);
      expect_forward(node, exp.reporter, exp.payload, /*attempt=*/3);
      return;
    }
    // The MAC confirmed both deliveries and the parent still never
    // forwarded or claimed the data. A parent that has also been
    // completely silent since more likely died holding it than dropped
    // it on purpose: fail over to a backup parent instead of accusing
    // a corpse (the advisory alarm stays for the active case).
    if (parent_reports_overheard_ == 0 && reroute_to_backup(node)) {
      redispatch(node, exp.payload);
      return;
    }
    node.metrics().add("icpda.watchdog_alarm");
    node.metrics().add(parent_reports_overheard_ > 0
                           ? "icpda.watchdog_alarm_parent_active"
                           : "icpda.watchdog_alarm_parent_silent");
    ICPDA_LOG(kWarn) << "watchdog alarm: node=" << node.id() << " parent="
                     << parent_ << " reporter=" << exp.reporter
                     << " t=" << node.now().seconds();
    raise_alarm(node, parent_, AlarmMsg::kDropSuspect,
                /*expected=*/1.0, /*observed=*/0.0);
  });
}

void IcpdaApp::on_send_failed(net::Node& node, const net::Frame& frame) {
  if (frame.type == proto::kJoin) {
    // The MAC exhausted its retries without one ACK from the chosen
    // head: the head is dead or out of range. Fail over immediately
    // instead of sitting out the roster timeout (the timeout's attempt
    // guard keeps the stale timer from firing on the next join).
    const auto join = JoinMsg::from_bytes(frame.payload);
    if (join && join->head == chosen_head_ &&
        role_ == ClusterRole::kMember && !cluster_.has_roster()) {
      node.metrics().add("icpda.join_unreachable");
      retry_or_give_up(node);
    }
    return;
  }
  if (frame.type == proto::kFAnnounce) {
    if (probe_sent_ && frame.dst == cluster_.head()) {
      probe_failed_ = true;  // the head never ACKed: presumed dead
      node.metrics().add("icpda.backup_probe_failed");
    }
    return;
  }
  if (frame.type != proto::kClusterReport) return;
  node.metrics().add("icpda.report_send_failed");
  if (frame.dst != parent_) {
    // Stale destination: this frame was purged from (or drained its
    // ladder against) a parent we have already failed over from. The
    // verdict on that parent is in — just resend through the current
    // one, and retire the expectation armed for the old send.
    for (auto& exp : watchdog_) {
      if (exp.payload == frame.payload && !exp.failure_handled) {
        exp.failure_handled = true;
        exp.satisfied = true;
        break;
      }
    }
    redispatch(node, frame.payload);
    return;
  }
  for (auto& exp : watchdog_) {
    // Find the live expectation for this payload. Our own unicast
    // never reached the parent, so no alarm is warranted — cancel it
    // and retry once after the congestion that killed the MAC's
    // retries has had time to clear.
    if (exp.payload != frame.payload || exp.failure_handled) continue;
    exp.failure_handled = true;
    exp.satisfied = true;
    const std::uint32_t attempt = exp.send_attempts + 1;
    // A full retry ladder with zero ACKs from a parent we have never
    // overheard transmit a report is a death verdict — reroute now,
    // while the close deadline can still be met, instead of burning
    // another ladder into a black hole. An active parent gets the
    // benefit of the doubt (congestion) and one same-parent retry.
    if (attempt > 2 || parent_reports_overheard_ == 0) {
      if (reroute_to_backup(node)) {
        redispatch(node, exp.payload);
        return;
      }
      if (attempt > 2) {
        node.metrics().add("icpda.report_lost");
        return;
      }
      // No backup available: give the same parent its retry after all.
    }
    node.schedule(
        sim::seconds(0.1 + rng(node).uniform(0.0, 0.1)),
        [this, &node, reporter = exp.reporter, payload = exp.payload, attempt] {
          node.send(parent_, proto::kClusterReport, payload);
          if (parent_ != 0) expect_forward(node, reporter, payload, attempt);
          node.metrics().add("icpda.report_retried");
        });
    return;
  }
}

bool IcpdaApp::reroute_to_backup(net::Node& node) {
  if (!config_.reroute_enabled || reroutes_used_ >= config_.reroute_attempts) {
    return false;
  }
  failed_parents_.insert(parent_);
  // Best surviving candidate: smallest advertised hop (every candidate
  // was strictly shallower than us at flood time, so parent chains
  // keep descending toward the BS and cannot loop).
  net::NodeId best = net::kNoNode;
  std::uint16_t best_hop = std::numeric_limits<std::uint16_t>::max();
  for (const auto& [cand, cand_hop] : backup_parents_) {
    if (failed_parents_.contains(cand)) continue;
    if (cand_hop < best_hop) {
      best = cand;
      best_hop = cand_hop;
    }
  }
  if (best == net::kNoNode) {
    node.metrics().add("icpda.reroute_exhausted");
    return false;
  }
  ++reroutes_used_;
  const net::NodeId dead = parent_;
  parent_ = best;
  parent_reports_overheard_ = 0;  // fresh ledger for the new parent
  // Everything still queued for the dead parent would serialise a full
  // retry ladder per frame (head-of-line blocking live traffic for
  // seconds); fail it all now — the failures re-enter on_send_failed
  // with a stale dst and get redispatched through the new parent.
  node.purge_sends_to(dead);
  node.metrics().add("icpda.reroute");
  node.tracer().counter(node.id(), sim::TraceCounter::kReroute, best, node.now());
  if (outcome_) ++outcome_->reroutes;
  ICPDA_LOG(kInfo) << "reroute: node=" << node.id() << " new_parent=" << best
                   << " t=" << node.now().seconds();
  return true;
}

void IcpdaApp::redispatch(net::Node& node, const net::Bytes& payload) {
  const auto backoff = sim::seconds(
      config_.reroute_backoff_s * (1.0 + rng(node).uniform(0.0, 1.0)));
  node.schedule(backoff, [this, &node, payload] {
    const auto report = ReportMsg::from_bytes(payload);
    if (!report) return;
    dispatch_up(node, *report, payload);
    node.metrics().add("icpda.report_rerouted");
  });
}

void IcpdaApp::check_watchdog(net::Node& node, const ReportMsg& report,
                              const net::Bytes& payload) {
  for (auto& exp : watchdog_) {
    if (exp.satisfied) continue;
    // (a) verbatim forward, or (b) the parent is a head and its own
    // aggregate claims our reporter as a contributor.
    if (payload == exp.payload) {
      exp.satisfied = true;
      continue;
    }
    if (report.reporter == parent_ && report.claims(exp.reporter)) {
      exp.satisfied = true;
      continue;
    }
    // (c) the parent re-emitted OUR reporter's record with different
    // bytes: that is provable in-transit tampering, not loss.
    if (report.reporter == exp.reporter && report.reporter != parent_) {
      const auto original = ReportMsg::from_bytes(exp.payload);
      exp.satisfied = true;  // verdict reached either way
      node.metrics().add("icpda.watchdog_tamper");
      raise_alarm(node, parent_, AlarmMsg::kValueTamper,
                  original ? original->aggregate.sum : 0.0,
                  report.aggregate.sum);
    }
  }
}

void IcpdaApp::overhear_report(net::Node& node, const net::Frame& frame) {
  // Decide from the frame header alone whether this report can matter
  // before paying for the parse (items vector and all): with overhear
  // degrees of ~45 the typical report concerns neither our parent nor
  // our monitored head. Parsing is side-effect-free (no metrics, no
  // RNG), so skipping it for frames no branch below would touch is
  // observationally identical.
  const bool from_parent = frame.src == parent_;
  const bool monitoring =
      role_ == ClusterRole::kMember && monitor_.target() != net::kNoNode;
  if (!from_parent && !(monitoring && (frame.dst == monitor_.target() ||
                                       frame.src == monitor_.target()))) {
    return;
  }
  const auto report = ReportMsg::from_bytes(frame.payload);
  if (!report || report->query_id != config_.query_id) return;

  // Watchdog: anything our tree parent transmits may satisfy our
  // pending forward expectations.
  if (frame.src == parent_) {
    ++parent_reports_overheard_;
    if (!watchdog_.empty()) check_watchdog(node, *report, frame.payload);
  }

  // Witness monitoring (cluster members only).
  if (role_ != ClusterRole::kMember || monitor_.target() == net::kNoNode) return;

  if (frame.dst == monitor_.target()) {
    // An input arriving at our head.
    monitor_.record_input(*report, node.now());
    return;
  }
  if (frame.src == monitor_.target() && report->reporter == monitor_.target()) {
    // Our head's own aggregated report: audit it. (Verbatim forwards
    // by the head keep the original reporter and are covered by the
    // originator's watchdog instead.)
    head_report_seen_ = true;  // the backup reporter stands down
    const auto verdict = monitor_.audit(*report, node.now());
    switch (verdict.kind) {
      case WitnessMonitor::Verdict::Kind::kClean:
        node.metrics().add("icpda.audit_clean");
        break;
      case WitnessMonitor::Verdict::Kind::kPartialClean:
        node.metrics().add("icpda.audit_partial_clean");
        break;
      case WitnessMonitor::Verdict::Kind::kNoKnowledge:
        node.metrics().add("icpda.audit_no_knowledge");
        break;
      case WitnessMonitor::Verdict::Kind::kMismatch:
        node.metrics().add("icpda.audit_alarm");
        raise_alarm(node, monitor_.target(), AlarmMsg::kValueTamper,
                    verdict.expected_sum, verdict.observed_sum);
        break;
      case WitnessMonitor::Verdict::Kind::kOmission:
        // An input we heard is missing from the head's claim. The head
        // may genuinely never have received it (collision at the head
        // while we heard it cleanly), so -- like relay drops -- this is
        // advisory: it feeds rerouting/reputation, and deliberate
        // VALUE changes remain the epoch-rejecting offence. The child
        // itself tracks the fate of its data via the watchdog.
        node.metrics().add("icpda.audit_omission");
        raise_alarm(node, monitor_.target(), AlarmMsg::kDropSuspect,
                    verdict.expected_sum, verdict.observed_sum);
        break;
    }
  }
}

void IcpdaApp::raise_alarm(net::Node& node, net::NodeId accused,
                           AlarmMsg::Kind kind, double expected, double observed) {
  // One alarm per accused node per epoch: repeated evidence against
  // the same neighbour adds nothing and alarm floods are expensive.
  if (!alarms_forwarded_.insert({node.id(), accused})) return;
  AlarmMsg alarm;
  alarm.query_id = config_.query_id;
  alarm.kind = kind;
  alarm.witness = node.id();
  alarm.accused = accused;
  alarm.expected_sum = expected;
  alarm.observed_sum = observed;
  alarm.epoch_tag = config_.hardening.epoch_tag;
  node.broadcast(proto::kAlarm, alarm.to_bytes());
  node.metrics().add("icpda.alarm_raised");
}

void IcpdaApp::handle_alarm(net::Node& node, const net::Frame& frame) {
  // An alarm flood re-delivers one (witness, accused) pair roughly
  // `degree` times per node, and both branches below dedupe on that
  // pair before touching any state. AlarmMsg::from_bytes is
  // side-effect-free, so peek the fixed-offset header (query_id @0,
  // kind @4, witness @5, accused @9) and drop copies that cannot
  // change state before paying for the full decode.
  if (frame.payload.size() >= 13) {
    net::WireReader peek(frame.payload);
    if (peek.u32() != config_.query_id) return;
    peek.u8();
    const net::NodeId witness = peek.u32();
    const net::NodeId accused = peek.u32();
    if (alarms_forwarded_.contains({witness, accused})) return;
  }
  const auto alarm = AlarmMsg::from_bytes(frame.payload);
  if (!alarm || alarm->query_id != config_.query_id) return;

  if (node.is_base_station()) {
    // The flood delivers many copies of one alarm: dedupe here too.
    const auto key = std::make_pair(alarm->witness, alarm->accused);
    if (!alarms_forwarded_.insert(key)) return;
    if (outcome_) {
      outcome_->alarms.push_back(*alarm);
      if (alarm->kind == AlarmMsg::kDropSuspect) {
        ++outcome_->drop_suspicions;
      } else if (std::abs(alarm->expected_sum - alarm->observed_sum) > config_.th) {
        ++outcome_->significant_alarms;
      }
    }
    node.metrics().add("icpda.alarm_at_bs");
    return;
  }
  // Flood: rebroadcast each distinct (witness, accused) once.
  const auto key = std::make_pair(alarm->witness, alarm->accused);
  if (alarms_forwarded_.insert(key)) {
    node.broadcast(proto::kAlarm, frame.payload);
  }
}

void IcpdaApp::close_epoch(net::Node& node) {
  reported_ = true;
  if (outcome_) {
    outcome_->result = pending_;
    outcome_->closed_at = node.now();
  }
  node.metrics().add("icpda.epoch_closed");
}

// ---------------------------------------------------------------------
// Active-adversary interception helpers

bool IcpdaApp::replay_gate(net::Node& node, const net::Frame& frame) {
  if (config_.hardening.epoch_tag == 0) return false;
  if (!proto::epoch_tag_gated(frame.type)) return false;
  if (!proto::epoch_tag_stale(frame.payload, config_.hardening.epoch_tag)) {
    return false;
  }
  // A gated frame without this epoch's freshness trailer: either a
  // replay of a capture from an earlier epoch or a pre-hardening
  // capture (no trailer at all). Drop it before any handler runs.
  node.metrics().add("icpda.replay_rejected");
  if (outcome_) ++outcome_->replay_rejections;
  node.tracer().counter(node.id(), sim::TraceCounter::kAdversaryDetect,
                        frame.src, node.now());
  return true;
}

void IcpdaApp::maybe_capture(net::Node& node, const net::Frame& frame) {
  if (!attacking(AttackClass::kReplay, node)) return;
  if (frame.type != proto::kFAnnounce && frame.type != proto::kClusterReport) {
    return;
  }
  if (adv_->captured.size() >= AdversaryState::kCaptureCap) return;
  auto& mine = adv_->capture_counts[{adv_->epoch, node.id()}];
  if (mine >= AdversaryState::kCapturePerNode) return;
  ++mine;
  adv_->captured.push_back(AdversaryState::CapturedFrame{
      node.id(), adv_->epoch, frame.type, frame.dst, frame.payload});
}

void IcpdaApp::schedule_replays(net::Node& node) {
  std::uint32_t budget = adversary_->replay_budget;
  for (const auto& cap : adv_->captured) {
    if (budget == 0) break;
    if (cap.capturer != node.id() || cap.epoch >= adv_->epoch) continue;
    --budget;
    // Reports are most damaging near the Phase III slots; everything
    // else goes out mid-Phase II. Copy the capture into the closure —
    // the vector may grow while these callbacks are pending.
    const double at = cap.type == proto::kClusterReport
                          ? config_.phase2_budget_s + rng(node).uniform(0.0, 0.4)
                          : 0.6 + rng(node).uniform(0.0, 0.6);
    node.schedule(sim::seconds(at), [this, &node, type = cap.type, dst = cap.dst,
                                     payload = cap.payload] {
      ++adv_->replays_injected;
      node.metrics().add("icpda.replay_injected");
      node.tracer().counter(node.id(), sim::TraceCounter::kAdversaryAction,
                            static_cast<std::uint64_t>(AttackClass::kReplay),
                            node.now());
      if (dst == net::kBroadcast) {
        node.broadcast(type, payload);
      } else {
        node.send(dst, type, payload);
      }
    });
  }
}

void IcpdaApp::observe_roster(net::Node& node) {
  if (!attacking(AttackClass::kDisclosure, node) || !cluster_.has_roster()) return;
  auto& obs = adv_->clusters[{adv_->epoch, cluster_.head()}];
  obs.members = cluster_.members();
  obs.seeds = cluster_.seed_ints();
  obs.shares.clear();
  obs.f_values.clear();
  obs.digest_seen = false;
}

void IcpdaApp::observe_share(net::NodeId sender, const proto::Aggregate& share) {
  if (adv_ == nullptr || adversary_ == nullptr ||
      adversary_->attack != AttackClass::kDisclosure || !cluster_.has_roster()) {
    return;
  }
  const net::NodeId self = cluster_.members()[cluster_.my_index()];
  if (!adv_->is_compromised(self)) return;
  // The coalition pools every share a compromised member receives:
  // p_sender(x_self), keyed (recipient, sender).
  adv_->clusters[{adv_->epoch, cluster_.head()}].shares[{self, sender}] = share;
}

void IcpdaApp::observe_digest(net::Node& node, const proto::ClusterDigestMsg& digest) {
  if (!attacking(AttackClass::kDisclosure, node)) return;
  const auto it = adv_->clusters.find({adv_->epoch, digest.head});
  if (it == adv_->clusters.end()) return;
  if (it->second.members != digest.members) return;
  it->second.f_values = digest.f_values;
  it->second.digest_seen = true;
}

void IcpdaApp::crosscheck_digest(net::Node& node, const proto::ClusterDigestMsg& digest) {
  if (compromised(node)) return;  // the attacker does not police itself
  const auto seen = head_f_seen_.find(digest.head);
  if (seen == head_f_seen_.end()) return;
  for (std::size_t j = 0; j < digest.members.size() && j < digest.f_values.size();
       ++j) {
    if (digest.members[j] != digest.head) continue;
    if (std::abs(digest.f_values[j].sum - seen->second) >
        config_.witness_tolerance) {
      // The head published a different F for itself than it committed
      // on the air before solving: the one digest slot no member
      // endorses, forged. Attributable — alarm on the head.
      node.metrics().add("icpda.digest_crosscheck_alarm");
      if (outcome_) ++outcome_->crosscheck_alarms;
      node.tracer().counter(node.id(), sim::TraceCounter::kAdversaryDetect,
                            digest.head, node.now());
      raise_alarm(node, digest.head, AlarmMsg::kValueTamper, seen->second,
                  digest.f_values[j].sum);
    }
    return;
  }
}

// ---------------------------------------------------------------------

namespace {

/// Fold one shard's outcome part into the final outcome. Every field an
/// app writes during the run is either a per-node tally (summed — each
/// node bumps exactly one part) or written only by the base station
/// (result / closed_at / last_report_at / alarms: taken from the single
/// part that has them; max() is take-if-set since the zero default
/// never exceeds a real time). coverage / values_lost are computed
/// after the merge, and nodes_crashed / compromised_nodes are set by
/// the driver on the final outcome before the run (parts hold zero).
void merge_outcome_part(IcpdaOutcome& into, IcpdaOutcome& part) {
  if (part.result) into.result = std::move(part.result);
  into.closed_at = std::max(into.closed_at, part.closed_at);
  into.last_report_at = std::max(into.last_report_at, part.last_report_at);
  for (auto& alarm : part.alarms) into.alarms.push_back(std::move(alarm));
  into.significant_alarms += part.significant_alarms;
  into.drop_suspicions += part.drop_suspicions;
  into.heads += part.heads;
  into.members += part.members;
  into.unclustered += part.unclustered;
  into.reporters += part.reporters;
  into.degraded_privacy += part.degraded_privacy;
  into.clusters_failed += part.clusters_failed;
  into.pollution_events += part.pollution_events;
  for (const auto& [size, n] : part.cluster_sizes) into.cluster_sizes[size] += n;
  into.nodes_crashed += part.nodes_crashed;
  into.reroutes += part.reroutes;
  into.values_lost += part.values_lost;
  into.compromised_nodes += part.compromised_nodes;
  into.replay_rejections += part.replay_rejections;
  into.withholders_flagged += part.withholders_flagged;
  into.crosscheck_alarms += part.crosscheck_alarms;
  into.rosters_refused += part.rosters_refused;
}

/// Shared epoch tail: bounded horizon, trace finalization, coverage.
/// `outcome` is the SAME object the attached apps point at — by
/// reference, so everything the BS writes during net.run() lands here.
/// Sharded runs instead hand each app its shard's entry in `parts`
/// (concurrent drains must not share a tally sink); the parts fold into
/// `outcome` here, in shard order, before coverage is computed.
void run_epoch_tail(net::Network& net, const IcpdaConfig& config,
                    IcpdaOutcome& outcome, std::vector<IcpdaOutcome>& parts) {
  // Bounded horizon: the epoch is over shortly after the BS closes;
  // whatever straggler events remain (late alarms, MAC drain) cannot
  // matter beyond a grace period, and a hard bound keeps any
  // congestion pathology from running the simulation forever. Relative
  // to now() so a second epoch can run on the same Network.
  const auto horizon = net.now() +
                       sim::seconds(config.timing.start_delay_s +
                                    config.phase2_budget_s) +
                       config.timing.close_delay() + sim::seconds(3.0);
  net.run(horizon);
  for (IcpdaOutcome& part : parts) merge_outcome_part(outcome, part);
  // Balance the trace: close every span still open (stragglers, nodes
  // that crashed after their last event) and stamp the epoch boundary.
  net.tracer().finalize_epoch(net.now());
  // Coverage is judged against the nodes still alive at epoch end: a
  // crashed node's reading is gone by definition, but every survivor's
  // reading should have made it into the accepted aggregate.
  const std::size_t live = net.live_count();
  const double live_sensors =
      live > 0 ? static_cast<double>(live - 1) : 0.0;  // minus the BS
  if (outcome.result && live_sensors > 0.0) {
    const double reached = std::min(outcome.result->count, live_sensors);
    outcome.coverage = reached / live_sensors;
    outcome.values_lost =
        static_cast<std::uint32_t>(std::lround(live_sensors - reached));
  }
}

}  // namespace

IcpdaOutcome run_icpda_epoch(net::Network& net, const IcpdaConfig& config,
                             const proto::ReadingProvider& readings,
                             const crypto::KeyScheme& keys, const AttackPlan& attack,
                             const FaultPlan& faults) {
  IcpdaOutcome outcome;
  // Sharded run: apps on concurrent shards cannot share one tally sink,
  // so each shard accumulates into its own part (folded by the tail).
  std::vector<IcpdaOutcome> parts(net.shard_count() > 1 ? net.shard_count() : 0);
  if (parts.empty()) {
    net.attach_apps([&](net::Node&) {
      return std::make_unique<IcpdaApp>(config, readings, &keys, &attack, &outcome);
    });
  } else {
    const sim::ShardPlan& plan = net.shard_plan();
    net.attach_apps([&](net::Node& n) {
      return std::make_unique<IcpdaApp>(config, readings, &keys, &attack,
                                        &parts[plan.shard_of[n.id()]]);
    });
  }
  outcome.nodes_crashed = schedule_fault_plan(net, faults, net.rng().fork("faults"));
  run_epoch_tail(net, config, outcome, parts);
  return outcome;
}

IcpdaOutcome run_icpda_epoch(net::Network& net, const IcpdaConfig& config,
                             const proto::ReadingProvider& readings,
                             const crypto::KeyScheme& keys,
                             const AdversaryPlan& adversary, AdversaryState& adv,
                             const FaultPlan& faults) {
  IcpdaOutcome outcome;
  // An adversary run shares AdversaryState across every compromised
  // node: arbitrary cross-shard state, so the engine must serialize.
  // Identical results (the gate replays the canonical order), and the
  // apps can then safely share the one outcome sink as well.
  std::vector<IcpdaOutcome> parts;
  if (net.shard_count() > 1) net.set_serialize_all(true);
  // Faults first: the crash set must be materialized before the
  // compromised set resolves, so crashed-and-compromised deterministically
  // resolves to crashed (a dead node mounts no attack).
  std::vector<net::NodeId> crashed;
  outcome.nodes_crashed =
      schedule_fault_plan(net, faults, net.rng().fork("faults"), &crashed);
  ++adv.epoch;
  outcome.compromised_nodes =
      resolve_compromised(net, adversary, crashed, net.rng().fork("adversary"), adv);
  static const AttackPlan kNoLegacyAttack;
  net.attach_apps([&](net::Node&) {
    return std::make_unique<IcpdaApp>(config, readings, &keys, &kNoLegacyAttack,
                                      &outcome, &adversary, &adv);
  });
  run_epoch_tail(net, config, outcome, parts);
  return outcome;
}

}  // namespace icpda::core
