#include "core/cpda_algebra.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "proto/messages.h"

namespace icpda::core {

std::vector<double> default_seeds(std::size_t m) {
  std::vector<double> seeds(m);
  for (std::size_t i = 0; i < m; ++i) seeds[i] = static_cast<double>(i + 1);
  return seeds;
}

namespace {
bool seeds_valid(const std::vector<double>& seeds) {
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (seeds[i] == 0.0) return false;
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      if (seeds[i] == seeds[j]) return false;
    }
  }
  return !seeds.empty();
}
}  // namespace

void make_shares_into(const proto::Aggregate& value, const std::vector<double>& seeds,
                      sim::Rng& rng, std::vector<proto::Aggregate>& shares,
                      double coeff_scale) {
  const std::size_t m = seeds.size();
  const std::size_t n_coeffs = m > 0 ? m - 1 : 0;
  double x_max = 1.0;
  for (const double s : seeds) x_max = std::max(x_max, std::abs(s));
  // Three polynomials share the structure; coefficients are drawn
  // independently per component (count, sum, sum_sq). The degree-t
  // coefficient is scaled by 1/x_max^t so every blinding term stays
  // O(coeff_scale) at every seed — keeping the share magnitudes (and
  // hence the Vandermonde conditioning of the solve) flat in m.
  // Privacy is unaffected: disclosure is a rank property of the linear
  // system, independent of the noise magnitudes.
  proto::Aggregate stack_coeffs[31];
  std::vector<proto::Aggregate> heap_coeffs;
  proto::Aggregate* coeffs = stack_coeffs;
  if (n_coeffs > 31) {
    heap_coeffs.resize(n_coeffs);
    coeffs = heap_coeffs.data();
  }
  double scale_t = coeff_scale;
  for (std::size_t t = 0; t < n_coeffs; ++t) {
    scale_t /= x_max;
    coeffs[t].count = rng.uniform(-scale_t, scale_t);
    coeffs[t].sum = rng.uniform(-scale_t, scale_t);
    coeffs[t].sum_sq = rng.uniform(-scale_t, scale_t);
  }
  shares.assign(m, proto::Aggregate{});
  for (std::size_t j = 0; j < m; ++j) {
    // Horner evaluation of each component polynomial at seeds[j].
    proto::Aggregate acc;  // zero
    for (std::size_t t = n_coeffs; t-- > 0;) {
      acc.count = acc.count * seeds[j] + coeffs[t].count;
      acc.sum = acc.sum * seeds[j] + coeffs[t].sum;
      acc.sum_sq = acc.sum_sq * seeds[j] + coeffs[t].sum_sq;
    }
    shares[j].count = acc.count * seeds[j] + value.count;
    shares[j].sum = acc.sum * seeds[j] + value.sum;
    shares[j].sum_sq = acc.sum_sq * seeds[j] + value.sum_sq;
  }
}

std::vector<proto::Aggregate> make_shares(const proto::Aggregate& value,
                                          const std::vector<double>& seeds,
                                          sim::Rng& rng, double coeff_scale) {
  std::vector<proto::Aggregate> shares;
  make_shares_into(value, seeds, rng, shares, coeff_scale);
  return shares;
}

std::vector<double> lagrange_weights_at_zero(const std::vector<double>& seeds) {
  if (!seeds_valid(seeds)) return {};
  const std::size_t m = seeds.size();
  std::vector<double> w(m, 1.0);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      if (k == j) continue;
      w[j] *= seeds[k] / (seeds[k] - seeds[j]);
    }
  }
  return w;
}

std::optional<proto::Aggregate> solve_cluster_sum(
    const std::vector<double>& seeds, const std::vector<proto::Aggregate>& assembled) {
  if (seeds.size() != assembled.size()) return std::nullopt;
  if (!seeds_valid(seeds)) return std::nullopt;
  const std::size_t m = seeds.size();
  // Weights on the stack for protocol-sized clusters (m <= 32); the
  // loop order matches lagrange_weights_at_zero() exactly so the float
  // results are bit-identical to the weight-vector path.
  double stack_w[32];
  std::vector<double> heap_w;
  double* w = stack_w;
  if (m > 32) {
    heap_w.resize(m);
    w = heap_w.data();
  }
  for (std::size_t j = 0; j < m; ++j) w[j] = 1.0;
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      if (k == j) continue;
      w[j] *= seeds[k] / (seeds[k] - seeds[j]);
    }
  }
  proto::Aggregate v;
  for (std::size_t j = 0; j < m; ++j) {
    v.count += w[j] * assembled[j].count;
    v.sum += w[j] * assembled[j].sum;
    v.sum_sq += w[j] * assembled[j].sum_sq;
  }
  return v;
}

// ---------------------------------------------------------------------
// Exact path.

namespace {

// __extension__ silences -Wpedantic: __int128 is a GCC/Clang extension
// we rely on for the exact rational interpolation path.
__extension__ typedef __int128 Int128;

Int128 gcd128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Minimal exact rational on 128-bit integers; magnitudes in the CPDA
/// use stay far below overflow (seeds <= ~16, values <= 2^40).
struct Fraction {
  Int128 num = 0;
  Int128 den = 1;

  void normalize() {
    if (den < 0) {
      num = -num;
      den = -den;
    }
    const Int128 g = gcd128(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
  }

  Fraction& operator+=(const Fraction& o) {
    num = num * o.den + o.num * den;
    den *= o.den;
    normalize();
    return *this;
  }

  friend Fraction operator*(const Fraction& a, const Fraction& b) {
    Fraction r{a.num * b.num, a.den * b.den};
    r.normalize();
    return r;
  }
};

bool seeds_valid_exact(const std::vector<std::int64_t>& seeds) {
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (seeds[i] == 0) return false;
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      if (seeds[i] == seeds[j]) return false;
    }
  }
  return !seeds.empty();
}

/// Seed bound for the specialized solve: with |x_j| <= 2^17 and m = 8
/// the weight numerator is at most 2^(17*7) = 2^119 and the denominator
/// at most 2^(18*7) = 2^126, both inside Int128. This gates only which
/// path runs — the shared accumulation's Int128 domain is the caller
/// precondition documented in cpda_algebra.h, and is much smaller.
constexpr std::int64_t kExactFastSeedBound = std::int64_t{1} << 17;

/// Specialized Vandermonde solve for a compile-time cluster size. Each
/// Lagrange weight w_j = prod_k x_k / prod_k (x_k - x_j) is formed as
/// one numerator/denominator product pair and reduced by a single gcd,
/// replacing M-1 incremental Fraction normalizations. Lowest-terms
/// rationals (den > 0) are a canonical form, so the reduced w_j — and
/// every Fraction op after it — is identical to the generic path's.
template <std::size_t M>
std::optional<std::int64_t> solve_exact_fast(const std::int64_t* seeds,
                                             const std::int64_t* assembled) {
  Fraction total;
  for (std::size_t j = 0; j < M; ++j) {
    Int128 num = 1;
    Int128 den = 1;
    for (std::size_t k = 0; k < M; ++k) {
      if (k == j) continue;
      num *= seeds[k];
      den *= seeds[k] - seeds[j];
    }
    Fraction w{num, den};
    w.normalize();
    total += w * Fraction{assembled[j], 1};
  }
  total.normalize();
  if (total.den != 1) return std::nullopt;  // corrupted inputs
  return static_cast<std::int64_t>(total.num);
}

}  // namespace

ExactShareSet make_shares_exact(std::int64_t value,
                                const std::vector<std::int64_t>& seeds,
                                sim::Rng& rng, std::int64_t coeff_bound) {
  const std::size_t m = seeds.size();
  std::vector<std::int64_t> coeffs(m > 0 ? m - 1 : 0);
  for (auto& c : coeffs) c = rng.range(-coeff_bound, coeff_bound);
  ExactShareSet out;
  out.shares.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    Int128 acc = 0;
    for (std::size_t t = coeffs.size(); t-- > 0;) {
      acc = acc * seeds[j] + coeffs[t];
    }
    acc = acc * seeds[j] + value;
    out.shares[j] = static_cast<std::int64_t>(acc);
  }
  return out;
}

std::optional<std::int64_t> solve_cluster_sum_exact(
    const std::vector<std::int64_t>& seeds, const std::vector<std::int64_t>& assembled) {
  if (seeds.size() != assembled.size() || !seeds_valid_exact(seeds)) return std::nullopt;
  const std::size_t m = seeds.size();
  bool small_seeds = true;
  for (const std::int64_t s : seeds) {
    if (s > kExactFastSeedBound || s < -kExactFastSeedBound) {
      small_seeds = false;
      break;
    }
  }
  if (small_seeds) {
    // The cluster sizes the protocol actually produces; anything else
    // falls through to the generic solve.
    switch (m) {
      case 3: return solve_exact_fast<3>(seeds.data(), assembled.data());
      case 5: return solve_exact_fast<5>(seeds.data(), assembled.data());
      case 8: return solve_exact_fast<8>(seeds.data(), assembled.data());
      default: break;
    }
  }
  return solve_cluster_sum_exact_generic(seeds, assembled);
}

std::optional<std::int64_t> solve_cluster_sum_exact_generic(
    const std::vector<std::int64_t>& seeds, const std::vector<std::int64_t>& assembled) {
  if (seeds.size() != assembled.size() || !seeds_valid_exact(seeds)) return std::nullopt;
  const std::size_t m = seeds.size();
  Fraction total;
  for (std::size_t j = 0; j < m; ++j) {
    Fraction w{1, 1};
    for (std::size_t k = 0; k < m; ++k) {
      if (k == j) continue;
      w = w * Fraction{seeds[k], seeds[k] - seeds[j]};
    }
    total += w * Fraction{assembled[j], 1};
  }
  total.normalize();
  if (total.den != 1) return std::nullopt;  // corrupted inputs
  return static_cast<std::int64_t>(total.num);
}

// ---------------------------------------------------------------------

net::Bytes ShareBody::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u8(round);
  share.write(w);
  proto::write_epoch_tag(w, epoch_tag);
  return std::move(w).take();
}

void ShareBody::patch_share(net::Bytes& bytes, const proto::Aggregate& share) {
  const auto put = [&bytes](std::size_t off, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (std::size_t i = 0; i < 8; ++i) {
      bytes[off + i] = static_cast<std::uint8_t>(bits >> (8 * i));
    }
  };
  put(kShareOffset, share.count);
  put(kShareOffset + 8, share.sum);
  put(kShareOffset + 16, share.sum_sq);
}

std::optional<ShareBody> ShareBody::from_bytes(const net::Bytes& b) {
  try {
    net::WireReader r(b);
    ShareBody body;
    body.query_id = r.u32();
    body.round = r.u8();
    body.share = proto::Aggregate::read(r);
    body.epoch_tag = proto::read_epoch_tag(r);
    return body;
  } catch (const net::WireError&) {
    return std::nullopt;
  }
}

}  // namespace icpda::core
