#include "core/cpda_algebra.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "proto/messages.h"

namespace icpda::core {

std::vector<double> default_seeds(std::size_t m) {
  std::vector<double> seeds(m);
  for (std::size_t i = 0; i < m; ++i) seeds[i] = static_cast<double>(i + 1);
  return seeds;
}

namespace {
bool seeds_valid(const std::vector<double>& seeds) {
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (seeds[i] == 0.0) return false;
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      if (seeds[i] == seeds[j]) return false;
    }
  }
  return !seeds.empty();
}
}  // namespace

std::vector<proto::Aggregate> make_shares(const proto::Aggregate& value,
                                          const std::vector<double>& seeds,
                                          sim::Rng& rng, double coeff_scale) {
  const std::size_t m = seeds.size();
  double x_max = 1.0;
  for (const double s : seeds) x_max = std::max(x_max, std::abs(s));
  // Three polynomials share the structure; coefficients are drawn
  // independently per component (count, sum, sum_sq). The degree-t
  // coefficient is scaled by 1/x_max^t so every blinding term stays
  // O(coeff_scale) at every seed — keeping the share magnitudes (and
  // hence the Vandermonde conditioning of the solve) flat in m.
  // Privacy is unaffected: disclosure is a rank property of the linear
  // system, independent of the noise magnitudes.
  std::vector<proto::Aggregate> coeffs(m > 0 ? m - 1 : 0);
  double scale_t = coeff_scale;
  for (auto& c : coeffs) {
    scale_t /= x_max;
    c.count = rng.uniform(-scale_t, scale_t);
    c.sum = rng.uniform(-scale_t, scale_t);
    c.sum_sq = rng.uniform(-scale_t, scale_t);
  }
  std::vector<proto::Aggregate> shares(m);
  for (std::size_t j = 0; j < m; ++j) {
    // Horner evaluation of each component polynomial at seeds[j].
    proto::Aggregate acc;  // zero
    for (std::size_t t = coeffs.size(); t-- > 0;) {
      acc.count = acc.count * seeds[j] + coeffs[t].count;
      acc.sum = acc.sum * seeds[j] + coeffs[t].sum;
      acc.sum_sq = acc.sum_sq * seeds[j] + coeffs[t].sum_sq;
    }
    shares[j].count = acc.count * seeds[j] + value.count;
    shares[j].sum = acc.sum * seeds[j] + value.sum;
    shares[j].sum_sq = acc.sum_sq * seeds[j] + value.sum_sq;
  }
  return shares;
}

std::vector<double> lagrange_weights_at_zero(const std::vector<double>& seeds) {
  if (!seeds_valid(seeds)) return {};
  const std::size_t m = seeds.size();
  std::vector<double> w(m, 1.0);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      if (k == j) continue;
      w[j] *= seeds[k] / (seeds[k] - seeds[j]);
    }
  }
  return w;
}

std::optional<proto::Aggregate> solve_cluster_sum(
    const std::vector<double>& seeds, const std::vector<proto::Aggregate>& assembled) {
  if (seeds.size() != assembled.size()) return std::nullopt;
  const auto w = lagrange_weights_at_zero(seeds);
  if (w.empty()) return std::nullopt;
  proto::Aggregate v;
  for (std::size_t j = 0; j < seeds.size(); ++j) {
    v.count += w[j] * assembled[j].count;
    v.sum += w[j] * assembled[j].sum;
    v.sum_sq += w[j] * assembled[j].sum_sq;
  }
  return v;
}

// ---------------------------------------------------------------------
// Exact path.

namespace {

// __extension__ silences -Wpedantic: __int128 is a GCC/Clang extension
// we rely on for the exact rational interpolation path.
__extension__ typedef __int128 Int128;

Int128 gcd128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Minimal exact rational on 128-bit integers; magnitudes in the CPDA
/// use stay far below overflow (seeds <= ~16, values <= 2^40).
struct Fraction {
  Int128 num = 0;
  Int128 den = 1;

  void normalize() {
    if (den < 0) {
      num = -num;
      den = -den;
    }
    const Int128 g = gcd128(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
  }

  Fraction& operator+=(const Fraction& o) {
    num = num * o.den + o.num * den;
    den *= o.den;
    normalize();
    return *this;
  }

  friend Fraction operator*(const Fraction& a, const Fraction& b) {
    Fraction r{a.num * b.num, a.den * b.den};
    r.normalize();
    return r;
  }
};

bool seeds_valid_exact(const std::vector<std::int64_t>& seeds) {
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (seeds[i] == 0) return false;
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      if (seeds[i] == seeds[j]) return false;
    }
  }
  return !seeds.empty();
}

}  // namespace

ExactShareSet make_shares_exact(std::int64_t value,
                                const std::vector<std::int64_t>& seeds,
                                sim::Rng& rng, std::int64_t coeff_bound) {
  const std::size_t m = seeds.size();
  std::vector<std::int64_t> coeffs(m > 0 ? m - 1 : 0);
  for (auto& c : coeffs) c = rng.range(-coeff_bound, coeff_bound);
  ExactShareSet out;
  out.shares.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    Int128 acc = 0;
    for (std::size_t t = coeffs.size(); t-- > 0;) {
      acc = acc * seeds[j] + coeffs[t];
    }
    acc = acc * seeds[j] + value;
    out.shares[j] = static_cast<std::int64_t>(acc);
  }
  return out;
}

std::optional<std::int64_t> solve_cluster_sum_exact(
    const std::vector<std::int64_t>& seeds, const std::vector<std::int64_t>& assembled) {
  if (seeds.size() != assembled.size() || !seeds_valid_exact(seeds)) return std::nullopt;
  const std::size_t m = seeds.size();
  Fraction total;
  for (std::size_t j = 0; j < m; ++j) {
    Fraction w{1, 1};
    for (std::size_t k = 0; k < m; ++k) {
      if (k == j) continue;
      w = w * Fraction{seeds[k], seeds[k] - seeds[j]};
    }
    total += w * Fraction{assembled[j], 1};
  }
  total.normalize();
  if (total.den != 1) return std::nullopt;  // corrupted inputs
  return static_cast<std::int64_t>(total.num);
}

// ---------------------------------------------------------------------

net::Bytes ShareBody::to_bytes() const {
  net::WireWriter w;
  w.u32(query_id);
  w.u8(round);
  share.write(w);
  proto::write_epoch_tag(w, epoch_tag);
  return std::move(w).take();
}

std::optional<ShareBody> ShareBody::from_bytes(const net::Bytes& b) {
  try {
    net::WireReader r(b);
    ShareBody body;
    body.query_id = r.u32();
    body.round = r.u8();
    body.share = proto::Aggregate::read(r);
    body.epoch_tag = proto::read_epoch_tag(r);
    return body;
  } catch (const net::WireError&) {
    return std::nullopt;
  }
}

}  // namespace icpda::core
