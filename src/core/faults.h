// Fault injection: scheduled node crashes and transient outages.
//
// A FaultPlan is the benign-failure sibling of AttackPlan: it describes
// which nodes die (or blink) during an epoch and when, without any
// malice. The distinction matters for the paper's integrity argument —
// the base station must reject tampered epochs while tolerating crashed
// cluster heads and tree parents, so benign churn must never convert
// into value-tamper alarms.
//
// Three fault sources compose (a node crashes at the earliest one that
// applies to it):
//   * `crash_at_s`      — explicit per-node crash times (tests, demos),
//   * `crash_probability` — per-epoch Bernoulli crash per node, with
//     the crash instant uniform in [0, crash_window_s),
//   * `outages`         — transient down/up intervals (reboots).
// The base station (node 0) is exempt from all of them.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.h"
#include "sim/rng.h"

namespace icpda::core {

struct FaultPlan {
  struct Outage {
    double down_at_s = 0.0;
    double up_at_s = 0.0;  ///< must be > down_at_s to have any effect
  };

  /// Explicit permanent crashes: node -> crash time (seconds).
  std::map<net::NodeId, double> crash_at_s;

  /// Per-epoch Bernoulli crash probability per (non-BS) node.
  double crash_probability = 0.0;
  /// Random crash times are drawn uniform in [0, crash_window_s). The
  /// default covers query flood, both cluster phases and the start of
  /// the report schedule — the window where a death actually hurts.
  double crash_window_s = 5.0;

  /// Transient outages: node -> down/up intervals (seconds).
  std::map<net::NodeId, std::vector<Outage>> outages;

  [[nodiscard]] bool active() const {
    return crash_probability > 0.0 || !crash_at_s.empty() || !outages.empty();
  }
};

/// Materialize `plan` onto `net`: draws the Bernoulli crashes from
/// `rng` and schedules every down/up transition on the network's
/// scheduler (must be called before the scheduler runs the epoch).
/// Returns the number of permanent crashes scheduled. Node 0 is
/// skipped entirely. When `crashed_out` is given, the permanently
/// crashed node ids are appended to it — resolve_compromised()
/// subtracts them so crashed-and-compromised resolves to crashed.
std::uint32_t schedule_fault_plan(net::Network& net, const FaultPlan& plan,
                                  sim::Rng rng,
                                  std::vector<net::NodeId>* crashed_out = nullptr);

}  // namespace icpda::core
