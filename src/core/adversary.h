// Active-adversary modelling: compromised nodes running behavioural
// attacks THROUGH the real protocol (contrast AttackPlan, which only
// tampers with Phase III payloads, and FaultPlan, which is benign).
//
// An AdversaryPlan marks a subset of nodes compromised and picks one
// attack class; the compromised nodes keep executing IcpdaApp but
// deviate at specific protocol actions:
//
//   kDisclosure — the Sen–Maitra algebraic attack on CPDA share
//     exchange (arXiv 1201.4532): compromised nodes grab the head
//     role, engineer rosters that isolate a single honest member, and
//     pool every share, roster and digest they see into a coalition
//     ledger. attacks::recover() then solves the pooled linear system;
//     the victim's value is disclosed exactly when at most one honest
//     member shares the cluster with the coalition.
//   kPollution — a Byzantine cluster head forges its OWN entry of the
//     digest F vector (the one slot no member endorses), calibrated
//     through the Lagrange weights so the interpolated cluster sum
//     shifts by exactly pollution_delta. The head then reports the
//     biased sum coherently: witnesses, watchdogs and the naive
//     endorsement checks all pass.
//   kReplay — compromised nodes capture Phase II/III frames
//     (F announcements, cluster reports) and re-inject them verbatim
//     in later epochs. The query id is constant across epochs, so an
//     unhardened receiver accepts the stale frame: a stale F corrupts
//     the head's solve, a stale report races the reporter dedupe at
//     the base station.
//   kWithhold — a compromised member sends NO shares but still
//     announces its assembled F (proof of life), so the m×m
//     Vandermonde solve starves: contributor lists diverge, and the
//     unhardened Phase II recovery re-admits the starver — a
//     repeatable cluster DoS.
//
// The protocol-side countermeasures live in core::HardeningConfig
// (config.h) and are all off by default: the benign path is
// byte-identical with the adversary layer absent (golden trace).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "proto/aggregate.h"
#include "sim/rng.h"

namespace icpda::core {

enum class AttackClass : std::uint8_t {
  kNone = 0,
  kDisclosure,  ///< Sen–Maitra algebraic disclosure on share exchange
  kPollution,   ///< colluding-CH biased digest entry
  kReplay,      ///< cross-epoch replay of captured Phase II/III frames
  kWithhold,    ///< share withholding (Vandermonde-solve DoS)
};

[[nodiscard]] const char* attack_class_name(AttackClass c);

/// Which nodes are compromised and how they behave. Mirrors FaultPlan:
/// an explicit set plus a Bernoulli fraction, materialized per epoch by
/// resolve_compromised(). The base station is never compromised.
struct AdversaryPlan {
  AttackClass attack = AttackClass::kNone;

  /// Explicitly compromised nodes (tests, pinned scenarios).
  std::unordered_set<net::NodeId> compromised;
  /// Per-node Bernoulli compromise probability (benchmark sweeps).
  double compromise_fraction = 0.0;

  /// Disclosure/pollution nodes grab the aggregator role instead of
  /// drawing pc (a compromised node is not bound by honest coin
  /// flips); withholders avoid it (they starve clusters as members).
  bool force_head = true;
  /// Disclosure heads truncate their roster to the coalition plus at
  /// most one honest victim — the full-rank configuration.
  bool engineer_roster = true;
  /// Bias added to each polluting head's cluster sum.
  double pollution_delta = 25.0;
  /// Captured frames a replaying node re-injects per epoch.
  std::size_t replay_budget = 12;

  [[nodiscard]] bool marks(net::NodeId id) const { return compromised.contains(id); }
  [[nodiscard]] bool active() const {
    return attack != AttackClass::kNone &&
           (!compromised.empty() || compromise_fraction > 0.0);
  }
};

/// Mutable cross-epoch adversary state, owned by the epoch driver (one
/// per scenario, shared by all compromised apps of one Network — the
/// simulation is single-threaded per cell). Holds the resolved
/// compromised set, the disclosure coalition's pooled observations and
/// the replay capture store.
struct AdversaryState {
  /// Compromised set after crashed-first resolution (see
  /// resolve_compromised); re-materialized every epoch.
  std::unordered_set<net::NodeId> nodes;
  [[nodiscard]] bool is_compromised(net::NodeId id) const {
    return nodes.contains(id);
  }

  /// Epoch index, bumped by run_icpda_epoch before apps attach (first
  /// epoch = 1). Keys the coalition ledger and the capture store.
  std::uint32_t epoch = 0;

  // ---- Coalition ledger (kDisclosure) -------------------------------
  /// Everything the coalition observed about one cluster: the public
  /// roster/seeds, the shares its members received, and the head's
  /// published digest. attacks::view_from_observation() adapts this to
  /// the Sen–Maitra linear system.
  struct ClusterObservation {
    std::vector<std::uint32_t> members;  ///< roster order
    std::vector<std::uint32_t> seeds;    ///< roster order
    /// share p_sender(x_recipient) received by a compromised member,
    /// keyed (recipient, sender).
    std::map<std::pair<net::NodeId, net::NodeId>, proto::Aggregate> shares;
    std::vector<proto::Aggregate> f_values;  ///< digest, roster order
    bool digest_seen = false;
  };
  /// Keyed (epoch, head): recovery rosters overwrite their epoch's
  /// entry, epochs never collide.
  std::map<std::pair<std::uint32_t, net::NodeId>, ClusterObservation> clusters;

  // ---- Replay capture store (kReplay) -------------------------------
  struct CapturedFrame {
    net::NodeId capturer = net::kNoNode;
    std::uint32_t epoch = 0;  ///< epoch the frame was captured in
    net::FrameType type = 0;
    net::NodeId dst = net::kNoNode;  ///< kBroadcast for broadcasts
    net::Bytes payload;
  };
  std::vector<CapturedFrame> captured;
  /// Global cap on stored frames, plus a per-node per-epoch cap so one
  /// chatty neighbourhood cannot evict everyone else's captures.
  static constexpr std::size_t kCaptureCap = 4096;
  static constexpr std::uint32_t kCapturePerNode = 32;
  std::map<std::pair<std::uint32_t, net::NodeId>, std::uint32_t> capture_counts;

  // ---- Attack-side tallies (what the adversary actually did) --------
  std::uint32_t replays_injected = 0;
  std::uint32_t shares_withheld = 0;
  std::uint32_t digests_forged = 0;
  std::uint32_t rosters_engineered = 0;
};

/// Materialize `plan` for one epoch: the explicit set union a Bernoulli
/// draw per non-BS node, MINUS every node in `crashed` — the
/// crashed-first rule: a node that is both crashed and compromised is
/// crashed (dead nodes run no attack code), deterministically.
/// Returns the resolved compromised count.
std::uint32_t resolve_compromised(const net::Network& net, const AdversaryPlan& plan,
                                  const std::vector<net::NodeId>& crashed,
                                  sim::Rng rng, AdversaryState& state);

}  // namespace icpda::core
