// Polluter localization by group testing (the paper's DoS
// countermeasure: a polluter that keeps forcing rejections is isolated
// in O(log N) query rounds by varying which sensors may aggregate).
//
// The base station only needs the accept/reject bit of each round. It
// keeps a suspect set (initially: everyone); each round it allows only
// half of the suspects (plus all non-suspects) to participate and
// re-runs the query. A rejection means an active polluter was among
// the allowed suspects; acceptance means the polluter sat in the
// excluded half. Either way the suspect set halves.
//
// The epoch itself is abstracted behind EpochRunner so the localizer
// is unit-testable against a synthetic oracle and reusable with the
// full simulation (see bench_localization).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/topology.h"
#include "net/wire.h"

namespace icpda::core {

/// Runs one aggregation epoch restricted to `allowed_mask` (bit per
/// node id; see HelloMsg::allows) and reports whether the base station
/// accepted the result.
using EpochRunner = std::function<bool(const net::Bytes& allowed_mask)>;

struct LocalizationResult {
  /// The isolated polluter, if the suspect set narrowed to one node.
  std::optional<net::NodeId> isolated;
  /// Query rounds consumed.
  std::uint32_t rounds = 0;
  /// Suspect set when the procedure stopped.
  std::vector<net::NodeId> suspects;
};

/// Bitmask with bits set for `ids` plus always node 0 (base station).
[[nodiscard]] net::Bytes make_allowed_mask(std::size_t node_count,
                                           const std::vector<net::NodeId>& ids);

/// Isolate a single (non-colluding) polluter among nodes 1..N-1.
/// `max_rounds` bounds the procedure against oracle noise (detection
/// in a real epoch is probabilistic); on inconclusive splits the
/// procedure keeps the full current suspect set and retries, so noisy
/// rounds cost time but not correctness.
[[nodiscard]] LocalizationResult localize_polluter(std::size_t node_count,
                                                   const EpochRunner& run_epoch,
                                                   std::uint32_t max_rounds = 64);

}  // namespace icpda::core
