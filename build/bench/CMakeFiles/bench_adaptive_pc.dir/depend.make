# Empty dependencies file for bench_adaptive_pc.
# This may be replaced when dependencies are built.
