file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_pc.dir/bench_adaptive_pc.cc.o"
  "CMakeFiles/bench_adaptive_pc.dir/bench_adaptive_pc.cc.o.d"
  "bench_adaptive_pc"
  "bench_adaptive_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
