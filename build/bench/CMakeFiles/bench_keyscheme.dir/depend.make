# Empty dependencies file for bench_keyscheme.
# This may be replaced when dependencies are built.
