file(REMOVE_RECURSE
  "CMakeFiles/bench_keyscheme.dir/bench_keyscheme.cc.o"
  "CMakeFiles/bench_keyscheme.dir/bench_keyscheme.cc.o.d"
  "bench_keyscheme"
  "bench_keyscheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keyscheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
