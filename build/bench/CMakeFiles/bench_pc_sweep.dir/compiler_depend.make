# Empty compiler generated dependencies file for bench_pc_sweep.
# This may be replaced when dependencies are built.
