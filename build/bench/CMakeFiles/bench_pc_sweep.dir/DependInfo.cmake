
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_pc_sweep.cc" "bench/CMakeFiles/bench_pc_sweep.dir/bench_pc_sweep.cc.o" "gcc" "bench/CMakeFiles/bench_pc_sweep.dir/bench_pc_sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/icpda_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/icpda_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/icpda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icpda_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/icpda_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/icpda_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icpda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icpda_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
