file(REMOVE_RECURSE
  "CMakeFiles/bench_pc_sweep.dir/bench_pc_sweep.cc.o"
  "CMakeFiles/bench_pc_sweep.dir/bench_pc_sweep.cc.o.d"
  "bench_pc_sweep"
  "bench_pc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
