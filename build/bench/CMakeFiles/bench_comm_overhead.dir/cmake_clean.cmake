file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_overhead.dir/bench_comm_overhead.cc.o"
  "CMakeFiles/bench_comm_overhead.dir/bench_comm_overhead.cc.o.d"
  "bench_comm_overhead"
  "bench_comm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
