file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_formation.dir/bench_cluster_formation.cc.o"
  "CMakeFiles/bench_cluster_formation.dir/bench_cluster_formation.cc.o.d"
  "bench_cluster_formation"
  "bench_cluster_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
