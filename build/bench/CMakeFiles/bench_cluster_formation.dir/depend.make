# Empty dependencies file for bench_cluster_formation.
# This may be replaced when dependencies are built.
