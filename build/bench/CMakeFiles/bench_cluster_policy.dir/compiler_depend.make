# Empty compiler generated dependencies file for bench_cluster_policy.
# This may be replaced when dependencies are built.
