file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_policy.dir/bench_cluster_policy.cc.o"
  "CMakeFiles/bench_cluster_policy.dir/bench_cluster_policy.cc.o.d"
  "bench_cluster_policy"
  "bench_cluster_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
