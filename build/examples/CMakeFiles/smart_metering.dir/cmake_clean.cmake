file(REMOVE_RECURSE
  "CMakeFiles/smart_metering.dir/smart_metering.cpp.o"
  "CMakeFiles/smart_metering.dir/smart_metering.cpp.o.d"
  "smart_metering"
  "smart_metering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_metering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
