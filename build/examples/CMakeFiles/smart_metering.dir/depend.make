# Empty dependencies file for smart_metering.
# This may be replaced when dependencies are built.
