
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/icpda_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/icpda_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/cpda_algebra.cc" "src/core/CMakeFiles/icpda_core.dir/cpda_algebra.cc.o" "gcc" "src/core/CMakeFiles/icpda_core.dir/cpda_algebra.cc.o.d"
  "/root/repo/src/core/icpda.cc" "src/core/CMakeFiles/icpda_core.dir/icpda.cc.o" "gcc" "src/core/CMakeFiles/icpda_core.dir/icpda.cc.o.d"
  "/root/repo/src/core/integrity.cc" "src/core/CMakeFiles/icpda_core.dir/integrity.cc.o" "gcc" "src/core/CMakeFiles/icpda_core.dir/integrity.cc.o.d"
  "/root/repo/src/core/localization.cc" "src/core/CMakeFiles/icpda_core.dir/localization.cc.o" "gcc" "src/core/CMakeFiles/icpda_core.dir/localization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/icpda_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icpda_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icpda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icpda_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
