file(REMOVE_RECURSE
  "libicpda_core.a"
)
