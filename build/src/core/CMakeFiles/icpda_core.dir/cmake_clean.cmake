file(REMOVE_RECURSE
  "CMakeFiles/icpda_core.dir/cluster.cc.o"
  "CMakeFiles/icpda_core.dir/cluster.cc.o.d"
  "CMakeFiles/icpda_core.dir/cpda_algebra.cc.o"
  "CMakeFiles/icpda_core.dir/cpda_algebra.cc.o.d"
  "CMakeFiles/icpda_core.dir/icpda.cc.o"
  "CMakeFiles/icpda_core.dir/icpda.cc.o.d"
  "CMakeFiles/icpda_core.dir/integrity.cc.o"
  "CMakeFiles/icpda_core.dir/integrity.cc.o.d"
  "CMakeFiles/icpda_core.dir/localization.cc.o"
  "CMakeFiles/icpda_core.dir/localization.cc.o.d"
  "libicpda_core.a"
  "libicpda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
