# Empty compiler generated dependencies file for icpda_core.
# This may be replaced when dependencies are built.
