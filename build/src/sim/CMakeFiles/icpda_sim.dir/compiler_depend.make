# Empty compiler generated dependencies file for icpda_sim.
# This may be replaced when dependencies are built.
