file(REMOVE_RECURSE
  "CMakeFiles/icpda_sim.dir/log.cc.o"
  "CMakeFiles/icpda_sim.dir/log.cc.o.d"
  "CMakeFiles/icpda_sim.dir/metrics.cc.o"
  "CMakeFiles/icpda_sim.dir/metrics.cc.o.d"
  "CMakeFiles/icpda_sim.dir/rng.cc.o"
  "CMakeFiles/icpda_sim.dir/rng.cc.o.d"
  "CMakeFiles/icpda_sim.dir/scheduler.cc.o"
  "CMakeFiles/icpda_sim.dir/scheduler.cc.o.d"
  "libicpda_sim.a"
  "libicpda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
