file(REMOVE_RECURSE
  "libicpda_sim.a"
)
