# Empty compiler generated dependencies file for icpda_attacks.
# This may be replaced when dependencies are built.
