file(REMOVE_RECURSE
  "CMakeFiles/icpda_attacks.dir/eavesdropper.cc.o"
  "CMakeFiles/icpda_attacks.dir/eavesdropper.cc.o.d"
  "CMakeFiles/icpda_attacks.dir/linear_audit.cc.o"
  "CMakeFiles/icpda_attacks.dir/linear_audit.cc.o.d"
  "CMakeFiles/icpda_attacks.dir/wiretap.cc.o"
  "CMakeFiles/icpda_attacks.dir/wiretap.cc.o.d"
  "libicpda_attacks.a"
  "libicpda_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
