file(REMOVE_RECURSE
  "libicpda_attacks.a"
)
