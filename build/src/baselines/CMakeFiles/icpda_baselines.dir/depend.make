# Empty dependencies file for icpda_baselines.
# This may be replaced when dependencies are built.
