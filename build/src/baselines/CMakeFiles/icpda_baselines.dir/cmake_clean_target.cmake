file(REMOVE_RECURSE
  "libicpda_baselines.a"
)
