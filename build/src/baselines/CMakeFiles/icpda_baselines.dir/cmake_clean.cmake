file(REMOVE_RECURSE
  "CMakeFiles/icpda_baselines.dir/smart.cc.o"
  "CMakeFiles/icpda_baselines.dir/smart.cc.o.d"
  "CMakeFiles/icpda_baselines.dir/tag.cc.o"
  "CMakeFiles/icpda_baselines.dir/tag.cc.o.d"
  "libicpda_baselines.a"
  "libicpda_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
