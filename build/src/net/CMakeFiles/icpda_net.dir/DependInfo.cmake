
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cc" "src/net/CMakeFiles/icpda_net.dir/channel.cc.o" "gcc" "src/net/CMakeFiles/icpda_net.dir/channel.cc.o.d"
  "/root/repo/src/net/geometry.cc" "src/net/CMakeFiles/icpda_net.dir/geometry.cc.o" "gcc" "src/net/CMakeFiles/icpda_net.dir/geometry.cc.o.d"
  "/root/repo/src/net/mac.cc" "src/net/CMakeFiles/icpda_net.dir/mac.cc.o" "gcc" "src/net/CMakeFiles/icpda_net.dir/mac.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/icpda_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/icpda_net.dir/network.cc.o.d"
  "/root/repo/src/net/node.cc" "src/net/CMakeFiles/icpda_net.dir/node.cc.o" "gcc" "src/net/CMakeFiles/icpda_net.dir/node.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/icpda_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/icpda_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/icpda_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
