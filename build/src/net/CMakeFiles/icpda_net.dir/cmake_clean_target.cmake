file(REMOVE_RECURSE
  "libicpda_net.a"
)
