file(REMOVE_RECURSE
  "CMakeFiles/icpda_net.dir/channel.cc.o"
  "CMakeFiles/icpda_net.dir/channel.cc.o.d"
  "CMakeFiles/icpda_net.dir/geometry.cc.o"
  "CMakeFiles/icpda_net.dir/geometry.cc.o.d"
  "CMakeFiles/icpda_net.dir/mac.cc.o"
  "CMakeFiles/icpda_net.dir/mac.cc.o.d"
  "CMakeFiles/icpda_net.dir/network.cc.o"
  "CMakeFiles/icpda_net.dir/network.cc.o.d"
  "CMakeFiles/icpda_net.dir/node.cc.o"
  "CMakeFiles/icpda_net.dir/node.cc.o.d"
  "CMakeFiles/icpda_net.dir/topology.cc.o"
  "CMakeFiles/icpda_net.dir/topology.cc.o.d"
  "libicpda_net.a"
  "libicpda_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
