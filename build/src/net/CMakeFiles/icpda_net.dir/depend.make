# Empty dependencies file for icpda_net.
# This may be replaced when dependencies are built.
