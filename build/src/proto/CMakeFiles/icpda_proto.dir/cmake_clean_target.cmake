file(REMOVE_RECURSE
  "libicpda_proto.a"
)
