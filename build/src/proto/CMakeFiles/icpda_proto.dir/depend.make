# Empty dependencies file for icpda_proto.
# This may be replaced when dependencies are built.
