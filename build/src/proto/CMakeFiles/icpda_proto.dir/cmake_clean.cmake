file(REMOVE_RECURSE
  "CMakeFiles/icpda_proto.dir/messages.cc.o"
  "CMakeFiles/icpda_proto.dir/messages.cc.o.d"
  "libicpda_proto.a"
  "libicpda_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
