# Empty dependencies file for icpda_analysis.
# This may be replaced when dependencies are built.
