file(REMOVE_RECURSE
  "CMakeFiles/icpda_analysis.dir/models.cc.o"
  "CMakeFiles/icpda_analysis.dir/models.cc.o.d"
  "libicpda_analysis.a"
  "libicpda_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
