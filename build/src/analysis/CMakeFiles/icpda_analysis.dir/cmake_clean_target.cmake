file(REMOVE_RECURSE
  "libicpda_analysis.a"
)
