# Empty compiler generated dependencies file for icpda_crypto.
# This may be replaced when dependencies are built.
