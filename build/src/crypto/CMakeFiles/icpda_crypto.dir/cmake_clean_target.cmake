file(REMOVE_RECURSE
  "libicpda_crypto.a"
)
