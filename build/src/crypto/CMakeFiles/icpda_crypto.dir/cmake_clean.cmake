file(REMOVE_RECURSE
  "CMakeFiles/icpda_crypto.dir/cipher.cc.o"
  "CMakeFiles/icpda_crypto.dir/cipher.cc.o.d"
  "CMakeFiles/icpda_crypto.dir/keyring.cc.o"
  "CMakeFiles/icpda_crypto.dir/keyring.cc.o.d"
  "CMakeFiles/icpda_crypto.dir/prf.cc.o"
  "CMakeFiles/icpda_crypto.dir/prf.cc.o.d"
  "libicpda_crypto.a"
  "libicpda_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icpda_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
