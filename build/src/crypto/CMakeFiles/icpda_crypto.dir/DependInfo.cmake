
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/cipher.cc" "src/crypto/CMakeFiles/icpda_crypto.dir/cipher.cc.o" "gcc" "src/crypto/CMakeFiles/icpda_crypto.dir/cipher.cc.o.d"
  "/root/repo/src/crypto/keyring.cc" "src/crypto/CMakeFiles/icpda_crypto.dir/keyring.cc.o" "gcc" "src/crypto/CMakeFiles/icpda_crypto.dir/keyring.cc.o.d"
  "/root/repo/src/crypto/prf.cc" "src/crypto/CMakeFiles/icpda_crypto.dir/prf.cc.o" "gcc" "src/crypto/CMakeFiles/icpda_crypto.dir/prf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/icpda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/icpda_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
